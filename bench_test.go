package ftqc

// One benchmark per reproduced table/figure/equation of Preskill's
// "Fault-Tolerant Quantum Computation" (see EXPERIMENTS.md for the
// paper-vs-measured record). Each benchmark runs a representative slice
// of its experiment per iteration; cmd/ftqc runs the full-resolution
// versions.

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"ftqc/internal/anyon"
	"ftqc/internal/bits"
	"ftqc/internal/code"
	"ftqc/internal/concat"
	"ftqc/internal/frame"
	"ftqc/internal/ft"
	"ftqc/internal/noise"
	"ftqc/internal/pauli"
	"ftqc/internal/resource"
	"ftqc/internal/server"
	"ftqc/internal/spacetime"
	"ftqc/internal/statevec"
	"ftqc/internal/stream"
	"ftqc/internal/surface"
	"ftqc/internal/threshold"
	"ftqc/internal/toric"
)

// BenchmarkE01MemoryFidelity — Eq. (14): encoded memory failure O(ε²).
func BenchmarkE01MemoryFidelity(b *testing.B) {
	cfg := ft.DefaultConfig()
	for i := 0; i < b.N; i++ {
		ft.MemoryExperiment(ft.MethodSteane, noise.StorageOnly(1e-3), noise.Uniform(1e-3), cfg, 3, 200, uint64(i))
	}
}

// BenchmarkE02DoubleErrors — Eqs. (12)-(13): double errors become logical
// operators under decoding.
func BenchmarkE02DoubleErrors(b *testing.B) {
	c := code.Steane()
	dec := code.NewDecoder(c.Code, 1)
	for i := 0; i < b.N; i++ {
		for a := 0; a < 7; a++ {
			for bb := a + 1; bb < 7; bb++ {
				err := pauli.NewIdentity(7)
				err.SetAt(a, pauli.X)
				err.SetAt(bb, pauli.X)
				dec.DecodeError(err)
			}
		}
	}
}

// BenchmarkE03BadGoodAncilla — Figs. 2/6: naive vs fault-tolerant
// recovery failure.
func BenchmarkE03BadGoodAncilla(b *testing.B) {
	cfg := ft.DefaultConfig()
	for i := 0; i < b.N; i++ {
		ft.ECFailureRate(ft.MethodNaive, noise.Uniform(1e-3), cfg, 100, uint64(i))
		ft.ECFailureRate(ft.MethodSteane, noise.Uniform(1e-3), cfg, 100, uint64(i)+1)
	}
}

// BenchmarkE04ShorStateVerify — Fig. 8 cat-state verification.
func BenchmarkE04ShorStateVerify(b *testing.B) {
	cfg := ft.DefaultConfig()
	rng := rand.New(rand.NewPCG(4, 4))
	for i := 0; i < b.N; i++ {
		s := frame.New(6, noise.Uniform(3e-3), rng)
		ft.PrepVerifiedCat(s, []int{0, 1, 2, 3}, 4, cfg)
	}
}

// BenchmarkE05SteaneStateVerify — §3.3 encoded-|0⟩ verification.
func BenchmarkE05SteaneStateVerify(b *testing.B) {
	cfg := ft.DefaultConfig()
	rng := rand.New(rand.NewPCG(5, 5))
	anc := []int{0, 1, 2, 3, 4, 5, 6}
	chk := []int{7, 8, 9, 10, 11, 12, 13}
	for i := 0; i < b.N; i++ {
		s := frame.New(14, noise.Uniform(3e-3), rng)
		ft.PrepVerifiedZero(s, anc, chk, cfg)
	}
}

// BenchmarkE06SyndromeRepeat — §3.4 policy comparison.
func BenchmarkE06SyndromeRepeat(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, pol := range []ft.SyndromePolicy{ft.PolicyOnce, ft.PolicyRepeatNontrivial} {
			cfg := ft.DefaultConfig()
			cfg.Policy = pol
			ft.ECFailureRate(ft.MethodSteane, noise.Uniform(1e-3), cfg, 100, uint64(i))
		}
	}
}

// BenchmarkE07ExRec — Fig. 9 + §5: the extended-rectangle failure rate.
func BenchmarkE07ExRec(b *testing.B) {
	cfg := ft.DefaultConfig()
	for i := 0; i < b.N; i++ {
		ft.ExRecCNOT(ft.MethodSteane, noise.Uniform(5e-4), cfg, 200, uint64(i))
	}
}

// BenchmarkE08Thresholds — Eqs. (34)-(35): pseudothreshold fits.
func BenchmarkE08Thresholds(b *testing.B) {
	cfg := ft.DefaultConfig()
	for i := 0; i < b.N; i++ {
		threshold.Run(ft.MethodSteane, noise.GateOnly, []float64{4e-4, 8e-4}, cfg, 400, uint64(i))
	}
}

// BenchmarkE09ConcatFlow — Eq. (33): flow-equation level curves.
func BenchmarkE09ConcatFlow(b *testing.B) {
	f := concat.PaperFlow()
	for i := 0; i < b.N; i++ {
		for _, p0 := range []float64{1e-2, 1e-3, 1e-4} {
			f.Levels(p0, 6)
		}
	}
}

// BenchmarkE10BlockScaling — Eq. (36)-(37): block size for T gates.
func BenchmarkE10BlockScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, t := range []float64{1e6, 1e9, 1e12} {
			concat.BlockSizeForComputation(1e-5, 1e-3, t)
		}
	}
}

// BenchmarkE11ShorFamily — Eqs. (30)-(32): non-concatenated optimization.
func BenchmarkE11ShorFamily(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, eps := range []float64{1e-4, 1e-5, 1e-6} {
			t := concat.OptimalT(4, eps)
			concat.BlockErrorProbability(t, 4, eps)
			concat.MinBlockError(4, eps)
		}
	}
}

// BenchmarkE12Resources — §6: machine sizing for factoring-432.
func BenchmarkE12Resources(b *testing.B) {
	w := resource.Factoring(432)
	for i := 0; i < b.N; i++ {
		resource.SizeConcatenated(w, 1e-6, concat.Flow{A: 1e4}, 3.0)
		resource.SizeSteane55(w, 1e-5)
	}
}

// BenchmarkE13Systematic — §6: coherent vs random-walk drift.
func BenchmarkE13Systematic(b *testing.B) {
	rng := rand.New(rand.NewPCG(13, 13))
	for i := 0; i < b.N; i++ {
		noise.CoherentDriftError(1e-3, 400)
		noise.RandomWalkDriftError(1e-3, 400, 20, rng)
	}
}

// BenchmarkE14Leakage — Fig. 15: leakage detection cycles.
func BenchmarkE14Leakage(b *testing.B) {
	cfg := ft.DefaultConfig()
	p := noise.Uniform(1e-3)
	p.Leak = 1e-3
	for i := 0; i < b.N; i++ {
		ft.LeakageExperiment(p, cfg, 2, 100, true, uint64(i))
	}
}

// BenchmarkE15Transversal — Fig. 11: transversal gates on the tableau and
// frame simulators.
func BenchmarkE15Transversal(b *testing.B) {
	rng := rand.New(rand.NewPCG(15, 15))
	dataA := []int{0, 1, 2, 3, 4, 5, 6}
	dataB := []int{7, 8, 9, 10, 11, 12, 13}
	for i := 0; i < b.N; i++ {
		s := frame.New(14, noise.Uniform(1e-3), rng)
		ft.LogicalCNOT(s, dataA, dataB)
		ft.LogicalH(s, dataA)
		ft.LogicalS(s, dataB)
		ft.IdealDecode(s, dataA)
	}
}

// BenchmarkE16Toffoli — Figs. 12-13: Shor's measurement-based Toffoli.
func BenchmarkE16Toffoli(b *testing.B) {
	rng := rand.New(rand.NewPCG(16, 16))
	for i := 0; i < b.N; i++ {
		ft.ToffoliGadgetFidelity(rng, [3]float64{0.3, 1.1, 2.2})
	}
}

// BenchmarkE17ToricMemory — §7.1: failure vs distance.
func BenchmarkE17ToricMemory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		toric.MemoryExperiment(5, 0.03, toric.DecoderExact, 50, uint64(i))
	}
}

// BenchmarkToricDecode — the scalable decoder subsystem (union-find,
// polynomial MWPM, worker-pool lanes) at the near-threshold operating
// point p = 0.08, across code distances. Each iteration runs one
// 256-shot batch of the passive-memory experiment end to end: sampling,
// bit-plane syndrome extraction, transpose, per-lane decode, homology
// test. The matching baselines run at the small sizes; L = 32 is
// union-find territory (greedy needs ~10 ms per shot there).
func BenchmarkToricDecode(b *testing.B) {
	for _, cfg := range toricDecodeConfigs() {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				toric.MemoryExperiment(cfg.l, 0.08, cfg.kind, 256, 7)
			}
		})
	}
}

type toricDecodeConfig struct {
	name string
	l    int
	kind toric.DecoderKind
}

func toricDecodeConfigs() []toricDecodeConfig {
	var out []toricDecodeConfig
	for _, l := range []int{4, 8, 16, 32} {
		out = append(out, toricDecodeConfig{fmt.Sprintf("L=%d", l), l, toric.DecoderUnionFind})
		if l <= 16 {
			out = append(out,
				toricDecodeConfig{fmt.Sprintf("L=%d/exact", l), l, toric.DecoderExact},
				toricDecodeConfig{fmt.Sprintf("L=%d/greedy", l), l, toric.DecoderGreedy})
		}
	}
	return out
}

// BenchmarkSpacetimeDecode — the space-time subsystem at the sustained
// near-threshold operating point p = q = 0.025 with T = L rounds. Each
// iteration runs one 64-shot batch end to end — T rounds of error and
// measurement sampling in both sectors, difference-layer extraction,
// transpose, weighted per-lane 3D decode, homology test.
func BenchmarkSpacetimeDecode(b *testing.B) {
	for _, cfg := range spacetimeDecodeConfigs() {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spacetime.Memory(cfg.l, cfg.l, 0.025, 0.025, cfg.kind, 64, 7)
			}
		})
	}
}

func spacetimeDecodeConfigs() []toricDecodeConfig {
	var out []toricDecodeConfig
	for _, l := range []int{4, 8, 16} {
		out = append(out, toricDecodeConfig{fmt.Sprintf("L=%d", l), l, toric.DecoderUnionFind})
	}
	out = append(out, toricDecodeConfig{"L=4/exact", 4, toric.DecoderExact})
	return out
}

// BenchmarkCircuitExtract — circuit-level syndrome extraction end to
// end at the near-threshold operating point ε = 0.006 with T = L
// rounds. Each iteration runs one 64-shot batch: the full extraction
// circuit per round on the batch frame engine (prep, scheduled CNOTs,
// measurement, idle — faults at every location), difference layers,
// transpose, weighted per-lane decode over the diagonal-edge volume,
// homology test, both sectors.
func BenchmarkCircuitExtract(b *testing.B) {
	for _, cfg := range circuitExtractConfigs() {
		b.Run(cfg.name, func(b *testing.B) {
			P := noise.Uniform(0.006)
			for i := 0; i < b.N; i++ {
				spacetime.CircuitMemory(cfg.l, cfg.l, P, cfg.kind, 64, 7)
			}
		})
	}
}

func circuitExtractConfigs() []toricDecodeConfig {
	var out []toricDecodeConfig
	for _, l := range []int{4, 8, 16} {
		out = append(out, toricDecodeConfig{fmt.Sprintf("L=%d", l), l, toric.DecoderUnionFind})
	}
	out = append(out, toricDecodeConfig{"L=4/exact", 4, toric.DecoderExact})
	return out
}

// circuitOptsArm is one arm of the circuit-level options ablation:
// erasure-aware vs erasure-blind leakage, joint two-sector correlated
// repricing, and the CNOT-schedule comparison — each a single L=8
// operating point through CodeCircuitMemoryOpts.
type circuitOptsArm struct {
	name     string
	codeName string
	decoder  string
	P        noise.Params
	code     surface.Code
	opts     spacetime.DecodeOptions
}

func circuitOptsArms() []circuitOptsArm {
	const l = 8
	leaky := noise.Uniform(0.003)
	leaky.Leak = 0.01
	plain := noise.Uniform(0.006)
	return []circuitOptsArm{
		{"erasure-aware/L=8", "toric", "circuit-erasure-aware-union-find", leaky, toric.Cached(l), spacetime.DecodeOptions{ErasureAware: true}},
		{"erasure-blind/L=8", "toric", "circuit-erasure-blind-union-find", leaky, toric.Cached(l), spacetime.DecodeOptions{}},
		{"correlated/L=8", "toric", "circuit-correlated-union-find", plain, toric.Cached(l), spacetime.DecodeOptions{Correlated: true}},
		{"schedule-default/L=8", "toric", "circuit-union-find", plain, toric.Cached(l), spacetime.DecodeOptions{}},
		{"schedule-hookpar/L=8", "toric-hookpar", "circuit-union-find", plain, toric.HookParallel(l), spacetime.DecodeOptions{}},
	}
}

// BenchmarkCircuitOpts — the erasure/correlated/schedule arms of the
// circuit-level options pipeline, whole-volume decoded. The aware/blind
// pair prices identical leaky extractions with and without the erasure
// side information; the correlated arm serializes the dual decode after
// the primal to reprice shared-qubit Y components; the schedule pair
// runs the default bent-hook extraction against the parallel-last
// variant on the same noise.
func BenchmarkCircuitOpts(b *testing.B) {
	for _, arm := range circuitOptsArms() {
		b.Run(arm.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := spacetime.CodeCircuitMemoryOpts(arm.code, 8, arm.P, 64, 7, arm.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStreamDecode — the streaming sliding-window pipeline at the
// sustained operating point p = q = 0.025 with T = 4L rounds through
// W = 2L windows (commit L). Each iteration streams one 64-shot batch
// end to end: round-by-round sampling, window slides through the
// long-lived decode services, closing decode, homology test. The
// circuit/ sub-series streams the full extraction circuit through the
// diagonal-edge windows at a sustained circuit-level operating point,
// and the quiet/ sub-series measures the same L=16 window well below
// threshold, where the incremental slide and the sparse skip carry the
// load instead of raw decode throughput.
func BenchmarkStreamDecode(b *testing.B) {
	const pq = 0.025
	for _, l := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("L=%d", l), func(b *testing.B) {
			w, c := stream.DefaultWindow(l)
			wh, wv := spacetime.Weights(pq, pq, l, 4*l)
			s, err := stream.NewSession(l, w, c, wh, wv)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.BatchMemory(4*l, pq, pq, 64, frame.NewAggregateSampler(7, uint64(i)))
			}
		})
	}
	for _, l := range []int{8, 16} {
		b.Run(fmt.Sprintf("circuit/L=%d", l), func(b *testing.B) {
			const eps = 0.003
			P := noise.Uniform(eps)
			w, c := stream.DefaultWindow(l)
			wh, wv, wd := spacetime.WeightsCircuit(P, l, w)
			s, err := stream.NewCircuitSession(l, w, c, wh, wv, wd)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src := spacetime.NewCircuitLayerSource(l, P, 64, frame.NewAggregateSampler(7, uint64(i)))
				s.BatchMemoryFrom(src, 4*l)
			}
		})
	}
	for _, l := range []int{8, 16} {
		b.Run(fmt.Sprintf("dense-incremental/L=%d", l), func(b *testing.B) {
			w, c := stream.DefaultWindow(l)
			wh, wv := spacetime.Weights(pq, pq, l, 4*l)
			s, err := stream.NewSession(l, w, c, wh, wv)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			s.SetIncremental(true)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.BatchMemory(4*l, pq, pq, 64, frame.NewAggregateSampler(7, uint64(i)))
			}
		})
	}
	for _, d := range []int{5, 9} {
		b.Run(fmt.Sprintf("rotated/d=%d", d), func(b *testing.B) {
			const eps = 0.003
			P := noise.Uniform(eps)
			rc := surface.Rotated(d)
			w, c := stream.DefaultWindow(d)
			wh, wv, wd := spacetime.WeightsCircuit(P, d, w)
			s, err := stream.NewCodeCircuitSession(rc, w, c, wh, wv, wd)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src := surface.NewCircuitSource(rc, P, 64, frame.NewAggregateSampler(7, uint64(i)))
				s.BatchMemoryFrom(src, 4*d)
			}
		})
	}
	for _, d := range []int{5, 9} {
		b.Run(fmt.Sprintf("planar/d=%d", d), func(b *testing.B) {
			const eps = 0.003
			P := noise.Uniform(eps)
			pc := surface.Planar(d)
			w, c := stream.DefaultWindow(d)
			wh, wv, wd := spacetime.WeightsCircuit(P, d, w)
			s, err := stream.NewCodeCircuitSession(pc, w, c, wh, wv, wd)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src := surface.NewCircuitSource(pc, P, 64, frame.NewAggregateSampler(7, uint64(i)))
				s.BatchMemoryFrom(src, 4*d)
			}
		})
	}
	for _, p := range []float64{0.008, 0.002, 0.0005} {
		b.Run(fmt.Sprintf("quiet/L=16/p=%g", p), func(b *testing.B) {
			const l = 16
			w, c := stream.DefaultWindow(l)
			wh, wv := spacetime.Weights(p, p, l, 4*l)
			s, err := stream.NewSession(l, w, c, wh, wv)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.BatchMemory(4*l, p, p, 64, frame.NewAggregateSampler(7, uint64(i)))
			}
		})
	}
}

// serverFleetRun drives one fleet of concurrent circuit-level sessions
// through the decode server and returns the wall time plus the
// per-session stats (the shared workload of BenchmarkServerThroughput
// and the bench-JSON server series).
func serverFleetRun(sessions, l, lanes, rounds int, eps float64, coalesce bool) (time.Duration, []server.SessionStats, server.CoalesceStats, error) {
	P := noise.Uniform(eps)
	cfg := server.CircuitLevel(l, lanes, P)
	srv := server.New(server.Config{Coalesce: coalesce})
	defer srv.Shutdown()
	stats := make([]server.SessionStats, sessions)
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := srv.Open(cfg)
			if err != nil {
				errs[i] = err
				return
			}
			src := spacetime.NewCircuitLayerSource(l, P, lanes, frame.NewAggregateSampler(9100+uint64(i), 5))
			nc := l * l
			layerX := bits.NewVecs(nc, lanes)
			layerZ := bits.NewVecs(nc, lanes)
			for r := 0; r < rounds; r++ {
				src.NextLayers(layerX, layerZ)
				if errs[i] = s.Submit(layerX, layerZ); errs[i] != nil {
					return
				}
			}
			src.CloseLayers(layerX, layerZ)
			if errs[i] = s.CloseWith(layerX, layerZ); errs[i] != nil {
				return
			}
			if _, errs[i] = s.Wait(); errs[i] != nil {
				return
			}
			stats[i] = s.Stats()
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	cst := srv.CoalesceStats()
	for _, err := range errs {
		if err != nil {
			return wall, stats, cst, err
		}
	}
	return wall, stats, cst, nil
}

// serverFleetBest runs serverFleetRun three times and keeps the
// fastest, with that run's stats. One-shot fleet walls swing with
// scheduler warm-up (the first fleet in a process pays graph interning
// and page faults for everyone); best-of-3 is what the JSON report
// records so the committed numbers track the machine, not the warm-up.
func serverFleetBest(sessions, l, lanes, rounds int, eps float64, coalesce bool) (time.Duration, []server.SessionStats, server.CoalesceStats, error) {
	var (
		bestWall  time.Duration
		bestStats []server.SessionStats
		bestCst   server.CoalesceStats
	)
	for rep := 0; rep < 3; rep++ {
		wall, stats, cst, err := serverFleetRun(sessions, l, lanes, rounds, eps, coalesce)
		if err != nil {
			return wall, stats, cst, err
		}
		if bestStats == nil || wall < bestWall {
			bestWall, bestStats, bestCst = wall, stats, cst
		}
	}
	return bestWall, bestStats, bestCst, nil
}

// BenchmarkServerThroughput — the multi-tenant decode server under a
// sustained fleet: 8 concurrent L=8 circuit-level sessions, 64 lanes
// each, streaming T=32 rounds through shared workers. Each iteration
// runs one full fleet (open, stream, drain); the reported custom metric
// is aggregate decoded rounds per second.
func BenchmarkServerThroughput(b *testing.B) {
	const sessions, l, lanes, rounds = 8, 8, 64, 32
	var total time.Duration
	for i := 0; i < b.N; i++ {
		wall, _, _, err := serverFleetRun(sessions, l, lanes, rounds, 0.003, false)
		if err != nil {
			b.Fatal(err)
		}
		total += wall
	}
	if total > 0 {
		b.ReportMetric(float64(sessions*rounds*b.N)/total.Seconds(), "rounds/s")
	}
}

// BenchmarkServerFleetCoalesced — the wide-fleet shape batch coalescing
// targets: 64 concurrent L=8 circuit-level sessions of 16 lanes each,
// so every slide submits a small batch and the per-submission dispatch
// overhead dominates the uncoalesced server. The /direct sub-series is
// the same fleet with coalescing off, making the merge win a same-
// binary A/B.
func BenchmarkServerFleetCoalesced(b *testing.B) {
	const sessions, l, lanes, rounds = 64, 8, 16, 32
	for _, mode := range []struct {
		name     string
		coalesce bool
	}{{"direct", false}, {"merged", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var total time.Duration
			var occ float64
			for i := 0; i < b.N; i++ {
				wall, _, cst, err := serverFleetRun(sessions, l, lanes, rounds, 0.003, mode.coalesce)
				if err != nil {
					b.Fatal(err)
				}
				total += wall
				occ += cst.Occupancy
			}
			if total > 0 {
				b.ReportMetric(float64(sessions*rounds*b.N)/total.Seconds(), "rounds/s")
			}
			if mode.coalesce && b.N > 0 {
				b.ReportMetric(occ/float64(b.N), "occupancy")
			}
		})
	}
}

// TestEmitToricBenchJSON records the decode benchmark grid to
// BENCH_toric.json (or the path in FTQC_BENCH_JSON) so the perf
// trajectory is tracked across PRs. Existing entries are merge-updated
// by name, so emitting a subset never clobbers series recorded by an
// earlier run. Skipped unless FTQC_BENCH_JSON is set: it is a
// measurement tool, not a correctness test.
func TestEmitToricBenchJSON(t *testing.T) {
	path := os.Getenv("FTQC_BENCH_JSON")
	if path == "" {
		t.Skip("set FTQC_BENCH_JSON=1 (or a path) to record decode benchmarks")
	}
	if path == "1" {
		path = "BENCH_toric.json"
	}
	type entry struct {
		Name       string  `json:"name"`
		Code       string  `json:"code"` // code family ("toric", "planar", "rotated")
		L          int     `json:"L"`
		Rounds     int     `json:"rounds"`           // 0: perfect-measurement 2D decode
		Window     int     `json:"window,omitempty"` // streaming: window height in layers
		Commit     int     `json:"commit,omitempty"` // streaming: rounds committed per slide
		P          float64 `json:"p"`
		Q          float64 `json:"q"`
		Decoder    string  `json:"decoder"`
		Samples    int     `json:"samples"` // Monte Carlo shots measured per op
		Seed       uint64  `json:"seed"`    // sampler seed of the measured runs
		ShotsPerOp int     `json:"shots_per_op"`
		NsPerOp    float64 `json:"ns_per_op"`
		NsPerShot  float64 `json:"ns_per_shot"`
		NsPerRound float64 `json:"ns_per_shot_round,omitempty"`     // streaming: per shot per round
		WindowRSS  int     `json:"resident_window_bytes,omitempty"` // streaming decoder footprint
		Sessions   int     `json:"sessions,omitempty"`              // server: concurrent sessions in the fleet
		RoundsPS   float64 `json:"rounds_per_sec,omitempty"`        // server: aggregate decoded rounds/s
		CommitP50  float64 `json:"commit_p50_ns,omitempty"`         // server: median commit latency
		CommitP99  float64 `json:"commit_p99_ns,omitempty"`         // server: tail commit latency
		Occupancy  float64 `json:"coalesce_occupancy,omitempty"`    // server: mean session batches per pool submission
		GoMaxProcs int     `json:"gomaxprocs"`                      // parallelism when this entry was measured
	}
	decoderName := map[toric.DecoderKind]string{
		toric.DecoderGreedy:    "greedy",
		toric.DecoderExact:     "exact",
		toric.DecoderUnionFind: "union-find",
	}
	report := struct {
		GoMaxProcs int     `json:"gomaxprocs"`
		UnixTime   int64   `json:"unix_time"`
		Entries    []entry `json:"entries"`
	}{GoMaxProcs: runtime.GOMAXPROCS(0), UnixTime: time.Now().Unix()}
	measure := func(run func()) float64 {
		run() // warm lattice/volume caches and scratch pools
		const iters = 5
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			run()
		}
		return float64(time.Since(t0).Nanoseconds()) / iters
	}
	const shots = 256
	for _, cfg := range toricDecodeConfigs() {
		ns := measure(func() { toric.MemoryExperiment(cfg.l, 0.08, cfg.kind, shots, 7) })
		report.Entries = append(report.Entries, entry{
			Name: "BenchmarkToricDecode/" + cfg.name, L: cfg.l, P: 0.08,
			Decoder: decoderName[cfg.kind], ShotsPerOp: shots,
			NsPerOp: ns, NsPerShot: ns / shots,
		})
	}
	const stShots = 64
	for _, cfg := range spacetimeDecodeConfigs() {
		ns := measure(func() { spacetime.Memory(cfg.l, cfg.l, 0.025, 0.025, cfg.kind, stShots, 7) })
		report.Entries = append(report.Entries, entry{
			Name: "BenchmarkSpacetimeDecode/" + cfg.name, L: cfg.l, Rounds: cfg.l,
			P: 0.025, Q: 0.025, Decoder: decoderName[cfg.kind], ShotsPerOp: stShots,
			NsPerOp: ns, NsPerShot: ns / stShots,
		})
	}
	// Circuit-level series: the full extraction circuit per round with
	// faults at every location, decoded over the diagonal-edge volume.
	for _, cfg := range circuitExtractConfigs() {
		P := noise.Uniform(0.006)
		ns := measure(func() { spacetime.CircuitMemory(cfg.l, cfg.l, P, cfg.kind, stShots, 7) })
		report.Entries = append(report.Entries, entry{
			Name: "BenchmarkCircuitExtract/" + cfg.name, L: cfg.l, Rounds: cfg.l,
			P: 0.006, Q: 0.006, Decoder: "circuit-" + decoderName[cfg.kind], ShotsPerOp: stShots,
			NsPerOp: ns, NsPerShot: ns / stShots,
		})
	}
	// Erasure/correlated/schedule series: the options-pipeline arms —
	// aware vs blind on the same injected leakage, the serialized
	// two-sector correlated decode, and the CNOT-schedule ablation.
	for _, arm := range circuitOptsArms() {
		arm := arm
		ns := measure(func() {
			if _, err := spacetime.CodeCircuitMemoryOpts(arm.code, 8, arm.P, stShots, 7, arm.opts); err != nil {
				t.Fatal(err)
			}
		})
		report.Entries = append(report.Entries, entry{
			Name: "BenchmarkCircuitOpts/" + arm.name, Code: arm.codeName, L: 8, Rounds: 8,
			P: arm.P.Gate1, Q: arm.P.Gate1, Decoder: arm.decoder, ShotsPerOp: stShots,
			NsPerOp: ns, NsPerShot: ns / stShots,
		})
	}
	// Correlated + erasure-aware streaming series: the serialized
	// primal→dual slides with per-layer erasure planes, the worst-case
	// options load the streaming pipeline carries.
	{
		const l, eps = 8, 0.003
		P := noise.Uniform(eps)
		P.Leak = 0.01
		w, c := stream.DefaultWindow(l)
		rounds := 4 * l
		opts := spacetime.DecodeOptions{ErasureAware: true, Correlated: true}
		ns := measure(func() {
			if _, err := stream.CircuitMemoryOpts(l, rounds, P, w, c, stShots, 7, opts); err != nil {
				t.Fatal(err)
			}
		})
		report.Entries = append(report.Entries, entry{
			Name: fmt.Sprintf("BenchmarkStreamDecode/correlated/L=%d", l), L: l, Rounds: rounds,
			Window: w, Commit: c, P: eps, Q: eps,
			Decoder: "window-circuit-correlated-union-find", ShotsPerOp: stShots,
			NsPerOp: ns, NsPerShot: ns / stShots,
			NsPerRound: ns / stShots / float64(rounds),
		})
	}
	// Streaming series: T = 4L rounds through W = 2L windows, plus the
	// resident window footprint of a 64-lane decoder in steady state.
	for _, l := range []int{4, 8, 16} {
		w, c := stream.DefaultWindow(l)
		wh, wv := spacetime.Weights(0.025, 0.025, l, 4*l)
		s, err := stream.NewSession(l, w, c, wh, wv)
		if err != nil {
			t.Fatal(err)
		}
		rounds := 4 * l
		ns := measure(func() {
			s.BatchMemory(rounds, 0.025, 0.025, stShots, frame.NewAggregateSampler(7, 0))
		})
		d := s.NewDecoder(stShots)
		src := spacetime.NewLayerSource(l, 0.025, 0.025, stShots, frame.NewAggregateSampler(7, 1))
		nc := l * l
		layerX := bits.NewVecs(nc, stShots)
		layerZ := bits.NewVecs(nc, stShots)
		for r := 0; r < 3*w; r++ {
			src.NextLayers(layerX, layerZ)
			d.Push(layerX, layerZ)
		}
		foot := d.FootprintBytes()
		s.Close()
		report.Entries = append(report.Entries, entry{
			Name: fmt.Sprintf("BenchmarkStreamDecode/L=%d", l), L: l, Rounds: rounds,
			Window: w, Commit: c, P: 0.025, Q: 0.025, Decoder: "window-" + decoderName[toric.DecoderUnionFind],
			ShotsPerOp: stShots, NsPerOp: ns, NsPerShot: ns / stShots,
			NsPerRound: ns / stShots / float64(rounds), WindowRSS: foot,
		})
	}
	// Dense-incremental series: the same threshold-point stream with
	// warm-start retention explicitly pinned on — the dense-regime
	// incremental trajectory (PR 7 retained forests only in sparse
	// lanes; the sub-window re-decode retains unconditionally).
	for _, l := range []int{8, 16} {
		w, c := stream.DefaultWindow(l)
		wh, wv := spacetime.Weights(0.025, 0.025, l, 4*l)
		s, err := stream.NewSession(l, w, c, wh, wv)
		if err != nil {
			t.Fatal(err)
		}
		s.SetIncremental(true)
		rounds := 4 * l
		ns := measure(func() {
			s.BatchMemory(rounds, 0.025, 0.025, stShots, frame.NewAggregateSampler(7, 0))
		})
		s.Close()
		report.Entries = append(report.Entries, entry{
			Name: fmt.Sprintf("BenchmarkStreamDecode/dense-incremental/L=%d", l), L: l, Rounds: rounds,
			Window: w, Commit: c, P: 0.025, Q: 0.025, Decoder: "window-incremental-" + decoderName[toric.DecoderUnionFind],
			ShotsPerOp: stShots, NsPerOp: ns, NsPerShot: ns / stShots,
			NsPerRound: ns / stShots / float64(rounds),
		})
	}
	// Circuit-level streaming series: the extraction circuit streamed
	// round by round through the diagonal-edge windows.
	for _, l := range []int{8, 16} {
		const eps = 0.003
		P := noise.Uniform(eps)
		w, c := stream.DefaultWindow(l)
		wh, wv, wd := spacetime.WeightsCircuit(P, l, w)
		s, err := stream.NewCircuitSession(l, w, c, wh, wv, wd)
		if err != nil {
			t.Fatal(err)
		}
		rounds := 4 * l
		ns := measure(func() {
			src := spacetime.NewCircuitLayerSource(l, P, stShots, frame.NewAggregateSampler(7, 0))
			s.BatchMemoryFrom(src, rounds)
		})
		s.Close()
		report.Entries = append(report.Entries, entry{
			Name: fmt.Sprintf("BenchmarkStreamDecode/circuit/L=%d", l), L: l, Rounds: rounds,
			Window: w, Commit: c, P: eps, Q: eps, Decoder: "window-circuit-" + decoderName[toric.DecoderUnionFind],
			ShotsPerOp: stShots, NsPerOp: ns, NsPerShot: ns / stShots,
			NsPerRound: ns / stShots / float64(rounds),
		})
	}
	// Planar streaming series: the open-boundary planar code's
	// extraction circuit through boundary-grounded diagonal-edge
	// windows — same operating point as the toric circuit series, so
	// the two families' per-shot·round costs are directly comparable.
	for _, d := range []int{5, 9} {
		const eps = 0.003
		P := noise.Uniform(eps)
		pc := surface.Planar(d)
		w, c := stream.DefaultWindow(d)
		wh, wv, wd := spacetime.WeightsCircuit(P, d, w)
		s, err := stream.NewCodeCircuitSession(pc, w, c, wh, wv, wd)
		if err != nil {
			t.Fatal(err)
		}
		rounds := 4 * d
		ns := measure(func() {
			src := surface.NewCircuitSource(pc, P, stShots, frame.NewAggregateSampler(7, 0))
			s.BatchMemoryFrom(src, rounds)
		})
		s.Close()
		report.Entries = append(report.Entries, entry{
			Name: fmt.Sprintf("BenchmarkStreamDecode/planar/d=%d", d), Code: "planar", L: d, Rounds: rounds,
			Window: w, Commit: c, P: eps, Q: eps, Decoder: "window-circuit-" + decoderName[toric.DecoderUnionFind],
			ShotsPerOp: stShots, NsPerOp: ns, NsPerShot: ns / stShots,
			NsPerRound: ns / stShots / float64(rounds),
		})
	}
	// Rotated streaming series: the rotated code's extraction circuit
	// through the same boundary-grounded windows — the cheapest code
	// family (d² data qubits) gets the same perf trajectory planar got
	// in PR 8.
	for _, d := range []int{5, 9} {
		const eps = 0.003
		P := noise.Uniform(eps)
		rc := surface.Rotated(d)
		w, c := stream.DefaultWindow(d)
		wh, wv, wd := spacetime.WeightsCircuit(P, d, w)
		s, err := stream.NewCodeCircuitSession(rc, w, c, wh, wv, wd)
		if err != nil {
			t.Fatal(err)
		}
		rounds := 4 * d
		ns := measure(func() {
			src := surface.NewCircuitSource(rc, P, stShots, frame.NewAggregateSampler(7, 0))
			s.BatchMemoryFrom(src, rounds)
		})
		s.Close()
		report.Entries = append(report.Entries, entry{
			Name: fmt.Sprintf("BenchmarkStreamDecode/rotated/d=%d", d), Code: "rotated", L: d, Rounds: rounds,
			Window: w, Commit: c, P: eps, Q: eps, Decoder: "window-circuit-" + decoderName[toric.DecoderUnionFind],
			ShotsPerOp: stShots, NsPerOp: ns, NsPerShot: ns / stShots,
			NsPerRound: ns / stShots / float64(rounds),
		})
	}
	// Quiet-region sweep: the L=16 stream well below threshold, where
	// the persistent-forest slide and sparse skip dominate the cost.
	for _, p := range []float64{0.008, 0.002, 0.0005} {
		const l = 16
		w, c := stream.DefaultWindow(l)
		wh, wv := spacetime.Weights(p, p, l, 4*l)
		s, err := stream.NewSession(l, w, c, wh, wv)
		if err != nil {
			t.Fatal(err)
		}
		rounds := 4 * l
		ns := measure(func() {
			s.BatchMemory(rounds, p, p, stShots, frame.NewAggregateSampler(7, 0))
		})
		s.Close()
		report.Entries = append(report.Entries, entry{
			Name: fmt.Sprintf("BenchmarkStreamDecode/quiet/L=%d/p=%g", l, p), L: l, Rounds: rounds,
			Window: w, Commit: c, P: p, Q: p, Decoder: "window-" + decoderName[toric.DecoderUnionFind],
			ShotsPerOp: stShots, NsPerOp: ns, NsPerShot: ns / stShots,
			NsPerRound: ns / stShots / float64(rounds),
		})
	}
	// Server series: a sustained fleet through the multi-tenant decode
	// server, reporting aggregate throughput and commit-latency tails.
	{
		const sessions, l, lanes, rounds = 8, 8, 64, 32
		wall, stats, _, err := serverFleetBest(sessions, l, lanes, rounds, 0.003, false)
		if err != nil {
			t.Fatal(err)
		}
		var p50, p99 time.Duration
		for _, st := range stats {
			p50 += st.Latency.P50
			p99 += st.Latency.P99
		}
		report.Entries = append(report.Entries, entry{
			Name: "BenchmarkServerThroughput", L: l, Rounds: rounds,
			P: 0.003, Q: 0.003, Decoder: "server-union-find", Seed: 9100, ShotsPerOp: lanes,
			NsPerOp: float64(wall.Nanoseconds()), Sessions: sessions,
			NsPerShot: float64(wall.Nanoseconds()) / float64(sessions*rounds*lanes),
			RoundsPS:  float64(sessions*rounds) / wall.Seconds(),
			CommitP50: float64(p50.Nanoseconds()) / sessions,
			CommitP99: float64(p99.Nanoseconds()) / sessions,
		})
	}
	// Wide-fleet series: 64 small sessions on one window shape, with
	// and without cross-session batch coalescing — the pair the
	// coalescer's throughput claim is measured on. The per-shot·round
	// figure makes these comparable to the streaming series.
	for _, mode := range []struct {
		name     string
		coalesce bool
	}{{"direct", false}, {"merged", true}} {
		const sessions, l, lanes, rounds = 64, 8, 16, 32
		wall, _, cst, err := serverFleetBest(sessions, l, lanes, rounds, 0.003, mode.coalesce)
		if err != nil {
			t.Fatal(err)
		}
		e := entry{
			Name: "BenchmarkServerFleetCoalesced/" + mode.name, L: l, Rounds: rounds,
			P: 0.003, Q: 0.003, Decoder: "server-union-find", Seed: 9100, ShotsPerOp: lanes,
			NsPerOp: float64(wall.Nanoseconds()), Sessions: sessions,
			NsPerShot:  float64(wall.Nanoseconds()) / float64(sessions*rounds*lanes),
			NsPerRound: float64(wall.Nanoseconds()) / float64(sessions*rounds*lanes),
			RoundsPS:   float64(sessions*rounds) / wall.Seconds(),
		}
		if mode.coalesce {
			e.Occupancy = cst.Occupancy
		}
		report.Entries = append(report.Entries, e)
	}
	for i := range report.Entries {
		e := &report.Entries[i]
		e.GoMaxProcs = runtime.GOMAXPROCS(0)
		if e.Code == "" {
			e.Code = "toric"
		}
		if e.Samples == 0 {
			e.Samples = e.ShotsPerOp
		}
		if e.Seed == 0 {
			e.Seed = 7
		}
	}
	// Every streaming series must carry the per-shot·round figure — the
	// number the perf trajectory tracks — and the CI smoke re-checks the
	// committed file for the same invariant.
	for _, e := range report.Entries {
		if strings.HasPrefix(e.Name, "BenchmarkStreamDecode") && e.NsPerRound <= 0 {
			t.Errorf("streaming series %s missing ns_per_shot_round", e.Name)
		}
	}
	// Merge-update: entries already in the file keep their place and are
	// replaced by name; series this run did not measure survive.
	if prev, err := os.ReadFile(path); err == nil {
		var old struct {
			Entries []entry `json:"entries"`
		}
		if json.Unmarshal(prev, &old) == nil && len(old.Entries) > 0 {
			idx := make(map[string]int, len(old.Entries))
			for i, e := range old.Entries {
				idx[e.Name] = i
			}
			merged := old.Entries
			for _, e := range report.Entries {
				if i, ok := idx[e.Name]; ok {
					merged[i] = e
				} else {
					idx[e.Name] = len(merged)
					merged = append(merged, e)
				}
			}
			report.Entries = merged
		}
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %d benchmark entries to %s", len(report.Entries), path)
}

// BenchmarkE18Thermal — §7.1: e^{-Δ/T} suppression.
func BenchmarkE18Thermal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		toric.ThermalMemory(5, 0.5, 3.0, toric.DecoderExact, 50, uint64(i))
	}
}

// BenchmarkE19Interferometer — Figs. 18/22: repeated measurement.
func BenchmarkE19Interferometer(b *testing.B) {
	rng := rand.New(rand.NewPCG(19, 19))
	for i := 0; i < b.N; i++ {
		anyon.InterferometerConfidence(0.2, 31)
		for k := 0; k < 100; k++ {
			anyon.NoisyFluxMeasurement(1, 0.2, 31, rng)
		}
	}
}

// BenchmarkE20AnyonLogic — §7.3-§7.4: pull-through NOT and Toffoli.
func BenchmarkE20AnyonLogic(b *testing.B) {
	enc := anyon.NewA5Encoding()
	w, err := enc.FindToffoliWitness()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := anyon.NewRegister(enc.G, 3, enc.U0)
		enc.NOT(r, 0)
		enc.NOT(r, 1)
		enc.Toffoli(r, w, 0, 1, 2)
	}
}

// BenchmarkE21GenericStabilizerEC — §3.6/§4.2: generalized Shor-method
// recovery on the [[5,1,3]] code (fault tolerance for ANY stabilizer
// code).
func BenchmarkE21GenericStabilizerEC(b *testing.B) {
	cfg := ft.DefaultConfig()
	g := ft.NewGenericEC(code.FiveQubit(), 1, cfg)
	rng := rand.New(rand.NewPCG(21, 21))
	data := []int{0, 1, 2, 3, 4}
	cat := []int{5, 6, 7, 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := frame.New(11, noise.Uniform(1e-3), rng)
		g.Recover(s, data, cat, 10)
	}
}

// BenchmarkTableauVsFrame compares the two simulator layers on the same
// recovery workload (the frame simulator is what makes §5-scale Monte
// Carlo feasible).
func BenchmarkTableauVsFrame(b *testing.B) {
	b.Run("frame", func(b *testing.B) {
		rng := rand.New(rand.NewPCG(20, 20))
		cfg := ft.DefaultConfig()
		for i := 0; i < b.N; i++ {
			s := frame.New(26, noise.Uniform(1e-3), rng)
			ft.RunEC(s, ft.MethodSteane, cfg)
		}
	})
	b.Run("statevec16", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := statevec.NewZero(16)
			for q := 0; q < 16; q++ {
				s.H(q)
			}
			for q := 0; q < 15; q++ {
				s.CNOT(q, q+1)
			}
		}
	})
}
