package noise

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestParamConstructors(t *testing.T) {
	u := Uniform(1e-3)
	if u.Gate1 != 1e-3 || u.Gate2 != 1e-3 || u.Storage != 1e-3 || u.Meas != 1e-3 || u.Prep != 1e-3 {
		t.Fatal("Uniform wrong")
	}
	g := GateOnly(1e-3)
	if g.Storage != 0 || g.Gate2 != 1e-3 {
		t.Fatal("GateOnly wrong")
	}
	s := StorageOnly(1e-3)
	if s.Gate1 != 0 || s.Storage != 1e-3 {
		t.Fatal("StorageOnly wrong")
	}
	if u.Scale(2).Gate1 != 2e-3 {
		t.Fatal("Scale wrong")
	}
}

func TestRandomPaulisUniform(t *testing.T) {
	rng := rand.New(rand.NewPCG(151, 152))
	counts := map[PauliError]int{}
	for i := 0; i < 30000; i++ {
		counts[Random1(rng)]++
	}
	for _, e := range []PauliError{ErrX, ErrZ, ErrY} {
		f := float64(counts[e]) / 30000
		if f < 0.30 || f > 0.37 {
			t.Fatalf("Pauli %d frequency %.3f, want 1/3", e, f)
		}
	}
	if counts[ErrNone] != 0 {
		t.Fatal("Random1 returned identity")
	}
	// Random2 never returns the identity pair.
	for i := 0; i < 10000; i++ {
		a, b := Random2(rng)
		if a == ErrNone && b == ErrNone {
			t.Fatal("Random2 returned identity ⊗ identity")
		}
	}
}

func TestCoherentVsRandomDrift(t *testing.T) {
	// §6: doubling N quadruples the coherent error but only doubles the
	// random-walk error.
	theta := 0.002
	c100 := CoherentDriftError(theta, 100)
	c200 := CoherentDriftError(theta, 200)
	if r := c200 / c100; r < 3.8 || r > 4.2 {
		t.Fatalf("coherent growth ratio %.2f, want ≈4", r)
	}
	rng := rand.New(rand.NewPCG(153, 154))
	r100 := RandomWalkDriftError(theta, 100, 4000, rng)
	r200 := RandomWalkDriftError(theta, 200, 4000, rng)
	if r := r200 / r100; r < 1.6 || r > 2.5 {
		t.Fatalf("random-walk growth ratio %.2f, want ≈2", r)
	}
	// And coherent accumulation is far worse in absolute terms.
	if c200 < 3*r200 {
		t.Fatalf("coherent %.2e should far exceed random %.2e", c200, r200)
	}
}

func TestCoherentMatchesClosedForm(t *testing.T) {
	// Analytic check: N=100, θ=0.01 → sin²(0.5).
	want := math.Pow(math.Sin(0.5), 2)
	if got := CoherentDriftError(0.01, 100); math.Abs(got-want) > 1e-12 {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestSystematicPenalty(t *testing.T) {
	if math.Abs(SystematicThresholdPenalty(6e-4)-3.6e-7) > 1e-20 {
		t.Fatal("penalty should square the threshold")
	}
}
