// Package noise defines the stochastic error models of Preskill §6:
// uncorrelated depolarizing errors attached to gates, preparations,
// measurements and idle ("storage") steps, with the pessimistic convention
// that a faulty two-qubit gate damages both qubits. It also provides the
// systematic (coherent) error model used to contrast random-walk error
// accumulation with linear amplitude drift.
package noise

import "math/rand/v2"

// Params holds per-location error probabilities. Each probability is the
// chance that the location is faulty; a faulty location applies a
// uniformly random nontrivial Pauli on its support (the "equally likely
// bit flip / phase flip / both" model of §5).
type Params struct {
	Gate1   float64 // per one-qubit gate
	Gate2   float64 // per two-qubit gate (damages both qubits)
	Prep    float64 // |0⟩ preparation flips to |1⟩
	Meas    float64 // classical readout flips
	Storage float64 // per qubit per idle moment
	Leak    float64 // per gate probability of leakage out of the qubit space
}

// Uniform gives every location (gates, prep, meas, storage) the same
// error probability ε — the simplest version of the paper's model.
func Uniform(eps float64) Params {
	return Params{Gate1: eps, Gate2: eps, Prep: eps, Meas: eps, Storage: eps}
}

// GateOnly models negligible storage error (the assumption behind
// Preskill's Eq. 34 estimate ε_gate,0 ~ 6·10⁻⁴).
func GateOnly(eps float64) Params {
	return Params{Gate1: eps, Gate2: eps, Prep: eps, Meas: eps}
}

// StorageOnly models negligible gate error (Eq. 35, ε_store,0 ~ 6·10⁻⁴).
func StorageOnly(eps float64) Params {
	return Params{Storage: eps}
}

// Scale returns a copy of p with every probability multiplied by f.
func (p Params) Scale(f float64) Params {
	return Params{
		Gate1:   p.Gate1 * f,
		Gate2:   p.Gate2 * f,
		Prep:    p.Prep * f,
		Meas:    p.Meas * f,
		Storage: p.Storage * f,
		Leak:    p.Leak * f,
	}
}

// PauliError identifies which Pauli hit a qubit: bit 0 = X component,
// bit 1 = Z component (so 1=X, 2=Z, 3=Y).
type PauliError uint8

// Error components.
const (
	ErrNone PauliError = 0
	ErrX    PauliError = 1
	ErrZ    PauliError = 2
	ErrY    PauliError = 3
)

// Random1 draws a uniformly random nontrivial one-qubit Pauli (X, Y or Z
// with probability 1/3 each), per the equal-likelihood assumption of §5.
func Random1(rng *rand.Rand) PauliError {
	return PauliError(1 + rng.IntN(3))
}

// Random2 draws a uniformly random nontrivial two-qubit Pauli: one of the
// 15 non-identity elements of {I,X,Y,Z}⊗², implementing the pessimistic
// convention that a faulty XOR can damage either or both qubits.
func Random2(rng *rand.Rand) (a, b PauliError) {
	k := 1 + rng.IntN(15)
	return PauliError(k & 3), PauliError(k >> 2)
}
