// Package noise defines the stochastic error models of Preskill §6:
// uncorrelated depolarizing errors attached to gates, preparations,
// measurements and idle ("storage") steps, with the pessimistic convention
// that a faulty two-qubit gate damages both qubits. It also provides the
// systematic (coherent) error model used to contrast random-walk error
// accumulation with linear amplitude drift.
package noise

import (
	"fmt"
	"math/rand/v2"
)

// Params holds per-location error probabilities. Each probability is the
// chance that the location is faulty; a faulty location applies a
// uniformly random nontrivial Pauli on its support (the "equally likely
// bit flip / phase flip / both" model of §5).
type Params struct {
	Gate1   float64 // per one-qubit gate
	Gate2   float64 // per two-qubit gate (damages both qubits)
	Prep    float64 // |0⟩ preparation flips to |1⟩
	Meas    float64 // classical readout flips
	Storage float64 // per qubit per idle moment
	Leak    float64 // per gate probability of leakage out of the qubit space

	// Bias is the noise-bias ratio η = p_Z / (p_X + p_Y) of each faulty
	// location's Pauli draw. The zero value means "unbiased" (the uniform
	// §5 model, equivalent to η = 1/2); η → ∞ is pure dephasing. Bias is
	// a shape parameter, not a rate: Scale leaves it untouched.
	Bias float64
}

// Uniform gives every location (gates, prep, meas, storage) the same
// error probability ε — the simplest version of the paper's model.
func Uniform(eps float64) Params {
	return Params{Gate1: eps, Gate2: eps, Prep: eps, Meas: eps, Storage: eps}
}

// GateOnly models negligible storage error (the assumption behind
// Preskill's Eq. 34 estimate ε_gate,0 ~ 6·10⁻⁴).
func GateOnly(eps float64) Params {
	return Params{Gate1: eps, Gate2: eps, Prep: eps, Meas: eps}
}

// StorageOnly models negligible gate error (Eq. 35, ε_store,0 ~ 6·10⁻⁴).
func StorageOnly(eps float64) Params {
	return Params{Storage: eps}
}

// Scale returns a copy of p with every probability multiplied by f.
func (p Params) Scale(f float64) Params {
	return Params{
		Gate1:   p.Gate1 * f,
		Gate2:   p.Gate2 * f,
		Prep:    p.Prep * f,
		Meas:    p.Meas * f,
		Storage: p.Storage * f,
		Leak:    p.Leak * f,
		Bias:    p.Bias,
	}
}

// Validate reports the first malformed field: probabilities outside
// [0,1] or a negative bias ratio.
func (p Params) Validate() error {
	check := func(name string, v float64) error {
		if v < 0 || v > 1 || v != v {
			return fmt.Errorf("noise: %s = %v outside [0,1]", name, v)
		}
		return nil
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"Gate1", p.Gate1}, {"Gate2", p.Gate2}, {"Prep", p.Prep},
		{"Meas", p.Meas}, {"Storage", p.Storage}, {"Leak", p.Leak},
	} {
		if err := check(f.name, f.v); err != nil {
			return err
		}
	}
	if p.Bias < 0 || p.Bias != p.Bias {
		return fmt.Errorf("noise: Bias = %v negative", p.Bias)
	}
	return nil
}

// PauliError identifies which Pauli hit a qubit: bit 0 = X component,
// bit 1 = Z component (so 1=X, 2=Z, 3=Y).
type PauliError uint8

// Error components.
const (
	ErrNone PauliError = 0
	ErrX    PauliError = 1
	ErrZ    PauliError = 2
	ErrY    PauliError = 3
)

// Random1 draws a uniformly random nontrivial one-qubit Pauli (X, Y or Z
// with probability 1/3 each), per the equal-likelihood assumption of §5.
func Random1(rng *rand.Rand) PauliError {
	return PauliError(1 + rng.IntN(3))
}

// Random2 draws a uniformly random nontrivial two-qubit Pauli: one of the
// 15 non-identity elements of {I,X,Y,Z}⊗², implementing the pessimistic
// convention that a faulty XOR can damage either or both qubits.
func Random2(rng *rand.Rand) (a, b PauliError) {
	k := 1 + rng.IntN(15)
	return PauliError(k & 3), PauliError(k >> 2)
}

// biasWeights returns the per-component weights (wI, wXY, wZ) of a
// biased Pauli draw with ratio η = p_Z/(p_X+p_Y): r_x = r_y =
// 1/(2(1+η)), r_z = η/(1+η), scaled by 3 so η = 1/2 gives the uniform
// weights (1, 1, 1).
func biasWeights(eta float64) (wXY, wZ float64) {
	return 3 / (2 * (1 + eta)), 3 * eta / (1 + eta)
}

// Random1Biased draws a nontrivial one-qubit Pauli with bias ratio η:
// P(Z)/[P(X)+P(Y)] = η, P(X) = P(Y). η = 1/2 reproduces Random1's
// uniform distribution (over a different stream discipline); a caller
// holding η = 0 should use Random1 instead.
func Random1Biased(rng *rand.Rand, eta float64) PauliError {
	wXY, wZ := biasWeights(eta)
	u := rng.Float64() * (2*wXY + wZ)
	switch {
	case u < wXY:
		return ErrX
	case u < 2*wXY:
		return ErrY
	default:
		return ErrZ
	}
}

// Random2Biased draws a nontrivial two-qubit Pauli whose 15 outcomes are
// weighted w(a)·w(b) with w(I) = 1, w(X) = w(Y) = wXY, w(Z) = wZ from
// biasWeights(η) — the two-qubit extension of Random1Biased under the
// same pessimistic "either or both qubits damaged" convention. η = 1/2
// gives all 15 outcomes equal weight, matching Random2's distribution.
func Random2Biased(rng *rand.Rand, eta float64) (a, b PauliError) {
	wXY, wZ := biasWeights(eta)
	w := [4]float64{1, wXY, wZ, wXY}
	total := (1 + 2*wXY + wZ) * (1 + 2*wXY + wZ)
	u := rng.Float64() * (total - 1)
	acc := 0.0
	for k := 1; k < 15; k++ {
		acc += w[k&3] * w[k>>2]
		if u < acc {
			return PauliError(k & 3), PauliError(k >> 2)
		}
	}
	return PauliError(15 & 3), PauliError(15 >> 2)
}
