package noise

import (
	"math"
	"math/rand/v2"

	"ftqc/internal/statevec"
)

// This file implements the random-vs-systematic error comparison of
// Preskill §6: errors with systematic phases accumulate linearly in
// *amplitude* (error probability ∝ N²θ²), while randomly-signed errors
// random-walk (probability ∝ Nθ²). The quadratic penalty is why the
// systematic-error threshold is of order ε₀² when the random threshold is
// ε₀.

// CoherentDriftError returns the error probability of a qubit held in |+⟩
// after N identical small Z-rotations by angle θ: the amplitudes add
// coherently, giving sin²(Nθ/2) ≈ (Nθ/2)².
func CoherentDriftError(theta float64, steps int) float64 {
	s := math.Sin(float64(steps) * theta / 2)
	return s * s
}

// RandomWalkDriftError measures the same experiment with randomly-signed
// rotations (±θ per step) on the dense simulator: the expected error
// probability grows only linearly, ≈ N(θ/2)².
func RandomWalkDriftError(theta float64, steps, samples int, rng *rand.Rand) float64 {
	total := 0.0
	for s := 0; s < samples; s++ {
		st := statevec.NewZero(1)
		st.H(0)
		for i := 0; i < steps; i++ {
			sign := 1.0
			if rng.IntN(2) == 1 {
				sign = -1
			}
			st.RotZ(0, sign*theta)
		}
		ref := statevec.NewZero(1)
		ref.H(0)
		total += 1 - statevec.Fidelity(st, ref)
	}
	return total / float64(samples)
}

// SystematicThresholdPenalty expresses the §6 estimate: if the accuracy
// threshold is eps0 for random errors, maximally conspiratorial
// systematic errors must meet roughly eps0² (amplitudes, not
// probabilities, must be below threshold).
func SystematicThresholdPenalty(eps0 float64) float64 { return eps0 * eps0 }
