// Package circuit provides a small quantum-circuit intermediate
// representation organized into moments (time steps of maximally parallel
// gates, matching the "maximal parallelism" assumption of Preskill §6).
// Circuits are consumed by the Pauli-frame simulator and by the location
// counters used in threshold estimates.
package circuit

import "fmt"

// Kind enumerates the operations appearing in the paper's circuits.
type Kind uint8

// Supported operations. CNOT is the paper's XOR gate; PrepZ/MeasZ are
// computational-basis preparation and destructive measurement; MeasX is
// measurement in the Hadamard-rotated basis.
const (
	KindH Kind = iota
	KindS
	KindSdg
	KindX
	KindY
	KindZ
	KindCNOT
	KindCZ
	KindPrepZ
	KindMeasZ
	KindMeasX
)

// String names the operation.
func (k Kind) String() string {
	return [...]string{"H", "S", "Sdg", "X", "Y", "Z", "CNOT", "CZ", "PrepZ", "MeasZ", "MeasX"}[k]
}

// IsTwoQubit reports whether the kind acts on two qubits.
func (k Kind) IsTwoQubit() bool { return k == KindCNOT || k == KindCZ }

// IsMeasurement reports whether the kind produces a classical bit.
func (k Kind) IsMeasurement() bool { return k == KindMeasZ || k == KindMeasX }

// Op is a single operation. B is -1 for one-qubit operations; M is the
// classical result slot for measurements and -1 otherwise.
type Op struct {
	Kind Kind
	A, B int
	M    int
}

// Moment is a set of operations acting on disjoint qubits in one step.
type Moment struct {
	Ops []Op
}

// Circuit is a moment-ordered circuit on N qubits.
type Circuit struct {
	N       int
	Moments []*Moment
	NumMeas int

	// busyUntil[q] is the first moment index at which qubit q is free.
	busyUntil []int
}

// New returns an empty circuit on n qubits.
func New(n int) *Circuit {
	return &Circuit{N: n, busyUntil: make([]int, n)}
}

// place schedules op as early as possible (ASAP scheduling), creating new
// moments as needed, and returns the moment index used.
func (c *Circuit) place(op Op) int {
	at := c.busyUntil[op.A]
	if op.B >= 0 && c.busyUntil[op.B] > at {
		at = c.busyUntil[op.B]
	}
	for len(c.Moments) <= at {
		c.Moments = append(c.Moments, &Moment{})
	}
	c.Moments[at].Ops = append(c.Moments[at].Ops, op)
	c.busyUntil[op.A] = at + 1
	if op.B >= 0 {
		c.busyUntil[op.B] = at + 1
	}
	return at
}

func (c *Circuit) check(qs ...int) {
	for _, q := range qs {
		if q < 0 || q >= c.N {
			panic(fmt.Sprintf("circuit: qubit %d out of range [0,%d)", q, c.N))
		}
	}
}

// H appends a Hadamard gate.
func (c *Circuit) H(q int) { c.check(q); c.place(Op{Kind: KindH, A: q, B: -1, M: -1}) }

// S appends a phase gate.
func (c *Circuit) S(q int) { c.check(q); c.place(Op{Kind: KindS, A: q, B: -1, M: -1}) }

// Sdg appends an inverse phase gate.
func (c *Circuit) Sdg(q int) { c.check(q); c.place(Op{Kind: KindSdg, A: q, B: -1, M: -1}) }

// X appends a NOT gate.
func (c *Circuit) X(q int) { c.check(q); c.place(Op{Kind: KindX, A: q, B: -1, M: -1}) }

// Y appends a Y gate.
func (c *Circuit) Y(q int) { c.check(q); c.place(Op{Kind: KindY, A: q, B: -1, M: -1}) }

// Z appends a phase-flip gate.
func (c *Circuit) Z(q int) { c.check(q); c.place(Op{Kind: KindZ, A: q, B: -1, M: -1}) }

// CNOT appends an XOR gate with control a, target b.
func (c *Circuit) CNOT(a, b int) {
	c.check(a, b)
	if a == b {
		panic("circuit: CNOT with equal qubits")
	}
	c.place(Op{Kind: KindCNOT, A: a, B: b, M: -1})
}

// CZ appends a controlled-Z.
func (c *Circuit) CZ(a, b int) {
	c.check(a, b)
	if a == b {
		panic("circuit: CZ with equal qubits")
	}
	c.place(Op{Kind: KindCZ, A: a, B: b, M: -1})
}

// PrepZ appends a |0⟩ preparation.
func (c *Circuit) PrepZ(q int) { c.check(q); c.place(Op{Kind: KindPrepZ, A: q, B: -1, M: -1}) }

// MeasZ appends a computational-basis measurement and returns its result
// slot.
func (c *Circuit) MeasZ(q int) int {
	c.check(q)
	m := c.NumMeas
	c.NumMeas++
	c.place(Op{Kind: KindMeasZ, A: q, B: -1, M: m})
	return m
}

// MeasX appends an X-basis measurement and returns its result slot.
func (c *Circuit) MeasX(q int) int {
	c.check(q)
	m := c.NumMeas
	c.NumMeas++
	c.place(Op{Kind: KindMeasX, A: q, B: -1, M: m})
	return m
}

// Barrier forces all subsequent operations into later moments than
// everything appended so far.
func (c *Circuit) Barrier() {
	at := 0
	for _, b := range c.busyUntil {
		if b > at {
			at = b
		}
	}
	for q := range c.busyUntil {
		c.busyUntil[q] = at
	}
}

// Depth returns the number of moments.
func (c *Circuit) Depth() int { return len(c.Moments) }

// Stats summarizes the circuit's fault locations, used for the location
// counting that enters threshold estimates (Preskill §5).
type Stats struct {
	Gates1Q int
	Gates2Q int
	Preps   int
	Meas    int
	Depth   int
	// Idle counts qubit-moments in which a qubit sits idle between its
	// first and last use — the storage-error locations of §6.
	Idle int
}

// Stats computes the location counts.
func (c *Circuit) Stats() Stats {
	var s Stats
	s.Depth = len(c.Moments)
	first := make([]int, c.N)
	last := make([]int, c.N)
	for q := range first {
		first[q] = -1
	}
	active := make([][]bool, len(c.Moments))
	for m := range active {
		active[m] = make([]bool, c.N)
	}
	for mi, m := range c.Moments {
		for _, op := range m.Ops {
			switch {
			case op.Kind.IsTwoQubit():
				s.Gates2Q++
			case op.Kind == KindPrepZ:
				s.Preps++
			case op.Kind.IsMeasurement():
				s.Meas++
			default:
				s.Gates1Q++
			}
			qs := []int{op.A}
			if op.B >= 0 {
				qs = append(qs, op.B)
			}
			for _, q := range qs {
				active[mi][q] = true
				if first[q] < 0 {
					first[q] = mi
				}
				last[q] = mi
			}
		}
	}
	for q := 0; q < c.N; q++ {
		if first[q] < 0 {
			continue
		}
		for m := first[q] + 1; m < last[q]; m++ {
			if !active[m][q] {
				s.Idle++
			}
		}
	}
	return s
}

// TotalLocations returns the total number of fault locations (gates,
// preparations, measurements and idle steps).
func (s Stats) TotalLocations() int {
	return s.Gates1Q + s.Gates2Q + s.Preps + s.Meas + s.Idle
}
