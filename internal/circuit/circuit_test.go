package circuit

import "testing"

func TestASAPScheduling(t *testing.T) {
	c := New(3)
	c.H(0)
	c.H(1) // parallel with H(0)
	c.CNOT(0, 1)
	c.H(2) // fits in moment 0
	if c.Depth() != 2 {
		t.Fatalf("depth: got %d, want 2", c.Depth())
	}
	if len(c.Moments[0].Ops) != 3 {
		t.Fatalf("moment 0 should hold 3 ops, got %d", len(c.Moments[0].Ops))
	}
}

func TestBarrier(t *testing.T) {
	c := New(2)
	c.H(0)
	c.Barrier()
	c.H(1)
	if c.Depth() != 2 {
		t.Fatalf("barrier ignored: depth %d", c.Depth())
	}
}

func TestMeasurementSlots(t *testing.T) {
	c := New(2)
	m0 := c.MeasZ(0)
	m1 := c.MeasX(1)
	if m0 != 0 || m1 != 1 || c.NumMeas != 2 {
		t.Fatalf("slots %d %d count %d", m0, m1, c.NumMeas)
	}
}

func TestStatsCounts(t *testing.T) {
	c := New(3)
	c.PrepZ(0)
	c.PrepZ(1)
	c.H(0)
	c.CNOT(0, 1)
	c.MeasZ(0)
	c.MeasZ(1)
	s := c.Stats()
	if s.Gates1Q != 1 || s.Gates2Q != 1 || s.Preps != 2 || s.Meas != 2 {
		t.Fatalf("stats %+v", s)
	}
	if s.TotalLocations() != 1+1+2+2+s.Idle {
		t.Fatalf("total locations inconsistent: %+v", s)
	}
}

func TestIdleCounting(t *testing.T) {
	// Qubit 1 idles for one moment between its uses.
	c := New(2)
	c.H(1)
	c.H(0)
	c.H(0)
	c.Barrier()
	c.H(1)
	s := c.Stats()
	if s.Idle != 1 {
		t.Fatalf("idle: got %d, want 1 (depth %d)", s.Idle, s.Depth)
	}
}

func TestPanicsOnBadQubit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range qubit")
		}
	}()
	c := New(2)
	c.H(5)
}

func TestPanicsOnSelfCNOT(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on CNOT(q,q)")
		}
	}()
	c := New(2)
	c.CNOT(1, 1)
}
