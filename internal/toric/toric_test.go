package toric

import (
	"math"
	"math/rand/v2"
	"runtime"
	"testing"

	"ftqc/internal/bits"
	"ftqc/internal/frame"
)

func TestLatticeIndexing(t *testing.T) {
	l := NewLattice(4)
	if l.Qubits() != 32 {
		t.Fatalf("qubits %d", l.Qubits())
	}
	// Wrapping.
	if l.HEdge(4, 0) != l.HEdge(0, 0) || l.VEdge(-1, 2) != l.VEdge(3, 2) {
		t.Fatal("torus wrapping broken")
	}
	// All edges distinct.
	seen := map[int]bool{}
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			for _, e := range []int{l.HEdge(x, y), l.VEdge(x, y)} {
				if seen[e] {
					t.Fatalf("duplicate edge index %d", e)
				}
				seen[e] = true
			}
		}
	}
}

func TestStabilizersCommute(t *testing.T) {
	// Every star shares an even number of edges with every plaquette —
	// the commutation property behind Kitaev's mutually commuting
	// Hamiltonian terms (§7.2).
	l := NewLattice(5)
	for sy := 0; sy < 5; sy++ {
		for sx := 0; sx < 5; sx++ {
			star := l.StarEdges(sx, sy)
			for py := 0; py < 5; py++ {
				for px := 0; px < 5; px++ {
					plq := l.PlaquetteEdges(px, py)
					shared := 0
					for _, a := range star {
						for _, b := range plq {
							if a == b {
								shared++
							}
						}
					}
					if shared%2 != 0 {
						t.Fatalf("star(%d,%d) and plaquette(%d,%d) share %d edges",
							sx, sy, px, py, shared)
					}
				}
			}
		}
	}
}

func TestSingleErrorMakesDefectPair(t *testing.T) {
	l := NewLattice(4)
	errs := bits.NewVec(l.Qubits())
	errs.Flip(l.HEdge(1, 1))
	defects := l.Syndrome(errs)
	if len(defects) != 2 {
		t.Fatalf("single flip should nucleate an anyon pair, got %d defects", len(defects))
	}
}

func TestDefectCountAlwaysEven(t *testing.T) {
	l := NewLattice(5)
	rng := rand.New(rand.NewPCG(131, 132))
	for trial := 0; trial < 100; trial++ {
		errs := bits.NewVec(l.Qubits())
		for e := 0; e < l.Qubits(); e++ {
			if rng.Float64() < 0.2 {
				errs.Flip(e)
			}
		}
		if len(l.Syndrome(errs))%2 != 0 {
			t.Fatal("odd defect count on a torus")
		}
	}
}

func TestDecoderCorrectsSingleErrors(t *testing.T) {
	l := NewLattice(5)
	for e := 0; e < l.Qubits(); e++ {
		errs := bits.NewVec(l.Qubits())
		errs.Flip(e)
		corr := l.Decode(l.Syndrome(errs), DecoderExact)
		errs.Xor(corr)
		if len(l.Syndrome(errs)) != 0 {
			t.Fatalf("edge %d: correction left defects", e)
		}
		if l.LogicalError(errs) {
			t.Fatalf("edge %d: correction introduced a logical error", e)
		}
	}
}

func TestDecoderCorrectsUpToHalfDistance(t *testing.T) {
	// Any ⌊(L-1)/2⌋ random flips must be corrected by the exact matcher.
	l := NewLattice(7)
	rng := rand.New(rand.NewPCG(133, 134))
	for trial := 0; trial < 300; trial++ {
		errs := bits.NewVec(l.Qubits())
		for k := 0; k < 3; k++ {
			errs.Flip(rng.IntN(l.Qubits()))
		}
		work := errs.Clone()
		corr := l.Decode(l.Syndrome(work), DecoderExact)
		work.Xor(corr)
		if len(l.Syndrome(work)) != 0 {
			t.Fatal("residual defects after decoding weight-3 error")
		}
		if l.LogicalError(work) {
			t.Fatalf("weight-3 error misdecoded to a logical on L=7 (trial %d)", trial)
		}
	}
}

func TestHomologyDetection(t *testing.T) {
	// A full noncontractible dual loop is a logical error with empty
	// syndrome: the vertical edges along one row form an x-winding cycle
	// of the dual lattice.
	l := NewLattice(4)
	errs := bits.NewVec(l.Qubits())
	for x := 0; x < 4; x++ {
		errs.Flip(l.VEdge(x, 2))
	}
	if len(l.Syndrome(errs)) != 0 {
		t.Fatal("winding loop should be syndrome-free")
	}
	if !l.LogicalError(errs) {
		t.Fatal("winding loop must be a logical error")
	}
	// A contractible dual loop (one star operator) is trivial.
	triv := bits.NewVec(l.Qubits())
	for _, e := range l.StarEdges(1, 1) {
		triv.Flip(e)
	}
	if len(l.Syndrome(triv)) != 0 || l.LogicalError(triv) {
		t.Fatal("star operator must be trivial")
	}
}

func TestPathBetweenConnectsDefects(t *testing.T) {
	l := NewLattice(6)
	rng := rand.New(rand.NewPCG(135, 136))
	for trial := 0; trial < 100; trial++ {
		a, b := rng.IntN(36), rng.IntN(36)
		if a == b {
			continue
		}
		chain := bits.NewVec(l.Qubits())
		l.PathBetween(a, b, chain)
		defects := l.Syndrome(chain)
		if len(defects) != 2 {
			t.Fatalf("path produced %d defects", len(defects))
		}
		ok := (defects[0] == a && defects[1] == b) || (defects[0] == b && defects[1] == a)
		if !ok {
			t.Fatalf("path endpoints %v, want {%d,%d}", defects, a, b)
		}
		if chain.Weight() != l.TorusDist(a, b) {
			t.Fatalf("path weight %d ≠ distance %d", chain.Weight(), l.TorusDist(a, b))
		}
	}
}

func TestExactBeatsGreedyOrTies(t *testing.T) {
	l := NewLattice(6)
	rng := rand.New(rand.NewPCG(137, 138))
	worseCount := 0
	for trial := 0; trial < 200; trial++ {
		errs := bits.NewVec(l.Qubits())
		for k := 0; k < 5; k++ {
			errs.Flip(rng.IntN(l.Qubits()))
		}
		defects := l.Syndrome(errs)
		if len(defects) > 12 {
			continue
		}
		ew := l.Decode(defects, DecoderExact).Weight()
		gw := l.Decode(defects, DecoderGreedy).Weight()
		if ew > gw {
			worseCount++
		}
	}
	if worseCount > 0 {
		t.Fatalf("exact matching produced heavier corrections %d times", worseCount)
	}
}

func TestMemorySuppressionWithDistance(t *testing.T) {
	// Below threshold the failure rate must fall with L (e^{−αL} shape).
	p := 0.02
	r3 := MemoryExperiment(3, p, DecoderExact, 4000, 139)
	r7 := MemoryExperiment(7, p, DecoderExact, 4000, 140)
	if r7.FailRate() >= r3.FailRate() && r3.Failures > 0 {
		t.Fatalf("no suppression: L=3 %.4f vs L=7 %.4f", r3.FailRate(), r7.FailRate())
	}
}

func TestMemoryFailsAboveThreshold(t *testing.T) {
	// Far above threshold, bigger lattices are worse (or saturated ~50%).
	r := MemoryExperiment(7, 0.25, DecoderGreedy, 1500, 141)
	if r.FailRate() < 0.2 {
		t.Fatalf("p=0.25 should destroy the memory, failure %.3f", r.FailRate())
	}
}

func TestMemoryExperimentDeterministic(t *testing.T) {
	a := MemoryExperiment(5, 0.05, DecoderExact, 700, 17)
	b := MemoryExperiment(5, 0.05, DecoderExact, 700, 17)
	if a.Failures != b.Failures || a.Samples != b.Samples {
		t.Fatalf("same seed, different results: %+v vs %+v", a, b)
	}
}

func TestThermalSuppression(t *testing.T) {
	cold := ThermalMemory(5, 0.5, 6.0, DecoderExact, 3000, 143) // Δ/T = 6
	hot := ThermalMemory(5, 0.5, 1.0, DecoderExact, 3000, 144)  // Δ/T = 1
	if cold.FailRate() >= hot.FailRate() && hot.Failures > 0 {
		t.Fatalf("no thermal suppression: cold %.4f hot %.4f", cold.FailRate(), hot.FailRate())
	}
}

// TestWindingParityMatchesHomologyTester cross-checks the O(L) winding
// detectors against the basis-reduction homology test on random cycles
// (random star products, optionally with winding loops mixed in).
func TestWindingParityMatchesHomologyTester(t *testing.T) {
	l := NewLattice(5)
	rng := rand.New(rand.NewPCG(145, 146))
	for trial := 0; trial < 300; trial++ {
		cyc := bits.NewVec(l.Qubits())
		for y := 0; y < l.L; y++ {
			for x := 0; x < l.L; x++ {
				if rng.IntN(2) == 1 {
					for _, e := range l.StarEdges(x, y) {
						cyc.Flip(e)
					}
				}
			}
		}
		wantA, wantB := false, false
		if rng.IntN(2) == 1 { // horizontal dual winding loop
			for x := 0; x < l.L; x++ {
				cyc.Flip(l.VEdge(x, 1))
			}
			wantA = true
		}
		if rng.IntN(2) == 1 { // vertical dual winding loop
			for y := 0; y < l.L; y++ {
				cyc.Flip(l.HEdge(2, y))
			}
			wantB = true
		}
		if len(l.Syndrome(cyc)) != 0 {
			t.Fatal("constructed chain is not a cycle")
		}
		a, b := l.WindingParity(cyc)
		if a != wantA || b != wantB {
			t.Fatalf("trial %d: winding (%v,%v) want (%v,%v)", trial, a, b, wantA, wantB)
		}
		if l.LogicalError(cyc) != (a || b) {
			t.Fatalf("trial %d: detectors disagree with homology tester", trial)
		}
	}
}

// TestBatchMemoryMatchesScalar is the toric leg of the scalar-vs-batch
// equivalence suite: BatchMemory over a lockstep sampler must reproduce,
// shot for shot, the serial per-shot procedure (sample edges in order,
// decode, homology-test the residual) run from the paired PCG streams.
func TestBatchMemoryMatchesScalar(t *testing.T) {
	const lanes = 70 // exercises the tail word
	for _, tc := range []struct {
		l    int
		p    float64
		kind DecoderKind
	}{
		{3, 0.05, DecoderExact},
		{5, 0.03, DecoderExact},
		{5, 0.12, DecoderGreedy},
		{4, 0.25, DecoderGreedy},
		{5, 0.25, DecoderExact}, // >14 defects: beyond the old bitmask cap
		{4, 0.06, DecoderUnionFind},
		{5, 0.2, DecoderUnionFind},
	} {
		lat := NewLattice(tc.l)
		seed := uint64(1000*tc.l) + uint64(tc.p*1e4)
		fails := lat.BatchMemory(tc.p, tc.kind, lanes, frame.NewLockstepSampler(seed, lanes))
		for lane := 0; lane < lanes; lane++ {
			rng := rand.New(rand.NewPCG(seed, uint64(lane)))
			errs := bits.NewVec(lat.Qubits())
			for e := 0; e < lat.Qubits(); e++ {
				if rng.Float64() < tc.p {
					errs.Flip(e)
				}
			}
			corr := lat.Decode(lat.Syndrome(errs), tc.kind)
			errs.Xor(corr)
			fail := len(lat.Syndrome(errs)) != 0 || lat.LogicalError(errs)
			if fails.Get(lane) != fail {
				t.Fatalf("L=%d p=%v %v lane %d: batch %v scalar %v",
					tc.l, tc.p, tc.kind, lane, fails.Get(lane), fail)
			}
		}
	}
}

func TestTunnelingEstimate(t *testing.T) {
	if TunnelingErrorProb(1.0, 10) >= TunnelingErrorProb(1.0, 5) {
		t.Fatal("tunneling amplitude must fall with separation")
	}
}

// TestAllDecodersClearSyndrome is the shared soundness property: for
// every decoder kind, the correction's syndrome must equal the defect
// set on random error patterns of every density, leaving a closed
// (syndrome-free) residual.
func TestAllDecodersClearSyndrome(t *testing.T) {
	rng := rand.New(rand.NewPCG(151, 152))
	for _, l := range []int{3, 5, 8} {
		lat := NewLattice(l)
		for trial := 0; trial < 150; trial++ {
			p := []float64{0.02, 0.08, 0.2, 0.45}[trial%4]
			errs := bits.NewVec(lat.Qubits())
			for e := 0; e < lat.Qubits(); e++ {
				if rng.Float64() < p {
					errs.Flip(e)
				}
			}
			defects := lat.Syndrome(errs)
			for _, kind := range []DecoderKind{DecoderGreedy, DecoderExact, DecoderUnionFind} {
				work := errs.Clone()
				work.Xor(lat.Decode(defects, kind))
				if rest := lat.Syndrome(work); len(rest) != 0 {
					t.Fatalf("L=%d trial %d kind %d: correction left %d defects",
						l, trial, kind, len(rest))
				}
			}
		}
	}
}

// TestUnionFindMatchesExactFailureRate holds the union-find decoder to
// the exact-matching baseline at small L: the two logical failure rates
// must agree within combined statistical error (plus a small systematic
// allowance — union-find is near-optimal, not optimal).
func TestUnionFindMatchesExactFailureRate(t *testing.T) {
	const samples = 6000
	for _, tc := range []struct {
		l int
		p float64
	}{{4, 0.04}, {6, 0.06}} {
		ex := MemoryExperiment(tc.l, tc.p, DecoderExact, samples, 161)
		uf := MemoryExperiment(tc.l, tc.p, DecoderUnionFind, samples, 161)
		fe, fu := ex.FailRate(), uf.FailRate()
		// Binomial standard errors, combined.
		sigma := math.Sqrt(fe*(1-fe)/samples + fu*(1-fu)/samples)
		if diff := math.Abs(fe - fu); diff > 4*sigma+0.01 {
			t.Fatalf("L=%d p=%v: union-find %.4f vs exact %.4f (diff %.4f > %.4f)",
				tc.l, tc.p, fu, fe, diff, 4*sigma+0.01)
		}
		if fu > 3*fe+4*sigma && fe > 0 {
			t.Fatalf("L=%d p=%v: union-find failure %.4f far above exact %.4f",
				tc.l, tc.p, fu, fe)
		}
	}
}

// TestDecoderComparison pits the old greedy matcher against both new
// decoders: the exact matcher must never produce a heavier correction
// than greedy, and at a below-threshold operating point both new
// decoders must have a logical failure rate no worse than greedy's
// (within statistical error).
func TestDecoderComparison(t *testing.T) {
	lat := NewLattice(6)
	rng := rand.New(rand.NewPCG(163, 164))
	for trial := 0; trial < 300; trial++ {
		errs := bits.NewVec(lat.Qubits())
		for k := 0; k < 8; k++ {
			errs.Flip(rng.IntN(lat.Qubits()))
		}
		defects := lat.Syndrome(errs)
		ew := lat.Decode(defects, DecoderExact).Weight()
		gw := lat.Decode(defects, DecoderGreedy).Weight()
		if ew > gw {
			t.Fatalf("trial %d: exact weight %d > greedy weight %d", trial, ew, gw)
		}
	}
	const samples = 5000
	const p = 0.06
	g := MemoryExperiment(6, p, DecoderGreedy, samples, 165)
	e := MemoryExperiment(6, p, DecoderExact, samples, 165)
	u := MemoryExperiment(6, p, DecoderUnionFind, samples, 165)
	sigma := math.Sqrt(g.FailRate() * (1 - g.FailRate()) / samples)
	if e.FailRate() > g.FailRate()+4*sigma+0.01 {
		t.Fatalf("exact failure %.4f worse than greedy %.4f", e.FailRate(), g.FailRate())
	}
	if u.FailRate() > g.FailRate()+4*sigma+0.015 {
		t.Fatalf("union-find failure %.4f worse than greedy %.4f", u.FailRate(), g.FailRate())
	}
}

// TestDecodeStageGOMAXPROCSInvariant is the determinism contract of the
// worker-pool decode stage: the same experiment must produce identical
// failure counts whatever the worker count.
func TestDecodeStageGOMAXPROCSInvariant(t *testing.T) {
	run := func() [3]int {
		var out [3]int
		for i, kind := range []DecoderKind{DecoderGreedy, DecoderExact, DecoderUnionFind} {
			out[i] = MemoryExperiment(6, 0.08, kind, 900, 167).Failures
		}
		return out
	}
	old := runtime.GOMAXPROCS(1)
	serial := run()
	runtime.GOMAXPROCS(8)
	parallel := run()
	runtime.GOMAXPROCS(old)
	if serial != parallel {
		t.Fatalf("decode results depend on GOMAXPROCS: 1 → %v, 8 → %v", serial, parallel)
	}
	// And lane-level: a single big batch decoded with many workers must
	// match the single-worker mask bit for bit.
	lat := NewLattice(8)
	const lanes = 500
	runtime.GOMAXPROCS(1)
	a := lat.BatchMemory(0.07, DecoderUnionFind, lanes, frame.NewLockstepSampler(42, lanes))
	runtime.GOMAXPROCS(8)
	b := lat.BatchMemory(0.07, DecoderUnionFind, lanes, frame.NewLockstepSampler(42, lanes))
	runtime.GOMAXPROCS(old)
	if !a.Equal(b) {
		t.Fatal("BatchMemory failure mask depends on GOMAXPROCS")
	}
}

// TestLargeDistanceSmoke: the union-find decoder makes L = 16 and L = 32
// memory experiments run — the workloads the old bitmask/greedy path
// could not reach — and below threshold the larger distance must not be
// worse.
func TestLargeDistanceSmoke(t *testing.T) {
	r16 := MemoryExperiment(16, 0.04, DecoderUnionFind, 400, 169)
	r32 := MemoryExperiment(32, 0.04, DecoderUnionFind, 100, 170)
	if r16.Samples != 400 || r32.Samples != 100 {
		t.Fatal("sample counts wrong")
	}
	if r32.FailRate() > r16.FailRate()+0.05 {
		t.Fatalf("no suppression at scale: L=16 %.4f vs L=32 %.4f", r16.FailRate(), r32.FailRate())
	}
}

// TestDualSectorStabilizers: the dual detectors must be orthogonal to
// every plaquette operator, and star syndromes of plaquette products
// must vanish (the Z-sector mirror of the commutation tests above).
func TestDualSectorStabilizers(t *testing.T) {
	l := NewLattice(5)
	for y := 0; y < 5; y++ {
		for x := 0; x < 5; x++ {
			chain := bits.NewVec(l.Qubits())
			for _, e := range l.PlaquetteEdges(x, y) {
				chain.Flip(e)
			}
			if len(l.StarSyndrome(chain)) != 0 {
				t.Fatalf("plaquette (%d,%d) has nonzero star syndrome", x, y)
			}
			if a, b := l.WindingParityDual(chain); a || b {
				t.Fatalf("plaquette (%d,%d) trips a dual winding detector", x, y)
			}
			if l.LogicalZError(chain) {
				t.Fatalf("plaquette (%d,%d) misread as logical Z", x, y)
			}
		}
	}
}

// TestDualWindingDetectsZLogicals: direct-lattice winding loops are
// syndrome-free logical Z operators and must trip exactly the matching
// dual detector.
func TestDualWindingDetectsZLogicals(t *testing.T) {
	l := NewLattice(4)
	// Vertical winding: a column of vertical edges.
	vloop := bits.NewVec(l.Qubits())
	for y := 0; y < 4; y++ {
		vloop.Flip(l.VEdge(2, y))
	}
	if len(l.StarSyndrome(vloop)) != 0 {
		t.Fatal("v-column is not a cycle")
	}
	if a, b := l.WindingParityDual(vloop); !a || b {
		t.Fatalf("v-column winding read (%v,%v), want (true,false)", a, b)
	}
	if !l.LogicalZError(vloop) {
		t.Fatal("v-column must be a logical Z")
	}
	// Horizontal winding: a row of horizontal edges.
	hloop := bits.NewVec(l.Qubits())
	for x := 0; x < 4; x++ {
		hloop.Flip(l.HEdge(x, 1))
	}
	if len(l.StarSyndrome(hloop)) != 0 {
		t.Fatal("h-row is not a cycle")
	}
	if a, b := l.WindingParityDual(hloop); a || !b {
		t.Fatalf("h-row winding read (%v,%v), want (false,true)", a, b)
	}
	if !l.LogicalZError(hloop) {
		t.Fatal("h-row must be a logical Z")
	}
}

// TestDualWindingMatchesZHomology cross-checks the O(L) dual detectors
// against the plaquette-span homology tester on random Z cycles.
func TestDualWindingMatchesZHomology(t *testing.T) {
	l := NewLattice(5)
	rng := rand.New(rand.NewPCG(401, 402))
	for trial := 0; trial < 200; trial++ {
		cyc := bits.NewVec(l.Qubits())
		for y := 0; y < l.L; y++ {
			for x := 0; x < l.L; x++ {
				if rng.IntN(2) == 1 {
					for _, e := range l.PlaquetteEdges(x, y) {
						cyc.Flip(e)
					}
				}
			}
		}
		wantA, wantB := false, false
		if rng.IntN(2) == 1 {
			for y := 0; y < l.L; y++ {
				cyc.Flip(l.VEdge(1, y))
			}
			wantA = true
		}
		if rng.IntN(2) == 1 {
			for x := 0; x < l.L; x++ {
				cyc.Flip(l.HEdge(x, 2))
			}
			wantB = true
		}
		if len(l.StarSyndrome(cyc)) != 0 {
			t.Fatal("constructed Z chain is not a cycle")
		}
		a, b := l.WindingParityDual(cyc)
		if a != wantA || b != wantB {
			t.Fatalf("trial %d: dual winding (%v,%v) want (%v,%v)", trial, a, b, wantA, wantB)
		}
		if l.LogicalZError(cyc) != (a || b) {
			t.Fatalf("trial %d: dual detectors disagree with Z homology tester", trial)
		}
	}
}

// TestDualDecodersClearStarSyndrome: every decoder kind must clear
// random star syndromes through the dual graph, mirroring the primal
// soundness property.
func TestDualDecodersClearStarSyndrome(t *testing.T) {
	rng := rand.New(rand.NewPCG(403, 404))
	for _, lsize := range []int{3, 6} {
		lat := NewLattice(lsize)
		for trial := 0; trial < 120; trial++ {
			p := []float64{0.03, 0.1, 0.3}[trial%3]
			errs := bits.NewVec(lat.Qubits())
			for e := 0; e < lat.Qubits(); e++ {
				if rng.Float64() < p {
					errs.Flip(e)
				}
			}
			defects := lat.StarSyndrome(errs)
			for _, kind := range []DecoderKind{DecoderGreedy, DecoderExact, DecoderUnionFind} {
				work := errs.Clone()
				work.Xor(lat.DecodeDual(defects, kind))
				if rest := lat.StarSyndrome(work); len(rest) != 0 {
					t.Fatalf("L=%d trial %d kind %d: dual correction left %d star defects",
						lsize, trial, kind, len(rest))
				}
			}
		}
	}
}

// TestMemoryXZSectorsSymmetric: with independent X and Z flips at the
// same rate, the two sectors' failure rates must agree within
// statistical error (the dual lattice is an isomorphic decoding
// problem), and both must be suppressed with distance below threshold.
func TestMemoryXZSectorsSymmetric(t *testing.T) {
	const samples = 4000
	r := MemoryExperimentXZ(5, 0.04, DecoderUnionFind, samples, 405)
	fx, fz := r.FailRateX(), r.FailRateZ()
	sigma := math.Sqrt(fx*(1-fx)/samples + fz*(1-fz)/samples)
	if diff := math.Abs(fx - fz); diff > 4*sigma+0.01 {
		t.Fatalf("sector asymmetry: X %.4f vs Z %.4f (diff %.4f)", fx, fz, diff)
	}
	if r.Failures < r.FailX || r.Failures < r.FailZ || r.Failures > r.FailX+r.FailZ {
		t.Fatalf("combined failures %d inconsistent with X %d, Z %d", r.Failures, r.FailX, r.FailZ)
	}
	big := MemoryExperimentXZ(9, 0.04, DecoderUnionFind, samples, 406)
	if big.FailRate() >= r.FailRate() && r.Failures > 0 {
		t.Fatalf("no dual-sector suppression: L=5 %.4f vs L=9 %.4f", r.FailRate(), big.FailRate())
	}
}

// TestErasureMemoryUsesErasure: the erasure-aware decode of depolarized
// known locations must beat decoding the same physical channel blind;
// pure erasure (p=0) at modest pe must decode essentially perfectly far
// below the 50% erasure threshold.
func TestErasureMemoryUsesErasure(t *testing.T) {
	const samples = 3000
	pure := ErasureMemoryExperiment(6, 0, 0.15, samples, 407)
	if pure.FailRate() > 0.02 {
		t.Fatalf("pure erasure at pe=0.15 failed %.4f of shots", pure.FailRate())
	}
	// Erasure info vs blind: pe=0.3 of edges depolarized plus p=0.01
	// background. Blind equivalent: effective flip rate on erased edges
	// is 1/2, so compare against ignoring locations entirely by feeding
	// the same marginal through the plain path at matched flip rates.
	aware := ErasureMemoryExperiment(6, 0.01, 0.3, samples, 408)
	blindP := 0.3*0.5 + 0.7*0.01
	blind := MemoryExperiment(6, blindP, DecoderUnionFind, samples, 409)
	if aware.FailRate() >= blind.FailRate() {
		t.Fatalf("erasure info didn't help: aware %.4f vs blind %.4f",
			aware.FailRate(), blind.FailRate())
	}
}

// TestErasureMemoryDeterministic: the erasure experiment remains a pure
// function of (samples, seed).
func TestErasureMemoryDeterministic(t *testing.T) {
	a := ErasureMemoryExperiment(5, 0.02, 0.2, 600, 411)
	b := ErasureMemoryExperiment(5, 0.02, 0.2, 600, 411)
	if a != b {
		t.Fatalf("same seed, different results: %+v vs %+v", a, b)
	}
}
