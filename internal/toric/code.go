package toric

import (
	"sync"

	"ftqc/internal/bits"
	"ftqc/internal/decoder"
	"ftqc/internal/surface"
)

// The toric lattice implements the surface.Code detector-graph
// contract, so the code-parameterized pipelines (spacetime volumes,
// streaming windows, the decode server) serve the torus through the
// same interface as the open-boundary families. The methods below are
// thin adapters over the existing primitives; the toric-only fast
// paths (exact matching on the torus metric, homology-basis testers)
// remain on the concrete type.

// CodeName names the code family.
func (t *Lattice) CodeName() string { return "toric" }

// Distance returns the code distance (the lattice size L).
func (t *Lattice) Distance() int { return t.L }

// Checks returns the number of checks per sector (= NumChecks; the
// torus has L² plaquettes and L² stars).
func (t *Lattice) Checks() int { return t.NumChecks() }

// Open reports that the torus has no boundaries.
func (t *Lattice) Open() bool { return false }

// SectorGraph returns the primal (dual=false) or dual (dual=true) 2D
// decoding graph.
func (t *Lattice) SectorGraph(dual bool) *decoder.Graph {
	if dual {
		return t.dualGraph
	}
	return t.graph
}

// LogicalSupports returns the sector's winding-detector supports (two
// per sector on the torus).
func (t *Lattice) LogicalSupports(dual bool) [][]int {
	if dual {
		return [][]int{t.det1ZSup, t.det2ZSup}
	}
	return [][]int{t.det1Sup, t.det2Sup}
}

// LogicalParity returns the sector's two winding parities
// (WindingParity / WindingParityDual behind the contract).
func (t *Lattice) LogicalParity(dual bool, errs bits.Vec) (bool, bool) {
	if dual {
		return t.WindingParityDual(errs)
	}
	return t.WindingParity(errs)
}

// LogicalPlanes accumulates the sector's winding parities of edge-major
// error planes into p1, p2 (WindingPlanes / WindingPlanesDual behind
// the contract).
func (t *Lattice) LogicalPlanes(dual bool, planes []bits.Vec, p1, p2 bits.Vec) {
	if dual {
		t.WindingPlanesDual(planes, p1, p2)
		return
	}
	t.WindingPlanes(planes, p1, p2)
}

// CheckPlanes fills check-major syndrome planes from edge-major error
// planes (PlaquetteSyndromePlanes / StarSyndromePlanes behind the
// contract).
func (t *Lattice) CheckPlanes(dual bool, planes, checks []bits.Vec) {
	if dual {
		t.StarSyndromePlanes(planes, checks)
		return
	}
	t.PlaquetteSyndromePlanes(planes, checks)
}

// schedCache memoizes extraction schedules per lattice size.
var schedCache sync.Map // int → *surface.Schedule

// ExtractionSchedule returns the memoized circuit-level extraction
// schedule of the torus: each check couples to its four data edges
// over four global steps (every plaquette runs its k-th CNOT in step
// k, then every star — conflict-free because each step's check→edge
// map is injective):
//
//	plaquette (x,y): h(x,y), v(x,y), v(x+1,y), h(x,y+1)
//	star      (x,y): h(x,y), v(x,y), v(x,y−1), h(x−1,y)
func (t *Lattice) ExtractionSchedule() *surface.Schedule {
	if v, ok := schedCache.Load(t.L); ok {
		return v.(*surface.Schedule)
	}
	l := t.L
	s := &surface.Schedule{
		Plaq: make([][4]int, t.NumChecks()),
		Star: make([][4]int, t.NumChecks()),
	}
	for y := 0; y < l; y++ {
		for x := 0; x < l; x++ {
			c := y*l + x
			s.Plaq[c] = [4]int{t.HEdge(x, y), t.VEdge(x, y), t.VEdge(x+1, y), t.HEdge(x, y+1)}
			s.Star[c] = [4]int{t.HEdge(x, y), t.VEdge(x, y), t.VEdge(x, y-1), t.HEdge(x-1, y)}
		}
	}
	s.DiagX = surface.ReaderPairs(s.Plaq, t.Qubits())
	s.DiagZ = surface.ReaderPairs(s.Star, t.Qubits())
	v, _ := schedCache.LoadOrStore(t.L, s)
	return v.(*surface.Schedule)
}

// HookParallel returns the L×L toric code under the hook-suppressing
// "parallel-last" CNOT schedule for the schedule-ablation sweeps: each
// check reads its two parallel edges last, so a mid-chain ancilla
// ("hook") fault flips a parallel weight-2 pair whose two surviving
// defects sit two steps apart along one axis — an ordinary matchable
// chain. The default order reads a bent pair last; its hook fault
// leaves a diagonal defect step, which costs the matching strictly
// more, making the default schedule the hook-damaged arm of the
// ablation (measured ~20% more failures at matched model and seed):
//
//	plaquette (x,y): h(x,y), h(x,y+1), v(x,y), v(x+1,y)
//	star      (x,y): h(x,y), h(x−1,y), v(x,y), v(x,y−1)
//
// No two edges of one toric check are colinear in the dual lattice, so
// the textbook distance-halving straight hook cannot be scheduled on
// this layout at all — the ablation measures bent-versus-parallel, not
// bent-versus-catastrophic. Each step's check→edge map is still
// injective and every edge is read once per sector step pair, so the
// schedule is executable by the same extraction circuit; only the hook
// geometry changes. The returned code reports CodeName "toric-hookpar"
// so cached decoding volumes never collide with the default
// schedule's.
func HookParallel(l int) surface.Code {
	t := Cached(l)
	plaq := make([][4]int, t.NumChecks())
	star := make([][4]int, t.NumChecks())
	for y := 0; y < l; y++ {
		for x := 0; x < l; x++ {
			c := y*l + x
			plaq[c] = [4]int{t.HEdge(x, y), t.HEdge(x, y+1), t.VEdge(x, y), t.VEdge(x+1, y)}
			star[c] = [4]int{t.HEdge(x, y), t.HEdge(x-1, y), t.VEdge(x, y), t.VEdge(x, y-1)}
		}
	}
	return surface.WithSchedule(t, "toric-hookpar", plaq, star)
}
