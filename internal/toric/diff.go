package toric

import "ftqc/internal/surface"

// SyndromeDiff is the shared difference-syndrome generation machinery,
// now code-agnostic in internal/surface; the alias keeps the toric
// call sites (and their callers) source-compatible.
type SyndromeDiff = surface.SyndromeDiff

// NewSyndromeDiff returns zeroed buffers for nc checks by `lanes` shots
// (round −1 observes the trivial syndrome).
func NewSyndromeDiff(nc, lanes int) *SyndromeDiff {
	return surface.NewSyndromeDiff(nc, lanes)
}
