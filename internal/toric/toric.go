// Package toric implements Kitaev's toric code (Preskill §7.1–§7.2,
// ref. 25): qubits on the edges of an L×L torus, commuting four-body
// check operators on sites and plaquettes (Fig. 17), quasiparticle pairs
// created by error chains, and a matching decoder. It provides the
// passive-quantum-memory experiments: exponential suppression of the
// logical error rate with the code distance L (the paper's e^{−mL}
// tunneling estimate) and with the inverse temperature Δ/T (the thermal
// anyon plasma).
//
// Decoding is delegated to internal/decoder: a near-linear union-find
// decoder for the hot Monte Carlo path and a polynomial exact
// minimum-weight matcher as the accuracy baseline. Both error sectors
// decode through the same machinery via the dual lattice (plaquette
// syndromes for bit flips, star syndromes for phase flips), leakage-
// detected qubits feed the union-find peeling pass as erasure, and
// batch decodes run as a worker-pool stage over word-aligned lane
// spans, bit-identical for any GOMAXPROCS. Noisy syndrome extraction
// over repeated rounds lives in internal/spacetime, built on this
// package's lattices.
package toric

import (
	"math"
	"sync"
	"sync/atomic"

	"ftqc/internal/bits"
	"ftqc/internal/decoder"
	"ftqc/internal/frame"
)

// Lattice is an L×L torus with one qubit per edge (2L² qubits).
// Horizontal edge (x,y) has index y·L+x; vertical edge (x,y) has index
// L²+y·L+x. Arithmetic is mod L in both directions.
//
// Both error sectors are first-class: bit-flip (X) chains end on
// plaquette (Z-check) defects and decode over the primal graph;
// phase-flip (Z) chains end on star (X-check) defects and decode over
// the dual graph, whose sites reuse the same y·L+x indexing — the
// dual-lattice trick that makes one decoder subsystem serve both.
type Lattice struct {
	L int
	// homology membership testers: XOR bases of the trivial-cycle spaces
	// (star products for the X sector, plaquette products for the Z
	// sector), indexed by leading column.
	hbasis []bits.Vec
	hset   []bool
	zbasis []bits.Vec
	zset   []bool
	// Winding detectors: two fixed edge sets orthogonal to every star
	// operator whose GF(2) inner products with a syndrome-free chain read
	// off its homology class directly (O(L) instead of a basis
	// reduction). det1 is the column of vertical edges at x=0 (odd
	// intersection ⇔ the chain winds horizontally on the dual lattice);
	// det2 is the row of horizontal edges at y=0. det1Z/det2Z are the
	// dual pair, orthogonal to every plaquette: the row of vertical edges
	// at y=0 and the column of horizontal edges at x=0.
	det1, det2   bits.Vec
	det1Z, det2Z bits.Vec
	// Support lists of the detectors, precomputed for the batch path.
	det1Sup, det2Sup   []int
	det1ZSup, det2ZSup []int
	// wrapDist[d] = min(d, L−d): the one-axis torus metric, cached so a
	// plaquette distance is two table lookups shared by every lane and
	// worker.
	wrapDist []int32
	// graph is the primal decoding graph (plaquettes = nodes, qubits =
	// edges); dualGraph is the star-sector graph (sites = nodes). Both
	// are immutable and shared across all decoder instances.
	graph     *decoder.Graph
	dualGraph *decoder.Graph
	// scratch recycles per-worker decoder state (union-find arrays,
	// matcher arrays, defect and correction buffers) across decodes.
	scratch *sync.Pool
}

// NewLattice returns an L×L toric lattice (L ≥ 2).
func NewLattice(l int) Lattice {
	if l < 2 {
		panic("toric: lattice size must be at least 2")
	}
	t := Lattice{L: l}
	t.buildHomologyTesters()
	t.det1 = bits.NewVec(t.Qubits())
	t.det2 = bits.NewVec(t.Qubits())
	t.det1Z = bits.NewVec(t.Qubits())
	t.det2Z = bits.NewVec(t.Qubits())
	for i := 0; i < l; i++ {
		t.det1.Flip(t.VEdge(0, i))
		t.det2.Flip(t.HEdge(i, 0))
		t.det1Z.Flip(t.VEdge(i, 0))
		t.det2Z.Flip(t.HEdge(0, i))
	}
	t.det1Sup = t.det1.Support()
	t.det2Sup = t.det2.Support()
	t.det1ZSup = t.det1Z.Support()
	t.det2ZSup = t.det2Z.Support()
	t.wrapDist = make([]int32, l)
	for d := 0; d < l; d++ {
		if l-d < d {
			t.wrapDist[d] = int32(l - d)
		} else {
			t.wrapDist[d] = int32(d)
		}
	}
	// Primal decoding graph: horizontal edge h(x,y) separates plaquettes
	// (x,y) and (x,y−1); vertical edge v(x,y) separates (x,y) and
	// (x−1,y). Dual graph: the same qubit edges between the sites they
	// join — h(x,y) joins sites (x,y)–(x+1,y), v(x,y) joins (x,y)–(x,y+1).
	ends := make([][2]int32, t.Qubits())
	dualEnds := make([][2]int32, t.Qubits())
	for y := 0; y < l; y++ {
		for x := 0; x < l; x++ {
			ends[t.HEdge(x, y)] = [2]int32{int32(y*l + x), int32(mod(y-1, l)*l + x)}
			ends[t.VEdge(x, y)] = [2]int32{int32(y*l + x), int32(y*l + mod(x-1, l))}
			dualEnds[t.HEdge(x, y)] = [2]int32{int32(y*l + x), int32(y*l + mod(x+1, l))}
			dualEnds[t.VEdge(x, y)] = [2]int32{int32(y*l + x), int32(mod(y+1, l)*l + x)}
		}
	}
	t.graph = decoder.NewGraph(t.NumChecks(), ends)
	t.dualGraph = decoder.NewGraph(t.NumChecks(), dualEnds)
	graph, qubits := t.graph, t.Qubits()
	t.scratch = &sync.Pool{New: func() any {
		// ufDual stays nil until a dual-sector decode first needs it
		// (dualUF), so the X-only hot paths never pay for its arrays.
		return &decodeScratch{
			uf:   decoder.NewUnionFind(graph),
			corr: bits.NewVec(qubits),
		}
	}}
	return t
}

// Graph returns the primal decoding graph (plaquettes = nodes, qubit
// edges between the two plaquettes they bound). It is immutable.
func (t Lattice) Graph() *decoder.Graph { return t.graph }

// DualGraph returns the star-sector decoding graph (sites = nodes, qubit
// edges between the two sites they join). It is immutable.
func (t Lattice) DualGraph() *decoder.Graph { return t.dualGraph }

// WindingParity returns the two homology-class bits of a syndrome-free
// chain: whether it crosses the x=0 vertical-edge column an odd number of
// times and the y=0 horizontal-edge row an odd number of times. For
// cycles (zero syndrome) the pair is (0,0) exactly when the chain is a
// product of star operators; either bit set means a logical error.
func (t Lattice) WindingParity(errs bits.Vec) (bool, bool) {
	return errs.Dot(t.det1), errs.Dot(t.det2)
}

// WindingParityDual is WindingParity for the Z sector: the homology bits
// of a star-syndrome-free phase-flip chain against the dual detector
// pair (the y=0 vertical-edge row and the x=0 horizontal-edge column,
// each orthogonal to every plaquette operator).
func (t Lattice) WindingParityDual(errs bits.Vec) (bool, bool) {
	return errs.Dot(t.det1Z), errs.Dot(t.det2Z)
}

// buildHomologyTesters builds XOR bases of the trivial-chain spaces of
// both sectors. An X pattern acts trivially on the code space exactly
// when it is a product of star (X-stabilizer) operators; a Z pattern,
// when it is a product of plaquette (Z-stabilizer) operators.
// Syndrome-free chains outside the span are logical operators
// (noncontractible cycles of the dual or direct lattice respectively).
func (t *Lattice) buildHomologyTesters() {
	t.hbasis = make([]bits.Vec, t.Qubits())
	t.hset = make([]bool, t.Qubits())
	t.zbasis = make([]bits.Vec, t.Qubits())
	t.zset = make([]bool, t.Qubits())
	for y := 0; y < t.L; y++ {
		for x := 0; x < t.L; x++ {
			row := bits.NewVec(t.Qubits())
			for _, e := range t.StarEdges(x, y) {
				row.Flip(e)
			}
			insertBasis(t.hbasis, t.hset, row)
			zrow := bits.NewVec(t.Qubits())
			for _, e := range t.PlaquetteEdges(x, y) {
				zrow.Flip(e)
			}
			insertBasis(t.zbasis, t.zset, zrow)
		}
	}
}

// insertBasis adds a vector to an XOR basis (standard leading-column
// reduction).
func insertBasis(basis []bits.Vec, set []bool, v bits.Vec) {
	for c := 0; c < v.Len(); c++ {
		if !v.Get(c) {
			continue
		}
		if !set[c] {
			basis[c] = v
			set[c] = true
			return
		}
		v.Xor(basis[c])
	}
}

// inSpan reduces v against a basis and reports whether it vanishes.
func inSpan(basis []bits.Vec, set []bool, v bits.Vec) bool {
	w := v.Clone()
	for c := 0; c < w.Len(); c++ {
		if !w.Get(c) {
			continue
		}
		if !set[c] {
			return false
		}
		w.Xor(basis[c])
	}
	return true
}

// Qubits returns the number of physical qubits, 2L².
func (t Lattice) Qubits() int { return 2 * t.L * t.L }

// HEdge returns the index of the horizontal edge at (x, y).
func (t Lattice) HEdge(x, y int) int {
	return mod(y, t.L)*t.L + mod(x, t.L)
}

// VEdge returns the index of the vertical edge at (x, y).
func (t Lattice) VEdge(x, y int) int {
	return t.L*t.L + mod(y, t.L)*t.L + mod(x, t.L)
}

func mod(a, l int) int { return ((a % l) + l) % l }

// PlaquetteEdges returns the four edges of the plaquette at (x, y); the
// plaquette (Z-check) detects bit-flip chains ending inside it.
func (t Lattice) PlaquetteEdges(x, y int) [4]int {
	return [4]int{
		t.HEdge(x, y),
		t.HEdge(x, y+1),
		t.VEdge(x, y),
		t.VEdge(x+1, y),
	}
}

// StarEdges returns the four edges meeting at site (x, y); the star
// (X-check) detects phase-flip chains on the dual lattice.
func (t Lattice) StarEdges(x, y int) [4]int {
	return [4]int{
		t.HEdge(x, y),
		t.HEdge(x-1, y),
		t.VEdge(x, y),
		t.VEdge(x, y-1),
	}
}

// NumChecks returns the number of plaquettes (= sites) on the torus.
func (t Lattice) NumChecks() int { return t.L * t.L }

// Syndrome computes the plaquette syndrome of a bit-flip error pattern:
// defect (anyon) positions are plaquettes with odd boundary parity.
func (t Lattice) Syndrome(errs bits.Vec) []int {
	var defects []int
	for y := 0; y < t.L; y++ {
		for x := 0; x < t.L; x++ {
			parity := false
			for _, e := range t.PlaquetteEdges(x, y) {
				if errs.Get(e) {
					parity = !parity
				}
			}
			if parity {
				defects = append(defects, y*t.L+x)
			}
		}
	}
	return defects
}

// LogicalError reports whether a syndrome-free error pattern is
// homologically nontrivial: trivial residues are exactly the products of
// star operators, so membership in that span is tested directly over
// GF(2).
func (t Lattice) LogicalError(errs bits.Vec) bool {
	return !inSpan(t.hbasis, t.hset, errs)
}

// LogicalZError is LogicalError for the Z sector: a star-syndrome-free
// phase-flip pattern is a logical operator exactly when it is not a
// product of plaquette operators.
func (t Lattice) LogicalZError(errs bits.Vec) bool {
	return !inSpan(t.zbasis, t.zset, errs)
}

// StarSyndrome computes the star syndrome of a phase-flip error pattern:
// defect positions are sites with odd incident parity. Site (x,y) has
// index y·L+x, the same indexing as plaquettes, so distances, paths and
// decoding graphs transfer between the sectors unchanged.
func (t Lattice) StarSyndrome(errs bits.Vec) []int {
	var defects []int
	for y := 0; y < t.L; y++ {
		for x := 0; x < t.L; x++ {
			parity := false
			for _, e := range t.StarEdges(x, y) {
				if errs.Get(e) {
					parity = !parity
				}
			}
			if parity {
				defects = append(defects, y*t.L+x)
			}
		}
	}
	return defects
}

// TorusDist is the Manhattan distance between plaquettes (equivalently
// sites — both use y·L+x indexing) on the torus.
func (t *Lattice) TorusDist(a, b int) int {
	ax, ay := a%t.L, a/t.L
	bx, by := b%t.L, b/t.L
	dx := ax - bx
	if dx < 0 {
		dx = -dx
	}
	dy := ay - by
	if dy < 0 {
		dy = -dy
	}
	return int(t.wrapDist[dx] + t.wrapDist[dy])
}

// PathBetween flips a shortest error chain connecting plaquettes a and b
// into out (move in x first, then y, wrapping the short way).
func (t *Lattice) PathBetween(a, b int, out bits.Vec) {
	ax, ay := a%t.L, a/t.L
	bx, by := b%t.L, b/t.L
	// Walk in x: crossing from plaquette (x,y) to (x+1,y) flips the
	// vertical edge v(x+1, y).
	stepX := 1
	dx := mod(bx-ax, t.L)
	if dx > t.L-dx {
		stepX = -1
		dx = t.L - dx
	}
	x, y := ax, ay
	for i := 0; i < dx; i++ {
		if stepX == 1 {
			out.Flip(t.VEdge(x+1, y))
			x = mod(x+1, t.L)
		} else {
			out.Flip(t.VEdge(x, y))
			x = mod(x-1, t.L)
		}
	}
	// Walk in y: crossing from (x,y) to (x,y+1) flips h(x, y+1).
	stepY := 1
	dy := mod(by-ay, t.L)
	if dy > t.L-dy {
		stepY = -1
		dy = t.L - dy
	}
	for i := 0; i < dy; i++ {
		if stepY == 1 {
			out.Flip(t.HEdge(x, y+1))
			y = mod(y+1, t.L)
		} else {
			out.Flip(t.HEdge(x, y))
			y = mod(y-1, t.L)
		}
	}
}

// PathBetweenDual is PathBetween on the dual lattice: it flips a shortest
// phase-flip chain connecting sites a and b into out. Crossing from site
// (x,y) to (x+1,y) flips h(x,y); from (x,y) to (x,y+1) flips v(x,y).
func (t *Lattice) PathBetweenDual(a, b int, out bits.Vec) {
	ax, ay := a%t.L, a/t.L
	bx, by := b%t.L, b/t.L
	stepX := 1
	dx := mod(bx-ax, t.L)
	if dx > t.L-dx {
		stepX = -1
		dx = t.L - dx
	}
	x, y := ax, ay
	for i := 0; i < dx; i++ {
		if stepX == 1 {
			out.Flip(t.HEdge(x, y))
			x = mod(x+1, t.L)
		} else {
			out.Flip(t.HEdge(x-1, y))
			x = mod(x-1, t.L)
		}
	}
	stepY := 1
	dy := mod(by-ay, t.L)
	if dy > t.L-dy {
		stepY = -1
		dy = t.L - dy
	}
	for i := 0; i < dy; i++ {
		if stepY == 1 {
			out.Flip(t.VEdge(x, y))
			y = mod(y+1, t.L)
		} else {
			out.Flip(t.VEdge(x, y-1))
			y = mod(y-1, t.L)
		}
	}
}

// DecoderKind selects the decoding strategy.
type DecoderKind int

// Decoders.
const (
	// DecoderGreedy repeatedly pairs the two closest defects.
	DecoderGreedy DecoderKind = iota
	// DecoderExact finds a minimum-weight perfect matching with the
	// polynomial (O(n³)-style) blossom matcher — exact at any defect
	// count; the accuracy baseline.
	DecoderExact
	// DecoderUnionFind is the near-linear weighted-growth union-find
	// decoder — the production decoder for large-L experiments.
	DecoderUnionFind
)

// decodeScratch carries one worker's reusable decoder state. Instances
// live in the lattice's sync.Pool, so any decode path — public one-off
// calls and batch workers alike — recycles buffers instead of
// reallocating per call.
type decodeScratch struct {
	uf      *decoder.UnionFind
	ufDual  *decoder.UnionFind
	matcher decoder.Matcher
	grid    decoder.DefectGrid
	pairs   [][2]int
	alive   []int
	defects []int
	erased  []int
	corr    bits.Vec
}

func (s *decodeScratch) takePairs(n int) [][2]int {
	if cap(s.pairs) < n {
		s.pairs = make([][2]int, 0, n)
	}
	return s.pairs[:0]
}

// Decode returns a correction for the given defect set.
func (t Lattice) Decode(defects []int, kind DecoderKind) bits.Vec {
	corr := bits.NewVec(t.Qubits())
	scr := t.scratch.Get().(*decodeScratch)
	t.decodeInto(defects, kind, scr, corr)
	t.scratch.Put(scr)
	return corr
}

// DecodeDual returns a phase-flip correction for the given star-defect
// set, decoded over the dual graph.
func (t Lattice) DecodeDual(defects []int, kind DecoderKind) bits.Vec {
	corr := bits.NewVec(t.Qubits())
	scr := t.scratch.Get().(*decodeScratch)
	t.decodeDualInto(defects, kind, scr, corr)
	t.scratch.Put(scr)
	return corr
}

// DecodeErasure returns a correction for the defect set given known
// erased qubit locations (leakage-detected edges): the erased edges seed
// the union-find peeling pass at full support, so pure-erasure syndromes
// decode in linear time without any cluster growth.
func (t Lattice) DecodeErasure(defects, erased []int) bits.Vec {
	corr := bits.NewVec(t.Qubits())
	scr := t.scratch.Get().(*decodeScratch)
	scr.uf.DecodeErased(defects, erased, func(e int) { corr.Flip(e) })
	t.scratch.Put(scr)
	return corr
}

// decodeInto flips a correction for the defect set into corr. All decode
// paths (scalar and batch) funnel through here, so every path shares one
// deterministic tie-break per decoder kind.
func (t *Lattice) decodeInto(defects []int, kind DecoderKind, scr *decodeScratch, corr bits.Vec) {
	if kind == DecoderUnionFind {
		scr.uf.Decode(defects, func(e int) { corr.Flip(e) })
		return
	}
	for _, pr := range t.matchDefects(defects, kind, scr) {
		t.PathBetween(pr[0], pr[1], corr)
	}
}

// decodeDualInto is decodeInto for the Z sector. Sites and plaquettes
// share the y·L+x indexing, so the matching stage (distances, pairing,
// tie-breaks) is sector-blind; only the graph and the path emitter
// change.
func (t *Lattice) decodeDualInto(defects []int, kind DecoderKind, scr *decodeScratch, corr bits.Vec) {
	if kind == DecoderUnionFind {
		t.dualUF(scr).Decode(defects, func(e int) { corr.Flip(e) })
		return
	}
	for _, pr := range t.matchDefects(defects, kind, scr) {
		t.PathBetweenDual(pr[0], pr[1], corr)
	}
}

// dualUF returns the scratch's dual-sector union-find, created on first
// use so X-only workloads never allocate the dual graph's arrays.
func (t *Lattice) dualUF(scr *decodeScratch) *decoder.UnionFind {
	if scr.ufDual == nil {
		scr.ufDual = decoder.NewUnionFind(t.dualGraph)
	}
	return scr.ufDual
}

// matchDefects pairs up the defect set with the chosen strategy. The
// returned pairs alias scr and are valid until its next use.
func (t *Lattice) matchDefects(defects []int, kind DecoderKind, scr *decodeScratch) [][2]int {
	switch {
	case len(defects) == 0:
		return nil
	case len(defects) == 2:
		// One pair: all strategies agree, no search needed.
		return append(scr.takePairs(1), [2]int{defects[0], defects[1]})
	case kind == DecoderExact && len(defects) == 4:
		return t.matchFour(defects, scr)
	case kind == DecoderExact:
		return t.mwpmMatch(defects, scr)
	}
	return t.greedyMatch(defects, scr)
}

// matchFour picks the lightest of the three pairings of four defects
// directly — the dominant nontrivial case at low error rates, decided
// without touching the matcher.
func (t *Lattice) matchFour(defects []int, scr *decodeScratch) [][2]int {
	d01 := t.TorusDist(defects[0], defects[1])
	d23 := t.TorusDist(defects[2], defects[3])
	d02 := t.TorusDist(defects[0], defects[2])
	d13 := t.TorusDist(defects[1], defects[3])
	d03 := t.TorusDist(defects[0], defects[3])
	d12 := t.TorusDist(defects[1], defects[2])
	best, bi := d01+d23, 1
	if c := d02 + d13; c < best {
		best, bi = c, 2
	}
	if c := d03 + d12; c < best {
		bi = 3
	}
	pairs := scr.takePairs(2)
	switch bi {
	case 1:
		return append(pairs, [2]int{defects[0], defects[1]}, [2]int{defects[2], defects[3]})
	case 2:
		return append(pairs, [2]int{defects[0], defects[2]}, [2]int{defects[1], defects[3]})
	}
	return append(pairs, [2]int{defects[0], defects[3]}, [2]int{defects[1], defects[2]})
}

// mwpmMatch is the polynomial exact matcher on the torus distance graph.
// Large defect sets go through the pruned (sparse-blossom) path: a grid
// bucket index over the defect positions enumerates ~O(n·k) locally
// short candidate edges for the engine (instead of scanning all n²
// pairs), with dual pricing restoring any cutoff casualty, so the
// result weight is exactly the dense optimum at a fraction of the cost.
func (t *Lattice) mwpmMatch(defects []int, scr *decodeScratch) [][2]int {
	n := len(defects)
	weight := func(i, j int) int64 {
		return int64(t.TorusDist(defects[i], defects[j]))
	}
	var idx [][2]int32
	if n > decoder.SparseMatchMin {
		cutoff := matchCutoff(t.L*t.L, n)
		scr.grid.Reset(t.L, int(cutoff), 0, 0, 1)
		for _, d := range defects {
			scr.grid.Add(d%t.L, d/t.L, 0)
		}
		idx = scr.matcher.MinWeightPairsIndexed(n, weight, cutoff,
			func(i int, r int64, visit func(j int)) {
				scr.grid.VisitWithin(i, int(r), 0, visit)
			})
	} else {
		idx = scr.matcher.MinWeightPairs(n, weight)
	}
	pairs := scr.takePairs(len(idx))
	for _, pr := range idx {
		pairs = append(pairs, [2]int{defects[pr[0]], defects[pr[1]]})
	}
	return pairs
}

// matchCutoff picks the pruning radius for n defects on a lattice of the
// given check count: a few mean nearest-neighbor spacings, so each defect
// keeps O(1) candidate partners and the staged edge count stays ~O(n).
func matchCutoff(area, n int) int64 {
	mean := 1
	for mean*mean*n < 4*area {
		mean++
	}
	return int64(3 * mean)
}

// greedyMatch pairs the globally closest defects first.
func (t *Lattice) greedyMatch(defects []int, scr *decodeScratch) [][2]int {
	alive := append(scr.alive[:0], defects...)
	pairs := scr.takePairs(len(defects) / 2)
	for len(alive) > 1 {
		bi, bj, best := 0, 1, 1<<30
		for i := 0; i < len(alive); i++ {
			for j := i + 1; j < len(alive); j++ {
				if d := t.TorusDist(alive[i], alive[j]); d < best {
					bi, bj, best = i, j, d
				}
			}
		}
		pairs = append(pairs, [2]int{alive[bi], alive[bj]})
		// Remove bj first (larger index).
		alive = append(alive[:bj], alive[bj+1:]...)
		alive = append(alive[:bi], alive[bi+1:]...)
	}
	scr.alive = alive[:0]
	return pairs
}

// MemoryResult summarizes a toric-memory Monte Carlo run.
type MemoryResult struct {
	L        int
	P        float64
	Samples  int
	Failures int
}

// FailRate returns the logical failure probability.
func (r MemoryResult) FailRate() float64 { return float64(r.Failures) / float64(r.Samples) }

// MemoryExperiment applies i.i.d. bit flips with probability p to every
// edge, decodes, and counts homologically nontrivial residues — the
// passive-memory benchmark whose failure rate falls like e^{−αL} below
// threshold (§7.1's "if the quasiparticles are kept far apart, the
// probability of an error will be extremely low"). Shots run on the
// bit-plane batch path, fanned out over the CPUs in deterministic
// seed-per-chunk batches.
func MemoryExperiment(l int, p float64, kind DecoderKind, samples int, seed uint64) MemoryResult {
	t := cachedLattice(l)
	var fails atomic.Int64
	frame.ForEachChunk(samples, seed, func(lanes int, smp frame.Sampler) {
		fails.Add(int64(t.BatchMemory(p, kind, lanes, smp).Weight()))
	})
	return MemoryResult{L: l, P: p, Samples: samples, Failures: int(fails.Load())}
}

// latticeCache memoizes constructed lattices: experiments sweep (L, p)
// grids and the homology tester is immutable after construction, so the
// same lattice is safely shared across calls and workers.
var latticeCache sync.Map // int → *Lattice

// Cached returns the memoized lattice of size l, shared across callers
// (the space-time subsystem builds its decoding volumes on top of it).
func Cached(l int) *Lattice { return cachedLattice(l) }

func cachedLattice(l int) *Lattice {
	if v, ok := latticeCache.Load(l); ok {
		return v.(*Lattice)
	}
	t := NewLattice(l)
	v, _ := latticeCache.LoadOrStore(l, &t)
	return v.(*Lattice)
}

// BatchMemory runs `lanes` independent shots of the passive-memory
// experiment as bit-planes over the given sampler and returns the
// per-lane failure mask. Edge sampling and syndrome extraction are
// word-parallel across lanes; the per-lane decodes run as a worker-pool
// stage over word-aligned lane spans. Under a lockstep sampler lane i
// reproduces a scalar shot drawn from the paired stream edge by edge.
func (t *Lattice) BatchMemory(p float64, kind DecoderKind, lanes int, smp frame.Sampler) bits.Vec {
	nq, nc := t.Qubits(), t.NumChecks()
	active := bits.NewVec(lanes)
	active.SetAll()
	// Sample one error plane per edge, in edge order (the scalar draw
	// order within each lane).
	planes := bits.NewVecs(nq, lanes)
	for e := 0; e < nq; e++ {
		smp.Bernoulli(p, active, planes[e])
	}
	// Plaquette syndrome planes: one XOR chain of four edge planes per
	// check, check-major; then the winding parities of the raw error
	// planes, batched.
	checks := bits.NewVecs(nc, lanes)
	t.PlaquetteSyndromePlanes(planes, checks)
	p1 := bits.NewVec(lanes)
	p2 := bits.NewVec(lanes)
	windingPlanes(planes, t.det1Sup, t.det2Sup, p1, p2)
	// Pivot to lane-major syndromes so each decode worker reads its own
	// lanes' bit-vectors and extracts sparse defect lists by word scans.
	syn := bits.NewVecs(lanes, nc)
	bits.TransposePlanes(syn, checks)
	fails := bits.NewVec(lanes)
	t.decodeLanes(laneDecodeJob{kind: kind, syn: syn, p1: p1, p2: p2, out: fails})
	return fails
}

// PlaquetteSyndromePlanes fills check-major syndrome planes (one vector
// per check, one bit per lane) from the edge error planes.
func (t *Lattice) PlaquetteSyndromePlanes(planes, checks []bits.Vec) {
	for y := 0; y < t.L; y++ {
		for x := 0; x < t.L; x++ {
			edges := t.PlaquetteEdges(x, y)
			cv := checks[y*t.L+x]
			cv.CopyFrom(planes[edges[0]])
			cv.Xor(planes[edges[1]])
			cv.Xor(planes[edges[2]])
			cv.Xor(planes[edges[3]])
		}
	}
}

// StarSyndromePlanes is PlaquetteSyndromePlanes for the Z sector.
func (t *Lattice) StarSyndromePlanes(planes, checks []bits.Vec) {
	for y := 0; y < t.L; y++ {
		for x := 0; x < t.L; x++ {
			edges := t.StarEdges(x, y)
			cv := checks[y*t.L+x]
			cv.CopyFrom(planes[edges[0]])
			cv.Xor(planes[edges[1]])
			cv.Xor(planes[edges[2]])
			cv.Xor(planes[edges[3]])
		}
	}
}

// windingPlanes accumulates the two detector parities of the error
// planes into p1, p2 using the given support lists.
func windingPlanes(planes []bits.Vec, sup1, sup2 []int, p1, p2 bits.Vec) {
	for _, e := range sup1 {
		p1.Xor(planes[e])
	}
	for _, e := range sup2 {
		p2.Xor(planes[e])
	}
}

// WindingPlanes accumulates the primal winding-detector parities of
// edge-major error planes into p1, p2 (the batched WindingParity).
func (t *Lattice) WindingPlanes(planes []bits.Vec, p1, p2 bits.Vec) {
	windingPlanes(planes, t.det1Sup, t.det2Sup, p1, p2)
}

// WindingPlanesDual is WindingPlanes against the dual (Z-sector)
// detector pair.
func (t *Lattice) WindingPlanesDual(planes []bits.Vec, p1, p2 bits.Vec) {
	windingPlanes(planes, t.det1ZSup, t.det2ZSup, p1, p2)
}

// BatchMemoryXZ runs `lanes` shots of the dual-sector passive-memory
// experiment: independent bit-flip (X) and phase-flip (Z) errors with
// probability p per edge, plaquette syndromes decoded over the primal
// graph and star syndromes over the dual graph, so both logical failure
// kinds are tracked per shot. Draw order: all X edge planes in edge
// order, then all Z edge planes.
func (t *Lattice) BatchMemoryXZ(p float64, kind DecoderKind, lanes int, smp frame.Sampler) (failX, failZ bits.Vec) {
	nq, nc := t.Qubits(), t.NumChecks()
	active := bits.NewVec(lanes)
	active.SetAll()
	xp := bits.NewVecs(nq, lanes)
	for e := 0; e < nq; e++ {
		smp.Bernoulli(p, active, xp[e])
	}
	zp := bits.NewVecs(nq, lanes)
	for e := 0; e < nq; e++ {
		smp.Bernoulli(p, active, zp[e])
	}
	checks := bits.NewVecs(nc, lanes)
	syn := bits.NewVecs(lanes, nc)
	failX = bits.NewVec(lanes)
	failZ = bits.NewVec(lanes)
	p1 := bits.NewVec(lanes)
	p2 := bits.NewVec(lanes)

	t.PlaquetteSyndromePlanes(xp, checks)
	windingPlanes(xp, t.det1Sup, t.det2Sup, p1, p2)
	bits.TransposePlanes(syn, checks)
	t.decodeLanes(laneDecodeJob{kind: kind, syn: syn, p1: p1, p2: p2, out: failX})

	p1.Clear()
	p2.Clear()
	t.StarSyndromePlanes(zp, checks)
	windingPlanes(zp, t.det1ZSup, t.det2ZSup, p1, p2)
	bits.TransposePlanes(syn, checks)
	t.decodeLanes(laneDecodeJob{kind: kind, syn: syn, p1: p1, p2: p2, out: failZ, dual: true})
	return failX, failZ
}

// BatchMemoryErasure runs `lanes` shots of the erasure-augmented memory
// experiment: each edge is independently erased (a leakage-detected
// location, the same bit-plane shape the batch frame engine's leakage
// flags use) with probability pe; erased edges depolarize (flip with
// probability ½) while intact edges flip with probability p. The erased
// supports feed the union-find decoder's peeling pass as erasure, so
// known-bad qubits are corrected without growth. Draw order per edge:
// erasure mask, intact-lane flips, erased-lane coin.
func (t *Lattice) BatchMemoryErasure(p, pe float64, lanes int, smp frame.Sampler) bits.Vec {
	nq, nc := t.Qubits(), t.NumChecks()
	active := bits.NewVec(lanes)
	active.SetAll()
	planes := bits.NewVecs(nq, lanes)
	era := bits.NewVecs(nq, lanes)
	intact := bits.NewVec(lanes)
	coin := bits.NewVec(lanes)
	for e := 0; e < nq; e++ {
		smp.Bernoulli(pe, active, era[e])
		intact.CopyFrom(active)
		intact.AndNot(era[e])
		smp.Bernoulli(p, intact, planes[e])
		smp.Bernoulli(0.5, era[e], coin)
		planes[e].Or(coin)
	}
	checks := bits.NewVecs(nc, lanes)
	t.PlaquetteSyndromePlanes(planes, checks)
	p1 := bits.NewVec(lanes)
	p2 := bits.NewVec(lanes)
	windingPlanes(planes, t.det1Sup, t.det2Sup, p1, p2)
	syn := bits.NewVecs(lanes, nc)
	bits.TransposePlanes(syn, checks)
	eraLane := bits.NewVecs(lanes, nq)
	bits.TransposePlanes(eraLane, era)
	fails := bits.NewVec(lanes)
	t.decodeLanes(laneDecodeJob{kind: DecoderUnionFind, syn: syn, era: eraLane, p1: p1, p2: p2, out: fails})
	return fails
}

// MemoryXZResult summarizes a dual-sector memory run.
type MemoryXZResult struct {
	L        int
	P        float64
	Samples  int
	FailX    int // bit-flip (plaquette-sector) logical failures
	FailZ    int // phase-flip (star-sector) logical failures
	Failures int // shots failing in either sector
}

// FailRate returns the either-sector logical failure probability.
func (r MemoryXZResult) FailRate() float64 { return float64(r.Failures) / float64(r.Samples) }

// FailRateX returns the bit-flip sector failure probability.
func (r MemoryXZResult) FailRateX() float64 { return float64(r.FailX) / float64(r.Samples) }

// FailRateZ returns the phase-flip sector failure probability.
func (r MemoryXZResult) FailRateZ() float64 { return float64(r.FailZ) / float64(r.Samples) }

// MemoryExperimentXZ is MemoryExperiment over both error sectors:
// independent X and Z flips at probability p per edge, each sector
// decoded over its own graph, failures counted per sector and combined.
func MemoryExperimentXZ(l int, p float64, kind DecoderKind, samples int, seed uint64) MemoryXZResult {
	t := cachedLattice(l)
	fx, fz, fa := frame.CountSectorFailures(samples, seed, func(lanes int, smp frame.Sampler) (bits.Vec, bits.Vec) {
		return t.BatchMemoryXZ(p, kind, lanes, smp)
	})
	return MemoryXZResult{L: l, P: p, Samples: samples, FailX: fx, FailZ: fz, Failures: fa}
}

// ErasureMemoryExperiment is MemoryExperiment with leakage-seeded
// erasure: edges are erased with probability pe (and depolarized), and
// the decoder exploits the known locations through the peeling pass.
func ErasureMemoryExperiment(l int, p, pe float64, samples int, seed uint64) MemoryResult {
	t := cachedLattice(l)
	var fails atomic.Int64
	frame.ForEachChunk(samples, seed, func(lanes int, smp frame.Sampler) {
		fails.Add(int64(t.BatchMemoryErasure(p, pe, lanes, smp).Weight()))
	})
	return MemoryResult{L: l, P: p, Samples: samples, Failures: int(fails.Load())}
}

// laneDecodeJob is one sector's worth of per-lane decoding work: the
// lane-major syndrome vectors, the raw error chains' winding parities,
// optional lane-major erasure supports, and the sector selector.
type laneDecodeJob struct {
	kind DecoderKind
	syn  []bits.Vec // lane-major syndromes
	era  []bits.Vec // lane-major erased-edge supports (nil: no erasure)
	p1   bits.Vec   // winding parities of the raw error planes
	p2   bits.Vec
	out  bits.Vec // per-lane failure mask (out)
	dual bool     // decode in the star (Z) sector
}

// decodeLanes is the worker-pool decode stage: frame.ForEachLaneSpan
// hands word-aligned lane spans to the CPUs, each span owning its words
// of the failure mask outright and drawing private scratch from the
// lattice pool, so the result is bit-identical for any worker count or
// scheduling order.
func (t *Lattice) decodeLanes(job laneDecodeJob) {
	frame.ForEachLaneSpan(len(job.syn), func(lo, hi int) {
		t.decodeLaneSpan(job, lo, hi)
	})
}

// decodeLaneSpan decodes lanes [lo, hi): extract the sparse defect list
// from the lane's syndrome vector (word scan + trailing-zero walk),
// decode it, and fold the correction's winding parities into the error
// chain's. The correction's syndrome equals the defect set by
// construction, so the residual is always a cycle and the winding
// parities decide failure.
func (t *Lattice) decodeLaneSpan(job laneDecodeJob, lo, hi int) {
	da, db := t.det1, t.det2
	if job.dual {
		da, db = t.det1Z, t.det2Z
	}
	scr := t.scratch.Get().(*decodeScratch)
	for lane := lo; lane < hi; lane++ {
		scr.defects = job.syn[lane].AppendSupport(scr.defects[:0])
		l1 := job.p1.Get(lane)
		l2 := job.p2.Get(lane)
		if len(scr.defects) > 0 {
			scr.corr.Clear()
			switch {
			case job.era != nil:
				// Erasure decoding is union-find only (the peeling pass is
				// what exploits the known locations), in either sector.
				uf := scr.uf
				if job.dual {
					uf = t.dualUF(scr)
				}
				scr.erased = job.era[lane].AppendSupport(scr.erased[:0])
				uf.DecodeErased(scr.defects, scr.erased, func(e int) { scr.corr.Flip(e) })
			case job.dual:
				t.decodeDualInto(scr.defects, job.kind, scr, scr.corr)
			default:
				t.decodeInto(scr.defects, job.kind, scr, scr.corr)
			}
			l1 = l1 != scr.corr.Dot(da)
			l2 = l2 != scr.corr.Dot(db)
		}
		if l1 || l2 {
			job.out.Set(lane, true)
		}
	}
	t.scratch.Put(scr)
}

// ThermalResult is one point of the E18 temperature sweep.
type ThermalResult struct {
	DeltaOverT float64
	FlipProb   float64
	MemoryResult
}

// ThermalMemory models the thermal anyon plasma of §7.1: defect pairs are
// nucleated at a rate proportional to the Boltzmann factor e^{−Δ/T}, so
// each edge flips with probability p = p0·e^{−Δ/T} per dwell time; the
// logical failure rate inherits the exponential suppression in Δ/T.
func ThermalMemory(l int, p0, deltaOverT float64, kind DecoderKind, samples int, seed uint64) ThermalResult {
	p := p0 * math.Exp(-deltaOverT)
	return ThermalResult{
		DeltaOverT:   deltaOverT,
		FlipProb:     p,
		MemoryResult: MemoryExperiment(l, p, kind, samples, seed),
	}
}

// TunnelingErrorProb is the §7.1 zero-temperature estimate: the amplitude
// for a virtual charged pair to exchange quantum numbers between fluxons
// held a distance L apart is of order e^{−mL}.
func TunnelingErrorProb(m float64, l int) float64 {
	return math.Exp(-m * float64(l))
}
