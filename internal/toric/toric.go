// Package toric implements Kitaev's toric code (Preskill §7.1–§7.2,
// ref. 25): qubits on the edges of an L×L torus, commuting four-body
// check operators on sites and plaquettes (Fig. 17), quasiparticle pairs
// created by error chains, and a matching decoder. It provides the
// passive-quantum-memory experiments: exponential suppression of the
// logical error rate with the code distance L (the paper's e^{−mL}
// tunneling estimate) and with the inverse temperature Δ/T (the thermal
// anyon plasma).
package toric

import (
	"math"
	mbits "math/bits"
	"sync"
	"sync/atomic"

	"ftqc/internal/bits"
	"ftqc/internal/frame"
)

// Lattice is an L×L torus with one qubit per edge (2L² qubits).
// Horizontal edge (x,y) has index y·L+x; vertical edge (x,y) has index
// L²+y·L+x. Arithmetic is mod L in both directions.
type Lattice struct {
	L int
	// homology membership tester: an XOR basis of the space of trivial
	// cycles (plaquette boundaries), indexed by leading column.
	hbasis []bits.Vec
	hset   []bool
	// Winding detectors: two fixed edge sets orthogonal to every star
	// operator whose GF(2) inner products with a syndrome-free chain read
	// off its homology class directly (O(L) instead of a basis
	// reduction). det1 is the column of vertical edges at x=0 (odd
	// intersection ⇔ the chain winds horizontally on the dual lattice);
	// det2 is the row of horizontal edges at y=0.
	det1, det2 bits.Vec
}

// NewLattice returns an L×L toric lattice (L ≥ 2).
func NewLattice(l int) Lattice {
	if l < 2 {
		panic("toric: lattice size must be at least 2")
	}
	t := Lattice{L: l}
	t.buildHomologyTester()
	t.det1 = bits.NewVec(t.Qubits())
	t.det2 = bits.NewVec(t.Qubits())
	for i := 0; i < l; i++ {
		t.det1.Flip(t.VEdge(0, i))
		t.det2.Flip(t.HEdge(i, 0))
	}
	return t
}

// WindingParity returns the two homology-class bits of a syndrome-free
// chain: whether it crosses the x=0 vertical-edge column an odd number of
// times and the y=0 horizontal-edge row an odd number of times. For
// cycles (zero syndrome) the pair is (0,0) exactly when the chain is a
// product of star operators; either bit set means a logical error.
func (t Lattice) WindingParity(errs bits.Vec) (bool, bool) {
	return errs.Dot(t.det1), errs.Dot(t.det2)
}

// buildHomologyTester builds an XOR basis of the space of trivial X-error
// chains. An X pattern acts trivially on the code space exactly when it is
// a product of star (X-stabilizer) operators, so the basis rows are the
// star edge-sets; syndrome-free chains outside this span are logical
// operators (noncontractible dual cycles).
func (t *Lattice) buildHomologyTester() {
	t.hbasis = make([]bits.Vec, t.Qubits())
	t.hset = make([]bool, t.Qubits())
	for y := 0; y < t.L; y++ {
		for x := 0; x < t.L; x++ {
			row := bits.NewVec(t.Qubits())
			for _, e := range t.StarEdges(x, y) {
				row.Flip(e)
			}
			t.insertBasis(row)
		}
	}
}

// insertBasis adds a vector to the XOR basis (standard leading-column
// reduction).
func (t *Lattice) insertBasis(v bits.Vec) {
	for c := 0; c < v.Len(); c++ {
		if !v.Get(c) {
			continue
		}
		if !t.hset[c] {
			t.hbasis[c] = v
			t.hset[c] = true
			return
		}
		v.Xor(t.hbasis[c])
	}
}

// inBoundarySpan reduces v against the basis and reports whether it
// vanishes (is a sum of plaquette boundaries).
func (t *Lattice) inBoundarySpan(v bits.Vec) bool {
	w := v.Clone()
	for c := 0; c < w.Len(); c++ {
		if !w.Get(c) {
			continue
		}
		if !t.hset[c] {
			return false
		}
		w.Xor(t.hbasis[c])
	}
	return true
}

// Qubits returns the number of physical qubits, 2L².
func (t Lattice) Qubits() int { return 2 * t.L * t.L }

// HEdge returns the index of the horizontal edge at (x, y).
func (t Lattice) HEdge(x, y int) int {
	return mod(y, t.L)*t.L + mod(x, t.L)
}

// VEdge returns the index of the vertical edge at (x, y).
func (t Lattice) VEdge(x, y int) int {
	return t.L*t.L + mod(y, t.L)*t.L + mod(x, t.L)
}

func mod(a, l int) int { return ((a % l) + l) % l }

// PlaquetteEdges returns the four edges of the plaquette at (x, y); the
// plaquette (Z-check) detects bit-flip chains ending inside it.
func (t Lattice) PlaquetteEdges(x, y int) [4]int {
	return [4]int{
		t.HEdge(x, y),
		t.HEdge(x, y+1),
		t.VEdge(x, y),
		t.VEdge(x+1, y),
	}
}

// StarEdges returns the four edges meeting at site (x, y); the star
// (X-check) detects phase-flip chains on the dual lattice.
func (t Lattice) StarEdges(x, y int) [4]int {
	return [4]int{
		t.HEdge(x, y),
		t.HEdge(x-1, y),
		t.VEdge(x, y),
		t.VEdge(x, y-1),
	}
}

// NumChecks returns the number of plaquettes (= sites) on the torus.
func (t Lattice) NumChecks() int { return t.L * t.L }

// Syndrome computes the plaquette syndrome of a bit-flip error pattern:
// defect (anyon) positions are plaquettes with odd boundary parity.
func (t Lattice) Syndrome(errs bits.Vec) []int {
	var defects []int
	for y := 0; y < t.L; y++ {
		for x := 0; x < t.L; x++ {
			parity := false
			for _, e := range t.PlaquetteEdges(x, y) {
				if errs.Get(e) {
					parity = !parity
				}
			}
			if parity {
				defects = append(defects, y*t.L+x)
			}
		}
	}
	return defects
}

// LogicalError reports whether a syndrome-free error pattern is
// homologically nontrivial: trivial residues are exactly the products of
// star operators, so membership in that span is tested directly over
// GF(2).
func (t Lattice) LogicalError(errs bits.Vec) bool {
	return !t.inBoundarySpan(errs)
}

// torusDist is the Manhattan distance between plaquettes on the torus.
func (t *Lattice) torusDist(a, b int) int {
	ax, ay := a%t.L, a/t.L
	bx, by := b%t.L, b/t.L
	dx := abs(ax - bx)
	if t.L-dx < dx {
		dx = t.L - dx
	}
	dy := abs(ay - by)
	if t.L-dy < dy {
		dy = t.L - dy
	}
	return dx + dy
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

// pathBetween flips a shortest error chain connecting plaquettes a and b
// into out (move in x first, then y, wrapping the short way).
func (t *Lattice) pathBetween(a, b int, out bits.Vec) {
	ax, ay := a%t.L, a/t.L
	bx, by := b%t.L, b/t.L
	// Walk in x: crossing from plaquette (x,y) to (x+1,y) flips the
	// vertical edge v(x+1, y).
	stepX := 1
	dx := mod(bx-ax, t.L)
	if dx > t.L-dx {
		stepX = -1
		dx = t.L - dx
	}
	x, y := ax, ay
	for i := 0; i < dx; i++ {
		if stepX == 1 {
			out.Flip(t.VEdge(x+1, y))
			x = mod(x+1, t.L)
		} else {
			out.Flip(t.VEdge(x, y))
			x = mod(x-1, t.L)
		}
	}
	// Walk in y: crossing from (x,y) to (x,y+1) flips h(x, y+1).
	stepY := 1
	dy := mod(by-ay, t.L)
	if dy > t.L-dy {
		stepY = -1
		dy = t.L - dy
	}
	for i := 0; i < dy; i++ {
		if stepY == 1 {
			out.Flip(t.HEdge(x, y+1))
			y = mod(y+1, t.L)
		} else {
			out.Flip(t.HEdge(x, y))
			y = mod(y-1, t.L)
		}
	}
}

// DecoderKind selects the matching strategy.
type DecoderKind int

// Decoders.
const (
	// DecoderGreedy repeatedly pairs the two closest defects.
	DecoderGreedy DecoderKind = iota
	// DecoderExact finds a minimum-weight perfect matching by bitmask
	// dynamic programming when the defect count is small (≤ 14), falling
	// back to greedy otherwise.
	DecoderExact
)

// Decode returns a correction for the given defect set.
func (t Lattice) Decode(defects []int, kind DecoderKind) bits.Vec {
	corr := bits.NewVec(t.Qubits())
	for _, p := range t.matchDefects(defects, kind, nil) {
		t.pathBetween(p[0], p[1], corr)
	}
	return corr
}

// matchScratch holds reusable buffers for the matcher so a batch of
// decodes allocates once instead of per lane. The returned pair slices
// alias scr.pairs and are valid until the next call with the same scr.
type matchScratch struct {
	dp, choice []int32
	pairs      [][2]int
}

func (s *matchScratch) take(n int) [][2]int {
	if s == nil {
		return make([][2]int, 0, n)
	}
	if cap(s.pairs) < n {
		s.pairs = make([][2]int, 0, n)
	}
	s.pairs = s.pairs[:0]
	return s.pairs
}

// matchDefects pairs up the defect set with the chosen strategy. scr may
// be nil (one-off decodes) or carried across calls to reuse buffers.
func (t *Lattice) matchDefects(defects []int, kind DecoderKind, scr *matchScratch) [][2]int {
	switch {
	case len(defects) == 0:
		return nil
	case len(defects) == 2:
		// One pair: both strategies agree, no search needed.
		return append(scr.take(1), [2]int{defects[0], defects[1]})
	case kind == DecoderExact && len(defects) <= 14:
		return t.exactMatch(defects, scr)
	}
	return t.greedyMatch(defects, scr)
}

// greedyMatch pairs the globally closest defects first.
func (t *Lattice) greedyMatch(defects []int, scr *matchScratch) [][2]int {
	alive := append([]int(nil), defects...)
	pairs := scr.take(len(defects) / 2)
	for len(alive) > 1 {
		bi, bj, best := 0, 1, 1<<30
		for i := 0; i < len(alive); i++ {
			for j := i + 1; j < len(alive); j++ {
				if d := t.torusDist(alive[i], alive[j]); d < best {
					bi, bj, best = i, j, d
				}
			}
		}
		pairs = append(pairs, [2]int{alive[bi], alive[bj]})
		// Remove bj first (larger index).
		alive = append(alive[:bj], alive[bj+1:]...)
		alive = append(alive[:bi], alive[bi+1:]...)
	}
	return pairs
}

// exactMatch is O(2^n · n²) minimum-weight perfect matching over the
// defect set. Pairwise distances are tabulated up front so the subset DP
// inner loop is a table lookup.
func (t *Lattice) exactMatch(defects []int, scr *matchScratch) [][2]int {
	n := len(defects)
	if n%2 != 0 {
		panic("toric: odd defect count on a torus")
	}
	var distBuf [14 * 14]int32
	dist := distBuf[:n*n]
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := int32(t.torusDist(defects[i], defects[j]))
			dist[i*n+j] = d
			dist[j*n+i] = d
		}
	}
	if n == 4 {
		// Three pairings: pick the lightest directly. The tie-break is
		// deterministic and shared by the scalar and batch decode paths,
		// which is all equivalence needs.
		best, bi := dist[0*4+1]+dist[2*4+3], 1
		if c := dist[0*4+2] + dist[1*4+3]; c < best {
			best, bi = c, 2
		}
		if c := dist[0*4+3] + dist[1*4+2]; c < best {
			bi = 3
		}
		pairs := scr.take(2)
		switch bi {
		case 1:
			return append(pairs, [2]int{defects[0], defects[1]}, [2]int{defects[2], defects[3]})
		case 2:
			return append(pairs, [2]int{defects[0], defects[2]}, [2]int{defects[1], defects[3]})
		}
		return append(pairs, [2]int{defects[0], defects[3]}, [2]int{defects[1], defects[2]})
	}
	full := 1<<uint(n) - 1
	const inf = math.MaxInt32
	var dp, choice []int32
	if scr != nil {
		if cap(scr.dp) < full+1 {
			scr.dp = make([]int32, full+1)
			scr.choice = make([]int32, full+1)
		}
		dp = scr.dp[:full+1]
		choice = scr.choice[:full+1]
	} else {
		dp = make([]int32, full+1)
		choice = make([]int32, full+1)
	}
	dp[0] = 0
	for m := 1; m <= full; m++ {
		dp[m] = inf
	}
	for m := 0; m <= full; m++ {
		if dp[m] == inf || m == full {
			continue
		}
		// First unmatched defect.
		i := 0
		for m>>uint(i)&1 == 1 {
			i++
		}
		for j := i + 1; j < n; j++ {
			if m>>uint(j)&1 == 1 {
				continue
			}
			nm := m | 1<<uint(i) | 1<<uint(j)
			cost := dp[m] + dist[i*n+j]
			if cost < dp[nm] {
				dp[nm] = cost
				choice[nm] = int32(i<<8 | j)
			}
		}
	}
	pairs := scr.take(n / 2)
	m := full
	for m != 0 {
		c := choice[m]
		i, j := int(c>>8), int(c&0xff)
		pairs = append(pairs, [2]int{defects[i], defects[j]})
		m &^= 1<<uint(i) | 1<<uint(j)
	}
	return pairs
}

// MemoryResult summarizes a toric-memory Monte Carlo run.
type MemoryResult struct {
	L        int
	P        float64
	Samples  int
	Failures int
}

// FailRate returns the logical failure probability.
func (r MemoryResult) FailRate() float64 { return float64(r.Failures) / float64(r.Samples) }

// MemoryExperiment applies i.i.d. bit flips with probability p to every
// edge, decodes, and counts homologically nontrivial residues — the
// passive-memory benchmark whose failure rate falls like e^{−αL} below
// threshold (§7.1's "if the quasiparticles are kept far apart, the
// probability of an error will be extremely low"). Shots run on the
// bit-plane batch path, fanned out over the CPUs in deterministic
// seed-per-chunk batches.
func MemoryExperiment(l int, p float64, kind DecoderKind, samples int, seed uint64) MemoryResult {
	t := cachedLattice(l)
	var fails atomic.Int64
	frame.ForEachChunk(samples, seed, func(lanes int, smp frame.Sampler) {
		fails.Add(int64(t.BatchMemory(p, kind, lanes, smp).Weight()))
	})
	return MemoryResult{L: l, P: p, Samples: samples, Failures: int(fails.Load())}
}

// latticeCache memoizes constructed lattices: experiments sweep (L, p)
// grids and the homology tester is immutable after construction, so the
// same lattice is safely shared across calls and workers.
var latticeCache sync.Map // int → *Lattice

func cachedLattice(l int) *Lattice {
	if v, ok := latticeCache.Load(l); ok {
		return v.(*Lattice)
	}
	t := NewLattice(l)
	v, _ := latticeCache.LoadOrStore(l, &t)
	return v.(*Lattice)
}

// BatchMemory runs `lanes` independent shots of the passive-memory
// experiment as bit-planes over the given sampler and returns the
// per-lane failure mask. Edge sampling and syndrome extraction are
// word-parallel across lanes; only the matching decoder runs per lane.
// Under a lockstep sampler lane i reproduces a scalar shot drawn from the
// paired stream edge by edge.
func (t *Lattice) BatchMemory(p float64, kind DecoderKind, lanes int, smp frame.Sampler) bits.Vec {
	nq := t.Qubits()
	active := bits.NewVec(lanes)
	active.SetAll()
	// Sample one error plane per edge, in edge order (the scalar draw
	// order within each lane).
	planes := bits.NewVecs(nq, lanes)
	for e := 0; e < nq; e++ {
		smp.Bernoulli(p, active, planes[e])
	}
	// Plaquette syndromes: one XOR chain of four edge planes per check,
	// then per-lane defect lists in ascending plaquette order (the order
	// Syndrome produces). Lists start in a shared backing sized for the
	// typical defect count; a busy lane grows its own on overflow.
	const defectCap = 8
	backing := make([]int, lanes*defectCap)
	defects := make([][]int, lanes)
	for lane := range defects {
		defects[lane] = backing[lane*defectCap : lane*defectCap : (lane+1)*defectCap]
	}
	plaq := bits.NewVec(lanes)
	for y := 0; y < t.L; y++ {
		for x := 0; x < t.L; x++ {
			idx := y*t.L + x
			edges := t.PlaquetteEdges(x, y)
			plaq.CopyFrom(planes[edges[0]])
			plaq.Xor(planes[edges[1]])
			plaq.Xor(planes[edges[2]])
			plaq.Xor(planes[edges[3]])
			for wi := 0; wi < plaq.Words(); wi++ {
				for w := plaq.Word(wi); w != 0; w &= w - 1 {
					lane := wi*64 + mbits.TrailingZeros64(w)
					defects[lane] = append(defects[lane], idx)
				}
			}
		}
	}
	// Winding parities of the raw error planes, batched.
	p1 := bits.NewVec(lanes)
	p2 := bits.NewVec(lanes)
	for _, e := range t.det1.Support() {
		p1.Xor(planes[e])
	}
	for _, e := range t.det2.Support() {
		p2.Xor(planes[e])
	}
	// Per-lane: match defects, accumulate the correction chain, and test
	// the residual's homology class. The correction's syndrome equals the
	// defect set by construction (each path ends exactly on its pair), so
	// the residual is always a cycle and the winding parities decide.
	fails := bits.NewVec(lanes)
	corr := bits.NewVec(nq)
	var scr matchScratch
	for lane := 0; lane < lanes; lane++ {
		d := defects[lane]
		l1 := p1.Get(lane)
		l2 := p2.Get(lane)
		if len(d) > 0 {
			corr.Clear()
			for _, pr := range t.matchDefects(d, kind, &scr) {
				t.pathBetween(pr[0], pr[1], corr)
			}
			l1 = l1 != corr.Dot(t.det1)
			l2 = l2 != corr.Dot(t.det2)
		}
		if l1 || l2 {
			fails.Set(lane, true)
		}
	}
	return fails
}

// ThermalResult is one point of the E18 temperature sweep.
type ThermalResult struct {
	DeltaOverT float64
	FlipProb   float64
	MemoryResult
}

// ThermalMemory models the thermal anyon plasma of §7.1: defect pairs are
// nucleated at a rate proportional to the Boltzmann factor e^{−Δ/T}, so
// each edge flips with probability p = p0·e^{−Δ/T} per dwell time; the
// logical failure rate inherits the exponential suppression in Δ/T.
func ThermalMemory(l int, p0, deltaOverT float64, kind DecoderKind, samples int, seed uint64) ThermalResult {
	p := p0 * math.Exp(-deltaOverT)
	return ThermalResult{
		DeltaOverT:   deltaOverT,
		FlipProb:     p,
		MemoryResult: MemoryExperiment(l, p, kind, samples, seed),
	}
}

// TunnelingErrorProb is the §7.1 zero-temperature estimate: the amplitude
// for a virtual charged pair to exchange quantum numbers between fluxons
// held a distance L apart is of order e^{−mL}.
func TunnelingErrorProb(m float64, l int) float64 {
	return math.Exp(-m * float64(l))
}
