// Package toric implements Kitaev's toric code (Preskill §7.1–§7.2,
// ref. 25): qubits on the edges of an L×L torus, commuting four-body
// check operators on sites and plaquettes (Fig. 17), quasiparticle pairs
// created by error chains, and a matching decoder. It provides the
// passive-quantum-memory experiments: exponential suppression of the
// logical error rate with the code distance L (the paper's e^{−mL}
// tunneling estimate) and with the inverse temperature Δ/T (the thermal
// anyon plasma).
//
// Decoding is delegated to internal/decoder: a near-linear union-find
// decoder for the hot Monte Carlo path and a polynomial exact
// minimum-weight matcher as the accuracy baseline. Batch decodes run as
// a worker-pool stage over word-aligned lane spans, bit-identical for
// any GOMAXPROCS.
package toric

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"ftqc/internal/bits"
	"ftqc/internal/decoder"
	"ftqc/internal/frame"
)

// Lattice is an L×L torus with one qubit per edge (2L² qubits).
// Horizontal edge (x,y) has index y·L+x; vertical edge (x,y) has index
// L²+y·L+x. Arithmetic is mod L in both directions.
type Lattice struct {
	L int
	// homology membership tester: an XOR basis of the space of trivial
	// cycles (plaquette boundaries), indexed by leading column.
	hbasis []bits.Vec
	hset   []bool
	// Winding detectors: two fixed edge sets orthogonal to every star
	// operator whose GF(2) inner products with a syndrome-free chain read
	// off its homology class directly (O(L) instead of a basis
	// reduction). det1 is the column of vertical edges at x=0 (odd
	// intersection ⇔ the chain winds horizontally on the dual lattice);
	// det2 is the row of horizontal edges at y=0.
	det1, det2 bits.Vec
	// Support lists of the detectors, precomputed for the batch path.
	det1Sup, det2Sup []int
	// wrapDist[d] = min(d, L−d): the one-axis torus metric, cached so a
	// plaquette distance is two table lookups shared by every lane and
	// worker.
	wrapDist []int32
	// graph is the decoding graph (plaquettes = nodes, qubits = edges),
	// immutable and shared across all decoder instances.
	graph *decoder.Graph
	// scratch recycles per-worker decoder state (union-find arrays,
	// matcher arrays, defect and correction buffers) across decodes.
	scratch *sync.Pool
}

// NewLattice returns an L×L toric lattice (L ≥ 2).
func NewLattice(l int) Lattice {
	if l < 2 {
		panic("toric: lattice size must be at least 2")
	}
	t := Lattice{L: l}
	t.buildHomologyTester()
	t.det1 = bits.NewVec(t.Qubits())
	t.det2 = bits.NewVec(t.Qubits())
	for i := 0; i < l; i++ {
		t.det1.Flip(t.VEdge(0, i))
		t.det2.Flip(t.HEdge(i, 0))
	}
	t.det1Sup = t.det1.Support()
	t.det2Sup = t.det2.Support()
	t.wrapDist = make([]int32, l)
	for d := 0; d < l; d++ {
		if l-d < d {
			t.wrapDist[d] = int32(l - d)
		} else {
			t.wrapDist[d] = int32(d)
		}
	}
	// Decoding graph: horizontal edge h(x,y) separates plaquettes (x,y)
	// and (x,y−1); vertical edge v(x,y) separates (x,y) and (x−1,y).
	ends := make([][2]int32, t.Qubits())
	for y := 0; y < l; y++ {
		for x := 0; x < l; x++ {
			ends[t.HEdge(x, y)] = [2]int32{int32(y*l + x), int32(mod(y-1, l)*l + x)}
			ends[t.VEdge(x, y)] = [2]int32{int32(y*l + x), int32(y*l + mod(x-1, l))}
		}
	}
	t.graph = decoder.NewGraph(t.NumChecks(), ends)
	graph, qubits := t.graph, t.Qubits()
	t.scratch = &sync.Pool{New: func() any {
		return &decodeScratch{
			uf:   decoder.NewUnionFind(graph),
			corr: bits.NewVec(qubits),
		}
	}}
	return t
}

// WindingParity returns the two homology-class bits of a syndrome-free
// chain: whether it crosses the x=0 vertical-edge column an odd number of
// times and the y=0 horizontal-edge row an odd number of times. For
// cycles (zero syndrome) the pair is (0,0) exactly when the chain is a
// product of star operators; either bit set means a logical error.
func (t Lattice) WindingParity(errs bits.Vec) (bool, bool) {
	return errs.Dot(t.det1), errs.Dot(t.det2)
}

// buildHomologyTester builds an XOR basis of the space of trivial X-error
// chains. An X pattern acts trivially on the code space exactly when it is
// a product of star (X-stabilizer) operators, so the basis rows are the
// star edge-sets; syndrome-free chains outside this span are logical
// operators (noncontractible dual cycles).
func (t *Lattice) buildHomologyTester() {
	t.hbasis = make([]bits.Vec, t.Qubits())
	t.hset = make([]bool, t.Qubits())
	for y := 0; y < t.L; y++ {
		for x := 0; x < t.L; x++ {
			row := bits.NewVec(t.Qubits())
			for _, e := range t.StarEdges(x, y) {
				row.Flip(e)
			}
			t.insertBasis(row)
		}
	}
}

// insertBasis adds a vector to the XOR basis (standard leading-column
// reduction).
func (t *Lattice) insertBasis(v bits.Vec) {
	for c := 0; c < v.Len(); c++ {
		if !v.Get(c) {
			continue
		}
		if !t.hset[c] {
			t.hbasis[c] = v
			t.hset[c] = true
			return
		}
		v.Xor(t.hbasis[c])
	}
}

// inBoundarySpan reduces v against the basis and reports whether it
// vanishes (is a sum of plaquette boundaries).
func (t *Lattice) inBoundarySpan(v bits.Vec) bool {
	w := v.Clone()
	for c := 0; c < w.Len(); c++ {
		if !w.Get(c) {
			continue
		}
		if !t.hset[c] {
			return false
		}
		w.Xor(t.hbasis[c])
	}
	return true
}

// Qubits returns the number of physical qubits, 2L².
func (t Lattice) Qubits() int { return 2 * t.L * t.L }

// HEdge returns the index of the horizontal edge at (x, y).
func (t Lattice) HEdge(x, y int) int {
	return mod(y, t.L)*t.L + mod(x, t.L)
}

// VEdge returns the index of the vertical edge at (x, y).
func (t Lattice) VEdge(x, y int) int {
	return t.L*t.L + mod(y, t.L)*t.L + mod(x, t.L)
}

func mod(a, l int) int { return ((a % l) + l) % l }

// PlaquetteEdges returns the four edges of the plaquette at (x, y); the
// plaquette (Z-check) detects bit-flip chains ending inside it.
func (t Lattice) PlaquetteEdges(x, y int) [4]int {
	return [4]int{
		t.HEdge(x, y),
		t.HEdge(x, y+1),
		t.VEdge(x, y),
		t.VEdge(x+1, y),
	}
}

// StarEdges returns the four edges meeting at site (x, y); the star
// (X-check) detects phase-flip chains on the dual lattice.
func (t Lattice) StarEdges(x, y int) [4]int {
	return [4]int{
		t.HEdge(x, y),
		t.HEdge(x-1, y),
		t.VEdge(x, y),
		t.VEdge(x, y-1),
	}
}

// NumChecks returns the number of plaquettes (= sites) on the torus.
func (t Lattice) NumChecks() int { return t.L * t.L }

// Syndrome computes the plaquette syndrome of a bit-flip error pattern:
// defect (anyon) positions are plaquettes with odd boundary parity.
func (t Lattice) Syndrome(errs bits.Vec) []int {
	var defects []int
	for y := 0; y < t.L; y++ {
		for x := 0; x < t.L; x++ {
			parity := false
			for _, e := range t.PlaquetteEdges(x, y) {
				if errs.Get(e) {
					parity = !parity
				}
			}
			if parity {
				defects = append(defects, y*t.L+x)
			}
		}
	}
	return defects
}

// LogicalError reports whether a syndrome-free error pattern is
// homologically nontrivial: trivial residues are exactly the products of
// star operators, so membership in that span is tested directly over
// GF(2).
func (t Lattice) LogicalError(errs bits.Vec) bool {
	return !t.inBoundarySpan(errs)
}

// torusDist is the Manhattan distance between plaquettes on the torus.
func (t *Lattice) torusDist(a, b int) int {
	ax, ay := a%t.L, a/t.L
	bx, by := b%t.L, b/t.L
	dx := ax - bx
	if dx < 0 {
		dx = -dx
	}
	dy := ay - by
	if dy < 0 {
		dy = -dy
	}
	return int(t.wrapDist[dx] + t.wrapDist[dy])
}

// pathBetween flips a shortest error chain connecting plaquettes a and b
// into out (move in x first, then y, wrapping the short way).
func (t *Lattice) pathBetween(a, b int, out bits.Vec) {
	ax, ay := a%t.L, a/t.L
	bx, by := b%t.L, b/t.L
	// Walk in x: crossing from plaquette (x,y) to (x+1,y) flips the
	// vertical edge v(x+1, y).
	stepX := 1
	dx := mod(bx-ax, t.L)
	if dx > t.L-dx {
		stepX = -1
		dx = t.L - dx
	}
	x, y := ax, ay
	for i := 0; i < dx; i++ {
		if stepX == 1 {
			out.Flip(t.VEdge(x+1, y))
			x = mod(x+1, t.L)
		} else {
			out.Flip(t.VEdge(x, y))
			x = mod(x-1, t.L)
		}
	}
	// Walk in y: crossing from (x,y) to (x,y+1) flips h(x, y+1).
	stepY := 1
	dy := mod(by-ay, t.L)
	if dy > t.L-dy {
		stepY = -1
		dy = t.L - dy
	}
	for i := 0; i < dy; i++ {
		if stepY == 1 {
			out.Flip(t.HEdge(x, y+1))
			y = mod(y+1, t.L)
		} else {
			out.Flip(t.HEdge(x, y))
			y = mod(y-1, t.L)
		}
	}
}

// DecoderKind selects the decoding strategy.
type DecoderKind int

// Decoders.
const (
	// DecoderGreedy repeatedly pairs the two closest defects.
	DecoderGreedy DecoderKind = iota
	// DecoderExact finds a minimum-weight perfect matching with the
	// polynomial (O(n³)-style) blossom matcher — exact at any defect
	// count; the accuracy baseline.
	DecoderExact
	// DecoderUnionFind is the near-linear weighted-growth union-find
	// decoder — the production decoder for large-L experiments.
	DecoderUnionFind
)

// decodeScratch carries one worker's reusable decoder state. Instances
// live in the lattice's sync.Pool, so any decode path — public one-off
// calls and batch workers alike — recycles buffers instead of
// reallocating per call.
type decodeScratch struct {
	uf      *decoder.UnionFind
	matcher decoder.Matcher
	pairs   [][2]int
	alive   []int
	defects []int
	corr    bits.Vec
}

func (s *decodeScratch) takePairs(n int) [][2]int {
	if cap(s.pairs) < n {
		s.pairs = make([][2]int, 0, n)
	}
	return s.pairs[:0]
}

// Decode returns a correction for the given defect set.
func (t Lattice) Decode(defects []int, kind DecoderKind) bits.Vec {
	corr := bits.NewVec(t.Qubits())
	scr := t.scratch.Get().(*decodeScratch)
	t.decodeInto(defects, kind, scr, corr)
	t.scratch.Put(scr)
	return corr
}

// decodeInto flips a correction for the defect set into corr. All decode
// paths (scalar and batch) funnel through here, so every path shares one
// deterministic tie-break per decoder kind.
func (t *Lattice) decodeInto(defects []int, kind DecoderKind, scr *decodeScratch, corr bits.Vec) {
	if kind == DecoderUnionFind {
		scr.uf.Decode(defects, func(e int) { corr.Flip(e) })
		return
	}
	for _, pr := range t.matchDefects(defects, kind, scr) {
		t.pathBetween(pr[0], pr[1], corr)
	}
}

// matchDefects pairs up the defect set with the chosen strategy. The
// returned pairs alias scr and are valid until its next use.
func (t *Lattice) matchDefects(defects []int, kind DecoderKind, scr *decodeScratch) [][2]int {
	switch {
	case len(defects) == 0:
		return nil
	case len(defects) == 2:
		// One pair: all strategies agree, no search needed.
		return append(scr.takePairs(1), [2]int{defects[0], defects[1]})
	case kind == DecoderExact && len(defects) == 4:
		return t.matchFour(defects, scr)
	case kind == DecoderExact:
		return t.mwpmMatch(defects, scr)
	}
	return t.greedyMatch(defects, scr)
}

// matchFour picks the lightest of the three pairings of four defects
// directly — the dominant nontrivial case at low error rates, decided
// without touching the matcher.
func (t *Lattice) matchFour(defects []int, scr *decodeScratch) [][2]int {
	d01 := t.torusDist(defects[0], defects[1])
	d23 := t.torusDist(defects[2], defects[3])
	d02 := t.torusDist(defects[0], defects[2])
	d13 := t.torusDist(defects[1], defects[3])
	d03 := t.torusDist(defects[0], defects[3])
	d12 := t.torusDist(defects[1], defects[2])
	best, bi := d01+d23, 1
	if c := d02 + d13; c < best {
		best, bi = c, 2
	}
	if c := d03 + d12; c < best {
		bi = 3
	}
	pairs := scr.takePairs(2)
	switch bi {
	case 1:
		return append(pairs, [2]int{defects[0], defects[1]}, [2]int{defects[2], defects[3]})
	case 2:
		return append(pairs, [2]int{defects[0], defects[2]}, [2]int{defects[1], defects[3]})
	}
	return append(pairs, [2]int{defects[0], defects[3]}, [2]int{defects[1], defects[2]})
}

// mwpmMatch is the polynomial exact matcher on the torus distance graph.
func (t *Lattice) mwpmMatch(defects []int, scr *decodeScratch) [][2]int {
	idx := scr.matcher.MinWeightPairs(len(defects), func(i, j int) int64 {
		return int64(t.torusDist(defects[i], defects[j]))
	})
	pairs := scr.takePairs(len(idx))
	for _, pr := range idx {
		pairs = append(pairs, [2]int{defects[pr[0]], defects[pr[1]]})
	}
	return pairs
}

// greedyMatch pairs the globally closest defects first.
func (t *Lattice) greedyMatch(defects []int, scr *decodeScratch) [][2]int {
	alive := append(scr.alive[:0], defects...)
	pairs := scr.takePairs(len(defects) / 2)
	for len(alive) > 1 {
		bi, bj, best := 0, 1, 1<<30
		for i := 0; i < len(alive); i++ {
			for j := i + 1; j < len(alive); j++ {
				if d := t.torusDist(alive[i], alive[j]); d < best {
					bi, bj, best = i, j, d
				}
			}
		}
		pairs = append(pairs, [2]int{alive[bi], alive[bj]})
		// Remove bj first (larger index).
		alive = append(alive[:bj], alive[bj+1:]...)
		alive = append(alive[:bi], alive[bi+1:]...)
	}
	scr.alive = alive[:0]
	return pairs
}

// MemoryResult summarizes a toric-memory Monte Carlo run.
type MemoryResult struct {
	L        int
	P        float64
	Samples  int
	Failures int
}

// FailRate returns the logical failure probability.
func (r MemoryResult) FailRate() float64 { return float64(r.Failures) / float64(r.Samples) }

// MemoryExperiment applies i.i.d. bit flips with probability p to every
// edge, decodes, and counts homologically nontrivial residues — the
// passive-memory benchmark whose failure rate falls like e^{−αL} below
// threshold (§7.1's "if the quasiparticles are kept far apart, the
// probability of an error will be extremely low"). Shots run on the
// bit-plane batch path, fanned out over the CPUs in deterministic
// seed-per-chunk batches.
func MemoryExperiment(l int, p float64, kind DecoderKind, samples int, seed uint64) MemoryResult {
	t := cachedLattice(l)
	var fails atomic.Int64
	frame.ForEachChunk(samples, seed, func(lanes int, smp frame.Sampler) {
		fails.Add(int64(t.BatchMemory(p, kind, lanes, smp).Weight()))
	})
	return MemoryResult{L: l, P: p, Samples: samples, Failures: int(fails.Load())}
}

// latticeCache memoizes constructed lattices: experiments sweep (L, p)
// grids and the homology tester is immutable after construction, so the
// same lattice is safely shared across calls and workers.
var latticeCache sync.Map // int → *Lattice

func cachedLattice(l int) *Lattice {
	if v, ok := latticeCache.Load(l); ok {
		return v.(*Lattice)
	}
	t := NewLattice(l)
	v, _ := latticeCache.LoadOrStore(l, &t)
	return v.(*Lattice)
}

// BatchMemory runs `lanes` independent shots of the passive-memory
// experiment as bit-planes over the given sampler and returns the
// per-lane failure mask. Edge sampling and syndrome extraction are
// word-parallel across lanes; the per-lane decodes run as a worker-pool
// stage over word-aligned lane spans. Under a lockstep sampler lane i
// reproduces a scalar shot drawn from the paired stream edge by edge.
func (t *Lattice) BatchMemory(p float64, kind DecoderKind, lanes int, smp frame.Sampler) bits.Vec {
	nq, nc := t.Qubits(), t.NumChecks()
	active := bits.NewVec(lanes)
	active.SetAll()
	// Sample one error plane per edge, in edge order (the scalar draw
	// order within each lane).
	planes := bits.NewVecs(nq, lanes)
	for e := 0; e < nq; e++ {
		smp.Bernoulli(p, active, planes[e])
	}
	// Plaquette syndrome planes: one XOR chain of four edge planes per
	// check, check-major.
	checks := bits.NewVecs(nc, lanes)
	for y := 0; y < t.L; y++ {
		for x := 0; x < t.L; x++ {
			edges := t.PlaquetteEdges(x, y)
			cv := checks[y*t.L+x]
			cv.CopyFrom(planes[edges[0]])
			cv.Xor(planes[edges[1]])
			cv.Xor(planes[edges[2]])
			cv.Xor(planes[edges[3]])
		}
	}
	// Winding parities of the raw error planes, batched.
	p1 := bits.NewVec(lanes)
	p2 := bits.NewVec(lanes)
	for _, e := range t.det1Sup {
		p1.Xor(planes[e])
	}
	for _, e := range t.det2Sup {
		p2.Xor(planes[e])
	}
	// Pivot to lane-major syndromes so each decode worker reads its own
	// lanes' bit-vectors and extracts sparse defect lists by word scans.
	syn := bits.NewVecs(lanes, nc)
	bits.TransposePlanes(syn, checks)
	fails := bits.NewVec(lanes)
	t.decodeLanes(kind, syn, p1, p2, fails)
	return fails
}

// decodeLanes is the worker-pool decode stage: lanes are partitioned
// into 64-lane word-aligned spans handed out to GOMAXPROCS workers. Each
// worker owns its spans' words of `fails` outright (no two workers touch
// the same machine word) and draws private scratch from the lattice
// pool, so the result is bit-identical for any worker count or
// scheduling order.
func (t *Lattice) decodeLanes(kind DecoderKind, syn []bits.Vec, p1, p2, fails bits.Vec) {
	lanes := len(syn)
	words := fails.Words()
	workers := runtime.GOMAXPROCS(0)
	if workers > words {
		workers = words
	}
	// Small batches (the fixed-width chunks of ForEachChunk, 2 words)
	// decode serially: the experiment loop already saturates the CPUs
	// with one goroutine per chunk, so an inner pool would only add
	// spawn overhead. The pool engages for large standalone batches.
	if workers <= 1 || words < 4 {
		t.decodeLaneSpan(kind, syn, p1, p2, fails, 0, lanes)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				wi := int(next.Add(1)) - 1
				if wi >= words {
					return
				}
				lo := wi * 64
				hi := lo + 64
				if hi > lanes {
					hi = lanes
				}
				t.decodeLaneSpan(kind, syn, p1, p2, fails, lo, hi)
			}
		}()
	}
	wg.Wait()
}

// decodeLaneSpan decodes lanes [lo, hi): extract the sparse defect list
// from the lane's syndrome vector (word scan + trailing-zero walk),
// decode it, and fold the correction's winding parities into the error
// chain's. The correction's syndrome equals the defect set by
// construction, so the residual is always a cycle and the winding
// parities decide failure.
func (t *Lattice) decodeLaneSpan(kind DecoderKind, syn []bits.Vec, p1, p2, fails bits.Vec, lo, hi int) {
	scr := t.scratch.Get().(*decodeScratch)
	for lane := lo; lane < hi; lane++ {
		scr.defects = syn[lane].AppendSupport(scr.defects[:0])
		l1 := p1.Get(lane)
		l2 := p2.Get(lane)
		if len(scr.defects) > 0 {
			scr.corr.Clear()
			t.decodeInto(scr.defects, kind, scr, scr.corr)
			l1 = l1 != scr.corr.Dot(t.det1)
			l2 = l2 != scr.corr.Dot(t.det2)
		}
		if l1 || l2 {
			fails.Set(lane, true)
		}
	}
	t.scratch.Put(scr)
}

// ThermalResult is one point of the E18 temperature sweep.
type ThermalResult struct {
	DeltaOverT float64
	FlipProb   float64
	MemoryResult
}

// ThermalMemory models the thermal anyon plasma of §7.1: defect pairs are
// nucleated at a rate proportional to the Boltzmann factor e^{−Δ/T}, so
// each edge flips with probability p = p0·e^{−Δ/T} per dwell time; the
// logical failure rate inherits the exponential suppression in Δ/T.
func ThermalMemory(l int, p0, deltaOverT float64, kind DecoderKind, samples int, seed uint64) ThermalResult {
	p := p0 * math.Exp(-deltaOverT)
	return ThermalResult{
		DeltaOverT:   deltaOverT,
		FlipProb:     p,
		MemoryResult: MemoryExperiment(l, p, kind, samples, seed),
	}
}

// TunnelingErrorProb is the §7.1 zero-temperature estimate: the amplitude
// for a virtual charged pair to exchange quantum numbers between fluxons
// held a distance L apart is of order e^{−mL}.
func TunnelingErrorProb(m float64, l int) float64 {
	return math.Exp(-m * float64(l))
}
