// Package toric implements Kitaev's toric code (Preskill §7.1–§7.2,
// ref. 25): qubits on the edges of an L×L torus, commuting four-body
// check operators on sites and plaquettes (Fig. 17), quasiparticle pairs
// created by error chains, and a matching decoder. It provides the
// passive-quantum-memory experiments: exponential suppression of the
// logical error rate with the code distance L (the paper's e^{−mL}
// tunneling estimate) and with the inverse temperature Δ/T (the thermal
// anyon plasma).
package toric

import (
	"math"
	"math/rand/v2"

	"ftqc/internal/bits"
)

// Lattice is an L×L torus with one qubit per edge (2L² qubits).
// Horizontal edge (x,y) has index y·L+x; vertical edge (x,y) has index
// L²+y·L+x. Arithmetic is mod L in both directions.
type Lattice struct {
	L int
	// homology membership tester: an XOR basis of the space of trivial
	// cycles (plaquette boundaries), indexed by leading column.
	hbasis []bits.Vec
	hset   []bool
}

// NewLattice returns an L×L toric lattice (L ≥ 2).
func NewLattice(l int) Lattice {
	if l < 2 {
		panic("toric: lattice size must be at least 2")
	}
	t := Lattice{L: l}
	t.buildHomologyTester()
	return t
}

// buildHomologyTester builds an XOR basis of the space of trivial X-error
// chains. An X pattern acts trivially on the code space exactly when it is
// a product of star (X-stabilizer) operators, so the basis rows are the
// star edge-sets; syndrome-free chains outside this span are logical
// operators (noncontractible dual cycles).
func (t *Lattice) buildHomologyTester() {
	t.hbasis = make([]bits.Vec, t.Qubits())
	t.hset = make([]bool, t.Qubits())
	for y := 0; y < t.L; y++ {
		for x := 0; x < t.L; x++ {
			row := bits.NewVec(t.Qubits())
			for _, e := range t.StarEdges(x, y) {
				row.Flip(e)
			}
			t.insertBasis(row)
		}
	}
}

// insertBasis adds a vector to the XOR basis (standard leading-column
// reduction).
func (t *Lattice) insertBasis(v bits.Vec) {
	for c := 0; c < v.Len(); c++ {
		if !v.Get(c) {
			continue
		}
		if !t.hset[c] {
			t.hbasis[c] = v
			t.hset[c] = true
			return
		}
		v.Xor(t.hbasis[c])
	}
}

// inBoundarySpan reduces v against the basis and reports whether it
// vanishes (is a sum of plaquette boundaries).
func (t *Lattice) inBoundarySpan(v bits.Vec) bool {
	w := v.Clone()
	for c := 0; c < w.Len(); c++ {
		if !w.Get(c) {
			continue
		}
		if !t.hset[c] {
			return false
		}
		w.Xor(t.hbasis[c])
	}
	return true
}

// Qubits returns the number of physical qubits, 2L².
func (t Lattice) Qubits() int { return 2 * t.L * t.L }

// HEdge returns the index of the horizontal edge at (x, y).
func (t Lattice) HEdge(x, y int) int {
	return mod(y, t.L)*t.L + mod(x, t.L)
}

// VEdge returns the index of the vertical edge at (x, y).
func (t Lattice) VEdge(x, y int) int {
	return t.L*t.L + mod(y, t.L)*t.L + mod(x, t.L)
}

func mod(a, l int) int { return ((a % l) + l) % l }

// PlaquetteEdges returns the four edges of the plaquette at (x, y); the
// plaquette (Z-check) detects bit-flip chains ending inside it.
func (t Lattice) PlaquetteEdges(x, y int) [4]int {
	return [4]int{
		t.HEdge(x, y),
		t.HEdge(x, y+1),
		t.VEdge(x, y),
		t.VEdge(x+1, y),
	}
}

// StarEdges returns the four edges meeting at site (x, y); the star
// (X-check) detects phase-flip chains on the dual lattice.
func (t Lattice) StarEdges(x, y int) [4]int {
	return [4]int{
		t.HEdge(x, y),
		t.HEdge(x-1, y),
		t.VEdge(x, y),
		t.VEdge(x, y-1),
	}
}

// NumChecks returns the number of plaquettes (= sites) on the torus.
func (t Lattice) NumChecks() int { return t.L * t.L }

// Syndrome computes the plaquette syndrome of a bit-flip error pattern:
// defect (anyon) positions are plaquettes with odd boundary parity.
func (t Lattice) Syndrome(errs bits.Vec) []int {
	var defects []int
	for y := 0; y < t.L; y++ {
		for x := 0; x < t.L; x++ {
			parity := false
			for _, e := range t.PlaquetteEdges(x, y) {
				if errs.Get(e) {
					parity = !parity
				}
			}
			if parity {
				defects = append(defects, y*t.L+x)
			}
		}
	}
	return defects
}

// LogicalError reports whether a syndrome-free error pattern is
// homologically nontrivial: trivial residues are exactly the products of
// star operators, so membership in that span is tested directly over
// GF(2).
func (t Lattice) LogicalError(errs bits.Vec) bool {
	return !t.inBoundarySpan(errs)
}

// torusDist is the Manhattan distance between plaquettes on the torus.
func (t Lattice) torusDist(a, b int) int {
	ax, ay := a%t.L, a/t.L
	bx, by := b%t.L, b/t.L
	dx := abs(ax - bx)
	if t.L-dx < dx {
		dx = t.L - dx
	}
	dy := abs(ay - by)
	if t.L-dy < dy {
		dy = t.L - dy
	}
	return dx + dy
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

// pathBetween flips a shortest error chain connecting plaquettes a and b
// into out (move in x first, then y, wrapping the short way).
func (t Lattice) pathBetween(a, b int, out bits.Vec) {
	ax, ay := a%t.L, a/t.L
	bx, by := b%t.L, b/t.L
	// Walk in x: crossing from plaquette (x,y) to (x+1,y) flips the
	// vertical edge v(x+1, y).
	stepX := 1
	dx := mod(bx-ax, t.L)
	if dx > t.L-dx {
		stepX = -1
		dx = t.L - dx
	}
	x, y := ax, ay
	for i := 0; i < dx; i++ {
		if stepX == 1 {
			out.Flip(t.VEdge(x+1, y))
			x = mod(x+1, t.L)
		} else {
			out.Flip(t.VEdge(x, y))
			x = mod(x-1, t.L)
		}
	}
	// Walk in y: crossing from (x,y) to (x,y+1) flips h(x, y+1).
	stepY := 1
	dy := mod(by-ay, t.L)
	if dy > t.L-dy {
		stepY = -1
		dy = t.L - dy
	}
	for i := 0; i < dy; i++ {
		if stepY == 1 {
			out.Flip(t.HEdge(x, y+1))
			y = mod(y+1, t.L)
		} else {
			out.Flip(t.HEdge(x, y))
			y = mod(y-1, t.L)
		}
	}
}

// DecoderKind selects the matching strategy.
type DecoderKind int

// Decoders.
const (
	// DecoderGreedy repeatedly pairs the two closest defects.
	DecoderGreedy DecoderKind = iota
	// DecoderExact finds a minimum-weight perfect matching by bitmask
	// dynamic programming when the defect count is small (≤ 14), falling
	// back to greedy otherwise.
	DecoderExact
)

// Decode returns a correction for the given defect set.
func (t Lattice) Decode(defects []int, kind DecoderKind) bits.Vec {
	corr := bits.NewVec(t.Qubits())
	if len(defects) == 0 {
		return corr
	}
	var pairs [][2]int
	if kind == DecoderExact && len(defects) <= 14 {
		pairs = t.exactMatch(defects)
	} else {
		pairs = t.greedyMatch(defects)
	}
	for _, p := range pairs {
		t.pathBetween(p[0], p[1], corr)
	}
	return corr
}

// greedyMatch pairs the globally closest defects first.
func (t Lattice) greedyMatch(defects []int) [][2]int {
	alive := append([]int(nil), defects...)
	var pairs [][2]int
	for len(alive) > 1 {
		bi, bj, best := 0, 1, 1<<30
		for i := 0; i < len(alive); i++ {
			for j := i + 1; j < len(alive); j++ {
				if d := t.torusDist(alive[i], alive[j]); d < best {
					bi, bj, best = i, j, d
				}
			}
		}
		pairs = append(pairs, [2]int{alive[bi], alive[bj]})
		// Remove bj first (larger index).
		alive = append(alive[:bj], alive[bj+1:]...)
		alive = append(alive[:bi], alive[bi+1:]...)
	}
	return pairs
}

// exactMatch is O(2^n · n²) minimum-weight perfect matching over the
// defect set.
func (t Lattice) exactMatch(defects []int) [][2]int {
	n := len(defects)
	if n%2 != 0 {
		panic("toric: odd defect count on a torus")
	}
	full := 1<<uint(n) - 1
	const inf = math.MaxInt32
	dp := make([]int32, full+1)
	choice := make([]int32, full+1)
	for m := 1; m <= full; m++ {
		dp[m] = inf
	}
	for m := 0; m <= full; m++ {
		if dp[m] == inf || m == full {
			continue
		}
		// First unmatched defect.
		i := 0
		for m>>uint(i)&1 == 1 {
			i++
		}
		for j := i + 1; j < n; j++ {
			if m>>uint(j)&1 == 1 {
				continue
			}
			nm := m | 1<<uint(i) | 1<<uint(j)
			cost := dp[m] + int32(t.torusDist(defects[i], defects[j]))
			if cost < dp[nm] {
				dp[nm] = cost
				choice[nm] = int32(i<<8 | j)
			}
		}
	}
	var pairs [][2]int
	m := full
	for m != 0 {
		c := choice[m]
		i, j := int(c>>8), int(c&0xff)
		pairs = append(pairs, [2]int{defects[i], defects[j]})
		m &^= 1<<uint(i) | 1<<uint(j)
	}
	return pairs
}

// MemoryResult summarizes a toric-memory Monte Carlo run.
type MemoryResult struct {
	L        int
	P        float64
	Samples  int
	Failures int
}

// FailRate returns the logical failure probability.
func (r MemoryResult) FailRate() float64 { return float64(r.Failures) / float64(r.Samples) }

// MemoryExperiment applies i.i.d. bit flips with probability p to every
// edge, decodes, and counts homologically nontrivial residues — the
// passive-memory benchmark whose failure rate falls like e^{−αL} below
// threshold (§7.1's "if the quasiparticles are kept far apart, the
// probability of an error will be extremely low").
func MemoryExperiment(l int, p float64, kind DecoderKind, samples int, rng *rand.Rand) MemoryResult {
	t := NewLattice(l)
	res := MemoryResult{L: l, P: p, Samples: samples}
	for s := 0; s < samples; s++ {
		errs := bits.NewVec(t.Qubits())
		for e := 0; e < t.Qubits(); e++ {
			if rng.Float64() < p {
				errs.Flip(e)
			}
		}
		corr := t.Decode(t.Syndrome(errs), kind)
		errs.Xor(corr)
		if len(t.Syndrome(errs)) != 0 {
			res.Failures++ // decoder failed to return to the code space
			continue
		}
		if t.LogicalError(errs) {
			res.Failures++
		}
	}
	return res
}

// ThermalResult is one point of the E18 temperature sweep.
type ThermalResult struct {
	DeltaOverT float64
	FlipProb   float64
	MemoryResult
}

// ThermalMemory models the thermal anyon plasma of §7.1: defect pairs are
// nucleated at a rate proportional to the Boltzmann factor e^{−Δ/T}, so
// each edge flips with probability p = p0·e^{−Δ/T} per dwell time; the
// logical failure rate inherits the exponential suppression in Δ/T.
func ThermalMemory(l int, p0, deltaOverT float64, kind DecoderKind, samples int, rng *rand.Rand) ThermalResult {
	p := p0 * math.Exp(-deltaOverT)
	return ThermalResult{
		DeltaOverT:   deltaOverT,
		FlipProb:     p,
		MemoryResult: MemoryExperiment(l, p, kind, samples, rng),
	}
}

// TunnelingErrorProb is the §7.1 zero-temperature estimate: the amplitude
// for a virtual charged pair to exchange quantum numbers between fluxons
// held a distance L apart is of order e^{−mL}.
func TunnelingErrorProb(m float64, l int) float64 {
	return math.Exp(-m * float64(l))
}
