// Package bits provides dense GF(2) linear algebra: bit vectors and bit
// matrices with row reduction, rank, kernel and linear solving. It is the
// substrate for classical codes, stabilizer tableaus and decoders.
package bits

import (
	"fmt"
	mbits "math/bits"
	"strings"
)

const wordBits = 64

// Vec is a fixed-length vector over GF(2). The zero value is an empty
// vector; use NewVec to create one of a given length.
type Vec struct {
	n     int
	words []uint64
}

// NewVec returns an all-zero vector of length n.
func NewVec(n int) Vec {
	if n < 0 {
		panic("bits: negative vector length")
	}
	return Vec{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// NewVecs returns count all-zero vectors of length n backed by a single
// contiguous allocation (bit-plane arrays for the batch simulators).
func NewVecs(count, n int) []Vec {
	if n < 0 || count < 0 {
		panic("bits: negative vector shape")
	}
	words := (n + wordBits - 1) / wordBits
	backing := make([]uint64, count*words)
	out := make([]Vec, count)
	for i := range out {
		out[i] = Vec{n: n, words: backing[i*words : (i+1)*words : (i+1)*words]}
	}
	return out
}

// FromBools builds a vector from a bool slice.
func FromBools(b []bool) Vec {
	v := NewVec(len(b))
	for i, bit := range b {
		if bit {
			v.Set(i, true)
		}
	}
	return v
}

// FromString parses a vector from a string of '0' and '1' characters.
func FromString(s string) (Vec, error) {
	v := NewVec(len(s))
	for i, c := range s {
		switch c {
		case '0':
		case '1':
			v.Set(i, true)
		default:
			return Vec{}, fmt.Errorf("bits: invalid character %q in %q", c, s)
		}
	}
	return v, nil
}

// MustFromString is FromString that panics on malformed input. It is
// intended for compile-time constant tables.
func MustFromString(s string) Vec {
	v, err := FromString(s)
	if err != nil {
		panic(err)
	}
	return v
}

// Len returns the vector length in bits.
func (v Vec) Len() int { return v.n }

// Get returns bit i.
func (v Vec) Get(i int) bool {
	if i < 0 || i >= v.n {
		panic("bits: index out of range")
	}
	return v.words[i/wordBits]>>(uint(i)%wordBits)&1 == 1
}

// Set sets bit i to b.
func (v Vec) Set(i int, b bool) {
	if i < 0 || i >= v.n {
		panic("bits: index out of range")
	}
	mask := uint64(1) << (uint(i) % wordBits)
	if b {
		v.words[i/wordBits] |= mask
	} else {
		v.words[i/wordBits] &^= mask
	}
}

// Flip toggles bit i.
func (v Vec) Flip(i int) {
	if i < 0 || i >= v.n {
		panic("bits: index out of range")
	}
	v.words[i/wordBits] ^= uint64(1) << (uint(i) % wordBits)
}

// Clone returns an independent copy of v.
func (v Vec) Clone() Vec {
	w := NewVec(v.n)
	copy(w.words, v.words)
	return w
}

// --- word-level access (the substrate of the bit-plane batch simulator) ---

// Words returns the number of 64-bit words backing the vector.
func (v Vec) Words() int { return len(v.words) }

// Word returns the i-th backing word (bit j of the word is vector bit
// 64·i+j).
func (v Vec) Word(i int) uint64 { return v.words[i] }

// SetWord overwrites the i-th backing word. Bits beyond Len are masked
// off so that Weight, Zero and Equal stay consistent.
func (v Vec) SetWord(i int, w uint64) {
	v.words[i] = w & v.tailMask(i)
}

// XorWord xors w into the i-th backing word, masking bits beyond Len.
func (v Vec) XorWord(i int, w uint64) {
	v.words[i] ^= w & v.tailMask(i)
}

// tailMask returns the valid-bit mask for word i.
func (v Vec) tailMask(i int) uint64 {
	if r := v.n - i*wordBits; r < wordBits {
		return ^uint64(0) >> uint(wordBits-r)
	}
	return ^uint64(0)
}

// Or sets v |= w in place. The lengths must match.
func (v Vec) Or(w Vec) {
	if v.n != w.n {
		panic("bits: length mismatch in Or")
	}
	for i := range v.words {
		v.words[i] |= w.words[i]
	}
}

// AndNot sets v &^= w in place. The lengths must match.
func (v Vec) AndNot(w Vec) {
	if v.n != w.n {
		panic("bits: length mismatch in AndNot")
	}
	for i := range v.words {
		v.words[i] &^= w.words[i]
	}
}

// CopyFrom overwrites v with the bits of w. The lengths must match.
func (v Vec) CopyFrom(w Vec) {
	if v.n != w.n {
		panic("bits: length mismatch in CopyFrom")
	}
	copy(v.words, w.words)
}

// Clear zeroes every bit in place.
func (v Vec) Clear() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// SetAll sets every bit in place (tail bits beyond Len stay 0).
func (v Vec) SetAll() {
	for i := range v.words {
		v.SetWord(i, ^uint64(0))
	}
}

// Any reports whether any bit is 1.
func (v Vec) Any() bool { return !v.Zero() }

// Zero reports whether every bit is 0.
func (v Vec) Zero() bool {
	for _, w := range v.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether v and w have the same length and bits.
func (v Vec) Equal(w Vec) bool {
	if v.n != w.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != w.words[i] {
			return false
		}
	}
	return true
}

// Xor sets v ^= w in place. The lengths must match.
func (v Vec) Xor(w Vec) {
	if v.n != w.n {
		panic("bits: length mismatch in Xor")
	}
	for i := range v.words {
		v.words[i] ^= w.words[i]
	}
}

// And sets v &= w in place. The lengths must match.
func (v Vec) And(w Vec) {
	if v.n != w.n {
		panic("bits: length mismatch in And")
	}
	for i := range v.words {
		v.words[i] &= w.words[i]
	}
}

// Dot returns the GF(2) inner product of v and w.
func (v Vec) Dot(w Vec) bool {
	if v.n != w.n {
		panic("bits: length mismatch in Dot")
	}
	var acc uint64
	for i := range v.words {
		acc ^= v.words[i] & w.words[i]
	}
	return popcount(acc)%2 == 1
}

// Weight returns the Hamming weight (number of 1 bits).
func (v Vec) Weight() int {
	w := 0
	for _, word := range v.words {
		w += popcount(word)
	}
	return w
}

// Support returns the indices of the 1 bits in increasing order.
func (v Vec) Support() []int {
	return v.AppendSupport(nil)
}

// AppendSupport appends the indices of the 1 bits in increasing order to
// dst and returns the extended slice. It walks whole words and extracts
// set bits with trailing-zero counts, so sparse vectors cost O(words +
// ones) rather than O(bits) — the hot path of batch defect extraction.
func (v Vec) AppendSupport(dst []int) []int {
	for i, w := range v.words {
		base := i * wordBits
		for ; w != 0; w &= w - 1 {
			dst = append(dst, base+trailingZeros64(w))
		}
	}
	return dst
}

// String renders the vector as a string of '0' and '1'.
func (v Vec) String() string {
	var sb strings.Builder
	sb.Grow(v.n)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Key returns a comparable key for use in maps. Two vectors of the same
// length have equal keys iff they are equal.
func (v Vec) Key() string {
	b := make([]byte, 0, len(v.words)*8)
	for _, w := range v.words {
		for s := 0; s < 64; s += 8 {
			b = append(b, byte(w>>uint(s)))
		}
	}
	return string(b)
}

// trailingZeros64 names math/bits.TrailingZeros64 under the import alias.
func trailingZeros64(x uint64) int { return mbits.TrailingZeros64(x) }

// TransposePlanes writes the bit-matrix transpose of src into dst:
// dst[j].Get(i) == src[i].Get(j). src holds n vectors of m bits and dst
// must hold m vectors of n bits. The work runs block-wise: each 64×64 bit
// tile is gathered into registers, transposed by the classic
// swap-by-halves network, and scattered — O(n·m/64) word operations
// instead of O(n·m) bit probes. It is the pivot between check-major
// syndrome planes (one vector per check, one bit per shot) and lane-major
// syndromes (one vector per shot) that per-lane decoders consume.
func TransposePlanes(dst, src []Vec) {
	if len(src) == 0 {
		for _, d := range dst {
			d.Clear()
		}
		return
	}
	n, m := len(src), src[0].Len()
	if len(dst) != m || (m > 0 && dst[0].Len() != n) {
		panic("bits: shape mismatch in TransposePlanes")
	}
	var tile [64]uint64
	for bi := 0; bi < (n+63)/64; bi++ { // block row: src vectors 64·bi …
		for bj := 0; bj < (m+63)/64; bj++ { // block col: src bits 64·bj …
			rows := n - bi*64
			if rows > 64 {
				rows = 64
			}
			for r := 0; r < rows; r++ {
				tile[r] = src[bi*64+r].Word(bj)
			}
			for r := rows; r < 64; r++ {
				tile[r] = 0
			}
			transpose64(&tile)
			cols := m - bj*64
			if cols > 64 {
				cols = 64
			}
			for c := 0; c < cols; c++ {
				dst[bj*64+c].SetWord(bi, tile[c])
			}
		}
	}
}

// transpose64 transposes a 64×64 bit tile in place (bit j of word i moves
// to bit i of word j) by recursive halves — the Hacker's Delight network:
// swap the off-diagonal 32×32 quadrants, then 16×16, … down to 1×1.
func transpose64(t *[64]uint64) {
	m := uint64(0x00000000ffffffff)
	for j := 32; j != 0; j, m = j>>1, m^(m<<uint(j>>1)) {
		for k := 0; k < 64; k = (k + j + 1) &^ j {
			x := (t[k]>>uint(j) ^ t[k+j]) & m
			t[k] ^= x << uint(j)
			t[k+j] ^= x
		}
	}
}

func popcount(x uint64) int { return mbits.OnesCount64(x) }
