package bits

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func randomVec(rng *rand.Rand, n int) Vec {
	v := NewVec(n)
	for i := 0; i < n; i++ {
		if rng.IntN(2) == 1 {
			v.Set(i, true)
		}
	}
	return v
}

func TestVecSetGetFlip(t *testing.T) {
	v := NewVec(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if v.Get(i) {
			t.Fatalf("fresh vector has bit %d set", i)
		}
		v.Set(i, true)
		if !v.Get(i) {
			t.Fatalf("Set(%d) did not stick", i)
		}
		v.Flip(i)
		if v.Get(i) {
			t.Fatalf("Flip(%d) did not clear", i)
		}
	}
}

func TestVecString(t *testing.T) {
	v := MustFromString("0110010")
	if got := v.String(); got != "0110010" {
		t.Fatalf("round trip: got %q", got)
	}
	if v.Weight() != 3 {
		t.Fatalf("weight: got %d, want 3", v.Weight())
	}
	if got := v.Support(); len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 5 {
		t.Fatalf("support: got %v", got)
	}
}

func TestFromStringRejectsGarbage(t *testing.T) {
	if _, err := FromString("01x"); err == nil {
		t.Fatal("expected error for non-binary character")
	}
}

func TestXorSelfInverse(t *testing.T) {
	f := func(a, b []bool) bool {
		if len(a) > len(b) {
			a = a[:len(b)]
		} else {
			b = b[:len(a)]
		}
		va, vb := FromBools(a), FromBools(b)
		w := va.Clone()
		w.Xor(vb)
		w.Xor(vb)
		return w.Equal(va)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDotBilinear(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.IntN(100)
		a, b, c := randomVec(rng, n), randomVec(rng, n), randomVec(rng, n)
		bc := b.Clone()
		bc.Xor(c)
		lhs := a.Dot(bc)
		rhs := a.Dot(b) != a.Dot(c)
		if lhs != rhs {
			t.Fatalf("n=%d: dot not bilinear", n)
		}
	}
}

func TestWeightMatchesSupport(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 100; trial++ {
		v := randomVec(rng, 1+rng.IntN(200))
		if v.Weight() != len(v.Support()) {
			t.Fatalf("weight %d != |support| %d", v.Weight(), len(v.Support()))
		}
	}
}

func TestKeyDistinguishes(t *testing.T) {
	a := MustFromString("1010")
	b := MustFromString("1011")
	if a.Key() == b.Key() {
		t.Fatal("distinct vectors share a key")
	}
	if a.Key() != a.Clone().Key() {
		t.Fatal("clone has different key")
	}
}

func TestRREFIdentity(t *testing.T) {
	m := MatrixFromStrings("110", "011", "101")
	pivots := m.RREF()
	// 110+011+101 = 000, rank is 2.
	if len(pivots) != 2 {
		t.Fatalf("rank: got %d, want 2", len(pivots))
	}
}

func TestHammingParityKernel(t *testing.T) {
	// The [7,4] Hamming parity check; its kernel must have dimension 4 and
	// every kernel vector must satisfy the check.
	h := MatrixFromStrings(
		"0001111",
		"0110011",
		"1010101",
	)
	ker := h.Kernel()
	if ker.Rows() != 4 {
		t.Fatalf("kernel dim: got %d, want 4", ker.Rows())
	}
	for i := 0; i < ker.Rows(); i++ {
		if !h.MulVec(ker.Row(i)).Zero() {
			t.Fatalf("kernel row %d not annihilated", i)
		}
	}
	if ker.Rank() != 4 {
		t.Fatalf("kernel rows dependent: rank %d", ker.Rank())
	}
}

func TestSolveConsistent(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 100; trial++ {
		rows, cols := 1+rng.IntN(12), 1+rng.IntN(12)
		m := NewMatrix(rows, cols)
		for i := 0; i < rows; i++ {
			m.SetRow(i, randomVec(rng, cols))
		}
		// Build b from a known solution so the system is consistent.
		x0 := randomVec(rng, cols)
		b := m.MulVec(x0)
		x, ok := m.Solve(b)
		if !ok {
			t.Fatalf("consistent system reported unsolvable")
		}
		if !m.MulVec(x).Equal(b) {
			t.Fatalf("solution does not satisfy system")
		}
	}
}

func TestSolveInconsistent(t *testing.T) {
	m := MatrixFromStrings("10", "10")
	b := MustFromString("10")
	if _, ok := m.Solve(b); ok {
		t.Fatal("inconsistent system reported solvable")
	}
}

func TestRankNullity(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	for trial := 0; trial < 100; trial++ {
		rows, cols := 1+rng.IntN(15), 1+rng.IntN(15)
		m := NewMatrix(rows, cols)
		for i := 0; i < rows; i++ {
			m.SetRow(i, randomVec(rng, cols))
		}
		if m.Rank()+m.Kernel().Rows() != cols {
			t.Fatalf("rank-nullity violated: rank=%d nullity=%d cols=%d",
				m.Rank(), m.Kernel().Rows(), cols)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	m := MatrixFromStrings("101", "010")
	tt := m.Transpose().Transpose()
	for i := 0; i < m.Rows(); i++ {
		if !m.Row(i).Equal(tt.Row(i)) {
			t.Fatal("double transpose differs")
		}
	}
}

func TestStack(t *testing.T) {
	a := MatrixFromStrings("10")
	b := MatrixFromStrings("01", "11")
	s := a.Stack(b)
	if s.Rows() != 3 || s.String() != "10\n01\n11" {
		t.Fatalf("stack wrong: %q", s.String())
	}
}

func TestWordLevelOps(t *testing.T) {
	v := NewVec(70) // deliberately not a multiple of 64: exercises tail masking
	if v.Words() != 2 {
		t.Fatalf("words %d", v.Words())
	}
	v.SetWord(0, ^uint64(0))
	v.SetWord(1, ^uint64(0))
	if v.Weight() != 70 {
		t.Fatalf("tail masking broken: weight %d", v.Weight())
	}
	if v.Word(1) != (1<<6)-1 {
		t.Fatalf("tail word %x", v.Word(1))
	}
	w := NewVec(70)
	w.Set(3, true)
	w.Set(69, true)
	v.AndNot(w)
	if v.Get(3) || v.Get(69) || v.Weight() != 68 {
		t.Fatal("AndNot broken")
	}
	v.Or(w)
	if !v.Get(3) || !v.Get(69) || v.Weight() != 70 {
		t.Fatal("Or broken")
	}
	v.XorWord(1, ^uint64(0))
	if v.Word(1) != 0 {
		t.Fatalf("XorWord broken: %x", v.Word(1))
	}
	u := NewVec(70)
	u.CopyFrom(v)
	if !u.Equal(v) {
		t.Fatal("CopyFrom broken")
	}
	if !u.Any() {
		t.Fatal("Any broken")
	}
	u.Clear()
	if u.Any() {
		t.Fatal("Clear broken")
	}
}

func TestAppendSupport(t *testing.T) {
	rng := rand.New(rand.NewPCG(71, 72))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.IntN(300)
		v := NewVec(n)
		var want []int
		for i := 0; i < n; i++ {
			if rng.IntN(4) == 0 {
				v.Set(i, true)
				want = append(want, i)
			}
		}
		got := v.AppendSupport(nil)
		if len(got) != len(want) {
			t.Fatalf("n=%d: support size %d want %d", n, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: support[%d]=%d want %d", n, i, got[i], want[i])
			}
		}
		// Appending after a prefix must preserve it.
		pre := v.AppendSupport([]int{-1})
		if pre[0] != -1 || len(pre) != len(want)+1 {
			t.Fatal("AppendSupport clobbered the destination prefix")
		}
	}
}

func TestTransposePlanes(t *testing.T) {
	rng := rand.New(rand.NewPCG(73, 74))
	for _, shape := range [][2]int{{1, 1}, {3, 70}, {64, 64}, {65, 127}, {130, 40}, {257, 129}} {
		n, m := shape[0], shape[1]
		src := NewVecs(n, m)
		for i := range src {
			for j := 0; j < m; j++ {
				if rng.IntN(2) == 1 {
					src[i].Set(j, true)
				}
			}
		}
		dst := NewVecs(m, n)
		TransposePlanes(dst, src)
		for i := 0; i < n; i++ {
			for j := 0; j < m; j++ {
				if dst[j].Get(i) != src[i].Get(j) {
					t.Fatalf("shape %dx%d: dst[%d][%d] != src[%d][%d]", n, m, j, i, i, j)
				}
			}
		}
	}
}
