package bits

import "strings"

// Matrix is a dense matrix over GF(2), stored as a slice of row vectors.
type Matrix struct {
	rows int
	cols int
	row  []Vec
}

// NewMatrix returns an all-zero rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	m := &Matrix{rows: rows, cols: cols, row: make([]Vec, rows)}
	for i := range m.row {
		m.row[i] = NewVec(cols)
	}
	return m
}

// MatrixFromStrings builds a matrix from rows written as '0'/'1' strings.
func MatrixFromStrings(rows ...string) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, s := range rows {
		v := MustFromString(s)
		if v.Len() != m.cols {
			panic("bits: ragged matrix rows")
		}
		m.row[i] = v
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// Get returns entry (i, j).
func (m *Matrix) Get(i, j int) bool { return m.row[i].Get(j) }

// Set sets entry (i, j).
func (m *Matrix) Set(i, j int, b bool) { m.row[i].Set(j, b) }

// Row returns row i as a vector sharing storage with the matrix.
func (m *Matrix) Row(i int) Vec { return m.row[i] }

// SetRow replaces row i with a copy of v.
func (m *Matrix) SetRow(i int, v Vec) {
	if v.Len() != m.cols {
		panic("bits: row length mismatch")
	}
	m.row[i] = v.Clone()
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	for i := range m.row {
		c.row[i] = m.row[i].Clone()
	}
	return c
}

// MulVec returns m · v over GF(2); v has length Cols, result length Rows.
func (m *Matrix) MulVec(v Vec) Vec {
	if v.Len() != m.cols {
		panic("bits: dimension mismatch in MulVec")
	}
	out := NewVec(m.rows)
	for i := 0; i < m.rows; i++ {
		if m.row[i].Dot(v) {
			out.Set(i, true)
		}
	}
	return out
}

// Transpose returns the transposed matrix.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if m.Get(i, j) {
				t.Set(j, i, true)
			}
		}
	}
	return t
}

// String renders one row per line.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.rows; i++ {
		sb.WriteString(m.row[i].String())
		if i != m.rows-1 {
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// RREF row-reduces the matrix in place to reduced row-echelon form and
// returns the pivot columns in order.
func (m *Matrix) RREF() []int {
	var pivots []int
	r := 0
	for c := 0; c < m.cols && r < m.rows; c++ {
		// Find a pivot row at or below r with a 1 in column c.
		p := -1
		for i := r; i < m.rows; i++ {
			if m.row[i].Get(c) {
				p = i
				break
			}
		}
		if p < 0 {
			continue
		}
		m.row[r], m.row[p] = m.row[p], m.row[r]
		for i := 0; i < m.rows; i++ {
			if i != r && m.row[i].Get(c) {
				m.row[i].Xor(m.row[r])
			}
		}
		pivots = append(pivots, c)
		r++
	}
	return pivots
}

// Rank returns the GF(2) rank of the matrix (without modifying it).
func (m *Matrix) Rank() int {
	return len(m.Clone().RREF())
}

// Kernel returns a basis for the null space {x : m·x = 0} as rows of a
// matrix with Cols() columns.
func (m *Matrix) Kernel() *Matrix {
	red := m.Clone()
	pivots := red.RREF()
	isPivot := make([]bool, m.cols)
	pivotRow := make([]int, m.cols)
	for r, c := range pivots {
		isPivot[c] = true
		pivotRow[c] = r
	}
	var free []int
	for c := 0; c < m.cols; c++ {
		if !isPivot[c] {
			free = append(free, c)
		}
	}
	ker := NewMatrix(len(free), m.cols)
	for i, fc := range free {
		v := ker.row[i]
		v.Set(fc, true)
		for _, pc := range pivots {
			if red.row[pivotRow[pc]].Get(fc) {
				v.Set(pc, true)
			}
		}
	}
	return ker
}

// Solve finds one solution x with m·x = b, returning ok = false when the
// system is inconsistent.
func (m *Matrix) Solve(b Vec) (x Vec, ok bool) {
	if b.Len() != m.rows {
		panic("bits: dimension mismatch in Solve")
	}
	// Augment [m | b] and reduce.
	aug := NewMatrix(m.rows, m.cols+1)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if m.Get(i, j) {
				aug.Set(i, j, true)
			}
		}
		if b.Get(i) {
			aug.Set(i, m.cols, true)
		}
	}
	pivots := aug.RREF()
	x = NewVec(m.cols)
	for r, c := range pivots {
		if c == m.cols {
			return Vec{}, false // pivot in the augmented column: inconsistent
		}
		if aug.row[r].Get(m.cols) {
			x.Set(c, true)
		}
	}
	return x, true
}

// Inverse returns the inverse of a square full-rank matrix, or ok = false
// when the matrix is singular.
func (m *Matrix) Inverse() (*Matrix, bool) {
	if m.rows != m.cols {
		panic("bits: Inverse of non-square matrix")
	}
	n := m.rows
	// Augment [m | I] and reduce.
	aug := NewMatrix(n, 2*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if m.Get(i, j) {
				aug.Set(i, j, true)
			}
		}
		aug.Set(i, n+i, true)
	}
	pivots := aug.RREF()
	if len(pivots) != n {
		return nil, false
	}
	for i, c := range pivots {
		if c != i {
			return nil, false
		}
	}
	inv := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			inv.Set(i, j, aug.Get(i, n+j))
		}
	}
	return inv, true
}

// InSpan reports whether v lies in the row space of m.
func (m *Matrix) InSpan(v Vec) bool {
	if v.Len() != m.cols {
		panic("bits: dimension mismatch in InSpan")
	}
	r := m.Rank()
	ext := NewMatrix(m.rows+1, m.cols)
	for i := 0; i < m.rows; i++ {
		ext.SetRow(i, m.row[i])
	}
	ext.SetRow(m.rows, v)
	return ext.Rank() == r
}

// Stack returns the matrix [m; other] (rows of m above rows of other).
func (m *Matrix) Stack(other *Matrix) *Matrix {
	if m.cols != other.cols {
		panic("bits: column mismatch in Stack")
	}
	s := NewMatrix(m.rows+other.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		s.row[i] = m.row[i].Clone()
	}
	for i := 0; i < other.rows; i++ {
		s.row[m.rows+i] = other.row[i].Clone()
	}
	return s
}
