package frame

import (
	"math/rand/v2"
	"testing"

	"ftqc/internal/circuit"
	"ftqc/internal/noise"
	"ftqc/internal/pauli"
	"ftqc/internal/tableau"
)

func noiseless() noise.Params { return noise.Params{} }

func TestPropagationIdentities(t *testing.T) {
	// X propagates forward through CNOT (control to target), §3.1.
	s := New(2, noiseless(), nil)
	s.InjectX(0)
	s.CNOT(0, 1)
	if !s.XError(0) || !s.XError(1) {
		t.Fatal("X did not propagate control→target")
	}
	// Z propagates backward (target to control).
	s = New(2, noiseless(), nil)
	s.InjectZ(1)
	s.CNOT(0, 1)
	if !s.ZError(0) || !s.ZError(1) {
		t.Fatal("Z did not propagate target→control")
	}
	// H exchanges X and Z (Fig. 5's basis-change identity).
	s = New(1, noiseless(), nil)
	s.InjectX(0)
	s.H(0)
	if s.XError(0) || !s.ZError(0) {
		t.Fatal("H did not turn X into Z")
	}
	// S turns X into Y.
	s = New(1, noiseless(), nil)
	s.InjectX(0)
	s.S(0)
	if !s.XError(0) || !s.ZError(0) {
		t.Fatal("S did not turn X into Y")
	}
}

func TestNoiselessCircuitNoFlips(t *testing.T) {
	c := circuit.New(4)
	for q := 0; q < 4; q++ {
		c.PrepZ(q)
	}
	c.H(0)
	c.CNOT(0, 1)
	c.CNOT(1, 2)
	c.CNOT(2, 3)
	for q := 0; q < 4; q++ {
		c.MeasZ(q)
	}
	s := New(4, noiseless(), nil)
	for _, f := range s.Run(c) {
		if f {
			t.Fatal("noiseless run produced a flip")
		}
	}
	if s.FaultCount != 0 {
		t.Fatal("noiseless run injected faults")
	}
}

// TestFrameMatchesTableauConjugation is the central correctness property:
// injecting a Pauli error E before a Clifford circuit C is equivalent to
// running C cleanly and applying the frame-propagated error afterwards.
func TestFrameMatchesTableauConjugation(t *testing.T) {
	rng := rand.New(rand.NewPCG(101, 102))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.IntN(5)
		// Random Clifford circuit without measurements.
		type gate struct{ kind, a, b int }
		var gates []gate
		for g := 0; g < 25; g++ {
			k := rng.IntN(4)
			a := rng.IntN(n)
			b := rng.IntN(n)
			if b == a {
				b = (b + 1) % n
			}
			gates = append(gates, gate{k, a, b})
		}
		apply := func(tb *tableau.Tableau) {
			for _, g := range gates {
				switch g.kind {
				case 0:
					tb.H(g.a)
				case 1:
					tb.S(g.a)
				case 2:
					tb.CNOT(g.a, g.b)
				case 3:
					tb.CZ(g.a, g.b)
				}
			}
		}
		// Random error.
		e := pauli.NewIdentity(n)
		for q := 0; q < n; q++ {
			e.SetAt(q, pauli.Single(rng.IntN(4)))
		}
		// Path 1: error then circuit, on a random stabilizer input state.
		prep := func() *tableau.Tableau {
			tb := tableau.New(n, rng)
			tb.H(0)
			for q := 1; q < n; q++ {
				tb.CNOT(0, q)
			}
			return tb
		}
		tb1 := prep()
		tb1.ApplyPauli(e)
		apply(tb1)
		// Path 2: circuit, then frame-propagated error.
		s := New(n, noiseless(), nil)
		for q := 0; q < n; q++ {
			if e.XBits.Get(q) {
				s.InjectX(q)
			}
			if e.ZBits.Get(q) {
				s.InjectZ(q)
			}
		}
		for _, g := range gates {
			switch g.kind {
			case 0:
				s.H(g.a)
			case 1:
				s.S(g.a)
			case 2:
				s.CNOT(g.a, g.b)
			case 3:
				s.CZ(g.a, g.b)
			}
		}
		prop := pauli.NewIdentity(n)
		for q := 0; q < n; q++ {
			prop.XBits.Set(q, s.XError(q))
			prop.ZBits.Set(q, s.ZError(q))
		}
		tb2 := prep()
		apply(tb2)
		tb2.ApplyPauli(prop)
		if !tableau.SameState(tb1, tb2) {
			t.Fatalf("trial %d: frame propagation disagrees with tableau for %v", trial, e)
		}
	}
}

func TestMeasurementReadsFrame(t *testing.T) {
	s := New(2, noiseless(), nil)
	s.InjectX(0)
	s.InjectZ(1)
	if !s.MeasZ(0) {
		t.Fatal("X error must flip a Z measurement")
	}
	if s.MeasZ(1) {
		t.Fatal("Z error must not flip a Z measurement")
	}
	s2 := New(1, noiseless(), nil)
	s2.InjectZ(0)
	if !s2.MeasX(0) {
		t.Fatal("Z error must flip an X measurement")
	}
}

func TestPrepClearsFrame(t *testing.T) {
	s := New(1, noiseless(), nil)
	s.InjectX(0)
	s.InjectZ(0)
	s.PrepZ(0)
	if s.XError(0) || s.ZError(0) {
		t.Fatal("PrepZ did not clear the frame")
	}
}

func TestNoiseRates(t *testing.T) {
	// With Gate1 = 0.3, roughly 30% of H gates must inject a fault.
	rng := rand.New(rand.NewPCG(111, 112))
	s := New(1, noise.Params{Gate1: 0.3}, rng)
	const n = 20000
	for i := 0; i < n; i++ {
		s.H(0)
	}
	rate := float64(s.FaultCount) / n
	if rate < 0.27 || rate > 0.33 {
		t.Fatalf("gate fault rate %.4f, want ≈0.30", rate)
	}
}

func TestTwoQubitNoiseHitsBothSides(t *testing.T) {
	// Count X-side marginal rate on the control: of the 15 two-qubit
	// Paulis, 8 have X or Y on the first qubit → marginal 8/15 per fault.
	rng := rand.New(rand.NewPCG(113, 114))
	const n = 30000
	hits := 0
	for i := 0; i < n; i++ {
		s := New(2, noise.Params{Gate2: 1}, rng)
		s.CNOT(0, 1)
		if s.XError(0) {
			hits++
		}
	}
	rate := float64(hits) / n
	if rate < 0.50 || rate > 0.57 {
		t.Fatalf("control X marginal %.4f, want ≈8/15=0.533", rate)
	}
}

func TestStorageNoiseOnlyWhenIdle(t *testing.T) {
	// Qubit 1 idles while qubit 0 works: with Storage=1 it must pick up
	// noise every idle moment; a qubit outside its live range must not.
	rng := rand.New(rand.NewPCG(115, 116))
	c := circuit.New(3)
	c.H(1)
	c.H(0)
	c.H(0)
	c.H(0)
	c.Barrier()
	c.H(1)
	s := New(3, noise.Params{Storage: 1}, rng)
	s.Run(c)
	if s.FaultCount == 0 {
		t.Fatal("idle qubit picked up no storage noise")
	}
	if s.XError(2) || s.ZError(2) {
		t.Fatal("unused qubit 2 got storage noise")
	}
}

func TestLeakageDetectAndReplace(t *testing.T) {
	rng := rand.New(rand.NewPCG(117, 118))
	s := New(1, noise.Params{Leak: 1}, rng)
	s.H(0)
	if !s.Leaked(0) {
		t.Fatal("qubit should have leaked")
	}
	s.ReplaceLeaked(0)
	if s.Leaked(0) {
		t.Fatal("replacement did not clear leakage")
	}
}

func TestClearRegion(t *testing.T) {
	s := New(3, noiseless(), nil)
	s.InjectX(0)
	s.InjectZ(2)
	s.ClearRegion([]int{0, 2})
	if s.XError(0) || s.ZError(2) {
		t.Fatal("ClearRegion left errors behind")
	}
}

func TestFrameOn(t *testing.T) {
	s := New(4, noiseless(), nil)
	s.InjectX(1)
	s.InjectZ(3)
	x, z := s.FrameOn([]int{1, 3})
	if !x.Get(0) || x.Get(1) || z.Get(0) || !z.Get(1) {
		t.Fatal("FrameOn extracted wrong bits")
	}
}
