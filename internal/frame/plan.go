package frame

import (
	"math"

	"ftqc/internal/bits"
	"ftqc/internal/noise"
)

// RoundPlan is a precompiled fault-location program for one syndrome-
// extraction round: the per-gate loop of the generic BatchSim API
// flattened into a handful of homogeneous op blocks (one storage pass,
// one prep pass per sector, one block per CNOT step, one measurement
// pass per sector). BatchSim.RunRound executes a plan with one
// aggregate-sampler geometric stream *per block* instead of one
// Bernoulli call per location, so a quiet block costs a single carry
// subtraction — and it is bit-identical to replaying the same locations
// through the generic gate calls (same sampler stream, same frames,
// same FaultCount/LocationCount). See the equivalence argument on
// RunRound.
//
// Plans are immutable after construction and safe to share across
// BatchSims (a per-lattice plan is built once and memoized by the
// extraction compiler).
type RoundPlan struct {
	ops  []planOp
	locs int
}

const (
	opStorage = iota
	opPrepZ
	opPrepX
	opCNOT
	opMeasZ
	opMeasX
)

// planOp is one homogeneous block of fault locations sharing a gate
// kind (and therefore a fault probability): location i of the block
// acts on qubit qa[i] (and qb[i] for CNOTs), measurement blocks write
// the flip plane of location i into meas[slot[i]].
type planOp struct {
	kind int
	qa   []int32
	qb   []int32 // CNOT targets (control is qa)
	slot []int32 // measurement output slots
}

// NewRoundPlan returns an empty plan; append blocks in execution order
// with the builder methods.
func NewRoundPlan() *RoundPlan { return &RoundPlan{} }

func (pl *RoundPlan) push(kind int, qa, qb, slot []int32) {
	pl.ops = append(pl.ops, planOp{kind: kind, qa: qa, qb: qb, slot: slot})
	pl.locs += len(qa)
}

func clone32(s []int32) []int32 { return append([]int32(nil), s...) }

// Storage appends an idle-storage block over the given qubits.
func (pl *RoundPlan) Storage(qs []int32) { pl.push(opStorage, clone32(qs), nil, nil) }

// PrepZ appends a |0⟩-preparation block over the given qubits.
func (pl *RoundPlan) PrepZ(qs []int32) { pl.push(opPrepZ, clone32(qs), nil, nil) }

// PrepX appends a |+⟩-preparation block over the given qubits.
func (pl *RoundPlan) PrepX(qs []int32) { pl.push(opPrepX, clone32(qs), nil, nil) }

// CNOTStep appends one parallel CNOT step: location i couples control
// ctl[i] to target tgt[i]. All 2·len qubits of a step must be distinct
// (the extraction schedules' step-major order guarantees it) — the
// executor propagates every pair before injecting any of the step's
// faults, which is only order-equivalent to the interleaved generic
// path when the pairs are disjoint.
func (pl *RoundPlan) CNOTStep(ctl, tgt []int32) {
	if len(ctl) != len(tgt) {
		panic("frame: CNOTStep length mismatch")
	}
	pl.push(opCNOT, clone32(ctl), clone32(tgt), nil)
}

// MeasZ appends a Z-basis measurement block: location i reads qubit
// qs[i] into meas[slots[i]].
func (pl *RoundPlan) MeasZ(qs, slots []int32) {
	if len(qs) != len(slots) {
		panic("frame: MeasZ length mismatch")
	}
	pl.push(opMeasZ, clone32(qs), nil, clone32(slots))
}

// MeasX appends an X-basis measurement block.
func (pl *RoundPlan) MeasX(qs, slots []int32) {
	if len(qs) != len(slots) {
		panic("frame: MeasX length mismatch")
	}
	pl.push(opMeasX, clone32(qs), nil, clone32(slots))
}

// Locations returns the number of fault locations the plan executes
// (the same count the generic gate calls would add to LocationCount).
func (pl *RoundPlan) Locations() int { return pl.locs }

// RunRound executes the plan across all lanes, writing measurement flip
// planes into meas (indexed by the plan's slots; each plane must be
// Lanes() bits wide). It returns false — having executed nothing — when
// the fused path cannot reproduce the generic one draw for draw: the
// sampler is not an AggregateSampler, leakage or biased noise is
// modeled, a trigger harness has been armed (scripted injection needs
// per-location callbacks), or the active mask is narrowed. Callers fall
// back to the generic gate loop in that case.
//
// Why the fused path is bit-identical to the generic loop on the same
// sampler state:
//
//   - The aggregate Bernoulli's geometric skip carries across words and
//     across consecutive same-p calls, so N back-to-back per-location
//     calls over a full active mask consume the stream exactly like one
//     walk over the concatenated N·W trial sequence (location-major,
//     lane-minor). Each landing redraws immediately, and the Pauli /
//     flip draws of a faulted location happen after that location's
//     landings and before the next location's — RunRound flushes fault
//     draws at location boundaries inside the walk to match.
//   - Probability edge cases match: p ≤ 0 skips the block without
//     touching the carry, p ≥ 1 faults every lane without touching the
//     carry, and an infinite skip (Float64 returning exactly 0) poisons
//     the carry the same way Bernoulli does.
//   - Propagating all CNOTs of a step before injecting the step's
//     faults is frame-equivalent to the interleaved generic order
//     because a step's pairs are qubit-disjoint.
//   - With Leak == 0 the leakage planes are identically zero (nothing
//     sets them), so the generic path's leak masks, leak coins and
//     measurement coin draws never fire.
func (b *BatchSim) RunRound(pl *RoundPlan, meas []bits.Vec) bool {
	s, ok := b.smp.(*AggregateSampler)
	if !ok || b.P.Leak > 0 || b.P.Bias > 0 || b.trigger != nil || b.active.Weight() != b.w {
		return false
	}
	for i := range pl.ops {
		op := &pl.ops[i]
		switch op.kind {
		case opStorage:
			b.runFaultOp(s, b.P.Storage, op, meas)
		case opPrepZ, opPrepX:
			for _, q := range op.qa {
				b.fx[q].Clear()
				b.fz[q].Clear()
			}
			b.runFaultOp(s, b.P.Prep, op, meas)
		case opCNOT:
			for j, a := range op.qa {
				c := op.qb[j]
				b.fx[c].Xor(b.fx[a])
				b.fz[a].Xor(b.fz[c])
			}
			b.runFaultOp(s, b.P.Gate2, op, meas)
		case opMeasZ:
			for j, q := range op.qa {
				meas[op.slot[j]].CopyFrom(b.fx[q])
			}
			b.runFaultOp(s, b.P.Meas, op, meas)
		case opMeasX:
			for j, q := range op.qa {
				meas[op.slot[j]].CopyFrom(b.fz[q])
			}
			b.runFaultOp(s, b.P.Meas, op, meas)
		}
	}
	b.LocationCount += pl.locs
	return true
}

// runFaultOp walks one geometric fault stream over the block's
// len(qa)·W trials (location-major, lane-minor — the concatenation of
// the per-location Bernoulli masks), collecting the faulted lanes of
// the current location and flushing their Pauli/flip draws whenever the
// walk crosses a location boundary. The flush-at-boundary discipline
// reproduces the generic interleaving of geometric and Pauli draws on
// the shared rng stream exactly.
func (b *BatchSim) runFaultOp(s *AggregateSampler, p float64, op *planOp, meas []bits.Vec) {
	n := len(op.qa) * b.w
	if p <= 0 || n == 0 {
		return
	}
	if p >= 1 {
		b.laneBuf = b.laneBuf[:0]
		for lane := 0; lane < b.w; lane++ {
			b.laneBuf = append(b.laneBuf, int32(lane))
		}
		for loc := range op.qa {
			b.flushFaults(s, op, loc, meas)
		}
		return
	}
	inv := s.invLog1p(p)
	if s.carryP != p {
		s.carry = math.Floor(math.Log(s.rng.Float64()) * inv)
		s.carryP = p
	}
	skip := s.carry
	cur := -1
	pos := 0
	for {
		if skip >= float64(n-pos) {
			skip -= float64(n - pos)
			break
		}
		pos += int(skip)
		loc := pos / b.w
		if loc != cur {
			if cur >= 0 {
				b.flushFaults(s, op, cur, meas)
			}
			cur = loc
			b.laneBuf = b.laneBuf[:0]
		}
		b.laneBuf = append(b.laneBuf, int32(pos-loc*b.w))
		pos++
		skip = math.Floor(math.Log(s.rng.Float64()) * inv)
	}
	s.carry = skip
	if math.IsInf(skip, 1) {
		s.carryP = -1
	}
	if cur >= 0 {
		b.flushFaults(s, op, cur, meas)
	}
}

// flushFaults draws and applies the fault content of one faulted
// location (the lanes in laneBuf, ascending): uniform Paulis for
// storage and CNOT locations, deterministic flips for prep and
// measurement, with the generic path's FaultCount accounting.
func (b *BatchSim) flushFaults(s *AggregateSampler, op *planOp, loc int, meas []bits.Vec) {
	switch op.kind {
	case opStorage:
		q := op.qa[loc]
		for _, lane := range b.laneBuf {
			e := noise.Random1(s.rng)
			w, bit := int(lane)>>6, uint64(1)<<(uint(lane)&63)
			if e&noise.ErrX != 0 {
				b.fx[q].XorWord(w, bit)
			}
			if e&noise.ErrZ != 0 {
				b.fz[q].XorWord(w, bit)
			}
		}
		b.FaultCount += len(b.laneBuf)
	case opPrepZ:
		q := op.qa[loc]
		for _, lane := range b.laneBuf {
			b.fx[q].XorWord(int(lane)>>6, uint64(1)<<(uint(lane)&63))
		}
		b.FaultCount += len(b.laneBuf)
	case opPrepX:
		q := op.qa[loc]
		for _, lane := range b.laneBuf {
			b.fz[q].XorWord(int(lane)>>6, uint64(1)<<(uint(lane)&63))
		}
		b.FaultCount += len(b.laneBuf)
	case opCNOT:
		a, c := op.qa[loc], op.qb[loc]
		for _, lane := range b.laneBuf {
			ea, eb := noise.Random2(s.rng)
			w, bit := int(lane)>>6, uint64(1)<<(uint(lane)&63)
			if ea&noise.ErrX != 0 {
				b.fx[a].XorWord(w, bit)
			}
			if ea&noise.ErrZ != 0 {
				b.fz[a].XorWord(w, bit)
			}
			if eb&noise.ErrX != 0 {
				b.fx[c].XorWord(w, bit)
			}
			if eb&noise.ErrZ != 0 {
				b.fz[c].XorWord(w, bit)
			}
			if ea != 0 {
				b.FaultCount++
			}
			if eb != 0 {
				b.FaultCount++
			}
		}
	case opMeasZ, opMeasX:
		v := meas[op.slot[loc]]
		for _, lane := range b.laneBuf {
			v.XorWord(int(lane)>>6, uint64(1)<<(uint(lane)&63))
		}
		b.FaultCount += len(b.laneBuf)
	}
}
