package frame

// Scalar-vs-batch equivalence at the engine level: a BatchSim over a
// LockstepSampler must be bit-identical, lane by lane, to W scalar Sims
// run from the paired PCG streams — same measurement flips, same final
// frames, same leakage flags — on randomized Clifford circuits under
// randomized noise settings.

import (
	"math/rand/v2"
	"testing"

	"ftqc/internal/bits"
	"ftqc/internal/circuit"
	"ftqc/internal/noise"
)

// randomCircuit generates a random Clifford circuit with preparations and
// measurements sprinkled in.
func randomCircuit(rng *rand.Rand, n, ops int) *circuit.Circuit {
	c := circuit.New(n)
	for i := 0; i < ops; i++ {
		q := rng.IntN(n)
		switch rng.IntN(10) {
		case 0:
			c.H(q)
		case 1:
			c.S(q)
		case 2:
			c.X(q)
		case 3:
			c.Z(q)
		case 4, 5:
			r := rng.IntN(n)
			if r == q {
				r = (q + 1) % n
			}
			c.CNOT(q, r)
		case 6:
			r := rng.IntN(n)
			if r == q {
				r = (q + 1) % n
			}
			c.CZ(q, r)
		case 7:
			c.PrepZ(q)
		case 8:
			c.MeasZ(q)
		case 9:
			c.MeasX(q)
		}
	}
	// Always end with a full readout so every run has measurements.
	for q := 0; q < n; q++ {
		c.MeasZ(q)
	}
	return c
}

// noiseSettings is the grid of error models the equivalence suite sweeps:
// quiet, loud, storage-only, measurement-heavy, and leaky.
func noiseSettings() []noise.Params {
	leaky := noise.Uniform(2e-2)
	leaky.Leak = 3e-2
	return []noise.Params{
		noise.Uniform(0),
		noise.Uniform(1e-3),
		noise.Uniform(5e-2),
		noise.StorageOnly(3e-2),
		{Meas: 0.1, Prep: 0.05},
		leaky,
	}
}

func TestBatchMatchesScalarOnRandomCircuits(t *testing.T) {
	const lanes = 67 // deliberately not a multiple of 64: exercises the tail word
	gen := rand.New(rand.NewPCG(42, 1))
	for trial := 0; trial < 30; trial++ {
		n := 2 + gen.IntN(7)
		c := randomCircuit(gen, n, 20+gen.IntN(60))
		p := noiseSettings()[trial%len(noiseSettings())]
		seed := uint64(1000 + trial)

		b := NewBatch(n, lanes, p, NewLockstepSampler(seed, lanes))
		planes := b.Run(c)

		for lane := 0; lane < lanes; lane++ {
			s := New(n, p, rand.New(rand.NewPCG(seed, uint64(lane))))
			out := s.Run(c)
			for m, bit := range out {
				if planes[m].Get(lane) != bit {
					t.Fatalf("trial %d lane %d: measurement %d batch=%v scalar=%v",
						trial, lane, m, planes[m].Get(lane), bit)
				}
			}
			for q := 0; q < n; q++ {
				if b.XError(q, lane) != s.XError(q) || b.ZError(q, lane) != s.ZError(q) {
					t.Fatalf("trial %d lane %d qubit %d: frame mismatch", trial, lane, q)
				}
				if b.Leaked(q, lane) != s.Leaked(q) {
					t.Fatalf("trial %d lane %d qubit %d: leak mismatch", trial, lane, q)
				}
			}
		}
	}
}

// TestBatchMatchesScalarGateByGate drives the two engines through the
// same hand-written op sequence (including ops Run never emits, like
// ReplaceLeaked and frame corrections) and compares state after every op.
func TestBatchMatchesScalarGateByGate(t *testing.T) {
	const lanes = 130
	p := noise.Uniform(0.05)
	p.Leak = 0.05
	p.Storage = 0.04
	const seed = 77
	const n = 4

	b := NewBatch(n, lanes, p, NewLockstepSampler(seed, lanes))
	sims := make([]*Sim, lanes)
	for i := range sims {
		sims[i] = New(n, p, rand.New(rand.NewPCG(seed, uint64(i))))
	}
	check := func(step string) {
		t.Helper()
		for lane, s := range sims {
			for q := 0; q < n; q++ {
				if b.XError(q, lane) != s.XError(q) || b.ZError(q, lane) != s.ZError(q) ||
					b.Leaked(q, lane) != s.Leaked(q) {
					t.Fatalf("%s: lane %d qubit %d diverged", step, lane, q)
				}
			}
		}
	}

	b.PrepZ(0)
	for _, s := range sims {
		s.PrepZ(0)
	}
	check("PrepZ")
	b.PrepX(3)
	for _, s := range sims {
		s.PrepX(3)
	}
	check("PrepX")
	b.H(0)
	for _, s := range sims {
		s.H(0)
	}
	check("H")
	b.S(1)
	for _, s := range sims {
		s.S(1)
	}
	check("S")
	b.CNOT(0, 1)
	for _, s := range sims {
		s.CNOT(0, 1)
	}
	check("CNOT")
	b.CZ(1, 2)
	for _, s := range sims {
		s.CZ(1, 2)
	}
	check("CZ")
	b.PauliGate(3)
	for _, s := range sims {
		s.PauliGate(3)
	}
	check("PauliGate")
	b.Storage(2)
	for _, s := range sims {
		s.Storage(2)
	}
	check("Storage")
	b.FrameX(0)
	b.FrameZ(2)
	for _, s := range sims {
		s.FrameX(0)
		s.FrameZ(2)
	}
	check("Frame corrections")

	mz := b.MeasZ(1)
	for lane, s := range sims {
		if got := s.MeasZ(1); got != mz.Get(lane) {
			t.Fatalf("MeasZ: lane %d batch=%v scalar=%v", lane, mz.Get(lane), got)
		}
	}
	check("MeasZ")
	mx := bits.NewVec(lanes)
	b.MeasXInto(2, mx)
	for lane, s := range sims {
		if got := s.MeasX(2); got != mx.Get(lane) {
			t.Fatalf("MeasXInto: lane %d batch=%v scalar=%v", lane, mx.Get(lane), got)
		}
	}
	check("MeasXInto")
	mx0 := b.MeasX(0)
	for lane, s := range sims {
		if got := s.MeasX(0); got != mx0.Get(lane) {
			t.Fatalf("MeasX: lane %d batch=%v scalar=%v", lane, mx0.Get(lane), got)
		}
	}
	check("MeasX")

	// ReplaceLeaked on the lanes where qubit 3 leaked.
	leakedLanes := b.Active()
	for lane := range sims {
		leakedLanes.Set(lane, b.Leaked(3, lane))
	}
	b.ReplaceLeaked(3, leakedLanes)
	for lane, s := range sims {
		if leakedLanes.Get(lane) {
			s.ReplaceLeaked(3)
		}
	}
	check("ReplaceLeaked")
}

// TestBatchTriggerMatchesScalar checks the scripted single-fault port:
// arming lane L at location L must reproduce the scalar Trigger run shot
// for shot in a noiseless circuit.
func TestBatchTriggerMatchesScalar(t *testing.T) {
	const n = 3
	p := noise.Uniform(0)
	build := func(s *Sim) {
		s.PrepZ(0)
		s.PrepZ(1)
		s.PrepZ(2)
		s.H(0)
		s.CNOT(0, 1)
		s.CNOT(1, 2)
		s.MeasZ(2)
	}
	// Scalar reference: one run per trigger location.
	const locations = 7
	type state struct{ fx, fz [n]bool }
	want := make([]state, locations)
	for loc := 0; loc < locations; loc++ {
		s := New(n, p, rand.New(rand.NewPCG(9, 9)))
		s.Trigger = loc
		s.TriggerFault = func(s *Sim, qubits []int) { s.InjectX(qubits[0]) }
		build(s)
		for q := 0; q < n; q++ {
			want[loc].fx[q] = s.XError(q)
			want[loc].fz[q] = s.ZError(q)
		}
	}
	// Batch: lane L triggers at location L.
	b := NewBatch(n, locations, p, NewLockstepSampler(9, locations))
	for lane := 0; lane < locations; lane++ {
		b.ArmTrigger(lane, lane)
	}
	b.TriggerFault = func(b *BatchSim, lane int, qubits []int) { b.InjectX(qubits[0], lane) }
	bs := &batchDriver{b}
	bs.build()
	for loc := 0; loc < locations; loc++ {
		for q := 0; q < n; q++ {
			if b.XError(q, loc) != want[loc].fx[q] || b.ZError(q, loc) != want[loc].fz[q] {
				t.Fatalf("trigger at location %d: qubit %d mismatch", loc, q)
			}
		}
	}
}

type batchDriver struct{ b *BatchSim }

func (d *batchDriver) build() {
	d.b.PrepZ(0)
	d.b.PrepZ(1)
	d.b.PrepZ(2)
	d.b.H(0)
	d.b.CNOT(0, 1)
	d.b.CNOT(1, 2)
	d.b.MeasZ(2)
}

// TestAggregateSamplerRates is a statistical check that the fast sampler
// hits its Bernoulli rates (the lockstep tests prove distributional
// correctness only for the lockstep implementation).
func TestAggregateSamplerRates(t *testing.T) {
	for _, p := range []float64{1e-3, 0.03, 0.3, 0.9} {
		smp := NewAggregateSampler(5, uint64(p*1e4))
		b := NewBatch(1, 512, noise.Params{}, smp)
		act := b.Active()
		out := b.Active()
		hits, total := 0, 0
		for round := 0; round < 400; round++ {
			smp.Bernoulli(p, act, out)
			hits += out.Weight()
			total += 512
		}
		got := float64(hits) / float64(total)
		if got < p*0.85-1e-3 || got > p*1.15+1e-3 {
			t.Fatalf("p=%v: aggregate rate %v", p, got)
		}
	}
}

// TestAggregateCoinIsFair spot-checks the masked coin.
func TestAggregateCoinIsFair(t *testing.T) {
	smp := NewAggregateSampler(6, 6)
	b := NewBatch(1, 256, noise.Params{}, smp)
	act := b.Active()
	out := b.Active()
	hits, total := 0, 0
	for round := 0; round < 200; round++ {
		smp.Coin(act, out)
		hits += out.Weight()
		total += 256
	}
	got := float64(hits) / float64(total)
	if got < 0.47 || got > 0.53 {
		t.Fatalf("coin rate %v", got)
	}
}
