package frame

import (
	"ftqc/internal/bits"
	"ftqc/internal/circuit"
	"ftqc/internal/noise"
)

// BatchSim is the bit-parallel Pauli-frame simulator: it advances W
// independent Monte Carlo shots ("lanes") at once. Each wire owns three
// bit-planes of length W — the X frame, the Z frame and the leakage flags
// — so Clifford frame propagation is word-wide XOR/AND over lanes and
// stochastic fault injection is the sampling of random lane masks.
//
// Data-dependent gadget control flow (syndrome repetition, ancilla
// verification retries) is expressed through the active-lane mask: a
// gadget pushes the mask of lanes that take a branch, replays the branch's
// ops (which then only touch — and only draw randomness for — those
// lanes), and pops. Under a LockstepSampler this makes every lane
// bit-identical to a scalar Sim run from the paired stream; under an
// AggregateSampler it is the fast production configuration.
type BatchSim struct {
	n, w int
	fx   []bits.Vec // per wire: X-frame plane over lanes
	fz   []bits.Vec // per wire: Z-frame plane
	lk   []bits.Vec // per wire: leakage plane
	P    noise.Params
	smp  Sampler

	active bits.Vec   // lanes currently executing
	stack  []bits.Vec // pushed active masks

	// FaultCount totals injected faults across all lanes (diagnostics).
	FaultCount int
	// LocationCount counts fault locations executed (lockstep count: a
	// location masked to a subset of lanes still counts once).
	LocationCount int

	// Scripted single-fault injection, the batch port of Sim.Trigger:
	// when lane L's per-lane location counter reaches trigger[L],
	// TriggerFault runs for that lane with the location's qubits.
	// Per-lane counters advance only while the lane is active, exactly
	// like the scalar LocationCount advances only on locations the shot
	// executes.
	trigger      []int
	locCount     []int
	TriggerFault func(b *BatchSim, lane int, qubits []int)

	t0, t1, t2, t3 bits.Vec // scratch planes
	pointBuf       [2]int
	laneBuf        []int32 // RunRound: faulted lanes of the location in flight
}

// NewBatch returns a clean batch simulator of n qubits by w lanes drawing
// from smp. A nil sampler defaults to an AggregateSampler seeded like the
// scalar New(nil) fallback.
func NewBatch(n, w int, p noise.Params, smp Sampler) *BatchSim {
	if w <= 0 {
		panic("frame: batch needs at least one lane")
	}
	if smp == nil {
		smp = NewAggregateSampler(2, 3)
	}
	b := &BatchSim{n: n, w: w, P: p, smp: smp,
		fx: bits.NewVecs(n, w), fz: bits.NewVecs(n, w), lk: bits.NewVecs(n, w),
		active: bits.NewVec(w),
		t0:     bits.NewVec(w), t1: bits.NewVec(w), t2: bits.NewVec(w), t3: bits.NewVec(w),
	}
	b.active.SetAll()
	return b
}

// N returns the number of qubits.
func (b *BatchSim) N() int { return b.n }

// Lanes returns the batch width W.
func (b *BatchSim) Lanes() int { return b.w }

// Active returns a copy of the current active-lane mask.
func (b *BatchSim) Active() bits.Vec { return b.active.Clone() }

// PushActive narrows execution to the given lanes until PopActive. The
// mask should be a subset of the current active mask (gadget branches
// always are).
func (b *BatchSim) PushActive(mask bits.Vec) {
	b.stack = append(b.stack, b.active)
	b.active = mask.Clone()
}

// PopActive restores the mask saved by the matching PushActive.
func (b *BatchSim) PopActive() {
	if len(b.stack) == 0 {
		panic("frame: PopActive without PushActive")
	}
	b.active = b.stack[len(b.stack)-1]
	b.stack = b.stack[:len(b.stack)-1]
}

// XError reports whether lane carries an X (or Y) error on qubit q.
func (b *BatchSim) XError(q, lane int) bool { return b.fx[q].Get(lane) }

// ZError reports whether lane carries a Z (or Y) error on qubit q.
func (b *BatchSim) ZError(q, lane int) bool { return b.fz[q].Get(lane) }

// Leaked reports whether qubit q has leaked on the given lane.
func (b *BatchSim) Leaked(q, lane int) bool { return b.lk[q].Get(lane) }

// PlaneX returns a copy of qubit q's X-frame plane.
func (b *BatchSim) PlaneX(q int) bits.Vec { return b.fx[q].Clone() }

// PlaneZ returns a copy of qubit q's Z-frame plane.
func (b *BatchSim) PlaneZ(q int) bits.Vec { return b.fz[q].Clone() }

// PlanesX returns the live X-frame planes of qubits [0, n) — read-only
// views for syndrome computation and validation harnesses; callers must
// not modify them.
func (b *BatchSim) PlanesX(n int) []bits.Vec { return b.fx[:n] }

// PlanesZ returns the live Z-frame planes of qubits [0, n) (read-only).
func (b *BatchSim) PlanesZ(n int) []bits.Vec { return b.fz[:n] }

// PlanesLeak returns the live leakage planes of qubits [0, n) — the
// read-only view an erasure-harvesting extraction source uses to turn
// leaked qubits into located faults.
func (b *BatchSim) PlanesLeak(n int) []bits.Vec { return b.lk[:n] }

// InjectX deterministically toggles an X error on one lane.
func (b *BatchSim) InjectX(q, lane int) { b.fx[q].Flip(lane) }

// InjectZ deterministically toggles a Z error on one lane.
func (b *BatchSim) InjectZ(q, lane int) { b.fz[q].Flip(lane) }

// ArmTrigger schedules TriggerFault on the given lane when that lane's
// location counter reaches loc (the batch port of Sim.Trigger; different
// lanes may trigger at different locations, so one batch run covers many
// fault locations of an exhaustive scan).
func (b *BatchSim) ArmTrigger(lane, loc int) {
	if b.trigger == nil {
		b.trigger = make([]int, b.w)
		for i := range b.trigger {
			b.trigger[i] = -1
		}
		b.locCount = make([]int, b.w)
	}
	b.trigger[lane] = loc
}

// DisarmTriggers stops scripted fault injection on every lane (the
// per-lane location counters keep advancing).
func (b *BatchSim) DisarmTriggers() { b.TriggerFault = nil }

// LaneLocationCount returns lane's per-lane location counter (valid once
// a trigger has been armed).
func (b *BatchSim) LaneLocationCount(lane int) int {
	if b.locCount == nil {
		return 0
	}
	return b.locCount[lane]
}

// pointAt marks a fault location on the given qubits.
func (b *BatchSim) pointAt(qubits []int) {
	b.LocationCount++
	if b.trigger == nil {
		return
	}
	for i := 0; i < b.active.Words(); i++ {
		for w := b.active.Word(i); w != 0; w &= w - 1 {
			lane := i*64 + trailingZeros(w)
			if b.locCount[lane] == b.trigger[lane] && b.TriggerFault != nil {
				b.TriggerFault(b, lane, qubits)
			}
			b.locCount[lane]++
		}
	}
}

func (b *BatchSim) point1(q int) {
	b.pointBuf[0] = q
	b.pointAt(b.pointBuf[:1])
}

func (b *BatchSim) point2(x, y int) {
	b.pointBuf[0], b.pointBuf[1] = x, y
	b.pointAt(b.pointBuf[:2])
}

// noise1 injects one-qubit gate noise (and leakage) on q, mirroring the
// scalar gate tail: gate-noise draw, Pauli draw on fault, leak draw.
func (b *BatchSim) noise1(q int, p float64) {
	b.smp.Bernoulli(p, b.active, b.t2)
	if b.t2.Any() {
		if b.P.Bias > 0 {
			b.smp.Pauli1Biased(b.P.Bias, b.t2, b.t0, b.t1)
		} else {
			b.smp.Pauli1(b.t2, b.t0, b.t1)
		}
		b.fx[q].Xor(b.t0)
		b.fz[q].Xor(b.t1)
		b.FaultCount += b.t2.Weight()
	}
	b.maybeLeak(q)
}

func (b *BatchSim) maybeLeak(q int) {
	if b.P.Leak > 0 {
		b.smp.Bernoulli(b.P.Leak, b.active, b.t2)
		b.lk[q].Or(b.t2)
	}
}

// notLeaked1 computes active &^ leaked[q] into t3 and returns it.
func (b *BatchSim) notLeaked1(q int) bits.Vec {
	b.t3.CopyFrom(b.active)
	b.t3.AndNot(b.lk[q])
	return b.t3
}

// --- gates (frame conjugation + noise), one plane op per 64 lanes ---

// H applies a Hadamard: X ↔ Z in the frame of every active, unleaked lane.
func (b *BatchSim) H(q int) {
	b.point1(q)
	m := b.notLeaked1(q)
	b.t0.CopyFrom(b.fx[q])
	b.t0.Xor(b.fz[q])
	b.t0.And(m)
	b.fx[q].Xor(b.t0)
	b.fz[q].Xor(b.t0)
	b.noise1(q, b.P.Gate1)
}

// S applies the phase gate: X → Y (X errors gain a Z component).
func (b *BatchSim) S(q int) {
	b.point1(q)
	m := b.notLeaked1(q)
	b.t0.CopyFrom(b.fx[q])
	b.t0.And(m)
	b.fz[q].Xor(b.t0)
	b.noise1(q, b.P.Gate1)
}

// Sdg applies the inverse phase gate (same frame action as S).
func (b *BatchSim) Sdg(q int) { b.S(q) }

// PauliGate applies a deliberate X/Y/Z gate: only its noise matters.
func (b *BatchSim) PauliGate(q int) {
	b.point1(q)
	b.noise1(q, b.P.Gate1)
}

// CNOT propagates X errors control→target and Z errors target→control.
func (b *BatchSim) CNOT(a, c int) {
	b.point2(a, c)
	m := b.t3
	m.CopyFrom(b.active)
	m.AndNot(b.lk[a])
	m.AndNot(b.lk[c])
	b.t0.CopyFrom(b.fx[a])
	b.t0.And(m)
	b.fx[c].Xor(b.t0)
	b.t0.CopyFrom(b.fz[c])
	b.t0.And(m)
	b.fz[a].Xor(b.t0)
	b.noise2(a, c)
}

// CZ deposits Z on the partner of any X error.
func (b *BatchSim) CZ(a, c int) {
	b.point2(a, c)
	m := b.t3
	m.CopyFrom(b.active)
	m.AndNot(b.lk[a])
	m.AndNot(b.lk[c])
	b.t0.CopyFrom(b.fx[a])
	b.t0.And(m)
	b.fz[c].Xor(b.t0)
	b.t0.CopyFrom(b.fx[c])
	b.t0.And(m)
	b.fz[a].Xor(b.t0)
	b.noise2(a, c)
}

// noise2 injects two-qubit gate noise on (a, c) then the two leak draws,
// in the scalar order.
func (b *BatchSim) noise2(a, c int) {
	b.smp.Bernoulli(b.P.Gate2, b.active, b.t2)
	if b.t2.Any() {
		xa, za := b.t0, b.t1
		xb := bits.NewVec(b.w) // rare path; two extra planes are fine
		zb := bits.NewVec(b.w)
		if b.P.Bias > 0 {
			b.smp.Pauli2Biased(b.P.Bias, b.t2, xa, za, xb, zb)
		} else {
			b.smp.Pauli2(b.t2, xa, za, xb, zb)
		}
		b.fx[a].Xor(xa)
		b.fz[a].Xor(za)
		b.fx[c].Xor(xb)
		b.fz[c].Xor(zb)
		// Count like the scalar inject: one per damaged qubit.
		xa.Or(za)
		xb.Or(zb)
		b.FaultCount += xa.Weight() + xb.Weight()
	}
	b.maybeLeak(a)
	b.maybeLeak(c)
}

// PrepZ resets active lanes of q to |0⟩; a faulty preparation leaves |1⟩.
func (b *BatchSim) PrepZ(q int) {
	b.fx[q].AndNot(b.active)
	b.fz[q].AndNot(b.active)
	b.lk[q].AndNot(b.active)
	b.point1(q)
	b.smp.Bernoulli(b.P.Prep, b.active, b.t2)
	b.fx[q].Or(b.t2)
	b.FaultCount += b.t2.Weight()
}

// PrepX resets active lanes of q to |+⟩; a faulty preparation leaves |−⟩
// (a Z error).
func (b *BatchSim) PrepX(q int) {
	b.fx[q].AndNot(b.active)
	b.fz[q].AndNot(b.active)
	b.lk[q].AndNot(b.active)
	b.point1(q)
	b.smp.Bernoulli(b.P.Prep, b.active, b.t2)
	b.fz[q].Or(b.t2)
	b.FaultCount += b.t2.Weight()
}

// MeasZ measures q on every active lane and returns the plane of flip
// bits relative to the noiseless reference (bits outside the active mask
// are 0). Leaked lanes read a coin flip.
func (b *BatchSim) MeasZ(q int) bits.Vec {
	out := bits.NewVec(b.w)
	b.measure(q, b.fx[q], out)
	return out
}

// MeasX measures in the Hadamard basis: the flip bit reads the Z frame.
func (b *BatchSim) MeasX(q int) bits.Vec {
	out := bits.NewVec(b.w)
	b.measure(q, b.fz[q], out)
	return out
}

// MeasZInto is MeasZ writing the flip plane into out (len = Lanes) — the
// allocation-free form the syndrome-extraction hot loop uses.
func (b *BatchSim) MeasZInto(q int, out bits.Vec) { b.measure(q, b.fx[q], out) }

// MeasXInto is MeasX writing the flip plane into out.
func (b *BatchSim) MeasXInto(q int, out bits.Vec) { b.measure(q, b.fz[q], out) }

func (b *BatchSim) measure(q int, plane, out bits.Vec) {
	b.point1(q)
	out.CopyFrom(plane)
	out.And(b.active)
	lm := b.t3
	lm.CopyFrom(b.lk[q])
	lm.And(b.active)
	if lm.Any() {
		b.smp.Coin(lm, b.t1)
		out.AndNot(lm)
		out.Or(b.t1)
	}
	b.smp.Bernoulli(b.P.Meas, b.active, b.t2)
	out.Xor(b.t2)
	b.FaultCount += b.t2.Weight()
}

// Storage applies one idle step of storage noise to q.
func (b *BatchSim) Storage(q int) {
	b.point1(q)
	b.smp.Bernoulli(b.P.Storage, b.active, b.t2)
	if b.t2.Any() {
		if b.P.Bias > 0 {
			b.smp.Pauli1Biased(b.P.Bias, b.t2, b.t0, b.t1)
		} else {
			b.smp.Pauli1(b.t2, b.t0, b.t1)
		}
		b.fx[q].Xor(b.t0)
		b.fz[q].Xor(b.t1)
		b.FaultCount += b.t2.Weight()
	}
}

// FrameX toggles a noiseless X correction on every active lane of q.
func (b *BatchSim) FrameX(q int) { b.fx[q].Xor(b.active) }

// FrameZ toggles a noiseless Z correction on every active lane of q.
func (b *BatchSim) FrameZ(q int) { b.fz[q].Xor(b.active) }

// XorFrameX toggles an X correction on exactly the lanes of mask (the
// per-lane form the batched decoders use).
func (b *BatchSim) XorFrameX(q int, mask bits.Vec) { b.fx[q].Xor(mask) }

// XorFrameZ toggles a Z correction on exactly the lanes of mask.
func (b *BatchSim) XorFrameZ(q int, mask bits.Vec) { b.fz[q].Xor(mask) }

// ReplaceLeaked swaps q for a fresh |0⟩ on the lanes of mask: leakage is
// cleared and the frame randomized (an erasure for the next recovery).
func (b *BatchSim) ReplaceLeaked(q int, mask bits.Vec) {
	b.lk[q].AndNot(mask)
	b.smp.Coin(mask, b.t0)
	b.fx[q].AndNot(mask)
	b.fx[q].Or(b.t0)
	b.smp.Coin(mask, b.t0)
	b.fz[q].AndNot(mask)
	b.fz[q].Or(b.t0)
}

// ClearRegion resets frame and leakage on the given qubits for every
// active lane.
func (b *BatchSim) ClearRegion(qubits []int) {
	for _, q := range qubits {
		b.fx[q].AndNot(b.active)
		b.fz[q].AndNot(b.active)
		b.lk[q].AndNot(b.active)
	}
}

// Run executes a compiled circuit across all lanes: gates with their
// noise, storage noise on every qubit idle in a moment, measurement
// planes indexed by result slot. It is the batched analogue of Sim.Run.
func (b *BatchSim) Run(c *circuit.Circuit) []bits.Vec {
	if c.N != b.n {
		panic("frame: circuit size mismatch")
	}
	out := make([]bits.Vec, c.NumMeas)
	first := make([]int, c.N)
	last := make([]int, c.N)
	for q := range first {
		first[q] = -1
	}
	for mi, m := range c.Moments {
		for _, op := range m.Ops {
			if first[op.A] < 0 {
				first[op.A] = mi
			}
			last[op.A] = mi
			if op.B >= 0 {
				if first[op.B] < 0 {
					first[op.B] = mi
				}
				last[op.B] = mi
			}
		}
	}
	for mi, m := range c.Moments {
		busy := make([]bool, c.N)
		for _, op := range m.Ops {
			busy[op.A] = true
			if op.B >= 0 {
				busy[op.B] = true
			}
			switch op.Kind {
			case circuit.KindH:
				b.H(op.A)
			case circuit.KindS, circuit.KindSdg:
				b.S(op.A)
			case circuit.KindX, circuit.KindY, circuit.KindZ:
				b.PauliGate(op.A)
			case circuit.KindCNOT:
				b.CNOT(op.A, op.B)
			case circuit.KindCZ:
				b.CZ(op.A, op.B)
			case circuit.KindPrepZ:
				b.PrepZ(op.A)
			case circuit.KindMeasZ:
				out[op.M] = b.MeasZ(op.A)
			case circuit.KindMeasX:
				out[op.M] = b.MeasX(op.A)
			}
		}
		if b.P.Storage > 0 {
			for q := 0; q < c.N; q++ {
				if !busy[q] && first[q] >= 0 && mi > first[q] && mi < last[q] {
					b.Storage(q)
				}
			}
		}
	}
	return out
}
