package frame

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// chunkLanes is the fixed lane count per Monte Carlo batch chunk. It is a
// constant — never derived from GOMAXPROCS — because the chunk index keys
// each chunk's RNG stream: a machine-dependent width would change the
// chunking and silently change the sampled results. 128 lanes amortize
// word-level sampling while leaving samples/128 chunks to spread over the
// CPUs.
const chunkLanes = 128

// ForEachChunk partitions samples into fixed-width lane chunks and runs
// fn once per chunk, fanned out over the available CPUs. Each invocation
// receives its lane count and a fresh AggregateSampler on the stream
// (seed, chunk index), making any experiment built on it a pure function
// of (samples, seed) — independent of GOMAXPROCS and scheduling. fn runs
// concurrently and must synchronize its own accumulation; ForEachChunk
// returns when every chunk has finished.
func ForEachChunk(samples int, seed uint64, fn func(lanes int, smp Sampler)) {
	chunks := (samples + chunkLanes - 1) / chunkLanes
	workers := runtime.GOMAXPROCS(0)
	if workers > chunks {
		workers = chunks
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= chunks {
					return
				}
				lanes := chunkLanes
				if rem := samples - i*chunkLanes; rem < lanes {
					lanes = rem
				}
				fn(lanes, NewAggregateSampler(seed, uint64(i)^0x9e3779b97f4a7c15))
			}
		}()
	}
	wg.Wait()
}
