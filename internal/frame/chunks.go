package frame

import (
	"runtime"
	"sync"
	"sync/atomic"

	"ftqc/internal/bits"
)

// chunkLanes is the fixed lane count per Monte Carlo batch chunk. It is a
// constant — never derived from GOMAXPROCS — because the chunk index keys
// each chunk's RNG stream: a machine-dependent width would change the
// chunking and silently change the sampled results. 128 lanes amortize
// word-level sampling while leaving samples/128 chunks to spread over the
// CPUs.
const chunkLanes = 128

// ForEachLaneSpan partitions `lanes` bit-plane lanes into 64-lane
// word-aligned spans and runs fn once per span, fanned out over the
// CPUs. No two spans share a machine word, so per-lane writers into
// word-addressed bit vectors own their output words outright and the
// result is bit-identical for any worker count or scheduling order —
// the discipline every batch decode stage relies on. Small batches
// (under 4 words, e.g. the fixed-width ForEachChunk chunks) run
// serially: the chunk loop above already saturates the CPUs, so an
// inner pool would only add spawn overhead.
func ForEachLaneSpan(lanes int, fn func(lo, hi int)) {
	words := (lanes + 63) / 64
	workers := runtime.GOMAXPROCS(0)
	if workers > words {
		workers = words
	}
	if workers <= 1 || words < 4 {
		fn(0, lanes)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				wi := int(next.Add(1)) - 1
				if wi >= words {
					return
				}
				lo := wi * 64
				hi := lo + 64
				if hi > lanes {
					hi = lanes
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// CountSectorFailures runs a two-sector chunked experiment and tallies
// the per-sector failure counts plus the either-sector union — the
// shared accounting of every dual-sector (bit-flip/phase-flip) memory
// experiment. run must return the two per-lane failure masks for its
// chunk; the masks are consumed (the first is overwritten with the
// union).
func CountSectorFailures(samples int, seed uint64, run func(lanes int, smp Sampler) (failA, failB bits.Vec)) (a, b, either int) {
	var ca, cb, ce atomic.Int64
	ForEachChunk(samples, seed, func(lanes int, smp Sampler) {
		failA, failB := run(lanes, smp)
		ca.Add(int64(failA.Weight()))
		cb.Add(int64(failB.Weight()))
		failA.Or(failB)
		ce.Add(int64(failA.Weight()))
	})
	return int(ca.Load()), int(cb.Load()), int(ce.Load())
}

// ForEachChunk partitions samples into fixed-width lane chunks and runs
// fn once per chunk, fanned out over the available CPUs. Each invocation
// receives its lane count and a fresh AggregateSampler on the stream
// (seed, chunk index), making any experiment built on it a pure function
// of (samples, seed) — independent of GOMAXPROCS and scheduling. fn runs
// concurrently and must synchronize its own accumulation; ForEachChunk
// returns when every chunk has finished.
func ForEachChunk(samples int, seed uint64, fn func(lanes int, smp Sampler)) {
	chunks := (samples + chunkLanes - 1) / chunkLanes
	workers := runtime.GOMAXPROCS(0)
	if workers > chunks {
		workers = chunks
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= chunks {
					return
				}
				lanes := chunkLanes
				if rem := samples - i*chunkLanes; rem < lanes {
					lanes = rem
				}
				fn(lanes, NewAggregateSampler(seed, uint64(i)^0x9e3779b97f4a7c15))
			}
		}()
	}
	wg.Wait()
}
