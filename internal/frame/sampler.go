package frame

import (
	"math"
	mbits "math/bits"
	"math/rand/v2"

	"ftqc/internal/bits"
	"ftqc/internal/noise"
)

// Sampler supplies the randomness of a batch simulator as lane masks.
// Every method is restricted to the lanes of `active` (or `faults`): bits
// outside the mask are always written as 0.
//
// Two implementations exist with different contracts:
//
//   - LockstepSampler owns one PCG stream per lane and consumes it
//     draw-for-draw exactly like the scalar Sim consumes its stream, so a
//     BatchSim over a lockstep sampler is bit-identical, shot for shot, to
//     W scalar simulations run from the paired streams. It exists to prove
//     the batch engine correct.
//
//   - AggregateSampler owns a single stream and samples whole 64-lane
//     fault masks at once via geometric skipping (one draw typically
//     covers a full word of lanes). It is the production sampler: the same
//     distributions, a different (but deterministic) stream discipline.
type Sampler interface {
	// Bernoulli fills out with an independent P(bit=1)=p draw for every
	// lane in active and zeroes the rest.
	Bernoulli(p float64, active, out bits.Vec)
	// Coin fills out with a fair coin for every lane in active and zeroes
	// the rest.
	Coin(active, out bits.Vec)
	// Pauli1 draws a uniformly random nontrivial one-qubit Pauli for every
	// lane in faults, writing the X component into outX and the Z
	// component into outZ (Y sets both).
	Pauli1(faults, outX, outZ bits.Vec)
	// Pauli2 draws a uniformly random nontrivial two-qubit Pauli for every
	// lane in faults, writing the components for the first qubit into
	// outXa/outZa and for the second into outXb/outZb.
	Pauli2(faults, outXa, outZa, outXb, outZb bits.Vec)
	// Pauli1Biased is Pauli1 with a biased component distribution
	// (noise.Random1Biased with ratio η).
	Pauli1Biased(eta float64, faults, outX, outZ bits.Vec)
	// Pauli2Biased is Pauli2 with a biased component distribution
	// (noise.Random2Biased with ratio η).
	Pauli2Biased(eta float64, faults, outXa, outZa, outXb, outZb bits.Vec)
}

// --- lockstep: per-lane streams, bit-exact against the scalar Sim ---

// LockstepSampler drives one rand stream per lane in the scalar Sim's
// draw order. Lane i of NewLockstepSampler(seed, w) consumes exactly the
// stream rand.New(rand.NewPCG(seed, uint64(i))) — pair a scalar run with
// that stream and the batch lane reproduces it bit for bit.
type LockstepSampler struct {
	rngs []*rand.Rand
}

// NewLockstepSampler returns a lockstep sampler for w lanes; lane i draws
// from rand.New(rand.NewPCG(seed, uint64(i))).
func NewLockstepSampler(seed uint64, w int) *LockstepSampler {
	s := &LockstepSampler{rngs: make([]*rand.Rand, w)}
	for i := range s.rngs {
		s.rngs[i] = rand.New(rand.NewPCG(seed, uint64(i)))
	}
	return s
}

// NewLockstepSamplerFrom builds a lockstep sampler over caller-provided
// per-lane streams (for pairing against scalar runs with custom seeding).
func NewLockstepSamplerFrom(rngs []*rand.Rand) *LockstepSampler {
	return &LockstepSampler{rngs: rngs}
}

// Bernoulli draws one Float64 per active lane — also when p is 0 or 1,
// because the scalar Sim tests `rng.Float64() < p` unconditionally and the
// streams must stay aligned.
func (s *LockstepSampler) Bernoulli(p float64, active, out bits.Vec) {
	for i := 0; i < out.Words(); i++ {
		a := active.Word(i)
		var m uint64
		for b := a; b != 0; b &= b - 1 {
			lane := i*64 + trailingZeros(b)
			if s.rngs[lane].Float64() < p {
				m |= b & -b
			}
		}
		out.SetWord(i, m)
	}
}

// Coin mirrors the scalar `rng.IntN(2) == 1` coin flip.
func (s *LockstepSampler) Coin(active, out bits.Vec) {
	for i := 0; i < out.Words(); i++ {
		a := active.Word(i)
		var m uint64
		for b := a; b != 0; b &= b - 1 {
			lane := i*64 + trailingZeros(b)
			if s.rngs[lane].IntN(2) == 1 {
				m |= b & -b
			}
		}
		out.SetWord(i, m)
	}
}

// Pauli1 mirrors noise.Random1 per faulted lane.
func (s *LockstepSampler) Pauli1(faults, outX, outZ bits.Vec) {
	scatterPauli1(faults, outX, outZ, s.laneRand)
}

// Pauli2 mirrors noise.Random2 per faulted lane.
func (s *LockstepSampler) Pauli2(faults, outXa, outZa, outXb, outZb bits.Vec) {
	scatterPauli2(faults, outXa, outZa, outXb, outZb, s.laneRand)
}

// Pauli1Biased mirrors noise.Random1Biased per faulted lane.
func (s *LockstepSampler) Pauli1Biased(eta float64, faults, outX, outZ bits.Vec) {
	scatterPauli1Biased(eta, faults, outX, outZ, s.laneRand)
}

// Pauli2Biased mirrors noise.Random2Biased per faulted lane.
func (s *LockstepSampler) Pauli2Biased(eta float64, faults, outXa, outZa, outXb, outZb bits.Vec) {
	scatterPauli2Biased(eta, faults, outXa, outZa, outXb, outZb, s.laneRand)
}

func (s *LockstepSampler) laneRand(lane int) *rand.Rand { return s.rngs[lane] }

// --- aggregate: one stream, word-at-a-time masks ---

// AggregateSampler samples whole fault masks from a single PCG stream.
// Bernoulli masks use geometric skipping over the active lanes of each
// word: with per-location fault probabilities of 10⁻²–10⁻⁴ a single
// Float64 draw usually certifies "no fault in these 64 shots", which is
// where the batch engine's throughput comes from.
type AggregateSampler struct {
	rng *rand.Rand
	// memoized 1/log1p(-p) for the handful of distinct probabilities a
	// noise.Params supplies.
	memoP   [8]float64
	memoInv [8]float64
	memoN   int
	// Geometric-skip carry: the number of active lanes still to skip
	// before the next fault, valid across words AND across consecutive
	// Bernoulli calls with the same p (the gap distribution is
	// memoryless). carryP records the probability the carry belongs to;
	// a different p resets it. This drops the draw count from one per
	// word to one per fault — the hot-loop win for plane-at-a-time
	// sampling (toric batches call Bernoulli thousands of times per
	// chunk with a fixed p).
	carry  float64
	carryP float64
}

// NewAggregateSampler returns an aggregate sampler over the PCG stream
// (seed, stream).
func NewAggregateSampler(seed, stream uint64) *AggregateSampler {
	return &AggregateSampler{rng: rand.New(rand.NewPCG(seed, stream))}
}

// invLog1p returns 1/log(1-p), memoized.
func (s *AggregateSampler) invLog1p(p float64) float64 {
	for i := 0; i < s.memoN; i++ {
		if s.memoP[i] == p {
			return s.memoInv[i]
		}
	}
	v := 1 / math.Log1p(-p)
	if s.memoN < len(s.memoP) {
		s.memoP[s.memoN] = p
		s.memoInv[s.memoN] = v
		s.memoN++
	}
	return v
}

// Bernoulli samples fault masks by geometric skipping: the gap between
// consecutive faulted lanes is Geometric(p), so the draw count is one per
// fault, not one per lane. The residual gap carries across words and
// across consecutive same-p calls (geometric gaps are memoryless), so a
// plane-at-a-time caller pays ~p·lanes draws per plane instead of at
// least one draw per word.
func (s *AggregateSampler) Bernoulli(p float64, active, out bits.Vec) {
	if p <= 0 {
		out.Clear()
		return
	}
	if p >= 1 {
		out.CopyFrom(active)
		return
	}
	inv := s.invLog1p(p)
	if s.carryP != p {
		// Fresh gap for a new probability: P(skip = k) = (1-p)^k · p.
		s.carry = math.Floor(math.Log(s.rng.Float64()) * inv)
		s.carryP = p
	}
	skip := s.carry
	for i := 0; i < out.Words(); i++ {
		a := active.Word(i)
		if a == 0 {
			out.SetWord(i, 0)
			continue
		}
		if n := float64(popcount64(a)); skip >= n {
			skip -= n
			out.SetWord(i, 0)
			continue
		}
		var m uint64
		for {
			// skip < active lanes remaining in a, so the landing lane is
			// in this word (and the int conversion cannot overflow).
			for k := int(skip); k > 0; k-- {
				a &= a - 1
			}
			m |= a & -a
			a &= a - 1
			skip = math.Floor(math.Log(s.rng.Float64()) * inv)
			if rem := float64(popcount64(a)); skip >= rem {
				skip -= rem
				break
			}
		}
		out.SetWord(i, m)
	}
	s.carry = skip
	if math.IsInf(skip, 1) {
		// rng.Float64() returned exactly 0 (probability 2⁻⁵³): the
		// inverse-CDF gap is unbounded. Poison the carry so the next call
		// redraws instead of suppressing faults forever.
		s.carryP = -1
	}
}

// Coin draws one full-entropy word per word of lanes that need it.
func (s *AggregateSampler) Coin(active, out bits.Vec) {
	for i := 0; i < out.Words(); i++ {
		a := active.Word(i)
		if a == 0 {
			out.SetWord(i, 0)
			continue
		}
		out.SetWord(i, s.rng.Uint64()&a)
	}
}

// Pauli1 draws per faulted lane; faults are rare, so this is off the hot
// path.
func (s *AggregateSampler) Pauli1(faults, outX, outZ bits.Vec) {
	scatterPauli1(faults, outX, outZ, s.anyRand)
}

// Pauli2 draws per faulted lane.
func (s *AggregateSampler) Pauli2(faults, outXa, outZa, outXb, outZb bits.Vec) {
	scatterPauli2(faults, outXa, outZa, outXb, outZb, s.anyRand)
}

// Pauli1Biased draws per faulted lane with bias ratio eta.
func (s *AggregateSampler) Pauli1Biased(eta float64, faults, outX, outZ bits.Vec) {
	scatterPauli1Biased(eta, faults, outX, outZ, s.anyRand)
}

// Pauli2Biased draws per faulted lane with bias ratio eta.
func (s *AggregateSampler) Pauli2Biased(eta float64, faults, outXa, outZa, outXb, outZb bits.Vec) {
	scatterPauli2Biased(eta, faults, outXa, outZa, outXb, outZb, s.anyRand)
}

func (s *AggregateSampler) anyRand(int) *rand.Rand { return s.rng }

// scatterPauli1 draws a uniform nontrivial one-qubit Pauli for every lane
// in faults from the stream src selects for that lane, scattering the X/Z
// components into the output planes. Shared by both samplers so the Pauli
// encoding lives in one place.
func scatterPauli1(faults, outX, outZ bits.Vec, src func(lane int) *rand.Rand) {
	outX.Clear()
	outZ.Clear()
	for i := 0; i < faults.Words(); i++ {
		for b := faults.Word(i); b != 0; b &= b - 1 {
			lane := i*64 + trailingZeros(b)
			e := noise.Random1(src(lane))
			low := b & -b
			if e&noise.ErrX != 0 {
				outX.XorWord(i, low)
			}
			if e&noise.ErrZ != 0 {
				outZ.XorWord(i, low)
			}
		}
	}
}

// scatterPauli2 is scatterPauli1 for two-qubit Paulis.
func scatterPauli2(faults, outXa, outZa, outXb, outZb bits.Vec, src func(lane int) *rand.Rand) {
	outXa.Clear()
	outZa.Clear()
	outXb.Clear()
	outZb.Clear()
	for i := 0; i < faults.Words(); i++ {
		for b := faults.Word(i); b != 0; b &= b - 1 {
			lane := i*64 + trailingZeros(b)
			ea, eb := noise.Random2(src(lane))
			low := b & -b
			if ea&noise.ErrX != 0 {
				outXa.XorWord(i, low)
			}
			if ea&noise.ErrZ != 0 {
				outZa.XorWord(i, low)
			}
			if eb&noise.ErrX != 0 {
				outXb.XorWord(i, low)
			}
			if eb&noise.ErrZ != 0 {
				outZb.XorWord(i, low)
			}
		}
	}
}

// scatterPauli1Biased is scatterPauli1 with noise.Random1Biased draws.
func scatterPauli1Biased(eta float64, faults, outX, outZ bits.Vec, src func(lane int) *rand.Rand) {
	outX.Clear()
	outZ.Clear()
	for i := 0; i < faults.Words(); i++ {
		for b := faults.Word(i); b != 0; b &= b - 1 {
			lane := i*64 + trailingZeros(b)
			e := noise.Random1Biased(src(lane), eta)
			low := b & -b
			if e&noise.ErrX != 0 {
				outX.XorWord(i, low)
			}
			if e&noise.ErrZ != 0 {
				outZ.XorWord(i, low)
			}
		}
	}
}

// scatterPauli2Biased is scatterPauli2 with noise.Random2Biased draws.
func scatterPauli2Biased(eta float64, faults, outXa, outZa, outXb, outZb bits.Vec, src func(lane int) *rand.Rand) {
	outXa.Clear()
	outZa.Clear()
	outXb.Clear()
	outZb.Clear()
	for i := 0; i < faults.Words(); i++ {
		for b := faults.Word(i); b != 0; b &= b - 1 {
			lane := i*64 + trailingZeros(b)
			ea, eb := noise.Random2Biased(src(lane), eta)
			low := b & -b
			if ea&noise.ErrX != 0 {
				outXa.XorWord(i, low)
			}
			if ea&noise.ErrZ != 0 {
				outZa.XorWord(i, low)
			}
			if eb&noise.ErrX != 0 {
				outXb.XorWord(i, low)
			}
			if eb&noise.ErrZ != 0 {
				outZb.XorWord(i, low)
			}
		}
	}
}

// trailingZeros names math/bits.TrailingZeros64 under the import alias.
func trailingZeros(x uint64) int { return mbits.TrailingZeros64(x) }

// popcount64 names math/bits.OnesCount64 under the import alias.
func popcount64(x uint64) int { return mbits.OnesCount64(x) }
