// Package frame simulates Pauli-frame Monte Carlo two ways: a scalar
// simulator (Sim) that advances one shot at a time, and a batched
// bit-parallel engine (BatchSim) that advances W independent shots at
// once. Both propagate a Pauli error frame (which X/Z errors currently
// afflict each qubit) through Clifford circuits with stochastic noise at
// every fault location, reproducing density-matrix statistics for
// stabilizer circuits at a tiny fraction of the cost — the engine behind
// the threshold Monte Carlo of Preskill §5.
//
// # Bit-plane layout
//
// BatchSim stores one bits.Vec of length W per wire for each of the X
// frame, the Z frame, and the leakage flags. Bit i of a plane belongs to
// shot ("lane") i, so 64 lanes share a machine word and Clifford frame
// propagation is a handful of word-wide XOR/AND operations regardless of
// W:
//
//	wire q:  fx[q] = x₀x₁x₂…x_{W−1}   (one bit per lane)
//	         fz[q] = z₀z₁z₂…z_{W−1}
//	         lk[q] = l₀l₁l₂…l_{W−1}
//
// Noise is injected by sampling a random mask of faulted lanes per fault
// location. Data-dependent gadget control flow (syndrome repetition,
// ancilla verification retries) is expressed with the active-lane mask:
// the lanes taking a branch are pushed via PushActive, the branch's
// operations are replayed — touching, and drawing randomness for, those
// lanes only — and the mask is popped.
//
// # RNG-stream discipline
//
// Two Sampler implementations trade speed against scalar pairing:
//
//   - AggregateSampler (production): a single PCG stream per sampler
//     draws whole 64-lane Bernoulli masks by geometric skipping — the gap
//     between consecutive faulted lanes is Geometric(p), so a typical
//     location costs ~1 draw per word instead of 64. Experiments key one
//     sampler stream per batch chunk, (seed, chunk index), making results
//     a pure function of (seed, samples) independent of GOMAXPROCS.
//
//   - LockstepSampler (verification): one PCG stream per lane, consumed
//     draw-for-draw in the scalar simulator's order, so batch lane i is
//     bit-identical to a scalar Sim run with
//     rand.New(rand.NewPCG(seed, uint64(i))). The equivalence suites in
//     equiv_test.go and ft's batch_test.go pin the two engines together
//     at this standard, shot for shot.
//
// Measurement results are reported as flips relative to the noiseless
// reference run (planes of flip bits for BatchSim). All of the paper's
// verification and syndrome bits have reference value 0, so flip bits can
// be used directly as classical data.
package frame
