// The scalar Pauli-frame simulator: one shot at a time. See doc.go for
// the package overview and batch.go for the bit-parallel engine.

package frame

import (
	"math/rand/v2"

	"ftqc/internal/bits"
	"ftqc/internal/circuit"
	"ftqc/internal/noise"
)

// Sim is the Pauli-frame state of n qubits.
type Sim struct {
	n      int
	fx, fz bits.Vec // current error frame
	leaked bits.Vec // leakage flags (§6 leakage model)
	P      noise.Params
	rng    *rand.Rand

	// Faults injected so far (for diagnostics and tests).
	FaultCount int

	// LocationCount numbers every fault location as it executes. When it
	// reaches Trigger, TriggerFault runs with the qubits of that
	// location — deterministic single-fault injection for the exhaustive
	// fault-tolerance tests. Trigger < 0 disables scripting.
	LocationCount int
	Trigger       int
	TriggerFault  func(s *Sim, qubits []int)
}

// New returns a clean frame simulator.
func New(n int, p noise.Params, rng *rand.Rand) *Sim {
	if rng == nil {
		rng = rand.New(rand.NewPCG(2, 3))
	}
	return &Sim{n: n, fx: bits.NewVec(n), fz: bits.NewVec(n), leaked: bits.NewVec(n), P: p, rng: rng, Trigger: -1}
}

// point marks a fault location, firing the scripted fault if armed.
func (s *Sim) point(qubits ...int) {
	if s.LocationCount == s.Trigger && s.TriggerFault != nil {
		s.TriggerFault(s, qubits)
	}
	s.LocationCount++
}

// N returns the number of qubits.
func (s *Sim) N() int { return s.n }

// XError reports whether qubit q currently carries an X (or Y) error.
func (s *Sim) XError(q int) bool { return s.fx.Get(q) }

// ZError reports whether qubit q currently carries a Z (or Y) error.
func (s *Sim) ZError(q int) bool { return s.fz.Get(q) }

// Leaked reports whether qubit q has leaked.
func (s *Sim) Leaked(q int) bool { return s.leaked.Get(q) }

// InjectX deterministically adds an X error to the frame (for tests and
// deterministic fault-injection experiments).
func (s *Sim) InjectX(q int) { s.fx.Flip(q) }

// InjectZ deterministically adds a Z error to the frame.
func (s *Sim) InjectZ(q int) { s.fz.Flip(q) }

// inject applies a sampled Pauli error.
func (s *Sim) inject(q int, e noise.PauliError) {
	if e&noise.ErrX != 0 {
		s.fx.Flip(q)
	}
	if e&noise.ErrZ != 0 {
		s.fz.Flip(q)
	}
	if e != noise.ErrNone {
		s.FaultCount++
	}
}

func (s *Sim) maybeLeak(q int) {
	if s.P.Leak > 0 && s.rng.Float64() < s.P.Leak {
		s.leaked.Set(q, true)
	}
}

// --- gates (frame conjugation + noise) ---

// H applies a Hadamard: X ↔ Z in the frame.
func (s *Sim) H(q int) {
	s.point(q)
	if !s.leaked.Get(q) {
		x, z := s.fx.Get(q), s.fz.Get(q)
		s.fx.Set(q, z)
		s.fz.Set(q, x)
	}
	if s.rng.Float64() < s.P.Gate1 {
		s.inject(q, noise.Random1(s.rng))
	}
	s.maybeLeak(q)
}

// S applies the phase gate: X → Y (adds a Z component to X errors).
func (s *Sim) S(q int) {
	s.point(q)
	if !s.leaked.Get(q) && s.fx.Get(q) {
		s.fz.Flip(q)
	}
	if s.rng.Float64() < s.P.Gate1 {
		s.inject(q, noise.Random1(s.rng))
	}
	s.maybeLeak(q)
}

// Sdg applies the inverse phase gate (same frame action as S).
func (s *Sim) Sdg(q int) { s.S(q) }

// PauliGate applies a deliberate X/Y/Z gate. Paulis commute with the frame
// up to phase, so only the noise matters.
func (s *Sim) PauliGate(q int) {
	s.point(q)
	if s.rng.Float64() < s.P.Gate1 {
		s.inject(q, noise.Random1(s.rng))
	}
	s.maybeLeak(q)
}

// CNOT applies an XOR gate: X errors propagate forward (control→target),
// Z errors backward (target→control) — the two mechanisms of §3.1.
func (s *Sim) CNOT(a, b int) {
	s.point(a, b)
	if !s.leaked.Get(a) && !s.leaked.Get(b) {
		if s.fx.Get(a) {
			s.fx.Flip(b)
		}
		if s.fz.Get(b) {
			s.fz.Flip(a)
		}
	}
	if s.rng.Float64() < s.P.Gate2 {
		ea, eb := noise.Random2(s.rng)
		s.inject(a, ea)
		s.inject(b, eb)
	}
	s.maybeLeak(a)
	s.maybeLeak(b)
}

// CZ applies a controlled-Z: X errors on either side deposit Z on the
// other.
func (s *Sim) CZ(a, b int) {
	s.point(a, b)
	if !s.leaked.Get(a) && !s.leaked.Get(b) {
		if s.fx.Get(a) {
			s.fz.Flip(b)
		}
		if s.fx.Get(b) {
			s.fz.Flip(a)
		}
	}
	if s.rng.Float64() < s.P.Gate2 {
		ea, eb := noise.Random2(s.rng)
		s.inject(a, ea)
		s.inject(b, eb)
	}
	s.maybeLeak(a)
	s.maybeLeak(b)
}

// PrepZ resets the qubit to |0⟩, clearing its frame and leakage; a faulty
// preparation leaves an X error (the state |1⟩).
func (s *Sim) PrepZ(q int) {
	s.fx.Set(q, false)
	s.fz.Set(q, false)
	s.leaked.Set(q, false)
	s.point(q)
	if s.rng.Float64() < s.P.Prep {
		s.fx.Set(q, true)
		s.FaultCount++
	}
}

// PrepX resets the qubit to |+⟩, clearing its frame and leakage; a faulty
// preparation leaves a Z error (the state |−⟩).
func (s *Sim) PrepX(q int) {
	s.fx.Set(q, false)
	s.fz.Set(q, false)
	s.leaked.Set(q, false)
	s.point(q)
	if s.rng.Float64() < s.P.Prep {
		s.fz.Set(q, true)
		s.FaultCount++
	}
}

// MeasZ destructively measures the qubit in the computational basis and
// returns whether the outcome is flipped relative to the noiseless
// reference. A leaked qubit yields a coin flip (its reading carries no
// information about the encoded data).
func (s *Sim) MeasZ(q int) bool {
	s.point(q)
	flip := s.fx.Get(q)
	if s.leaked.Get(q) {
		flip = s.rng.IntN(2) == 1
	}
	if s.rng.Float64() < s.P.Meas {
		flip = !flip
		s.FaultCount++
	}
	return flip
}

// MeasX measures in the Hadamard basis: the flip bit reads the Z frame.
func (s *Sim) MeasX(q int) bool {
	s.point(q)
	flip := s.fz.Get(q)
	if s.leaked.Get(q) {
		flip = s.rng.IntN(2) == 1
	}
	if s.rng.Float64() < s.P.Meas {
		flip = !flip
		s.FaultCount++
	}
	return flip
}

// Storage applies one idle step of storage noise to qubit q.
func (s *Sim) Storage(q int) {
	s.point(q)
	if s.rng.Float64() < s.P.Storage {
		s.inject(q, noise.Random1(s.rng))
	}
}

// FrameX/FrameZ corrections: classical Pauli-frame updates, applied
// noiselessly (recovery operations tracked in software, as in
// Knill-style Pauli-frame error correction).

// FrameX toggles an X correction on qubit q.
func (s *Sim) FrameX(q int) { s.fx.Flip(q) }

// FrameZ toggles a Z correction on qubit q.
func (s *Sim) FrameZ(q int) { s.fz.Flip(q) }

// ReplaceLeaked swaps a leaked qubit for a fresh |0⟩. Relative to the
// encoded data the fresh qubit is an erasure: its frame is randomized,
// to be repaired by the next round of error correction (§6, Fig. 15).
func (s *Sim) ReplaceLeaked(q int) {
	s.leaked.Set(q, false)
	s.fx.Set(q, s.rng.IntN(2) == 1)
	s.fz.Set(q, s.rng.IntN(2) == 1)
}

// Run executes a circuit: gates with their noise, storage noise on every
// qubit idle in a moment (between its first and last use), and returns the
// measurement flip bits indexed by result slot.
func (s *Sim) Run(c *circuit.Circuit) []bool {
	if c.N != s.n {
		panic("frame: circuit size mismatch")
	}
	out := make([]bool, c.NumMeas)
	// Determine each qubit's live range for storage noise.
	first := make([]int, c.N)
	last := make([]int, c.N)
	for q := range first {
		first[q] = -1
	}
	for mi, m := range c.Moments {
		for _, op := range m.Ops {
			if first[op.A] < 0 {
				first[op.A] = mi
			}
			last[op.A] = mi
			if op.B >= 0 {
				if first[op.B] < 0 {
					first[op.B] = mi
				}
				last[op.B] = mi
			}
		}
	}
	for mi, m := range c.Moments {
		busy := make([]bool, c.N)
		for _, op := range m.Ops {
			busy[op.A] = true
			if op.B >= 0 {
				busy[op.B] = true
			}
			switch op.Kind {
			case circuit.KindH:
				s.H(op.A)
			case circuit.KindS, circuit.KindSdg:
				s.S(op.A)
			case circuit.KindX, circuit.KindY, circuit.KindZ:
				s.PauliGate(op.A)
			case circuit.KindCNOT:
				s.CNOT(op.A, op.B)
			case circuit.KindCZ:
				s.CZ(op.A, op.B)
			case circuit.KindPrepZ:
				s.PrepZ(op.A)
			case circuit.KindMeasZ:
				out[op.M] = s.MeasZ(op.A)
			case circuit.KindMeasX:
				out[op.M] = s.MeasX(op.A)
			}
		}
		if s.P.Storage > 0 {
			for q := 0; q < c.N; q++ {
				if !busy[q] && first[q] >= 0 && mi > first[q] && mi < last[q] {
					s.Storage(q)
				}
			}
		}
	}
	return out
}

// FrameOn returns the frame restricted to the given qubits as (x, z) bit
// vectors — the residual error pattern on a code block.
func (s *Sim) FrameOn(qubits []int) (x, z bits.Vec) {
	x = bits.NewVec(len(qubits))
	z = bits.NewVec(len(qubits))
	for i, q := range qubits {
		x.Set(i, s.fx.Get(q))
		z.Set(i, s.fz.Get(q))
	}
	return x, z
}

// ClearRegion resets the frame and leakage on the given qubits (fresh
// workspace for a retried ancilla preparation).
func (s *Sim) ClearRegion(qubits []int) {
	for _, q := range qubits {
		s.fx.Set(q, false)
		s.fz.Set(q, false)
		s.leaked.Set(q, false)
	}
}

// Rand exposes the simulator's random source for gadget drivers.
func (s *Sim) Rand() *rand.Rand { return s.rng }
