// Package classical implements classical binary linear error-correcting
// codes: a generic [n,k] linear code with syndrome decoding, the [7,4,3]
// Hamming code that underlies Steane's 7-qubit code (Preskill §2, Eq. 1),
// and repetition codes used to build the Shor code family.
package classical

import (
	"fmt"

	"ftqc/internal/bits"
)

// Code is a binary linear [n,k] code described by a parity-check matrix H
// (rows are checks) and a generator matrix G (rows span the code).
type Code struct {
	Name string
	N    int // block length
	K    int // message length
	H    *bits.Matrix
	G    *bits.Matrix

	// decodeTable maps syndrome keys to a minimum-weight coset leader.
	decodeTable map[string]bits.Vec
}

// New builds a code from a parity-check matrix. The generator is computed
// as a basis of ker H. An error is returned if H has dependent rows.
func New(name string, h *bits.Matrix) (*Code, error) {
	if h.Rank() != h.Rows() {
		return nil, fmt.Errorf("classical: parity check for %s has dependent rows", name)
	}
	g := h.Kernel()
	c := &Code{Name: name, N: h.Cols(), K: g.Rows(), H: h, G: g}
	return c, nil
}

// MustNew is New that panics on error; for known-good literal tables.
func MustNew(name string, h *bits.Matrix) *Code {
	c, err := New(name, h)
	if err != nil {
		panic(err)
	}
	return c
}

// Encode maps a k-bit message to an n-bit codeword (message · G).
func (c *Code) Encode(msg bits.Vec) bits.Vec {
	if msg.Len() != c.K {
		panic("classical: message length mismatch")
	}
	out := bits.NewVec(c.N)
	for i := 0; i < c.K; i++ {
		if msg.Get(i) {
			out.Xor(c.G.Row(i))
		}
	}
	return out
}

// Syndrome returns H · word.
func (c *Code) Syndrome(word bits.Vec) bits.Vec { return c.H.MulVec(word) }

// IsCodeword reports whether the word satisfies every parity check.
func (c *Code) IsCodeword(word bits.Vec) bool { return c.Syndrome(word).Zero() }

// buildDecodeTable enumerates errors in order of increasing weight up to
// maxWeight and records the first (hence minimum-weight) error for each
// syndrome. It covers all syndromes when maxWeight is large enough.
func (c *Code) buildDecodeTable(maxWeight int) {
	c.decodeTable = make(map[string]bits.Vec)
	// Enumerate by increasing weight so lighter errors claim syndromes first.
	for w := 0; w <= maxWeight; w++ {
		var recW func(e bits.Vec, start, left int)
		recW = func(e bits.Vec, start, left int) {
			if left == 0 {
				key := c.Syndrome(e).Key()
				if _, seen := c.decodeTable[key]; !seen {
					c.decodeTable[key] = e.Clone()
				}
				return
			}
			for i := start; i < c.N; i++ {
				e.Flip(i)
				recW(e, i+1, left-1)
				e.Flip(i)
			}
		}
		recW(bits.NewVec(c.N), 0, w)
	}
}

// DecodeError returns a minimum-weight error pattern consistent with the
// given syndrome (a coset leader), and ok=false if the syndrome was never
// seen while building the table.
func (c *Code) DecodeError(syndrome bits.Vec) (bits.Vec, bool) {
	if c.decodeTable == nil {
		c.buildDecodeTable(min(c.N, 4))
	}
	e, ok := c.decodeTable[syndrome.Key()]
	if !ok {
		return bits.NewVec(c.N), false
	}
	return e.Clone(), true
}

// Correct returns the word with its decoded error removed.
func (c *Code) Correct(word bits.Vec) bits.Vec {
	e, _ := c.DecodeError(c.Syndrome(word))
	out := word.Clone()
	out.Xor(e)
	return out
}

// MinDistance computes the code's minimum distance by brute force over
// messages. Exponential in K; fine for the small codes used here.
func (c *Code) MinDistance() int {
	best := c.N + 1
	for m := 1; m < 1<<uint(c.K); m++ {
		msg := bits.NewVec(c.K)
		for i := 0; i < c.K; i++ {
			if m>>uint(i)&1 == 1 {
				msg.Set(i, true)
			}
		}
		if w := c.Encode(msg).Weight(); w < best {
			best = w
		}
	}
	return best
}

// Codewords enumerates all 2^K codewords. Exponential in K.
func (c *Code) Codewords() []bits.Vec {
	words := make([]bits.Vec, 0, 1<<uint(c.K))
	for m := 0; m < 1<<uint(c.K); m++ {
		msg := bits.NewVec(c.K)
		for i := 0; i < c.K; i++ {
			if m>>uint(i)&1 == 1 {
				msg.Set(i, true)
			}
		}
		words = append(words, c.Encode(msg))
	}
	return words
}

// Hamming743 returns the [7,4,3] Hamming code with the parity-check matrix
// of Preskill Eq. (1): column j (1-based) is the binary representation
// of j, so the syndrome directly names the flipped bit.
func Hamming743() *Code {
	h := bits.MatrixFromStrings(
		"0001111",
		"0110011",
		"1010101",
	)
	return MustNew("Hamming[7,4,3]", h)
}

// HammingErrorPosition converts a Hamming syndrome to the (0-based) flipped
// bit position, or -1 for the trivial syndrome. With the Eq. (1) check
// matrix the syndrome bits spell the 1-based position in binary,
// most-significant bit first.
func HammingErrorPosition(syndrome bits.Vec) int {
	if syndrome.Len() != 3 {
		panic("classical: Hamming syndrome must have 3 bits")
	}
	pos := 0
	for i := 0; i < 3; i++ {
		pos <<= 1
		if syndrome.Get(i) {
			pos |= 1
		}
	}
	return pos - 1
}

// Repetition returns the [n,1,n] repetition code.
func Repetition(n int) *Code {
	if n < 2 {
		panic("classical: repetition length must be at least 2")
	}
	h := bits.NewMatrix(n-1, n)
	for i := 0; i < n-1; i++ {
		h.Set(i, i, true)
		h.Set(i, i+1, true)
	}
	return MustNew(fmt.Sprintf("Repetition[%d,1,%d]", n, n), h)
}
