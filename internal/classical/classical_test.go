package classical

import (
	"math/rand/v2"
	"testing"

	"ftqc/internal/bits"
)

func TestHammingParameters(t *testing.T) {
	c := Hamming743()
	if c.N != 7 || c.K != 4 {
		t.Fatalf("got [%d,%d], want [7,4]", c.N, c.K)
	}
	if d := c.MinDistance(); d != 3 {
		t.Fatalf("distance: got %d, want 3", d)
	}
	if len(c.Codewords()) != 16 {
		t.Fatalf("want 16 codewords")
	}
}

func TestHammingCorrectsAllSingleErrors(t *testing.T) {
	c := Hamming743()
	for _, w := range c.Codewords() {
		for i := 0; i < 7; i++ {
			corrupted := w.Clone()
			corrupted.Flip(i)
			if got := c.Correct(corrupted); !got.Equal(w) {
				t.Fatalf("failed to correct bit %d of %v", i, w)
			}
		}
	}
}

func TestHammingSyndromeNamesPosition(t *testing.T) {
	// Preskill Eq. (3): H(v+e_i) = He_i = column i, which spells i+1 in
	// binary for the Eq. (1) check matrix.
	c := Hamming743()
	w := c.Codewords()[5]
	for i := 0; i < 7; i++ {
		corrupted := w.Clone()
		corrupted.Flip(i)
		if got := HammingErrorPosition(c.Syndrome(corrupted)); got != i {
			t.Fatalf("syndrome position: got %d, want %d", got, i)
		}
	}
	if got := HammingErrorPosition(c.Syndrome(w)); got != -1 {
		t.Fatalf("trivial syndrome should map to -1, got %d", got)
	}
}

func TestHammingDoubleErrorMisdecodesToCodeword(t *testing.T) {
	// Two bit flips defeat the Hamming code, but correction still lands on
	// some codeword (the wrong one) — the mechanism behind Preskill
	// Eq. (12).
	c := Hamming743()
	w := c.Codewords()[3]
	corrupted := w.Clone()
	corrupted.Flip(1)
	corrupted.Flip(4)
	got := c.Correct(corrupted)
	if !c.IsCodeword(got) {
		t.Fatal("correction did not return to the code space")
	}
	if got.Equal(w) {
		t.Fatal("double error unexpectedly corrected")
	}
}

func TestHammingEvenSubcodeClosedUnderComplement(t *testing.T) {
	// Used by Steane's code: odd codewords are the complement of even ones.
	c := Hamming743()
	ones := bits.MustFromString("1111111")
	if !c.IsCodeword(ones) {
		t.Fatal("all-ones must be a Hamming codeword")
	}
	for _, w := range c.Codewords() {
		comp := w.Clone()
		comp.Xor(ones)
		if !c.IsCodeword(comp) {
			t.Fatal("complement of codeword is not a codeword")
		}
		if (w.Weight()+comp.Weight())%2 != 1 {
			t.Fatal("complement must flip weight parity")
		}
	}
	// Count: 8 even, 8 odd.
	even := 0
	for _, w := range c.Codewords() {
		if w.Weight()%2 == 0 {
			even++
		}
	}
	if even != 8 {
		t.Fatalf("even-weight codewords: got %d, want 8", even)
	}
}

func TestHammingWeightsMod4(t *testing.T) {
	// §4.1: even Hamming codewords have weight ≡ 0 (mod 4), odd ones
	// weight ≡ 3 (mod 4). This is why the phase gate P is implemented
	// bitwise as P^{-1}.
	c := Hamming743()
	for _, w := range c.Codewords() {
		wt := w.Weight()
		if wt%2 == 0 && wt%4 != 0 {
			t.Fatalf("even codeword with weight %d ≢ 0 mod 4", wt)
		}
		if wt%2 == 1 && wt%4 != 3 {
			t.Fatalf("odd codeword with weight %d ≢ 3 mod 4", wt)
		}
	}
}

func TestRepetitionCode(t *testing.T) {
	for _, n := range []int{3, 5, 7} {
		c := Repetition(n)
		if c.K != 1 {
			t.Fatalf("repetition K: got %d", c.K)
		}
		if d := c.MinDistance(); d != n {
			t.Fatalf("repetition distance: got %d want %d", d, n)
		}
		// Corrects up to (n-1)/2 flips by majority.
		msg := bits.MustFromString("1")
		w := c.Encode(msg)
		corrupted := w.Clone()
		for i := 0; i < (n-1)/2; i++ {
			corrupted.Flip(i)
		}
		if !c.Correct(corrupted).Equal(w) {
			t.Fatalf("repetition[%d] failed to correct %d flips", n, (n-1)/2)
		}
	}
}

func TestEncodeLinear(t *testing.T) {
	c := Hamming743()
	rng := rand.New(rand.NewPCG(21, 22))
	for trial := 0; trial < 50; trial++ {
		a, b := bits.NewVec(4), bits.NewVec(4)
		for i := 0; i < 4; i++ {
			a.Set(i, rng.IntN(2) == 1)
			b.Set(i, rng.IntN(2) == 1)
		}
		sum := a.Clone()
		sum.Xor(b)
		enc := c.Encode(a)
		enc.Xor(c.Encode(b))
		if !c.Encode(sum).Equal(enc) {
			t.Fatal("encoding is not linear")
		}
	}
}

func TestDecodeUnknownSyndromeReported(t *testing.T) {
	// For the [3,1] repetition code every syndrome is reachable by weight
	// ≤1 errors, so DecodeError must always succeed.
	c := Repetition(3)
	for s := 0; s < 4; s++ {
		syn := bits.NewVec(2)
		for i := 0; i < 2; i++ {
			if s>>uint(i)&1 == 1 {
				syn.Set(i, true)
			}
		}
		if _, ok := c.DecodeError(syn); !ok {
			t.Fatalf("syndrome %v unreachable", syn)
		}
	}
}

func TestNewRejectsDependentRows(t *testing.T) {
	h := bits.MatrixFromStrings("110", "110")
	if _, err := New("bad", h); err == nil {
		t.Fatal("expected error for dependent parity rows")
	}
}
