package surface

import (
	"ftqc/internal/bits"
	"ftqc/internal/frame"
	"ftqc/internal/noise"
)

// LayerSource samples a phenomenological noisy-extraction history round
// by round for any Code: fresh X and Z data errors at rate p per qubit
// per round, check measurements flipped with probability q, and the
// consecutive-round syndrome differences emitted as check-major layer
// planes. Draw order per round: X qubit planes, Z qubit planes, primal
// measurement masks, dual measurement masks — all in index order, the
// same stream discipline as the toric spacetime.LayerSource (on the
// toric code the two are draw-for-draw identical).
type LayerSource struct {
	code   Code
	p, q   float64
	lanes  int
	smp    frame.Sampler
	rounds int

	active, tmp bits.Vec
	cumX, cumZ  []bits.Vec // qubit-major accumulated error planes
	diff        *SyndromeDiff
}

// NewLayerSource returns a phenomenological source over the code for
// `lanes` parallel shots drawing from smp.
func NewLayerSource(code Code, p, q float64, lanes int, smp frame.Sampler) *LayerSource {
	s := &LayerSource{
		code: code, p: p, q: q, lanes: lanes, smp: smp,
		active: bits.NewVec(lanes),
		tmp:    bits.NewVec(lanes),
		cumX:   bits.NewVecs(code.Qubits(), lanes),
		cumZ:   bits.NewVecs(code.Qubits(), lanes),
		diff:   NewSyndromeDiff(code.Checks(), lanes),
	}
	s.active.SetAll()
	return s
}

// Code returns the code the source extracts on.
func (s *LayerSource) Code() Code { return s.code }

// L returns the code distance (the layer-feed size contract).
func (s *LayerSource) L() int { return s.code.Distance() }

// Lanes returns the batch width.
func (s *LayerSource) Lanes() int { return s.lanes }

// Rounds returns how many noisy rounds have been emitted.
func (s *LayerSource) Rounds() int { return s.rounds }

// NextLayers advances one noisy extraction round and writes its
// difference-syndrome layers into layerX and layerZ (check-major,
// Checks() vectors each).
func (s *LayerSource) NextLayers(layerX, layerZ []bits.Vec) {
	nq, nc := s.code.Qubits(), s.code.Checks()
	for e := 0; e < nq; e++ {
		s.smp.Bernoulli(s.p, s.active, s.tmp)
		s.cumX[e].Xor(s.tmp)
	}
	for e := 0; e < nq; e++ {
		s.smp.Bernoulli(s.p, s.active, s.tmp)
		s.cumZ[e].Xor(s.tmp)
	}
	curX := s.diff.CurX()
	s.code.CheckPlanes(false, s.cumX, curX)
	for c := 0; c < nc; c++ {
		s.smp.Bernoulli(s.q, s.active, s.tmp)
		curX[c].Xor(s.tmp)
	}
	curZ := s.diff.CurZ()
	s.code.CheckPlanes(true, s.cumZ, curZ)
	for c := 0; c < nc; c++ {
		s.smp.Bernoulli(s.q, s.active, s.tmp)
		curZ[c].Xor(s.tmp)
	}
	s.diff.Emit(layerX, layerZ)
	s.rounds++
}

// CloseLayers writes the closing perfect round's difference layers: the
// true syndromes of the accumulated errors, no fresh faults, no
// measurement noise.
func (s *LayerSource) CloseLayers(layerX, layerZ []bits.Vec) {
	s.code.CheckPlanes(false, s.cumX, s.diff.CurX())
	s.code.CheckPlanes(true, s.cumZ, s.diff.CurZ())
	s.diff.Emit(layerX, layerZ)
}

// Windings accumulates the logical-failure-detector parities of the
// accumulated error chains (the layer-feed homology contract; open
// codes leave the second parity of each sector untouched).
func (s *LayerSource) Windings(pX1, pX2, pZ1, pZ2 bits.Vec) {
	s.code.LogicalPlanes(false, s.cumX, pX1, pX2)
	s.code.LogicalPlanes(true, s.cumZ, pZ1, pZ2)
}

// ErrorPlanes returns the live accumulated error planes of the two
// sectors (qubit-major). Read-only views for validation harnesses.
func (s *LayerSource) ErrorPlanes() (x, z []bits.Vec) { return s.cumX, s.cumZ }

// CircuitSource runs circuit-level syndrome extraction for any Code on
// the batch frame engine, mirroring the toric extract.Source gate for
// gate: one ancilla per check, prepared, coupled to its data qubits by
// CNOTs in the code's schedule (idle −1 steps skipped — boundary
// checks of open codes have weight < 4), and measured, with stochastic
// faults at every location. Qubit layout on the simulator: data qubits
// 0…Qubits()−1, primal-check ancillas Qubits()+c, dual-check ancillas
// Qubits()+Checks()+c.
type CircuitSource struct {
	code   Code
	sch    *Schedule
	sim    *frame.BatchSim
	lanes  int
	rounds int
	diff   *SyndromeDiff
}

// NewCircuitSource returns a circuit-level source over the code for
// `lanes` parallel shots under the per-location noise model P, drawing
// from smp. Plain sources do not harvest leakage: P.Leak > 0 panics
// (never a silent zeroing) — construct with NewCircuitSourceErased and
// drain with NextLayersErased instead.
func NewCircuitSource(code Code, P noise.Params, lanes int, smp frame.Sampler) *CircuitSource {
	if P.Leak != 0 {
		panic("surface: P.Leak > 0 needs the erasure-harvesting source (NewCircuitSourceErased + NextLayersErased)")
	}
	return NewCircuitSourceErased(code, P, lanes, smp)
}

// NewCircuitSourceErased returns a circuit-level source that models
// leakage: every gate carries its P.Leak channel, a leaked data qubit
// is swapped for a fresh (randomized) one at the start of the next
// round, and NextLayersErased reports every leak as a located fault.
func NewCircuitSourceErased(code Code, P noise.Params, lanes int, smp frame.Sampler) *CircuitSource {
	nc := code.Checks()
	return &CircuitSource{
		code:  code,
		sch:   code.ExtractionSchedule(),
		sim:   frame.NewBatch(code.Qubits()+2*nc, lanes, P, smp),
		lanes: lanes,
		diff:  NewSyndromeDiff(nc, lanes),
	}
}

// Code returns the code the source extracts on.
func (s *CircuitSource) Code() Code { return s.code }

// L returns the code distance (the layer-feed size contract).
func (s *CircuitSource) L() int { return s.code.Distance() }

// Lanes returns the batch width.
func (s *CircuitSource) Lanes() int { return s.lanes }

// Rounds returns how many noisy rounds have been emitted.
func (s *CircuitSource) Rounds() int { return s.rounds }

// Sim exposes the underlying batch simulator for fault-injection
// harnesses (ArmTrigger single-fault enumeration, InjectX/InjectZ).
func (s *CircuitSource) Sim() *frame.BatchSim { return s.sim }

func (s *CircuitSource) ancP(c int) int { return s.code.Qubits() + c }
func (s *CircuitSource) ancS(c int) int { return s.code.Qubits() + s.code.Checks() + c }

// NextLayers runs one full extraction round — idle storage on the data
// qubits, then the primal sector (PrepZ, four CNOT steps with data as
// control, MeasZ), then the dual sector (PrepX, four CNOT steps with
// the ancilla as control, MeasX) — and writes the round's difference-
// syndrome layers into layerX and layerZ.
func (s *CircuitSource) NextLayers(layerX, layerZ []bits.Vec) {
	if s.sim.P.Leak > 0 {
		panic("surface: NextLayers with P.Leak > 0 — drain an erasure source with NextLayersErased")
	}
	s.genericRound()
	s.diff.Emit(layerX, layerZ)
	s.rounds++
}

// genericRound executes one extraction round through the per-gate batch
// API.
func (s *CircuitSource) genericRound() {
	nq, nc := s.code.Qubits(), s.code.Checks()
	for e := 0; e < nq; e++ {
		s.sim.Storage(e)
	}
	curX := s.diff.CurX()
	for c := 0; c < nc; c++ {
		s.sim.PrepZ(s.ancP(c))
	}
	for step := 0; step < 4; step++ {
		for c := 0; c < nc; c++ {
			if q := s.sch.Plaq[c][step]; q >= 0 {
				s.sim.CNOT(q, s.ancP(c))
			}
		}
	}
	for c := 0; c < nc; c++ {
		s.sim.MeasZInto(s.ancP(c), curX[c])
	}
	curZ := s.diff.CurZ()
	for c := 0; c < nc; c++ {
		s.sim.PrepX(s.ancS(c))
	}
	for step := 0; step < 4; step++ {
		for c := 0; c < nc; c++ {
			if q := s.sch.Star[c][step]; q >= 0 {
				s.sim.CNOT(s.ancS(c), q)
			}
		}
	}
	for c := 0; c < nc; c++ {
		s.sim.MeasXInto(s.ancS(c), curZ[c])
	}
}

// NextLayersErased is NextLayers for a leakage-modeling source: the
// same round with every leak harvested as a located fault, in the same
// fixed draw order as the toric extract.Source.NextLayersErased (see
// there for the full semantics). eraH is qubit-major (Qubits() planes),
// lostX/lostZ are check-major (Checks() planes each).
func (s *CircuitSource) NextLayersErased(layerX, layerZ, eraH, lostX, lostZ []bits.Vec) {
	nq, nc := s.code.Qubits(), s.code.Checks()
	lk := s.sim.PlanesLeak(nq + 2*nc)
	for e := 0; e < nq; e++ {
		eraH[e].CopyFrom(lk[e])
		s.sim.ReplaceLeaked(e, eraH[e])
	}
	s.genericRound()
	for e := 0; e < nq; e++ {
		eraH[e].Or(lk[e])
	}
	for c := 0; c < nc; c++ {
		lostX[c].CopyFrom(lk[s.ancP(c)])
		lostZ[c].CopyFrom(lk[s.ancS(c)])
	}
	s.diff.Emit(layerX, layerZ)
	s.rounds++
}

// CloseLayers writes the closing perfect round's difference layers: the
// true syndromes of the accumulated data-qubit errors, computed
// directly from the simulator's frame planes — no circuit, no faults.
func (s *CircuitSource) CloseLayers(layerX, layerZ []bits.Vec) {
	nq := s.code.Qubits()
	s.code.CheckPlanes(false, s.sim.PlanesX(nq), s.diff.CurX())
	s.code.CheckPlanes(true, s.sim.PlanesZ(nq), s.diff.CurZ())
	s.diff.Emit(layerX, layerZ)
}

// Windings accumulates the logical-failure-detector parities of the
// accumulated data-error chains (residual ancilla frames are
// irrelevant — ancillas are re-prepared every round).
func (s *CircuitSource) Windings(pX1, pX2, pZ1, pZ2 bits.Vec) {
	nq := s.code.Qubits()
	s.code.LogicalPlanes(false, s.sim.PlanesX(nq), pX1, pX2)
	s.code.LogicalPlanes(true, s.sim.PlanesZ(nq), pZ1, pZ2)
}

// ErrorPlanes returns the live accumulated data-error planes of the two
// sectors (qubit-major). Read-only views for validation harnesses.
func (s *CircuitSource) ErrorPlanes() (x, z []bits.Vec) {
	nq := s.code.Qubits()
	return s.sim.PlanesX(nq), s.sim.PlanesZ(nq)
}

// LocationsPerRound returns the number of fault locations one
// extraction round of the code executes (the ArmTrigger coordinate
// system of the single-fault enumeration): one storage step per data
// qubit plus, per check of either sector, prep + one CNOT per support
// qubit + meas. For the torus this is the familiar 2L² + 12L².
func LocationsPerRound(code Code) int {
	sch := code.ExtractionSchedule()
	n := code.Qubits()
	for _, orders := range [2][][4]int{sch.Plaq, sch.Star} {
		for _, ord := range orders {
			n += 2
			for _, q := range ord {
				if q >= 0 {
					n++
				}
			}
		}
	}
	return n
}
