package surface_test

// The refactor contract: the toric lattice behind the surface.Code
// interface must be bit-identical to the legacy toric pipelines. The
// code-generic sources replay the exact draw order of their
// predecessors, so seeding both sides identically must produce the
// same layers, the same accumulated errors, and the same windings —
// not just statistically, but bit for bit.

import (
	"reflect"
	"testing"

	"ftqc/internal/bits"
	"ftqc/internal/extract"
	"ftqc/internal/frame"
	"ftqc/internal/noise"
	"ftqc/internal/spacetime"
	"ftqc/internal/surface"
	"ftqc/internal/toric"
)

func TestToricScheduleSingleSource(t *testing.T) {
	for _, l := range []int{3, 4, 5} {
		es := extract.Sched(l)
		cs := toric.Cached(l).ExtractionSchedule()
		if !reflect.DeepEqual(es.Plaq, cs.Plaq) || !reflect.DeepEqual(es.Star, cs.Star) {
			t.Fatalf("L=%d: extract.Sched CNOT orders diverge from the lattice's ExtractionSchedule", l)
		}
		if !reflect.DeepEqual(es.DiagX, cs.DiagX) || !reflect.DeepEqual(es.DiagZ, cs.DiagZ) {
			t.Fatalf("L=%d: extract.Sched diagonal classes diverge from the lattice's ExtractionSchedule", l)
		}
	}
}

type layerFeed interface {
	NextLayers(layerX, layerZ []bits.Vec)
	CloseLayers(layerX, layerZ []bits.Vec)
	Windings(pX1, pX2, pZ1, pZ2 bits.Vec)
	ErrorPlanes() (x, z []bits.Vec)
}

// feedsBitIdentical drives two layer feeds through `rounds` noisy
// rounds plus the closing round and asserts identical output at every
// step.
func feedsBitIdentical(t *testing.T, what string, a, b layerFeed, nc, lanes, rounds int) {
	t.Helper()
	la := [2][]bits.Vec{bits.NewVecs(nc, lanes), bits.NewVecs(nc, lanes)}
	lb := [2][]bits.Vec{bits.NewVecs(nc, lanes), bits.NewVecs(nc, lanes)}
	step := func(r int) {
		t.Helper()
		for s := 0; s < 2; s++ {
			for c := 0; c < nc; c++ {
				if !la[s][c].Equal(lb[s][c]) {
					t.Fatalf("%s: round %d sector %d check %d layers diverge", what, r, s, c)
				}
			}
		}
	}
	for r := 0; r < rounds; r++ {
		a.NextLayers(la[0], la[1])
		b.NextLayers(lb[0], lb[1])
		step(r)
	}
	a.CloseLayers(la[0], la[1])
	b.CloseLayers(lb[0], lb[1])
	step(rounds)
	ax, az := a.ErrorPlanes()
	bx, bz := b.ErrorPlanes()
	for e := range ax {
		if !ax[e].Equal(bx[e]) || !az[e].Equal(bz[e]) {
			t.Fatalf("%s: accumulated error planes diverge at qubit %d", what, e)
		}
	}
	wa := [4]bits.Vec{bits.NewVec(lanes), bits.NewVec(lanes), bits.NewVec(lanes), bits.NewVec(lanes)}
	wb := [4]bits.Vec{bits.NewVec(lanes), bits.NewVec(lanes), bits.NewVec(lanes), bits.NewVec(lanes)}
	a.Windings(wa[0], wa[1], wa[2], wa[3])
	b.Windings(wb[0], wb[1], wb[2], wb[3])
	for i := range wa {
		if !wa[i].Equal(wb[i]) {
			t.Fatalf("%s: winding parities diverge (detector %d)", what, i)
		}
	}
}

func TestToricLayerSourceBitIdentical(t *testing.T) {
	const l, lanes, rounds = 4, 192, 5
	lat := toric.Cached(l)
	generic := surface.NewLayerSource(lat, 0.02, 0.01, lanes, frame.NewAggregateSampler(41, 0))
	legacy := spacetime.NewLayerSource(l, 0.02, 0.01, lanes, frame.NewAggregateSampler(41, 0))
	feedsBitIdentical(t, "phenomenological toric", generic, legacy, lat.NumChecks(), lanes, rounds)
}

func TestToricCircuitSourceBitIdentical(t *testing.T) {
	const l, lanes, rounds = 4, 192, 5
	lat := toric.Cached(l)
	P := noise.Uniform(0.004)
	generic := surface.NewCircuitSource(lat, P, lanes, frame.NewAggregateSampler(43, 0))
	legacy := extract.NewSource(l, P, lanes, frame.NewAggregateSampler(43, 0))
	feedsBitIdentical(t, "circuit-level toric", generic, legacy, lat.NumChecks(), lanes, rounds)
}
