package surface_test

import (
	"testing"

	"ftqc/internal/bits"
	"ftqc/internal/decoder"
	"ftqc/internal/frame"
	"ftqc/internal/surface"
	"ftqc/internal/toric"
)

// codesUnderTest returns one instance of every family behind the
// contract, small enough for exhaustive checks.
func codesUnderTest() []surface.Code {
	return []surface.Code{
		toric.Cached(4),
		surface.Planar(2),
		surface.Planar(3),
		surface.Planar(4),
		surface.Rotated(3),
		surface.Rotated(5),
	}
}

func TestConstructionInvariants(t *testing.T) {
	for _, d := range []int{2, 3, 4, 5} {
		c := surface.Planar(d)
		if got, want := c.Qubits(), d*d+(d-1)*(d-1); got != want {
			t.Errorf("planar d=%d: %d qubits, want d²+(d−1)² = %d", d, got, want)
		}
		if got, want := c.Checks(), d*(d-1); got != want {
			t.Errorf("planar d=%d: %d checks per sector, want d(d−1) = %d", d, got, want)
		}
	}
	for _, d := range []int{3, 5, 7} {
		c := surface.Rotated(d)
		if got, want := c.Qubits(), d*d; got != want {
			t.Errorf("rotated d=%d: %d qubits, want d² = %d", d, got, want)
		}
		if got, want := c.Checks(), (d*d-1)/2; got != want {
			t.Errorf("rotated d=%d: %d checks per sector, want (d²−1)/2 = %d", d, got, want)
		}
	}
	for _, c := range codesUnderTest() {
		name, d := c.CodeName(), c.Distance()
		open := c.CodeName() != "toric"
		if c.Open() != open {
			t.Errorf("%s d=%d: Open() = %v", name, d, c.Open())
		}
		wantDet := 2
		if open {
			wantDet = 1
		}
		for _, dual := range []bool{false, true} {
			g := c.SectorGraph(dual)
			wantNodes := c.Checks()
			if open {
				wantNodes++
			}
			if g.Nodes() != wantNodes {
				t.Errorf("%s d=%d dual=%v: sector graph has %d nodes, want %d", name, d, dual, g.Nodes(), wantNodes)
			}
			if g.Edges() != c.Qubits() {
				t.Errorf("%s d=%d dual=%v: sector graph has %d edges, want one per qubit (%d)", name, d, dual, g.Edges(), c.Qubits())
			}
			sups := c.LogicalSupports(dual)
			if len(sups) != wantDet {
				t.Errorf("%s d=%d dual=%v: %d failure detectors, want %d", name, d, dual, len(sups), wantDet)
			}
			for i, sup := range sups {
				if len(sup) < d {
					t.Errorf("%s d=%d dual=%v: detector %d has weight %d < distance", name, d, dual, i, len(sup))
				}
			}
		}
		sch := c.ExtractionSchedule()
		if len(sch.Plaq) != c.Checks() || len(sch.Star) != c.Checks() {
			t.Errorf("%s d=%d: schedule has %d/%d check orders, want %d", name, d, len(sch.Plaq), len(sch.Star), c.Checks())
		}
		if len(sch.DiagX) != c.Qubits() || len(sch.DiagZ) != c.Qubits() {
			t.Errorf("%s d=%d: schedule has %d/%d diagonal entries, want %d", name, d, len(sch.DiagX), len(sch.DiagZ), c.Qubits())
		}
		trunc := 0
		for _, diag := range [][][2]int32{sch.DiagX, sch.DiagZ} {
			for _, pr := range diag {
				if pr[1] < 0 {
					trunc++
				}
			}
		}
		if open && trunc == 0 {
			t.Errorf("%s d=%d: open code has no boundary-truncated diagonals", name, d)
		}
		if !open && trunc != 0 {
			t.Errorf("%s d=%d: closed code has %d truncated diagonals", name, d, trunc)
		}
	}
}

// TestScheduleMatchesGraph pins the schedule and the sector graph to
// each other: the CNOT readers of data qubit q are exactly edge q's
// detector endpoints, and the diagonal pair is those readers ordered
// late-first (a single reader pairs with the boundary in the graph and
// carries −1 in the diagonal class).
func TestScheduleMatchesGraph(t *testing.T) {
	for _, c := range codesUnderTest() {
		sch := c.ExtractionSchedule()
		for s, diag := range [][][2]int32{sch.DiagX, sch.DiagZ} {
			dual := s == 1
			g := c.SectorGraph(dual)
			for q := 0; q < c.Qubits(); q++ {
				a, b := g.Ends(q)
				la, ea := int(diag[q][0]), int(diag[q][1])
				switch {
				case ea < 0:
					if !c.Open() || b != c.Checks() && a != c.Checks() {
						t.Fatalf("%s d=%d dual=%v qubit %d: truncated diagonal but edge (%d,%d) does not ground",
							c.CodeName(), c.Distance(), dual, q, a, b)
					}
					if la != a && la != b {
						t.Fatalf("%s d=%d dual=%v qubit %d: truncated reader %d not an endpoint of edge (%d,%d)",
							c.CodeName(), c.Distance(), dual, q, la, a, b)
					}
				case la == a && ea == b, la == b && ea == a:
				default:
					t.Fatalf("%s d=%d dual=%v qubit %d: diagonal {%d,%d} does not match edge (%d,%d)",
						c.CodeName(), c.Distance(), dual, q, la, ea, a, b)
				}
			}
		}
	}
}

func TestReaderPairs(t *testing.T) {
	// Two readers at distinct steps: late (larger step) listed first.
	pairs := surface.ReaderPairs([][4]int{{0, -1, -1, -1}, {-1, -1, -1, 0}}, 1)
	if pairs[0] != [2]int32{1, 0} {
		t.Errorf("two-reader qubit: pairs = %v, want {1 0} (late first)", pairs[0])
	}
	// Single reader: truncated entry.
	pairs = surface.ReaderPairs([][4]int{{-1, 0, -1, -1}}, 1)
	if pairs[0] != [2]int32{0, -1} {
		t.Errorf("single-reader qubit: pairs = %v, want {0 -1}", pairs[0])
	}
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	mustPanic("unread qubit", func() {
		surface.ReaderPairs([][4]int{{0, -1, -1, -1}}, 2)
	})
	mustPanic("three readers", func() {
		surface.ReaderPairs([][4]int{{0, -1, -1, -1}, {-1, 0, -1, -1}, {-1, -1, 0, -1}}, 1)
	})
	mustPanic("same-step readers", func() {
		surface.ReaderPairs([][4]int{{0, -1, -1, -1}, {0, -1, -1, -1}}, 1)
	})
}

// TestSingleError2DSoundness decodes every single data-qubit error of
// every family in both sectors and asserts the decode-residual chain:
// the correction's residual against the injected error is syndrome-free
// and carries no logical error. Open-boundary codes route chains into
// the virtual boundary node, so this exercises the grounded clusters.
func TestSingleError2DSoundness(t *testing.T) {
	for _, c := range codesUnderTest() {
		for _, dual := range []bool{false, true} {
			g := c.SectorGraph(dual)
			uf := decoder.NewUnionFind(g)
			errv := bits.NewVec(c.Qubits())
			corr := bits.NewVec(c.Qubits())
			for q := 0; q < c.Qubits(); q++ {
				errv.Clear()
				errv.Flip(q)
				defects := sectorSyndrome(c, dual, errv)
				corr.Clear()
				uf.Decode(defects, func(e int) { corr.Flip(e) })
				corr.Xor(errv)
				if res := sectorSyndrome(c, dual, corr); len(res) != 0 {
					t.Fatalf("%s d=%d dual=%v qubit %d: residual carries syndrome %v",
						c.CodeName(), c.Distance(), dual, q, res)
				}
				if c.Distance() >= 3 {
					if p1, p2 := c.LogicalParity(dual, corr); p1 || p2 {
						t.Fatalf("%s d=%d dual=%v qubit %d: single error decoded into a logical",
							c.CodeName(), c.Distance(), dual, q)
					}
				}
			}
		}
	}
}

// sectorSyndrome computes the defect set of an error chain from the
// sector graph (boundary node excluded — it absorbs parity).
func sectorSyndrome(c surface.Code, dual bool, errv bits.Vec) []int {
	g := c.SectorGraph(dual)
	syn := make([]bool, c.Checks())
	for q := 0; q < c.Qubits(); q++ {
		if !errv.Get(q) {
			continue
		}
		a, b := g.Ends(q)
		if a < c.Checks() {
			syn[a] = !syn[a]
		}
		if b < c.Checks() {
			syn[b] = !syn[b]
		}
	}
	var defects []int
	for cix, on := range syn {
		if on {
			defects = append(defects, cix)
		}
	}
	return defects
}

// TestCheckPlanesMatchesSyndrome pins the batched CheckPlanes hook to
// the graph-derived syndrome on random error planes.
func TestCheckPlanesMatchesSyndrome(t *testing.T) {
	const lanes = 64
	for _, c := range codesUnderTest() {
		smp := frame.NewAggregateSampler(11, 0)
		active := bits.NewVec(lanes)
		active.SetAll()
		planes := bits.NewVecs(c.Qubits(), lanes)
		for q := range planes {
			smp.Bernoulli(0.2, active, planes[q])
		}
		checks := bits.NewVecs(c.Checks(), lanes)
		errv := bits.NewVec(c.Qubits())
		for _, dual := range []bool{false, true} {
			c.CheckPlanes(dual, planes, checks)
			for lane := 0; lane < lanes; lane++ {
				errv.Clear()
				for q := range planes {
					if planes[q].Get(lane) {
						errv.Flip(q)
					}
				}
				want := sectorSyndrome(c, dual, errv)
				got := make([]int, 0, len(want))
				for cix := 0; cix < c.Checks(); cix++ {
					if checks[cix].Get(lane) {
						got = append(got, cix)
					}
				}
				if len(got) != len(want) {
					t.Fatalf("%s d=%d dual=%v lane %d: CheckPlanes %v, graph syndrome %v",
						c.CodeName(), c.Distance(), dual, lane, got, want)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s d=%d dual=%v lane %d: CheckPlanes %v, graph syndrome %v",
							c.CodeName(), c.Distance(), dual, lane, got, want)
					}
				}
			}
		}
	}
}

func TestMemoryExperimentXZ(t *testing.T) {
	// Zero noise: zero failures, for every family.
	for _, c := range codesUnderTest() {
		r := surface.MemoryExperimentXZ(c, 0, 512, 3)
		if r.Failures != 0 || r.FailX != 0 || r.FailZ != 0 {
			t.Errorf("%s d=%d: failures at p=0: %+v", c.CodeName(), c.Distance(), r)
		}
		if r.Code != c.CodeName() || r.D != c.Distance() || r.Samples != 512 {
			t.Errorf("%s: result header %+v", c.CodeName(), r)
		}
	}
	// Determinism: same seed, same counts.
	a := surface.MemoryExperimentXZ(surface.Planar(3), 0.05, 4096, 17)
	b := surface.MemoryExperimentXZ(surface.Planar(3), 0.05, 4096, 17)
	if a != b {
		t.Errorf("planar memory not deterministic: %+v vs %+v", a, b)
	}
	if a.Failures == 0 {
		t.Errorf("planar d=3 at p=0.05: no failures in %d samples — detector wiring suspect", a.Samples)
	}
	// Below threshold, distance should help (2D threshold ≈ 10%).
	big := surface.MemoryExperimentXZ(surface.Rotated(7), 0.03, 4096, 19)
	small := surface.MemoryExperimentXZ(surface.Rotated(3), 0.03, 4096, 19)
	if big.FailRate() >= small.FailRate() {
		t.Errorf("rotated at p=0.03: d=7 rate %.4f not below d=3 rate %.4f", big.FailRate(), small.FailRate())
	}
}
