package surface

import "sync"

// Rotated surface codes: d² data qubits on a d×d grid (odd d), checks
// on the (d+1)×(d+1) cell lattice between them — Z-type where the cell
// coordinate sum is even, X-type where it is odd, corners dropped, and
// only every other weight-2 cell kept along each boundary (X along the
// top and bottom rows, Z along the left and right columns), for
// (d²−1)/2 checks per sector. This is the ~2× qubit saving over the
// planar layout at equal distance. Logical X runs down the left
// column, logical Z along the top row, mirroring the planar detectors.

// rotatedCache memoizes constructed rotated codes by distance.
var rotatedCache sync.Map // int → *openCode

// Rotated returns the memoized distance-d rotated surface code (odd
// d ≥ 3), shared across callers.
func Rotated(d int) Code {
	if v, ok := rotatedCache.Load(d); ok {
		return v.(*openCode)
	}
	c := newRotated(d)
	v, _ := rotatedCache.LoadOrStore(d, c)
	return v.(*openCode)
}

func newRotated(d int) *openCode {
	if d < 3 || d%2 == 0 {
		panic("surface: rotated distance must be odd and at least 3")
	}
	nq := d * d
	at := func(i, j int) int {
		if i < 0 || i >= d || j < 0 || j >= d {
			return -1
		}
		return i*d + j
	}
	// Cell a(i,j) covers the data square {(i−1,j−1)..(i,j)}. Its
	// corners in grid order: NW=(i−1,j−1), NE=(i−1,j), SW=(i,j−1),
	// SE=(i,j). The orders are chosen for hook alignment — an ancilla
	// fault mid-schedule spreads to the corners of the remaining
	// steps, and the dangerous weight-2 hook {step 2, step 3} must
	// run perpendicular to the logical its sector's errors could
	// complete. Z-cell hooks are Z errors (dangerous horizontally — Z
	// chains end on the left/right columns), so Z cells read in N
	// order (NW, SW, NE, SE) and hook vertically; X-cell hooks are X
	// errors (dangerous vertically), so X cells read in Z order
	// (NW, NE, SW, SE) and hook horizontally. Either order reads the
	// diagonal Z/X reader pair of every data qubit at distinct steps.
	var zSup, xSup [][]int
	var zOrd, xOrd [][4]int
	for i := 0; i <= d; i++ {
		for j := 0; j <= d; j++ {
			ztype := (i+j)%2 == 0
			// Boundary rows keep only X cells, boundary columns only Z
			// cells; corners (needing both) drop out.
			if (i == 0 || i == d) && ztype {
				continue
			}
			if (j == 0 || j == d) && !ztype {
				continue
			}
			nw, ne := at(i-1, j-1), at(i-1, j)
			sw, se := at(i, j-1), at(i, j)
			var ord [4]int
			if ztype {
				ord = [4]int{nw, sw, ne, se}
			} else {
				ord = [4]int{nw, ne, sw, se}
			}
			sup := make([]int, 0, 4)
			for _, q := range ord {
				if q >= 0 {
					sup = append(sup, q)
				}
			}
			if ztype {
				zSup = append(zSup, sup)
				zOrd = append(zOrd, ord)
			} else {
				xSup = append(xSup, sup)
				xOrd = append(xOrd, ord)
			}
		}
	}
	// Failure detectors: supp(Z_L) = top row, supp(X_L) = left column.
	detX := make([]int, d)
	detZ := make([]int, d)
	for k := 0; k < d; k++ {
		detX[k] = k
		detZ[k] = k * d
	}
	return newOpenCode("rotated", d, nq, zSup, xSup, zOrd, xOrd, detX, detZ)
}
