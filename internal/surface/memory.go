package surface

import (
	"ftqc/internal/bits"
	"ftqc/internal/decoder"
	"ftqc/internal/frame"
)

// BatchMemoryXZ runs `lanes` shots of the 2D dual-sector passive-memory
// experiment for any Code: independent bit-flip (X) and phase-flip (Z)
// errors with probability p per data qubit, each sector's syndromes
// decoded by weighted union-find over its sector graph (boundary-
// grounded for open codes), logical failure read off the code's
// failure detectors. Draw order: all X qubit planes in qubit order,
// then all Z qubit planes — the toric BatchMemoryXZ discipline.
func BatchMemoryXZ(code Code, p float64, lanes int, smp frame.Sampler) (failX, failZ bits.Vec) {
	nq, nc := code.Qubits(), code.Checks()
	active := bits.NewVec(lanes)
	active.SetAll()
	xp := bits.NewVecs(nq, lanes)
	for e := 0; e < nq; e++ {
		smp.Bernoulli(p, active, xp[e])
	}
	zp := bits.NewVecs(nq, lanes)
	for e := 0; e < nq; e++ {
		smp.Bernoulli(p, active, zp[e])
	}
	checks := bits.NewVecs(nc, lanes)
	syn := bits.NewVecs(lanes, nc)
	failX = bits.NewVec(lanes)
	failZ = bits.NewVec(lanes)
	p1 := bits.NewVec(lanes)
	p2 := bits.NewVec(lanes)

	code.CheckPlanes(false, xp, checks)
	code.LogicalPlanes(false, xp, p1, p2)
	bits.TransposePlanes(syn, checks)
	decodeLanes(code, false, syn, p1, p2, failX)

	p1.Clear()
	p2.Clear()
	code.CheckPlanes(true, zp, checks)
	code.LogicalPlanes(true, zp, p1, p2)
	bits.TransposePlanes(syn, checks)
	decodeLanes(code, true, syn, p1, p2, failZ)
	return failX, failZ
}

// decodeLanes is the worker-pool decode stage over word-aligned lane
// spans, the discipline every batch pipeline shares: each span owns
// its failure-mask words outright and its own union-find instance, so
// the result is bit-identical for any worker count.
func decodeLanes(code Code, dual bool, syn []bits.Vec, p1, p2, out bits.Vec) {
	g := code.SectorGraph(dual)
	frame.ForEachLaneSpan(len(syn), func(lo, hi int) {
		uf := decoder.NewUnionFind(g)
		corr := bits.NewVec(code.Qubits())
		var defects []int
		for lane := lo; lane < hi; lane++ {
			defects = syn[lane].AppendSupport(defects[:0])
			l1 := p1.Get(lane)
			l2 := p2.Get(lane)
			if len(defects) > 0 {
				corr.Clear()
				uf.Decode(defects, func(e int) { corr.Flip(e) })
				c1, c2 := code.LogicalParity(dual, corr)
				l1 = l1 != c1
				l2 = l2 != c2
			}
			if l1 || l2 {
				out.Set(lane, true)
			}
		}
	})
}

// MemoryResult summarizes a code-parameterized 2D memory run.
type MemoryResult struct {
	Code     string
	D        int
	P        float64
	Samples  int
	FailX    int
	FailZ    int
	Failures int // shots failing in either sector
}

// FailRate returns the either-sector logical failure probability.
func (r MemoryResult) FailRate() float64 { return float64(r.Failures) / float64(r.Samples) }

// MemoryExperimentXZ runs the 2D dual-sector memory experiment for any
// Code, fanned out over the CPUs in deterministic seed-per-chunk
// batches.
func MemoryExperimentXZ(code Code, p float64, samples int, seed uint64) MemoryResult {
	fx, fz, fa := frame.CountSectorFailures(samples, seed, func(lanes int, smp frame.Sampler) (bits.Vec, bits.Vec) {
		return BatchMemoryXZ(code, p, lanes, smp)
	})
	return MemoryResult{Code: code.CodeName(), D: code.Distance(), P: p, Samples: samples,
		FailX: fx, FailZ: fz, Failures: fa}
}
