// Package surface is the code-abstraction layer between stabilizer
// code families and the decoding pipelines: a Code exposes its
// per-sector detector graphs, logical-failure detectors, batched
// syndrome hooks and a circuit-level extraction schedule, and every
// downstream stage — 2D batch memory, space-time volumes, streaming
// windows, the multi-tenant decode server — is written against that
// contract instead of against the torus.
//
// Three families live behind the contract: the toric code (closed
// boundaries, two failure detectors per sector — internal/toric
// implements Code directly), the planar surface code with rough and
// smooth boundaries, and the rotated-lattice variant with roughly half
// the physical qubits per distance. Open-boundary codes ground their
// boundary qubits on a virtual detector node (index Checks()), the
// same grounded-cluster machinery the sliding decode window already
// uses at its open future edge, so the union-find decoder serves every
// family unchanged. Gottesman's survey singles out the planar and
// rotated layouts as the practical substrate for the paper's
// fault-tolerance program; Steane's overhead analysis motivates the
// per-logical-qubit comparisons in cmd/ftqc codes.
package surface

import (
	"ftqc/internal/bits"
	"ftqc/internal/decoder"
)

// Code is the detector-graph contract a code family implements to flow
// through the decoding pipelines. Both error sectors are first-class:
// dual=false selects the primal sector (bit-flip chains, plaquette /
// Z-check detectors), dual=true the dual sector (phase-flip chains,
// star / X-check detectors). Implementations are immutable after
// construction and safely shared across goroutines.
type Code interface {
	// CodeName names the code family ("toric", "planar", "rotated").
	CodeName() string
	// Distance returns the code distance (L for the torus).
	Distance() int
	// Qubits returns the number of data qubits.
	Qubits() int
	// Checks returns the number of checks per sector (equal in both
	// sectors for every family here).
	Checks() int
	// Open reports whether the code has open boundaries. Open sector
	// graphs carry one extra virtual node (index Checks()) that absorbs
	// error chains ending on a boundary.
	Open() bool
	// SectorGraph returns the immutable 2D decoding graph of a sector:
	// detectors are nodes, data qubits are edges (edge ids equal qubit
	// ids). Open codes ground single-reader qubits on the boundary node.
	SectorGraph(dual bool) *decoder.Graph
	// LogicalSupports returns the data-qubit supports of the sector's
	// logical-failure detectors — the fixed qubit sets whose GF(2)
	// parities against a syndrome-free residual decide logical failure.
	// The torus has two (the winding pair); open codes have one.
	LogicalSupports(dual bool) [][]int
	// LogicalParity returns the sector's failure-detector parities of a
	// syndrome-free residual chain. Codes with a single detector return
	// false for the second bit.
	LogicalParity(dual bool, errs bits.Vec) (bool, bool)
	// LogicalPlanes accumulates (XOR) the failure-detector parities of
	// qubit-major error planes into p1 and p2 — the batched
	// LogicalParity. Callers zero p1/p2 first; single-detector codes
	// leave p2 untouched.
	LogicalPlanes(dual bool, planes []bits.Vec, p1, p2 bits.Vec)
	// CheckPlanes fills check-major syndrome planes (one vector per
	// check, one bit per lane) from qubit-major error planes.
	CheckPlanes(dual bool, planes, checks []bits.Vec)
	// ExtractionSchedule returns the code's circuit-level syndrome
	// extraction schedule: per-check CNOT orderings for frame.BatchSim
	// and the derived diagonal (hook) edge classes.
	ExtractionSchedule() *Schedule
}

// Schedule is a code's circuit-level extraction schedule. Plaq and
// Star list, per check of the respective sector, the data qubits it
// reads at CNOT steps 0..3 (−1 = idle step, for weight-2/3 boundary
// checks). DiagX and DiagZ are the derived per-qubit reader pairs
// {late, early}: a data fault between the two reads of round t defects
// the late reader at layer t and the early reader at layer t+1 — the
// diagonal edge class of the space-time volume. A boundary-truncated
// entry ({c, −1}: the qubit has a single reader in that sector) puts
// its lone defect at (c, t+1) and the diagonal edge runs to the
// boundary node instead.
type Schedule struct {
	Plaq, Star   [][4]int
	DiagX, DiagZ [][2]int32
}

// ReaderPairs derives the diagonal edge classes of one sector from its
// CNOT orders: for each of the nq data qubits, the checks that read it,
// as {late reader, early reader} by step (or {reader, −1} for qubits
// with a single reader in the sector — the boundary-truncated class).
// It panics if a qubit is never read, read more than twice, or read
// twice at the same step (a schedule conflict).
func ReaderPairs(orders [][4]int, nq int) [][2]int32 {
	pairs := make([][2]int32, nq)
	steps := make([][2]int8, nq)
	count := make([]uint8, nq)
	for c, ord := range orders {
		for s, q := range ord {
			if q < 0 {
				continue
			}
			if count[q] >= 2 {
				panic("surface: schedule reads a data qubit more than twice")
			}
			pairs[q][count[q]] = int32(c)
			steps[q][count[q]] = int8(s)
			count[q]++
		}
	}
	for q := range pairs {
		switch count[q] {
		case 0:
			panic("surface: schedule never reads a data qubit")
		case 1:
			pairs[q][1] = -1
		default:
			if steps[q][0] == steps[q][1] {
				panic("surface: schedule does not read every qubit at distinct steps")
			}
			if steps[q][0] < steps[q][1] {
				pairs[q][0], pairs[q][1] = pairs[q][1], pairs[q][0]
			}
		}
	}
	return pairs
}

// schedOverride is a Code with its extraction schedule (and name)
// replaced — the vehicle of the CNOT-schedule ablation sweeps. All
// detector-graph behavior delegates to the wrapped code; only the
// circuit-level CNOT orders (and the hook/diagonal classes derived from
// them) differ.
type schedOverride struct {
	Code
	name string
	sch  *Schedule
}

// WithSchedule returns code with its per-check CNOT orders replaced by
// plaq/star and the diagonal reader pairs rederived. The override must
// carry a distinct name: cached decoding volumes are keyed by CodeName,
// and two schedules of the same lattice have different hook geometry —
// a shared cache entry would silently decode one with the other's
// diagonal edges. Panics (via ReaderPairs) if the orders are not a
// valid schedule of the code's qubits.
func WithSchedule(code Code, name string, plaq, star [][4]int) Code {
	if name == code.CodeName() {
		panic("surface: WithSchedule needs a distinct code name (cached volumes are keyed by it)")
	}
	sch := &Schedule{
		Plaq:  plaq,
		Star:  star,
		DiagX: ReaderPairs(plaq, code.Qubits()),
		DiagZ: ReaderPairs(star, code.Qubits()),
	}
	return &schedOverride{Code: code, name: name, sch: sch}
}

// CodeName names the override (distinct from the wrapped code).
func (s *schedOverride) CodeName() string { return s.name }

// ExtractionSchedule returns the overriding schedule.
func (s *schedOverride) ExtractionSchedule() *Schedule { return s.sch }
