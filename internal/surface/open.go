package surface

import (
	"fmt"

	"ftqc/internal/bits"
	"ftqc/internal/decoder"
)

// sector is one error sector of an open-boundary code: the check
// supports, the boundary-grounded 2D decoding graph, and the single
// logical-failure detector.
type sector struct {
	supports [][]int        // per-check data-qubit support (2–4 qubits)
	graph    *decoder.Graph // nc+1 nodes; node nc is the boundary
	det      bits.Vec       // failure-detector support over data qubits
	detSup   []int
}

// openCode is the shared implementation behind the planar and rotated
// surface codes: an open-boundary CSS code whose per-sector data comes
// from the concrete constructor. It is immutable after construction.
type openCode struct {
	name   string
	d      int
	nq, nc int
	sec    [2]sector // [0] primal (Z checks), [1] dual (X checks)
	sched  *Schedule
}

// newOpenCode wires an open-boundary code from its per-sector check
// supports, CNOT orders and failure-detector supports, validating the
// detector-graph contract: both sectors have the same check count,
// every data qubit has one or two readers per sector, and the CNOT
// orders reproduce exactly the check supports.
func newOpenCode(name string, d, nq int, zSup, xSup [][]int, zOrd, xOrd [][4]int, detX, detZ []int) *openCode {
	if len(zSup) != len(xSup) {
		panic(fmt.Sprintf("surface: %s sector check counts differ (%d vs %d)", name, len(zSup), len(xSup)))
	}
	nc := len(zSup)
	c := &openCode{name: name, d: d, nq: nq, nc: nc}
	c.sec[0] = buildSector(name, nq, nc, zSup, detX)
	c.sec[1] = buildSector(name, nq, nc, xSup, detZ)
	c.sched = &Schedule{
		Plaq:  zOrd,
		Star:  xOrd,
		DiagX: ReaderPairs(zOrd, nq),
		DiagZ: ReaderPairs(xOrd, nq),
	}
	for s, ord := range [2][][4]int{zOrd, xOrd} {
		sup := zSup
		if s == 1 {
			sup = xSup
		}
		for ci, o := range ord {
			n := 0
			for _, q := range o {
				if q >= 0 {
					n++
				}
			}
			if n != len(sup[ci]) {
				panic(fmt.Sprintf("surface: %s CNOT order of check %d reads %d qubits, support has %d", name, ci, n, len(sup[ci])))
			}
		}
	}
	return c
}

// buildSector assembles one sector: the boundary-grounded decoding
// graph (edge q connects the readers of data qubit q; a single reader
// pairs with the boundary node nc) and the failure detector.
func buildSector(name string, nq, nc int, supports [][]int, det []int) sector {
	type readers struct {
		n    int
		a, b int32
	}
	rd := make([]readers, nq)
	for c, sup := range supports {
		if len(sup) < 2 || len(sup) > 4 {
			panic(fmt.Sprintf("surface: %s check %d has weight %d, want 2–4", name, c, len(sup)))
		}
		for _, q := range sup {
			switch rd[q].n {
			case 0:
				rd[q].a = int32(c)
			case 1:
				rd[q].b = int32(c)
			default:
				panic(fmt.Sprintf("surface: %s qubit %d has more than two readers in one sector", name, q))
			}
			rd[q].n++
		}
	}
	ends := make([][2]int32, nq)
	for q, r := range rd {
		switch r.n {
		case 1:
			ends[q] = [2]int32{r.a, int32(nc)}
		case 2:
			ends[q] = [2]int32{r.a, r.b}
		default:
			panic(fmt.Sprintf("surface: %s qubit %d has no reader in one sector", name, q))
		}
	}
	s := sector{
		supports: supports,
		graph:    decoder.NewBoundaryGraph(nc+1, ends, nil, []int{nc}),
		det:      bits.NewVec(nq),
		detSup:   det,
	}
	for _, q := range det {
		s.det.Flip(q)
	}
	return s
}

func (c *openCode) sector(dual bool) *sector {
	if dual {
		return &c.sec[1]
	}
	return &c.sec[0]
}

func (c *openCode) CodeName() string { return c.name }

func (c *openCode) Distance() int { return c.d }

func (c *openCode) Qubits() int { return c.nq }

func (c *openCode) Checks() int { return c.nc }

func (c *openCode) Open() bool { return true }

func (c *openCode) SectorGraph(dual bool) *decoder.Graph { return c.sector(dual).graph }

func (c *openCode) LogicalSupports(dual bool) [][]int {
	return [][]int{c.sector(dual).detSup}
}

func (c *openCode) LogicalParity(dual bool, errs bits.Vec) (bool, bool) {
	return errs.Dot(c.sector(dual).det), false
}

func (c *openCode) LogicalPlanes(dual bool, planes []bits.Vec, p1, p2 bits.Vec) {
	for _, q := range c.sector(dual).detSup {
		p1.Xor(planes[q])
	}
}

func (c *openCode) CheckPlanes(dual bool, planes, checks []bits.Vec) {
	for ci, sup := range c.sector(dual).supports {
		cv := checks[ci]
		cv.CopyFrom(planes[sup[0]])
		for _, q := range sup[1:] {
			cv.Xor(planes[q])
		}
	}
}

func (c *openCode) ExtractionSchedule() *Schedule { return c.sched }
