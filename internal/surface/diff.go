package surface

import "ftqc/internal/bits"

// SyndromeDiff double-buffers the check-major observed syndromes of the
// two sectors across extraction rounds and emits the consecutive-round
// difference layers — the shared generation machinery of every layer
// feed (the phenomenological and circuit-level sources of any Code
// both defect on cur XOR prev).
type SyndromeDiff struct {
	prevX, prevZ, curX, curZ []bits.Vec
}

// NewSyndromeDiff returns zeroed buffers for nc checks by `lanes` shots
// (round −1 observes the trivial syndrome).
func NewSyndromeDiff(nc, lanes int) *SyndromeDiff {
	return &SyndromeDiff{
		prevX: bits.NewVecs(nc, lanes),
		prevZ: bits.NewVecs(nc, lanes),
		curX:  bits.NewVecs(nc, lanes),
		curZ:  bits.NewVecs(nc, lanes),
	}
}

// CurX returns the current generation's plaquette-observation planes —
// the feed writes this round's observed syndromes here before Emit.
// Emit swaps generations, so re-fetch the slice every round rather than
// caching it.
func (d *SyndromeDiff) CurX() []bits.Vec { return d.curX }

// CurZ returns the current generation's star-observation planes.
func (d *SyndromeDiff) CurZ() []bits.Vec { return d.curZ }

// Emit writes cur XOR prev into the layer planes (check-major, one
// vector of lane bits per check) and swaps the generations.
func (d *SyndromeDiff) Emit(layerX, layerZ []bits.Vec) {
	for c := range d.curX {
		lx := layerX[c]
		lx.CopyFrom(d.curX[c])
		lx.Xor(d.prevX[c])
		lz := layerZ[c]
		lz.CopyFrom(d.curZ[c])
		lz.Xor(d.prevZ[c])
	}
	d.prevX, d.curX = d.curX, d.prevX
	d.prevZ, d.curZ = d.curZ, d.prevZ
}
