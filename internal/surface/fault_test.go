package surface_test

// Exhaustive single-fault enumeration for the open-boundary families —
// the extract package's "every fault is decodable" property, restated
// for codes whose boundaries absorb parity. One batch run per fault
// component arms every lane's trigger at a different circuit location
// of one full extraction round, covering all LocationsPerRound(code)
// locations in six runs (the X⊗I/I⊗X/X⊗X and Z⊗I/I⊗Z/Z⊗Z components
// span the 15 nontrivial two-qubit Paulis across the two independent
// sectors).
//
// Open codes forgo the toric test's even-defect-parity invariant: a
// fault next to a boundary legitimately lights a single detector and
// the virtual node absorbs the partner. What must still hold is the
// decode-residual chain — decoding the defect set over the
// boundary-grounded diagonal-edge circuit volume yields a correction
// whose residual against the injected error is syndrome-free and
// carries no logical error. The enumeration must also witness both
// diagonal classes: an interior hook pair {(c₁,t), (c₂,t+1)} and a
// boundary-truncated hook (the lone defect of a single-reader qubit).

import (
	"testing"

	"ftqc/internal/bits"
	"ftqc/internal/frame"
	"ftqc/internal/noise"
	"ftqc/internal/spacetime"
	"ftqc/internal/surface"
	"ftqc/internal/toric"
)

type faultComponent struct {
	name           string
	x0, z0, x1, z1 bool // components on the location's first and second qubit
}

var faultComponents = []faultComponent{
	{"XI", true, false, false, false},
	{"IX", false, false, true, false},
	{"XX", true, false, true, false},
	{"ZI", false, true, false, false},
	{"IZ", false, false, false, true},
	{"ZZ", false, true, false, true},
}

func TestSingleFaultEnumerationPlanar(t *testing.T) {
	testSingleFaultEnumeration(t, surface.Planar(3))
	testSingleFaultEnumeration(t, surface.Planar(4))
}

func TestSingleFaultEnumerationRotated(t *testing.T) {
	testSingleFaultEnumeration(t, surface.Rotated(3))
	testSingleFaultEnumeration(t, surface.Rotated(5))
}

func testSingleFaultEnumeration(t *testing.T, code surface.Code) {
	const rounds = 3
	name, nc := code.CodeName(), code.Checks()
	locs := surface.LocationsPerRound(code)
	wh, wv, wd := spacetime.WeightsCircuit(noise.Uniform(0.004), code.Distance(), rounds)
	vol := spacetime.CachedCodeCircuitVolume(code, rounds, wh, wv, wd)
	sch := code.ExtractionSchedule()
	diagSeen, truncSeen := 0, 0
	errv := bits.NewVec(code.Qubits())
	for _, fc := range faultComponents {
		// All noise channels off: the armed trigger is the only fault.
		src := surface.NewCircuitSource(code, noise.Params{}, locs, frame.NewAggregateSampler(21, 1))
		sim := src.Sim()
		for lane := 0; lane < locs; lane++ {
			sim.ArmTrigger(lane, locs+lane) // round 1's location `lane`
		}
		sim.TriggerFault = func(b *frame.BatchSim, lane int, qubits []int) {
			fc := fc
			if fc.x0 {
				b.InjectX(qubits[0], lane)
			}
			if fc.z0 {
				b.InjectZ(qubits[0], lane)
			}
			if len(qubits) > 1 {
				if fc.x1 {
					b.InjectX(qubits[1], lane)
				}
				if fc.z1 {
					b.InjectZ(qubits[1], lane)
				}
			}
		}
		layersX := bits.NewVecs((rounds+1)*nc, locs)
		layersZ := bits.NewVecs((rounds+1)*nc, locs)
		for r := 0; r < rounds; r++ {
			src.NextLayers(layersX[r*nc:(r+1)*nc], layersZ[r*nc:(r+1)*nc])
		}
		src.CloseLayers(layersX[rounds*nc:], layersZ[rounds*nc:])
		synX := bits.NewVecs(locs, (rounds+1)*nc)
		synZ := bits.NewVecs(locs, (rounds+1)*nc)
		bits.TransposePlanes(synX, layersX)
		bits.TransposePlanes(synZ, layersZ)
		cumX, cumZ := src.ErrorPlanes()
		for lane := 0; lane < locs; lane++ {
			dX := synX[lane].Support()
			dZ := synZ[lane].Support()
			diagSeen += countDiagPairs(dX, nc, sch.DiagX) + countDiagPairs(dZ, nc, sch.DiagZ)
			truncSeen += countTruncated(dX, nc, sch.DiagX) + countTruncated(dZ, nc, sch.DiagZ)
			corr := vol.Decode(dX, toric.DecoderUnionFind, false)
			laneResidual(cumX, lane, corr, errv)
			if res := sectorSyndrome(code, false, errv); len(res) != 0 {
				t.Fatalf("%s %s location %d: X residual carries syndrome %v (defects %v)", name, fc.name, lane, res, dX)
			}
			if p1, p2 := code.LogicalParity(false, errv); p1 || p2 {
				t.Fatalf("%s %s location %d: single fault became an X logical (defects %v)", name, fc.name, lane, dX)
			}
			corr = vol.Decode(dZ, toric.DecoderUnionFind, true)
			laneResidual(cumZ, lane, corr, errv)
			if res := sectorSyndrome(code, true, errv); len(res) != 0 {
				t.Fatalf("%s %s location %d: Z residual carries syndrome %v (defects %v)", name, fc.name, lane, res, dZ)
			}
			if p1, p2 := code.LogicalParity(true, errv); p1 || p2 {
				t.Fatalf("%s %s location %d: single fault became a Z logical (defects %v)", name, fc.name, lane, dZ)
			}
		}
	}
	if diagSeen == 0 {
		t.Fatalf("%s: no single fault produced an interior diagonal defect pair", name)
	}
	if truncSeen == 0 {
		t.Fatalf("%s: no single fault produced a boundary-truncated diagonal defect", name)
	}
}

// laneResidual fills errv with lane's accumulated error XOR the decoded
// correction.
func laneResidual(planes []bits.Vec, lane int, corr, errv bits.Vec) {
	errv.Clear()
	for e := range planes {
		if planes[e].Get(lane) {
			errv.Flip(e)
		}
	}
	errv.Xor(corr)
}

// countDiagPairs reports whether a two-defect set is an interior
// diagonal pair of the schedule: consecutive layers, matching some data
// qubit's {late, early} readers.
func countDiagPairs(defects []int, nc int, diag [][2]int32) int {
	if len(defects) != 2 {
		return 0
	}
	a, b := defects[0], defects[1]
	if b/nc-a/nc != 1 || a%nc == b%nc {
		return 0
	}
	for _, pr := range diag {
		if pr[1] >= 0 && int(pr[0]) == a%nc && int(pr[1]) == b%nc {
			return 1
		}
	}
	return 0
}

// countTruncated reports whether a lone defect above layer 0 sits at a
// boundary-truncated diagonal's reader — the hook of a single-reader
// data qubit, whose partner defect fell on the boundary.
func countTruncated(defects []int, nc int, diag [][2]int32) int {
	if len(defects) != 1 || defects[0] < nc {
		return 0
	}
	c := defects[0] % nc
	for _, pr := range diag {
		if pr[1] < 0 && int(pr[0]) == c {
			return 1
		}
	}
	return 0
}
