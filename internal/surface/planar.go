package surface

import "sync"

// Planar codes on a (2d−1)×(2d−1) grid: data qubits sit on positions
// with even coordinate sum (d² + (d−1)² of them), Z checks (plaquettes)
// on (odd row, even column), X checks (stars) on (even row, odd
// column) — d(d−1) checks per sector. The top and bottom rows are
// rough boundaries (Z-check chains may end there: weight-3 plaquettes
// never form, instead the boundary data qubits have a single Z reader),
// the left and right columns are smooth boundaries (single X reader).
// Logical X runs down the left column, logical Z along the top row, so
// the primal failure detector is the top row (the support of Z_L) and
// the dual detector the left column (the support of X_L).

// planarCache memoizes constructed planar codes by distance.
var planarCache sync.Map // int → *openCode

// Planar returns the memoized distance-d planar surface code (d ≥ 2),
// shared across callers.
func Planar(d int) Code {
	if v, ok := planarCache.Load(d); ok {
		return v.(*openCode)
	}
	c := newPlanar(d)
	v, _ := planarCache.LoadOrStore(d, c)
	return v.(*openCode)
}

func newPlanar(d int) *openCode {
	if d < 2 {
		panic("surface: planar distance must be at least 2")
	}
	n := 2*d - 1
	// Data qubits in row-major order over even-coordinate-sum positions.
	qid := make([][]int, n)
	nq := 0
	for r := 0; r < n; r++ {
		qid[r] = make([]int, n)
		for c := 0; c < n; c++ {
			qid[r][c] = -1
			if (r+c)%2 == 0 {
				qid[r][c] = nq
				nq++
			}
		}
	}
	at := func(r, c int) int {
		if r < 0 || r >= n || c < 0 || c >= n {
			return -1
		}
		return qid[r][c]
	}
	// Checks read their grid neighbors with per-sector CNOT orders
	// chosen for hook alignment: an ancilla fault mid-schedule spreads
	// to the data read at the remaining steps, and the dangerous
	// weight-2 hook {step 2, step 3} must run perpendicular to the
	// logical its sector's errors could complete. Plaquette hooks are
	// Z errors (dangerous horizontally — Z chains end on the smooth
	// left/right columns), so Z checks read [left, right, up, down]
	// and hook vertically; star hooks are X errors (dangerous
	// vertically — X chains end on the rough top/bottom rows), so X
	// checks read [up, down, left, right] and hook horizontally.
	// Absent neighbors (boundary checks) idle their step. Both orders
	// give every two-reader qubit distinct steps (the sectors run
	// sequentially, so there are no cross-sector conflicts).
	check := func(r, c int, ord [4]int) ([]int, [4]int) {
		sup := make([]int, 0, 4)
		for _, q := range ord {
			if q >= 0 {
				sup = append(sup, q)
			}
		}
		return sup, ord
	}
	var zSup, xSup [][]int
	var zOrd, xOrd [][4]int
	for r := 1; r < n; r += 2 {
		for c := 0; c < n; c += 2 {
			sup, ord := check(r, c, [4]int{at(r, c-1), at(r, c+1), at(r-1, c), at(r+1, c)})
			zSup = append(zSup, sup)
			zOrd = append(zOrd, ord)
		}
	}
	for r := 0; r < n; r += 2 {
		for c := 1; c < n; c += 2 {
			sup, ord := check(r, c, [4]int{at(r-1, c), at(r+1, c), at(r, c-1), at(r, c+1)})
			xSup = append(xSup, sup)
			xOrd = append(xOrd, ord)
		}
	}
	// Failure detectors: supp(Z_L) = top row, supp(X_L) = left column.
	detX := make([]int, 0, d)
	detZ := make([]int, 0, d)
	for c := 0; c < n; c += 2 {
		detX = append(detX, qid[0][c])
	}
	for r := 0; r < n; r += 2 {
		detZ = append(detZ, qid[r][0])
	}
	return newOpenCode("planar", d, nq, zSup, xSup, zOrd, xOrd, detX, detZ)
}
