package decoder

// DefectGrid is a bucket index over defect coordinates: positions on an
// L×L torus (x and y wrap) crossed with an unwrapped time axis. It
// exists to make sparse-matching candidate enumeration ~O(n·k): instead
// of scanning all n² pairs for the ones within the staging cutoff, each
// defect visits only the grid cells its radius can reach. Iteration
// order is a pure function of the inserted points (cells scan in a
// fixed order, points within a cell in reverse insertion order), so the
// matcher's determinism contract is preserved.
//
// A DefectGrid is per-worker scratch like Matcher and UnionFind: Reset
// + Add rebuild it for each defect set, recycling the arrays.
type DefectGrid struct {
	l, cell    int // torus size and spatial cell edge (lattice units)
	nx         int // cells per spatial axis
	nt         int // time cells
	t0, tcell  int // time-axis origin and cell size
	head       []int32
	next       []int32
	xs, ys, ts []int32
}

// Reset prepares the grid for an L×L torus with spatial cells of edge
// `cell` (clamped to [1, L]) and a time axis covering [tmin, tmax] in
// cells of size tcell (use tmin = tmax = 0, tcell = 1 for 2D sets).
func (g *DefectGrid) Reset(l, cell, tmin, tmax, tcell int) {
	if cell < 1 {
		cell = 1
	}
	if cell > l {
		cell = l
	}
	if tcell < 1 {
		tcell = 1
	}
	g.l, g.cell, g.t0, g.tcell = l, cell, tmin, tcell
	g.nx = (l + cell - 1) / cell
	g.nt = (tmax-tmin)/tcell + 1
	cells := g.nx * g.nx * g.nt
	if cap(g.head) < cells {
		g.head = make([]int32, cells)
	}
	g.head = g.head[:cells]
	for i := range g.head {
		g.head[i] = -1
	}
	g.next = g.next[:0]
	g.xs, g.ys, g.ts = g.xs[:0], g.ys[:0], g.ts[:0]
}

// Add inserts the next point (call in vertex order 0, 1, 2, …). x and y
// must lie in [0, L); t in the Reset time range.
func (g *DefectGrid) Add(x, y, t int) {
	i := int32(len(g.next))
	c := g.cellOf(x, y, t)
	g.next = append(g.next, g.head[c])
	g.head[c] = i
	g.xs = append(g.xs, int32(x))
	g.ys = append(g.ys, int32(y))
	g.ts = append(g.ts, int32(t))
}

func (g *DefectGrid) cellOf(x, y, t int) int {
	return ((t-g.t0)/g.tcell*g.nx+y/g.cell)*g.nx + x/g.cell
}

// VisitWithin calls visit(j) for every point j (including i itself)
// whose torus box distance from point i is within dxy on each spatial
// axis and within dt on the time axis — a superset of any metric ball
// those radii bound. Each point is visited at most once.
func (g *DefectGrid) VisitWithin(i, dxy, dt int, visit func(j int)) {
	xi, yi, ti := int(g.xs[i]), int(g.ys[i]), int(g.ts[i])
	cxLo, cxN := g.spatialRange(xi, dxy)
	cyLo, cyN := g.spatialRange(yi, dxy)
	ctLo := (ti - dt - g.t0) / g.tcell
	if ti-dt < g.t0 {
		ctLo = 0
	}
	ctHi := (ti + dt - g.t0) / g.tcell
	if ctHi >= g.nt {
		ctHi = g.nt - 1
	}
	for ct := ctLo; ct <= ctHi; ct++ {
		for dy := 0; dy < cyN; dy++ {
			cy := cyLo + dy
			if cy >= g.nx {
				cy -= g.nx
			}
			row := (ct*g.nx + cy) * g.nx
			for dx := 0; dx < cxN; dx++ {
				cx := cxLo + dx
				if cx >= g.nx {
					cx -= g.nx
				}
				for j := g.head[row+cx]; j >= 0; j = g.next[j] {
					visit(int(j))
				}
			}
		}
	}
}

// spatialRange returns the first cell and cell count covering the
// wrapped interval [c−r, c+r] on one torus axis without revisiting any
// cell.
func (g *DefectGrid) spatialRange(c, r int) (lo, n int) {
	if 2*r+g.cell >= g.l {
		return 0, g.nx
	}
	lo = ((c-r)%g.l + g.l) % g.l / g.cell
	hi := (c + r) % g.l / g.cell
	n = hi - lo + 1
	if n <= 0 {
		n += g.nx
	}
	return lo, n
}

// MinWeightPairsIndexed is MinWeightPairsPruned with a caller-supplied
// neighbor enumerator, the hook for grid-bucketed staging: near(i, r,
// visit) must call visit(j) at least once for every j ≠ i with
// weight(i, j) ≤ r (supersets are fine — every candidate is re-checked
// against the true weight — but near must be a pure function of i and
// r, and must not visit any j more than once per call). Staging then
// enumerates ~O(n·k) candidate pairs instead of n², and the pricing
// sweep shrinks the same way: a pair excluded by the cutoff can only
// have negative reduced cost within a radius computed from the dual
// variables, so each vertex prices only the candidates inside that
// radius. The optimality certificate is unchanged — the result's total
// weight equals MinWeightPairs' exactly.
func (m *Matcher) MinWeightPairsIndexed(n int, weight func(i, j int) int64, cutoff int64, near func(i int, r int64, visit func(j int))) [][2]int32 {
	if n%2 != 0 {
		panic("decoder: odd vertex count in MinWeightPairsIndexed")
	}
	m.pairs = m.pairs[:0]
	if n == 0 {
		return m.pairs
	}
	if n == 2 {
		return append(m.pairs, [2]int32{0, 1})
	}
	if cutoff < 1 {
		cutoff = 1
	}
	if m.repair == nil {
		m.repair = make(map[int64]bool)
	}
	clear(m.repair)
	m.repairList = m.repairList[:0]
	for {
		// Stage the locally short edges via the enumerator, then the
		// priced-in repairs, with raw weights; the complement base is
		// recomputed per round so complemented weights stay nonnegative.
		m.edgeI, m.edgeJ, m.edgeW = m.edgeI[:0], m.edgeJ[:0], m.edgeW[:0]
		var maxW int64
		stage := func(i, j int, w int64) {
			if w > maxW {
				maxW = w
			}
			m.edgeI = append(m.edgeI, int32(i))
			m.edgeJ = append(m.edgeJ, int32(j))
			m.edgeW = append(m.edgeW, w)
		}
		for i := 0; i < n; i++ {
			near(i, cutoff, func(j int) {
				if j <= i {
					return
				}
				w := weight(i, j)
				if w < 0 {
					panic("decoder: negative weight")
				}
				if w > cutoff || m.repair[int64(i)*int64(n)+int64(j)] {
					return
				}
				stage(i, j, w)
			})
		}
		for _, pr := range m.repairList {
			stage(int(pr[0]), int(pr[1]), weight(int(pr[0]), int(pr[1])))
		}
		for k := range m.edgeW {
			m.edgeW[k] = 2 * (maxW - m.edgeW[k])
		}
		mate := m.blossom.maxWeightMatching(n, m.edgeI, m.edgeJ, m.edgeW)
		perfect := true
		for v := 0; v < n; v++ {
			if mate[v] < 0 {
				perfect = false
				break
			}
		}
		if !perfect {
			// Too sparse to pair everyone: widen and retry (bounded —
			// the complete graph always matches).
			cutoff *= 2
			continue
		}
		// Pricing: an excluded edge (i, j) improves the matching only if
		// dual[i] + dual[j] − 4·(maxW − w) < 0, i.e. only if its weight
		// is under maxW − (dual[i] + dual[j])/4. Bounding dual[j] by the
		// global minimum turns that into a per-vertex radius, so the
		// enumerator prunes the sweep to the candidates that could
		// possibly violate; each one is then checked exactly. No
		// violations certifies optimality against the complete graph
		// (blossom duals are nonnegative, so the vertex-dual test is
		// conservative).
		dual := m.blossom.dualvar
		dmin := dual[0]
		for v := 1; v < n; v++ {
			if dual[v] < dmin {
				dmin = dual[v]
			}
		}
		violated := false
		for i := 0; i < n; i++ {
			r := maxW - floorDiv(dual[i]+dmin, 4)
			if r <= cutoff {
				continue
			}
			near(i, r, func(j int) {
				if j <= i {
					return
				}
				w := weight(i, j)
				if w <= cutoff || m.repair[int64(i)*int64(n)+int64(j)] {
					return
				}
				if dual[i]+dual[j]-4*(maxW-w) < 0 {
					m.repair[int64(i)*int64(n)+int64(j)] = true
					m.repairList = append(m.repairList, [2]int32{int32(i), int32(j)})
					violated = true
				}
			})
		}
		if violated {
			continue
		}
		for v := 0; v < n; v++ {
			if w := mate[v]; int32(v) < w {
				m.pairs = append(m.pairs, [2]int32{int32(v), w})
			}
		}
		return m.pairs
	}
}

// floorDiv is floored (not truncated) integer division for possibly
// negative numerators — the pricing radius must round toward −∞ to stay
// a superset.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
