package decoder

import (
	"errors"
	"math/rand/v2"
	"sync"
	"testing"
)

// torusTestGraph is a small unit-weight toric-like grid (wrapping in
// both directions) for service tests: node (x,y) on an n×n torus,
// horizontal and vertical edges.
func torusTestGraph(n int) *Graph {
	idx := func(x, y int) int32 { return int32((y%n)*n + x%n) }
	var ends [][2]int32
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			ends = append(ends, [2]int32{idx(x, y), idx(x+1, y)})
			ends = append(ends, [2]int32{idx(x, y), idx(x, y+1)})
		}
	}
	return NewGraph(n*n, ends)
}

// randomShots builds valid defect sets (syndromes of random edge
// patterns) plus occasional erasure lists.
func randomShots(g *Graph, count int, rng *rand.Rand) []Shot {
	shots := make([]Shot, count)
	for s := range shots {
		par := make([]bool, g.Nodes())
		var erased []int
		for e := 0; e < g.Edges(); e++ {
			if rng.Float64() < 0.08 {
				a, b := g.Ends(e)
				par[a] = !par[a]
				par[b] = !par[b]
			}
			if rng.Float64() < 0.03 {
				erased = append(erased, e)
			}
		}
		var defects []int
		for v, p := range par {
			if p {
				defects = append(defects, v)
			}
		}
		if s%3 == 0 {
			shots[s] = Shot{Defects: defects, Erased: erased}
		} else {
			shots[s] = Shot{Defects: defects}
		}
	}
	return shots
}

// mustDecode fails the test on a submission error — for tests where the
// service is known to be open.
func mustDecode(t *testing.T, svc *Service, shots []Shot) [][]int32 {
	t.Helper()
	out, err := svc.Decode(shots)
	if err != nil {
		t.Fatalf("Decode on open service: %v", err)
	}
	return out
}

// TestServiceMatchesDirectDecode: the service must return exactly what
// a private UnionFind emits for every shot, in order.
func TestServiceMatchesDirectDecode(t *testing.T) {
	g := torusTestGraph(6)
	rng := rand.New(rand.NewPCG(81, 82))
	shots := randomShots(g, 137, rng)
	svc := NewService(g, 3)
	defer svc.Close()
	got := mustDecode(t, svc, shots)
	uf := NewUnionFind(g)
	for i, shot := range shots {
		var want []int32
		uf.DecodeErased(shot.Defects, shot.Erased, func(e int) { want = append(want, int32(e)) })
		if len(got[i]) != len(want) {
			t.Fatalf("shot %d: %d edges, want %d", i, len(got[i]), len(want))
		}
		for k := range want {
			if got[i][k] != want[k] {
				t.Fatalf("shot %d: edge %d is %d, want %d", i, k, got[i][k], want[k])
			}
		}
	}
}

// TestServiceWorkerCountInvariant: any pool size produces bit-identical
// corrections.
func TestServiceWorkerCountInvariant(t *testing.T) {
	g := torusTestGraph(5)
	rng := rand.New(rand.NewPCG(83, 84))
	shots := randomShots(g, 200, rng)
	var ref [][]int32
	for _, workers := range []int{1, 2, 7, 16} {
		svc := NewService(g, workers)
		out := mustDecode(t, svc, shots)
		svc.Close()
		if ref == nil {
			ref = out
			continue
		}
		for i := range ref {
			if len(out[i]) != len(ref[i]) {
				t.Fatalf("workers=%d shot %d: edge count differs", workers, i)
			}
			for k := range ref[i] {
				if out[i][k] != ref[i][k] {
					t.Fatalf("workers=%d shot %d: edge %d differs", workers, i, k)
				}
			}
		}
	}
}

// TestServiceConcurrentSubmitters: many goroutines sharing one service
// each get their own batch's deterministic answer (also the race-mode
// smoke for the worker pool).
func TestServiceConcurrentSubmitters(t *testing.T) {
	g := torusTestGraph(6)
	svc := NewService(g, 4)
	defer svc.Close()
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(85, uint64(c)))
			shots := randomShots(g, 64, rng)
			out, err := svc.Decode(shots)
			if err != nil {
				t.Errorf("submitter %d: %v", c, err)
				return
			}
			uf := NewUnionFind(g)
			for i, shot := range shots {
				var want []int32
				uf.DecodeErased(shot.Defects, shot.Erased, func(e int) { want = append(want, int32(e)) })
				if len(out[i]) != len(want) {
					t.Errorf("submitter %d shot %d: %d edges, want %d", c, i, len(out[i]), len(want))
					return
				}
				for k := range want {
					if out[i][k] != want[k] {
						t.Errorf("submitter %d shot %d: edge %d differs", c, i, k)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
}

// TestServiceEmptyBatch: zero shots complete immediately.
func TestServiceEmptyBatch(t *testing.T) {
	g := torusTestGraph(4)
	svc := NewService(g, 2)
	defer svc.Close()
	if out := mustDecode(t, svc, nil); len(out) != 0 {
		t.Fatalf("empty batch returned %d results", len(out))
	}
	if out := mustDecode(t, svc, []Shot{{}, {}}); len(out) != 2 || out[0] != nil || out[1] != nil {
		t.Fatalf("empty shots must decode to empty corrections, got %v", out)
	}
}

// TestServiceLifecycle is the regression test for the closed-channel
// panics: Submit/Decode after Close return ErrClosed (never panic),
// and Close is idempotent from any number of goroutines.
func TestServiceLifecycle(t *testing.T) {
	g := torusTestGraph(4)
	rng := rand.New(rand.NewPCG(87, 88))
	shots := randomShots(g, 16, rng)

	svc := NewService(g, 2)
	if _, err := svc.Decode(shots); err != nil {
		t.Fatalf("decode before close: %v", err)
	}
	svc.Close()
	svc.Close() // double-Close must be a no-op
	if _, err := svc.Submit(shots); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: err = %v, want ErrClosed", err)
	}
	if _, err := svc.Decode(shots); !errors.Is(err, ErrClosed) {
		t.Fatalf("Decode after Close: err = %v, want ErrClosed", err)
	}

	// Concurrent closers racing each other must all return cleanly.
	svc2 := NewService(g, 2)
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() { defer wg.Done(); svc2.Close() }()
	}
	wg.Wait()
}

// TestServiceSubmitCloseChurn races submitters against Close under the
// race detector: every Submit either completes with a full answer or
// returns ErrClosed — no panics, no lost batches.
func TestServiceSubmitCloseChurn(t *testing.T) {
	g := torusTestGraph(5)
	for trial := 0; trial < 6; trial++ {
		svc := NewService(g, 3)
		var wg sync.WaitGroup
		start := make(chan struct{})
		for c := 0; c < 6; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				rng := rand.New(rand.NewPCG(89, uint64(16*trial+c)))
				shots := randomShots(g, 32, rng)
				<-start
				for i := 0; i < 20; i++ {
					b, err := svc.Submit(shots)
					if err != nil {
						if !errors.Is(err, ErrClosed) {
							t.Errorf("submitter %d: unexpected error %v", c, err)
						}
						return
					}
					out := b.Wait()
					if len(out) != len(shots) {
						t.Errorf("submitter %d: accepted batch returned %d/%d results", c, len(out), len(shots))
						return
					}
				}
			}(c)
		}
		close(start)
		svc.Close()
		wg.Wait()
	}
}

// TestPoolMultiGraph: one unbound pool serves several graphs at once,
// and every batch matches its graph's direct decode regardless of the
// interleaving.
func TestPoolMultiGraph(t *testing.T) {
	graphs := []*Graph{torusTestGraph(4), torusTestGraph(5), torusTestGraph(6)}
	pool := NewPool(4)
	defer pool.Close()
	if pool.Graph() != nil {
		t.Fatalf("unbound pool must have no default graph")
	}
	if _, err := pool.Submit(nil); err == nil {
		t.Fatalf("Submit on an unbound pool without a graph must error")
	}
	var wg sync.WaitGroup
	for c := 0; c < 9; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			g := graphs[c%len(graphs)]
			rng := rand.New(rand.NewPCG(91, uint64(c)))
			shots := randomShots(g, 48, rng)
			out, err := pool.DecodeOn(g, shots)
			if err != nil {
				t.Errorf("session %d: %v", c, err)
				return
			}
			uf := NewUnionFind(g)
			for i, shot := range shots {
				var want []int32
				uf.DecodeErased(shot.Defects, shot.Erased, func(e int) { want = append(want, int32(e)) })
				if len(out[i]) != len(want) {
					t.Errorf("session %d shot %d: %d edges, want %d", c, i, len(out[i]), len(want))
					return
				}
				for k := range want {
					if out[i][k] != want[k] {
						t.Errorf("session %d shot %d: edge %d differs", c, i, k)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
}
