package decoder

import (
	"math/rand/v2"
	"testing"
)

// torusGraph builds the L×L toric decoding graph for plaquette (Z-check)
// syndromes: node y·L+x is the plaquette at (x,y); horizontal qubit edge
// (x,y) (id y·L+x) separates plaquettes (x,y) and (x,y−1); vertical edge
// (x,y) (id L²+y·L+x) separates (x,y) and (x−1,y). Matches
// toric.Lattice's indexing.
func torusGraph(l int) *Graph {
	mod := func(a int) int { return ((a % l) + l) % l }
	ends := make([][2]int32, 2*l*l)
	for y := 0; y < l; y++ {
		for x := 0; x < l; x++ {
			ends[y*l+x] = [2]int32{int32(y*l + x), int32(mod(y-1)*l + x)}
			ends[l*l+y*l+x] = [2]int32{int32(y*l + x), int32(y*l + mod(x-1))}
		}
	}
	return NewGraph(l*l, ends)
}

// syndromeOf computes the defect list of an edge set on a graph: nodes
// with odd incident-edge parity.
func syndromeOf(g *Graph, edges map[int]bool) []int {
	par := make([]int, g.Nodes())
	for e := range edges {
		u, v := g.Ends(e)
		par[u] ^= 1
		par[v] ^= 1
	}
	var defects []int
	for v, p := range par {
		if p == 1 {
			defects = append(defects, v)
		}
	}
	return defects
}

// TestUnionFindClearsSyndrome is the core soundness property: on random
// error patterns of every density, the emitted correction's syndrome must
// equal the defect set exactly.
func TestUnionFindClearsSyndrome(t *testing.T) {
	rng := rand.New(rand.NewPCG(211, 212))
	for _, l := range []int{2, 3, 5, 8, 16} {
		g := torusGraph(l)
		uf := NewUnionFind(g)
		for trial := 0; trial < 200; trial++ {
			p := []float64{0.01, 0.05, 0.15, 0.4}[trial%4]
			errs := map[int]bool{}
			for e := 0; e < g.Edges(); e++ {
				if rng.Float64() < p {
					errs[e] = true
				}
			}
			defects := syndromeOf(g, errs)
			residual := map[int]bool{}
			for e := range errs {
				residual[e] = true
			}
			emitted := 0
			uf.Decode(defects, func(e int) {
				emitted++
				if residual[e] {
					delete(residual, e)
				} else {
					residual[e] = true
				}
			})
			if rest := syndromeOf(g, residual); len(rest) != 0 {
				t.Fatalf("L=%d trial %d: correction left %d defects", l, trial, len(rest))
			}
			if len(defects) == 0 && emitted != 0 {
				t.Fatalf("L=%d trial %d: empty syndrome but %d correction edges", l, trial, emitted)
			}
		}
	}
}

// TestUnionFindSingleErrors: every single edge error must be corrected
// back to exactly itself or a syndrome-equivalent weight-1 chain.
func TestUnionFindSingleErrors(t *testing.T) {
	g := torusGraph(5)
	uf := NewUnionFind(g)
	for e := 0; e < g.Edges(); e++ {
		defects := syndromeOf(g, map[int]bool{e: true})
		if len(defects) != 2 {
			t.Fatalf("edge %d: %d defects", e, len(defects))
		}
		var got []int
		uf.Decode(defects, func(c int) { got = append(got, c) })
		if len(got) != 1 || got[0] != e {
			t.Fatalf("edge %d: correction %v", e, got)
		}
	}
}

// TestUnionFindDeterministic: identical defect lists must emit identical
// edge sequences, run after run, fresh instance or recycled scratch.
func TestUnionFindDeterministic(t *testing.T) {
	g := torusGraph(8)
	rng := rand.New(rand.NewPCG(213, 214))
	uf1 := NewUnionFind(g)
	for trial := 0; trial < 50; trial++ {
		errs := map[int]bool{}
		for e := 0; e < g.Edges(); e++ {
			if rng.Float64() < 0.1 {
				errs[e] = true
			}
		}
		defects := syndromeOf(g, errs)
		var a, b []int
		uf1.Decode(defects, func(e int) { a = append(a, e) })
		uf2 := NewUnionFind(g)
		uf2.Decode(defects, func(e int) { b = append(b, e) })
		if len(a) != len(b) {
			t.Fatalf("trial %d: emit counts differ: %d vs %d", trial, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: emit order differs at %d", trial, i)
			}
		}
	}
}

// TestUnionFindAdjacentPair: two defects across one edge decode to that
// edge alone (minimal growth, no over-correction).
func TestUnionFindAdjacentPair(t *testing.T) {
	g := torusGraph(6)
	uf := NewUnionFind(g)
	u, v := g.Ends(7)
	var got []int
	uf.Decode([]int{u, v}, func(e int) { got = append(got, e) })
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("adjacent pair decoded to %v, want [7]", got)
	}
}
