package decoder

import (
	"math/rand/v2"
	"sort"
	"testing"
)

// TestDecodeGuardedMatchesDecode: with a nil guard, DecodeGuarded (with
// and without extraction) must produce exactly Decode's edge set.
func TestDecodeGuardedMatchesDecode(t *testing.T) {
	rng := rand.New(rand.NewPCG(77, 78))
	g := torusGraph(20)
	uf1 := NewUnionFind(g)
	uf2 := NewUnionFind(g)
	uf3 := NewUnionFind(g)
	var comps Components
	for trial := 0; trial < 500; trial++ {
		n := 2 * (1 + rng.IntN(12))
		seen := map[int]bool{}
		var defs []int
		for len(defs) < n {
			v := rng.IntN(400)
			if !seen[v] {
				seen[v] = true
				defs = append(defs, v)
			}
		}
		sort.Ints(defs)
		var plain []int32
		uf1.Decode(defs, func(e int) { plain = append(plain, int32(e)) })
		guarded, ok := uf2.DecodeGuarded(defs, nil, nil, nil, &comps)
		if !ok {
			t.Fatalf("trial %d: guarded decode conflicted with nil guard", trial)
		}
		bare, ok := uf3.DecodeGuarded(defs, nil, nil, nil, nil)
		if !ok {
			t.Fatalf("trial %d: bare guarded decode conflicted", trial)
		}
		for name, got := range map[string][]int32{"with-comps": guarded, "no-comps": bare} {
			a := append([]int32(nil), plain...)
			b := append([]int32(nil), got...)
			sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
			sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
			if len(a) != len(b) {
				t.Fatalf("trial %d %s: edge count %d vs %d (defs=%v)\nplain=%v\ngot=%v", trial, name, len(a), len(b), defs, a, b)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("trial %d %s: edge sets differ (defs=%v)\nplain=%v\ngot=%v", trial, name, defs, a, b)
				}
			}
		}
	}
}
