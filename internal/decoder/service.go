package decoder

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// ErrClosed is returned by Submit/Decode on a Service that has been
// Closed. A closed service never panics on late submissions — the
// lifecycle contract a long-lived multi-tenant server depends on.
var ErrClosed = errors.New("decoder: service closed")

// errNoGraph is returned when an unbound pool is submitted to without a
// graph, or when a nil graph is passed explicitly.
var errNoGraph = errors.New("decoder: no decoding graph for submission")

// Shot is one decode request to a Service: a defect list and optional
// known-erased edges (both in the graph's index space). Defects and
// Erased are read, never written; they must stay untouched until the
// batch that carries them completes.
//
// The remaining fields serve the incremental streaming path. Guard is a
// node set barred from growth contact (see UnionFind.DecodeGuarded); a
// shot with a Guard must also carry Comps, whose Conflict flag is the
// only way the abort is reported. Comps, when non-nil, receives the
// post-decode cluster extraction. CorrBuf, when non-nil, is the caller-
// owned backing array the correction is appended into — resubmitting
// with the returned slice makes the steady state allocation-free.
type Shot struct {
	Defects []int
	Erased  []int
	Guard   []int32
	Comps   *Components
	CorrBuf []int32
}

// Service is a long-lived decode worker pool — the shape a
// control-system consumer calls at scale: batched shot submissions in,
// corrections out. A service bound to one Graph (NewService) decodes
// that graph; an unbound pool (NewPool) multiplexes submissions against
// any number of graphs (SubmitOn), which is how one worker fleet serves
// many concurrent sessions with different window shapes. Workers hold
// per-graph UnionFind scratch across submissions (epoch-stamped arrays
// make reuse free), so a sustained stream of windows pays allocation
// only for the result slices. Results are written into per-shot slots
// in submission order, which makes every batch's output bit-identical
// for any worker count, scheduling, or interleaving with other
// sessions' batches — the same determinism contract as the rest of the
// package. Submit may be called from any number of goroutines, before
// and after Close: post-Close submissions return ErrClosed, and Close
// itself is idempotent.
type Service struct {
	g       *Graph // default graph; nil for an unbound pool
	workers int
	tasks   chan serviceSpan
	wg      sync.WaitGroup
	mu      sync.RWMutex // guards closed vs. in-flight sends on tasks
	closed  bool
	scratch sync.Map // *Graph → *sync.Pool of *UnionFind, one per served graph
}

// serviceSpan is one worker-sized slice of a submitted batch.
type serviceSpan struct {
	b      *Batch
	pool   *sync.Pool
	lo, hi int
}

// Batch is an in-flight submission. Wait blocks until every shot is
// decoded and returns the corrections. Batches made by Submit/SubmitOn
// are single-use; NewBatch builds a reusable one for the streaming hot
// path.
type Batch struct {
	shots   []Shot
	out     [][]int32
	pending atomic.Int64
	done    chan struct{}
	reuse   bool
}

// NewBatch preallocates a reusable batch sized for n shots. Submit it
// with Service.ResubmitOn, Wait for the results, and submit it again:
// the output slots and completion signal are recycled, so a warmed-up
// resubmit loop allocates nothing. A reusable batch must not be
// resubmitted while still in flight.
func NewBatch(n int) *Batch {
	return &Batch{out: make([][]int32, n), done: make(chan struct{}, 1), reuse: true}
}

// complete signals the batch's consumer: reusable batches hand over a
// token (the channel survives for the next round trip), single-use
// batches close.
func (b *Batch) complete() {
	if b.reuse {
		b.done <- struct{}{}
	} else {
		close(b.done)
	}
}

// NewService starts a decode pool of the given worker count bound to g
// (workers <= 0 means GOMAXPROCS). Close releases the workers; a
// Service is meant to outlive many submissions.
func NewService(g *Graph, workers int) *Service {
	s := NewPool(workers)
	s.g = g
	return s
}

// NewPool starts an unbound decode pool: submissions name their graph
// via SubmitOn/DecodeOn, and the pool keeps one scratch set per graph.
// This is the fleet shape of a multi-tenant decode server — one worker
// budget shared across every session's window graphs.
func NewPool(workers int) *Service {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Service{
		workers: workers,
		tasks:   make(chan serviceSpan, 4*workers),
	}
	s.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go s.worker()
	}
	return s
}

// Graph returns the decoding graph the service is bound to (nil for an
// unbound pool).
func (s *Service) Graph() *Graph { return s.g }

// Workers returns the pool size.
func (s *Service) Workers() int { return s.workers }

// Submit enqueues a batch of shots against the bound graph and returns
// immediately; call Wait on the returned Batch for the corrections. An
// empty batch completes at once. After Close it returns ErrClosed.
func (s *Service) Submit(shots []Shot) (*Batch, error) {
	return s.SubmitOn(s.g, shots)
}

// SubmitOn is Submit against an explicit graph — the multi-graph entry
// point of an unbound pool. Batches against different graphs share the
// same workers; each batch's output depends only on (graph, shots).
func (s *Service) SubmitOn(g *Graph, shots []Shot) (*Batch, error) {
	b := &Batch{
		shots: shots,
		out:   make([][]int32, len(shots)),
		done:  make(chan struct{}),
	}
	if err := s.submit(g, b); err != nil {
		return nil, err
	}
	return b, nil
}

// ResubmitOn submits a reusable batch (NewBatch) against g — the
// allocation-free form of SubmitOn the streaming slide runs on. The
// batch must be idle (freshly built or Waited on); its output slots are
// regrown only if the shot count exceeds the batch's capacity.
func (s *Service) ResubmitOn(g *Graph, b *Batch, shots []Shot) error {
	b.shots = shots
	if cap(b.out) < len(shots) {
		b.out = make([][]int32, len(shots))
	} else {
		b.out = b.out[:len(shots)]
	}
	return s.submit(g, b)
}

// submit fans a prepared batch out into worker spans.
func (s *Service) submit(g *Graph, b *Batch) error {
	if g == nil {
		return errNoGraph
	}
	shots := b.shots
	if len(shots) == 0 {
		b.complete()
		return nil
	}
	// Span size balances queue traffic against tail latency: a few spans
	// per worker lets fast workers steal from slow ones.
	span := (len(shots) + 4*s.workers - 1) / (4 * s.workers)
	if span < 1 {
		span = 1
	}
	spans := (len(shots) + span - 1) / span
	b.pending.Store(int64(spans))
	pool := s.scratchFor(g)
	// The read lock pins the lifecycle: Close takes the write lock, so
	// the tasks channel cannot close mid-send and a post-Close submit
	// observes `closed` and returns cleanly instead of panicking.
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	for lo := 0; lo < len(shots); lo += span {
		hi := lo + span
		if hi > len(shots) {
			hi = len(shots)
		}
		s.tasks <- serviceSpan{b: b, pool: pool, lo: lo, hi: hi}
	}
	return nil
}

// GroupSub pairs one reusable batch (NewBatch) with the shots staged
// for it, for a coalesced submission via SubmitGroupOn.
type GroupSub struct {
	B     *Batch
	Shots []Shot
}

// SubmitGroupOn submits several reusable batches against one graph as a
// single fan-out: worker spans are sized from the combined shot count,
// so a fleet of small concurrent submissions (many sessions sliding the
// same window shape at once) costs one task transaction per span of the
// merged work instead of per session, and a worker amortizes one
// scratch checkout across several sessions' shots. Coalescing is
// invisible in the results: every shot's correction depends only on
// (graph, shot), each batch's outputs land in its own slots in its own
// submission order, and each batch completes independently — byte-for-
// byte what the same batches would produce through individual
// ResubmitOn calls, for any worker count or grouping.
//
// On a closed service no batch is staged or completed and every waiter
// must be failed by the caller (the error reaches all of them).
func (s *Service) SubmitGroupOn(g *Graph, subs []GroupSub) error {
	if g == nil {
		return errNoGraph
	}
	total := 0
	for i := range subs {
		total += len(subs[i].Shots)
	}
	span := (total + 4*s.workers - 1) / (4 * s.workers)
	if span < 1 {
		span = 1
	}
	pool := s.scratchFor(g)
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	for i := range subs {
		b, shots := subs[i].B, subs[i].Shots
		b.shots = shots
		if cap(b.out) < len(shots) {
			b.out = make([][]int32, len(shots))
		} else {
			b.out = b.out[:len(shots)]
		}
		if len(shots) == 0 {
			b.complete()
			continue
		}
		spans := (len(shots) + span - 1) / span
		b.pending.Store(int64(spans))
		for lo := 0; lo < len(shots); lo += span {
			hi := lo + span
			if hi > len(shots) {
				hi = len(shots)
			}
			s.tasks <- serviceSpan{b: b, pool: pool, lo: lo, hi: hi}
		}
	}
	return nil
}

// scratchFor returns the per-graph UnionFind pool, creating it on first
// use. Sharing one pool per graph (rather than one instance per worker)
// keeps the grown-region arrays warm even when the scheduler migrates
// work between workers.
func (s *Service) scratchFor(g *Graph) *sync.Pool {
	if p, ok := s.scratch.Load(g); ok {
		return p.(*sync.Pool)
	}
	p, _ := s.scratch.LoadOrStore(g, &sync.Pool{New: func() any { return NewUnionFind(g) }})
	return p.(*sync.Pool)
}

// Decode is Submit followed by Wait: corrections for every shot, in
// submission order. corr[i] lists shot i's correction edges in the
// decoder's deterministic emit order.
func (s *Service) Decode(shots []Shot) ([][]int32, error) {
	return s.DecodeOn(s.g, shots)
}

// DecodeOn is Decode against an explicit graph.
func (s *Service) DecodeOn(g *Graph, shots []Shot) ([][]int32, error) {
	b, err := s.SubmitOn(g, shots)
	if err != nil {
		return nil, err
	}
	return b.Wait(), nil
}

// Wait blocks until the batch is fully decoded and returns the
// per-shot correction edge lists (in submission order).
func (b *Batch) Wait() [][]int32 {
	<-b.done
	return b.out
}

// Close shuts the pool down after all queued work drains. Submissions
// already accepted complete normally; later Submits return ErrClosed.
// Close is idempotent — closing twice (or from several goroutines) is
// a no-op after the first.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.tasks)
	s.mu.Unlock()
	s.wg.Wait()
}

// worker drains span tasks with the task's per-graph pooled UnionFind.
func (s *Service) worker() {
	defer s.wg.Done()
	for t := range s.tasks {
		uf := t.pool.Get().(*UnionFind)
		for i := t.lo; i < t.hi; i++ {
			shot := &t.b.shots[i]
			corr, _ := uf.DecodeGuarded(shot.Defects, shot.Erased, shot.Guard, shot.CorrBuf[:0], shot.Comps)
			t.b.out[i] = corr
		}
		t.pool.Put(uf)
		if t.b.pending.Add(-1) == 0 {
			t.b.complete()
		}
	}
}
