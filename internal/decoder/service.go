package decoder

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Shot is one decode request to a Service: a defect list and optional
// known-erased edges (both in the graph's index space). The slices are
// read, never written; they must stay untouched until the batch that
// carries them completes.
type Shot struct {
	Defects []int
	Erased  []int
}

// Service is a long-lived decode worker pool over a fixed Graph — the
// shape a control-system consumer calls at scale: batched shot
// submissions in, corrections out. Workers hold their UnionFind scratch
// across submissions (epoch-stamped arrays make reuse free), so a
// sustained stream of windows pays allocation only for the result
// slices. Results are written into per-shot slots in submission order,
// which makes every batch's output bit-identical for any worker count
// or scheduling — the same determinism contract as the rest of the
// package. Submit may be called from any number of goroutines.
type Service struct {
	g       *Graph
	workers int
	tasks   chan serviceSpan
	wg      sync.WaitGroup
	scratch sync.Pool // *UnionFind, shared so idle workers' state is reused
}

// serviceSpan is one worker-sized slice of a submitted batch.
type serviceSpan struct {
	b      *Batch
	lo, hi int
}

// Batch is an in-flight submission. Wait blocks until every shot is
// decoded and returns the corrections.
type Batch struct {
	shots   []Shot
	out     [][]int32
	pending atomic.Int64
	done    chan struct{}
}

// NewService starts a decode pool of the given worker count over g
// (workers <= 0 means GOMAXPROCS). Close releases the workers; a
// Service is meant to outlive many submissions.
func NewService(g *Graph, workers int) *Service {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Service{
		g:       g,
		workers: workers,
		tasks:   make(chan serviceSpan, 4*workers),
	}
	s.scratch.New = func() any { return NewUnionFind(g) }
	s.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go s.worker()
	}
	return s
}

// Graph returns the decoding graph the service is bound to.
func (s *Service) Graph() *Graph { return s.g }

// Workers returns the pool size.
func (s *Service) Workers() int { return s.workers }

// Submit enqueues a batch of shots and returns immediately; call Wait
// on the returned Batch for the corrections. An empty batch completes
// at once.
func (s *Service) Submit(shots []Shot) *Batch {
	b := &Batch{
		shots: shots,
		out:   make([][]int32, len(shots)),
		done:  make(chan struct{}),
	}
	if len(shots) == 0 {
		close(b.done)
		return b
	}
	// Span size balances queue traffic against tail latency: a few spans
	// per worker lets fast workers steal from slow ones.
	span := (len(shots) + 4*s.workers - 1) / (4 * s.workers)
	if span < 1 {
		span = 1
	}
	spans := (len(shots) + span - 1) / span
	b.pending.Store(int64(spans))
	for lo := 0; lo < len(shots); lo += span {
		hi := lo + span
		if hi > len(shots) {
			hi = len(shots)
		}
		s.tasks <- serviceSpan{b: b, lo: lo, hi: hi}
	}
	return b
}

// Decode is Submit followed by Wait: corrections for every shot, in
// submission order. corr[i] lists shot i's correction edges in the
// decoder's deterministic emit order.
func (s *Service) Decode(shots []Shot) [][]int32 {
	return s.Submit(shots).Wait()
}

// Wait blocks until the batch is fully decoded and returns the
// per-shot correction edge lists (in submission order).
func (b *Batch) Wait() [][]int32 {
	<-b.done
	return b.out
}

// Close shuts the pool down after all queued work drains. The Service
// must not be used afterwards.
func (s *Service) Close() {
	close(s.tasks)
	s.wg.Wait()
}

// worker drains span tasks with a pooled UnionFind. The scratch pool
// (rather than one instance per worker) keeps the grown-region arrays
// warm even when the scheduler migrates work between workers.
func (s *Service) worker() {
	defer s.wg.Done()
	for t := range s.tasks {
		uf := s.scratch.Get().(*UnionFind)
		for i := t.lo; i < t.hi; i++ {
			shot := t.b.shots[i]
			var corr []int32
			uf.DecodeErased(shot.Defects, shot.Erased, func(e int) {
				corr = append(corr, int32(e))
			})
			t.b.out[i] = corr
		}
		s.scratch.Put(uf)
		if t.b.pending.Add(-1) == 0 {
			close(t.b.done)
		}
	}
}
