package decoder

import (
	"math/rand/v2"
	"testing"
)

func torusDist1(a, b, l int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if l-d < d {
		d = l - d
	}
	return d
}

// TestGridVisitCoversBall: VisitWithin must enumerate a superset of the
// weighted ball and never visit a point twice.
func TestGridVisitCoversBall(t *testing.T) {
	rng := rand.New(rand.NewPCG(91, 92))
	var g DefectGrid
	for trial := 0; trial < 50; trial++ {
		l := 4 + rng.IntN(20)
		tmax := rng.IntN(12)
		cell := 1 + rng.IntN(4)
		n := 2 + rng.IntN(40)
		xs := make([]int, n)
		ys := make([]int, n)
		ts := make([]int, n)
		g.Reset(l, cell, 0, tmax, 1+rng.IntN(3))
		for i := 0; i < n; i++ {
			xs[i], ys[i], ts[i] = rng.IntN(l), rng.IntN(l), rng.IntN(tmax+1)
			g.Add(xs[i], ys[i], ts[i])
		}
		for probe := 0; probe < 10; probe++ {
			i := rng.IntN(n)
			dxy, dt := rng.IntN(l), rng.IntN(tmax+2)
			seen := make(map[int]int)
			g.VisitWithin(i, dxy, dt, func(j int) { seen[j]++ })
			for j, c := range seen {
				if c > 1 {
					t.Fatalf("trial %d: point %d visited %d times", trial, j, c)
				}
			}
			for j := 0; j < n; j++ {
				inBox := torusDist1(xs[i], xs[j], l) <= dxy &&
					torusDist1(ys[i], ys[j], l) <= dxy &&
					abs(ts[i]-ts[j]) <= dt
				if inBox && seen[j] == 0 {
					t.Fatalf("trial %d: point %d in box of %d (dxy=%d dt=%d) but not visited",
						trial, j, i, dxy, dt)
				}
			}
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// TestIndexedMatchesDense2D: grid-staged matching on random 2D torus
// defect sets has exactly the dense optimum's total weight — the
// sparse-blossom staging certificate survives the grid index.
func TestIndexedMatchesDense2D(t *testing.T) {
	rng := rand.New(rand.NewPCG(93, 94))
	var mDense, mGrid Matcher
	var grid DefectGrid
	for trial := 0; trial < 60; trial++ {
		l := 8 + rng.IntN(17)
		n := 2 * (2 + rng.IntN(20))
		xs := make([]int, n)
		ys := make([]int, n)
		for i := range xs {
			xs[i], ys[i] = rng.IntN(l), rng.IntN(l)
		}
		weight := func(i, j int) int64 {
			return int64(torusDist1(xs[i], xs[j], l) + torusDist1(ys[i], ys[j], l))
		}
		cutoff := int64(1 + rng.IntN(l))
		grid.Reset(l, int(cutoff), 0, 0, 1)
		for i := range xs {
			grid.Add(xs[i], ys[i], 0)
		}
		near := func(i int, r int64, visit func(j int)) {
			grid.VisitWithin(i, int(r), 0, visit)
		}
		dense := mDense.MinWeightPairs(n, weight)
		indexed := mGrid.MinWeightPairsIndexed(n, weight, cutoff, near)
		var wd, wi int64
		for _, pr := range dense {
			wd += weight(int(pr[0]), int(pr[1]))
		}
		for _, pr := range indexed {
			wi += weight(int(pr[0]), int(pr[1]))
		}
		if len(indexed) != n/2 {
			t.Fatalf("trial %d: %d pairs for %d vertices", trial, len(indexed), n)
		}
		if wd != wi {
			t.Fatalf("trial %d (L=%d n=%d cutoff=%d): grid weight %d != dense %d",
				trial, l, n, cutoff, wi, wd)
		}
	}
}

// TestIndexedMatchesDense3D: the same certificate on weighted
// space-time metrics (wh·d₂ + wv·|Δt|), the volume decoder's staging.
func TestIndexedMatchesDense3D(t *testing.T) {
	rng := rand.New(rand.NewPCG(95, 96))
	var mDense, mGrid Matcher
	var grid DefectGrid
	for trial := 0; trial < 40; trial++ {
		l := 6 + rng.IntN(11)
		tmax := 2 + rng.IntN(10)
		wh := 1 + rng.IntN(4)
		wv := 1 + rng.IntN(6)
		n := 2 * (2 + rng.IntN(16))
		xs := make([]int, n)
		ys := make([]int, n)
		ts := make([]int, n)
		for i := range xs {
			xs[i], ys[i], ts[i] = rng.IntN(l), rng.IntN(l), rng.IntN(tmax+1)
		}
		weight := func(i, j int) int64 {
			d2 := torusDist1(xs[i], xs[j], l) + torusDist1(ys[i], ys[j], l)
			return int64(wh)*int64(d2) + int64(wv)*int64(abs(ts[i]-ts[j]))
		}
		cutoff := int64((1 + rng.IntN(4)) * max(wh, wv))
		grid.Reset(l, 2, 0, tmax, 2)
		for i := range xs {
			grid.Add(xs[i], ys[i], ts[i])
		}
		near := func(i int, r int64, visit func(j int)) {
			grid.VisitWithin(i, int(r/int64(wh)), int(r/int64(wv)), visit)
		}
		dense := mDense.MinWeightPairs(n, weight)
		indexed := mGrid.MinWeightPairsIndexed(n, weight, cutoff, near)
		var wd, wi int64
		for _, pr := range dense {
			wd += weight(int(pr[0]), int(pr[1]))
		}
		for _, pr := range indexed {
			wi += weight(int(pr[0]), int(pr[1]))
		}
		if wd != wi {
			t.Fatalf("trial %d (L=%d T=%d wh=%d wv=%d n=%d cutoff=%d): grid weight %d != dense %d",
				trial, l, tmax, wh, wv, n, cutoff, wi, wd)
		}
	}
}

// TestIndexedDeterministic: repeat runs emit identical pairings, and the
// matcher recycles cleanly across calls with different enumerators.
func TestIndexedDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(97, 98))
	var m Matcher
	var grid DefectGrid
	l, n := 12, 24
	xs := make([]int, n)
	ys := make([]int, n)
	for i := range xs {
		xs[i], ys[i] = rng.IntN(l), rng.IntN(l)
	}
	weight := func(i, j int) int64 {
		return int64(torusDist1(xs[i], xs[j], l) + torusDist1(ys[i], ys[j], l))
	}
	near := func(i int, r int64, visit func(j int)) {
		grid.VisitWithin(i, int(r), 0, visit)
	}
	run := func() [][2]int32 {
		grid.Reset(l, 3, 0, 0, 1)
		for i := range xs {
			grid.Add(xs[i], ys[i], 0)
		}
		pairs := m.MinWeightPairsIndexed(n, weight, 3, near)
		out := make([][2]int32, len(pairs))
		copy(out, pairs)
		return out
	}
	a := run()
	m.MinWeightPairs(6, func(i, j int) int64 { return int64(i + j) }) // perturb scratch
	b := run()
	if len(a) != len(b) {
		t.Fatal("repeat runs differ in pair count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("repeat runs differ at pair %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// BenchmarkSparsePairStaging pits dense candidate enumeration
// (all-pairs) against the grid index on large defect sets — the
// ~O(n²) → ~O(n·k) satellite. The enumerate-* variants isolate the
// staging sweep the index accelerates; the solve-* variants run the
// full matcher (identical minimum weight) and show the blossom engine
// dominating end to end at this size.
func BenchmarkSparsePairStaging(b *testing.B) {
	rng := rand.New(rand.NewPCG(99, 100))
	const l, n = 128, 2048
	xs := make([]int, n)
	ys := make([]int, n)
	for i := range xs {
		xs[i], ys[i] = rng.IntN(l), rng.IntN(l)
	}
	weight := func(i, j int) int64 {
		return int64(torusDist1(xs[i], xs[j], l) + torusDist1(ys[i], ys[j], l))
	}
	const cutoff = 9
	var grid DefectGrid
	buildGrid := func() {
		grid.Reset(l, cutoff, 0, 0, 1)
		for k := range xs {
			grid.Add(xs[k], ys[k], 0)
		}
	}
	near := func(i int, r int64, visit func(j int)) {
		grid.VisitWithin(i, int(r), 0, visit)
	}
	b.Run("enumerate-dense", func(b *testing.B) {
		staged := 0
		for it := 0; it < b.N; it++ {
			staged = 0
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					if weight(i, j) <= cutoff {
						staged++
					}
				}
			}
		}
		b.ReportMetric(float64(staged), "edges")
	})
	b.Run("enumerate-grid", func(b *testing.B) {
		staged := 0
		for it := 0; it < b.N; it++ {
			staged = 0
			buildGrid()
			for i := 0; i < n; i++ {
				near(i, cutoff, func(j int) {
					if j > i && weight(i, j) <= cutoff {
						staged++
					}
				})
			}
		}
		b.ReportMetric(float64(staged), "edges")
	})
	b.Run("solve-dense", func(b *testing.B) {
		var m Matcher
		for i := 0; i < b.N; i++ {
			m.MinWeightPairsPruned(n, weight, cutoff)
		}
	})
	b.Run("solve-grid", func(b *testing.B) {
		var m Matcher
		for i := 0; i < b.N; i++ {
			buildGrid()
			m.MinWeightPairsIndexed(n, weight, cutoff, near)
		}
	})
}
