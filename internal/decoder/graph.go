package decoder

// Graph is a decoding graph in compressed adjacency form: detectors
// (checks) are nodes, physical qubits are edges between the two checks
// they can flip. Every edge carries a positive integer weight (a scaled
// log-likelihood ratio; 1 everywhere for uniform noise). It is immutable
// after construction and safely shared by any number of concurrent
// decoder instances.
type Graph struct {
	nodes  int
	endU   []int32 // edge e runs endU[e] — endV[e]
	endV   []int32
	weight []int32  // per-edge growth weight, >= 1
	grow   []uint32 // per-edge full-support target, 2·weight (the growth loop's unit)
	maxW   int32
	off    []int32 // CSR offsets into adjEdge/adjNode, len nodes+1
	adjE   []int32 // incident edge ids, grouped by node
	adjN   []int32 // the far endpoint of the matching adjE entry

	// Open-boundary support (sliding-window decoding): boundary nodes
	// absorb defect parity, so a cluster containing one never counts as
	// odd. bnd is nil on closed graphs — the common case pays nothing.
	bnd     []bool
	bndList []int32 // boundary node ids in ascending order
}

// NewGraph builds a unit-weight graph from the edge-endpoint table: edge
// e connects ends[e][0] and ends[e][1]. Adjacency lists are laid out in
// ascending (node, edge) order, which fixes the traversal order every
// decoder pass uses — the root of the package's determinism contract.
func NewGraph(nodes int, ends [][2]int32) *Graph {
	return NewWeightedGraph(nodes, ends, nil)
}

// NewWeightedGraph is NewGraph with per-edge integer weights (all 1 when
// weights is nil). Weights are the growth currency of the union-find
// decoder: an edge of weight w needs 2w half-steps of support to join the
// erasure, so non-uniform error channels (data vs measurement errors in a
// space-time volume) steer the clusters along the likelier paths.
func NewWeightedGraph(nodes int, ends [][2]int32, weights []int32) *Graph {
	if weights != nil && len(weights) != len(ends) {
		panic("decoder: weight count does not match edge count")
	}
	g := &Graph{
		nodes:  nodes,
		endU:   make([]int32, len(ends)),
		endV:   make([]int32, len(ends)),
		weight: make([]int32, len(ends)),
		grow:   make([]uint32, len(ends)),
		maxW:   1,
		off:    make([]int32, nodes+1),
	}
	for e, uv := range ends {
		if uv[0] < 0 || uv[1] < 0 || int(uv[0]) >= nodes || int(uv[1]) >= nodes || uv[0] == uv[1] {
			panic("decoder: bad edge endpoints")
		}
		w := int32(1)
		if weights != nil {
			w = weights[e]
		}
		if w < 1 {
			panic("decoder: edge weight must be positive")
		}
		if w > g.maxW {
			g.maxW = w
		}
		g.endU[e], g.endV[e] = uv[0], uv[1]
		g.weight[e] = w
		g.grow[e] = uint32(2 * w)
		g.off[uv[0]+1]++
		g.off[uv[1]+1]++
	}
	for v := 0; v < nodes; v++ {
		g.off[v+1] += g.off[v]
	}
	g.adjE = make([]int32, 2*len(ends))
	g.adjN = make([]int32, 2*len(ends))
	cursor := make([]int32, nodes)
	copy(cursor, g.off[:nodes])
	for e := range ends {
		u, v := g.endU[e], g.endV[e]
		g.adjE[cursor[u]], g.adjN[cursor[u]] = int32(e), v
		cursor[u]++
		g.adjE[cursor[v]], g.adjN[cursor[v]] = int32(e), u
		cursor[v]++
	}
	return g
}

// NewBoundaryGraph is NewWeightedGraph with open-boundary (virtual)
// nodes: defect parity reaching a boundary node is absorbed rather than
// matched, the construction a sliding decode window needs at its open
// future edge (detectors there may pair with faults that have not
// happened yet). Boundary nodes cannot themselves be defects; clusters
// containing one are "grounded" and stop growing, and peeling drains
// their unpaired defects into the boundary.
func NewBoundaryGraph(nodes int, ends [][2]int32, weights []int32, boundary []int) *Graph {
	g := NewWeightedGraph(nodes, ends, weights)
	if len(boundary) == 0 {
		return g
	}
	g.bnd = make([]bool, nodes)
	for _, b := range boundary {
		if b < 0 || b >= nodes {
			panic("decoder: boundary node out of range")
		}
		if !g.bnd[b] {
			g.bnd[b] = true
			g.bndList = append(g.bndList, int32(b))
		}
	}
	for i := 1; i < len(g.bndList); i++ {
		for j := i; j > 0 && g.bndList[j] < g.bndList[j-1]; j-- {
			g.bndList[j], g.bndList[j-1] = g.bndList[j-1], g.bndList[j]
		}
	}
	return g
}

// Nodes returns the detector count.
func (g *Graph) Nodes() int { return g.nodes }

// IsBoundary reports whether node v is an open-boundary node.
func (g *Graph) IsBoundary(v int) bool { return g.bnd != nil && g.bnd[v] }

// Edges returns the qubit-edge count.
func (g *Graph) Edges() int { return len(g.endU) }

// Ends returns the two endpoints of edge e.
func (g *Graph) Ends(e int) (int, int) { return int(g.endU[e]), int(g.endV[e]) }

// Weight returns the growth weight of edge e.
func (g *Graph) Weight(e int) int { return int(g.weight[e]) }

// MaxWeight returns the largest edge weight in the graph.
func (g *Graph) MaxWeight() int { return int(g.maxW) }
