// Package decoder provides the scalable classical decoders for the toric
// code (and any other graph-like code): a near-linear union-find decoder
// for the hot Monte Carlo path and a polynomial exact minimum-weight
// perfect matching kept as the accuracy baseline. Gottesman
// (arXiv:2210.15844) singles out fast classical decoding as the gating
// classical cost of scaling fault-tolerant quantum computers; this
// package is that subsystem.
//
// # The union-find growth/merge algorithm
//
// UnionFind implements the Delfosse–Nickerson decoder on a fixed decoding
// Graph (detectors = nodes, qubits = edges). Decoding runs in three
// phases:
//
//  1. Seeding. Every defect (lit detector) becomes a singleton cluster
//     with odd parity whose boundary is its incident edge list.
//
//  2. Growth and merge. While any cluster has odd parity, every odd
//     cluster grows each boundary edge by a half-step (edge support
//     0→1→2). An edge reaching full support (2) leaves the boundary and
//     triggers a merge: its endpoint clusters are united (union by size,
//     ties to the smaller root id; parities add, boundary lists
//     concatenate), and a node reached for the first time is absorbed as
//     a parity-0 member bringing its own incident edges. Because the
//     total defect parity on a closed graph is even, growth terminates
//     with every cluster even.
//
//  3. Peeling. The fully-grown (support-2) edges form an "erasure" that
//     connects each cluster. A depth-first spanning forest of that
//     erasure is peeled leaf-first: a leaf holding a defect emits its
//     tree edge into the correction and hands the defect to its parent.
//     Within each even cluster the defects cancel pairwise, so the
//     emitted chain's syndrome is exactly the defect set.
//
// Cost is near-linear (inverse-Ackermann union-find) in the size of the
// grown region, not in the lattice, which is what makes L = 16–32 memory
// experiments tractable where matching decoders pay at least
// O(defects²).
//
// # Exact matching baseline
//
// Matcher.MinWeightPairs is a polynomial (O(n³)-style) primal-dual
// blossom algorithm for minimum-weight perfect matching on the complete
// defect graph — the replacement for the old O(2ⁿ·n²) bitmask dynamic
// program, with no cap on the defect count. It is the accuracy baseline
// the union-find decoder is measured against.
//
// # Determinism contract
//
// Both decoders are pure functions of their inputs: adjacency lists are
// laid out in ascending (node, edge) order at Graph construction, growth
// sweeps visit clusters in first-touch order, merges happen in grow
// order, peeling follows DFS order, and the matcher breaks ties by its
// fixed edge enumeration. No map iteration, clock, or scheduling enters
// any decision, so a decode's output depends only on (graph, defect
// list) — the property the batch experiments rely on to stay
// reproducible for any GOMAXPROCS. Decoder instances carry scratch state
// and must not be shared between goroutines; the Graph is immutable and
// shared freely.
package decoder
