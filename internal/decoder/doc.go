// Package decoder provides the scalable classical decoders for the toric
// code (and any other graph-like code): a near-linear union-find decoder
// for the hot Monte Carlo path and a polynomial exact minimum-weight
// perfect matching kept as the accuracy baseline. Gottesman
// (arXiv:2210.15844) singles out fast classical decoding as the gating
// classical cost of scaling fault-tolerant quantum computers; this
// package is that subsystem.
//
// # The union-find growth/merge algorithm
//
// UnionFind implements the Delfosse–Nickerson decoder on a fixed decoding
// Graph (detectors = nodes, qubits = edges, each edge carrying a positive
// integer weight — a scaled log-likelihood ratio, 1 for uniform noise).
// Decoding runs in three phases:
//
//  1. Seeding. Every defect (lit detector) becomes a singleton cluster
//     with odd parity whose boundary is its incident edge list. When
//     erasure information is supplied (DecodeErased), every erased edge
//     enters the erasure at full support first: its endpoints are
//     absorbed and united before any growth, so pure-erasure syndromes
//     skip phase 2 entirely. On graphs with open-boundary nodes
//     (NewBoundaryGraph — the future edge of a sliding decode window),
//     a cluster that reaches a boundary node is "grounded": the
//     boundary absorbs its parity, it never counts as odd, and it stops
//     growing.
//
//  2. Growth and merge. While any cluster has odd parity, every odd
//     cluster grows each boundary edge by one half-step of support; an
//     edge of weight w is fully grown at support 2w (the classic 0→1→2
//     progression on unit-weight graphs, proportionally more sweeps for
//     heavier — less likely — edges, which is how measurement-error and
//     data-error channels with different rates steer the clusters). A
//     fully grown edge leaves the boundary and triggers a merge: its
//     endpoint clusters are united (union by size, ties to the smaller
//     root id; parities add, boundary lists concatenate), and a node
//     reached for the first time is absorbed as a parity-0 member
//     bringing its own incident edges. Because the total defect parity
//     on a closed graph is even, growth terminates with every cluster
//     even.
//
//  3. Peeling. The fully-grown edges form an "erasure" that connects
//     each cluster. A depth-first spanning forest of that erasure is
//     peeled leaf-first: a leaf holding a defect emits its tree edge
//     into the correction and hands the defect to its parent. Within
//     each even cluster the defects cancel pairwise, so the emitted
//     chain's syndrome is exactly the defect set. Grounded clusters
//     root their trees at their boundary node (boundary nodes first, in
//     ascending node order), so any unpaired defect drains onto the
//     boundary and the emitted chains' interior syndrome still equals
//     the interior defect set exactly.
//
// Cost is near-linear (inverse-Ackermann union-find) in the size of the
// grown region, not in the lattice, which is what makes L = 16–32 memory
// experiments — and L=16, T=16 space-time volumes — tractable where
// matching decoders pay at least O(defects²).
//
// # Exact matching baseline
//
// Matcher.MinWeightPairs is a polynomial (O(n³)-style) primal-dual
// blossom algorithm for minimum-weight perfect matching on the complete
// defect graph — the replacement for the old O(2ⁿ·n²) bitmask dynamic
// program, with no cap on the defect count. It is the accuracy baseline
// the union-find decoder is measured against.
//
// MinWeightPairsPruned is the sparse-blossom variant: only the locally
// short edges (weight ≤ cutoff) are staged, and after each solve
// excluded pairs are priced against the engine's dual variables —
// blossom duals are nonnegative, so the vertex-dual test is a
// conservative certificate. Violated edges are staged back in and the
// solve repeats; a cutoff too tight to admit a perfect matching
// doubles. The returned matching's total weight therefore equals the
// dense optimum exactly (property-tested), while the engine typically
// runs on ~O(n) edges.
//
// MinWeightPairsIndexed is the same engine behind a caller-supplied
// neighbor enumerator, and DefectGrid is the standard enumerator: a
// bucket index over defect coordinates (torus x, y plus an unwrapped
// time axis) that visits only the cells a query radius can reach. With
// it, staging enumerates ~O(n·k) candidate pairs instead of n², and
// the pricing sweep contracts the same way — a pair excluded by the
// cutoff can only be violated within a radius computed from the dual
// variables, so each vertex prices only the candidates inside that
// radius. The optimality certificate is unchanged.
//
// # Guarded decode and cluster extraction
//
// DecodeGuarded is the incremental-window entry point. It decodes like
// DecodeErased with two extensions. A guard set marks nodes the caller
// has excised from the syndrome (a retained cluster's footprint from
// the previous window): if any growing cluster touches a guarded node,
// the decode aborts with a conflict — the caller must fall back to a
// full re-decode of the lane, which is what keeps the incremental path
// bit-identical to from-scratch decoding by construction. A Components
// sink, when supplied, extracts every unguarded cluster that lies
// entirely inside a retention band [Lo, Hi) of the time axis: its
// nodes, defects and correction edges, CSR-packed in deterministic
// order (clusters in root-creation order). The caller re-seeds those
// clusters as erasures after the window slides, so quiet regions of
// the stream never pay for re-growing the same forest. Extraction is
// O(roots) on top of the decode: each root tracks its [minT, maxT]
// layer extent through unions, so the band filter never walks members.
//
// # Decode service
//
// Service wraps decoder Graphs in a long-lived worker pool: batched
// Shot submissions (defects + optional erasure) in, per-shot correction
// edge lists out, in submission order. Workers reuse UnionFind scratch
// across submissions and results land in indexed slots, so a batch's
// output is bit-identical for any worker count — the deployable shape
// of the decode stage (the streaming window pipeline submits every
// slide through one). NewService(g, n) binds a service to one graph;
// NewPool(n) is the unbound form, routing each SubmitOn(g, shots) batch
// to its graph with per-graph scratch pools — one fleet can serve every
// window graph in the process, which is how internal/server multiplexes
// many sessions over shared workers.
//
// The lifecycle is part of the contract: Close is idempotent, drains
// in-flight submissions before releasing the workers, and any
// Submit/SubmitOn/Decode after Close returns ErrClosed — never a panic
// — so concurrent producers racing a shutdown fail soft.
//
// # Determinism contract
//
// All decoders are pure functions of their inputs:
//
//   - Graph construction lays adjacency lists in ascending (node, edge)
//     order; 3D space-time graphs are built layer-major and class-major
//     (all horizontal edges of layer 0 … T−1, then all vertical edges,
//     then — circuit-level graphs — all diagonal edges, each class again
//     layer-major), so edge ids and traversal order are fixed by (L, T)
//     and the extraction schedule alone. Diagonal edges are ordinary
//     weighted edges to every decoder pass: growth, merge, peeling and
//     the boundary handling treat the three classes identically, and a
//     wd = 0 construction is bit-identical to the two-class graph.
//   - The exact matcher on circuit-level volumes prices pairs with a
//     precomputed offset table (Dial's algorithm over the translation-
//     invariant move set), itself a pure function of (L, T, weights,
//     schedule) — no randomness enters the metric.
//   - Growth sweeps visit clusters in first-touch order and increment
//     support by exactly one half-step per boundary visit; weighted
//     targets (2·weight) change when an edge crosses, never the visit
//     order. A unit-weight graph is therefore bit-identical to the
//     pre-weighted decoder, emit order included.
//   - Erased edges seed in caller order before any growth; merges happen
//     in grow order; peeling follows DFS order (boundary-rooted trees
//     first on open-boundary graphs).
//   - The matcher breaks ties by its fixed edge enumeration, and the
//     pruned matcher's stage/price/repeat loop is itself a pure function
//     of the weight table and cutoff. An indexed matcher additionally
//     requires its neighbor enumerator to be a pure function of (point,
//     radius) — DefectGrid scans cells in a fixed order and points
//     within a cell in reverse insertion order, which qualifies.
//   - Scratch reuse is invisible: UnionFind, Matcher and DefectGrid all
//     recycle their arrays across calls (epoch stamps, length resets),
//     and incremental reuse across a stream of windows — thousands of
//     Decodes against one graph from one instance — yields the same
//     output as a fresh instance per call. The Service's worker pool
//     relies on exactly this to share instances across submissions.
//   - The guarded decode adds nothing impure: conflict detection is a
//     pure predicate of (defects, guard) — the first boundary edge that
//     would touch a guarded node aborts the run at a deterministic
//     sweep — and extraction orders clusters by root creation, members
//     by first-touch, defects and corrections by input order. A stream
//     decoder that retains clusters, re-seeds them as erasures, and
//     falls back on conflicts therefore commits frames bit-identical
//     to one that re-decodes every window from scratch (pinned by the
//     cross-implementation lockstep tests in internal/stream), no
//     matter which lanes its retention policy chooses to cache.
//   - Multi-graph scheduling is invisible too: a pool interleaving
//     batches for many graphs (many streaming sessions) gives every
//     batch the same corrections a dedicated single-graph service
//     would, because each shot's output is a pure function of (graph,
//     defects, erasure) and lands in its own indexed slot. Tenants
//     sharing a pool cannot perturb each other's results — only their
//     latency — which is the property the multi-session decode server
//     (internal/server) pins with its server-vs-standalone equivalence
//     suite.
//   - Correlated two-sector decoding stays pure by serialization: the
//     caller decodes the primal sector first, derives the dual sector's
//     erasure list from the *committed* primal correction alone (a pure
//     edge-id map — see spacetime.MarkCounterpartEdges), and only then
//     submits the dual. The dual's inputs are thus a pure function of
//     the primal's inputs, so the pair inherits every guarantee above:
//     worker-count invariance, scratch-reuse invisibility, and
//     pool-interleaving invisibility. The one obligation is ordering —
//     a correlated pair must not race its own sectors — which the
//     streaming layer meets by running the dual slide after the primal
//     commit inside each window step.
//   - Coalesced submission preserves all of the above: SubmitGroupOn
//     fans several batches against one graph out as a single span
//     schedule, but every shot still decodes against its own (graph,
//     shot) inputs and writes its own batch's slot in that batch's
//     submission order. Span sizing from the combined shot count
//     changes which worker decodes which shot and nothing else, so a
//     group submission is byte-for-byte what the same batches would
//     produce through individual ResubmitOn calls — which is why a
//     server may merge concurrent tenants' submissions freely (the
//     coalesced-vs-direct equivalence suite in internal/server pins
//     this). Warm-start seeding rides along unchanged: a Shot's
//     retained-cluster erasure seeds and guard set are part of its
//     input, wherever the shot is scheduled.
//
// No map iteration, clock, or scheduling enters any decision, so a
// decode's output depends only on (graph, defect list, erasure) — the
// property the batch experiments rely on to stay reproducible for any
// GOMAXPROCS. Decoder instances carry scratch state and must not be
// shared between goroutines; the Graph is immutable and shared freely.
package decoder
