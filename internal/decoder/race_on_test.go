//go:build race

package decoder

// raceEnabled reports whether the race detector instruments this build;
// its allocations would fail the zero-alloc pins.
const raceEnabled = true
