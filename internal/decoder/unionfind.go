package decoder

// UnionFind is a weighted-growth union-find decoder (Delfosse–Nickerson
// style) over a fixed decoding graph. Decode cost is near-linear in the
// size of the grown region around the syndrome, not in the graph, so a
// sparse defect set on a large lattice decodes in microseconds where
// matching decoders pay at least O(defects²).
//
// A UnionFind holds per-graph scratch arrays and is NOT safe for
// concurrent use; give each worker its own instance (they can all share
// one *Graph). Scratch is recycled across calls with epoch stamps, so a
// Decode touches only the arrays' used entries; per-node cluster state is
// packed into one 16-byte record so the pointer-chasing hot loops touch
// one cache line per node.
type UnionFind struct {
	g *Graph

	// node[v] is all cluster state of node v. stamp encodes the epoch the
	// record is valid for (2·epoch when touched, 2·epoch+1 once visited
	// by the peeling pass). flags bit 0 is the cluster defect parity (at
	// roots), bit 1 the node's live defect flag during peeling, bit 2 the
	// grounded flag (at roots): the cluster contains an open-boundary
	// node, which absorbs its parity, so it never grows.
	node []ufNode

	// Edge growth state: epoch<<32 | support packed in one word (one load
	// on the growth hot path). support counts half-steps of growth: an
	// edge of weight w is fully grown (in the erasure) at support 2w, so
	// unit-weight graphs keep the classic 0→1→2 progression and heavier
	// edges take proportionally more sweeps to cross.
	edgeState []uint64

	// sweeps counts the growth sweeps of the last Decode; a pure-erasure
	// syndrome (every defect inside an even-parity erased component)
	// leaves it at 0 — the peeling-only fast path.
	sweeps int

	// Boundary lists: cluster members that may still have ungrown
	// incident edges, kept as arena linked lists headed at the root
	// (head, tail), so a union concatenates in O(1).
	bndHead []int32
	bndTail []int32
	bndNode []int32
	bndNext []int32

	// Erasure adjacency, built as edges reach full support: a per-node
	// linked list over an arena, so peeling walks exactly the grown
	// region and never rescans graph adjacency.
	eraHead []int32
	eraSeen []uint32
	eraEdge []int32
	eraNode []int32
	eraNext []int32

	epoch uint32

	// Reusable worklists.
	clusters []int32
	odd      []int32
	grown    []int32
	stack    []int32
	order    []peelStep
}

type ufNode struct {
	parent int32
	size   int32
	stamp  uint32
	flags  uint32
}

type peelStep struct {
	node, parentEdge, parentNode int32
}

// NewUnionFind returns a decoder instance over g.
func NewUnionFind(g *Graph) *UnionFind {
	return &UnionFind{
		g:         g,
		node:      make([]ufNode, g.nodes),
		edgeState: make([]uint64, g.Edges()),
		bndHead:   make([]int32, g.nodes),
		bndTail:   make([]int32, g.nodes),
		eraHead:   make([]int32, g.nodes),
		eraSeen:   make([]uint32, g.nodes),
	}
}

// GrowthSweeps returns the number of growth sweeps the last Decode (or
// DecodeErased) ran. Zero means the peeling-only fast path: every defect
// was already inside an even-parity erased cluster.
func (u *UnionFind) GrowthSweeps() int { return u.sweeps }

// touch initializes node v's cluster state for the current epoch if it
// has not been seen yet, as a parity-0 singleton with an empty boundary.
// Open-boundary nodes start (and stay) grounded.
func (u *UnionFind) touch(v int32) {
	if u.node[v].stamp>>1 == u.epoch {
		return
	}
	u.node[v] = ufNode{parent: v, size: 1, stamp: u.epoch << 1}
	if u.g.bnd != nil && u.g.bnd[v] {
		u.node[v].flags = 4
	}
	u.bndHead[v] = -1
	u.bndTail[v] = -1
}

// find returns the root of v's cluster with path compression.
func (u *UnionFind) find(v int32) int32 {
	for u.node[v].parent != v {
		u.node[v].parent = u.node[u.node[v].parent].parent
		v = u.node[v].parent
	}
	return v
}

// pushBoundary appends node w to root r's boundary list.
func (u *UnionFind) pushBoundary(r, w int32) {
	u.bndNode = append(u.bndNode, w)
	u.bndNext = append(u.bndNext, -1)
	idx := int32(len(u.bndNode)) - 1
	if u.bndTail[r] < 0 {
		u.bndHead[r] = idx
	} else {
		u.bndNext[u.bndTail[r]] = idx
	}
	u.bndTail[r] = idx
}

// Decode grows clusters around the defects until every cluster holds an
// even number of them, then peels the grown region into a correction,
// calling emit once per correction edge. The defect list must be the
// syndrome of some error pattern (even total parity on a closed graph);
// emit receives each edge at most once, in a deterministic order that
// depends only on the defect list.
func (u *UnionFind) Decode(defects []int, emit func(edge int)) {
	u.DecodeErased(defects, nil, emit)
}

// DecodeErased is Decode with erasure information: the listed edges are
// known fault locations (leaked or erased qubits) and enter the erasure
// at full support before any growth. Clusters whose defects are already
// paired inside the erased components decode by peeling alone; only the
// odd remainder grows. Erased edges may be emitted in the correction
// even when no cluster grows.
func (u *UnionFind) DecodeErased(defects, erased []int, emit func(edge int)) {
	u.sweeps = 0
	if len(defects) == 0 {
		return
	}
	u.bumpEpoch()
	u.clusters = u.clusters[:0]
	u.grown = u.grown[:0]
	u.bndNode = u.bndNode[:0]
	u.bndNext = u.bndNext[:0]
	u.eraEdge = u.eraEdge[:0]
	u.eraNode = u.eraNode[:0]
	u.eraNext = u.eraNext[:0]
	for _, d := range defects {
		v := int32(d)
		if u.g.bnd != nil && u.g.bnd[v] {
			panic("decoder: boundary node cannot be a defect")
		}
		u.touch(v)
		if u.node[v].flags != 0 {
			panic("decoder: duplicate defect")
		}
		u.node[v].flags = 3 // cluster parity odd + live defect
		u.pushBoundary(v, v)
		u.clusters = append(u.clusters, v)
	}
	g := u.g
	epochBits := uint64(u.epoch) << 32
	// Seed the erasure: every erased edge is fully grown from the start,
	// its endpoints absorbed and united, exactly as if growth had crossed
	// it — so the growth loop and the peeling pass need no special cases.
	for _, e := range erased {
		ee := int32(e)
		target := uint64(2 * g.weight[ee])
		if st := u.edgeState[ee]; st>>32 == uint64(u.epoch) && st&0xffffffff >= target {
			continue // duplicate erased edge
		}
		u.edgeState[ee] = epochBits | target
		a, b := g.endU[ee], g.endV[ee]
		u.eraLink(ee, a, b)
		u.absorb(a)
		u.absorb(b)
		ra, rb := u.find(a), u.find(b)
		if ra != rb {
			u.union(ra, rb)
		}
	}
	for {
		// Collect odd roots (in first-touch order — deterministic) and
		// compact the cluster list down to live roots. Grounded clusters
		// (those holding an open-boundary node) never count as odd: the
		// boundary absorbs their parity, so they stop growing.
		u.odd = u.odd[:0]
		live := u.clusters[:0]
		for _, r := range u.clusters {
			if u.find(r) != r {
				continue
			}
			live = append(live, r)
			if u.node[r].flags&5 == 1 {
				u.odd = append(u.odd, r)
			}
		}
		u.clusters = live
		if len(u.odd) == 0 {
			break
		}
		// Growth sweep: every ungrown edge incident to an odd cluster's
		// boundary nodes gains one half-step of support. Edges reaching
		// full support (2·weight) queue a merge; a node whose incident
		// edges are all fully grown leaves the boundary for good.
		u.sweeps++
		u.grown = u.grown[:0]
		advanced := false
		for _, r := range u.odd {
			var keptHead, keptTail int32 = -1, -1
			for idx := u.bndHead[r]; idx >= 0; {
				v := u.bndNode[idx]
				next := u.bndNext[idx]
				open := false
				for k := g.off[v]; k < g.off[v+1]; k++ {
					e := g.adjE[k]
					target := uint64(2 * g.weight[e])
					st := u.edgeState[e]
					if st>>32 != uint64(u.epoch) {
						st = 0
					} else {
						st &= 0xffffffff
					}
					if st >= target {
						continue
					}
					u.edgeState[e] = epochBits | (st + 1)
					advanced = true
					if st+1 == target {
						u.grown = append(u.grown, e)
					} else {
						open = true
					}
				}
				if open {
					if keptTail < 0 {
						keptHead = idx
					} else {
						u.bndNext[keptTail] = idx
					}
					keptTail = idx
					u.bndNext[idx] = -1
				}
				idx = next
			}
			u.bndHead[r] = keptHead
			u.bndTail[r] = keptTail
		}
		if !advanced {
			// Cannot happen for a valid syndrome on a connected graph:
			// an odd cluster always has a boundary to grow.
			panic("decoder: growth stalled with odd clusters")
		}
		// Merge sweep, in grow order: record the erasure adjacency and
		// unite the endpoint clusters.
		for _, e := range u.grown {
			a, b := g.endU[e], g.endV[e]
			u.eraLink(e, a, b)
			u.absorb(a)
			u.absorb(b)
			ra, rb := u.find(a), u.find(b)
			if ra == rb {
				continue
			}
			u.union(ra, rb)
		}
	}
	u.peel(defects, emit)
}

// eraLink records fully-grown edge e in both endpoints' erasure
// adjacency lists.
func (u *UnionFind) eraLink(e, a, b int32) {
	for _, v := range [2]int32{a, b} {
		head := int32(-1)
		if u.eraSeen[v] == u.epoch {
			head = u.eraHead[v]
		} else {
			u.eraSeen[v] = u.epoch
		}
		w := b
		if v == b {
			w = a
		}
		u.eraEdge = append(u.eraEdge, e)
		u.eraNode = append(u.eraNode, w)
		u.eraNext = append(u.eraNext, head)
		u.eraHead[v] = int32(len(u.eraEdge)) - 1
	}
}

// absorb makes sure node v belongs to some cluster: a node first reached
// by cluster growth becomes a parity-0 singleton boundary node, and the
// following union folds it into the grower.
func (u *UnionFind) absorb(v int32) {
	if u.node[v].stamp>>1 == u.epoch {
		return
	}
	u.touch(v)
	u.pushBoundary(v, v)
	u.clusters = append(u.clusters, v)
}

// union merges the clusters rooted at ra and rb (by size, ties to the
// smaller id), adding parities (grounded flags OR) and splicing boundary
// lists in O(1).
func (u *UnionFind) union(ra, rb int32) {
	if u.node[ra].size < u.node[rb].size || (u.node[ra].size == u.node[rb].size && rb < ra) {
		ra, rb = rb, ra
	}
	u.node[rb].parent = ra
	u.node[ra].size += u.node[rb].size
	u.node[ra].flags ^= u.node[rb].flags & 1
	u.node[ra].flags |= u.node[rb].flags & 4
	if u.bndHead[rb] >= 0 {
		if u.bndTail[ra] < 0 {
			u.bndHead[ra] = u.bndHead[rb]
		} else {
			u.bndNext[u.bndTail[ra]] = u.bndHead[rb]
		}
		u.bndTail[ra] = u.bndTail[rb]
	}
}

// peel walks a spanning forest of the fully-grown (erasure) edges and
// peels it leaf-first: a leaf carrying a defect contributes its tree edge
// to the correction and hands its defect to the parent. A closed cluster
// has even parity, so its defects cancel pairwise inside the forest; a
// grounded cluster roots its tree at an open-boundary node, so any
// unpaired defect drains onto the boundary and is absorbed there.
func (u *UnionFind) peel(defects []int, emit func(edge int)) {
	visited := u.epoch<<1 | 1
	u.order = u.order[:0]
	// Boundary nodes that joined the erasure root their trees first (in
	// ascending node order — deterministic), so every grounded cluster's
	// DFS root is a boundary node.
	for _, b := range u.g.bndList {
		if u.eraSeen[b] == u.epoch {
			u.peelRoot(b, visited)
		}
	}
	for _, d := range defects {
		u.peelRoot(int32(d), visited)
	}
	for i := len(u.order) - 1; i >= 0; i-- {
		step := u.order[i]
		if step.parentEdge < 0 || u.node[step.node].flags&2 == 0 {
			continue
		}
		emit(int(step.parentEdge))
		u.node[step.node].flags &^= 2
		u.node[step.parentNode].flags ^= 2
	}
}

// peelRoot grows one DFS tree of the erasure forest from root (skipped
// if the root was already claimed by an earlier tree).
func (u *UnionFind) peelRoot(root int32, visited uint32) {
	if u.node[root].stamp == visited {
		return
	}
	u.node[root].stamp = visited
	u.stack = append(u.stack[:0], root)
	u.order = append(u.order, peelStep{node: root, parentEdge: -1, parentNode: -1})
	for len(u.stack) > 0 {
		v := u.stack[len(u.stack)-1]
		u.stack = u.stack[:len(u.stack)-1]
		if u.eraSeen[v] != u.epoch {
			continue
		}
		for idx := u.eraHead[v]; idx >= 0; idx = u.eraNext[idx] {
			w := u.eraNode[idx]
			if u.node[w].stamp == visited {
				continue
			}
			u.node[w].stamp = visited
			u.order = append(u.order, peelStep{node: w, parentEdge: u.eraEdge[idx], parentNode: v})
			u.stack = append(u.stack, w)
		}
	}
}

// bumpEpoch advances the scratch epoch, clearing the stamp arrays on
// wraparound of the 30-bit epoch so stale stamps can never collide.
func (u *UnionFind) bumpEpoch() {
	u.epoch++
	if u.epoch >= 1<<30 {
		for i := range u.node {
			u.node[i].stamp = 0
		}
		clear(u.edgeState)
		clear(u.eraSeen)
		u.epoch = 1
	}
}
