package decoder

// UnionFind is a weighted-growth union-find decoder (Delfosse–Nickerson
// style) over a fixed decoding graph. Decode cost is near-linear in the
// size of the grown region around the syndrome, not in the graph, so a
// sparse defect set on a large lattice decodes in microseconds where
// matching decoders pay at least O(defects²).
//
// A UnionFind holds per-graph scratch arrays and is NOT safe for
// concurrent use; give each worker its own instance (they can all share
// one *Graph). Scratch is recycled across calls with epoch stamps, so a
// Decode touches only the arrays' used entries; per-node cluster state is
// packed into one 16-byte record so the pointer-chasing hot loops touch
// one cache line per node.
type UnionFind struct {
	g *Graph

	// node[v] is all cluster state of node v. stamp encodes the epoch the
	// record is valid for (2·epoch when touched, 2·epoch+1 once visited
	// by the peeling pass). flags bit 0 is the cluster defect parity (at
	// roots), bit 1 the node's live defect flag during peeling, bit 2 the
	// grounded flag (at roots): the cluster contains an open-boundary
	// node, which absorbs its parity, so it never grows.
	node []ufNode

	// Edge growth state: support counts half-steps of growth; an edge of
	// weight w is fully grown (in the erasure) at support 2w, so
	// unit-weight graphs keep the classic 0→1→2 progression and heavier
	// edges take proportionally more sweeps to cross. Kept deliberately
	// narrow — two bytes per edge — so the random-access loads of the
	// growth hot loop stay cache-resident; edges that gained support are
	// listed in dirty and zeroed at the start of the next decode instead
	// of being epoch-stamped.
	sup   []uint16
	dirty []int32

	// uni is the shared full-support target when every edge of the graph
	// has the same weight (the common case: p = q collapses to a
	// unit-weight graph), letting the growth loop skip the per-edge
	// target load. Zero on mixed-weight graphs.
	uni uint16

	// sweeps counts the growth sweeps of the last Decode; a pure-erasure
	// syndrome (every defect inside an even-parity erased component)
	// leaves it at 0 — the peeling-only fast path.
	sweeps int

	// Boundary lists: cluster members that may still have ungrown
	// incident edges, kept as arena linked lists headed at the root
	// (head, tail), so a union concatenates in O(1).
	bndHead []int32
	bndTail []int32
	bndNode []int32
	bndNext []int32

	// Erasure adjacency, in CSR form rebuilt at peel time: allGrown
	// collects every fully-grown edge in completion order, eraDeg counts
	// per-node incidences as they complete (valid when eraSeen holds the
	// epoch), and two scatter passes lay the adjacency out contiguously
	// in csrEdge/csrNode — so peeling walks exactly the grown region in
	// cache order and never rescans graph adjacency.
	eraSeen  []uint32
	eraDeg   []int32
	eraStart []int32
	allGrown []int32
	csrEdge  []int32
	csrNode  []int32

	// Per-root extent of the grown region (valid at roots, merged by
	// union): the smallest and largest node id the cluster has touched.
	// Extraction's band filter is an O(1) test per root against these,
	// so a decode with nothing retainable pays nothing per node.
	minT []int32
	maxT []int32

	// Intrusive per-cluster member lists (head/tail valid at roots,
	// next chained through every member, spliced O(1) by union).
	// Extraction walks exactly the candidate clusters' nodes through
	// these instead of filtering the full touched log with a find per
	// node — the difference between O(candidate nodes) and O(window
	// nodes) per warm decode.
	memHead []int32
	memTail []int32
	memNext []int32

	// Guard support (incremental window decoding): nodes stamped with the
	// current epoch are barred from growth contact. The first touch of a
	// guarded node — or the first half-step of support on an edge whose
	// far endpoint is guarded — flags a conflict and aborts the decode,
	// recording the guarded node that was hit so the caller can release
	// just the cached cluster owning it (the warm-start sub-window
	// re-decode) instead of rebuilding its whole window.
	guardSeen    []uint32
	guardOn      bool
	conflict     bool
	conflictNode int32

	// First-touch log of every node reached this decode; doubles as the
	// node iteration order for the CSR build and the extraction scatter.
	touched []int32

	// Component-extraction scratch: candidate roots, comp index per
	// root, and per-candidate counts / selection state of the band
	// filter.
	compSeen []uint32
	compOf   []int32
	cands    []int32
	ccPairs  [][2]int32
	cNode    []int32
	cDef     []int32
	cCorr    []int32
	cSel     []int32

	// Correction edges of the last decode, in peel emit order.
	corrBuf []int32

	epoch uint32

	// Reusable worklists.
	clusters []int32
	odd      []int32
	grown    []int32
	stack    []int32
	order    []peelStep
}

type ufNode struct {
	parent int32
	size   int32
	stamp  uint32
	flags  uint32
}

type peelStep struct {
	node, parentEdge, parentNode int32
}

// NewUnionFind returns a decoder instance over g.
func NewUnionFind(g *Graph) *UnionFind {
	u := &UnionFind{
		g:        g,
		node:     make([]ufNode, g.nodes),
		sup:      make([]uint16, g.Edges()),
		bndHead:  make([]int32, g.nodes),
		bndTail:  make([]int32, g.nodes),
		eraSeen:  make([]uint32, g.nodes),
		eraDeg:   make([]int32, g.nodes),
		eraStart: make([]int32, g.nodes),
		minT:     make([]int32, g.nodes),
		maxT:     make([]int32, g.nodes),
		memHead:  make([]int32, g.nodes),
		memTail:  make([]int32, g.nodes),
		memNext:  make([]int32, g.nodes),
	}
	if len(g.grow) > 0 {
		u.uni = uint16(g.grow[0])
		for _, t := range g.grow {
			if t > 65535 {
				panic("decoder: edge weight too large for growth state")
			}
			if uint16(t) != u.uni {
				u.uni = 0
			}
		}
	}
	return u
}

// GrowthSweeps returns the number of growth sweeps the last Decode (or
// DecodeErased) ran. Zero means the peeling-only fast path: every defect
// was already inside an even-parity erased cluster.
func (u *UnionFind) GrowthSweeps() int { return u.sweeps }

// Components is the post-decode cluster extraction of a DecodeGuarded
// call: the retainable clusters of the final forest, each with its
// touched nodes, its defects, and its correction edges — everything a
// sliding-window caller needs to carry a cluster across a slide
// (persistent-forest mode). A cluster is retainable when it is not
// grounded and every touched node lies inside the caller's band
// [Lo, Hi); the filter is an O(1) extent test per cluster inside the
// extraction, so a decode with nothing retainable costs O(clusters),
// not O(grown region).
//
// Extraction is capacity-bounded: the capacities of NodeOff, Node, Def
// and Corr (set once with Init) are the budget, and a cluster that
// would overflow any of them is skipped — later, smaller clusters may
// still fit. The skip rule is a pure function of the decode, so two
// decoders with the same budgets extract identical sets. A zero-value
// Components has zero budget and extracts nothing (Conflict still
// reports). The flat CSR layout (Off slices index the value slices)
// and the fixed budgets make extraction allocation-free and keep a
// resident Components at a constant footprint.
//
// Clusters appear in root-creation order (the order the surviving
// roots were first touched), members in first-touch order, defects in
// defect-list order, corrections in emit order — all deterministic
// functions of (graph, defects, erasure).
type Components struct {
	// Conflict reports that the decode aborted on guard contact; every
	// other field is empty and the shot's correction is invalid.
	// ConflictNode is the guarded node the growth hit — the warm-start
	// caller's handle for releasing exactly the cached cluster that
	// interacted, rather than its whole forest. It is -1 while the
	// decode is clean.
	Conflict     bool
	ConflictNode int32

	// Lo, Hi is the retention band: a cluster touching any node outside
	// [Lo, Hi) is not extracted. Set by the caller before the decode.
	Lo, Hi int32

	NodeOff []int32 // len N+1; cluster i's touched nodes are Node[NodeOff[i]:NodeOff[i+1]]
	Node    []int32
	DefOff  []int32
	Def     []int32
	CorrOff []int32
	Corr    []int32
}

// Init sets the retention band and allocates the extraction arrays at
// their fixed budgets: at most `clusters` clusters, `nodes` touched
// nodes, `defs` defects and `corrs` correction edges in total.
func (c *Components) Init(lo, hi int32, clusters, nodes, defs, corrs int) {
	c.Lo, c.Hi = lo, hi
	c.NodeOff = make([]int32, 0, clusters+1)
	c.DefOff = make([]int32, 0, clusters+1)
	c.CorrOff = make([]int32, 0, clusters+1)
	c.Node = make([]int32, 0, nodes)
	c.Def = make([]int32, 0, defs)
	c.Corr = make([]int32, 0, corrs)
}

// N returns the cluster count of the extraction.
func (c *Components) N() int {
	if len(c.NodeOff) == 0 {
		return 0
	}
	return len(c.NodeOff) - 1
}

// reset empties the extraction, keeping the band and the budgets.
func (c *Components) reset() {
	c.Conflict = false
	c.ConflictNode = -1
	c.NodeOff = c.NodeOff[:0]
	c.Node = c.Node[:0]
	c.DefOff = c.DefOff[:0]
	c.Def = c.Def[:0]
	c.CorrOff = c.CorrOff[:0]
	c.Corr = c.Corr[:0]
}

// touch initializes node v's cluster state for the current epoch if it
// has not been seen yet, as a parity-0 singleton with an empty boundary.
// Open-boundary nodes start (and stay) grounded.
func (u *UnionFind) touch(v int32) {
	if u.node[v].stamp>>1 == u.epoch {
		return
	}
	u.node[v] = ufNode{parent: v, size: 1, stamp: u.epoch << 1}
	if u.g.bnd != nil && u.g.bnd[v] {
		u.node[v].flags = 4
	}
	u.bndHead[v] = -1
	u.bndTail[v] = -1
	u.minT[v] = v
	u.maxT[v] = v
	u.memHead[v] = v
	u.memTail[v] = v
	u.memNext[v] = -1
	u.touched = append(u.touched, v)
}

// find returns the root of v's cluster with path compression.
func (u *UnionFind) find(v int32) int32 {
	for u.node[v].parent != v {
		u.node[v].parent = u.node[u.node[v].parent].parent
		v = u.node[v].parent
	}
	return v
}

// pushBoundary appends node w to root r's boundary list.
func (u *UnionFind) pushBoundary(r, w int32) {
	u.bndNode = append(u.bndNode, w)
	u.bndNext = append(u.bndNext, -1)
	idx := int32(len(u.bndNode)) - 1
	if u.bndTail[r] < 0 {
		u.bndHead[r] = idx
	} else {
		u.bndNext[u.bndTail[r]] = idx
	}
	u.bndTail[r] = idx
}

// Decode grows clusters around the defects until every cluster holds an
// even number of them, then peels the grown region into a correction,
// calling emit once per correction edge. The defect list must be the
// syndrome of some error pattern (even total parity on a closed graph);
// emit receives each edge at most once, in a deterministic order that
// depends only on the defect list.
func (u *UnionFind) Decode(defects []int, emit func(edge int)) {
	u.DecodeErased(defects, nil, emit)
}

// DecodeErased is Decode with erasure information: the listed edges are
// known fault locations (leaked or erased qubits) and enter the erasure
// at full support before any growth. Clusters whose defects are already
// paired inside the erased components decode by peeling alone; only the
// odd remainder grows. Erased edges may be emitted in the correction
// even when no cluster grows.
func (u *UnionFind) DecodeErased(defects, erased []int, emit func(edge int)) {
	u.run(defects, erased, nil)
	for _, e := range u.corrBuf {
		emit(int(e))
	}
}

// DecodeGuarded is the incremental-window entry point: DecodeErased with
// the correction appended to corr (returned re-sliced, so a caller-owned
// buffer makes the steady state allocation-free), an optional guard node
// set, and an optional post-decode cluster extraction into comps.
//
// Guard nodes are the touched region of clusters a caller cached from an
// earlier, disjoint decode. If growth touches a guarded node — or puts
// the first half-step of support on an edge one of whose endpoints is
// guarded — the cached clusters would have interacted with this
// syndrome: the decode aborts, comps.Conflict is set, and ok is false
// (the returned corr is empty). Callers recover by re-decoding the full
// defect set without a guard. Defects themselves must not be guarded.
//
// When comps is non-nil and the decode completes, comps receives the
// cluster extraction (see Components).
func (u *UnionFind) DecodeGuarded(defects, erased []int, guard []int32, corr []int32, comps *Components) ([]int32, bool) {
	if comps != nil {
		comps.reset()
	}
	if !u.run(defects, erased, guard) {
		if comps != nil {
			comps.Conflict = true
			comps.ConflictNode = u.conflictNode
		}
		return corr[:0], false
	}
	if comps != nil {
		u.extract(comps)
	}
	return append(corr, u.corrBuf...), true
}

// run is the shared decode core: seeds, grows, merges and peels into
// u.corrBuf. It returns false when the guard flags a conflict (the
// scratch is left mid-decode; the next epoch bump invalidates it all).
func (u *UnionFind) run(defects, erased []int, guard []int32) bool {
	u.sweeps = 0
	u.conflict = false
	u.conflictNode = -1
	u.corrBuf = u.corrBuf[:0]
	u.touched = u.touched[:0]
	u.clusters = u.clusters[:0]
	// Zero the support the previous decode (including an aborted guarded
	// one) left behind — touching only the edges it actually grew.
	for _, e := range u.dirty {
		u.sup[e] = 0
	}
	u.dirty = u.dirty[:0]
	if len(defects) == 0 {
		return true
	}
	u.bumpEpoch()
	u.guardOn = len(guard) > 0
	if u.guardOn {
		if u.guardSeen == nil {
			u.guardSeen = make([]uint32, u.g.nodes)
		}
		for _, v := range guard {
			u.guardSeen[v] = u.epoch
		}
	}
	u.grown = u.grown[:0]
	u.allGrown = u.allGrown[:0]
	u.bndNode = u.bndNode[:0]
	u.bndNext = u.bndNext[:0]
	for _, d := range defects {
		v := int32(d)
		if u.g.bnd != nil && u.g.bnd[v] {
			panic("decoder: boundary node cannot be a defect")
		}
		if u.guardOn && u.guardSeen[v] == u.epoch {
			panic("decoder: guarded node cannot be a defect")
		}
		u.touch(v)
		if u.node[v].flags != 0 {
			panic("decoder: duplicate defect")
		}
		u.node[v].flags = 19 // cluster parity odd + live defect + seeded defect (bit 4, survives peel)
		u.pushBoundary(v, v)
		u.clusters = append(u.clusters, v)
	}
	g := u.g
	// Seed the erasure: every erased edge is fully grown from the start,
	// its endpoints absorbed and united, exactly as if growth had crossed
	// it — so the growth loop and the peeling pass need no special cases.
	for _, e := range erased {
		ee := int32(e)
		target := uint16(g.grow[ee])
		if u.sup[ee] >= target {
			continue // duplicate erased edge
		}
		u.sup[ee] = target
		u.dirty = append(u.dirty, ee)
		a, b := g.endU[ee], g.endV[ee]
		if u.guardOn && (u.guardSeen[a] == u.epoch || u.guardSeen[b] == u.epoch) {
			u.conflict = true
			if u.guardSeen[a] == u.epoch {
				u.conflictNode = a
			} else {
				u.conflictNode = b
			}
			return false
		}
		u.eraAdd(ee, a, b)
		u.absorb(a)
		u.absorb(b)
		ra, rb := u.find(a), u.find(b)
		if ra != rb {
			u.union(ra, rb)
		}
	}
	off, adjE, adjN, growA := g.off, g.adjE, g.adjN, g.grow
	sup := u.sup
	uni := u.uni
	guardOn := u.guardOn
	// Collect the initially-odd roots (in first-touch order —
	// deterministic). Grounded clusters (those holding an open-boundary
	// node) never count as odd: the boundary absorbs their parity, so
	// they stop growing. Across sweeps the odd list is maintained
	// incrementally: a cluster can only be odd after a merge sweep if it
	// swallowed a previously-odd cluster (odd+odd cancels, even clusters
	// neither grow nor change parity on their own), so re-deriving the
	// next sweep's odd roots from the previous list — instead of
	// rescanning every cluster ever created — keeps the collect cost
	// proportional to the live frontier.
	u.odd = u.odd[:0]
	for _, r := range u.clusters {
		if u.find(r) == r && u.node[r].flags&5 == 1 {
			u.odd = append(u.odd, r)
		}
	}
	for len(u.odd) > 0 {
		// Growth sweep: every ungrown edge incident to an odd cluster's
		// boundary nodes gains one half-step of support. Edges reaching
		// full support (2·weight) queue a merge; a node whose incident
		// edges are all fully grown leaves the boundary for good.
		u.sweeps++
		u.grown = u.grown[:0]
		advanced := false
		for _, r := range u.odd {
			u.node[r].flags &^= 8
			var keptHead, keptTail int32 = -1, -1
			for idx := u.bndHead[r]; idx >= 0; {
				v := u.bndNode[idx]
				next := u.bndNext[idx]
				open := false
				ae := adjE[off[v]:off[v+1]]
				for i, e := range ae {
					target := uni
					if target == 0 {
						target = uint16(growA[e])
					}
					st := sup[e]
					if st >= target {
						continue
					}
					if st == 0 {
						if guardOn && u.guardSeen[adjN[off[v]+int32(i)]] == u.epoch {
							// First support on an edge into the guarded
							// region: the cached cluster on the far side
							// would have contributed support of its own.
							u.conflict = true
							u.conflictNode = adjN[off[v]+int32(i)]
							return false
						}
						u.dirty = append(u.dirty, e)
					}
					sup[e] = st + 1
					advanced = true
					if st+1 == target {
						u.grown = append(u.grown, e)
					} else {
						open = true
					}
				}
				if open {
					if keptTail < 0 {
						keptHead = idx
					} else {
						u.bndNext[keptTail] = idx
					}
					keptTail = idx
					u.bndNext[idx] = -1
				}
				idx = next
			}
			u.bndHead[r] = keptHead
			u.bndTail[r] = keptTail
		}
		if !advanced {
			// Cannot happen for a valid syndrome on a connected graph:
			// an odd cluster always has a boundary to grow.
			panic("decoder: growth stalled with odd clusters")
		}
		// Merge sweep, in grow order: record the erasure adjacency and
		// unite the endpoint clusters.
		for _, e := range u.grown {
			a, b := g.endU[e], g.endV[e]
			u.eraAdd(e, a, b)
			if u.absorb(a) || u.absorb(b) {
				return false
			}
			ra, rb := u.find(a), u.find(b)
			if ra == rb {
				continue
			}
			u.union(ra, rb)
		}
		// Re-derive the odd roots from the previous list (see above),
		// deduplicating merged roots with flag bit 3 — set while a root
		// is queued, cleared as the growth sweep picks it up.
		next := u.odd[:0]
		for _, r := range u.odd {
			rr := u.find(r)
			if u.node[rr].flags&13 == 1 {
				u.node[rr].flags |= 8
				next = append(next, rr)
			}
		}
		u.odd = next
	}
	u.peel(defects)
	return true
}

// eraAdd records fully-grown edge e: its endpoints' erasure degrees for
// the CSR build at peel time, and the edge itself in completion order.
func (u *UnionFind) eraAdd(e, a, b int32) {
	if u.eraSeen[a] != u.epoch {
		u.eraSeen[a] = u.epoch
		u.eraDeg[a] = 0
	}
	u.eraDeg[a]++
	if u.eraSeen[b] != u.epoch {
		u.eraSeen[b] = u.epoch
		u.eraDeg[b] = 0
	}
	u.eraDeg[b]++
	u.allGrown = append(u.allGrown, e)
}

// absorb makes sure node v belongs to some cluster: a node first reached
// by cluster growth becomes a parity-0 singleton boundary node, and the
// following union folds it into the grower. It reports a guard conflict
// on the first contact with a guarded node.
func (u *UnionFind) absorb(v int32) bool {
	if u.node[v].stamp>>1 == u.epoch {
		return false
	}
	if u.guardOn && u.guardSeen[v] == u.epoch {
		u.conflict = true
		u.conflictNode = v
		return true
	}
	u.touch(v)
	u.pushBoundary(v, v)
	u.clusters = append(u.clusters, v)
	return false
}

// union merges the clusters rooted at ra and rb (by size, ties to the
// smaller id), adding parities (grounded flags OR), merging grown-region
// extents, and splicing boundary lists in O(1).
func (u *UnionFind) union(ra, rb int32) {
	if u.node[ra].size < u.node[rb].size || (u.node[ra].size == u.node[rb].size && rb < ra) {
		ra, rb = rb, ra
	}
	u.node[rb].parent = ra
	u.node[ra].size += u.node[rb].size
	u.node[ra].flags ^= u.node[rb].flags & 1
	u.node[ra].flags |= u.node[rb].flags & 4
	u.minT[ra] = min(u.minT[ra], u.minT[rb])
	u.maxT[ra] = max(u.maxT[ra], u.maxT[rb])
	u.memNext[u.memTail[ra]] = u.memHead[rb]
	u.memTail[ra] = u.memTail[rb]
	if u.bndHead[rb] >= 0 {
		if u.bndTail[ra] < 0 {
			u.bndHead[ra] = u.bndHead[rb]
		} else {
			u.bndNext[u.bndTail[ra]] = u.bndHead[rb]
		}
		u.bndTail[ra] = u.bndTail[rb]
	}
}

// peel lays the grown (erasure) adjacency out in CSR form, walks a
// spanning forest of it and peels it leaf-first: a leaf carrying a
// defect contributes its tree edge to the correction and hands its
// defect to the parent. A closed cluster has even parity, so its defects
// cancel pairwise inside the forest; a grounded cluster roots its tree
// at an open-boundary node, so any unpaired defect drains onto the
// boundary and is absorbed there. Correction edges land in u.corrBuf.
func (u *UnionFind) peel(defects []int) {
	g := u.g
	// CSR build: offsets in first-touch node order, then one scatter
	// pass over the grown edges (eraStart ends one past each node's
	// block; the block start is eraStart[v]-eraDeg[v]).
	pos := int32(0)
	for _, v := range u.touched {
		if u.eraSeen[v] == u.epoch {
			u.eraStart[v] = pos
			pos += u.eraDeg[v]
		}
	}
	n := int(pos)
	if cap(u.csrEdge) < n {
		u.csrEdge = make([]int32, n)
		u.csrNode = make([]int32, n)
	} else {
		u.csrEdge = u.csrEdge[:n]
		u.csrNode = u.csrNode[:n]
	}
	for _, e := range u.allGrown {
		a, b := g.endU[e], g.endV[e]
		u.csrEdge[u.eraStart[a]], u.csrNode[u.eraStart[a]] = e, b
		u.eraStart[a]++
		u.csrEdge[u.eraStart[b]], u.csrNode[u.eraStart[b]] = e, a
		u.eraStart[b]++
	}
	visited := u.epoch<<1 | 1
	u.order = u.order[:0]
	// Boundary nodes that joined the erasure root their trees first (in
	// ascending node order — deterministic), so every grounded cluster's
	// DFS root is a boundary node.
	for _, b := range u.g.bndList {
		if u.eraSeen[b] == u.epoch {
			u.peelRoot(b, visited)
		}
	}
	for _, d := range defects {
		u.peelRoot(int32(d), visited)
	}
	for i := len(u.order) - 1; i >= 0; i-- {
		step := u.order[i]
		if step.parentEdge < 0 || u.node[step.node].flags&2 == 0 {
			continue
		}
		u.corrBuf = append(u.corrBuf, step.parentEdge)
		u.node[step.node].flags &^= 2
		u.node[step.parentNode].flags ^= 2
	}
}

// peelRoot grows one DFS tree of the erasure forest from root (skipped
// if the root was already claimed by an earlier tree).
func (u *UnionFind) peelRoot(root int32, visited uint32) {
	if u.node[root].stamp == visited {
		return
	}
	u.node[root].stamp = visited
	u.stack = append(u.stack[:0], root)
	u.order = append(u.order, peelStep{node: root, parentEdge: -1, parentNode: -1})
	for len(u.stack) > 0 {
		v := u.stack[len(u.stack)-1]
		u.stack = u.stack[:len(u.stack)-1]
		if u.eraSeen[v] != u.epoch {
			continue
		}
		end := u.eraStart[v]
		for i := end - u.eraDeg[v]; i < end; i++ {
			w := u.csrNode[i]
			if u.node[w].stamp == visited {
				continue
			}
			u.node[w].stamp = visited
			u.order = append(u.order, peelStep{node: w, parentEdge: u.csrEdge[i], parentNode: v})
			u.stack = append(u.stack, w)
		}
	}
}

// extract materializes the retainable clusters (see Components): not
// grounded, grown region inside [c.Lo, c.Hi), isolated from every
// non-retained cluster, and fitting the remaining array budgets. The
// candidate test runs over the live roots using the extents tracked
// through union — O(clusters) — and every per-node pass afterwards
// walks only the candidates' member lists, never the full touched
// region, so a dense decode pays for extraction in proportion to what
// it retains. The peel pass leaves parent links and flags intact, so
// find() still recovers the final partition.
//
// The isolation filter is what makes warm-start retention pay in the
// dense regime: an incident edge that carried support this decode
// whose far endpoint settled in a different cluster marks growth
// contact — when the non-retained side re-decodes after the slide it
// regrows the same support and a guard conflict is certain, so a
// candidate in mixed contact is dropped up front instead of buying a
// release wave later. Contact between two candidates is harmless (both
// sides are stripped and guarded together), but a dropped candidate
// becomes non-candidate contact for its neighbours, so recorded
// candidate–candidate pairs cascade to a fixpoint (order-independent:
// drops are monotone).
func (u *UnionFind) extract(c *Components) {
	u.cands = u.cands[:0]
	for _, r := range u.clusters {
		if u.find(r) != r {
			continue
		}
		if u.node[r].flags&4 == 0 && u.minT[r] >= c.Lo && u.maxT[r] < c.Hi {
			u.cands = append(u.cands, r)
		}
	}
	if len(u.cands) == 0 {
		return
	}
	if u.compSeen == nil {
		u.compSeen = make([]uint32, u.g.nodes)
		u.compOf = make([]int32, u.g.nodes)
	}
	n := len(u.cands)
	if cap(u.cDef) < n {
		u.cNode = make([]int32, n)
		u.cDef = make([]int32, n)
		u.cCorr = make([]int32, n)
		u.cSel = make([]int32, n)
	} else {
		u.cNode = u.cNode[:n]
		u.cDef = u.cDef[:n]
		u.cCorr = u.cCorr[:n]
		u.cSel = u.cSel[:n]
	}
	for i, r := range u.cands {
		u.compSeen[r] = u.epoch
		u.compOf[r] = int32(i)
		u.cCorr[i] = 0
	}
	// Per-candidate correction counts (a correction edge belongs to its
	// endpoint's cluster; peel only emits edges inside the erasure, so
	// both endpoints agree).
	for _, e := range u.corrBuf {
		if r := u.find(u.g.endU[e]); u.compSeen[r] == u.epoch {
			u.cCorr[u.compOf[r]]++
		}
	}
	// Streaming selection in candidate order: the O(1) budget test on
	// the cluster size goes first, so only candidates that could still
	// fit walk their member list — one walk that fuses the defect count
	// with the isolation scan. A candidate rejected here (budget or
	// contact) is demoted to non-candidate on the spot, so later
	// candidates see contact with it for what it is: contact with a
	// cluster that will re-decode after the slide.
	g := u.g
	u.ccPairs = u.ccPairs[:0]
	var nodes, defs, corrs int32
	m := 0
	nodeCap, defCap, corrCap := int32(cap(c.Node)), int32(cap(c.Def)), int32(cap(c.Corr))
	for i, r := range u.cands {
		u.cSel[i] = -1
		sz := u.node[r].size
		if m+2 > cap(c.NodeOff) || nodes+sz > nodeCap || corrs+u.cCorr[i] > corrCap {
			u.compSeen[r] = u.epoch - 1
			continue
		}
		dfs := int32(0)
		drop := false
	scan:
		for v := u.memHead[r]; v >= 0; v = u.memNext[v] {
			if u.node[v].flags&16 != 0 {
				dfs++
			}
			ae := g.adjE[g.off[v]:g.off[v+1]]
			for j, e := range ae {
				if u.sup[e] == 0 {
					continue
				}
				nb := g.adjN[g.off[v]+int32(j)]
				if u.node[nb].stamp>>1 != u.epoch {
					continue // support into free space, not cluster contact
				}
				rn := u.find(nb)
				if rn == r {
					continue
				}
				if u.compSeen[rn] == u.epoch {
					u.ccPairs = append(u.ccPairs, [2]int32{r, rn})
					continue
				}
				drop = true
				break scan
			}
		}
		if drop || defs+dfs > defCap {
			u.compSeen[r] = u.epoch - 1
			continue
		}
		u.cDef[i] = dfs
		u.cSel[i] = int32(m)
		m++
		nodes += sz
		defs += dfs
		corrs += u.cCorr[i]
	}
	if m == 0 {
		return
	}
	// Candidate–candidate contact pairs cascade to a fixpoint: a pair
	// whose one side has since been rejected takes the other side down
	// with it (order-independent — drops are monotone). Contact between
	// two retained candidates stays harmless: both sides are stripped
	// and guarded together.
	dropped := false
	for changed := true; changed; {
		changed = false
		for _, p := range u.ccPairs {
			ca, cb := u.compSeen[p[0]] == u.epoch, u.compSeen[p[1]] == u.epoch
			if ca == cb {
				continue
			}
			if ca {
				u.compSeen[p[0]] = u.epoch - 1
			} else {
				u.compSeen[p[1]] = u.epoch - 1
			}
			changed = true
			dropped = true
		}
	}
	if dropped {
		m = 0
		for i, r := range u.cands {
			if u.cSel[i] < 0 {
				continue
			}
			if u.compSeen[r] != u.epoch {
				u.cSel[i] = -1
				continue
			}
			u.cSel[i] = int32(m)
			m++
		}
		if m == 0 {
			return
		}
	}
	// CSR offsets of the selected clusters, then one member-list walk
	// per cluster scattering nodes and defects together, and a pass
	// over the correction buffer — with the count arrays recycled as
	// write cursors.
	c.NodeOff = append(c.NodeOff, 0)
	c.DefOff = append(c.DefOff, 0)
	c.CorrOff = append(c.CorrOff, 0)
	for i, r := range u.cands {
		s := u.cSel[i]
		if s < 0 {
			continue
		}
		c.NodeOff = append(c.NodeOff, c.NodeOff[s]+u.node[r].size)
		c.DefOff = append(c.DefOff, c.DefOff[s]+u.cDef[i])
		c.CorrOff = append(c.CorrOff, c.CorrOff[s]+u.cCorr[i])
		u.cNode[i] = c.NodeOff[s]
		u.cDef[i] = c.DefOff[s]
		u.cCorr[i] = c.CorrOff[s]
	}
	c.Node = c.Node[:c.NodeOff[len(c.NodeOff)-1]]
	c.Def = c.Def[:c.DefOff[len(c.DefOff)-1]]
	c.Corr = c.Corr[:c.CorrOff[len(c.CorrOff)-1]]
	for i, r := range u.cands {
		if u.cSel[i] < 0 {
			continue
		}
		for v := u.memHead[r]; v >= 0; v = u.memNext[v] {
			c.Node[u.cNode[i]] = v
			u.cNode[i]++
			if u.node[v].flags&16 != 0 {
				c.Def[u.cDef[i]] = v
				u.cDef[i]++
			}
		}
	}
	for _, e := range u.corrBuf {
		r := u.find(u.g.endU[e])
		if u.compSeen[r] != u.epoch {
			continue
		}
		if i := u.compOf[r]; u.cSel[i] >= 0 {
			c.Corr[u.cCorr[i]] = e
			u.cCorr[i]++
		}
	}
}

// bumpEpoch advances the scratch epoch, clearing the stamp arrays on
// wraparound of the 30-bit epoch so stale stamps can never collide.
func (u *UnionFind) bumpEpoch() {
	u.epoch++
	if u.epoch >= 1<<30 {
		for i := range u.node {
			u.node[i].stamp = 0
		}
		clear(u.eraSeen)
		if u.guardSeen != nil {
			clear(u.guardSeen)
		}
		if u.compSeen != nil {
			clear(u.compSeen)
		}
		u.epoch = 1
	}
}
