package decoder

// Polynomial minimum-weight perfect matching on dense defect graphs.
//
// The engine is the classic primal-dual blossom algorithm for maximum
// weight matching in general graphs (Galil's O(n³) formulation, following
// the well-known van Rantwijk reference implementation): it maintains
// vertex/blossom dual variables, grows alternating trees from free
// vertices, shrinks odd cycles into blossoms, and adjusts duals until an
// augmenting path of tight edges appears. Minimum-weight PERFECT matching
// is obtained by running it in maximum-cardinality mode on the
// complement weights w'ₑ = W − wₑ (W ≥ max wₑ): with cardinality fixed at
// n/2, maximizing Σw' minimizes Σw. All arithmetic is integral — input
// weights are doubled internally so the half-integral duals of the
// textbook algorithm stay in int64.

// Matcher computes minimum-weight perfect matchings. The zero value is
// ready to use; a Matcher recycles its internal arrays across calls and
// is NOT safe for concurrent use (one per worker, like UnionFind).
type Matcher struct {
	blossom blossomState
	// edge staging (complete or pruned graph)
	edgeI, edgeJ []int32
	edgeW        []int64
	pairs        [][2]int32
	// pruned-matching repair edges (pairs priced back in): membership
	// keyed i*n+j, plus the insertion-ordered list that keeps staging
	// deterministic (map iteration never enters a decision).
	repair     map[int64]bool
	repairList [][2]int32
}

// MinWeightPairs returns a pairing (i,j), i<j, of the n vertices
// 0…n-1 minimizing the total weight(i,j), where weight is symmetric and
// nonnegative. n must be even. The returned slice is reused by the next
// call. Ties between equal-weight pairings are broken deterministically
// (a pure function of the weight table).
func (m *Matcher) MinWeightPairs(n int, weight func(i, j int) int64) [][2]int32 {
	if n%2 != 0 {
		panic("decoder: odd vertex count in MinWeightPairs")
	}
	m.pairs = m.pairs[:0]
	if n == 0 {
		return m.pairs
	}
	if n == 2 {
		return append(m.pairs, [2]int32{0, 1})
	}
	ne := n * (n - 1) / 2
	if cap(m.edgeI) < ne {
		m.edgeI = make([]int32, 0, ne)
		m.edgeJ = make([]int32, 0, ne)
		m.edgeW = make([]int64, 0, ne)
	}
	m.edgeI, m.edgeJ, m.edgeW = m.edgeI[:0], m.edgeJ[:0], m.edgeW[:0]
	var maxW int64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			w := weight(i, j)
			if w < 0 {
				panic("decoder: negative weight")
			}
			if w > maxW {
				maxW = w
			}
			m.edgeI = append(m.edgeI, int32(i))
			m.edgeJ = append(m.edgeJ, int32(j))
			m.edgeW = append(m.edgeW, w)
		}
	}
	// Complement so maximum-weight = minimum-distance, then double for
	// integral duals.
	for k := range m.edgeW {
		m.edgeW[k] = 2 * (maxW - m.edgeW[k])
	}
	mate := m.blossom.maxWeightMatching(n, m.edgeI, m.edgeJ, m.edgeW)
	for v := 0; v < n; v++ {
		w := mate[v]
		if w < 0 {
			panic("decoder: matching is not perfect")
		}
		if int32(v) < w {
			m.pairs = append(m.pairs, [2]int32{int32(v), w})
		}
	}
	return m.pairs
}

// SparseMatchMin is the defect count above which callers should prefer
// MinWeightPairsPruned: below it the complete graph is already tiny and
// pruning only adds the pricing sweep.
const SparseMatchMin = 24

// MinWeightPairsPruned returns a matching with the same total weight as
// MinWeightPairs while feeding the blossom engine only the locally short
// edges — those of weight at most cutoff — so the engine runs on ~O(n)
// edges instead of the complete O(n²) graph. Optimality against the full
// graph is certified, not assumed: after each solve, excluded pairs are
// priced against the engine's dual variables (blossom duals are
// nonnegative, so the vertex-dual check is conservative), violated edges
// are staged back in, and the solve repeats; if the pruned graph admits
// no perfect matching the cutoff doubles. For defect sets whose matched
// pairs are all locally close — the generic case below threshold — no
// repair round ever runs.
//
// Candidate enumeration here scans all pairs (no geometry is assumed);
// callers whose defects carry coordinates should pass a DefectGrid
// enumerator to MinWeightPairsIndexed instead, which makes staging and
// pricing ~O(n·k).
func (m *Matcher) MinWeightPairsPruned(n int, weight func(i, j int) int64, cutoff int64) [][2]int32 {
	return m.MinWeightPairsIndexed(n, weight, cutoff, func(i int, _ int64, visit func(j int)) {
		for j := 0; j < n; j++ {
			if j != i {
				visit(j)
			}
		}
	})
}

// blossomState holds the primal-dual working arrays of one matching run.
type blossomState struct {
	nvertex int
	nedge   int
	edgeI   []int32
	edgeJ   []int32
	edgeW   []int64

	endpoint  []int32   // endpoint[p] = vertex at endpoint p of edge p/2
	neighbend [][]int32 // neighbend[v] = remote endpoints of v's edges

	mate      []int32 // mate[v] = remote endpoint of matched edge, or -1
	label     []uint8 // 0 free, 1 S, 2 T (+4 breadcrumb during scans)
	labelend  []int32
	inblossom []int32

	blossomparent    []int32
	blossomchilds    [][]int32
	blossombase      []int32
	blossomendps     [][]int32
	bestedge         []int32
	blossombestedges [][]int32
	unusedblossoms   []int32

	dualvar    []int64
	allowedge  []bool
	queue      []int32
	bestedgeto []int32
}

func (st *blossomState) slack(k int32) int64 {
	return st.dualvar[st.edgeI[k]] + st.dualvar[st.edgeJ[k]] - 2*st.edgeW[k]
}

// blossomLeaves calls fn for every vertex inside blossom b.
func (st *blossomState) blossomLeaves(b int32, fn func(v int32)) {
	if int(b) < st.nvertex {
		fn(b)
		return
	}
	for _, t := range st.blossomchilds[b] {
		st.blossomLeaves(t, fn)
	}
}

// assignLabel labels the top-level blossom of vertex w as t (1=S, 2=T)
// reached through endpoint p.
func (st *blossomState) assignLabel(w int32, t uint8, p int32) {
	b := st.inblossom[w]
	st.label[w] = t
	st.label[b] = t
	st.labelend[w] = p
	st.labelend[b] = p
	st.bestedge[w] = -1
	st.bestedge[b] = -1
	if t == 1 {
		st.blossomLeaves(b, func(v int32) { st.queue = append(st.queue, v) })
	} else if t == 2 {
		base := st.blossombase[b]
		st.assignLabel(st.endpoint[st.mate[base]], 1, st.mate[base]^1)
	}
}

// scanBlossom traces back from v and w to discover either a new blossom
// (returns its base) or an augmenting path (returns -1).
func (st *blossomState) scanBlossom(v, w int32) int32 {
	path := []int32{}
	base := int32(-1)
	for v != -1 || w != -1 {
		b := st.inblossom[v]
		if st.label[b]&4 != 0 {
			base = st.blossombase[b]
			break
		}
		path = append(path, b)
		st.label[b] |= 4
		if st.labelend[b] == -1 {
			v = -1
		} else {
			v = st.endpoint[st.labelend[b]]
			b = st.inblossom[v]
			v = st.endpoint[st.labelend[b]]
		}
		if w != -1 {
			v, w = w, v
		}
	}
	for _, b := range path {
		st.label[b] &^= 4
	}
	return base
}

// addBlossom shrinks the odd cycle through base closed by edge k into a
// new blossom.
func (st *blossomState) addBlossom(base int32, k int32) {
	v, w := st.edgeI[k], st.edgeJ[k]
	bb := st.inblossom[base]
	bv := st.inblossom[v]
	bw := st.inblossom[w]
	b := st.unusedblossoms[len(st.unusedblossoms)-1]
	st.unusedblossoms = st.unusedblossoms[:len(st.unusedblossoms)-1]
	st.blossombase[b] = base
	st.blossomparent[b] = -1
	st.blossomparent[bb] = b
	path := st.blossomchilds[b][:0]
	endps := st.blossomendps[b][:0]
	for bv != bb {
		st.blossomparent[bv] = b
		path = append(path, bv)
		endps = append(endps, st.labelend[bv])
		v = st.endpoint[st.labelend[bv]]
		bv = st.inblossom[v]
	}
	path = append(path, bb)
	// Reverse into cycle order starting at the base.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	for i, j := 0, len(endps)-1; i < j; i, j = i+1, j-1 {
		endps[i], endps[j] = endps[j], endps[i]
	}
	endps = append(endps, 2*k)
	for bw != bb {
		st.blossomparent[bw] = b
		path = append(path, bw)
		endps = append(endps, st.labelend[bw]^1)
		w = st.endpoint[st.labelend[bw]]
		bw = st.inblossom[w]
	}
	st.blossomchilds[b] = path
	st.blossomendps[b] = endps
	st.label[b] = 1
	st.labelend[b] = st.labelend[bb]
	st.dualvar[b] = 0
	st.blossomLeaves(b, func(u int32) {
		if st.label[st.inblossom[u]] == 2 {
			st.queue = append(st.queue, u)
		}
		st.inblossom[u] = b
	})
	// Recompute the least-slack edges from the new blossom to every other
	// S-blossom.
	bestedgeto := st.bestedgeto
	for i := range bestedgeto {
		bestedgeto[i] = -1
	}
	for _, bv := range path {
		if st.blossombestedges[bv] == nil {
			// Walk all edges of all leaves.
			st.blossomLeaves(bv, func(u int32) {
				for _, p := range st.neighbend[u] {
					st.considerBest(b, p/2, bestedgeto)
				}
			})
		} else {
			for _, k2 := range st.blossombestedges[bv] {
				st.considerBest(b, k2, bestedgeto)
			}
		}
		st.blossombestedges[bv] = nil
		st.bestedge[bv] = -1
	}
	best := st.blossombestedges[b][:0]
	for _, k2 := range bestedgeto {
		if k2 != -1 {
			best = append(best, k2)
		}
	}
	st.blossombestedges[b] = best
	st.bestedge[b] = -1
	for _, k2 := range best {
		if st.bestedge[b] == -1 || st.slack(k2) < st.slack(st.bestedge[b]) {
			st.bestedge[b] = k2
		}
	}
}

// considerBest updates bestedgeto with edge k if it leaves blossom b
// toward an S-blossom with smaller slack than the current candidate.
func (st *blossomState) considerBest(b, k int32, bestedgeto []int32) {
	j := st.edgeJ[k]
	if st.inblossom[j] == b {
		j = st.edgeI[k]
	}
	bj := st.inblossom[j]
	if bj != b && st.label[bj] == 1 &&
		(bestedgeto[bj] == -1 || st.slack(k) < st.slack(bestedgeto[bj])) {
		bestedgeto[bj] = k
	}
}

// expandBlossom undoes blossom b, relabeling its children. endstage is
// true when expanding zero-dual S-blossoms after an augmentation.
func (st *blossomState) expandBlossom(b int32, endstage bool) {
	for _, s := range st.blossomchilds[b] {
		st.blossomparent[s] = -1
		if int(s) < st.nvertex {
			st.inblossom[s] = s
		} else if endstage && st.dualvar[s] == 0 {
			st.expandBlossom(s, endstage)
		} else {
			st.blossomLeaves(s, func(v int32) { st.inblossom[v] = s })
		}
	}
	if !endstage && st.label[b] == 2 {
		// The expanding blossom is part of a T-alternating path; relabel
		// the even-length sub-path of children along the path and unlabel
		// the rest.
		entrychild := st.inblossom[st.endpoint[st.labelend[b]^1]]
		j := int32(indexOf(st.blossomchilds[b], entrychild))
		var jstep, endptrick int32
		if j&1 != 0 {
			j -= int32(len(st.blossomchilds[b]))
			jstep = 1
			endptrick = 0
		} else {
			jstep = -1
			endptrick = 1
		}
		p := st.labelend[b]
		for j != 0 {
			st.label[st.endpoint[p^1]] = 0
			st.label[st.endpoint[at(st.blossomendps[b], j-endptrick)^endptrick^1]] = 0
			st.assignLabel(st.endpoint[p^1], 2, p)
			st.allowedge[at(st.blossomendps[b], j-endptrick)/2] = true
			j += jstep
			p = at(st.blossomendps[b], j-endptrick) ^ endptrick
			st.allowedge[p/2] = true
			j += jstep
		}
		bv := at(st.blossomchilds[b], j)
		st.label[st.endpoint[p^1]] = 2
		st.label[bv] = 2
		st.labelend[st.endpoint[p^1]] = p
		st.labelend[bv] = p
		st.bestedge[bv] = -1
		j += jstep
		for at(st.blossomchilds[b], j) != entrychild {
			bv = at(st.blossomchilds[b], j)
			if st.label[bv] == 1 {
				j += jstep
				continue
			}
			var vfound int32 = -1
			st.blossomLeaves(bv, func(v int32) {
				if vfound == -1 && st.label[v] != 0 {
					vfound = v
				}
			})
			if vfound != -1 {
				st.label[vfound] = 0
				st.label[st.endpoint[st.mate[st.blossombase[bv]]]] = 0
				st.assignLabel(vfound, 2, st.labelend[vfound])
			}
			j += jstep
		}
	}
	st.label[b] = 0
	st.labelend[b] = -1
	st.blossomchilds[b] = st.blossomchilds[b][:0]
	st.blossomendps[b] = st.blossomendps[b][:0]
	st.blossombase[b] = -1
	st.blossombestedges[b] = nil
	st.bestedge[b] = -1
	st.unusedblossoms = append(st.unusedblossoms, b)
}

// at indexes a cyclic child/endpoint list with a possibly negative index
// (Python-style wraparound).
func at(s []int32, j int32) int32 {
	if j < 0 {
		j += int32(len(s))
	}
	return s[j]
}

func indexOf(s []int32, x int32) int {
	for i, v := range s {
		if v == x {
			return i
		}
	}
	panic("decoder: blossom child not found")
}

// augmentBlossom swaps matched/unmatched edges over the alternating path
// through blossom b between its base and vertex v.
func (st *blossomState) augmentBlossom(b, v int32) {
	t := v
	for st.blossomparent[t] != b {
		t = st.blossomparent[t]
	}
	if int(t) >= st.nvertex {
		st.augmentBlossom(t, v)
	}
	i := int32(indexOf(st.blossomchilds[b], t))
	j := i
	var jstep, endptrick int32
	if i&1 != 0 {
		j -= int32(len(st.blossomchilds[b]))
		jstep = 1
		endptrick = 0
	} else {
		jstep = -1
		endptrick = 1
	}
	for j != 0 {
		j += jstep
		t = at(st.blossomchilds[b], j)
		p := at(st.blossomendps[b], j-endptrick) ^ endptrick
		if int(t) >= st.nvertex {
			st.augmentBlossom(t, st.endpoint[p])
		}
		j += jstep
		t = at(st.blossomchilds[b], j)
		if int(t) >= st.nvertex {
			st.augmentBlossom(t, st.endpoint[p^1])
		}
		st.mate[st.endpoint[p]] = p ^ 1
		st.mate[st.endpoint[p^1]] = p
	}
	// Rotate the child list so the new base (containing v) comes first.
	st.blossomchilds[b] = append(st.blossomchilds[b][i:], st.blossomchilds[b][:i]...)
	st.blossomendps[b] = append(st.blossomendps[b][i:], st.blossomendps[b][:i]...)
	st.blossombase[b] = st.blossombase[st.blossomchilds[b][0]]
}

// augmentMatching augments along the path through tight edge k.
func (st *blossomState) augmentMatching(k int32) {
	v, w := st.edgeI[k], st.edgeJ[k]
	for _, sp := range [2][2]int32{{v, 2*k + 1}, {w, 2 * k}} {
		s, p := sp[0], sp[1]
		for {
			bs := st.inblossom[s]
			if int(bs) >= st.nvertex {
				st.augmentBlossom(bs, s)
			}
			st.mate[s] = p
			if st.labelend[bs] == -1 {
				break
			}
			t := st.endpoint[st.labelend[bs]]
			bt := st.inblossom[t]
			s = st.endpoint[st.labelend[bt]]
			j := st.endpoint[st.labelend[bt]^1]
			if int(bt) >= st.nvertex {
				st.augmentBlossom(bt, j)
			}
			st.mate[j] = st.labelend[bt]
			p = st.labelend[bt] ^ 1
		}
	}
}

// maxWeightMatching computes a maximum-cardinality matching of maximum
// total weight (weights may be negative after complementing). Returns
// mate[v] as a vertex index or -1. The run is fully deterministic.
func (st *blossomState) maxWeightMatching(n int, edgeI, edgeJ []int32, edgeW []int64) []int32 {
	st.nvertex = n
	st.nedge = len(edgeW)
	st.edgeI, st.edgeJ, st.edgeW = edgeI, edgeJ, edgeW

	var maxweight int64
	for _, w := range edgeW {
		if w > maxweight {
			maxweight = w
		}
	}

	st.endpoint = resizeI32(st.endpoint, 2*st.nedge)
	for p := range st.endpoint {
		if p%2 == 0 {
			st.endpoint[p] = edgeI[p/2]
		} else {
			st.endpoint[p] = edgeJ[p/2]
		}
	}
	if cap(st.neighbend) < n {
		st.neighbend = make([][]int32, n)
	}
	st.neighbend = st.neighbend[:n]
	for v := range st.neighbend {
		st.neighbend[v] = st.neighbend[v][:0]
	}
	for k := 0; k < st.nedge; k++ {
		st.neighbend[edgeI[k]] = append(st.neighbend[edgeI[k]], int32(2*k+1))
		st.neighbend[edgeJ[k]] = append(st.neighbend[edgeJ[k]], int32(2*k))
	}

	st.mate = resizeI32(st.mate, n)
	fillI32(st.mate, -1)
	st.label = resizeU8(st.label, 2*n)
	st.labelend = resizeI32(st.labelend, 2*n)
	fillI32(st.labelend, -1)
	st.inblossom = resizeI32(st.inblossom, n)
	for v := 0; v < n; v++ {
		st.inblossom[v] = int32(v)
	}
	st.blossomparent = resizeI32(st.blossomparent, 2*n)
	fillI32(st.blossomparent, -1)
	st.blossombase = resizeI32(st.blossombase, 2*n)
	for v := 0; v < n; v++ {
		st.blossombase[v] = int32(v)
	}
	fillI32(st.blossombase[n:], -1)
	if cap(st.blossomchilds) < 2*n {
		st.blossomchilds = make([][]int32, 2*n)
		st.blossomendps = make([][]int32, 2*n)
		st.blossombestedges = make([][]int32, 2*n)
	}
	st.blossomchilds = st.blossomchilds[:2*n]
	st.blossomendps = st.blossomendps[:2*n]
	st.blossombestedges = st.blossombestedges[:2*n]
	for i := range st.blossomchilds {
		st.blossomchilds[i] = st.blossomchilds[i][:0]
		st.blossomendps[i] = st.blossomendps[i][:0]
		st.blossombestedges[i] = nil
	}
	st.bestedge = resizeI32(st.bestedge, 2*n)
	fillI32(st.bestedge, -1)
	st.unusedblossoms = st.unusedblossoms[:0]
	for b := n; b < 2*n; b++ {
		st.unusedblossoms = append(st.unusedblossoms, int32(b))
	}
	if cap(st.dualvar) < 2*n {
		st.dualvar = make([]int64, 2*n)
	}
	st.dualvar = st.dualvar[:2*n]
	for v := 0; v < n; v++ {
		st.dualvar[v] = maxweight
	}
	for b := n; b < 2*n; b++ {
		st.dualvar[b] = 0
	}
	if cap(st.allowedge) < st.nedge {
		st.allowedge = make([]bool, st.nedge)
	}
	st.allowedge = st.allowedge[:st.nedge]
	st.bestedgeto = resizeI32(st.bestedgeto, 2*n)
	st.queue = st.queue[:0]

	for t := 0; t < n; t++ {
		// New stage: clear labels, best-edge caches and the tight-edge
		// set; queue every free vertex as an S-vertex.
		for i := range st.label {
			st.label[i] = 0
		}
		fillI32(st.bestedge, -1)
		for b := n; b < 2*n; b++ {
			st.blossombestedges[b] = nil
		}
		for k := range st.allowedge {
			st.allowedge[k] = false
		}
		st.queue = st.queue[:0]
		for v := int32(0); int(v) < n; v++ {
			if st.mate[v] == -1 && st.label[st.inblossom[v]] == 0 {
				st.assignLabel(v, 1, -1)
			}
		}
		augmented := false
		for {
			for len(st.queue) > 0 && !augmented {
				v := st.queue[len(st.queue)-1]
				st.queue = st.queue[:len(st.queue)-1]
				for _, p := range st.neighbend[v] {
					k := p / 2
					w := st.endpoint[p]
					if st.inblossom[v] == st.inblossom[w] {
						continue
					}
					var kslack int64
					if !st.allowedge[k] {
						kslack = st.slack(k)
						if kslack <= 0 {
							st.allowedge[k] = true
						}
					}
					if st.allowedge[k] {
						if st.label[st.inblossom[w]] == 0 {
							st.assignLabel(w, 2, p^1)
						} else if st.label[st.inblossom[w]] == 1 {
							base := st.scanBlossom(v, w)
							if base >= 0 {
								st.addBlossom(base, k)
							} else {
								st.augmentMatching(k)
								augmented = true
								break
							}
						} else if st.label[w] == 0 {
							st.label[w] = 2
							st.labelend[w] = p ^ 1
						}
					} else if st.label[st.inblossom[w]] == 1 {
						b := st.inblossom[v]
						if st.bestedge[b] == -1 || kslack < st.slack(st.bestedge[b]) {
							st.bestedge[b] = k
						}
					} else if st.label[w] == 0 {
						if st.bestedge[w] == -1 || kslack < st.slack(st.bestedge[w]) {
							st.bestedge[w] = k
						}
					}
				}
			}
			if augmented {
				break
			}
			// Dual adjustment. Max-cardinality mode: deltatype 1 only as
			// a last resort.
			deltatype := -1
			var delta int64
			var deltaedge, deltablossom int32
			for v := 0; v < n; v++ {
				if st.label[st.inblossom[v]] == 0 && st.bestedge[v] != -1 {
					d := st.slack(st.bestedge[v])
					if deltatype == -1 || d < delta {
						delta = d
						deltatype = 2
						deltaedge = st.bestedge[v]
					}
				}
			}
			for b := int32(0); int(b) < 2*n; b++ {
				if st.blossomparent[b] == -1 && st.label[b] == 1 && st.bestedge[b] != -1 {
					kslack := st.slack(st.bestedge[b])
					d := kslack / 2
					if deltatype == -1 || d < delta {
						delta = d
						deltatype = 3
						deltaedge = st.bestedge[b]
					}
				}
			}
			for b := int32(n); int(b) < 2*n; b++ {
				if st.blossombase[b] >= 0 && st.blossomparent[b] == -1 &&
					st.label[b] == 2 && (deltatype == -1 || st.dualvar[b] < delta) {
					delta = st.dualvar[b]
					deltatype = 4
					deltablossom = b
				}
			}
			if deltatype == -1 {
				// No further progress possible: optimum at this
				// cardinality. delta = max(0, min vertex dual).
				deltatype = 1
				min := st.dualvar[0]
				for v := 1; v < n; v++ {
					if st.dualvar[v] < min {
						min = st.dualvar[v]
					}
				}
				if min > 0 {
					delta = min
				} else {
					delta = 0
				}
			}
			// Apply the delta to the duals.
			for v := 0; v < n; v++ {
				switch st.label[st.inblossom[v]] {
				case 1:
					st.dualvar[v] -= delta
				case 2:
					st.dualvar[v] += delta
				}
			}
			for b := int32(n); int(b) < 2*n; b++ {
				if st.blossombase[b] >= 0 && st.blossomparent[b] == -1 {
					switch st.label[b] {
					case 1:
						st.dualvar[b] += delta
					case 2:
						st.dualvar[b] -= delta
					}
				}
			}
			switch deltatype {
			case 1:
				// Optimum reached.
			case 2:
				st.allowedge[deltaedge] = true
				i := st.edgeI[deltaedge]
				if st.label[st.inblossom[i]] == 0 {
					i = st.edgeJ[deltaedge]
				}
				st.queue = append(st.queue, i)
			case 3:
				st.allowedge[deltaedge] = true
				st.queue = append(st.queue, st.edgeI[deltaedge])
			case 4:
				st.expandBlossom(deltablossom, false)
			}
			if deltatype == 1 {
				break
			}
		}
		if !augmented {
			break
		}
		// End of stage: expand all S-blossoms with zero dual.
		for b := int32(n); int(b) < 2*n; b++ {
			if st.blossomparent[b] == -1 && st.blossombase[b] >= 0 &&
				st.label[b] == 1 && st.dualvar[b] == 0 {
				st.expandBlossom(b, true)
			}
		}
	}
	// Convert endpoints to vertex ids.
	for v := 0; v < n; v++ {
		if st.mate[v] >= 0 {
			st.mate[v] = st.endpoint[st.mate[v]]
		}
	}
	return st.mate
}

func resizeI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func resizeU8(s []uint8, n int) []uint8 {
	if cap(s) < n {
		return make([]uint8, n)
	}
	return s[:n]
}

func fillI32(s []int32, x int32) {
	for i := range s {
		s[i] = x
	}
}
