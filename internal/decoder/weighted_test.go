package decoder

import (
	"math/rand/v2"
	"testing"
)

// weightedTorusGraph is torusGraph with explicit per-edge weights.
func weightedTorusGraph(l int, weightOf func(e int) int32) *Graph {
	mod := func(a int) int { return ((a % l) + l) % l }
	ends := make([][2]int32, 2*l*l)
	for y := 0; y < l; y++ {
		for x := 0; x < l; x++ {
			ends[y*l+x] = [2]int32{int32(y*l + x), int32(mod(y-1)*l + x)}
			ends[l*l+y*l+x] = [2]int32{int32(y*l + x), int32(y*l + mod(x-1))}
		}
	}
	weights := make([]int32, len(ends))
	for e := range weights {
		weights[e] = weightOf(e)
	}
	return NewWeightedGraph(l*l, ends, weights)
}

// TestUnitWeightBitIdentical: a weighted graph with every weight 1 must
// drive the union-find decoder through exactly the classic half-step
// schedule — corrections bit-identical, emit order included, to the
// unweighted constructor on the same defect sets.
func TestUnitWeightBitIdentical(t *testing.T) {
	const l = 8
	gu := torusGraph(l)
	gw := weightedTorusGraph(l, func(int) int32 { return 1 })
	ufu, ufw := NewUnionFind(gu), NewUnionFind(gw)
	rng := rand.New(rand.NewPCG(301, 302))
	for trial := 0; trial < 60; trial++ {
		errs := map[int]bool{}
		for e := 0; e < gu.Edges(); e++ {
			if rng.Float64() < 0.12 {
				errs[e] = true
			}
		}
		defects := syndromeOf(gu, errs)
		var a, b []int
		ufu.Decode(defects, func(e int) { a = append(a, e) })
		ufw.Decode(defects, func(e int) { b = append(b, e) })
		if len(a) != len(b) {
			t.Fatalf("trial %d: emit counts differ: %d vs %d", trial, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: emit order differs at %d: %d vs %d", trial, i, a[i], b[i])
			}
		}
	}
}

// TestWeightedUnionFindClearsSyndrome: soundness holds for any positive
// weight assignment — the correction's syndrome equals the defect set.
func TestWeightedUnionFindClearsSyndrome(t *testing.T) {
	rng := rand.New(rand.NewPCG(303, 304))
	for _, l := range []int{3, 5, 9} {
		g := weightedTorusGraph(l, func(int) int32 { return int32(1 + rng.IntN(5)) })
		uf := NewUnionFind(g)
		for trial := 0; trial < 120; trial++ {
			p := []float64{0.02, 0.08, 0.25}[trial%3]
			errs := map[int]bool{}
			for e := 0; e < g.Edges(); e++ {
				if rng.Float64() < p {
					errs[e] = true
				}
			}
			defects := syndromeOf(g, errs)
			residual := map[int]bool{}
			for e := range errs {
				residual[e] = true
			}
			uf.Decode(defects, func(e int) {
				if residual[e] {
					delete(residual, e)
				} else {
					residual[e] = true
				}
			})
			if rest := syndromeOf(g, residual); len(rest) != 0 {
				t.Fatalf("L=%d trial %d: weighted correction left %d defects", l, trial, len(rest))
			}
		}
	}
}

// TestWeightedGrowthPrefersLightPath: between a heavy direct edge and a
// light two-edge detour, weighted growth must cross the detour first —
// the behavior that makes measurement-error (time-like) edges with
// larger log-likelihood weights repel the correction.
func TestWeightedGrowthPrefersLightPath(t *testing.T) {
	// Triangle: 0—2 direct (weight 4), 0—1—2 detour (weight 1 each).
	g := NewWeightedGraph(3, [][2]int32{{0, 2}, {0, 1}, {1, 2}}, []int32{4, 1, 1})
	uf := NewUnionFind(g)
	var got []int
	uf.Decode([]int{0, 2}, func(e int) { got = append(got, e) })
	if len(got) != 2 || got[0] == 0 || got[1] == 0 {
		t.Fatalf("weighted decode crossed the heavy edge: %v", got)
	}
	// Same topology, uniform weights: the direct edge wins.
	gu := NewWeightedGraph(3, [][2]int32{{0, 2}, {0, 1}, {1, 2}}, []int32{1, 1, 1})
	got = got[:0]
	NewUnionFind(gu).Decode([]int{0, 2}, func(e int) { got = append(got, e) })
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("unit-weight decode should take the direct edge: %v", got)
	}
}

// TestDecodeErasedPureErasure: when every error sits on an erased edge,
// the decoder must finish in the peeling-only fast path — zero growth
// sweeps, every correction edge inside the erasure, syndrome cleared.
func TestDecodeErasedPureErasure(t *testing.T) {
	rng := rand.New(rand.NewPCG(305, 306))
	for _, l := range []int{4, 8} {
		g := torusGraph(l)
		uf := NewUnionFind(g)
		for trial := 0; trial < 150; trial++ {
			erased := map[int]bool{}
			var erasedList []int
			for e := 0; e < g.Edges(); e++ {
				if rng.Float64() < 0.25 {
					erased[e] = true
					erasedList = append(erasedList, e)
				}
			}
			errs := map[int]bool{}
			for e := range erased {
				if rng.Float64() < 0.5 {
					errs[e] = true
				}
			}
			defects := syndromeOf(g, errs)
			residual := map[int]bool{}
			for e := range errs {
				residual[e] = true
			}
			uf.DecodeErased(defects, erasedList, func(e int) {
				if !erased[e] {
					t.Fatalf("L=%d trial %d: correction edge %d outside the erasure", l, trial, e)
				}
				if residual[e] {
					delete(residual, e)
				} else {
					residual[e] = true
				}
			})
			if uf.GrowthSweeps() != 0 {
				t.Fatalf("L=%d trial %d: pure erasure took %d growth sweeps, want peeling only",
					l, trial, uf.GrowthSweeps())
			}
			if rest := syndromeOf(g, residual); len(rest) != 0 {
				t.Fatalf("L=%d trial %d: erasure correction left %d defects", l, trial, len(rest))
			}
		}
	}
}

// TestDecodeErasedMixed: erasure plus ordinary errors elsewhere — the
// grown region extends the erased clusters and the syndrome still clears.
func TestDecodeErasedMixed(t *testing.T) {
	rng := rand.New(rand.NewPCG(307, 308))
	g := torusGraph(6)
	uf := NewUnionFind(g)
	for trial := 0; trial < 200; trial++ {
		var erasedList []int
		errs := map[int]bool{}
		for e := 0; e < g.Edges(); e++ {
			switch {
			case rng.Float64() < 0.15:
				erasedList = append(erasedList, e)
				if rng.Float64() < 0.5 {
					errs[e] = true
				}
			case rng.Float64() < 0.05:
				errs[e] = true
			}
		}
		defects := syndromeOf(g, errs)
		residual := map[int]bool{}
		for e := range errs {
			residual[e] = true
		}
		uf.DecodeErased(defects, erasedList, func(e int) {
			if residual[e] {
				delete(residual, e)
			} else {
				residual[e] = true
			}
		})
		if rest := syndromeOf(g, residual); len(rest) != 0 {
			t.Fatalf("trial %d: mixed erasure decode left %d defects", trial, len(rest))
		}
	}
}

// TestPrunedMatchesDenseWeight is the sparse-blossom optimality property:
// on random metric and non-metric instances, at friendly and adversarial
// cutoffs, the pruned matching's total weight must equal the dense
// matcher's exactly (the pricing loop repairs any cutoff casualty).
func TestPrunedMatchesDenseWeight(t *testing.T) {
	rng := rand.New(rand.NewPCG(309, 310))
	var dense, pruned Matcher
	// Torus-metric instances: the production shape.
	const l = 16
	dist := func(a, b int) int64 {
		ax, ay := a%l, a/l
		bx, by := b%l, b/l
		dx, dy := ax-bx, ay-by
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		if l-dx < dx {
			dx = l - dx
		}
		if l-dy < dy {
			dy = l - dy
		}
		return int64(dx + dy)
	}
	for trial := 0; trial < 120; trial++ {
		n := 2 * (2 + rng.IntN(15)) // 4..32 defects
		pos := make([]int, n)
		seen := map[int]bool{}
		for i := range pos {
			for {
				p := rng.IntN(l * l)
				if !seen[p] {
					seen[p] = true
					pos[i] = p
					break
				}
			}
		}
		weight := func(i, j int) int64 { return dist(pos[i], pos[j]) }
		want := pairsWeight(dense.MinWeightPairs(n, weight), weight)
		for _, cutoff := range []int64{1, 3, 6, int64(l)} {
			got := pairsWeight(pruned.MinWeightPairsPruned(n, weight, cutoff), weight)
			if got != want {
				t.Fatalf("trial %d n=%d cutoff=%d: pruned weight %d, dense %d",
					trial, n, cutoff, got, want)
			}
		}
	}
	// Arbitrary (non-metric) weight tables: pricing must still certify.
	for trial := 0; trial < 150; trial++ {
		n := 2 * (2 + rng.IntN(6)) // 4..14
		w := make([]int64, n*n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				d := rng.Int64N(50)
				w[i*n+j] = d
				w[j*n+i] = d
			}
		}
		weight := func(i, j int) int64 { return w[i*n+j] }
		want := pairsWeight(dense.MinWeightPairs(n, weight), weight)
		got := pairsWeight(pruned.MinWeightPairsPruned(n, weight, 10), weight)
		if got != want {
			t.Fatalf("non-metric trial %d n=%d: pruned weight %d, dense %d", trial, n, got, want)
		}
		checkPerfect(t, n, pruned.pairs)
	}
}

// TestPrunedDeterministic: pruning (including its repair rounds) stays a
// pure function of the weight table and cutoff.
func TestPrunedDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(311, 312))
	n := 20
	w := make([]int64, n*n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := rng.Int64N(9)
			w[i*n+j] = d
			w[j*n+i] = d
		}
	}
	weight := func(i, j int) int64 { return w[i*n+j] }
	var m1, m2 Matcher
	a := append([][2]int32(nil), m1.MinWeightPairsPruned(n, weight, 3)...)
	for trial := 0; trial < 8; trial++ {
		b := m2.MinWeightPairsPruned(n, weight, 3)
		if len(a) != len(b) {
			t.Fatal("pair count changed between runs")
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("run %d: pairing differs at %d", trial, i)
			}
		}
	}
}
