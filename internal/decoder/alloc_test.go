package decoder

import (
	"math/rand/v2"
	"testing"
)

// TestGroupSubmitZeroAllocs pins the coalesced hot path's allocation
// contract: a warmed SubmitGroupOn round trip over reusable batches —
// stage every group, wait every batch, recycle every correction buffer
// — performs zero heap allocations. This is what lets a multi-tenant
// server coalesce thousands of session slides per second without
// feeding the GC.
func TestGroupSubmitZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the zero-alloc pin runs in the non-race CI lane")
	}
	g := torusTestGraph(6)
	pool := NewPool(2)
	defer pool.Close()
	rng := rand.New(rand.NewPCG(71, 72))
	const groups, shotsPer = 8, 24
	subs := make([]GroupSub, groups)
	for i := range subs {
		subs[i] = GroupSub{B: NewBatch(shotsPer), Shots: randomShots(g, shotsPer, rng)}
	}
	roundTrip := func() {
		if err := pool.SubmitGroupOn(g, subs); err != nil {
			t.Fatal(err)
		}
		for i := range subs {
			out := subs[i].B.Wait()
			for j := range out {
				subs[i].Shots[j].CorrBuf = out[j][:0]
			}
		}
	}
	// Warm up: output slots size themselves, correction buffers reach
	// their steady capacity, and the per-graph scratch pool fills.
	for i := 0; i < 8; i++ {
		roundTrip()
	}
	if avg := testing.AllocsPerRun(10, roundTrip); avg != 0 {
		t.Fatalf("warm SubmitGroupOn round trip allocates (%.1f allocs/run, want 0)", avg)
	}
}
