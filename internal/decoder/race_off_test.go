//go:build !race

package decoder

const raceEnabled = false
