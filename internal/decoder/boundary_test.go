package decoder

import (
	"math/rand/v2"
	"testing"
)

// pathGraph builds a line 0—1—…—n-1 of unit edges with the given
// boundary nodes; edge i joins i and i+1.
func pathGraph(n int, boundary ...int) *Graph {
	ends := make([][2]int32, n-1)
	for i := range ends {
		ends[i] = [2]int32{int32(i), int32(i + 1)}
	}
	return NewBoundaryGraph(n, ends, nil, boundary)
}

// TestBoundaryAbsorbsLoneDefect: a single defect (odd total parity —
// impossible on a closed graph) matches to the open boundary, emitting
// the chain that connects it there.
func TestBoundaryAbsorbsLoneDefect(t *testing.T) {
	g := pathGraph(4, 3)
	uf := NewUnionFind(g)
	var got []int
	uf.Decode([]int{0}, func(e int) { got = append(got, e) })
	want := map[int]bool{0: true, 1: true, 2: true}
	if len(got) != len(want) {
		t.Fatalf("emitted %v, want all three path edges", got)
	}
	for _, e := range got {
		if !want[e] {
			t.Fatalf("emitted unexpected edge %d", e)
		}
	}
}

// TestBoundaryNotUsedWhenPairIsCloser: an adjacent defect pair pairs
// internally; the boundary never enters the correction.
func TestBoundaryNotUsedWhenPairIsCloser(t *testing.T) {
	g := pathGraph(5, 4)
	uf := NewUnionFind(g)
	var got []int
	uf.Decode([]int{0, 1}, func(e int) { got = append(got, e) })
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("emitted %v, want just edge 0", got)
	}
}

// TestBoundaryStopsGrowth: a grounded cluster is never odd, so a defect
// one step from the boundary resolves in the minimum number of sweeps
// and emits only its boundary edge.
func TestBoundaryStopsGrowth(t *testing.T) {
	g := pathGraph(6, 5)
	uf := NewUnionFind(g)
	var got []int
	uf.Decode([]int{4}, func(e int) { got = append(got, e) })
	if len(got) != 1 || got[0] != 4 {
		t.Fatalf("emitted %v, want just the boundary edge 4", got)
	}
	if uf.GrowthSweeps() != 2 {
		t.Fatalf("unit edge needs 2 half-step sweeps, ran %d", uf.GrowthSweeps())
	}
}

// TestBoundaryPrefersCheapPath: two defects whose mutual edge is heavy
// both drain to the boundary over their cheap virtual edges instead of
// pairing through the expensive direct edge.
func TestBoundaryPrefersCheapPath(t *testing.T) {
	// 0—1 weight 10, 0—2 and 1—2 weight 1, boundary at 2.
	ends := [][2]int32{{0, 1}, {0, 2}, {1, 2}}
	g := NewBoundaryGraph(3, ends, []int32{10, 1, 1}, []int{2})
	uf := NewUnionFind(g)
	var got []int
	uf.Decode([]int{0, 1}, func(e int) { got = append(got, e) })
	want := map[int]bool{1: true, 2: true}
	if len(got) != 2 || !want[got[0]] || !want[got[1]] || got[0] == got[1] {
		t.Fatalf("emitted %v, want the two boundary edges {1, 2}", got)
	}
}

// TestBoundaryErasedSeed: an erased edge touching the boundary grounds
// its cluster before any growth — a defect inside decodes growth-free.
func TestBoundaryErasedSeed(t *testing.T) {
	g := pathGraph(4, 3)
	uf := NewUnionFind(g)
	var got []int
	uf.DecodeErased([]int{2}, []int{2}, func(e int) { got = append(got, e) })
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("emitted %v, want just erased boundary edge 2", got)
	}
	if uf.GrowthSweeps() != 0 {
		t.Fatalf("pure-erasure boundary decode grew %d sweeps", uf.GrowthSweeps())
	}
}

// TestBoundaryDefectPanics: boundary nodes are virtual and can never be
// defects.
func TestBoundaryDefectPanics(t *testing.T) {
	g := pathGraph(3, 2)
	uf := NewUnionFind(g)
	defer func() {
		if recover() == nil {
			t.Fatal("decoding a boundary-node defect must panic")
		}
	}()
	uf.Decode([]int{2}, func(int) {})
}

// TestBoundaryDecodeDeterministicAndSound: on random grid-with-boundary
// graphs, the emitted correction's interior syndrome always equals the
// defect set (boundary nodes absorb the rest), repeat runs are
// bit-identical, and scratch reuse across epochs is clean.
func TestBoundaryDecodeDeterministicAndSound(t *testing.T) {
	// An n×n grid whose rightmost column connects to one virtual node.
	n := 6
	idx := func(x, y int) int32 { return int32(y*n + x) }
	var ends [][2]int32
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			if x+1 < n {
				ends = append(ends, [2]int32{idx(x, y), idx(x+1, y)})
			}
			if y+1 < n {
				ends = append(ends, [2]int32{idx(x, y), idx(x, y+1)})
			}
		}
	}
	bnd := n * n
	for y := 0; y < n; y++ {
		ends = append(ends, [2]int32{idx(n-1, y), int32(bnd)})
	}
	g := NewBoundaryGraph(n*n+1, ends, nil, []int{bnd})
	uf := NewUnionFind(g)
	uf2 := NewUnionFind(g)
	rng := rand.New(rand.NewPCG(71, 72))
	for trial := 0; trial < 200; trial++ {
		var defects []int
		for v := 0; v < n*n; v++ {
			if rng.Float64() < 0.15 {
				defects = append(defects, v)
			}
		}
		if len(defects) == 0 {
			continue
		}
		var a, b []int
		uf.Decode(defects, func(e int) { a = append(a, e) })
		uf2.Decode(defects, func(e int) { b = append(b, e) })
		if len(a) != len(b) {
			t.Fatalf("trial %d: runs differ in emit count", trial)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: emit order differs at %d", trial, i)
			}
		}
		// Interior syndrome of the correction must equal the defect set.
		par := make([]bool, g.Nodes())
		for _, e := range a {
			u, v := g.Ends(e)
			par[u] = !par[u]
			par[v] = !par[v]
		}
		want := make([]bool, g.Nodes())
		for _, d := range defects {
			want[d] = true
		}
		for v := 0; v < n*n; v++ {
			if par[v] != want[v] {
				t.Fatalf("trial %d: correction syndrome mismatch at node %d", trial, v)
			}
		}
	}
}
