package decoder

import (
	"math/rand/v2"
	"testing"
)

// dpMinWeight is the O(2ⁿ·n²) bitmask reference the blossom matcher is
// verified against (the algorithm the matcher replaced in production).
func dpMinWeight(n int, weight func(i, j int) int64) int64 {
	full := 1<<uint(n) - 1
	const inf = int64(1) << 62
	dp := make([]int64, full+1)
	for m := 1; m <= full; m++ {
		dp[m] = inf
	}
	for m := 0; m < full; m++ {
		if dp[m] == inf {
			continue
		}
		i := 0
		for m>>uint(i)&1 == 1 {
			i++
		}
		for j := i + 1; j < n; j++ {
			if m>>uint(j)&1 == 1 {
				continue
			}
			nm := m | 1<<uint(i) | 1<<uint(j)
			if c := dp[m] + weight(i, j); c < dp[nm] {
				dp[nm] = c
			}
		}
	}
	return dp[full]
}

func pairsWeight(pairs [][2]int32, weight func(i, j int) int64) int64 {
	var total int64
	for _, p := range pairs {
		total += weight(int(p[0]), int(p[1]))
	}
	return total
}

func checkPerfect(t *testing.T, n int, pairs [][2]int32) {
	t.Helper()
	if len(pairs) != n/2 {
		t.Fatalf("n=%d: got %d pairs", n, len(pairs))
	}
	seen := make([]bool, n)
	for _, p := range pairs {
		if p[0] >= p[1] {
			t.Fatalf("unordered pair %v", p)
		}
		for _, v := range p {
			if v < 0 || int(v) >= n || seen[v] {
				t.Fatalf("vertex %d repeated or out of range in %v", v, pairs)
			}
			seen[v] = true
		}
	}
}

// TestMatcherAgreesWithDP verifies the blossom matching is exactly
// minimal by brute force on thousands of random complete graphs — the
// adversarial check that the O(n³) implementation earns the name "exact".
func TestMatcherAgreesWithDP(t *testing.T) {
	rng := rand.New(rand.NewPCG(201, 202))
	var m Matcher
	for trial := 0; trial < 3000; trial++ {
		n := 2 * (1 + rng.IntN(7)) // 2..14
		maxw := int64(1 + rng.IntN(30))
		w := make([]int64, n*n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				d := rng.Int64N(maxw)
				w[i*n+j] = d
				w[j*n+i] = d
			}
		}
		weight := func(i, j int) int64 { return w[i*n+j] }
		pairs := m.MinWeightPairs(n, weight)
		checkPerfect(t, n, pairs)
		got := pairsWeight(pairs, weight)
		want := dpMinWeight(n, weight)
		if got != want {
			t.Fatalf("trial %d n=%d: matcher weight %d, optimal %d", trial, n, got, want)
		}
	}
}

// TestMatcherLargeInstances exercises sizes far beyond the old 2ⁿ cap:
// the matching must stay perfect and no heavier than a greedy pairing.
func TestMatcherLargeInstances(t *testing.T) {
	rng := rand.New(rand.NewPCG(203, 204))
	var m Matcher
	for _, n := range []int{20, 40, 60} {
		w := make([]int64, n*n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				d := rng.Int64N(100)
				w[i*n+j] = d
				w[j*n+i] = d
			}
		}
		weight := func(i, j int) int64 { return w[i*n+j] }
		pairs := m.MinWeightPairs(n, weight)
		checkPerfect(t, n, pairs)
		// Greedy closest-pair-first baseline.
		alive := make([]int, n)
		for i := range alive {
			alive[i] = i
		}
		var greedy int64
		for len(alive) > 1 {
			bi, bj := 0, 1
			best := weight(alive[0], alive[1])
			for i := 0; i < len(alive); i++ {
				for j := i + 1; j < len(alive); j++ {
					if d := weight(alive[i], alive[j]); d < best {
						bi, bj, best = i, j, d
					}
				}
			}
			greedy += best
			alive = append(alive[:bj], alive[bj+1:]...)
			alive = append(alive[:bi], alive[bi+1:]...)
		}
		if got := pairsWeight(pairs, weight); got > greedy {
			t.Fatalf("n=%d: matcher weight %d heavier than greedy %d", n, got, greedy)
		}
	}
}

// TestMatcherDeterministic: same weight table, same pairing, every time.
func TestMatcherDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(205, 206))
	n := 16
	w := make([]int64, n*n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := rng.Int64N(7) // many ties
			w[i*n+j] = d
			w[j*n+i] = d
		}
	}
	weight := func(i, j int) int64 { return w[i*n+j] }
	var m1, m2 Matcher
	a := append([][2]int32(nil), m1.MinWeightPairs(n, weight)...)
	for trial := 0; trial < 10; trial++ {
		b := m2.MinWeightPairs(n, weight)
		if len(a) != len(b) {
			t.Fatal("pair count changed between runs")
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("run %d: pairing differs at %d: %v vs %v", trial, i, a[i], b[i])
			}
		}
	}
}

func TestMatcherEdgeCases(t *testing.T) {
	var m Matcher
	if got := m.MinWeightPairs(0, nil); len(got) != 0 {
		t.Fatal("n=0 should give no pairs")
	}
	got := m.MinWeightPairs(2, func(i, j int) int64 { return 5 })
	if len(got) != 1 || got[0] != [2]int32{0, 1} {
		t.Fatalf("n=2: %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("odd n must panic")
		}
	}()
	m.MinWeightPairs(3, func(i, j int) int64 { return 1 })
}
