package tableau

import (
	"math/rand/v2"
	"testing"

	"ftqc/internal/pauli"
	"ftqc/internal/statevec"
)

func TestFreshStateMeasuresZero(t *testing.T) {
	tb := New(4, nil)
	for q := 0; q < 4; q++ {
		out, det := tb.MeasureZ(q)
		if out || !det {
			t.Fatalf("qubit %d: out=%v det=%v, want 0 deterministic", q, out, det)
		}
	}
}

func TestBellPairCorrelations(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	ones := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		tb := New(2, rng)
		tb.H(0)
		tb.CNOT(0, 1)
		a, det := tb.MeasureZ(0)
		if det {
			t.Fatal("Bell measurement should be random")
		}
		b, det2 := tb.MeasureZ(1)
		if !det2 {
			t.Fatal("second Bell measurement should be deterministic")
		}
		if a != b {
			t.Fatal("Bell pair outcomes disagree")
		}
		if a {
			ones++
		}
	}
	if ones < trials/4 || ones > 3*trials/4 {
		t.Fatalf("Bell outcome highly biased: %d/%d ones", ones, trials)
	}
}

func TestXFlipsMeasurement(t *testing.T) {
	tb := New(3, nil)
	tb.X(1)
	out, det := tb.MeasureZ(1)
	if !out || !det {
		t.Fatal("X|0> should measure 1 deterministically")
	}
}

func TestGHZStabilizers(t *testing.T) {
	tb := New(3, nil)
	tb.H(0)
	tb.CNOT(0, 1)
	tb.CNOT(0, 2)
	// GHZ is stabilized by XXX, ZZI, IZZ.
	for _, s := range []string{"XXX", "ZZI", "IZZ", "ZIZ"} {
		out, det := tb.Clone().MeasurePauli(pauli.MustFromString(s))
		if !det || out {
			t.Fatalf("GHZ should be +1 eigenstate of %s (det=%v out=%v)", s, det, out)
		}
	}
	out, det := tb.Clone().MeasurePauli(pauli.MustFromString("-XXX"))
	if !det || !out {
		t.Fatal("-XXX must measure -1 deterministically on GHZ")
	}
}

func TestMeasurePauliY(t *testing.T) {
	// S H |0> = S|+> = (|0>+i|1>)/√2 is the +1 eigenstate of Y.
	tb := New(1, nil)
	tb.H(0)
	tb.S(0)
	out, det := tb.MeasurePauli(pauli.MustFromString("Y"))
	if !det || out {
		t.Fatalf("S·H|0> should be +1 eigenstate of Y (det=%v out=%v)", det, out)
	}
}

func TestResetClearsQubit(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	tb := New(2, rng)
	tb.H(0)
	tb.CNOT(0, 1)
	tb.Reset(0)
	out, det := tb.MeasureZ(0)
	if out || !det {
		t.Fatal("reset qubit should read 0 deterministically")
	}
}

func TestSameStateCanonical(t *testing.T) {
	// Two different circuits preparing a Bell state must compare equal.
	a := New(2, nil)
	a.H(0)
	a.CNOT(0, 1)
	b := New(2, nil)
	b.H(1)
	b.CNOT(1, 0)
	if !SameState(a, b) {
		t.Fatal("equivalent Bell preparations compare different")
	}
	c := New(2, nil)
	c.H(0)
	c.CNOT(0, 1)
	c.Z(0)
	if SameState(a, c) {
		t.Fatal("distinct states compare equal")
	}
}

// applyRandomClifford drives both simulators through the same random
// Clifford circuit.
func applyRandomClifford(rng *rand.Rand, tb *Tableau, sv *statevec.State, gates int) {
	n := tb.N()
	for g := 0; g < gates; g++ {
		switch rng.IntN(6) {
		case 0:
			q := rng.IntN(n)
			tb.H(q)
			sv.H(q)
		case 1:
			q := rng.IntN(n)
			tb.S(q)
			sv.S(q)
		case 2:
			q := rng.IntN(n)
			tb.X(q)
			sv.X(q)
		case 3:
			q := rng.IntN(n)
			tb.Z(q)
			sv.Z(q)
		case 4:
			q := rng.IntN(n)
			tb.Y(q)
			sv.Y(q)
		default:
			a, b := rng.IntN(n), rng.IntN(n)
			if a == b {
				b = (b + 1) % n
			}
			tb.CNOT(a, b)
			sv.CNOT(a, b)
		}
	}
}

func TestCrossValidateAgainstStatevector(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 43))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.IntN(5)
		tb := New(n, rng)
		sv := statevec.NewZero(n)
		applyRandomClifford(rng, tb, sv, 40)
		// Every stabilizer generator of the tableau must have expectation
		// +1 in the state vector.
		for i := 0; i < n; i++ {
			row := tb.StabilizerRow(i)
			if e := sv.ExpectPauli(row); e < 0.999 {
				t.Fatalf("trial %d: stabilizer %v has expectation %.4f", trial, row, e)
			}
		}
		// Measurement probabilities must agree: deterministic tableau
		// outcomes match statevec probability 0 or 1; random ones are 1/2.
		for q := 0; q < n; q++ {
			p1 := sv.Prob1(q)
			out, det := tb.Clone().MeasureZ(q)
			if det {
				want := 0.0
				if out {
					want = 1.0
				}
				if diff := p1 - want; diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("trial %d qubit %d: deterministic %v but P(1)=%.6f", trial, q, out, p1)
				}
			} else if p1 < 0.499 || p1 > 0.501 {
				t.Fatalf("trial %d qubit %d: random outcome but P(1)=%.6f", trial, q, p1)
			}
		}
	}
}

func TestMeasurementRepeatable(t *testing.T) {
	// Measuring the same qubit twice must give the same answer.
	rng := rand.New(rand.NewPCG(77, 78))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.IntN(4)
		tb := New(n, rng)
		sv := statevec.NewZero(n) // unused driver, keeps circuits aligned
		applyRandomClifford(rng, tb, sv, 30)
		q := rng.IntN(n)
		first, _ := tb.MeasureZ(q)
		second, det := tb.MeasureZ(q)
		if !det || first != second {
			t.Fatalf("repeated measurement changed: %v then %v (det=%v)", first, second, det)
		}
	}
}

func TestApplyPauliFlipsSign(t *testing.T) {
	tb := New(2, nil)
	tb.H(0)
	tb.CNOT(0, 1)
	tb.ApplyPauli(pauli.MustFromString("ZI")) // turns |00>+|11> into |00>-|11>
	out, det := tb.MeasurePauli(pauli.MustFromString("XX"))
	if !det || !out {
		t.Fatal("Z on a Bell pair must flip the XX eigenvalue")
	}
}

func TestCZSymmetric(t *testing.T) {
	a := New(2, nil)
	a.H(0)
	a.H(1)
	a.CZ(0, 1)
	b := New(2, nil)
	b.H(0)
	b.H(1)
	b.CZ(1, 0)
	if !SameState(a, b) {
		t.Fatal("CZ must be symmetric")
	}
}

func TestSWAP(t *testing.T) {
	tb := New(2, nil)
	tb.X(0)
	tb.SWAP(0, 1)
	o0, _ := tb.MeasureZ(0)
	o1, _ := tb.MeasureZ(1)
	if o0 || !o1 {
		t.Fatal("SWAP did not move the excitation")
	}
}

func TestSdgInvertsS(t *testing.T) {
	tb := New(1, nil)
	tb.H(0)
	tb.S(0)
	tb.Sdg(0)
	tb.H(0)
	out, det := tb.MeasureZ(0)
	if out || !det {
		t.Fatal("H S Sdg H |0> should be |0>")
	}
}
