// Package tableau implements a hand-rolled stabilizer-circuit simulator in
// the style of Aaronson–Gottesman (CHP). The state of n qubits is tracked
// as a tableau of n destabilizer and n stabilizer generators, supporting
// the Clifford gates used throughout Preskill's fault-tolerance circuits
// (H, S, CNOT, CZ, Paulis) plus single-qubit and general Pauli
// measurements. Simulation cost is polynomial in n, which is what makes
// syndrome-extraction and threshold experiments tractable.
package tableau

import (
	"fmt"
	"math/rand/v2"
	"strings"

	"ftqc/internal/bits"
	"ftqc/internal/pauli"
)

// Tableau is the stabilizer state of n qubits. Rows 0..n-1 are
// destabilizers, rows n..2n-1 are stabilizers; row 2n is scratch.
type Tableau struct {
	n   int
	x   []bits.Vec // x[i] is the X-bit row i
	z   []bits.Vec
	r   bits.Vec // sign bits, packed: bit i set means row i carries a -1
	rng *rand.Rand
}

// New returns a tableau initialized to |0…0⟩ with the given random source
// (used for non-deterministic measurement outcomes). A nil rng defaults to
// a fixed-seed source, keeping results reproducible.
func New(n int, rng *rand.Rand) *Tableau {
	if rng == nil {
		rng = rand.New(rand.NewPCG(0xfeed, 0xbeef))
	}
	t := &Tableau{
		n:   n,
		x:   make([]bits.Vec, 2*n+1),
		z:   make([]bits.Vec, 2*n+1),
		r:   bits.NewVec(2*n + 1),
		rng: rng,
	}
	for i := range t.x {
		t.x[i] = bits.NewVec(n)
		t.z[i] = bits.NewVec(n)
	}
	for i := 0; i < n; i++ {
		t.x[i].Set(i, true)   // destabilizer i = X_i
		t.z[n+i].Set(i, true) // stabilizer i = Z_i
	}
	return t
}

// N returns the number of qubits.
func (t *Tableau) N() int { return t.n }

// Clone returns an independent copy sharing the same random source.
func (t *Tableau) Clone() *Tableau {
	c := &Tableau{n: t.n, x: make([]bits.Vec, len(t.x)), z: make([]bits.Vec, len(t.z)), r: t.r.Clone(), rng: t.rng}
	for i := range t.x {
		c.x[i] = t.x[i].Clone()
		c.z[i] = t.z[i].Clone()
	}
	return c
}

// H applies a Hadamard gate to qubit a.
func (t *Tableau) H(a int) {
	for i := 0; i < 2*t.n; i++ {
		xa, za := t.x[i].Get(a), t.z[i].Get(a)
		if xa && za {
			t.r.Flip(i)
		}
		t.x[i].Set(a, za)
		t.z[i].Set(a, xa)
	}
}

// S applies the phase gate diag(1, i) to qubit a.
func (t *Tableau) S(a int) {
	for i := 0; i < 2*t.n; i++ {
		xa, za := t.x[i].Get(a), t.z[i].Get(a)
		if xa && za {
			t.r.Flip(i)
		}
		t.z[i].Set(a, za != xa)
	}
}

// Sdg applies the inverse phase gate diag(1, -i) to qubit a.
func (t *Tableau) Sdg(a int) { t.S(a); t.S(a); t.S(a) }

// CNOT applies a controlled-NOT (the paper's XOR gate) with control a and
// target b.
func (t *Tableau) CNOT(a, b int) {
	if a == b {
		panic("tableau: CNOT with equal control and target")
	}
	for i := 0; i < 2*t.n; i++ {
		xa, za := t.x[i].Get(a), t.z[i].Get(a)
		xb, zb := t.x[i].Get(b), t.z[i].Get(b)
		if xa && zb && (xb == za) {
			t.r.Flip(i)
		}
		t.x[i].Set(b, xb != xa)
		t.z[i].Set(a, za != zb)
	}
}

// CZ applies a controlled-Z between qubits a and b.
func (t *Tableau) CZ(a, b int) { t.H(b); t.CNOT(a, b); t.H(b) }

// SWAP exchanges qubits a and b.
func (t *Tableau) SWAP(a, b int) { t.CNOT(a, b); t.CNOT(b, a); t.CNOT(a, b) }

// X applies a bit flip to qubit a.
func (t *Tableau) X(a int) {
	for i := 0; i < 2*t.n; i++ {
		if t.z[i].Get(a) {
			t.r.Flip(i)
		}
	}
}

// Z applies a phase flip to qubit a.
func (t *Tableau) Z(a int) {
	for i := 0; i < 2*t.n; i++ {
		if t.x[i].Get(a) {
			t.r.Flip(i)
		}
	}
}

// Y applies Y = iXZ to qubit a.
func (t *Tableau) Y(a int) { t.Z(a); t.X(a) }

// ApplyPauli applies the unitary given by a Pauli operator (its overall
// phase is a global phase and is ignored).
func (t *Tableau) ApplyPauli(p pauli.Pauli) {
	if p.N() != t.n {
		panic("tableau: Pauli size mismatch")
	}
	for i := 0; i < 2*t.n; i++ {
		// The row sign flips iff the row anticommutes with p.
		if t.x[i].Dot(p.ZBits) != p.XBits.Dot(t.z[i]) {
			t.r.Flip(i)
		}
	}
}

// g returns the exponent of i contributed when multiplying the one-qubit
// Paulis (x1,z1)·(x2,z2), as in Aaronson–Gottesman.
func g(x1, z1, x2, z2 bool) int {
	switch {
	case !x1 && !z1:
		return 0
	case x1 && z1: // Y
		return b2i(z2) - b2i(x2)
	case x1 && !z1: // X
		return b2i(z2) * (2*b2i(x2) - 1)
	default: // Z
		return b2i(x2) * (1 - 2*b2i(z2))
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// rowsum sets row h to row h · row i, maintaining the sign bit.
func (t *Tableau) rowsum(h, i int) {
	phase := 2*b2i(t.r.Get(h)) + 2*b2i(t.r.Get(i))
	for j := 0; j < t.n; j++ {
		phase += g(t.x[i].Get(j), t.z[i].Get(j), t.x[h].Get(j), t.z[h].Get(j))
	}
	phase = ((phase % 4) + 4) % 4
	// Odd phases can only arise when h is a destabilizer row (whose sign
	// is irrelevant to the algorithm); stabilizer rows always commute, so
	// their sums stay real.
	t.r.Set(h, phase == 2 || phase == 3)
	t.x[h].Xor(t.x[i])
	t.z[h].Xor(t.z[i])
}

// MeasureZ measures qubit a in the computational basis and returns the
// outcome together with whether the outcome was deterministic.
func (t *Tableau) MeasureZ(a int) (outcome, deterministic bool) {
	n := t.n
	p := -1
	for i := n; i < 2*n; i++ {
		if t.x[i].Get(a) {
			p = i
			break
		}
	}
	if p >= 0 {
		// Random outcome.
		for i := 0; i < 2*n; i++ {
			if i != p && t.x[i].Get(a) {
				t.rowsum(i, p)
			}
		}
		// Destabilizer p-n becomes the old stabilizer row p.
		t.x[p-n] = t.x[p].Clone()
		t.z[p-n] = t.z[p].Clone()
		t.r.Set(p-n, t.r.Get(p))
		// New stabilizer: ±Z_a.
		out := t.rng.IntN(2) == 1
		t.x[p] = bits.NewVec(n)
		t.z[p] = bits.NewVec(n)
		t.z[p].Set(a, true)
		t.r.Set(p, out)
		return out, false
	}
	// Deterministic outcome: accumulate the relevant stabilizers in scratch.
	t.x[2*n] = bits.NewVec(n)
	t.z[2*n] = bits.NewVec(n)
	t.r.Set(2*n, false)
	for i := 0; i < n; i++ {
		if t.x[i].Get(a) {
			t.rowsum(2*n, i+n)
		}
	}
	return t.r.Get(2 * n), true
}

// MeasureX measures qubit a in the X basis.
func (t *Tableau) MeasureX(a int) (outcome, deterministic bool) {
	t.H(a)
	out, det := t.MeasureZ(a)
	t.H(a)
	return out, det
}

// Reset measures qubit a and flips it to |0⟩ if needed.
func (t *Tableau) Reset(a int) {
	if out, _ := t.MeasureZ(a); out {
		t.X(a)
	}
}

// MeasurePauli measures the (Hermitian) Pauli observable p, returning the
// outcome (true = -1 eigenvalue) and whether it was deterministic.
// p.Phase must be 0 or 2 (a ±1 Hermitian operator with real sign).
func (t *Tableau) MeasurePauli(p pauli.Pauli) (outcome, deterministic bool) {
	if p.N() != t.n {
		panic("tableau: Pauli size mismatch")
	}
	// Find an anticommuting stabilizer row.
	anti := -1
	for i := t.n; i < 2*t.n; i++ {
		if t.x[i].Dot(p.ZBits) != p.XBits.Dot(t.z[i]) {
			anti = i
			break
		}
	}
	if anti < 0 {
		return t.deterministicSign(p), true
	}
	// Random outcome: replace row anti with ±p, fix all other rows that
	// anticommute with p by multiplying in the old row.
	for i := 0; i < 2*t.n; i++ {
		if i == anti {
			continue
		}
		if t.x[i].Dot(p.ZBits) != p.XBits.Dot(t.z[i]) {
			t.rowsum(i, anti)
		}
	}
	t.x[anti-t.n] = t.x[anti].Clone()
	t.z[anti-t.n] = t.z[anti].Clone()
	t.r.Set(anti-t.n, t.r.Get(anti))
	out := t.rng.IntN(2) == 1
	t.x[anti] = p.XBits.Clone()
	t.z[anti] = p.ZBits.Clone()
	t.r.Set(anti, out != hermitianSign(p))
	return out, false
}

// hermitianSign interprets p as ± (Hermitian Pauli product) and returns
// true for the minus sign. It panics when p is not Hermitian (phase has an
// unpaired factor of i).
func hermitianSign(p pauli.Pauli) bool {
	y := p.XBits.Clone()
	y.And(p.ZBits)
	rel := ((int(p.Phase)-y.Weight())%4 + 4) % 4
	if rel%2 != 0 {
		panic("tableau: cannot measure non-Hermitian Pauli")
	}
	return rel == 2
}

// deterministicSign returns the measurement outcome for a Pauli that
// commutes with every stabilizer: it must equal ± a product of stabilizer
// rows; the sign of that product relative to p is the outcome.
func (t *Tableau) deterministicSign(p pauli.Pauli) bool {
	n := t.n
	t.x[2*n] = bits.NewVec(n)
	t.z[2*n] = bits.NewVec(n)
	t.r.Set(2*n, false)
	// p anticommutes with destabilizer i exactly when stabilizer i appears
	// in its stabilizer decomposition.
	for i := 0; i < n; i++ {
		if t.x[i].Dot(p.ZBits) != p.XBits.Dot(t.z[i]) {
			t.rowsum(2*n, i+n)
		}
	}
	if !t.x[2*n].Equal(p.XBits) || !t.z[2*n].Equal(p.ZBits) {
		panic("tableau: observable outside the stabilizer group closure")
	}
	// The scratch row and p now share (x, z); both are Hermitian, so they
	// differ at most by a real sign, and the outcome is -1 exactly when
	// those signs disagree.
	return t.r.Get(2*n) != hermitianSign(p)
}

// StabilizerRow returns stabilizer generator i (0 ≤ i < n) as a Pauli with
// phase 0 (+1) or 2 (-1).
func (t *Tableau) StabilizerRow(i int) pauli.Pauli {
	row := pauli.Pauli{XBits: t.x[t.n+i].Clone(), ZBits: t.z[t.n+i].Clone()}
	// The tableau row is (-1)^r times a Hermitian Pauli product; in the
	// i^phase·X^x·Z^z representation each Y contributes a factor of i.
	y := row.XBits.Clone()
	y.And(row.ZBits)
	row.Phase = uint8((y.Weight() + 2*b2i(t.r.Get(t.n+i))) % 4)
	return row
}

// CanonicalStabilizers returns the stabilizer group in a canonical
// row-reduced form, usable to compare two states for equality.
func (t *Tableau) CanonicalStabilizers() []string {
	rows := make([]pauli.Pauli, t.n)
	for i := range rows {
		rows[i] = t.StabilizerRow(i)
	}
	// Gaussian elimination over the (x|z) bits, multiplying Paulis to keep
	// signs consistent.
	col := func(p pauli.Pauli, j int) bool {
		if j < t.n {
			return p.XBits.Get(j)
		}
		return p.ZBits.Get(j - t.n)
	}
	r := 0
	for c := 0; c < 2*t.n && r < t.n; c++ {
		pvt := -1
		for i := r; i < t.n; i++ {
			if col(rows[i], c) {
				pvt = i
				break
			}
		}
		if pvt < 0 {
			continue
		}
		rows[r], rows[pvt] = rows[pvt], rows[r]
		for i := 0; i < t.n; i++ {
			if i != r && col(rows[i], c) {
				rows[i] = rows[i].Mul(rows[r])
			}
		}
		r++
	}
	out := make([]string, t.n)
	for i, p := range rows {
		out[i] = p.String()
	}
	return out
}

// SameState reports whether two tableaus describe the same quantum state.
func SameState(a, b *Tableau) bool {
	if a.n != b.n {
		return false
	}
	ca, cb := a.CanonicalStabilizers(), b.CanonicalStabilizers()
	for i := range ca {
		if ca[i] != cb[i] {
			return false
		}
	}
	return true
}

// String renders the stabilizer generators, one per line.
func (t *Tableau) String() string {
	var sb strings.Builder
	for i := 0; i < t.n; i++ {
		fmt.Fprintf(&sb, "%s\n", t.StabilizerRow(i))
	}
	return sb.String()
}
