package tableau

import "ftqc/internal/circuit"

// Apply executes a circuit on the tableau (noiselessly) and returns the
// actual measurement outcomes indexed by result slot. It bridges the
// circuit IR used by the fault-tolerance gadgets to the exact stabilizer
// simulation used in tests and examples.
func Apply(t *Tableau, c *circuit.Circuit) []bool {
	if c.N != t.n {
		panic("tableau: circuit size mismatch")
	}
	out := make([]bool, c.NumMeas)
	for _, m := range c.Moments {
		for _, op := range m.Ops {
			switch op.Kind {
			case circuit.KindH:
				t.H(op.A)
			case circuit.KindS:
				t.S(op.A)
			case circuit.KindSdg:
				t.Sdg(op.A)
			case circuit.KindX:
				t.X(op.A)
			case circuit.KindY:
				t.Y(op.A)
			case circuit.KindZ:
				t.Z(op.A)
			case circuit.KindCNOT:
				t.CNOT(op.A, op.B)
			case circuit.KindCZ:
				t.CZ(op.A, op.B)
			case circuit.KindPrepZ:
				t.Reset(op.A)
			case circuit.KindMeasZ:
				out[op.M], _ = t.MeasureZ(op.A)
			case circuit.KindMeasX:
				out[op.M], _ = t.MeasureX(op.A)
			}
		}
	}
	return out
}
