// Package statevec is a dense state-vector simulator for small registers
// (up to ~20 qubits). It supports arbitrary single-qubit unitaries and the
// non-Clifford gates (Toffoli, small rotations) that the stabilizer
// tableau cannot represent, and is used to cross-validate the tableau
// simulator and to run the systematic-error experiments of Preskill §6.
//
// Qubit q corresponds to bit q (least significant = qubit 0) of the
// amplitude index.
package statevec

import (
	"math"
	"math/cmplx"
	"math/rand/v2"

	"ftqc/internal/pauli"
)

// State is a pure state of n qubits.
type State struct {
	n   int
	amp []complex128
}

// NewZero returns |0…0⟩ on n qubits.
func NewZero(n int) *State {
	if n < 0 || n > 26 {
		panic("statevec: unsupported qubit count")
	}
	s := &State{n: n, amp: make([]complex128, 1<<uint(n))}
	s.amp[0] = 1
	return s
}

// N returns the number of qubits.
func (s *State) N() int { return s.n }

// Clone returns an independent copy.
func (s *State) Clone() *State {
	c := &State{n: s.n, amp: make([]complex128, len(s.amp))}
	copy(c.amp, s.amp)
	return c
}

// Amplitude returns the amplitude of basis state index b.
func (s *State) Amplitude(b int) complex128 { return s.amp[b] }

// Apply1Q applies the 2x2 unitary m (row-major: m[r][c]) to qubit q.
func (s *State) Apply1Q(m [2][2]complex128, q int) {
	bit := 1 << uint(q)
	for i := 0; i < len(s.amp); i++ {
		if i&bit != 0 {
			continue
		}
		a0, a1 := s.amp[i], s.amp[i|bit]
		s.amp[i] = m[0][0]*a0 + m[0][1]*a1
		s.amp[i|bit] = m[1][0]*a0 + m[1][1]*a1
	}
}

var (
	sqrt1_2 = complex(1/math.Sqrt2, 0)

	matH = [2][2]complex128{{sqrt1_2, sqrt1_2}, {sqrt1_2, -sqrt1_2}}
	matX = [2][2]complex128{{0, 1}, {1, 0}}
	matY = [2][2]complex128{{0, -1i}, {1i, 0}}
	matZ = [2][2]complex128{{1, 0}, {0, -1}}
	matS = [2][2]complex128{{1, 0}, {0, 1i}}
	matT = [2][2]complex128{{1, 0}, {0, cmplx.Exp(1i * math.Pi / 4)}}
)

// H applies the Hadamard rotation R of Preskill Eq. (9) to qubit q.
func (s *State) H(q int) { s.Apply1Q(matH, q) }

// X applies a bit flip.
func (s *State) X(q int) { s.Apply1Q(matX, q) }

// Y applies the Hermitian Y gate.
func (s *State) Y(q int) { s.Apply1Q(matY, q) }

// Z applies a phase flip.
func (s *State) Z(q int) { s.Apply1Q(matZ, q) }

// S applies the phase gate P = diag(1, i) of Preskill Eq. (22).
func (s *State) S(q int) { s.Apply1Q(matS, q) }

// Sdg applies diag(1, -i).
func (s *State) Sdg(q int) { s.Apply1Q([2][2]complex128{{1, 0}, {0, -1i}}, q) }

// T applies diag(1, e^{iπ/4}).
func (s *State) T(q int) { s.Apply1Q(matT, q) }

// RotZ applies exp(-i θ Z / 2).
func (s *State) RotZ(q int, theta float64) {
	e0 := cmplx.Exp(complex(0, -theta/2))
	e1 := cmplx.Exp(complex(0, theta/2))
	s.Apply1Q([2][2]complex128{{e0, 0}, {0, e1}}, q)
}

// RotX applies exp(-i θ X / 2).
func (s *State) RotX(q int, theta float64) {
	c := complex(math.Cos(theta/2), 0)
	sn := complex(0, -math.Sin(theta/2))
	s.Apply1Q([2][2]complex128{{c, sn}, {sn, c}}, q)
}

// CNOT applies a controlled-NOT with control c and target t.
func (s *State) CNOT(c, t int) {
	cb, tb := 1<<uint(c), 1<<uint(t)
	for i := 0; i < len(s.amp); i++ {
		if i&cb != 0 && i&tb == 0 {
			s.amp[i], s.amp[i|tb] = s.amp[i|tb], s.amp[i]
		}
	}
}

// CZ applies a controlled-Z between qubits a and b.
func (s *State) CZ(a, b int) {
	ab := 1<<uint(a) | 1<<uint(b)
	for i := 0; i < len(s.amp); i++ {
		if i&ab == ab {
			s.amp[i] = -s.amp[i]
		}
	}
}

// SWAP exchanges qubits a and b.
func (s *State) SWAP(a, b int) { s.CNOT(a, b); s.CNOT(b, a); s.CNOT(a, b) }

// Toffoli applies the controlled-controlled-NOT of Preskill Fig. 1 with
// controls c1, c2 and target t.
func (s *State) Toffoli(c1, c2, t int) {
	cb := 1<<uint(c1) | 1<<uint(c2)
	tb := 1 << uint(t)
	for i := 0; i < len(s.amp); i++ {
		if i&cb == cb && i&tb == 0 {
			s.amp[i], s.amp[i|tb] = s.amp[i|tb], s.amp[i]
		}
	}
}

// CCZ applies a controlled-controlled-Z (the "three-bit phase gate" of
// Preskill §4.1).
func (s *State) CCZ(a, b, c int) {
	mask := 1<<uint(a) | 1<<uint(b) | 1<<uint(c)
	for i := 0; i < len(s.amp); i++ {
		if i&mask == mask {
			s.amp[i] = -s.amp[i]
		}
	}
}

// ApplyPauli applies the Pauli unitary p (including its phase).
func (s *State) ApplyPauli(p pauli.Pauli) {
	if p.N() != s.n {
		panic("statevec: Pauli size mismatch")
	}
	phase := [4]complex128{1, 1i, -1, -1i}[p.Phase]
	out := make([]complex128, len(s.amp))
	var xmask int
	for q := 0; q < s.n; q++ {
		if p.XBits.Get(q) {
			xmask |= 1 << uint(q)
		}
	}
	for b, a := range s.amp {
		if a == 0 {
			continue
		}
		sign := complex128(1)
		for q := 0; q < s.n; q++ {
			if p.ZBits.Get(q) && b&(1<<uint(q)) != 0 {
				sign = -sign
			}
		}
		out[b^xmask] += phase * sign * a
	}
	s.amp = out
}

// ExpectPauli returns the real expectation value ⟨ψ|p|ψ⟩ (p Hermitian).
func (s *State) ExpectPauli(p pauli.Pauli) float64 {
	if p.N() != s.n {
		panic("statevec: Pauli size mismatch")
	}
	phase := [4]complex128{1, 1i, -1, -1i}[p.Phase]
	var xmask int
	for q := 0; q < s.n; q++ {
		if p.XBits.Get(q) {
			xmask |= 1 << uint(q)
		}
	}
	var acc complex128
	for b, a := range s.amp {
		if a == 0 {
			continue
		}
		sign := complex128(1)
		for q := 0; q < s.n; q++ {
			if p.ZBits.Get(q) && b&(1<<uint(q)) != 0 {
				sign = -sign
			}
		}
		// ⟨ψ|P|ψ⟩ = Σ_b conj(ψ[b^x]) · phase · (-1)^{z·b} · ψ[b]
		acc += cmplxConj(s.amp[b^xmask]) * phase * sign * a
	}
	return real(acc)
}

func cmplxConj(c complex128) complex128 { return complex(real(c), -imag(c)) }

// Prob1 returns the probability of reading 1 on qubit q.
func (s *State) Prob1(q int) float64 {
	bit := 1 << uint(q)
	p := 0.0
	for i, a := range s.amp {
		if i&bit != 0 {
			p += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	return p
}

// MeasureZ measures qubit q, collapsing the state, and returns the outcome.
func (s *State) MeasureZ(q int, rng *rand.Rand) bool {
	p1 := s.Prob1(q)
	out := rng.Float64() < p1
	s.project(q, out)
	return out
}

// project collapses qubit q onto the given outcome and renormalizes.
func (s *State) project(q int, one bool) {
	bit := 1 << uint(q)
	norm := 0.0
	for i := range s.amp {
		keep := (i&bit != 0) == one
		if !keep {
			s.amp[i] = 0
		} else {
			norm += real(s.amp[i])*real(s.amp[i]) + imag(s.amp[i])*imag(s.amp[i])
		}
	}
	if norm == 0 {
		panic("statevec: projection onto zero-probability outcome")
	}
	scale := complex(1/math.Sqrt(norm), 0)
	for i := range s.amp {
		s.amp[i] *= scale
	}
}

// InnerProduct returns ⟨a|b⟩.
func InnerProduct(a, b *State) complex128 {
	if a.n != b.n {
		panic("statevec: size mismatch")
	}
	var acc complex128
	for i := range a.amp {
		acc += cmplxConj(a.amp[i]) * b.amp[i]
	}
	return acc
}

// Fidelity returns |⟨a|b⟩|², the fidelity of Preskill Eq. (14) for pure
// states.
func Fidelity(a, b *State) float64 {
	ip := InnerProduct(a, b)
	return real(ip)*real(ip) + imag(ip)*imag(ip)
}

// Norm returns ⟨ψ|ψ⟩ (should be 1 for a normalized state).
func (s *State) Norm() float64 {
	n := 0.0
	for _, a := range s.amp {
		n += real(a)*real(a) + imag(a)*imag(a)
	}
	return n
}
