package statevec

import (
	"math"
	"math/rand/v2"
	"testing"

	"ftqc/internal/pauli"
)

const eps = 1e-12

func TestHadamardTwiceIsIdentity(t *testing.T) {
	s := NewZero(1)
	s.H(0)
	s.H(0)
	if math.Abs(real(s.Amplitude(0))-1) > eps {
		t.Fatal("H^2 != I")
	}
}

func TestBellState(t *testing.T) {
	s := NewZero(2)
	s.H(0)
	s.CNOT(0, 1)
	want := 1 / math.Sqrt2
	if math.Abs(real(s.Amplitude(0))-want) > eps || math.Abs(real(s.Amplitude(3))-want) > eps {
		t.Fatalf("Bell amplitudes wrong: %v %v", s.Amplitude(0), s.Amplitude(3))
	}
	if math.Abs(s.ExpectPauli(pauli.MustFromString("XX"))-1) > eps {
		t.Fatal("Bell state should satisfy <XX>=1")
	}
	if math.Abs(s.ExpectPauli(pauli.MustFromString("ZZ"))-1) > eps {
		t.Fatal("Bell state should satisfy <ZZ>=1")
	}
	if math.Abs(s.ExpectPauli(pauli.MustFromString("ZI"))) > eps {
		t.Fatal("Bell state should satisfy <ZI>=0")
	}
}

func TestToffoliTruthTable(t *testing.T) {
	for in := 0; in < 8; in++ {
		s := NewZero(3)
		for q := 0; q < 3; q++ {
			if in>>uint(q)&1 == 1 {
				s.X(q)
			}
		}
		s.Toffoli(0, 1, 2)
		want := in
		if in&3 == 3 {
			want ^= 4
		}
		if math.Abs(real(s.Amplitude(want))-1) > eps {
			t.Fatalf("Toffoli on |%03b>: amplitude at |%03b> is %v", in, want, s.Amplitude(want))
		}
	}
}

func TestCCZPhase(t *testing.T) {
	s := NewZero(3)
	s.X(0)
	s.X(1)
	s.X(2)
	s.CCZ(0, 1, 2)
	if math.Abs(real(s.Amplitude(7))+1) > eps {
		t.Fatal("CCZ|111> != -|111>")
	}
}

func TestSGate(t *testing.T) {
	s := NewZero(1)
	s.X(0)
	s.S(0)
	if math.Abs(imag(s.Amplitude(1))-1) > eps {
		t.Fatal("S|1> != i|1>")
	}
}

func TestTSquaredIsS(t *testing.T) {
	a := NewZero(1)
	a.H(0)
	a.T(0)
	a.T(0)
	b := NewZero(1)
	b.H(0)
	b.S(0)
	if Fidelity(a, b) < 1-eps {
		t.Fatal("T^2 != S")
	}
}

func TestRotZComposition(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 32))
	for trial := 0; trial < 20; trial++ {
		th1, th2 := rng.Float64(), rng.Float64()
		a := NewZero(1)
		a.H(0)
		a.RotZ(0, th1)
		a.RotZ(0, th2)
		b := NewZero(1)
		b.H(0)
		b.RotZ(0, th1+th2)
		if Fidelity(a, b) < 1-1e-9 {
			t.Fatal("RotZ angles do not add")
		}
	}
}

func TestApplyPauliMatchesGates(t *testing.T) {
	rng := rand.New(rand.NewPCG(33, 34))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.IntN(4)
		// Random product state via rotations.
		mk := func() *State {
			s := NewZero(n)
			for q := 0; q < n; q++ {
				s.RotX(q, rng.Float64()*3)
				s.RotZ(q, rng.Float64()*3)
			}
			return s
		}
		seed1, seed2 := rng.Uint64(), rng.Uint64()
		_ = seed1
		_ = seed2
		a := mk()
		b := a.Clone()
		p := pauli.NewIdentity(n)
		for q := 0; q < n; q++ {
			p.SetAt(q, pauli.Single(rng.IntN(4)))
		}
		a.ApplyPauli(p)
		for q := 0; q < n; q++ {
			switch p.At(q) {
			case pauli.X:
				b.X(q)
			case pauli.Z:
				b.Z(q)
			case pauli.Y:
				b.Y(q)
			}
		}
		// ApplyPauli uses i^Phase X^x Z^z; Y gates in b contribute the
		// Hermitian Y. p was built with phase 0 so they differ by i per Y.
		// Compare fidelity, which ignores global phase.
		if Fidelity(a, b) < 1-1e-9 {
			t.Fatalf("ApplyPauli disagrees with gate sequence for %v", p)
		}
	}
}

func TestMeasureCollapse(t *testing.T) {
	rng := rand.New(rand.NewPCG(35, 36))
	s := NewZero(2)
	s.H(0)
	s.CNOT(0, 1)
	out := s.MeasureZ(0, rng)
	// After collapse the second qubit must deterministically agree.
	if p := s.Prob1(1); math.Abs(p-b2f(out)) > eps {
		t.Fatalf("collapse failed: P(q1=1)=%.6f after q0=%v", p, out)
	}
	if math.Abs(s.Norm()-1) > eps {
		t.Fatal("state not renormalized after measurement")
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func TestFidelitySelf(t *testing.T) {
	s := NewZero(3)
	s.H(0)
	s.CNOT(0, 1)
	s.T(2)
	if f := Fidelity(s, s); math.Abs(f-1) > eps {
		t.Fatalf("self fidelity %v", f)
	}
}

func TestNormPreservedByGates(t *testing.T) {
	rng := rand.New(rand.NewPCG(37, 38))
	s := NewZero(4)
	for i := 0; i < 50; i++ {
		switch rng.IntN(5) {
		case 0:
			s.H(rng.IntN(4))
		case 1:
			s.T(rng.IntN(4))
		case 2:
			s.RotX(rng.IntN(4), rng.Float64())
		case 3:
			s.CNOT(0, 1+rng.IntN(3))
		default:
			s.Toffoli(0, 1, 2+rng.IntN(2))
		}
	}
	if math.Abs(s.Norm()-1) > 1e-9 {
		t.Fatalf("norm drifted to %v", s.Norm())
	}
}
