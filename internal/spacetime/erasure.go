package spacetime

import (
	"ftqc/internal/bits"
	"ftqc/internal/frame"
)

// Erasure in the volume: leakage planes and lost measurement rounds.
//
// Two erasure channels thread into the 3D decode path, both feeding the
// union-find decoder's peeling pass as known fault locations:
//
//   - Data leakage: each qubit edge, each round, leaks with probability
//     pe. A leaked qubit depolarizes — it flips with probability ½ in
//     each sector independently — and its horizontal (space-like) edge
//     at that round is erased in both sector graphs.
//
//   - Lost measurements: each check measurement, each noisy round, is
//     lost with probability qe (a leaked readout). Its observed value is
//     replaced by a fair coin and the vertical (time-like) edge joining
//     that round's difference layers is erased in the affected sector.
//
// Erased edges enter the erasure at full support before any growth, so
// histories dominated by located faults decode by peeling alone; the
// decoder pays growth sweeps only for the unlocated remainder.

// NextLayersErased is NextLayers with the two erasure channels: it also
// fills the round's data-leakage planes (eraH: one vector per edge) and
// lost-measurement masks per sector (lostX, lostZ: one vector per
// check). Draw order: leakage planes, X intact flips, X leaked coins,
// Z intact flips, Z leaked coins, plaquette measurement masks, lost
// plaquette masks, lost plaquette coins, then the star sector's three —
// all plane-at-a-time in index order.
func (s *LayerSource) NextLayersErased(pe, qe float64, layerX, layerZ, eraH, lostX, lostZ []bits.Vec) {
	nq, nc := s.lat.Qubits(), s.lat.NumChecks()
	if s.intact.Len() == 0 {
		s.intact = bits.NewVec(s.lanes)
		s.coin = bits.NewVec(s.lanes)
	}
	for e := 0; e < nq; e++ {
		s.smp.Bernoulli(pe, s.active, eraH[e])
	}
	for e := 0; e < nq; e++ {
		s.intact.CopyFrom(s.active)
		s.intact.AndNot(eraH[e])
		s.smp.Bernoulli(s.p, s.intact, s.tmp)
		s.cumX[e].Xor(s.tmp)
	}
	for e := 0; e < nq; e++ {
		s.smp.Bernoulli(0.5, eraH[e], s.tmp)
		s.cumX[e].Xor(s.tmp)
	}
	for e := 0; e < nq; e++ {
		s.intact.CopyFrom(s.active)
		s.intact.AndNot(eraH[e])
		s.smp.Bernoulli(s.p, s.intact, s.tmp)
		s.cumZ[e].Xor(s.tmp)
	}
	for e := 0; e < nq; e++ {
		s.smp.Bernoulli(0.5, eraH[e], s.tmp)
		s.cumZ[e].Xor(s.tmp)
	}
	curX := s.diff.CurX()
	s.lat.PlaquetteSyndromePlanes(s.cumX, curX)
	for c := 0; c < nc; c++ {
		s.smp.Bernoulli(s.q, s.active, s.tmp)
		curX[c].Xor(s.tmp)
	}
	for c := 0; c < nc; c++ {
		s.smp.Bernoulli(qe, s.active, lostX[c])
	}
	for c := 0; c < nc; c++ {
		// A lost measurement reads as a fair coin, whatever the truth.
		s.smp.Coin(lostX[c], s.coin)
		curX[c].AndNot(lostX[c])
		curX[c].Or(s.coin)
	}
	curZ := s.diff.CurZ()
	s.lat.StarSyndromePlanes(s.cumZ, curZ)
	for c := 0; c < nc; c++ {
		s.smp.Bernoulli(s.q, s.active, s.tmp)
		curZ[c].Xor(s.tmp)
	}
	for c := 0; c < nc; c++ {
		s.smp.Bernoulli(qe, s.active, lostZ[c])
	}
	for c := 0; c < nc; c++ {
		s.smp.Coin(lostZ[c], s.coin)
		curZ[c].AndNot(lostZ[c])
		curZ[c].Or(s.coin)
	}
	s.diff.Emit(layerX, layerZ)
	s.rounds++
}

// BatchMemoryErased runs `lanes` shots of the erasure-augmented
// noisy-extraction memory experiment and returns the per-lane failure
// masks of the two sectors. With aware = true the per-lane erased edge
// lists (horizontal leakage + vertical lost-measurement edges) feed the
// union-find peeling pass; with aware = false the same histories decode
// blind — the controlled comparison that measures what the side
// information is worth.
func (v *Volume) BatchMemoryErased(p, q, pe, qe float64, lanes int, smp frame.Sampler, aware bool) (failX, failZ bits.Vec) {
	nc, nq := v.nc, v.nq
	src := NewLayerSource(v.L, p, q, lanes, smp)
	layersX := bits.NewVecs(v.nodes, lanes)
	layersZ := bits.NewVecs(v.nodes, lanes)
	eraH := bits.NewVecs(v.horiz, lanes)
	lostX := bits.NewVecs(v.T*nc, lanes)
	lostZ := bits.NewVecs(v.T*nc, lanes)
	for t := 0; t < v.T; t++ {
		src.NextLayersErased(pe, qe,
			layersX[t*nc:(t+1)*nc], layersZ[t*nc:(t+1)*nc],
			eraH[t*nq:(t+1)*nq], lostX[t*nc:(t+1)*nc], lostZ[t*nc:(t+1)*nc])
	}
	src.CloseLayers(layersX[v.T*nc:], layersZ[v.T*nc:])
	pX1 := bits.NewVec(lanes)
	pX2 := bits.NewVec(lanes)
	pZ1 := bits.NewVec(lanes)
	pZ2 := bits.NewVec(lanes)
	src.Windings(pX1, pX2, pZ1, pZ2)
	// Pivot detectors and erasure supports lane-major, then decode each
	// sector with its own lost-measurement planes (leakage is shared).
	syn := bits.NewVecs(lanes, v.nodes)
	var eraLane, lostLane []bits.Vec
	if aware {
		eraLane = bits.NewVecs(lanes, v.horiz)
		bits.TransposePlanes(eraLane, eraH)
		lostLane = bits.NewVecs(lanes, v.T*nc)
	}
	bits.TransposePlanes(syn, layersX)
	if aware {
		bits.TransposePlanes(lostLane, lostX)
	}
	failX = bits.NewVec(lanes)
	v.decodeErasedLanes(syn, eraLane, lostLane, pX1, pX2, failX, false)
	bits.TransposePlanes(syn, layersZ)
	if aware {
		bits.TransposePlanes(lostLane, lostZ)
	}
	failZ = bits.NewVec(lanes)
	v.decodeErasedLanes(syn, eraLane, lostLane, pZ1, pZ2, failZ, true)
	return failX, failZ
}

// decodeErasedLanes is decodeLanes with per-lane erasure supports (era
// and lost may be nil for blind decoding): the same word-aligned
// worker-pool discipline, union-find only.
func (v *Volume) decodeErasedLanes(syn, era, lost []bits.Vec, p1, p2, fails bits.Vec, dual bool) {
	frame.ForEachLaneSpan(len(syn), func(lo, hi int) {
		scr := v.scratch.Get().(*volScratch)
		uf := scr.ufX
		if dual {
			uf = scr.ufZ
		}
		for lane := lo; lane < hi; lane++ {
			scr.defects = syn[lane].AppendSupport(scr.defects[:0])
			l1 := p1.Get(lane)
			l2 := p2.Get(lane)
			if len(scr.defects) > 0 {
				scr.erased = scr.erased[:0]
				if era != nil {
					scr.erased = era[lane].AppendSupport(scr.erased)
					vert := len(scr.erased)
					scr.erased = lost[lane].AppendSupport(scr.erased)
					for k := vert; k < len(scr.erased); k++ {
						scr.erased[k] += v.horiz
					}
				}
				scr.corr.Clear()
				uf.DecodeErased(scr.defects, scr.erased, func(e int) {
					if q, ok := v.ProjectEdge(e); ok {
						scr.corr.Flip(q)
					}
				})
				var c1, c2 bool
				if dual {
					c1, c2 = v.lat.WindingParityDual(scr.corr)
				} else {
					c1, c2 = v.lat.WindingParity(scr.corr)
				}
				l1 = l1 != c1
				l2 = l2 != c2
			}
			if l1 || l2 {
				fails.Set(lane, true)
			}
		}
		v.scratch.Put(scr)
	})
}

// ErasedMemory runs the erasure-augmented noisy-syndrome memory Monte
// Carlo: data errors at p, measurement flips at q, leakage-erased data
// qubits at pe per round, lost measurements at qe per round, decoded
// erasure-aware over the weighted volume.
func ErasedMemory(l, rounds int, p, q, pe, qe float64, samples int, seed uint64) Result {
	return erasedMemory(l, rounds, p, q, pe, qe, samples, seed, true)
}

// ErasedMemoryBlind is ErasedMemory with the erasure locations withheld
// from the decoder — identical noise, no side information. The gap to
// ErasedMemory is the measured value of location awareness.
func ErasedMemoryBlind(l, rounds int, p, q, pe, qe float64, samples int, seed uint64) Result {
	return erasedMemory(l, rounds, p, q, pe, qe, samples, seed, false)
}

func erasedMemory(l, rounds int, p, q, pe, qe float64, samples int, seed uint64, aware bool) Result {
	v := CachedVolume(l, rounds, p, q)
	fx, fz, fa := frame.CountSectorFailures(samples, seed, func(lanes int, smp frame.Sampler) (bits.Vec, bits.Vec) {
		return v.BatchMemoryErased(p, q, pe, qe, lanes, smp, aware)
	})
	return Result{L: l, T: rounds, P: p, Q: q, Pe: pe, Qe: qe, Samples: samples,
		FailX: fx, FailZ: fz, Failures: fa}
}
