package spacetime

import (
	"math"
	"sync"

	"ftqc/internal/bits"
	"ftqc/internal/decoder"
	"ftqc/internal/frame"
	"ftqc/internal/surface"
	"ftqc/internal/toric"
)

// Volume is the 3D space-time decoding volume of a surface.Code over
// T noisy syndrome-extraction rounds plus one perfect closing round:
// (T+1)·Checks() detectors per sector, horizontal (space-like) edges of
// weight WH for data errors and vertical (time-like) edges of weight WV
// for measurement errors. Circuit-level volumes (NewCircuitVolume) add
// a third class: diagonal edges of weight WD joining a data qubit's
// late reader at layer t to its early reader at layer t+1 — the
// correlated defect pair a mid-round CNOT fault produces. Open codes
// append one virtual boundary node that grounds both the boundary
// qubits of every layer and the boundary-truncated diagonals. It is
// immutable after construction and shared across workers; per-worker
// decoder state lives in the scratch pool.
type Volume struct {
	L, T       int // L = code distance
	WH, WV, WD int // WD = 0: no diagonal edges (phenomenological volume)

	code    surface.Code
	lat     *toric.Lattice // non-nil only for the torus (exact-matcher fast paths)
	nq      int            // data qubits per layer
	nc      int            // checks per layer per sector
	det     int            // detector nodes per sector, (T+1)·nc
	nodes   int            // det, plus one boundary node for open codes
	horiz   int            // horizontal edge count, T·nq (ids below this project to data qubits)
	diagOff int            // first diagonal edge id, horiz + T·nc (ids at or above project to data qubits)
	// Per-sector {late, early} reader checks of each data edge (nil when
	// WD = 0), and the circuit-metric distance tables the exact matcher
	// prices pairs with — built lazily on first exact decode (see
	// metric), so union-find-only workloads never pay for them.
	diagX, diagZ [][2]int32
	distOnce     sync.Once
	distX, distZ []int64
	graphX       *decoder.Graph // primal (plaquette) sector
	graphZ       *decoder.Graph // dual (star) sector

	scratch *sync.Pool
}

// volScratch is one worker's decoder state over a volume.
type volScratch struct {
	ufX, ufZ *decoder.UnionFind
	matcher  decoder.Matcher
	grid     decoder.DefectGrid
	defects  []int
	erased   []int
	corr     bits.Vec
	emask    bits.Vec // edge-id mask: erased-list construction, correlated repricing
	edges    []int32  // raw primal correction edges of the lane in flight
}

// NewVolume builds the space-time volume for an L×L toric lattice,
// rounds ≥ 1 noisy extraction rounds and the given integer edge
// weights (see Weights). Both sector graphs are built; node (c, t) has
// index t·L²+c.
func NewVolume(l, rounds, wh, wv int) *Volume {
	return newVolume(toric.Cached(l), rounds, wh, wv, 0)
}

// NewCodeVolume is NewVolume for any surface.Code.
func NewCodeVolume(code surface.Code, rounds, wh, wv int) *Volume {
	return newVolume(code, rounds, wh, wv, 0)
}

// NewCircuitVolume builds the circuit-level volume: NewVolume plus the
// diagonal edge class of weight wd ≥ 1, oriented by the extraction
// schedule's per-edge {late, early} reader pairs (extract.Sched), and
// the circuit-metric distance tables the exact matcher prices with.
func NewCircuitVolume(l, rounds, wh, wv, wd int) *Volume {
	if wd < 1 {
		panic("spacetime: circuit volume needs a positive diagonal weight")
	}
	return newVolume(toric.Cached(l), rounds, wh, wv, wd)
}

// NewCodeCircuitVolume is NewCircuitVolume for any surface.Code, with
// the diagonal edges oriented by the code's own extraction schedule —
// boundary-truncated diagonals of open codes ground on the virtual
// boundary node.
func NewCodeCircuitVolume(code surface.Code, rounds, wh, wv, wd int) *Volume {
	if wd < 1 {
		panic("spacetime: circuit volume needs a positive diagonal weight")
	}
	return newVolume(code, rounds, wh, wv, wd)
}

func newVolume(code surface.Code, rounds, wh, wv, wd int) *Volume {
	if rounds < 1 {
		panic("spacetime: need at least one measurement round")
	}
	if wh < 1 || wv < 1 || wd < 0 {
		panic("spacetime: edge weights must be positive")
	}
	nq, nc := code.Qubits(), code.Checks()
	v := &Volume{
		L: code.Distance(), T: rounds, WH: wh, WV: wv, WD: wd,
		code:    code,
		nq:      nq,
		nc:      nc,
		det:     (rounds + 1) * nc,
		horiz:   rounds * nq,
		diagOff: rounds * (nq + nc),
	}
	v.nodes = v.det
	if code.Open() {
		v.nodes++
	}
	if lat, ok := code.(*toric.Lattice); ok {
		v.lat = lat
	}
	if wd > 0 {
		sch := code.ExtractionSchedule()
		v.diagX, v.diagZ = sch.DiagX, sch.DiagZ
	}
	v.graphX = v.buildGraph(code.SectorGraph(false), v.diagX)
	v.graphZ = v.buildGraph(code.SectorGraph(true), v.diagZ)
	nedges := v.horiz + rounds*nc
	if wd > 0 {
		nedges += rounds * nq
	}
	gx, gz, nqq := v.graphX, v.graphZ, v.nq
	v.scratch = &sync.Pool{New: func() any {
		return &volScratch{
			ufX:   decoder.NewUnionFind(gx),
			ufZ:   decoder.NewUnionFind(gz),
			corr:  bits.NewVec(nqq),
			emask: bits.NewVec(nedges),
		}
	}}
	return v
}

// buildGraph extrudes a 2D sector graph into the weighted space-time
// volume. Edge ids: horizontal edge (e, t) = t·nq + e for layers
// t = 0…T−1 (a data error entering at round t+1), then vertical edge
// (c, t) = T·nq + t·nc + c joining layers t and t+1 of check c (a
// measurement error at round t+1), then — circuit volumes only —
// diagonal edge (e, t) = T·(nq+nc) + t·nq + e joining data edge e's
// late reader at layer t to its early reader at layer t+1 (a data error
// created between the two reads of round t+1). Open codes map the 2D
// boundary endpoint of every layer onto the single space-time boundary
// node; a boundary-truncated diagonal (the qubit has one reader in the
// sector, so the mid-round fault defects only (c, t+1)) grounds there
// too.
func (v *Volume) buildGraph(base *decoder.Graph, diag [][2]int32) *decoder.Graph {
	n := v.horiz + v.T*v.nc
	if v.WD > 0 {
		n += v.T * v.nq
	}
	open := v.code.Open()
	bnd := int32(v.det)
	ends := make([][2]int32, n)
	weights := make([]int32, len(ends))
	for t := 0; t < v.T; t++ {
		off := t * v.nq
		layer := int32(t * v.nc)
		for e := 0; e < v.nq; e++ {
			a, b := base.Ends(e)
			ea, eb := layer+int32(a), layer+int32(b)
			if open {
				if a == v.nc {
					ea = bnd
				}
				if b == v.nc {
					eb = bnd
				}
			}
			ends[off+e] = [2]int32{ea, eb}
			weights[off+e] = int32(v.WH)
		}
	}
	for t := 0; t < v.T; t++ {
		off := v.horiz + t*v.nc
		for c := 0; c < v.nc; c++ {
			ends[off+c] = [2]int32{int32(t*v.nc + c), int32((t+1)*v.nc + c)}
			weights[off+c] = int32(v.WV)
		}
	}
	if v.WD > 0 {
		for t := 0; t < v.T; t++ {
			off := v.diagOff + t*v.nq
			layer := int32(t * v.nc)
			for e := 0; e < v.nq; e++ {
				if early := diag[e][1]; early < 0 {
					ends[off+e] = [2]int32{layer + int32(v.nc) + diag[e][0], bnd}
				} else {
					ends[off+e] = [2]int32{layer + diag[e][0], layer + int32(v.nc) + early}
				}
				weights[off+e] = int32(v.WD)
			}
		}
	}
	if open {
		return decoder.NewBoundaryGraph(v.nodes, ends, weights, []int{int(bnd)})
	}
	return decoder.NewWeightedGraph(v.nodes, ends, weights)
}

// ProjectEdge maps a space-time edge id to the data qubit it flips in
// the 2D correction: horizontal and diagonal edges are data errors and
// project to their edge; vertical edges are measurement-error
// assignments and project away (ok = false).
func (v *Volume) ProjectEdge(e int) (qubit int, ok bool) {
	if e < v.horiz {
		return e % v.nq, true
	}
	if e >= v.diagOff {
		return (e - v.diagOff) % v.nq, true
	}
	return 0, false
}

// Graph returns the primal (plaquette-sector) space-time graph.
func (v *Volume) Graph() *decoder.Graph { return v.graphX }

// DualGraph returns the dual (star-sector) space-time graph.
func (v *Volume) DualGraph() *decoder.Graph { return v.graphZ }

// Lattice returns the underlying 2D toric lattice, or nil for volumes
// built over an open-boundary code (use Code for those).
func (v *Volume) Lattice() *toric.Lattice { return v.lat }

// Code returns the surface.Code the volume decodes.
func (v *Volume) Code() surface.Code { return v.code }

// weightScale is the target magnitude of the larger LLR weight before
// gcd normalization: fine enough to separate p from q likelihoods,
// small enough that weighted union-find growth stays a handful of
// sweeps per graph distance.
const weightScale = 12

// Weights converts the physical error rates into the integer edge
// weights of the volume: wh ∝ log((1−p)/p) for data edges, wv ∝
// log((1−q)/q) for measurement edges, scaled so the larger is
// weightScale, capped so an impossible channel (q = 0) can never be
// cheaper than any detour that avoids it, and gcd-normalized — p = q
// yields the unit-weight (1, 1) graph.
func Weights(p, q float64, l, rounds int) (wh, wv int) {
	lp := clampLLR(p)
	lq := clampLLR(q)
	m := lp
	if lq > m {
		m = lq
	}
	wh = int(math.Round(weightScale * lp / m))
	wv = int(math.Round(weightScale * lq / m))
	if wh < 1 {
		wh = 1
	}
	if wv < 1 {
		wv = 1
	}
	// An all-horizontal detour never exceeds wh·L; an all-vertical one,
	// wv·rounds. Weights beyond those bounds are indistinguishable from
	// "never", so cap them and keep the normalized integers small.
	if lim := wh*l + 1; wv > lim {
		wv = lim
	}
	if lim := wv*rounds + 1; wh > lim {
		wh = lim
	}
	g := gcd(wh, wv)
	return wh / g, wv / g
}

// clampLLR returns log((1−x)/x) clamped to a positive finite range.
func clampLLR(x float64) float64 {
	if x < 1e-9 {
		x = 1e-9
	}
	if x > 0.5 {
		x = 0.5
	}
	v := math.Log((1 - x) / x)
	if v < 1e-9 {
		v = 1e-9
	}
	return v
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// volumeCache memoizes constructed volumes: sweeps revisit the same
// (L, T, weights) grid point for every p in a curve.
var volumeCache sync.Map // volumeKey → *Volume

type volumeKey struct {
	family           string
	l, t, wh, wv, wd int
}

// CachedVolume returns the memoized volume for the given lattice size,
// round count and physical rates (weights derived via Weights).
func CachedVolume(l, rounds int, p, q float64) *Volume {
	wh, wv := Weights(p, q, l, rounds)
	return CachedVolumeWeighted(l, rounds, wh, wv)
}

// CachedCodeVolume is CachedVolume for any surface.Code.
func CachedCodeVolume(code surface.Code, rounds int, p, q float64) *Volume {
	wh, wv := Weights(p, q, code.Distance(), rounds)
	return cachedVolume(code, rounds, wh, wv, 0)
}

// CachedVolumeWeighted is CachedVolume with explicit integer edge
// weights — the form the streaming decoder's closing windows reuse (a
// stream's final window height varies with rounds mod slide, and its
// weights are fixed by the session, not re-derived per height).
func CachedVolumeWeighted(l, rounds, wh, wv int) *Volume {
	return cachedVolume(toric.Cached(l), rounds, wh, wv, 0)
}

// CachedCodeVolumeWeighted is CachedVolumeWeighted for any
// surface.Code.
func CachedCodeVolumeWeighted(code surface.Code, rounds, wh, wv int) *Volume {
	return cachedVolume(code, rounds, wh, wv, 0)
}

// CachedCircuitVolume is the memoized circuit-level (diagonal-edge)
// volume under explicit weights — wd = 0 degrades to the plain volume.
func CachedCircuitVolume(l, rounds, wh, wv, wd int) *Volume {
	return cachedVolume(toric.Cached(l), rounds, wh, wv, wd)
}

// CachedCodeCircuitVolume is CachedCircuitVolume for any surface.Code.
func CachedCodeCircuitVolume(code surface.Code, rounds, wh, wv, wd int) *Volume {
	return cachedVolume(code, rounds, wh, wv, wd)
}

func cachedVolume(code surface.Code, rounds, wh, wv, wd int) *Volume {
	key := volumeKey{code.CodeName(), code.Distance(), rounds, wh, wv, wd}
	if v, ok := volumeCache.Load(key); ok {
		return v.(*Volume)
	}
	v, _ := volumeCache.LoadOrStore(key, newVolume(code, rounds, wh, wv, wd))
	return v.(*Volume)
}

// Decode returns the projected spatial correction for a 3D defect set:
// the decoder runs on the space-time graph of the chosen sector and the
// space-like correction edges are XOR-ed onto their data qubits
// (time-like edges are measurement-error assignments and project away).
// DecoderExact runs the blossom matcher on wh·d₂ + wv·|Δt| distances
// (pruned above decoder.SparseMatchMin defects); every other kind runs
// the weighted union-find decoder.
func (v *Volume) Decode(defects []int, kind toric.DecoderKind, dual bool) bits.Vec {
	corr := bits.NewVec(v.nq)
	scr := v.scratch.Get().(*volScratch)
	v.decodeInto(defects, kind, dual, scr, corr)
	v.scratch.Put(scr)
	return corr
}

// DecodeErased is Decode with erasure information: the listed edge ids
// (horizontal data-leakage edges, vertical lost-measurement edges) seed
// the union-find peeling pass at full support, so known-bad locations
// are corrected without growth. Erasure decoding is union-find only —
// the peeling pass is what exploits the locations.
func (v *Volume) DecodeErased(defects, erased []int, dual bool) bits.Vec {
	corr := bits.NewVec(v.nq)
	scr := v.scratch.Get().(*volScratch)
	uf := scr.ufX
	if dual {
		uf = scr.ufZ
	}
	uf.DecodeErased(defects, erased, func(e int) {
		if q, ok := v.ProjectEdge(e); ok {
			corr.Flip(q)
		}
	})
	v.scratch.Put(scr)
	return corr
}

func (v *Volume) decodeInto(defects []int, kind toric.DecoderKind, dual bool, scr *volScratch, corr bits.Vec) {
	if len(defects) == 0 {
		return
	}
	if kind == toric.DecoderExact {
		if v.lat == nil {
			panic("spacetime: exact matching prices pairs with the torus metric; open-boundary codes decode with union-find")
		}
		// Pair distances: the rectilinear WH·d₂ + WV·|Δt| metric on plain
		// volumes; the precomputed circuit-metric table (which prices the
		// diagonal shortcuts exactly) on circuit volumes. The correction
		// chain emitted per pair is the canonical short-way 2D path either
		// way — on weight ties between a winding and a non-winding 3D path
		// the canonical chain stands in for the matcher's choice, the same
		// convention the 2D matcher uses for antipodal pairs.
		weight := func(i, j int) int64 {
			a, b := defects[i], defects[j]
			dt := a/v.nc - b/v.nc
			if dt < 0 {
				dt = -dt
			}
			return int64(v.WH)*int64(v.lat.TorusDist(a%v.nc, b%v.nc)) + int64(v.WV)*int64(dt)
		}
		if v.WD > 0 {
			dist, distZ := v.metric()
			if dual {
				dist = distZ
			}
			span := 2*v.T + 1
			weight = func(i, j int) int64 {
				a, b := defects[i], defects[j]
				ca, cb := a%v.nc, b%v.nc
				dx := cb%v.L - ca%v.L
				if dx < 0 {
					dx += v.L
				}
				dy := cb/v.L - ca/v.L
				if dy < 0 {
					dy += v.L
				}
				return dist[(dy*v.L+dx)*span+(b/v.nc-a/v.nc)+v.T]
			}
		}
		// Grid staging reach per weighted radius r: a diagonal advances one
		// spatial and one time step at cost WD, so the cheapest spatial
		// (resp. time) step costs min(WH, WD) (resp. min(WV, WD)).
		sw, tw := v.WH, v.WV
		if v.WD > 0 && v.WD < sw {
			sw = v.WD
		}
		if v.WD > 0 && v.WD < tw {
			tw = v.WD
		}
		var pairs [][2]int32
		if n := len(defects); n > decoder.SparseMatchMin {
			cutoff := v.matchCutoff(n)
			scr.grid.Reset(v.L, max(1, int(cutoff)/sw), 0, v.T, max(1, int(cutoff)/tw))
			for _, d := range defects {
				c := d % v.nc
				scr.grid.Add(c%v.L, c/v.L, d/v.nc)
			}
			pairs = scr.matcher.MinWeightPairsIndexed(n, weight, cutoff,
				func(i int, r int64, visit func(j int)) {
					scr.grid.VisitWithin(i, int(r)/sw, int(r)/tw, visit)
				})
		} else {
			pairs = scr.matcher.MinWeightPairs(n, weight)
		}
		for _, pr := range pairs {
			ca, cb := defects[pr[0]]%v.nc, defects[pr[1]]%v.nc
			if ca == cb {
				continue
			}
			if dual {
				v.lat.PathBetweenDual(ca, cb, corr)
			} else {
				v.lat.PathBetween(ca, cb, corr)
			}
		}
		return
	}
	uf := scr.ufX
	if dual {
		uf = scr.ufZ
	}
	uf.Decode(defects, func(e int) {
		if q, ok := v.ProjectEdge(e); ok {
			corr.Flip(q)
		}
	})
}

// matchCutoff picks the pruning radius (in weighted units) for n defects
// in the volume: a few mean nearest-neighbor spacings at the observed
// defect density, times the heaviest edge weight.
func (v *Volume) matchCutoff(n int) int64 {
	mean := 1
	for mean*mean*mean*n < 4*v.nodes {
		mean++
	}
	w := v.WH
	if v.WV > w {
		w = v.WV
	}
	if v.WD > w {
		w = v.WD
	}
	return int64(3 * mean * w)
}

// LayerSource samples a noisy-extraction history round by round for a
// batch of lanes: fresh X and Z data errors at rate p per edge per
// round, plaquette and star measurements flipped with probability q,
// and the consecutive-round syndrome differences emitted as check-major
// layer planes (one vector of `lanes` bits per check). Draw order per
// round: X edge planes, Z edge planes, plaquette measurement masks,
// star measurement masks — all in index order, so any experiment built
// on a source is a pure function of the sampler stream. The whole-
// volume batch decode and the streaming sliding-window decoder consume
// the same source, which is what makes them statistically identical by
// construction.
type LayerSource struct {
	lat    *toric.Lattice
	p, q   float64
	lanes  int
	smp    frame.Sampler
	rounds int // noisy rounds emitted so far

	active, tmp  bits.Vec
	intact, coin bits.Vec            // erasure-path scratch, built on first use
	cumX, cumZ   []bits.Vec          // edge-major accumulated error planes
	diff         *toric.SyndromeDiff // check-major observed-syndrome generations
}

// NewLayerSource returns a source over the L×L lattice for `lanes`
// parallel shots drawing from smp.
func NewLayerSource(l int, p, q float64, lanes int, smp frame.Sampler) *LayerSource {
	lat := toric.Cached(l)
	s := &LayerSource{
		lat: lat, p: p, q: q, lanes: lanes, smp: smp,
		active: bits.NewVec(lanes),
		tmp:    bits.NewVec(lanes),
		cumX:   bits.NewVecs(lat.Qubits(), lanes),
		cumZ:   bits.NewVecs(lat.Qubits(), lanes),
		diff:   toric.NewSyndromeDiff(lat.NumChecks(), lanes),
	}
	s.active.SetAll()
	return s
}

// L returns the lattice size the source samples.
func (s *LayerSource) L() int { return s.lat.L }

// Lanes returns the batch width.
func (s *LayerSource) Lanes() int { return s.lanes }

// Rounds returns how many noisy rounds have been emitted.
func (s *LayerSource) Rounds() int { return s.rounds }

// NextLayers advances one noisy extraction round and writes its
// difference-syndrome layers into layerX and layerZ (check-major,
// NumChecks vectors each).
func (s *LayerSource) NextLayers(layerX, layerZ []bits.Vec) {
	nq, nc := s.lat.Qubits(), s.lat.NumChecks()
	for e := 0; e < nq; e++ {
		s.smp.Bernoulli(s.p, s.active, s.tmp)
		s.cumX[e].Xor(s.tmp)
	}
	for e := 0; e < nq; e++ {
		s.smp.Bernoulli(s.p, s.active, s.tmp)
		s.cumZ[e].Xor(s.tmp)
	}
	curX := s.diff.CurX()
	s.lat.PlaquetteSyndromePlanes(s.cumX, curX)
	for c := 0; c < nc; c++ {
		s.smp.Bernoulli(s.q, s.active, s.tmp)
		curX[c].Xor(s.tmp)
	}
	curZ := s.diff.CurZ()
	s.lat.StarSyndromePlanes(s.cumZ, curZ)
	for c := 0; c < nc; c++ {
		s.smp.Bernoulli(s.q, s.active, s.tmp)
		curZ[c].Xor(s.tmp)
	}
	s.diff.Emit(layerX, layerZ)
	s.rounds++
}

// CloseLayers writes the closing perfect round's difference layers: the
// true syndromes of the accumulated errors, no fresh faults, no
// measurement noise.
func (s *LayerSource) CloseLayers(layerX, layerZ []bits.Vec) {
	s.lat.PlaquetteSyndromePlanes(s.cumX, s.diff.CurX())
	s.lat.StarSyndromePlanes(s.cumZ, s.diff.CurZ())
	s.diff.Emit(layerX, layerZ)
}

// Windings fills the winding parities of the accumulated error chains:
// the primal pair for the X sector, the dual pair for the Z sector.
func (s *LayerSource) Windings(pX1, pX2, pZ1, pZ2 bits.Vec) {
	s.lat.WindingPlanes(s.cumX, pX1, pX2)
	s.lat.WindingPlanesDual(s.cumZ, pZ1, pZ2)
}

// ErrorPlanes returns the live accumulated error planes of the two
// sectors (edge-major, one vector per qubit edge). Read-only views for
// validation harnesses — callers must not modify them.
func (s *LayerSource) ErrorPlanes() (x, z []bits.Vec) { return s.cumX, s.cumZ }

// LayerFeed is the layer-source contract between syndrome-extraction
// models and the decoders: T calls of NextLayers emit the noisy rounds'
// difference-syndrome layers (check-major, one vector of lane bits per
// check), CloseLayers emits the perfect closing layer, and Windings
// reads the accumulated error chains' homology parities. Both the
// whole-volume batch decode (Volume.BatchMemoryFrom) and the streaming
// sliding-window pipeline (internal/stream) drain a feed; the
// phenomenological LayerSource and the circuit-level
// extract.Source/CircuitLayerSource both satisfy it.
type LayerFeed interface {
	L() int
	Lanes() int
	Rounds() int
	NextLayers(layerX, layerZ []bits.Vec)
	CloseLayers(layerX, layerZ []bits.Vec)
	Windings(pX1, pX2, pZ1, pZ2 bits.Vec)
}

// BatchMemory runs `lanes` shots of the noisy-extraction memory
// experiment as bit-planes: a LayerSource emits T rounds of difference
// layers plus the perfect closing layer, and both sectors decode per
// lane over the weighted volume. Returns the per-lane logical failure
// masks of the two sectors.
func (v *Volume) BatchMemory(p, q float64, kind toric.DecoderKind, lanes int, smp frame.Sampler) (failX, failZ bits.Vec) {
	if v.lat == nil {
		return v.BatchMemoryFrom(surface.NewLayerSource(v.code, p, q, lanes, smp), kind)
	}
	return v.BatchMemoryFrom(NewLayerSource(v.L, p, q, lanes, smp), kind)
}

// codeFeed is the optional code-aware extension of LayerFeed the
// surface sources implement; it lets BatchMemoryFrom reject a feed of
// the wrong code family (the L check alone cannot tell a distance-d
// planar feed from a toric one).
type codeFeed interface{ Code() surface.Code }

// BatchMemoryFrom is BatchMemory draining an arbitrary layer feed — the
// entry point a circuit-level source shares with the phenomenological
// one. The feed must be fresh (zero rounds emitted) and sized for this
// volume's code.
func (v *Volume) BatchMemoryFrom(src LayerFeed, kind toric.DecoderKind) (failX, failZ bits.Vec) {
	nc := v.nc
	lanes := src.Lanes()
	if src.Rounds() != 0 {
		panic("spacetime: layer feed already drained")
	}
	if src.L() != v.L {
		panic("spacetime: layer feed lattice size does not match the volume")
	}
	if cf, ok := src.(codeFeed); ok {
		if cf.Code().CodeName() != v.code.CodeName() {
			panic("spacetime: layer feed code family does not match the volume")
		}
	} else if v.code.CodeName() != "toric" {
		panic("spacetime: this volume needs a code-aware layer feed (surface.NewLayerSource / NewCircuitSource)")
	}
	layersX := bits.NewVecs(v.det, lanes)
	layersZ := bits.NewVecs(v.det, lanes)
	for t := 0; t < v.T; t++ {
		src.NextLayers(layersX[t*nc:(t+1)*nc], layersZ[t*nc:(t+1)*nc])
	}
	src.CloseLayers(layersX[v.T*nc:], layersZ[v.T*nc:])
	// Winding parities of the accumulated error chains.
	pX1 := bits.NewVec(lanes)
	pX2 := bits.NewVec(lanes)
	pZ1 := bits.NewVec(lanes)
	pZ2 := bits.NewVec(lanes)
	src.Windings(pX1, pX2, pZ1, pZ2)
	// Pivot detector planes lane-major and decode each sector (the
	// boundary node of an open code is never a defect and carries no
	// plane).
	syn := bits.NewVecs(lanes, v.det)
	bits.TransposePlanes(syn, layersX)
	failX = bits.NewVec(lanes)
	v.decodeLanes(kind, syn, pX1, pX2, failX, false)
	bits.TransposePlanes(syn, layersZ)
	failZ = bits.NewVec(lanes)
	v.decodeLanes(kind, syn, pZ1, pZ2, failZ, true)
	return failX, failZ
}

// decodeLanes is the worker-pool decode stage over word-aligned lane
// spans (frame.ForEachLaneSpan), the same discipline as the 2D
// pipeline: each span owns its failure-mask words outright and draws
// private scratch from the volume pool, so the result is bit-identical
// for any worker count.
func (v *Volume) decodeLanes(kind toric.DecoderKind, syn []bits.Vec, p1, p2, fails bits.Vec, dual bool) {
	frame.ForEachLaneSpan(len(syn), func(lo, hi int) {
		v.decodeLaneSpan(kind, syn, p1, p2, fails, dual, lo, hi)
	})
}

// decodeLaneSpan decodes lanes [lo, hi): extract the sparse 3D defect
// list, decode, project, and fold the projected correction's winding
// parities into the accumulated chain's. The projected residual is
// always a closed 2D cycle (the correction's 3D syndrome equals the
// defect set and time-like edges project to nothing), so the winding
// parities decide failure.
func (v *Volume) decodeLaneSpan(kind toric.DecoderKind, syn []bits.Vec, p1, p2, fails bits.Vec, dual bool, lo, hi int) {
	scr := v.scratch.Get().(*volScratch)
	for lane := lo; lane < hi; lane++ {
		scr.defects = syn[lane].AppendSupport(scr.defects[:0])
		l1 := p1.Get(lane)
		l2 := p2.Get(lane)
		if len(scr.defects) > 0 {
			scr.corr.Clear()
			v.decodeInto(scr.defects, kind, dual, scr, scr.corr)
			c1, c2 := v.code.LogicalParity(dual, scr.corr)
			l1 = l1 != c1
			l2 = l2 != c2
		}
		if l1 || l2 {
			fails.Set(lane, true)
		}
	}
	v.scratch.Put(scr)
}

// Result summarizes a space-time memory Monte Carlo run.
type Result struct {
	L, T     int
	P, Q     float64
	Pe, Qe   float64 // erasure rates (leakage, lost measurements); 0 when unused
	Samples  int
	FailX    int // bit-flip (plaquette-sector) logical failures
	FailZ    int // phase-flip (star-sector) logical failures
	Failures int // shots failing in either sector
}

// FailRate returns the either-sector logical failure probability.
func (r Result) FailRate() float64 { return float64(r.Failures) / float64(r.Samples) }

// FailRateX returns the bit-flip sector failure probability.
func (r Result) FailRateX() float64 { return float64(r.FailX) / float64(r.Samples) }

// FailRateZ returns the phase-flip sector failure probability.
func (r Result) FailRateZ() float64 { return float64(r.FailZ) / float64(r.Samples) }

// Memory runs the repeated-round noisy-syndrome memory experiment:
// `rounds` noisy extraction rounds at data rate p and measurement rate
// q, decoded over the weighted space-time volume, fanned out over the
// CPUs in deterministic seed-per-chunk batches. With q = 0 and
// rounds = 1 it reduces (statistically) to the 2D MemoryExperiment.
func Memory(l, rounds int, p, q float64, kind toric.DecoderKind, samples int, seed uint64) Result {
	v := CachedVolume(l, rounds, p, q)
	fx, fz, fa := frame.CountSectorFailures(samples, seed, func(lanes int, smp frame.Sampler) (bits.Vec, bits.Vec) {
		return v.BatchMemory(p, q, kind, lanes, smp)
	})
	return Result{L: l, T: rounds, P: p, Q: q, Samples: samples,
		FailX: fx, FailZ: fz, Failures: fa}
}

// CodeMemory is Memory for any surface.Code: the phenomenological
// noisy-extraction experiment decoded by weighted union-find over the
// code's space-time volume.
func CodeMemory(code surface.Code, rounds int, p, q float64, samples int, seed uint64) Result {
	v := CachedCodeVolume(code, rounds, p, q)
	fx, fz, fa := frame.CountSectorFailures(samples, seed, func(lanes int, smp frame.Sampler) (bits.Vec, bits.Vec) {
		return v.BatchMemory(p, q, toric.DecoderUnionFind, lanes, smp)
	})
	return Result{L: code.Distance(), T: rounds, P: p, Q: q, Samples: samples,
		FailX: fx, FailZ: fz, Failures: fa}
}

// ThresholdPoint is one p = q grid point of a sustained-threshold sweep.
type ThresholdPoint struct {
	P            float64
	Small, Large Result
}

// SustainedThreshold sweeps p = q over the grid with T = L rounds for
// two code distances and estimates where the failure curves cross — the
// sustained threshold of the noisy-extraction memory (below it, the
// larger distance is better; above, worse). Returns NaN when the grid
// shows no crossing, plus the measured points either way.
func SustainedThreshold(l1, l2 int, grid []float64, kind toric.DecoderKind, samples int, seed uint64) (float64, []ThresholdPoint) {
	pts := make([]ThresholdPoint, len(grid))
	small := make([]float64, len(grid))
	large := make([]float64, len(grid))
	for i, p := range grid {
		pts[i] = ThresholdPoint{
			P:     p,
			Small: Memory(l1, l1, p, p, kind, samples, seed+uint64(2*i)),
			Large: Memory(l2, l2, p, p, kind, samples, seed+uint64(2*i+1)),
		}
		small[i] = pts[i].Small.FailRate()
		large[i] = pts[i].Large.FailRate()
	}
	return CrossingEstimate(grid, small, large), pts
}

// CrossingEstimate linearly interpolates the first sign change of the
// (large − small) failure-rate difference over the grid — the threshold
// estimate every sweep (library and CLI) shares. NaN when the curves
// never cross.
func CrossingEstimate(grid, small, large []float64) float64 {
	for i := 1; i < len(grid); i++ {
		d0 := large[i-1] - small[i-1]
		d1 := large[i] - small[i]
		if d0 < 0 && d1 >= 0 {
			return grid[i-1] + d0/(d0-d1)*(grid[i]-grid[i-1])
		}
	}
	return math.NaN()
}
