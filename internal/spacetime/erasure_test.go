package spacetime

import (
	"math"
	"math/rand/v2"
	"testing"

	"ftqc/internal/bits"
	"ftqc/internal/toric"
)

// scalarErasedShot simulates one erased noisy-extraction history with a
// plain RNG: per round, each edge leaks with probability pe (flipping
// with probability ½, horizontal edge erased), intact edges flip at p;
// measurements flip at q and are lost (replaced by a coin, vertical
// edge erased) at qe. Returns the accumulated error, defects, and the
// 3D erased edge ids of the requested sector.
func scalarErasedShot(v *Volume, rng *rand.Rand, p, q, pe, qe float64, dual bool) (bits.Vec, []int, []int) {
	lat := v.Lattice()
	cum := bits.NewVec(v.nq)
	prev := make([]bool, v.nc)
	cur := make([]bool, v.nc)
	var defects, erased []int
	syndrome := func(errs bits.Vec) []int {
		if dual {
			return lat.StarSyndrome(errs)
		}
		return lat.Syndrome(errs)
	}
	for t := 1; t <= v.T; t++ {
		for e := 0; e < v.nq; e++ {
			if rng.Float64() < pe {
				erased = append(erased, (t-1)*v.nq+e)
				if rng.Float64() < 0.5 {
					cum.Flip(e)
				}
			} else if rng.Float64() < p {
				cum.Flip(e)
			}
		}
		for c := range cur {
			cur[c] = false
		}
		for _, c := range syndrome(cum) {
			cur[c] = true
		}
		for c := 0; c < v.nc; c++ {
			if rng.Float64() < q {
				cur[c] = !cur[c]
			}
			if rng.Float64() < qe {
				erased = append(erased, v.horiz+(t-1)*v.nc+c)
				cur[c] = rng.Float64() < 0.5
			}
			if cur[c] != prev[c] {
				defects = append(defects, (t-1)*v.nc+c)
			}
		}
		prev, cur = cur, prev
	}
	for c := range cur {
		cur[c] = false
	}
	for _, c := range syndrome(cum) {
		cur[c] = true
	}
	for c := 0; c < v.nc; c++ {
		if cur[c] != prev[c] {
			defects = append(defects, v.T*v.nc+c)
		}
	}
	return cum, defects, erased
}

// TestErasedDecodeClearsProjectedSyndrome: with erasure seeding, the
// projected spatial correction still cancels the accumulated error's
// syndrome exactly, in both sectors.
func TestErasedDecodeClearsProjectedSyndrome(t *testing.T) {
	rng := rand.New(rand.NewPCG(601, 602))
	for _, cfg := range []struct {
		l, rounds    int
		p, q, pe, qe float64
	}{
		{3, 2, 0.03, 0.03, 0.1, 0.1},
		{4, 4, 0.02, 0.04, 0.15, 0.05},
		{5, 3, 0.0, 0.0, 0.2, 0.2},
	} {
		v := CachedVolume(cfg.l, cfg.rounds, cfg.p+1e-3, cfg.q+1e-3)
		for trial := 0; trial < 50; trial++ {
			for _, dual := range []bool{false, true} {
				cum, defects, erased := scalarErasedShot(v, rng, cfg.p, cfg.q, cfg.pe, cfg.qe, dual)
				res := cum.Clone()
				res.Xor(v.DecodeErased(defects, erased, dual))
				var rest []int
				if dual {
					rest = v.Lattice().StarSyndrome(res)
				} else {
					rest = v.Lattice().Syndrome(res)
				}
				if len(rest) != 0 {
					t.Fatalf("L=%d T=%d dual=%v trial %d: projected residual has %d defects",
						cfg.l, cfg.rounds, dual, trial, len(rest))
				}
			}
		}
	}
}

// TestPureErasureDecodesNearPerfectly: when every fault is located
// (p = q = 0), moderate erasure rates decode almost without failure —
// the peeling pass corrects known-bad locations outright.
func TestPureErasureDecodesNearPerfectly(t *testing.T) {
	const samples = 3000
	r := ErasedMemory(6, 6, 0, 0, 0.10, 0.10, samples, 611)
	if rate := r.FailRate(); rate > 0.02 {
		t.Fatalf("pure erasure at pe=qe=0.10 failed %.4f of shots", rate)
	}
}

// TestErasureAwareBeatsBlind: at matched noise (identical histories),
// handing the decoder the erased locations must lower the logical
// failure rate well beyond statistical error.
func TestErasureAwareBeatsBlind(t *testing.T) {
	const samples = 4000
	aware := ErasedMemory(6, 6, 0.01, 0.01, 0.12, 0.12, samples, 613)
	blind := ErasedMemoryBlind(6, 6, 0.01, 0.01, 0.12, 0.12, samples, 613)
	fa, fb := aware.FailRate(), blind.FailRate()
	sigma := math.Sqrt(fa*(1-fa)/samples + fb*(1-fb)/samples)
	if fa >= fb-2*sigma {
		t.Fatalf("erasure awareness did not help: aware %.4f vs blind %.4f (sigma %.4f)", fa, fb, sigma)
	}
}

// TestErasedMemoryDeterministic: the erased experiment is a pure
// function of (samples, seed).
func TestErasedMemoryDeterministic(t *testing.T) {
	run := func() Result { return ErasedMemory(4, 3, 0.02, 0.02, 0.08, 0.08, 900, 617) }
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different results: %+v vs %+v", a, b)
	}
}

// TestErasedReducesToPlain: pe = qe = 0 erased decoding must behave like
// the plain experiment statistically (the draw streams differ, so the
// comparison is within Monte Carlo error).
func TestErasedReducesToPlain(t *testing.T) {
	const samples = 4000
	er := ErasedMemory(4, 4, 0.03, 0.03, 0, 0, samples, 619)
	pl := Memory(4, 4, 0.03, 0.03, toric.DecoderUnionFind, samples, 620)
	fe, fp := er.FailRate(), pl.FailRate()
	sigma := math.Sqrt(fe*(1-fe)/samples + fp*(1-fp)/samples)
	if diff := math.Abs(fe - fp); diff > 4*sigma+0.01 {
		t.Fatalf("pe=qe=0 erased %.4f vs plain %.4f (diff %.4f > %.4f)", fe, fp, diff, 4*sigma+0.01)
	}
}
