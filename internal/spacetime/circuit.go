package spacetime

// Circuit-level syndrome extraction in the space-time volume.
//
// internal/extract runs the actual extraction circuit (ancilla per
// check, PrepZ/PrepX, four CNOTs in a fixed schedule, MeasZ/MeasX) on
// the batch frame engine with faults at every location. This file wires
// that source into the decoding subsystem: the effective per-edge-class
// fault probabilities of the circuit model (CircuitProbs), their integer
// LLR weights (WeightsCircuit), the diagonal-edge decoding volume's
// exact metric (circuitMetric), and the Monte Carlo entry points
// (CircuitMemory, CircuitSustainedThreshold).

import (
	"math"

	"ftqc/internal/bits"
	"ftqc/internal/extract"
	"ftqc/internal/frame"
	"ftqc/internal/noise"
	"ftqc/internal/surface"
	"ftqc/internal/toric"
)

// CircuitLayerSource is the circuit-level extraction source — the
// drop-in replacement for the phenomenological LayerSource behind the
// shared LayerFeed contract.
type CircuitLayerSource = extract.Source

// NewCircuitLayerSource returns a circuit-level source over the L×L
// lattice for `lanes` parallel shots under the per-location noise model
// P, drawing from smp.
func NewCircuitLayerSource(l int, P noise.Params, lanes int, smp frame.Sampler) *CircuitLayerSource {
	return extract.NewSource(l, P, lanes, smp)
}

// CircuitProbs estimates the per-round effective probabilities of the
// three space-time edge classes under the circuit-level extraction
// model — the leading-order fault counting that replaces the
// phenomenological (p, q) pair. A faulty two-qubit gate draws one of 15
// nontrivial Paulis, so each qubit of the pair carries the relevant
// component with probability 8/15·Gate2. Per data edge per round:
//
//   - ph (horizontal — seen by both readers the same round): the idle
//     storage step (X or Y: 2/3·Storage), the two other-sector CNOTs
//     touching the qubit, the late same-sector CNOT (its fault lands
//     after both reads), and the mid-chain ancilla hooks propagated
//     onto the qubit (~3 CNOT-equivalents): ≈ 2/3·Storage + 6·8/15·Gate2.
//   - pd (diagonal — created between the two reads): the early
//     same-sector CNOT's fault on the data qubit: ≈ 8/15·Gate2.
//   - pv (vertical — a measurement flip with no data error): the
//     ancilla's preparation and readout faults plus the ancilla
//     component of its four CNOTs: ≈ Prep + Meas + 4·8/15·Gate2.
//
// The counting is symmetric between the sectors, so one triple serves
// both graphs.
func CircuitProbs(P noise.Params) (ph, pv, pd float64) {
	cx := 8.0 / 15.0 * P.Gate2
	ph = 2.0/3.0*P.Storage + 6*cx
	pv = P.Prep + P.Meas + 4*cx
	pd = cx
	return ph, pv, pd
}

// WeightsCircuit converts a circuit-level noise model into the three
// integer edge weights of the diagonal volume, the three-class
// extension of Weights: w ∝ log((1−p)/p) per class, scaled so the
// largest is weightScale, capped so no impossible channel beats the
// detour that avoids it (a diagonal is one horizontal plus one vertical
// step, and vice versa), and gcd-normalized.
func WeightsCircuit(P noise.Params, l, rounds int) (wh, wv, wd int) {
	ph, pv, pd := CircuitProbs(P)
	lh := clampLLR(ph)
	lv := clampLLR(pv)
	ld := clampLLR(pd)
	m := math.Max(lh, math.Max(lv, ld))
	scale := func(x float64) int {
		w := int(math.Round(weightScale * x / m))
		if w < 1 {
			w = 1
		}
		return w
	}
	wh, wv, wd = scale(lh), scale(lv), scale(ld)
	// Detour caps: beyond these a channel is indistinguishable from
	// "never" — the cheapest path around it is always taken (a diagonal
	// is one horizontal plus one vertical step; a vertical is a diagonal
	// minus a horizontal; a horizontal, a diagonal minus a vertical).
	if lim := wh + wv + 1; wd > lim {
		wd = lim
	}
	if lim := min(wh*l, wd+wh) + 1; wv > lim {
		wv = lim
	}
	if lim := min(wv*rounds, wd+wv) + 1; wh > lim {
		wh = lim
	}
	g := gcd(gcd(wh, wv), wd)
	return wh / g, wv / g, wd / g
}

// CachedCircuitVolumeFor returns the memoized diagonal-edge volume with
// weights derived from the noise model via WeightsCircuit.
func CachedCircuitVolumeFor(l, rounds int, P noise.Params) *Volume {
	wh, wv, wd := WeightsCircuit(P, l, rounds)
	return CachedCircuitVolume(l, rounds, wh, wv, wd)
}

// CachedCodeCircuitVolumeFor is CachedCircuitVolumeFor for any
// surface.Code (the leading-order fault counting behind WeightsCircuit
// is schedule-shape-independent, so one weight triple serves every
// family).
func CachedCodeCircuitVolumeFor(code surface.Code, rounds int, P noise.Params) *Volume {
	wh, wv, wd := WeightsCircuit(P, code.Distance(), rounds)
	return CachedCodeCircuitVolume(code, rounds, wh, wv, wd)
}

// metric returns the circuit-metric tables of the two sectors, built on
// first use: only the exact matcher reads them, so union-find volumes —
// including every residual-height closing volume a circuit stream
// caches — never run the Dijkstra builds or hold the tables.
func (v *Volume) metric() (distX, distZ []int64) {
	v.distOnce.Do(func() {
		v.distX = circuitMetric(v.L, v.T, v.WH, v.WV, v.WD, v.diagX)
		v.distZ = circuitMetric(v.L, v.T, v.WH, v.WV, v.WD, v.diagZ)
	})
	return v.distX, v.distZ
}

// circuitMetric builds the all-offsets shortest-path table of a
// diagonal-edge space-time graph by Dial's algorithm on the offset
// lattice: entry ((dy·L+dx)·(2T+1) + dt+T) is the weighted graph
// distance between two detectors displaced by (dx, dy) on the torus and
// dt rounds in time. Moves: ±x/±y cost wh, ±t cost wv, and the
// schedule's diagonal steps (the per-edge late→early reader offsets,
// advancing one lattice step and one round together) cost wd. Both
// check grids are L×L tori with ±x/±y adjacency, so one builder serves
// either sector given its diagonal table. Time is truncated at |dt| ≤ T
// — paths through the volume never leave it.
func circuitMetric(l, rounds, wh, wv, wd int, diag [][2]int32) []int64 {
	nc := l * l
	span := 2*rounds + 1
	// The distinct spatial offsets of the diagonal moves (late → early,
	// dt = +1): two per schedule.
	type off struct{ dx, dy int }
	seen := map[off]bool{}
	var diags []off
	for _, pr := range diag {
		late, early := int(pr[0]), int(pr[1])
		o := off{mod(early%l-late%l, l), mod(early/l-late/l, l)}
		if !seen[o] {
			seen[o] = true
			diags = append(diags, o)
		}
	}
	dist := make([]int64, nc*span)
	for i := range dist {
		dist[i] = -1
	}
	idx := func(dx, dy, dt int) int { return (dy*l+dx)*span + dt + rounds }
	maxW := wh
	if wv > maxW {
		maxW = wv
	}
	if wd > maxW {
		maxW = wd
	}
	// Every node is reachable within wh·L + wv·2T (spatial walk + time
	// walk), so longer tentative paths can be dropped: the bucket array
	// bounds the search.
	buckets := make([][]int32, maxW*(l+2*rounds)+1)
	push := func(dx, dy, dt int, d int64) {
		if d >= int64(len(buckets)) {
			return
		}
		i := idx(dx, dy, dt)
		if dist[i] < 0 || d < dist[i] {
			dist[i] = d
			buckets[d] = append(buckets[d], int32(i))
		}
	}
	push(0, 0, 0, 0)
	for d := int64(0); d < int64(len(buckets)); d++ {
		for k := 0; k < len(buckets[d]); k++ { // pushes may append to the current bucket
			i := int(buckets[d][k])
			if dist[i] != d {
				continue // stale entry
			}
			dt := i%span - rounds
			dx := (i / span) % l
			dy := i / span / l
			push(mod(dx+1, l), dy, dt, d+int64(wh))
			push(mod(dx-1, l), dy, dt, d+int64(wh))
			push(dx, mod(dy+1, l), dt, d+int64(wh))
			push(dx, mod(dy-1, l), dt, d+int64(wh))
			if dt < rounds {
				push(dx, dy, dt+1, d+int64(wv))
			}
			if dt > -rounds {
				push(dx, dy, dt-1, d+int64(wv))
			}
			for _, o := range diags {
				if dt < rounds {
					push(mod(dx+o.dx, l), mod(dy+o.dy, l), dt+1, d+int64(wd))
				}
				if dt > -rounds {
					push(mod(dx-o.dx, l), mod(dy-o.dy, l), dt-1, d+int64(wd))
				}
			}
		}
		buckets[d] = nil
	}
	return dist
}

func mod(a, l int) int { return ((a % l) + l) % l }

// CircuitMemory runs the circuit-level noisy-extraction memory Monte
// Carlo: `rounds` full extraction circuits per shot with faults at
// every location of the model P, decoded over the diagonal-edge volume
// with WeightsCircuit LLR weights, fanned out over the CPUs in
// deterministic seed-per-chunk batches. Result.P and Result.Q report
// the representative Gate2 and Meas rates of the model.
func CircuitMemory(l, rounds int, P noise.Params, kind toric.DecoderKind, samples int, seed uint64) Result {
	v := CachedCircuitVolumeFor(l, rounds, P)
	fx, fz, fa := frame.CountSectorFailures(samples, seed, func(lanes int, smp frame.Sampler) (bits.Vec, bits.Vec) {
		return v.BatchMemoryFrom(extract.NewSource(l, P, lanes, smp), kind)
	})
	return Result{L: l, T: rounds, P: P.Gate2, Q: P.Meas, Samples: samples,
		FailX: fx, FailZ: fz, Failures: fa}
}

// CodeCircuitMemory is CircuitMemory for any surface.Code: `rounds`
// full extraction circuits of the code's own schedule per shot,
// decoded by weighted union-find over the diagonal-edge volume
// (boundary-truncated diagonals grounded for open codes).
func CodeCircuitMemory(code surface.Code, rounds int, P noise.Params, samples int, seed uint64) Result {
	v := CachedCodeCircuitVolumeFor(code, rounds, P)
	fx, fz, fa := frame.CountSectorFailures(samples, seed, func(lanes int, smp frame.Sampler) (bits.Vec, bits.Vec) {
		return v.BatchMemoryFrom(surface.NewCircuitSource(code, P, lanes, smp), toric.DecoderUnionFind)
	})
	return Result{L: code.Distance(), T: rounds, P: P.Gate2, Q: P.Meas, Samples: samples,
		FailX: fx, FailZ: fz, Failures: fa}
}

// CircuitSustainedThreshold sweeps the uniform per-location error rate ε
// (noise.Uniform: every preparation, CNOT, measurement and idle step
// faults with probability ε) with T = L extraction rounds for two code
// distances and estimates where the failure curves cross — the
// circuit-level sustained threshold. Because each data qubit sees ~4
// two-qubit gates plus an idle step per round and each measurement ~6
// fault paths, the crossing sits well below the phenomenological p = q
// value (sub-percent ε against ≈ 0.027). Returns NaN when the grid
// shows no crossing, plus the measured points either way.
func CircuitSustainedThreshold(l1, l2 int, grid []float64, kind toric.DecoderKind, samples int, seed uint64) (float64, []ThresholdPoint) {
	pts := make([]ThresholdPoint, len(grid))
	small := make([]float64, len(grid))
	large := make([]float64, len(grid))
	for i, eps := range grid {
		P := noise.Uniform(eps)
		pts[i] = ThresholdPoint{
			P:     eps,
			Small: CircuitMemory(l1, l1, P, kind, samples, seed+uint64(2*i)),
			Large: CircuitMemory(l2, l2, P, kind, samples, seed+uint64(2*i+1)),
		}
		small[i] = pts[i].Small.FailRate()
		large[i] = pts[i].Large.FailRate()
	}
	return CrossingEstimate(grid, small, large), pts
}
