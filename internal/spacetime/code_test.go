package spacetime

// Whole-volume decoding for the open-boundary families through the
// public memory entry points, and the feed/volume compatibility guards.

import (
	"testing"

	"ftqc/internal/frame"
	"ftqc/internal/noise"
	"ftqc/internal/surface"
	"ftqc/internal/toric"
)

func TestCodeMemoryEntryPoints(t *testing.T) {
	for _, code := range []surface.Code{surface.Planar(3), surface.Rotated(3)} {
		r := CodeMemory(code, 4, 0, 0, 256, 3)
		if r.Failures != 0 {
			t.Errorf("%s: %d failures at p=0", code.CodeName(), r.Failures)
		}
		rc := CodeCircuitMemory(code, 4, noise.Params{}, 256, 3)
		if rc.Failures != 0 {
			t.Errorf("%s circuit: %d failures at P=0", code.CodeName(), rc.Failures)
		}
	}
	a := CodeCircuitMemory(surface.Rotated(3), 3, noise.Uniform(0.006), 2048, 9)
	b := CodeCircuitMemory(surface.Rotated(3), 3, noise.Uniform(0.006), 2048, 9)
	if a != b {
		t.Errorf("rotated circuit memory not deterministic: %+v vs %+v", a, b)
	}
	if a.Failures == 0 {
		t.Errorf("rotated d=3 at eps=0.006: no failures in %d samples — detector wiring suspect", a.Samples)
	}
}

// TestVolumeFeedGuards pins the cross-wiring panics: a code volume
// rejects feeds of another family, and open-code volumes refuse the
// legacy toric-only feeds.
func TestVolumeFeedGuards(t *testing.T) {
	planarVol := CachedCodeVolume(surface.Planar(3), 3, 0.01, 0.01)
	expectPanic := func(what string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", what)
			}
		}()
		f()
	}
	expectPanic("family mismatch", func() {
		src := surface.NewLayerSource(surface.Rotated(3), 0.01, 0.01, 8, frame.NewAggregateSampler(1, 0))
		planarVol.BatchMemoryFrom(src, toric.DecoderUnionFind)
	})
	expectPanic("code-blind feed into open volume", func() {
		src := NewLayerSource(3, 0.01, 0.01, 8, frame.NewAggregateSampler(1, 0))
		planarVol.BatchMemoryFrom(src, toric.DecoderUnionFind)
	})
	expectPanic("exact matching on an open code", func() {
		planarVol.Decode([]int{0, 1}, toric.DecoderExact, false)
	})
	// The toric code-volume still accepts the legacy feed.
	vol := CachedCodeVolume(toric.Cached(3), 3, 0.01, 0.01)
	src := NewLayerSource(3, 0.01, 0.01, 8, frame.NewAggregateSampler(1, 0))
	vol.BatchMemoryFrom(src, toric.DecoderUnionFind)
}
