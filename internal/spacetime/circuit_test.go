package spacetime

import (
	"math"
	"runtime"
	"testing"

	"ftqc/internal/bits"
	"ftqc/internal/decoder"
	"ftqc/internal/extract"
	"ftqc/internal/frame"
	"ftqc/internal/noise"
	"ftqc/internal/toric"
)

// TestCircuitVolumeShape: the diagonal-edge volume carries the three
// edge classes with the documented id layout, the diagonals follow the
// schedule's {late, early} reader pairs one layer apart, and every edge
// projects to the right data qubit.
func TestCircuitVolumeShape(t *testing.T) {
	const l, rounds = 4, 3
	const wh, wv, wd = 2, 1, 3
	v := NewCircuitVolume(l, rounds, wh, wv, wd)
	nc, nq := l*l, 2*l*l
	if got, want := v.Graph().Edges(), rounds*(2*nq+nc); got != want {
		t.Fatalf("edge count %d, want %d", got, want)
	}
	sch := extract.Sched(l)
	for _, sector := range []struct {
		g    *decoder.Graph
		diag [][2]int32
	}{{v.Graph(), sch.DiagX}, {v.DualGraph(), sch.DiagZ}} {
		for tl := 0; tl < rounds; tl++ {
			for e := 0; e < nq; e++ {
				id := v.diagOff + tl*nq + e
				a, b := sector.g.Ends(id)
				if sector.g.Weight(id) != wd {
					t.Fatalf("diagonal %d weight %d", id, sector.g.Weight(id))
				}
				if a != tl*nc+int(sector.diag[e][0]) || b != (tl+1)*nc+int(sector.diag[e][1]) {
					t.Fatalf("diagonal %d joins %d,%d; want late %d@%d → early %d@%d",
						id, a, b, sector.diag[e][0], tl, sector.diag[e][1], tl+1)
				}
				if q, ok := v.ProjectEdge(id); !ok || q != e {
					t.Fatalf("diagonal %d projects to (%d,%v), want (%d,true)", id, q, ok, e)
				}
			}
		}
	}
	for e := 0; e < v.horiz; e++ {
		if q, ok := v.ProjectEdge(e); !ok || q != e%nq {
			t.Fatalf("horizontal %d projects to (%d,%v)", e, q, ok)
		}
	}
	for e := v.horiz; e < v.diagOff; e++ {
		if _, ok := v.ProjectEdge(e); ok {
			t.Fatalf("vertical %d must project away", e)
		}
	}
}

// TestWeightsCircuit: the three-class weights order by likelihood
// (diagonal rarest, vertical likeliest under uniform noise), respect
// the detour caps, and are gcd-normalized.
func TestWeightsCircuit(t *testing.T) {
	for _, eps := range []float64{1e-4, 1e-3, 1e-2} {
		wh, wv, wd := WeightsCircuit(noise.Uniform(eps), 8, 8)
		if wh < 1 || wv < 1 || wd < 1 {
			t.Fatalf("eps=%v: nonpositive weight (%d,%d,%d)", eps, wh, wv, wd)
		}
		if !(wv <= wh && wh <= wd) {
			t.Fatalf("eps=%v: want wv ≤ wh ≤ wd, got (%d,%d,%d)", eps, wh, wv, wd)
		}
		if wd > wh+wv+1 {
			t.Fatalf("eps=%v: diagonal cap violated (%d,%d,%d)", eps, wh, wv, wd)
		}
		if g := gcd(gcd(wh, wv), wd); g != 1 {
			t.Fatalf("eps=%v: weights (%d,%d,%d) share factor %d", eps, wh, wv, wd, g)
		}
	}
	// Degenerate channels stay finite and positive.
	if wh, wv, wd := WeightsCircuit(noise.Params{Storage: 0.01}, 4, 4); wh < 1 || wv < 1 || wd < 1 {
		t.Fatalf("storage-only weights (%d,%d,%d)", wh, wv, wd)
	}
	if wh, wv, wd := WeightsCircuit(noise.Params{Meas: 0.01}, 4, 4); wh < 1 || wv < 1 || wd < 1 {
		t.Fatalf("meas-only weights (%d,%d,%d)", wh, wv, wd)
	}
}

// TestCircuitMetricMatchesGraph: the offset table the exact matcher
// prices with must equal true shortest-path distances on the built
// diagonal-edge graph in the volume's interior (reference Dijkstra from
// a middle layer of a taller volume — like the rectilinear metric of
// the plain volume, the table idealizes away the closing layer's
// missing horizontal edges), for every offset it covers, both sectors.
func TestCircuitMetricMatchesGraph(t *testing.T) {
	const l, rounds = 3, 2
	const tall, mid = 6, 3
	wh, wv, wd := WeightsCircuit(noise.Uniform(2e-3), l, rounds)
	v := NewCircuitVolume(l, rounds, wh, wv, wd)
	ref := NewCircuitVolume(l, tall, wh, wv, wd)
	nc := l * l
	span := 2*rounds + 1
	distX, distZ := v.metric()
	for _, sector := range []struct {
		dist []int64
		dual bool
	}{{distX, false}, {distZ, true}} {
		g := ref.graphX
		if sector.dual {
			g = ref.graphZ
		}
		for ca := 0; ca < nc; ca++ {
			dist := dijkstraRef(g.Nodes(), g.Edges(), g.Ends, g.Weight, mid*nc+ca)
			for dt := -rounds; dt <= rounds; dt++ {
				for cb := 0; cb < nc; cb++ {
					dx := mod(cb%l-ca%l, l)
					dy := mod(cb/l-ca/l, l)
					got := sector.dist[(dy*l+dx)*span+dt+rounds]
					if want := dist[(mid+dt)*nc+cb]; got != want {
						t.Fatalf("dual=%v check %d→%d dt=%d: metric table %d, graph distance %d",
							sector.dual, ca, cb, dt, got, want)
					}
				}
			}
		}
	}
}

// dijkstraRef is a straightforward O(V²) Dijkstra over an edge list.
func dijkstraRef(nodes, edges int, ends func(int) (int, int), weight func(int) int, src int) []int64 {
	adj := make([][][2]int, nodes) // (neighbor, weight)
	for e := 0; e < edges; e++ {
		a, b := ends(e)
		w := weight(e)
		adj[a] = append(adj[a], [2]int{b, w})
		adj[b] = append(adj[b], [2]int{a, w})
	}
	const inf = int64(1) << 60
	dist := make([]int64, nodes)
	done := make([]bool, nodes)
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	for {
		u, best := -1, inf
		for i, d := range dist {
			if !done[i] && d < best {
				u, best = i, d
			}
		}
		if u < 0 {
			return dist
		}
		done[u] = true
		for _, nb := range adj[u] {
			if d := best + int64(nb[1]); d < dist[nb[0]] {
				dist[nb[0]] = d
			}
		}
	}
}

// TestCircuitMeasOnlyIsFailureFree pins the strict reading of the
// equivalence satellite: with every fault location disabled except the
// measurement flip, no data qubit is ever damaged, so the circuit
// pipeline must report exactly zero logical failures — just like the
// phenomenological model at p = 0.
func TestCircuitMeasOnlyIsFailureFree(t *testing.T) {
	r := CircuitMemory(4, 4, noise.Params{Meas: 0.08}, toric.DecoderUnionFind, 2000, 31)
	if r.Failures != 0 || r.FailX != 0 || r.FailZ != 0 {
		t.Fatalf("meas-only circuit produced failures: %+v", r)
	}
	ph := Memory(4, 4, 0, 0.08, toric.DecoderUnionFind, 2000, 32)
	if ph.Failures != 0 {
		t.Fatalf("meas-only phenomenological model produced failures: %+v", ph)
	}
}

// TestCircuitReducesToPhenomenological is the equivalence satellite's
// statistical form: with only the storage and measurement channels on,
// the extraction circuit IS the phenomenological model — the idle step
// flips each data qubit's sector component with probability 2/3·Storage
// before any read (no propagation, no mid-round timing), and each check
// measurement flips independently with probability Meas. Decoded over
// the same phenomenological volume, the per-sector failure rates must
// agree within statistical error (same L, T, lanes discipline).
func TestCircuitReducesToPhenomenological(t *testing.T) {
	const (
		l, rounds = 4, 4
		storage   = 0.045
		q         = 0.03
		samples   = 6000
	)
	p := 2.0 / 3.0 * storage
	v := CachedVolume(l, rounds, p, q)
	P := noise.Params{Storage: storage, Meas: q}
	fx, fz, _ := frame.CountSectorFailures(samples, 33, func(lanes int, smp frame.Sampler) (bits.Vec, bits.Vec) {
		return v.BatchMemoryFrom(NewCircuitLayerSource(l, P, lanes, smp), toric.DecoderUnionFind)
	})
	ref := Memory(l, rounds, p, q, toric.DecoderUnionFind, samples, 34)
	for _, s := range []struct {
		name      string
		got, want float64
	}{
		{"X", float64(fx) / samples, ref.FailRateX()},
		{"Z", float64(fz) / samples, ref.FailRateZ()},
	} {
		sigma := math.Sqrt(s.got*(1-s.got)/samples + s.want*(1-s.want)/samples)
		if diff := math.Abs(s.got - s.want); diff > 4*sigma+0.015 {
			t.Fatalf("sector %s: circuit %.4f vs phenomenological %.4f (diff %.4f > %.4f)",
				s.name, s.got, s.want, diff, 4*sigma+0.015)
		}
	}
}

// TestCircuitMemoryDeterministicAndGOMAXPROCSInvariant: the circuit
// Monte Carlo is a pure function of (samples, seed).
func TestCircuitMemoryDeterministicAndGOMAXPROCSInvariant(t *testing.T) {
	run := func() Result {
		return CircuitMemory(4, 4, noise.Uniform(0.004), toric.DecoderUnionFind, 900, 35)
	}
	a := run()
	if b := run(); a != b {
		t.Fatalf("same seed, different results: %+v vs %+v", a, b)
	}
	old := runtime.GOMAXPROCS(1)
	serial := run()
	runtime.GOMAXPROCS(8)
	parallel := run()
	runtime.GOMAXPROCS(old)
	if serial != parallel {
		t.Fatalf("result depends on GOMAXPROCS: 1 → %+v, 8 → %+v", serial, parallel)
	}
}

// TestCircuitUnionFindMatchesExact: on the diagonal-edge volume the
// weighted union-find failure rate tracks the circuit-metric blossom
// matcher within statistical error.
func TestCircuitUnionFindMatchesExact(t *testing.T) {
	const samples = 3000
	P := noise.Uniform(0.006)
	uf := CircuitMemory(4, 4, P, toric.DecoderUnionFind, samples, 36)
	ex := CircuitMemory(4, 4, P, toric.DecoderExact, samples, 36)
	fu, fe := uf.FailRate(), ex.FailRate()
	sigma := math.Sqrt(fu*(1-fu)/samples + fe*(1-fe)/samples)
	if diff := math.Abs(fu - fe); diff > 4*sigma+0.02 {
		t.Fatalf("union-find %.4f vs exact %.4f (diff %.4f > %.4f)", fu, fe, diff, 4*sigma+0.02)
	}
	if fe > fu+4*sigma+0.01 {
		t.Fatalf("exact matcher should not lose to union-find: %.4f vs %.4f", fe, fu)
	}
}

// TestCircuitFailureScalingMatchesDistance is the p→0 scaling check:
// the L=3 torus has distance 3, so ⌈d/2⌉ = (L+1)/2 = 2 faults are
// needed for a logical error and the failure rate must scale ≈ ε² —
// doubling ε quadruples it. A slope near 1 would mean some single fault
// defeats the decoder (the enumeration suite's statistical shadow).
// Larger distance at the same ε must also be quieter.
func TestCircuitFailureScalingMatchesDistance(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo scaling sweep")
	}
	const samples = 60000
	kind := toric.DecoderUnionFind
	r1 := CircuitMemory(3, 3, noise.Uniform(0.003), kind, samples, 37)
	r2 := CircuitMemory(3, 3, noise.Uniform(0.006), kind, samples, 38)
	f1, f2 := r1.FailRate(), r2.FailRate()
	if r1.Failures < 20 || r2.Failures < 20 {
		t.Fatalf("not enough failures to fit a slope: %d and %d", r1.Failures, r2.Failures)
	}
	slope := math.Log(f2/f1) / math.Log(2)
	if slope < 1.4 || slope > 3.1 {
		t.Fatalf("L=3 failure scaling ε^%.2f, want ≈ ε² ((L+1)/2 = 2 faults): %.2e → %.2e", slope, f1, f2)
	}
	r5 := CircuitMemory(5, 5, noise.Uniform(0.003), kind, samples, 39)
	if r5.FailRate() >= f1 {
		t.Fatalf("L=5 (%.4f) not quieter than L=3 (%.4f) at ε=0.003", r5.FailRate(), f1)
	}
}

// TestCircuitSustainedThresholdCrossing: the circuit-level sustained
// threshold sits in the sub-percent ε range — well below the
// phenomenological p = q ≈ 0.027 crossing, as the per-round fault
// multiplicity predicts.
func TestCircuitSustainedThresholdCrossing(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo sweep")
	}
	grid := []float64{0.002, 0.004, 0.006, 0.008, 0.011, 0.014}
	cross, pts := CircuitSustainedThreshold(3, 5, grid, toric.DecoderUnionFind, 2000, 41)
	if math.IsNaN(cross) {
		for _, pt := range pts {
			t.Logf("eps=%.3f: L=3 %.4f  L=5 %.4f", pt.P, pt.Small.FailRate(), pt.Large.FailRate())
		}
		t.Fatal("no circuit-level sustained crossing on the grid")
	}
	if cross < 0.002 || cross > 0.02 {
		t.Fatalf("implausible circuit-level sustained threshold %.4f", cross)
	}
	if cross >= 0.027 {
		t.Fatalf("circuit-level threshold %.4f must sit below the phenomenological ≈0.027", cross)
	}
}
