package spacetime

import (
	"math"
	"math/rand/v2"
	"runtime"
	"testing"

	"ftqc/internal/bits"
	"ftqc/internal/decoder"
	"ftqc/internal/frame"
	"ftqc/internal/toric"
)

func TestVolumeShape(t *testing.T) {
	v := NewVolume(4, 3, 2, 5)
	if v.nodes != 4*16 || v.Graph().Nodes() != v.nodes || v.DualGraph().Nodes() != v.nodes {
		t.Fatalf("node count %d/%d/%d", v.nodes, v.Graph().Nodes(), v.DualGraph().Nodes())
	}
	wantEdges := 3*32 + 3*16 // T·2L² horizontal + T·L² vertical
	if v.Graph().Edges() != wantEdges {
		t.Fatalf("edge count %d, want %d", v.Graph().Edges(), wantEdges)
	}
	for e := 0; e < v.Graph().Edges(); e++ {
		want := 2
		if e >= v.horiz {
			want = 5
		}
		if v.Graph().Weight(e) != want {
			t.Fatalf("edge %d weight %d, want %d", e, v.Graph().Weight(e), want)
		}
	}
	// Every edge flips exactly two detectors and the volume is closed:
	// vertical edges stay inside one column, horizontal inside one layer.
	nc := v.nc
	for e := 0; e < v.Graph().Edges(); e++ {
		a, b := v.Graph().Ends(e)
		if e < v.horiz {
			if a/nc != b/nc {
				t.Fatalf("horizontal edge %d spans layers %d and %d", e, a/nc, b/nc)
			}
		} else {
			if a%nc != b%nc || b/nc-a/nc != 1 {
				t.Fatalf("vertical edge %d joins nodes %d and %d", e, a, b)
			}
		}
	}
}

func TestWeights(t *testing.T) {
	if wh, wv := Weights(0.03, 0.03, 8, 8); wh != 1 || wv != 1 {
		t.Fatalf("p=q must give unit weights, got (%d,%d)", wh, wv)
	}
	wh, wv := Weights(0.05, 0.01, 8, 8)
	if wv <= wh {
		t.Fatalf("rarer measurement errors must weigh more: wh=%d wv=%d", wh, wv)
	}
	// q = 0: vertical edges capped at one more than the worst horizontal
	// detour, never chosen, still positive.
	wh0, wv0 := Weights(0.05, 0, 8, 8)
	if wv0 < 1 || wv0 > wh0*8+1 {
		t.Fatalf("q=0 weights out of range: wh=%d wv=%d", wh0, wv0)
	}
	// gcd-normalized.
	if g := gcd(wh, wv); g != 1 {
		t.Fatalf("weights (%d,%d) share a factor %d", wh, wv, g)
	}
}

// scalarShot simulates one noisy-extraction history with a plain RNG:
// fresh errors per round, noisy syndromes, difference layers, closing
// perfect round. Returns the accumulated error and the 3D defect list.
func scalarShot(v *Volume, rng *rand.Rand, p, q float64, dual bool) (bits.Vec, []int) {
	lat := v.Lattice()
	cum := bits.NewVec(v.nq)
	prev := make([]bool, v.nc)
	cur := make([]bool, v.nc)
	var defects []int
	syndrome := func(errs bits.Vec) []int {
		if dual {
			return lat.StarSyndrome(errs)
		}
		return lat.Syndrome(errs)
	}
	for t := 1; t <= v.T; t++ {
		for e := 0; e < v.nq; e++ {
			if rng.Float64() < p {
				cum.Flip(e)
			}
		}
		for c := range cur {
			cur[c] = false
		}
		for _, c := range syndrome(cum) {
			cur[c] = true
		}
		for c := 0; c < v.nc; c++ {
			if rng.Float64() < q {
				cur[c] = !cur[c]
			}
			if cur[c] != prev[c] {
				defects = append(defects, (t-1)*v.nc+c)
			}
		}
		prev, cur = cur, prev
	}
	for c := range cur {
		cur[c] = false
	}
	for _, c := range syndrome(cum) {
		cur[c] = true
	}
	for c := 0; c < v.nc; c++ {
		if cur[c] != prev[c] {
			defects = append(defects, v.T*v.nc+c)
		}
	}
	return cum, defects
}

// TestDecodeClearsProjectedSyndrome is the core space-time soundness
// property: for random noisy-extraction histories in both sectors and
// with both decoders, the projected spatial correction must cancel the
// accumulated error's syndrome exactly (the residual is a closed cycle).
func TestDecodeClearsProjectedSyndrome(t *testing.T) {
	rng := rand.New(rand.NewPCG(501, 502))
	for _, cfg := range []struct {
		l, rounds int
		p, q      float64
	}{
		{3, 2, 0.05, 0.05},
		{4, 4, 0.03, 0.06},
		{5, 3, 0.08, 0.02},
		{4, 6, 0.1, 0.1},
	} {
		v := CachedVolume(cfg.l, cfg.rounds, cfg.p, cfg.q)
		for trial := 0; trial < 60; trial++ {
			for _, dual := range []bool{false, true} {
				cum, defects := scalarShot(v, rng, cfg.p, cfg.q, dual)
				for _, kind := range []toric.DecoderKind{toric.DecoderUnionFind, toric.DecoderExact} {
					res := cum.Clone()
					res.Xor(v.Decode(defects, kind, dual))
					var rest []int
					if dual {
						rest = v.Lattice().StarSyndrome(res)
					} else {
						rest = v.Lattice().Syndrome(res)
					}
					if len(rest) != 0 {
						t.Fatalf("L=%d T=%d dual=%v kind=%d trial %d: projected residual has %d defects",
							cfg.l, cfg.rounds, dual, kind, trial, len(rest))
					}
				}
			}
		}
	}
}

// TestUnitWeightVolumeBitIdentical: the p = q volume is a unit-weight
// graph, and the weighted union-find decoder on it must emit exactly
// the same corrections as the plain unweighted decoder on an identical
// unweighted graph — the satellite equivalence required by the issue.
func TestUnitWeightVolumeBitIdentical(t *testing.T) {
	v := NewVolume(4, 4, 1, 1)
	g := v.Graph()
	ends := make([][2]int32, g.Edges())
	for e := range ends {
		a, b := g.Ends(e)
		ends[e] = [2]int32{int32(a), int32(b)}
	}
	gu := decoder.NewGraph(g.Nodes(), ends)
	ufw := decoder.NewUnionFind(g)
	ufu := decoder.NewUnionFind(gu)
	rng := rand.New(rand.NewPCG(503, 504))
	for trial := 0; trial < 80; trial++ {
		// Random error pattern → valid defect set.
		par := make([]bool, g.Nodes())
		for e := 0; e < g.Edges(); e++ {
			if rng.Float64() < 0.06 {
				a, b := g.Ends(e)
				par[a] = !par[a]
				par[b] = !par[b]
			}
		}
		var defects []int
		for n, p := range par {
			if p {
				defects = append(defects, n)
			}
		}
		var a, b []int
		ufw.Decode(defects, func(e int) { a = append(a, e) })
		ufu.Decode(defects, func(e int) { b = append(b, e) })
		if len(a) != len(b) {
			t.Fatalf("trial %d: emit counts differ: %d vs %d", trial, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: emit order differs at %d: %d vs %d", trial, i, a[i], b[i])
			}
		}
	}
}

// TestQZeroSingleRoundMatches2D: with perfect measurements and one
// round, the space-time experiment is the 2D memory experiment with a
// silent extra layer — each sector's failure rate must match the 2D
// rate within combined statistical error.
func TestQZeroSingleRoundMatches2D(t *testing.T) {
	const samples = 6000
	for _, cfg := range []struct {
		l    int
		p    float64
		kind toric.DecoderKind
	}{
		{4, 0.05, toric.DecoderUnionFind},
		{5, 0.08, toric.DecoderUnionFind},
		{4, 0.05, toric.DecoderExact},
	} {
		st := Memory(cfg.l, 1, cfg.p, 0, cfg.kind, samples, 505)
		flat := toric.MemoryExperiment(cfg.l, cfg.p, cfg.kind, samples, 506)
		fs, ff := st.FailRateX(), flat.FailRate()
		sigma := math.Sqrt(fs*(1-fs)/samples + ff*(1-ff)/samples)
		if diff := math.Abs(fs - ff); diff > 4*sigma+0.01 {
			t.Fatalf("L=%d p=%v kind=%d: spacetime X %.4f vs 2D %.4f (diff %.4f > %.4f)",
				cfg.l, cfg.p, cfg.kind, fs, ff, diff, 4*sigma+0.01)
		}
		// The Z sector decodes the dual problem at the same rate.
		fz := st.FailRateZ()
		sigmaZ := math.Sqrt(fs*(1-fs)/samples + fz*(1-fz)/samples)
		if diff := math.Abs(fs - fz); diff > 4*sigmaZ+0.01 {
			t.Fatalf("L=%d p=%v: sector asymmetry X %.4f vs Z %.4f", cfg.l, cfg.p, fs, fz)
		}
	}
}

// TestUnionFindMatchesExactVolume holds weighted union-find to the
// exact matcher on small noisy volumes — the L=4 acceptance criterion.
func TestUnionFindMatchesExactVolume(t *testing.T) {
	const samples = 4000
	for _, pq := range []float64{0.02, 0.03} {
		uf := Memory(4, 4, pq, pq, toric.DecoderUnionFind, samples, 507)
		ex := Memory(4, 4, pq, pq, toric.DecoderExact, samples, 507)
		fu, fe := uf.FailRate(), ex.FailRate()
		sigma := math.Sqrt(fu*(1-fu)/samples + fe*(1-fe)/samples)
		if diff := math.Abs(fu - fe); diff > 4*sigma+0.015 {
			t.Fatalf("p=q=%v: union-find %.4f vs exact %.4f (diff %.4f > %.4f)",
				pq, fu, fe, diff, 4*sigma+0.015)
		}
	}
}

// TestSustainedSuppression: below the sustained threshold a bigger
// lattice with proportionally more rounds must fail less; far above it,
// more (or saturate).
func TestSustainedSuppression(t *testing.T) {
	const samples = 3000
	below3 := Memory(3, 3, 0.01, 0.01, toric.DecoderUnionFind, samples, 509)
	below5 := Memory(5, 5, 0.01, 0.01, toric.DecoderUnionFind, samples, 510)
	if below5.FailRate() >= below3.FailRate() && below3.Failures > 0 {
		t.Fatalf("no sustained suppression below threshold: L=3 %.4f vs L=5 %.4f",
			below3.FailRate(), below5.FailRate())
	}
	above3 := Memory(3, 3, 0.08, 0.08, toric.DecoderUnionFind, samples, 511)
	above5 := Memory(5, 5, 0.08, 0.08, toric.DecoderUnionFind, samples, 512)
	if above5.FailRate() < above3.FailRate()-0.02 {
		t.Fatalf("above threshold L=5 should not beat L=3: %.4f vs %.4f",
			above5.FailRate(), above3.FailRate())
	}
}

// TestMemoryDeterministicAndGOMAXPROCSInvariant: the experiment is a
// pure function of (samples, seed), independent of the worker count.
func TestMemoryDeterministicAndGOMAXPROCSInvariant(t *testing.T) {
	run := func() Result { return Memory(4, 4, 0.03, 0.03, toric.DecoderUnionFind, 900, 513) }
	a := run()
	if b := run(); a != b {
		t.Fatalf("same seed, different results: %+v vs %+v", a, b)
	}
	old := runtime.GOMAXPROCS(1)
	serial := run()
	runtime.GOMAXPROCS(8)
	parallel := run()
	runtime.GOMAXPROCS(old)
	if serial != parallel {
		t.Fatalf("result depends on GOMAXPROCS: 1 → %+v, 8 → %+v", serial, parallel)
	}
	// Lane-level: one big batch, many workers vs one.
	v := CachedVolume(5, 5, 0.04, 0.04)
	runtime.GOMAXPROCS(1)
	x1, z1 := v.BatchMemory(0.04, 0.04, toric.DecoderUnionFind, 500, frame.NewAggregateSampler(42, 0))
	runtime.GOMAXPROCS(8)
	x8, z8 := v.BatchMemory(0.04, 0.04, toric.DecoderUnionFind, 500, frame.NewAggregateSampler(42, 0))
	runtime.GOMAXPROCS(old)
	if !x1.Equal(x8) || !z1.Equal(z8) {
		t.Fatal("BatchMemory failure masks depend on GOMAXPROCS")
	}
}

// TestSustainedThresholdCrossing: the p = q sweep over small distances
// must expose a crossing in the few-percent range.
func TestSustainedThresholdCrossing(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo sweep")
	}
	cross, pts := SustainedThreshold(3, 5, []float64{0.01, 0.02, 0.03, 0.04, 0.05, 0.06}, toric.DecoderUnionFind, 4000, 515)
	if math.IsNaN(cross) {
		for _, pt := range pts {
			t.Logf("p=q=%.3f: L=3 %.4f  L=5 %.4f", pt.P, pt.Small.FailRate(), pt.Large.FailRate())
		}
		t.Fatal("no sustained threshold crossing on the grid")
	}
	if cross < 0.01 || cross > 0.06 {
		t.Fatalf("implausible sustained threshold %.4f", cross)
	}
}
