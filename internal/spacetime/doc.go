// Package spacetime decodes the toric code under noisy syndrome
// extraction — the regime every fault-tolerant architecture actually
// operates in. With perfect measurements a single syndrome snapshot
// pins the defects and decoding is a 2D matching problem (package
// toric); with measurements that lie with probability q, a single
// snapshot is worthless and the experiment instead runs T rounds of
// plaquette/star measurement, takes the XOR *difference* of consecutive
// rounds as its detectors, and decodes over a three-dimensional
// space-time volume closed by one final perfect round.
//
// # The 3D decoding volume
//
// Detector (c, t) is the difference between round t and round t+1 of
// check c, for layers t = 0…T (layer 0 compares against the clean
// initial state, layer T against the perfect closing round). Every
// fault flips exactly two detectors, so faults are the edges of a
// decoder.Graph over (T+1)·L² nodes:
//
//   - a data error entering at round t flips every later measurement of
//     its two adjacent checks, which telescopes to one difference layer:
//     a horizontal (space-like) edge between the two checks at layer
//     t−1;
//   - a measurement error at round t corrupts that round only, flipping
//     layers t−1 and t of its check: a vertical (time-like) edge.
//
// The two edge families carry different likelihoods, so the graph is
// weighted: integer weights proportional to the log-likelihood ratios
// log((1−p)/p) and log((1−q)/q), gcd-normalized (p = q gives the
// unit-weight graph). The union-find decoder grows along the weights
// (an edge of weight w needs 2w half-steps); the blossom matcher prices
// pairs at wH·d₂ + wV·|Δt|. A matched correction projects to the data
// qubits by dropping its time-like edges and XOR-ing the space-like
// ones into the final error estimate; the telescoped detector algebra
// guarantees the projected residual is a closed 2D cycle, so the
// winding detectors decide logical failure exactly as in the 2D
// experiment.
//
// Both error sectors run per shot: bit-flip chains over the primal
// (plaquette) volume and phase-flip chains over the dual (star) volume,
// via toric's dual-lattice indexing.
//
// # Batch layout
//
// Shots advance as bit-planes (one word per 64 shots): per round, data
// error planes accumulate edge-major, measurement-error masks come from
// the sampler (frame.AggregateSampler's geometric skipping makes the q
// draws nearly free), and difference layers are stored check-major.
// The round loop is the LayerSource: it emits one difference layer per
// noisy round (plus the perfect closing layer) in a fixed draw order,
// and both consumers — the whole-volume batch decode here and the
// sliding-window streaming decoder in internal/stream — drain the same
// source, which is what makes them statistically identical by
// construction. The (T+1)·L² layer planes pivot lane-major through
// bits.TransposePlanes, and the per-lane decodes run as a worker pool
// over word-aligned lane spans — bit-identical for any GOMAXPROCS,
// exactly like the 2D pipeline.
//
// Erasure channels thread into the volume (see erasure.go): leaked
// data qubits depolarize at known horizontal edges, lost measurement
// rounds randomize their readout and erase the corresponding time-like
// edge, and both feed the union-find peeling pass as located faults
// (ErasedMemory vs ErasedMemoryBlind measures what the locations are
// worth).
//
// The sustained-memory threshold (failure curves of growing L with
// T ∝ L crossing at p = q ≈ 3%) is the package's headline experiment:
// below the crossing, more rounds and bigger lattices make the memory
// better; above it, worse.
package spacetime
