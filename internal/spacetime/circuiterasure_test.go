package spacetime

import (
	"testing"

	"ftqc/internal/extract"
	"ftqc/internal/frame"
	"ftqc/internal/noise"
	"ftqc/internal/surface"
	"ftqc/internal/toric"
)

// TestLeakageNotSilentlyIgnored pins the headline bugfix: a
// leakage-configured circuit run must actually model the leakage — its
// outcome may not be bit-identical to the leak-free run of the same
// seed, and the plain (non-erasure) constructors must refuse leaky
// models instead of zeroing them.
func TestLeakageNotSilentlyIgnored(t *testing.T) {
	P := noise.Uniform(0.02)
	leaky := P
	leaky.Leak = 0.02
	clean, err := CircuitMemoryOpts(4, 4, P, 1024, 77, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dirty, err := CircuitMemoryOpts(4, 4, leaky, 1024, 77, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if clean.FailX == dirty.FailX && clean.FailZ == dirty.FailZ {
		t.Fatalf("leakage silently ignored: leaky run bit-identical to leak-free (FailX=%d FailZ=%d)", clean.FailX, clean.FailZ)
	}
	if dirty.Pe != leaky.Leak {
		t.Fatalf("Pe provenance = %v, want %v", dirty.Pe, leaky.Leak)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("extract.NewSource accepted P.Leak > 0 without panicking")
		}
	}()
	extract.NewSource(4, leaky, 64, frame.NewAggregateSampler(1, 1))
}

// TestPlainCircuitSourcePanicsOnLeak pins the same contract on the
// code-generic source.
func TestPlainCircuitSourcePanicsOnLeak(t *testing.T) {
	P := noise.Uniform(0.01)
	P.Leak = 0.01
	defer func() {
		if recover() == nil {
			t.Fatal("surface.NewCircuitSource accepted P.Leak > 0 without panicking")
		}
	}()
	surface.NewCircuitSource(toric.Cached(4), P, 64, frame.NewAggregateSampler(2, 1))
}

// TestValidateRejectsMalformedModels pins the constructor-error gate of
// the option-bearing entry points.
func TestValidateRejectsMalformedModels(t *testing.T) {
	bad := noise.Uniform(0.01)
	bad.Leak = 1.5
	if _, err := CircuitMemoryOpts(4, 4, bad, 64, 1, DecodeOptions{}); err == nil {
		t.Fatal("CircuitMemoryOpts accepted Leak=1.5")
	}
	neg := noise.Uniform(0.01)
	neg.Bias = -1
	if _, err := CodeCircuitMemoryOpts(toric.Cached(4), 4, neg, 64, 1, DecodeOptions{}); err == nil {
		t.Fatal("CodeCircuitMemoryOpts accepted Bias=-1")
	}
	if _, err := CircuitMemoryOpts(4, 0, noise.Uniform(0.01), 64, 1, DecodeOptions{}); err == nil {
		t.Fatal("CircuitMemoryOpts accepted rounds=0")
	}
}

// TestPureErasureDecodesPerfectly: with every Pauli rate zero and only
// leakage, all faults are located — erasure-aware peeling should decode
// essentially perfectly while the blind decode, facing the same
// randomized qubits without the locations, fails at a measurable rate.
func TestPureErasureDecodesPerfectly(t *testing.T) {
	var P noise.Params
	P.Leak = 0.01
	aware, err := CircuitMemoryOpts(4, 4, P, 2048, 303, DecodeOptions{ErasureAware: true})
	if err != nil {
		t.Fatal(err)
	}
	blind, err := CircuitMemoryOpts(4, 4, P, 2048, 303, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("pure erasure: aware %d/%d blind %d/%d", aware.Failures, aware.Samples, blind.Failures, blind.Samples)
	if aware.Failures > blind.Failures {
		t.Fatalf("erasure-aware (%d) worse than blind (%d) on pure erasure", aware.Failures, blind.Failures)
	}
	if aware.FailRate() > 0.002 {
		t.Fatalf("pure-erasure aware failure rate %v, want ~0", aware.FailRate())
	}
}

// TestCircuitErasureAwareBeatsBlind compares the two decodes at matched
// marginals — same model, same seed, same sampled histories — with
// Pauli noise in play too. The located faults must be worth a
// beyond-noise improvement.
func TestCircuitErasureAwareBeatsBlind(t *testing.T) {
	P := noise.Uniform(0.003)
	P.Leak = 0.01
	aware, err := CircuitMemoryOpts(4, 4, P, 4096, 404, DecodeOptions{ErasureAware: true})
	if err != nil {
		t.Fatal(err)
	}
	blind, err := CircuitMemoryOpts(4, 4, P, 4096, 404, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("aware %d/%d blind %d/%d", aware.Failures, aware.Samples, blind.Failures, blind.Samples)
	// Same histories decode both ways, so the comparison is paired; ask
	// for a margin a fair coin would clear with probability << 1e-3.
	if aware.Failures+3*isqrt(blind.Failures) >= blind.Failures {
		t.Fatalf("erasure-aware (%d) not beyond-noise better than blind (%d)", aware.Failures, blind.Failures)
	}
}

func isqrt(n int) int {
	x := 0
	for (x+1)*(x+1) <= n {
		x++
	}
	return x
}

// TestCorrelatedDeterministic pins the determinism contract of the
// two-pass decode: same seed, same counts, twice.
func TestCorrelatedDeterministic(t *testing.T) {
	P := noise.Uniform(0.006)
	P.Leak = 0.004
	opts := DecodeOptions{ErasureAware: true, Correlated: true}
	a, err := CircuitMemoryOpts(4, 4, P, 1024, 505, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CircuitMemoryOpts(4, 4, P, 1024, 505, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.FailX != b.FailX || a.FailZ != b.FailZ {
		t.Fatalf("correlated decode not deterministic: (%d,%d) vs (%d,%d)", a.FailX, a.FailZ, b.FailX, b.FailZ)
	}
}

// TestCorrelatedImprovesOverIndependent: repricing the dual window
// from the committed primal correction must lower the dual sector's
// failure count — and with it the total — at a depolarizing operating
// point below the crossing. The margin here is the measured variant
// (same-qubit horizontal marking only); broader marking sets were
// measured to over-erase and lose to independent decoding.
func TestCorrelatedImprovesOverIndependent(t *testing.T) {
	P := noise.Uniform(0.006)
	ind, err := CircuitMemoryOpts(6, 6, P, 8192, 606, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	corr, err := CircuitMemoryOpts(6, 6, P, 8192, 606, DecodeOptions{Correlated: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("independent %d/%d correlated %d/%d (FailZ %d vs %d)",
		ind.Failures, ind.Samples, corr.Failures, corr.Samples, ind.FailZ, corr.FailZ)
	if corr.FailZ >= ind.FailZ {
		t.Fatalf("correlated dual decode (%d) not better than independent (%d)", corr.FailZ, ind.FailZ)
	}
	if corr.Failures >= ind.Failures {
		t.Fatalf("correlated total (%d) not better than independent (%d)", corr.Failures, ind.Failures)
	}
}

// TestErasedVolumeMatchesPlainOnLeakFree: with Leak = 0 the erased
// pipeline must consume the sampler stream identically to the plain
// one — same draws, same decodes, same failures.
func TestErasedVolumeMatchesPlainOnLeakFree(t *testing.T) {
	P := noise.Uniform(0.008)
	v := CachedCircuitVolumeFor(4, 4, P)
	lanes := 192
	fx1, fz1 := v.BatchCircuitErasedFrom(extract.NewSourceErased(4, P, lanes, frame.NewAggregateSampler(707, 3)), DecodeOptions{ErasureAware: true})
	fx2, fz2 := v.BatchMemoryFrom(extract.NewSource(4, P, lanes, frame.NewAggregateSampler(707, 3)), toric.DecoderUnionFind)
	for lane := 0; lane < lanes; lane++ {
		if fx1.Get(lane) != fx2.Get(lane) || fz1.Get(lane) != fz2.Get(lane) {
			t.Fatalf("lane %d: erased pipeline diverges from plain on a leak-free model", lane)
		}
	}
}

// TestScheduleAblationDirection pins the CNOT-schedule ablation: the
// default schedule's bent hook pairs leave diagonal defect steps, so
// it must fail more often than the hook-suppressing parallel-last
// schedule at the same model and seed. (On the toric layout no check
// has a colinear edge pair, so the distance-halving straight hook is
// unschedulable — bent vs parallel is the whole accessible range.)
func TestScheduleAblationDirection(t *testing.T) {
	P := noise.Uniform(0.006)
	def, err := CodeCircuitMemoryOpts(toric.Cached(6), 8, P, 8192, 808, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := CodeCircuitMemoryOpts(toric.HookParallel(6), 8, P, 8192, 808, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("default %d/%d hook-parallel %d/%d", def.Failures, def.Samples, par.Failures, par.Samples)
	if def.Failures <= par.Failures {
		t.Fatalf("default bent-hook schedule (%d failures) not worse than parallel-last (%d)", def.Failures, par.Failures)
	}
}

// TestBiasedNoiseSanity: the biased sampler must shift the sector
// balance — at high η (Z-dominant) the dual sector sees far more
// failures than the primal — and η = 1/2 must reproduce the unbiased
// channel draw-for-draw.
func TestBiasedNoiseSanity(t *testing.T) {
	P := noise.Uniform(0.004)
	P.Bias = 100
	r, err := CircuitMemoryOpts(4, 4, P, 2048, 909, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("eta=100: FailX=%d FailZ=%d", r.FailX, r.FailZ)
	if r.FailZ <= r.FailX {
		t.Fatalf("Z-biased noise (eta=100) should overload the dual sector: FailX=%d FailZ=%d", r.FailX, r.FailZ)
	}
}
