package spacetime

// Circuit-level erasure and correlated two-sector decoding.
//
// The extraction circuit produces two kinds of side information the
// independent-sector pipeline used to drop:
//
//   - Leakage. frame.BatchSim tracks a leakage flag per qubit; an
//     erasure-harvesting source (extract.NewSourceErased /
//     surface.NewCircuitSourceErased) replaces leaked data qubits with
//     fresh randomized ones at round boundaries and reports every leak
//     as a located fault: the horizontal (and mirrored diagonal) edges
//     of a leaked data qubit, the vertical edge of a leaked ancilla.
//     Located faults seed the union-find peeling pass (DecodeErased) at
//     full support — the erasure decoding the phenomenological path
//     already had, now fed by the circuit model itself.
//
//   - Correlations. Depolarizing faults have Y components (an X error
//     here implies a Z error on the same qubit with probability
//     p_Y/(p_X+p_Y) = 1/2, an LLR of exactly zero) and mid-chain
//     ancilla faults hook onto the late-scheduled data qubits of the
//     other sector. DecodeOptions.Correlated decodes the primal sector
//     first and reprices the dual graph from the committed primal
//     correction: every counterpart edge's weight drops to zero, which
//     in the integer-weight union-find is exactly "erased".
//
// Both paths keep the determinism contract: lanes decode independently
// over word-aligned spans, the primal→dual order is fixed, and the
// erased edge lists are built in canonical ascending edge-id order — so
// results are bit-identical for any GOMAXPROCS or worker count, and the
// streaming window (internal/stream) can reproduce them exactly.

import (
	"fmt"
	mbits "math/bits"

	"ftqc/internal/bits"
	"ftqc/internal/extract"
	"ftqc/internal/frame"
	"ftqc/internal/noise"
	"ftqc/internal/surface"
)

// DecodeOptions selects the side-information passes of a circuit-level
// decode. The zero value is the independent-sector, erasure-blind
// baseline.
type DecodeOptions struct {
	// ErasureAware feeds the harvested leakage planes into the
	// union-find peeling pass as known fault locations. Without it the
	// same noisy histories decode blind — the controlled comparison
	// that measures what the locations are worth.
	ErasureAware bool
	// Correlated decodes the primal sector first and marks the dual
	// counterparts of its committed correction (the same-qubit,
	// same-layer Y components of horizontal and diagonal edges — see
	// MarkCounterpartEdges) as erased in the dual decode — the zero-LLR
	// repricing of the depolarizing channel's conditionals.
	Correlated bool
}

// ErasedLayerFeed is the layer-feed contract of an erasure-harvesting
// circuit source: LayerFeed plus the per-round erasure planes. eraH is
// qubit-major (Qubits() planes: lanes whose data qubit is a located
// fault this layer), lostX/lostZ are check-major (Checks() planes per
// sector: lanes whose ancilla measurement read as a coin).
type ErasedLayerFeed interface {
	LayerFeed
	NextLayersErased(layerX, layerZ, eraH, lostX, lostZ []bits.Vec)
}

// MarkCounterpartEdges marks, in a dual-sector edge mask, the edge
// whose fault probability is conditioned on a committed primal
// correction edge e — the repricing pass of correlated decoding. The
// geometry parameters are the caller's edge-id layout (a Volume's or a
// streaming Window's): horizontal ids [0, horiz), vertical ids
// [horiz, diagOff), diagonal ids diagOff+. Both sectors share that
// layout, so a horizontal (q, t) maps to the dual horizontal of the
// same id and a diagonal maps to the dual horizontal at its own
// (q, t).
//
// The marking is deliberately minimal: a primal data-qubit correction
// (horizontal or diagonal) reprices only the dual horizontal on the
// same qubit at the same layer — the Y component of the depolarizing
// channel. Vertical (measurement-chain) corrections mark nothing, and
// no diagonal dual edges are marked. The broader sets suggested by the
// circuit model — schedule hooks of ancilla faults, mirrored diagonals
// for either dual reader — were measured to over-erase: they hand the
// peeling pass so many zero-LLR edges that the dual decode gets worse
// than independent, while the same-qubit horizontal alone yields a
// consistent dual-sector improvement across operating points.
//
// Marking is idempotent (a bit mask), so overlapping counterparts
// collapse; the caller extracts the canonical ascending erased list
// with AppendSupport.
func MarkCounterpartEdges(e, horiz, diagOff int, mask bits.Vec) {
	switch {
	case e < horiz:
		mask.Set(e, true)
	case e < diagOff:
		// measurement-chain correction: no dual counterpart marked
	default:
		mask.Set(e-diagOff, true)
	}
}

// BatchCircuitErasedFrom drains an erasure-harvesting circuit feed and
// decodes both sectors per lane with the selected side-information
// passes (union-find only). It is BatchMemoryFrom with erasure planes
// and an optional correlated second pass; with a leak-free model and
// zero options it consumes the sampler stream identically (the erased
// round of a leak-free source is draw-for-draw the plain round).
func (v *Volume) BatchCircuitErasedFrom(src ErasedLayerFeed, opts DecodeOptions) (failX, failZ bits.Vec) {
	nc, nq := v.nc, v.nq
	lanes := src.Lanes()
	if src.Rounds() != 0 {
		panic("spacetime: layer feed already drained")
	}
	if src.L() != v.L {
		panic("spacetime: layer feed lattice size does not match the volume")
	}
	if cf, ok := src.(codeFeed); ok {
		if cf.Code().CodeName() != v.code.CodeName() {
			panic("spacetime: layer feed code family does not match the volume")
		}
	} else if v.code.CodeName() != "toric" {
		panic("spacetime: this volume needs a code-aware layer feed (surface.NewCircuitSourceErased)")
	}
	layersX := bits.NewVecs(v.det, lanes)
	layersZ := bits.NewVecs(v.det, lanes)
	eraH := bits.NewVecs(v.horiz, lanes)
	lostX := bits.NewVecs(v.T*nc, lanes)
	lostZ := bits.NewVecs(v.T*nc, lanes)
	for t := 0; t < v.T; t++ {
		src.NextLayersErased(
			layersX[t*nc:(t+1)*nc], layersZ[t*nc:(t+1)*nc],
			eraH[t*nq:(t+1)*nq], lostX[t*nc:(t+1)*nc], lostZ[t*nc:(t+1)*nc])
	}
	src.CloseLayers(layersX[v.T*nc:], layersZ[v.T*nc:])
	pX1 := bits.NewVec(lanes)
	pX2 := bits.NewVec(lanes)
	pZ1 := bits.NewVec(lanes)
	pZ2 := bits.NewVec(lanes)
	src.Windings(pX1, pX2, pZ1, pZ2)
	synX := bits.NewVecs(lanes, v.det)
	bits.TransposePlanes(synX, layersX)
	synZ := bits.NewVecs(lanes, v.det)
	bits.TransposePlanes(synZ, layersZ)
	var eraLane, lostXLane, lostZLane []bits.Vec
	if opts.ErasureAware {
		eraLane = bits.NewVecs(lanes, v.horiz)
		bits.TransposePlanes(eraLane, eraH)
		lostXLane = bits.NewVecs(lanes, v.T*nc)
		bits.TransposePlanes(lostXLane, lostX)
		lostZLane = bits.NewVecs(lanes, v.T*nc)
		bits.TransposePlanes(lostZLane, lostZ)
	}
	failX = bits.NewVec(lanes)
	failZ = bits.NewVec(lanes)
	v.decodeCircuitLanes(opts, synX, synZ, eraLane, lostXLane, lostZLane,
		pX1, pX2, pZ1, pZ2, failX, failZ)
	return failX, failZ
}

// decodeCircuitLanes decodes both sectors of lanes over word-aligned
// spans. The two sectors of one lane decode back to back (primal, then
// dual) because the correlated pass conditions the dual decode on that
// lane's committed primal correction — still embarrassingly parallel
// across lanes, so the worker-count invariance argument of decodeLanes
// carries over unchanged.
func (v *Volume) decodeCircuitLanes(opts DecodeOptions, synX, synZ, era, lostX, lostZ []bits.Vec, pX1, pX2, pZ1, pZ2, failX, failZ bits.Vec) {
	frame.ForEachLaneSpan(len(synX), func(lo, hi int) {
		scr := v.scratch.Get().(*volScratch)
		for lane := lo; lane < hi; lane++ {
			// Primal (plaquette) sector: collect the raw correction edges
			// when the dual pass needs them.
			scr.edges = scr.edges[:0]
			scr.defects = synX[lane].AppendSupport(scr.defects[:0])
			l1 := pX1.Get(lane)
			l2 := pX2.Get(lane)
			if len(scr.defects) > 0 {
				scr.erased = scr.erased[:0]
				if era != nil {
					scr.erased = v.appendErased(scr.erased, era[lane], lostX[lane], scr.emask)
				}
				scr.corr.Clear()
				scr.ufX.DecodeErased(scr.defects, scr.erased, func(e int) {
					if opts.Correlated {
						scr.edges = append(scr.edges, int32(e))
					}
					if q, ok := v.ProjectEdge(e); ok {
						scr.corr.Flip(q)
					}
				})
				c1, c2 := v.code.LogicalParity(false, scr.corr)
				l1 = l1 != c1
				l2 = l2 != c2
			}
			if l1 || l2 {
				failX.Set(lane, true)
			}
			// Dual (star) sector, repriced from the primal commit.
			scr.defects = synZ[lane].AppendSupport(scr.defects[:0])
			l1 = pZ1.Get(lane)
			l2 = pZ2.Get(lane)
			if len(scr.defects) > 0 {
				scr.emask.Clear()
				if era != nil {
					SetErasedMask(scr.emask, era[lane], lostZ[lane], v.horiz, v.diagOff, v.WD)
				}
				for _, e := range scr.edges {
					MarkCounterpartEdges(int(e), v.horiz, v.diagOff, scr.emask)
				}
				scr.erased = scr.emask.AppendSupport(scr.erased[:0])
				scr.corr.Clear()
				scr.ufZ.DecodeErased(scr.defects, scr.erased, func(e int) {
					if q, ok := v.ProjectEdge(e); ok {
						scr.corr.Flip(q)
					}
				})
				c1, c2 := v.code.LogicalParity(true, scr.corr)
				l1 = l1 != c1
				l2 = l2 != c2
			}
			if l1 || l2 {
				failZ.Set(lane, true)
			}
		}
		v.scratch.Put(scr)
	})
}

// SetErasedMask sets a sector's erasure bits in an edge-id mask: the
// lane's erased horizontals, their mirrored diagonals (a leaked data
// qubit's fault may straddle the two reads), and the sector's lost
// verticals. Like MarkCounterpartEdges it is geometry-parameterized so
// a Volume and a streaming window share one implementation; the caller
// clears the mask first.
func SetErasedMask(mask, era, lost bits.Vec, horiz, diagOff, wd int) {
	for i := 0; i < era.Words(); i++ {
		mask.XorWord(i, era.Word(i)) // mask is clear here: XOR = OR
	}
	for i := 0; i < era.Words(); i++ {
		for b := era.Word(i); b != 0; b &= b - 1 {
			h := i*64 + trailingZeros64(b)
			if wd > 0 {
				mask.Set(diagOff+h, true)
			}
		}
	}
	for i := 0; i < lost.Words(); i++ {
		for b := lost.Word(i); b != 0; b &= b - 1 {
			mask.Set(horiz+i*64+trailingZeros64(b), true)
		}
	}
}

// appendErased appends one sector's canonical erased edge list —
// ascending edge ids: horizontals, then verticals, then mirrored
// diagonals — using the scratch mask for the id arithmetic.
func (v *Volume) appendErased(dst []int, era, lost bits.Vec, mask bits.Vec) []int {
	mask.Clear()
	SetErasedMask(mask, era, lost, v.horiz, v.diagOff, v.WD)
	return mask.AppendSupport(dst)
}

func trailingZeros64(x uint64) int { return mbits.TrailingZeros64(x) }

// validateCircuitModel is the constructor-error gate of the
// option-bearing circuit entry points: a malformed model or round count
// is an error, never a silent adjustment.
func validateCircuitModel(P noise.Params, rounds int) error {
	if err := P.Validate(); err != nil {
		return err
	}
	if rounds < 1 {
		return fmt.Errorf("spacetime: need at least one measurement round (got %d)", rounds)
	}
	return nil
}

// CircuitMemoryOpts runs the circuit-level noisy-extraction memory
// Monte Carlo with leakage and the selected decode options: `rounds`
// full extraction circuits per shot under P (including its Leak and
// Bias channels), decoded by weighted union-find over the diagonal-edge
// volume. Result.Pe reports the leak rate. Unsupported parameters are
// constructor errors — leakage is never silently ignored.
func CircuitMemoryOpts(l, rounds int, P noise.Params, samples int, seed uint64, opts DecodeOptions) (Result, error) {
	if err := validateCircuitModel(P, rounds); err != nil {
		return Result{}, err
	}
	v := CachedCircuitVolumeFor(l, rounds, P)
	fx, fz, fa := frame.CountSectorFailures(samples, seed, func(lanes int, smp frame.Sampler) (bits.Vec, bits.Vec) {
		return v.BatchCircuitErasedFrom(extract.NewSourceErased(l, P, lanes, smp), opts)
	})
	return Result{L: l, T: rounds, P: P.Gate2, Q: P.Meas, Pe: P.Leak, Samples: samples,
		FailX: fx, FailZ: fz, Failures: fa}, nil
}

// CodeCircuitMemoryOpts is CircuitMemoryOpts for any surface.Code —
// including schedule overrides (surface.WithSchedule), which is how the
// CNOT-schedule ablation sweeps run both schedules through one code-
// generic pipeline.
func CodeCircuitMemoryOpts(code surface.Code, rounds int, P noise.Params, samples int, seed uint64, opts DecodeOptions) (Result, error) {
	if err := validateCircuitModel(P, rounds); err != nil {
		return Result{}, err
	}
	v := CachedCodeCircuitVolumeFor(code, rounds, P)
	fx, fz, fa := frame.CountSectorFailures(samples, seed, func(lanes int, smp frame.Sampler) (bits.Vec, bits.Vec) {
		return v.BatchCircuitErasedFrom(surface.NewCircuitSourceErased(code, P, lanes, smp), opts)
	})
	return Result{L: code.Distance(), T: rounds, P: P.Gate2, Q: P.Meas, Pe: P.Leak, Samples: samples,
		FailX: fx, FailZ: fz, Failures: fa}, nil
}

// CircuitSustainedThresholdOpts sweeps a circuit-level noise family
// over the grid with T = L rounds for two code distances under the
// given decode options and estimates the failure-curve crossing. The
// model function maps a grid value ε to its noise.Params (e.g.
// noise.Uniform, or a biased or leaky variant); decoding weights are
// derived from the model's Pauli rates only — leakage enters as
// erasure, bias as a prior-mismatch ablation.
func CircuitSustainedThresholdOpts(l1, l2 int, grid []float64, model func(eps float64) noise.Params, samples int, seed uint64, opts DecodeOptions) (float64, []ThresholdPoint, error) {
	pts := make([]ThresholdPoint, len(grid))
	small := make([]float64, len(grid))
	large := make([]float64, len(grid))
	for i, eps := range grid {
		P := model(eps)
		rs, err := CircuitMemoryOpts(l1, l1, P, samples, seed+uint64(2*i), opts)
		if err != nil {
			return 0, nil, err
		}
		rl, err := CircuitMemoryOpts(l2, l2, P, samples, seed+uint64(2*i+1), opts)
		if err != nil {
			return 0, nil, err
		}
		pts[i] = ThresholdPoint{P: eps, Small: rs, Large: rl}
		small[i] = rs.FailRate()
		large[i] = rl.FailRate()
	}
	return CrossingEstimate(grid, small, large), pts, nil
}
