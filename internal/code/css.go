package code

import (
	"fmt"

	"ftqc/internal/bits"
	"ftqc/internal/classical"
	"ftqc/internal/pauli"
)

// CSS is a Calderbank–Shor–Steane code: Z-type generators from the rows of
// HZ detect bit flips, X-type generators from the rows of HX detect phase
// flips (Preskill §3.6, Eq. 21 splits the generator list exactly this way).
type CSS struct {
	*Code
	HZ *bits.Matrix // Z-generator supports (detect X errors)
	HX *bits.Matrix // X-generator supports (detect Z errors)
}

// pauliFromSupport builds an n-qubit Pauli with the given single type on
// the support of v.
func pauliFromSupport(v bits.Vec, s pauli.Single) pauli.Pauli {
	p := pauli.NewIdentity(v.Len())
	for i := 0; i < v.Len(); i++ {
		if v.Get(i) {
			p.SetAt(i, s)
		}
	}
	return p
}

// NewCSS builds a CSS code from two parity-check matrices over the same
// block length. Every row of hz must be orthogonal to every row of hx
// (so the Z and X generators commute).
func NewCSS(name string, hz, hx *bits.Matrix) (*CSS, error) {
	if hz.Cols() != hx.Cols() {
		return nil, fmt.Errorf("css %s: block length mismatch", name)
	}
	n := hz.Cols()
	for i := 0; i < hz.Rows(); i++ {
		for j := 0; j < hx.Rows(); j++ {
			if hz.Row(i).Dot(hx.Row(j)) {
				return nil, fmt.Errorf("css %s: hz row %d not orthogonal to hx row %d", name, i, j)
			}
		}
	}
	gens := make([]pauli.Pauli, 0, hz.Rows()+hx.Rows())
	for i := 0; i < hz.Rows(); i++ {
		gens = append(gens, pauliFromSupport(hz.Row(i), pauli.Z))
	}
	for i := 0; i < hx.Rows(); i++ {
		gens = append(gens, pauliFromSupport(hx.Row(i), pauli.X))
	}
	// Logical X operators: X-strings commuting with all Z generators
	// (support in ker hz), modulo the X-stabilizer row space (hx rows).
	logXSupports := quotientBasis(hz.Kernel(), hx)
	// Logical Z likewise with roles swapped.
	logZSupports := quotientBasis(hx.Kernel(), hz)
	if len(logXSupports) != len(logZSupports) {
		return nil, fmt.Errorf("css %s: logical space mismatch (%d X vs %d Z)",
			name, len(logXSupports), len(logZSupports))
	}
	k := len(logXSupports)
	// Pair the bases so that X̂ᵢ anticommutes with Ẑⱼ exactly when i = j:
	// M_ij = x_i · z_j must become the identity; replace z by z·M⁻ᵀ.
	if k > 0 {
		m := bits.NewMatrix(k, k)
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				m.Set(i, j, logXSupports[i].Dot(logZSupports[j]))
			}
		}
		inv, ok := m.Inverse()
		if !ok {
			return nil, fmt.Errorf("css %s: degenerate logical pairing", name)
		}
		newZ := make([]bits.Vec, k)
		for j := 0; j < k; j++ {
			v := bits.NewVec(n)
			for l := 0; l < k; l++ {
				if inv.Get(l, j) {
					v.Xor(logZSupports[l])
				}
			}
			newZ[j] = v
		}
		logZSupports = newZ
	}
	logX := make([]pauli.Pauli, k)
	logZ := make([]pauli.Pauli, k)
	for i := 0; i < k; i++ {
		logX[i] = pauliFromSupport(logXSupports[i], pauli.X)
		logZ[i] = pauliFromSupport(logZSupports[i], pauli.Z)
	}
	c, err := New(name, gens, logX, logZ)
	if err != nil {
		return nil, err
	}
	return &CSS{Code: c, HZ: hz, HX: hx}, nil
}

// quotientBasis returns vectors from the row space of space that extend
// the row space of sub to a basis of space's row space (i.e. a basis for
// rowspace(space)/rowspace(sub)).
func quotientBasis(space, sub *bits.Matrix) []bits.Vec {
	span := sub.Clone()
	var out []bits.Vec
	for i := 0; i < space.Rows(); i++ {
		v := space.Row(i)
		if !span.InSpan(v) {
			out = append(out, v.Clone())
			span = span.Stack(rowMatrix(v))
		}
	}
	return out
}

func rowMatrix(v bits.Vec) *bits.Matrix {
	m := bits.NewMatrix(1, v.Len())
	m.SetRow(0, v)
	return m
}

// MustNewCSS is NewCSS that panics on error.
func MustNewCSS(name string, hz, hx *bits.Matrix) *CSS {
	c, err := NewCSS(name, hz, hx)
	if err != nil {
		panic(err)
	}
	return c
}

// BitFlipSyndrome returns HZ · x, the syndrome a pattern of bit flips
// (X errors with support x) produces on the Z generators.
func (c *CSS) BitFlipSyndrome(x bits.Vec) bits.Vec { return c.HZ.MulVec(x) }

// PhaseFlipSyndrome returns HX · z for phase-flip support z.
func (c *CSS) PhaseFlipSyndrome(z bits.Vec) bits.Vec { return c.HX.MulVec(z) }

// Steane returns Steane's [[7,1,3]] code built from the [7,4,3] Hamming
// code in both bases (Preskill §2 and Eq. 18). Its logical X̂ and Ẑ are
// weight-7 transversal operators reduced by the pairing to the standard
// choice.
func Steane() *CSS {
	h := classical.Hamming743().H
	c := MustNewCSS("Steane[[7,1,3]]", h, h)
	// Prefer the canonical transversal logicals X̂ = X⊗7, Ẑ = Z⊗7 (both
	// valid: all-ones is a Hamming codeword, §4.1).
	ones := bits.MustFromString("1111111")
	c.LogicalX = []pauli.Pauli{pauliFromSupport(ones, pauli.X)}
	c.LogicalZ = []pauli.Pauli{pauliFromSupport(ones, pauli.Z)}
	return c
}

// Shor9 returns Shor's [[9,1,3]] code: three blocks of three qubits with
// ZZ checks inside blocks and X⊗6 checks across adjacent blocks.
func Shor9() *CSS { return ShorFamily(1) }

// ShorFamily returns the [[(2t+1)², 1, 2t+1]] generalization of Shor's
// code that Preskill §5 attributes to Shor's original family (block size
// growing like t²): a repetition code of repetition codes.
func ShorFamily(t int) *CSS {
	if t < 1 {
		panic("code: ShorFamily needs t >= 1")
	}
	r := 2*t + 1
	n := r * r
	// Z checks: adjacent pairs within each block of r qubits.
	hz := bits.NewMatrix(r*(r-1), n)
	row := 0
	for b := 0; b < r; b++ {
		for i := 0; i < r-1; i++ {
			hz.Set(row, b*r+i, true)
			hz.Set(row, b*r+i+1, true)
			row++
		}
	}
	// X checks: all qubits of two adjacent blocks.
	hx := bits.NewMatrix(r-1, n)
	for b := 0; b < r-1; b++ {
		for i := 0; i < 2*r; i++ {
			hx.Set(b, b*r+i, true)
		}
	}
	return MustNewCSS(fmt.Sprintf("Shor[[%d,1,%d]]", n, r), hz, hx)
}

// FiveQubit returns the non-CSS [[5,1,3]] code of Preskill §4.2
// (refs. 36–37), the smallest code correcting an arbitrary single error.
func FiveQubit() *Code {
	gens := []pauli.Pauli{
		pauli.MustFromString("XZZXI"),
		pauli.MustFromString("IXZZX"),
		pauli.MustFromString("XIXZZ"),
		pauli.MustFromString("ZXIXZ"),
	}
	logX := []pauli.Pauli{pauli.MustFromString("XXXXX")}
	logZ := []pauli.Pauli{pauli.MustFromString("ZZZZZ")}
	return MustNew("Five[[5,1,3]]", gens, logX, logZ)
}
