package code

import (
	"ftqc/internal/bits"
	"ftqc/internal/classical"
	"ftqc/internal/pauli"
)

// Decoder maps syndromes to minimum-weight Pauli corrections, precomputed
// by enumerating errors in order of increasing weight — the quantum
// analogue of classical coset-leader decoding.
type Decoder struct {
	code  *Code
	table map[string]pauli.Pauli
}

// NewDecoder builds a lookup decoder covering all errors up to maxWeight.
// For a distance-d code, maxWeight = (d−1)/2 guarantees correction of
// every correctable error; larger values fill in best-effort corrections
// for heavier syndromes.
func NewDecoder(c *Code, maxWeight int) *Decoder {
	d := &Decoder{code: c, table: make(map[string]pauli.Pauli)}
	d.table[bits.NewVec(len(c.Generators)).Key()] = pauli.NewIdentity(c.N)
	for w := 1; w <= maxWeight; w++ {
		var rec func(p pauli.Pauli, start, left int)
		rec = func(p pauli.Pauli, start, left int) {
			if left == 0 {
				key := c.Syndrome(p).Key()
				if _, seen := d.table[key]; !seen {
					d.table[key] = p.Clone()
				}
				return
			}
			for i := start; i <= c.N-left; i++ {
				for _, s := range []pauli.Single{pauli.X, pauli.Y, pauli.Z} {
					p.SetAt(i, s)
					rec(p, i+1, left-1)
					p.SetAt(i, pauli.I)
				}
			}
		}
		rec(pauli.NewIdentity(c.N), 0, w)
	}
	return d
}

// Correction returns a recovery operator for the syndrome, with ok = false
// when the syndrome was not reachable within the decoder's weight bound
// (in which case the identity is returned).
func (d *Decoder) Correction(syndrome bits.Vec) (pauli.Pauli, bool) {
	p, ok := d.table[syndrome.Key()]
	if !ok {
		return pauli.NewIdentity(d.code.N), false
	}
	return p.Clone(), true
}

// DecodeError applies the decoder to an actual error pattern: it returns
// the residual operator error·correction and whether recovery succeeded
// (residual is a stabilizer element, not a logical error).
func (d *Decoder) DecodeError(err pauli.Pauli) (residual pauli.Pauli, success bool) {
	corr, _ := d.Correction(d.code.Syndrome(err))
	residual = err.Mul(corr)
	x, z := d.code.LogicalClass(residual)
	return residual, x.Zero() && z.Zero()
}

// Coverage returns the number of distinct syndromes in the table; for a
// code with n−k generators, full coverage is 2^(n−k).
func (d *Decoder) Coverage() int { return len(d.table) }

// CSSDecoder decodes the bit-flip and phase-flip sectors of a CSS code
// independently, exactly as Preskill §2 prescribes for the 7-qubit code
// ("performing the parity check in both bases completely diagnoses the
// error"). This is what makes an X error on one qubit plus a Z error on
// another simultaneously correctable.
type CSSDecoder struct {
	css  *CSS
	clsZ *classical.Code // decodes HZ syndromes (X-error supports)
	clsX *classical.Code // decodes HX syndromes (Z-error supports)
}

// NewCSSDecoder builds the sector decoders from the CSS parity checks.
func NewCSSDecoder(c *CSS) *CSSDecoder {
	return &CSSDecoder{
		css:  c,
		clsZ: classical.MustNew(c.Name+"/Z", c.HZ),
		clsX: classical.MustNew(c.Name+"/X", c.HX),
	}
}

// Correction returns the recovery operator for the two sector syndromes.
func (d *CSSDecoder) Correction(bitSyn, phaseSyn bits.Vec) pauli.Pauli {
	xs, _ := d.clsZ.DecodeError(bitSyn)
	zs, _ := d.clsX.DecodeError(phaseSyn)
	corr := pauli.NewIdentity(d.css.N)
	corr.XBits.Xor(xs)
	corr.ZBits.Xor(zs)
	return corr
}

// DecodeError decodes an actual Pauli error and reports whether the
// residual is trivial on the logical qubits.
func (d *CSSDecoder) DecodeError(err pauli.Pauli) (residual pauli.Pauli, success bool) {
	corr := d.Correction(d.css.BitFlipSyndrome(err.XBits), d.css.PhaseFlipSyndrome(err.ZBits))
	residual = err.Mul(corr)
	x, z := d.css.LogicalClass(residual)
	return residual, x.Zero() && z.Zero()
}
