// Package code implements quantum stabilizer codes in the formalism of
// Preskill §3.6 and §4.2: a code on n qubits with k logical qubits is the
// simultaneous +1 eigenspace of n−k commuting Pauli generators, with 2k
// logical operators X̂ᵢ, Ẑᵢ that commute with the stabilizer and obey the
// relations of Eq. (29). The package provides the CSS construction from
// classical codes, Steane's [[7,1,3]] code (Eq. 18), the [[5,1,3]] code,
// Shor's [[9,1,3]] code and its [[(2t+1)²,1,2t+1]] family, a lookup
// decoder, and logical-state preparation on a stabilizer tableau.
package code

import (
	"fmt"

	"ftqc/internal/bits"
	"ftqc/internal/pauli"
	"ftqc/internal/tableau"
)

// Code is an [[n, k]] stabilizer code.
type Code struct {
	Name       string
	N          int           // physical qubits per block
	K          int           // logical qubits per block
	Generators []pauli.Pauli // n−k stabilizer generators
	LogicalX   []pauli.Pauli // X̂ᵢ, i = 0..k-1
	LogicalZ   []pauli.Pauli // Ẑᵢ
}

// symplectic returns the (x|z) row vector of p as a 2n-bit vector.
func symplectic(p pauli.Pauli) bits.Vec {
	n := p.N()
	v := bits.NewVec(2 * n)
	for i := 0; i < n; i++ {
		v.Set(i, p.XBits.Get(i))
		v.Set(n+i, p.ZBits.Get(i))
	}
	return v
}

// New validates and constructs a stabilizer code.
func New(name string, gens, logX, logZ []pauli.Pauli) (*Code, error) {
	if len(gens) == 0 {
		return nil, fmt.Errorf("code %s: no generators", name)
	}
	n := gens[0].N()
	k := n - len(gens)
	if len(logX) != k || len(logZ) != k {
		return nil, fmt.Errorf("code %s: need %d logical X and Z operators, got %d/%d",
			name, k, len(logX), len(logZ))
	}
	for i, g := range gens {
		if g.N() != n {
			return nil, fmt.Errorf("code %s: generator %d acts on %d qubits, want %d", name, i, g.N(), n)
		}
		for j := i + 1; j < len(gens); j++ {
			if !g.Commutes(gens[j]) {
				return nil, fmt.Errorf("code %s: generators %d and %d anticommute", name, i, j)
			}
		}
	}
	// Independence: the symplectic rows must have full rank.
	m := bits.NewMatrix(len(gens), 2*n)
	for i, g := range gens {
		m.SetRow(i, symplectic(g))
	}
	if m.Rank() != len(gens) {
		return nil, fmt.Errorf("code %s: generators are dependent", name)
	}
	for i := 0; i < k; i++ {
		for j, g := range gens {
			if !logX[i].Commutes(g) || !logZ[i].Commutes(g) {
				return nil, fmt.Errorf("code %s: logical %d anticommutes with generator %d", name, i, j)
			}
		}
		for j := 0; j < k; j++ {
			wantAnti := i == j
			if logX[i].Commutes(logZ[j]) == wantAnti {
				return nil, fmt.Errorf("code %s: X̂%d/Ẑ%d commutation violates Eq. (29)", name, i, j)
			}
			if i < j && (!logX[i].Commutes(logX[j]) || !logZ[i].Commutes(logZ[j])) {
				return nil, fmt.Errorf("code %s: logical operators %d,%d of same type anticommute", name, i, j)
			}
		}
	}
	return &Code{Name: name, N: n, K: k, Generators: gens, LogicalX: logX, LogicalZ: logZ}, nil
}

// MustNew is New that panics on error, for known-good code tables.
func MustNew(name string, gens, logX, logZ []pauli.Pauli) *Code {
	c, err := New(name, gens, logX, logZ)
	if err != nil {
		panic(err)
	}
	return c
}

// Syndrome returns the error syndrome of a Pauli error: bit i is set when
// the error anticommutes with generator i (§3.6: "every error changes the
// eigenvalues of some of the generators").
func (c *Code) Syndrome(err pauli.Pauli) bits.Vec {
	s := bits.NewVec(len(c.Generators))
	for i, g := range c.Generators {
		if !err.Commutes(g) {
			s.Set(i, true)
		}
	}
	return s
}

// IsStabilizerElement reports whether p (up to phase) lies in the
// stabilizer group.
func (c *Code) IsStabilizerElement(p pauli.Pauli) bool {
	m := bits.NewMatrix(len(c.Generators), 2*c.N)
	for i, g := range c.Generators {
		m.SetRow(i, symplectic(g))
	}
	return m.InSpan(symplectic(p))
}

// LogicalClass classifies an undetectable error (trivial syndrome):
// xflips bit i is set when p acts as a logical X on encoded qubit i
// (it anticommutes with Ẑᵢ), zflips likewise against X̂ᵢ. A stabilizer
// element returns all-zero vectors.
func (c *Code) LogicalClass(p pauli.Pauli) (xflips, zflips bits.Vec) {
	xflips = bits.NewVec(c.K)
	zflips = bits.NewVec(c.K)
	for i := 0; i < c.K; i++ {
		if !p.Commutes(c.LogicalZ[i]) {
			xflips.Set(i, true)
		}
		if !p.Commutes(c.LogicalX[i]) {
			zflips.Set(i, true)
		}
	}
	return xflips, zflips
}

// IsLogicalError reports whether p has trivial syndrome but acts
// nontrivially on the encoded qubits.
func (c *Code) IsLogicalError(p pauli.Pauli) bool {
	if !c.Syndrome(p).Zero() {
		return false
	}
	x, z := c.LogicalClass(p)
	return !x.Zero() || !z.Zero()
}

// MinDistance searches for the minimum weight of a logical operator, up
// to maxWeight; it returns 0 if none was found within the bound.
// Exponential search — use only on small codes.
func (c *Code) MinDistance(maxWeight int) int {
	for w := 1; w <= maxWeight; w++ {
		if c.hasLogicalOfWeight(w) {
			return w
		}
	}
	return 0
}

func (c *Code) hasLogicalOfWeight(w int) bool {
	// Enumerate supports of size w and Pauli labels on them.
	found := false
	var rec func(p pauli.Pauli, start, left int)
	rec = func(p pauli.Pauli, start, left int) {
		if found {
			return
		}
		if left == 0 {
			if c.IsLogicalError(p) {
				found = true
			}
			return
		}
		for i := start; i <= c.N-left; i++ {
			for _, s := range []pauli.Single{pauli.X, pauli.Y, pauli.Z} {
				p.SetAt(i, s)
				rec(p, i+1, left-1)
				p.SetAt(i, pauli.I)
				if found {
					return
				}
			}
		}
	}
	rec(pauli.NewIdentity(c.N), 0, w)
	return found
}

// PrepareZero projects a tableau (of exactly N qubits) onto the encoded
// all-|0⟩ logical state with every stabilizer sign +1: it measures each
// generator and each logical Ẑ, then applies a single Pauli correction
// that flips exactly the generators and logical Ẑs that read −1.
func (c *Code) PrepareZero(tb *tableau.Tableau) {
	c.prepareEigenstate(tb, c.LogicalZ)
}

// PreparePlus is PrepareZero in the Hadamard-rotated logical basis: the
// logical qubits end in |+⟩ (the +1 eigenstate of X̂).
func (c *Code) PreparePlus(tb *tableau.Tableau) {
	c.prepareEigenstate(tb, c.LogicalX)
}

func (c *Code) prepareEigenstate(tb *tableau.Tableau, logicals []pauli.Pauli) {
	if tb.N() != c.N {
		panic("code: tableau size mismatch")
	}
	ops := make([]pauli.Pauli, 0, len(c.Generators)+len(logicals))
	ops = append(ops, c.Generators...)
	ops = append(ops, logicals...)
	want := bits.NewVec(len(ops))
	for i, op := range ops {
		out, _ := tb.MeasurePauli(op)
		want.Set(i, out) // need to flip the ops that measured -1
	}
	// Find a Pauli correction whose commutation pattern with ops matches
	// `want`: unknowns are the (x|z) bits of the correction; the
	// symplectic product with op i must equal want_i.
	m := bits.NewMatrix(len(ops), 2*c.N)
	for i, op := range ops {
		// symplectic product <c, op> = c_x·op_z + c_z·op_x; row i holds
		// (op_z | op_x) so that m·(c_x|c_z) gives the product.
		row := bits.NewVec(2 * c.N)
		for q := 0; q < c.N; q++ {
			row.Set(q, op.ZBits.Get(q))
			row.Set(c.N+q, op.XBits.Get(q))
		}
		m.SetRow(i, row)
	}
	sol, ok := m.Solve(want)
	if !ok {
		panic("code: no Pauli correction exists (operators dependent?)")
	}
	corr := pauli.NewIdentity(c.N)
	for q := 0; q < c.N; q++ {
		corr.XBits.Set(q, sol.Get(q))
		corr.ZBits.Set(q, sol.Get(c.N+q))
	}
	tb.ApplyPauli(corr)
}
