package code

import (
	"math/rand/v2"
	"testing"

	"ftqc/internal/pauli"
	"ftqc/internal/tableau"
)

func TestSteaneParameters(t *testing.T) {
	c := Steane()
	if c.N != 7 || c.K != 1 {
		t.Fatalf("got [[%d,%d]]", c.N, c.K)
	}
	if len(c.Generators) != 6 {
		t.Fatalf("generator count %d", len(c.Generators))
	}
	if d := c.MinDistance(3); d != 3 {
		t.Fatalf("distance: got %d, want 3", d)
	}
}

func TestSteaneGeneratorsMatchEq18(t *testing.T) {
	// The generators must span the same group as Preskill Eq. (18).
	want := []pauli.Pauli{
		pauli.MustFromString("IIIZZZZ"),
		pauli.MustFromString("IZZIIZZ"),
		pauli.MustFromString("ZIZIZIZ"),
		pauli.MustFromString("IIIXXXX"),
		pauli.MustFromString("IXXIIXX"),
		pauli.MustFromString("XIXIXIX"),
	}
	c := Steane()
	for _, w := range want {
		if !c.IsStabilizerElement(w) {
			t.Fatalf("Eq. (18) generator %v not in stabilizer group", w)
		}
	}
}

func TestSteaneCorrectsAllSingleErrors(t *testing.T) {
	c := Steane()
	dec := NewDecoder(c.Code, 1)
	for q := 0; q < 7; q++ {
		for _, s := range []pauli.Single{pauli.X, pauli.Y, pauli.Z} {
			err := pauli.SingleQubit(7, q, s)
			if _, ok := dec.DecodeError(err); !ok {
				t.Fatalf("failed to correct %v on qubit %d", s, q)
			}
		}
	}
}

func TestSteaneDoubleBitFlipIsLogicalX(t *testing.T) {
	// Preskill Eq. (12): two bit flips in a block misdecode into a logical
	// bit flip. Check every pair.
	c := Steane()
	dec := NewDecoder(c.Code, 1)
	for a := 0; a < 7; a++ {
		for b := a + 1; b < 7; b++ {
			err := pauli.NewIdentity(7)
			err.SetAt(a, pauli.X)
			err.SetAt(b, pauli.X)
			residual, ok := dec.DecodeError(err)
			if ok {
				t.Fatalf("double flip (%d,%d) unexpectedly corrected", a, b)
			}
			x, z := c.LogicalClass(residual)
			if !x.Get(0) || z.Get(0) {
				t.Fatalf("double flip (%d,%d): residual %v is not a pure logical X", a, b, residual)
			}
		}
	}
}

func TestSteaneMixedPairRecoverable(t *testing.T) {
	// §2: one phase error plus one bit-flip error on different qubits is
	// still corrected, since the two sectors decode independently.
	c := Steane()
	dec := NewCSSDecoder(c)
	for a := 0; a < 7; a++ {
		for b := 0; b < 7; b++ {
			if a == b {
				continue
			}
			err := pauli.NewIdentity(7)
			err.SetAt(a, pauli.X)
			err.SetAt(b, pauli.Z)
			if _, ok := dec.DecodeError(err); !ok {
				t.Fatalf("X@%d,Z@%d should be correctable", a, b)
			}
		}
	}
}

func TestFiveQubitCode(t *testing.T) {
	c := FiveQubit()
	if c.N != 5 || c.K != 1 {
		t.Fatalf("got [[%d,%d]]", c.N, c.K)
	}
	if d := c.MinDistance(3); d != 3 {
		t.Fatalf("distance: got %d want 3", d)
	}
	dec := NewDecoder(c, 1)
	if dec.Coverage() != 16 {
		t.Fatalf("five-qubit decoder must cover all 16 syndromes, got %d", dec.Coverage())
	}
	for q := 0; q < 5; q++ {
		for _, s := range []pauli.Single{pauli.X, pauli.Y, pauli.Z} {
			if _, ok := dec.DecodeError(pauli.SingleQubit(5, q, s)); !ok {
				t.Fatalf("five-qubit failed on %v@%d", s, q)
			}
		}
	}
}

func TestShor9(t *testing.T) {
	c := Shor9()
	if c.N != 9 || c.K != 1 {
		t.Fatalf("got [[%d,%d]]", c.N, c.K)
	}
	if d := c.MinDistance(3); d != 3 {
		t.Fatalf("distance: got %d want 3", d)
	}
	dec := NewDecoder(c.Code, 1)
	for q := 0; q < 9; q++ {
		for _, s := range []pauli.Single{pauli.X, pauli.Y, pauli.Z} {
			if _, ok := dec.DecodeError(pauli.SingleQubit(9, q, s)); !ok {
				t.Fatalf("Shor9 failed on %v@%d", s, q)
			}
		}
	}
}

func TestShorFamilyParameters(t *testing.T) {
	for _, tt := range []struct{ t, n, d int }{{1, 9, 3}, {2, 25, 5}} {
		c := ShorFamily(tt.t)
		if c.N != tt.n || c.K != 1 {
			t.Fatalf("t=%d: got [[%d,%d]]", tt.t, c.N, c.K)
		}
		if tt.n <= 9 {
			if d := c.MinDistance(tt.d); d != tt.d {
				t.Fatalf("t=%d: distance %d want %d", tt.t, d, tt.d)
			}
		}
	}
}

func TestShorFamilyCorrectsTErrors(t *testing.T) {
	// [[25,1,5]] must correct any 2 independent errors.
	c := ShorFamily(2)
	dec := NewDecoder(c.Code, 2)
	rng := rand.New(rand.NewPCG(51, 52))
	for trial := 0; trial < 200; trial++ {
		a, b := rng.IntN(25), rng.IntN(25)
		if a == b {
			continue
		}
		err := pauli.NewIdentity(25)
		err.SetAt(a, pauli.Single(1+rng.IntN(3)))
		err.SetAt(b, pauli.Single(1+rng.IntN(3)))
		if _, ok := dec.DecodeError(err); !ok {
			t.Fatalf("[[25,1,5]] failed on weight-2 error %v", err)
		}
	}
}

func TestPrepareZeroStabilizesCode(t *testing.T) {
	rng := rand.New(rand.NewPCG(61, 62))
	for _, c := range []*Code{Steane().Code, FiveQubit(), Shor9().Code} {
		tb := tableau.New(c.N, rng)
		c.PrepareZero(tb)
		for i, g := range c.Generators {
			out, det := tb.Clone().MeasurePauli(g)
			if !det || out {
				t.Fatalf("%s: generator %d not +1 after PrepareZero", c.Name, i)
			}
		}
		out, det := tb.Clone().MeasurePauli(c.LogicalZ[0])
		if !det || out {
			t.Fatalf("%s: logical Z not +1 after PrepareZero", c.Name)
		}
	}
}

func TestPreparePlus(t *testing.T) {
	rng := rand.New(rand.NewPCG(63, 64))
	c := Steane()
	tb := tableau.New(7, rng)
	c.PreparePlus(tb)
	out, det := tb.MeasurePauli(c.LogicalX[0])
	if !det || out {
		t.Fatal("logical X not +1 after PreparePlus")
	}
}

func TestLogicalOperationsOnTableau(t *testing.T) {
	// Apply logical X to |0̄⟩ and verify Ẑ reads −1 (it is now |1̄⟩).
	rng := rand.New(rand.NewPCG(65, 66))
	c := Steane()
	tb := tableau.New(7, rng)
	c.PrepareZero(tb)
	tb.ApplyPauli(c.LogicalX[0])
	out, det := tb.MeasurePauli(c.LogicalZ[0])
	if !det || !out {
		t.Fatal("logical X did not flip the encoded qubit")
	}
}

func TestSyndromeLinearInError(t *testing.T) {
	c := Steane()
	rng := rand.New(rand.NewPCG(67, 68))
	for trial := 0; trial < 100; trial++ {
		a := randomPauliN(rng, 7)
		b := randomPauliN(rng, 7)
		sa, sb := c.Syndrome(a), c.Syndrome(b)
		sum := c.Syndrome(a.Mul(b))
		sa.Xor(sb)
		if !sum.Equal(sa) {
			t.Fatal("syndrome not linear")
		}
	}
}

func randomPauliN(rng *rand.Rand, n int) pauli.Pauli {
	p := pauli.NewIdentity(n)
	for i := 0; i < n; i++ {
		p.SetAt(i, pauli.Single(rng.IntN(4)))
	}
	return p
}

func TestNewRejectsBadCodes(t *testing.T) {
	// Anticommuting generators.
	if _, err := New("bad", []pauli.Pauli{
		pauli.MustFromString("XI"),
		pauli.MustFromString("ZI"),
	}, nil, nil); err == nil {
		t.Fatal("expected rejection of anticommuting generators")
	}
	// Dependent generators.
	if _, err := New("bad", []pauli.Pauli{
		pauli.MustFromString("XX"),
		pauli.MustFromString("XX"),
	}, nil, nil); err == nil {
		t.Fatal("expected rejection of dependent generators")
	}
}

func TestDecoderCoverageSteane(t *testing.T) {
	dec := NewDecoder(Steane().Code, 3)
	if dec.Coverage() != 64 {
		t.Fatalf("weight-3 Steane decoder covers %d/64 syndromes", dec.Coverage())
	}
}

func TestStabilizerElementDetection(t *testing.T) {
	c := Steane()
	g := c.Generators[0].Mul(c.Generators[3])
	if !c.IsStabilizerElement(g) {
		t.Fatal("product of generators not recognized as stabilizer element")
	}
	if c.IsStabilizerElement(c.LogicalX[0]) {
		t.Fatal("logical X misidentified as stabilizer element")
	}
}
