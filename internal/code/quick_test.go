package code

import (
	mrand "math/rand"
	"testing"
	"testing/quick"

	"ftqc/internal/pauli"
)

// Property tests (testing/quick) on the core code invariants.

func TestQuickSyndromeDependsOnlyOnErrorCoset(t *testing.T) {
	// error·stabilizer has the same syndrome as error.
	c := Steane()
	f := func(errBits uint16, genMask uint8) bool {
		e := pauli.NewIdentity(7)
		for i := 0; i < 7; i++ {
			e.SetAt(i, pauli.Single(errBits>>(2*uint(i))&3))
		}
		s := e.Clone()
		for i, g := range c.Generators {
			if genMask>>uint(i)&1 == 1 {
				s = s.Mul(g)
			}
		}
		return c.Syndrome(e).Equal(c.Syndrome(s))
	}
	cfg := quickCfg(201)
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLogicalClassAdditive(t *testing.T) {
	// The logical classification is a homomorphism: class(a·b) =
	// class(a) XOR class(b).
	c := Steane()
	f := func(aBits, bBits uint16) bool {
		a := pauli.NewIdentity(7)
		b := pauli.NewIdentity(7)
		for i := 0; i < 7; i++ {
			a.SetAt(i, pauli.Single(aBits>>(2*uint(i))&3))
			b.SetAt(i, pauli.Single(bBits>>(2*uint(i))&3))
		}
		ax, az := c.LogicalClass(a)
		bx, bz := c.LogicalClass(b)
		sx, sz := c.LogicalClass(a.Mul(b))
		ax.Xor(bx)
		az.Xor(bz)
		return sx.Equal(ax) && sz.Equal(az)
	}
	cfg := quickCfg(201)
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDecoderFixedPoint(t *testing.T) {
	// Decoding the residual of a decode is a no-op: the residual has
	// trivial syndrome, so the decoder must return the identity.
	c := Steane()
	dec := NewCSSDecoder(c)
	f := func(errBits uint16) bool {
		e := pauli.NewIdentity(7)
		for i := 0; i < 7; i++ {
			e.SetAt(i, pauli.Single(errBits>>(2*uint(i))&3))
		}
		res, _ := dec.DecodeError(e)
		res2, _ := dec.DecodeError(res)
		return res2.EqualUpToPhase(res)
	}
	cfg := quickCfg(201)
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// quickCfg builds a reproducible testing/quick configuration.
func quickCfg(seed int64) *quick.Config {
	return &quick.Config{MaxCount: 300, Rand: mrand.New(mrand.NewSource(seed))}
}
