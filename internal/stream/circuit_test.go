package stream

import (
	"math"
	"math/rand/v2"
	"runtime"
	"testing"

	"ftqc/internal/bits"
	"ftqc/internal/frame"
	"ftqc/internal/noise"
	"ftqc/internal/spacetime"
	"ftqc/internal/toric"
)

// TestCircuitWindowShape: the circuit window carries the diagonal class
// with the documented id layout, grounding the newest layer's diagonals
// on the boundary node like the virtual verticals.
func TestCircuitWindowShape(t *testing.T) {
	const l, wdw, commit = 4, 5, 2
	const wh, wv, wd = 2, 1, 3
	w, err := NewCircuitWindow(l, wdw, commit, wh, wv, wd)
	if err != nil {
		t.Fatal(err)
	}
	nc, nq := l*l, 2*l*l
	if got, want := w.Graph().Edges(), wdw*(2*nq+nc); got != want {
		t.Fatalf("edge count %d, want %d", got, want)
	}
	for tl := 0; tl < wdw; tl++ {
		for e := 0; e < nq; e++ {
			id := w.diagOff + tl*nq + e
			a, b := w.Graph().Ends(id)
			if w.Graph().Weight(id) != wd {
				t.Fatalf("diagonal %d weight %d", id, w.Graph().Weight(id))
			}
			if a != tl*nc+int(w.diagX[e][0]) {
				t.Fatalf("diagonal %d lower end %d, want late reader %d@%d", id, a, w.diagX[e][0], tl)
			}
			if tl == wdw-1 {
				if b != w.nodes-1 {
					t.Fatalf("newest-layer diagonal %d must ground on the boundary, got %d", id, b)
				}
			} else if b != (tl+1)*nc+int(w.diagX[e][1]) {
				t.Fatalf("diagonal %d upper end %d, want early reader %d@%d", id, b, w.diagX[e][1], tl+1)
			}
		}
	}
}

// TestCircuitWindowGEVolumeBitIdentical is the satellite equivalence
// suite for the circuit model: when the window holds the whole stream
// (W ≥ T) the streaming decoder never slides, and draining the same
// circuit-level source must reproduce the whole-volume diagonal-edge
// batch decode bit for bit — same extraction circuit, same draw order,
// same union-find over the same graph.
func TestCircuitWindowGEVolumeBitIdentical(t *testing.T) {
	const lanes = 192
	for _, cfg := range []struct {
		l, rounds, window, commit int
		eps                       float64
	}{
		{3, 2, 2, 1, 0.01},
		{4, 4, 4, 2, 0.006},
		{4, 4, 7, 3, 0.01}, // oversized window
		{5, 3, 5, 1, 0.004},
	} {
		P := noise.Uniform(cfg.eps)
		wh, wv, wd := spacetime.WeightsCircuit(P, cfg.l, cfg.rounds)
		v := spacetime.CachedCircuitVolume(cfg.l, cfg.rounds, wh, wv, wd)
		fx1, fz1 := v.BatchMemoryFrom(
			spacetime.NewCircuitLayerSource(cfg.l, P, lanes, frame.NewAggregateSampler(951, 7)),
			toric.DecoderUnionFind)
		s := mustCircuitSession(t, cfg.l, cfg.window, cfg.commit, wh, wv, wd)
		fx2, fz2 := s.BatchMemoryFrom(
			spacetime.NewCircuitLayerSource(cfg.l, P, lanes, frame.NewAggregateSampler(951, 7)),
			cfg.rounds)
		s.Close()
		if !fx1.Equal(fx2) || !fz1.Equal(fz2) {
			t.Fatalf("L=%d T=%d W=%d: circuit windowed decode differs from whole-volume (X %d vs %d fails, Z %d vs %d)",
				cfg.l, cfg.rounds, cfg.window, fx1.Weight(), fx2.Weight(), fz1.Weight(), fz2.Weight())
		}
	}
}

// TestCircuitCommitQuickcheck randomizes window and commit sizes over
// genuinely sliding circuit-level streams, checking that repeat runs
// are bit-identical and that the committed correction cancels the
// accumulated error's syndrome exactly in both sectors — the streaming
// soundness property, now including cut diagonal chains.
func TestCircuitCommitQuickcheck(t *testing.T) {
	rng := rand.New(rand.NewPCG(953, 954))
	for trial := 0; trial < 8; trial++ {
		l := 3 + rng.IntN(3)
		rounds := 2 + rng.IntN(12)
		window := 2 + rng.IntN(6)
		commit := 1 + rng.IntN(window-1)
		eps := 0.002 + rng.Float64()*0.01
		lanes := 64 + rng.IntN(130)
		seed := rng.Uint64()
		P := noise.Uniform(eps)
		wh, wv, wd := spacetime.WeightsCircuit(P, l, window)

		run := func() (bits.Vec, bits.Vec) {
			s := mustCircuitSession(t, l, window, commit, wh, wv, wd)
			defer s.Close()
			return s.BatchMemoryFrom(spacetime.NewCircuitLayerSource(l, P, lanes, frame.NewAggregateSampler(seed, 3)), rounds)
		}
		fx1, fz1 := run()
		fx2, fz2 := run()
		if !fx1.Equal(fx2) || !fz1.Equal(fz2) {
			t.Fatalf("trial %d (L=%d T=%d W=%d C=%d): repeat run differs", trial, l, rounds, window, commit)
		}

		s := mustCircuitSession(t, l, window, commit, wh, wv, wd)
		src := spacetime.NewCircuitLayerSource(l, P, lanes, frame.NewAggregateSampler(seed, 4))
		d := s.NewDecoder(lanes)
		lat := toric.Cached(l)
		layerX := bits.NewVecs(lat.NumChecks(), lanes)
		layerZ := bits.NewVecs(lat.NumChecks(), lanes)
		for r := 0; r < rounds; r++ {
			src.NextLayers(layerX, layerZ)
			d.Push(layerX, layerZ)
		}
		src.CloseLayers(layerX, layerZ)
		d.Finish(layerX, layerZ)
		cumX, cumZ := src.ErrorPlanes()
		corrX, corrZ := d.Corrections()
		errv := bits.NewVec(lat.Qubits())
		for lane := 0; lane < lanes; lane += 1 + rng.IntN(7) {
			laneError(cumX, lane, errv)
			errv.Xor(corrX[lane])
			if len(lat.Syndrome(errv)) != 0 {
				t.Fatalf("trial %d lane %d: X residual carries syndrome", trial, lane)
			}
			laneError(cumZ, lane, errv)
			errv.Xor(corrZ[lane])
			if len(lat.StarSyndrome(errv)) != 0 {
				t.Fatalf("trial %d lane %d: Z residual carries syndrome", trial, lane)
			}
		}
		s.Close()
	}
}

// laneError gathers one lane's accumulated error chain from edge-major
// planes.
func laneError(planes []bits.Vec, lane int, errv bits.Vec) {
	errv.Clear()
	for e := range planes {
		if planes[e].Get(lane) {
			errv.Flip(e)
		}
	}
}

// TestCircuitMemoryDeterministicAndServiceInvariant: the streaming
// circuit Monte Carlo is a pure function of (samples, seed) — in
// particular the decoder.Service worker pool's size (set by GOMAXPROCS
// at service start) must not leak into the result.
func TestCircuitMemoryDeterministicAndServiceInvariant(t *testing.T) {
	run := func() Result {
		r, err := CircuitMemory(4, 10, noise.Uniform(0.006), 5, 2, 800, 957)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a := run()
	if b := run(); a != b {
		t.Fatalf("same seed, different results: %+v vs %+v", a, b)
	}
	old := runtime.GOMAXPROCS(1)
	serial := run() // one-worker services
	runtime.GOMAXPROCS(8)
	parallel := run() // eight-worker services
	runtime.GOMAXPROCS(old)
	if serial != parallel {
		t.Fatalf("result depends on service worker count: 1 → %+v, 8 → %+v", serial, parallel)
	}
}

// TestCircuitWindowedMatchesVolumeRates: a W = 2L sliding window over a
// longer circuit-level stream reproduces the whole-volume circuit
// failure rate within statistical error.
func TestCircuitWindowedMatchesVolumeRates(t *testing.T) {
	const samples = 4000
	for _, cfg := range []struct {
		l, rounds int
		eps       float64
	}{
		{4, 16, 0.005},
		{4, 12, 0.007},
	} {
		P := noise.Uniform(cfg.eps)
		w, c := DefaultWindow(cfg.l)
		st, err := CircuitMemory(cfg.l, cfg.rounds, P, w, c, samples, 959)
		if err != nil {
			t.Fatal(err)
		}
		vol := spacetime.CircuitMemory(cfg.l, cfg.rounds, P, toric.DecoderUnionFind, samples, 960)
		fs, fv := st.FailRate(), vol.FailRate()
		sigma := math.Sqrt(fs*(1-fs)/samples + fv*(1-fv)/samples)
		if diff := math.Abs(fs - fv); diff > 4*sigma+0.015 {
			t.Fatalf("L=%d T=%d eps=%v: windowed %.4f vs volume %.4f (diff %.4f > %.4f)",
				cfg.l, cfg.rounds, cfg.eps, fs, fv, diff, 4*sigma+0.015)
		}
	}
}
