package stream

import (
	"testing"

	"ftqc/internal/bits"
	"ftqc/internal/extract"
	"ftqc/internal/frame"
	"ftqc/internal/noise"
	"ftqc/internal/spacetime"
	"ftqc/internal/toric"
)

// TestWarmPushZeroAllocs pins the steady-state allocation contract: once
// a streaming decoder is warm (scratch pools grown, retention caches
// populated), Push — including the slides it triggers and the decode
// work behind them — performs zero heap allocations. A regression here
// means a per-slide allocation crept into the hot path.
func TestWarmPushZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the alloc pin runs in the uninstrumented suite")
	}
	const (
		l     = 8
		lanes = 16
		p     = 0.01
	)
	w, c := DefaultWindow(l)
	wh, wv := spacetime.Weights(p, p, l, w)
	s := mustSession(t, l, w, c, wh, wv)
	defer s.Close()
	d := s.NewDecoder(lanes)
	nc := toric.Cached(l).NumChecks()

	// Pre-sample a window's worth of layers so the measured loop does
	// not charge the decoder for the sampler's own behavior.
	src := spacetime.NewLayerSource(l, p, p, lanes, frame.NewAggregateSampler(941, 1))
	layers := make([][2][]bits.Vec, w)
	for i := range layers {
		lx, lz := bits.NewVecs(nc, lanes), bits.NewVecs(nc, lanes)
		src.NextLayers(lx, lz)
		layers[i] = [2][]bits.Vec{lx, lz}
	}
	next := 0
	pushCommit := func() {
		// One commit's worth of layers: exactly one slide per call once
		// the window is full.
		for i := 0; i < c; i++ {
			lay := layers[next%len(layers)]
			next++
			d.Push(lay[0], lay[1])
		}
	}
	slides := d.Slides()
	for next < 6*w { // warm: grow every pool and populate retention caches
		pushCommit()
	}
	if d.Slides() == slides {
		t.Fatal("warm-up performed no slides")
	}
	slides = d.Slides()
	const runs = 8
	avg := testing.AllocsPerRun(runs, pushCommit)
	if d.Slides() == slides {
		t.Fatal("measured loop performed no slides")
	}
	if avg != 0 {
		t.Fatalf("warm Push/slide allocates: %v allocs per %d-layer commit", avg, c)
	}
}

// TestWarmPushErasedZeroAllocs extends the pin to the erasure-aware
// circuit path: once warm, PushErased — plane copies, quiet-flag
// bookkeeping, the erased-lane from-scratch decodes and the canonical
// erased-list builds behind the slides it triggers — also performs zero
// heap allocations.
func TestWarmPushErasedZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the alloc pin runs in the uninstrumented suite")
	}
	const (
		l     = 6
		lanes = 16
	)
	P := noise.Uniform(0.008)
	P.Leak = 0.01
	w, c := DefaultWindow(l)
	wh, wv, wd := spacetime.WeightsCircuit(P, l, w)
	s := mustCircuitSession(t, l, w, c, wh, wv, wd)
	defer s.Close()
	d := s.NewDecoderOpts(lanes, spacetime.DecodeOptions{ErasureAware: true})
	lat := toric.Cached(l)
	nc, nq := lat.NumChecks(), lat.Qubits()

	src := extract.NewSourceErased(l, P, lanes, frame.NewAggregateSampler(943, 1))
	type round struct {
		layerX, layerZ, eraH, lostX, lostZ []bits.Vec
	}
	layers := make([]round, w)
	for i := range layers {
		layers[i] = round{
			layerX: bits.NewVecs(nc, lanes), layerZ: bits.NewVecs(nc, lanes),
			eraH: bits.NewVecs(nq, lanes), lostX: bits.NewVecs(nc, lanes), lostZ: bits.NewVecs(nc, lanes),
		}
		src.NextLayersErased(layers[i].layerX, layers[i].layerZ, layers[i].eraH, layers[i].lostX, layers[i].lostZ)
	}
	next := 0
	pushCommit := func() {
		for i := 0; i < c; i++ {
			lay := layers[next%len(layers)]
			next++
			d.PushErased(lay.layerX, lay.layerZ, lay.eraH, lay.lostX, lay.lostZ)
		}
	}
	slides := d.Slides()
	for next < 6*w {
		pushCommit()
	}
	if d.Slides() == slides {
		t.Fatal("warm-up performed no slides")
	}
	slides = d.Slides()
	const runs = 8
	avg := testing.AllocsPerRun(runs, pushCommit)
	if d.Slides() == slides {
		t.Fatal("measured loop performed no slides")
	}
	if avg != 0 {
		t.Fatalf("warm PushErased/slide allocates: %v allocs per %d-layer commit", avg, c)
	}
}
