package stream

import (
	"fmt"

	"ftqc/internal/bits"
	"ftqc/internal/decoder"
	"ftqc/internal/frame"
	"ftqc/internal/noise"
	"ftqc/internal/spacetime"
)

// Session owns the long-lived machinery of one streaming configuration:
// the window structure and the decoder.Service pool shared by every
// Decoder (and every Monte Carlo chunk) created from it. A session
// built by NewSession/NewCircuitSession owns a private pool and Close
// releases it; NewSessionOn/NewCircuitSessionOn graft the session onto
// an external multi-graph pool (the decode-server path, where one
// worker fleet serves many concurrent sessions) and Close leaves that
// pool alone.
type Session struct {
	win   *Window
	pool  *decoder.Service
	owned bool
}

// NewSession builds the window and starts a private decode pool (see
// NewWindow for the parameters; weights come from spacetime.Weights).
func NewSession(l, window, commit, wh, wv int) (*Session, error) {
	win, err := NewWindow(l, window, commit, wh, wv)
	if err != nil {
		return nil, err
	}
	return sessionOver(win, nil), nil
}

// NewCircuitSession is NewSession over a circuit-level (diagonal-edge)
// window; weights come from spacetime.WeightsCircuit.
func NewCircuitSession(l, window, commit, wh, wv, wd int) (*Session, error) {
	win, err := NewCircuitWindow(l, window, commit, wh, wv, wd)
	if err != nil {
		return nil, err
	}
	return sessionOver(win, nil), nil
}

// NewSessionOn is NewSession decoding on a shared external pool (built
// with decoder.NewPool). The session never closes the pool.
func NewSessionOn(pool *decoder.Service, l, window, commit, wh, wv int) (*Session, error) {
	win, err := NewWindow(l, window, commit, wh, wv)
	if err != nil {
		return nil, err
	}
	return sessionOver(win, pool), nil
}

// NewCircuitSessionOn is NewCircuitSession on a shared external pool.
func NewCircuitSessionOn(pool *decoder.Service, l, window, commit, wh, wv, wd int) (*Session, error) {
	win, err := NewCircuitWindow(l, window, commit, wh, wv, wd)
	if err != nil {
		return nil, err
	}
	return sessionOver(win, pool), nil
}

func sessionOver(win *Window, pool *decoder.Service) *Session {
	s := &Session{win: win, pool: pool}
	if pool == nil {
		s.pool = decoder.NewPool(0)
		s.owned = true
	}
	return s
}

// Window returns the session's window structure.
func (s *Session) Window() *Window { return s.win }

// Pool returns the decode pool the session submits to.
func (s *Session) Pool() *decoder.Service { return s.pool }

// Close shuts the decode pool down if the session owns it; sessions on
// a shared pool leave it running for their siblings.
func (s *Session) Close() {
	if s.owned {
		s.pool.Close()
	}
}

// Decoder consumes one batch of lanes' difference layers round by round
// and maintains, per lane, a sliding window of the most recent layers,
// the carry defects cut at the last commit, and the running committed
// Pauli frame. All buffers are rings sized by the window — the resident
// footprint is O(L²·W) bits per lane however many rounds stream past.
type Decoder struct {
	s     *Session
	lanes int

	base     int // absolute index of the oldest buffered layer (= rounds committed)
	filled   int // buffered layers
	head     int // ring slot of the oldest buffered layer
	slides   int
	defects  uint64 // defects observed across both sectors (window decodes + Finish)
	finished bool
	err      error // terminal submission failure (shared pool closed underneath us)

	ringX, ringZ   []bits.Vec // W·nc check-major layer planes, ring over slots
	carryX, carryZ []bits.Vec // per-lane cut defects at the base layer (nc bits)
	corrX, corrZ   []bits.Vec // per-lane running committed corrections (nq bits)

	// Slide scratch, persistent so steady state allocates nothing.
	ordered          []bits.Vec // ring view in logical layer order
	synX, synZ       []bits.Vec // per-lane window syndromes (W·nc bits)
	shotsX, shotsZ   []decoder.Shot
	defbufX, defbufZ [][]int
}

// NewDecoder returns a streaming decoder for `lanes` parallel shots,
// drawing on the session's decode pool.
func (s *Session) NewDecoder(lanes int) *Decoder {
	w := s.win
	d := &Decoder{
		s:       s,
		lanes:   lanes,
		ringX:   bits.NewVecs(w.W*w.nc, lanes),
		ringZ:   bits.NewVecs(w.W*w.nc, lanes),
		carryX:  bits.NewVecs(lanes, w.nc),
		carryZ:  bits.NewVecs(lanes, w.nc),
		corrX:   bits.NewVecs(lanes, w.nq),
		corrZ:   bits.NewVecs(lanes, w.nq),
		ordered: make([]bits.Vec, w.W*w.nc),
		synX:    bits.NewVecs(lanes, w.W*w.nc),
		synZ:    bits.NewVecs(lanes, w.W*w.nc),
		shotsX:  make([]decoder.Shot, lanes),
		shotsZ:  make([]decoder.Shot, lanes),
		defbufX: make([][]int, lanes),
		defbufZ: make([][]int, lanes),
	}
	return d
}

// Rounds returns how many noisy rounds the decoder has ingested.
func (d *Decoder) Rounds() int { return d.base + d.filled }

// Committed returns how many rounds have been committed into the
// running frames (after a successful Finish, every ingested round).
func (d *Decoder) Committed() int { return d.base }

// Filled returns how many rounds are buffered but not yet committed.
func (d *Decoder) Filled() int { return d.filled }

// Slides returns how many window slides (open-window decodes) have run.
func (d *Decoder) Slides() int { return d.slides }

// DefectsObserved returns the total defect count fed to the decoder so
// far, summed over both sectors and all lanes — the observability
// signal behind adaptive window control (density = defects per
// detector per round per lane).
func (d *Decoder) DefectsObserved() uint64 { return d.defects }

// Lanes returns the decoder's lane count.
func (d *Decoder) Lanes() int { return d.lanes }

// Err reports a terminal pipeline failure: the shared decode pool was
// closed underneath a slide. Push and Finish become no-ops once it is
// set; the committed frames remain valid up to Committed() rounds.
func (d *Decoder) Err() error { return d.err }

// Push ingests one round's difference layers (check-major, one vector
// of lane bits per check, as emitted by spacetime.LayerSource). When
// the window is full the oldest Commit rounds are decoded and
// committed first.
func (d *Decoder) Push(layerX, layerZ []bits.Vec) {
	w := d.s.win
	if d.err != nil {
		return
	}
	if d.finished {
		panic("stream: Push after Finish")
	}
	if len(layerX) != w.nc || len(layerZ) != w.nc {
		panic("stream: layer plane count mismatch")
	}
	if d.filled == w.W {
		if d.slide(); d.err != nil {
			return
		}
	}
	slot := d.head + d.filled
	if slot >= w.W {
		slot -= w.W
	}
	for c := 0; c < w.nc; c++ {
		d.ringX[slot*w.nc+c].CopyFrom(layerX[c])
		d.ringZ[slot*w.nc+c].CopyFrom(layerZ[c])
	}
	d.filled++
}

// slide decodes the full window in both sectors over the open-window
// graphs, commits the correction below the commit boundary into the
// running frames, records the cut defects as the next window's carry,
// and advances the ring by Commit layers.
func (d *Decoder) slide() {
	w := d.s.win
	d.pivot(d.ringX, d.synX, d.carryX)
	d.pivot(d.ringZ, d.synZ, d.carryZ)
	for lane := 0; lane < d.lanes; lane++ {
		d.defbufX[lane] = d.synX[lane].AppendSupport(d.defbufX[lane][:0])
		d.shotsX[lane] = decoder.Shot{Defects: d.defbufX[lane]}
		d.defbufZ[lane] = d.synZ[lane].AppendSupport(d.defbufZ[lane][:0])
		d.shotsZ[lane] = decoder.Shot{Defects: d.defbufZ[lane]}
		d.defects += uint64(len(d.defbufX[lane]) + len(d.defbufZ[lane]))
	}
	bX, err := d.s.pool.SubmitOn(w.graphX, d.shotsX)
	if err != nil {
		d.err = err
		return
	}
	bZ, err := d.s.pool.SubmitOn(w.graphZ, d.shotsZ)
	if err != nil {
		bX.Wait()
		d.err = err
		return
	}
	outX := bX.Wait()
	outZ := bZ.Wait()
	for lane := 0; lane < d.lanes; lane++ {
		d.commitLane(outX[lane], d.corrX[lane], d.carryX[lane], w.diagX)
		d.commitLane(outZ[lane], d.corrZ[lane], d.carryZ[lane], w.diagZ)
	}
	d.head += w.Commit
	if d.head >= w.W {
		d.head -= w.W
	}
	d.filled -= w.Commit
	d.base += w.Commit
	d.slides++
}

// orderedLayers appends views of the first `layers` buffered ring
// layers (oldest first) to the reusable ordered slice.
func (d *Decoder) orderedLayers(ring []bits.Vec, layers int) []bits.Vec {
	w := d.s.win
	ordered := d.ordered[:0]
	for t := 0; t < layers; t++ {
		slot := d.head + t
		if slot >= w.W {
			slot -= w.W
		}
		ordered = append(ordered, ring[slot*w.nc:(slot+1)*w.nc]...)
	}
	return ordered
}

// pivot transposes the full buffered window (plus the carry at the
// base layer) into per-lane syndrome vectors.
func (d *Decoder) pivot(ring, syn, carry []bits.Vec) {
	w := d.s.win
	bits.TransposePlanes(syn, d.orderedLayers(ring, w.W))
	// The carry defects live at the base (first) layer, whose bits are
	// word-aligned at the front of every lane vector.
	for lane := 0; lane < d.lanes; lane++ {
		cv := carry[lane]
		sv := syn[lane]
		for i := 0; i < cv.Words(); i++ {
			sv.XorWord(i, cv.Word(i))
		}
	}
}

// commitLane folds one lane's open-window correction into its running
// frame: horizontal edges below the commit boundary flip their data
// qubit; a vertical edge crossing the boundary cuts its chain there,
// flipping the carry defect at the boundary layer. A diagonal edge
// spanning the boundary (lower endpoint at layer Commit−1) is a data
// error whose late observation is already committed: its data qubit
// flips now and the severed upper endpoint — the early reader's check
// at the carry layer — becomes the carry defect, exactly like a cut
// vertical chain. Everything at or above the boundary (including every
// virtual boundary edge) is discarded — the next slide re-decodes it
// with more context.
func (d *Decoder) commitLane(corr []int32, frameVec, carry bits.Vec, diag [][2]int32) {
	w := d.s.win
	carry.Clear()
	for _, id := range corr {
		e := int(id)
		switch {
		case e < w.horiz:
			if e/w.nq < w.Commit {
				frameVec.Flip(e % w.nq)
			}
		case e < w.diagOff:
			if t := (e - w.horiz) / w.nc; t == w.Commit-1 {
				carry.Flip((e - w.horiz) % w.nc)
			}
		default:
			de := e - w.diagOff
			switch t := de / w.nq; {
			case t+1 < w.Commit:
				frameVec.Flip(de % w.nq)
			case t == w.Commit-1:
				frameVec.Flip(de % w.nq)
				carry.Flip(int(diag[de%w.nq][1]))
			}
		}
	}
}

// Finish ingests the closing perfect-round difference layers and
// decodes the remaining buffer as an ordinary closed volume (height =
// buffered rounds), committing everything into the frames. When no
// slide has fired — W ≥ total rounds — this is exactly the whole-volume
// decode, bit for bit. The decoder cannot be pushed to afterwards.
func (d *Decoder) Finish(layerX, layerZ []bits.Vec) {
	w := d.s.win
	if d.err != nil {
		return
	}
	if d.finished {
		panic("stream: Finish called twice")
	}
	if d.filled == 0 {
		panic("stream: Finish before any round")
	}
	d.finished = true
	h := d.filled
	vol := spacetime.CachedCircuitVolume(w.L, h, w.WH, w.WV, w.WD)
	syn := bits.NewVecs(d.lanes, (h+1)*w.nc)
	bits.TransposePlanes(syn, append(d.orderedLayers(d.ringX, h), layerX...))
	d.finishSector(syn, vol, vol.Graph(), d.carryX, d.corrX)
	bits.TransposePlanes(syn, append(d.orderedLayers(d.ringZ, h), layerZ...))
	d.finishSector(syn, vol, vol.DualGraph(), d.carryZ, d.corrZ)
	d.base += h
	d.filled = 0
}

// finishSector decodes every lane's closing volume serially (chunk
// fan-out supplies the outer parallelism) and commits the whole
// correction.
func (d *Decoder) finishSector(syn []bits.Vec, vol *spacetime.Volume, g *decoder.Graph, carry, corr []bits.Vec) {
	uf := decoder.NewUnionFind(g)
	var defects []int
	for lane := 0; lane < d.lanes; lane++ {
		cv := carry[lane]
		sv := syn[lane]
		for i := 0; i < cv.Words(); i++ {
			sv.XorWord(i, cv.Word(i))
		}
		defects = sv.AppendSupport(defects[:0])
		d.defects += uint64(len(defects))
		if len(defects) == 0 {
			continue
		}
		cl := corr[lane]
		uf.Decode(defects, func(e int) {
			if q, ok := vol.ProjectEdge(e); ok {
				cl.Flip(q)
			}
		})
	}
}

// Rewindow transplants the decoder's live state onto a session with a
// different window shape over the same lattice — the adaptive-window
// primitive: a server that sees the defect density move can widen the
// window for accuracy or shrink it for latency mid-stream without
// losing the committed frames, the carry, or the buffered rounds. The
// receiver is dead afterwards; continue on the returned decoder, whose
// Rounds/Committed counters carry on from the old one. Both sessions
// must share L and the same model class (diagonal or not). The
// buffered layers are re-pushed through the new window, so a shrink
// may commit (slide) during the transfer.
func (d *Decoder) Rewindow(ns *Session) (*Decoder, error) {
	if d.err != nil {
		return nil, d.err
	}
	if d.finished {
		return nil, fmt.Errorf("stream: cannot rewindow a finished decoder")
	}
	w, nw := d.s.win, ns.win
	if nw.L != w.L {
		return nil, fmt.Errorf("stream: rewindow across lattice sizes (L=%d -> L=%d)", w.L, nw.L)
	}
	if (nw.WD > 0) != (w.WD > 0) {
		return nil, fmt.Errorf("stream: rewindow across decoding models (diagonal edges %v -> %v)", w.WD > 0, nw.WD > 0)
	}
	nd := ns.NewDecoder(d.lanes)
	nd.base = d.base
	nd.slides = d.slides
	nd.defects = d.defects
	for lane := 0; lane < d.lanes; lane++ {
		nd.carryX[lane].CopyFrom(d.carryX[lane])
		nd.carryZ[lane].CopyFrom(d.carryZ[lane])
		nd.corrX[lane].CopyFrom(d.corrX[lane])
		nd.corrZ[lane].CopyFrom(d.corrZ[lane])
	}
	for t := 0; t < d.filled; t++ {
		slot := d.head + t
		if slot >= w.W {
			slot -= w.W
		}
		nd.Push(d.ringX[slot*w.nc:(slot+1)*w.nc], d.ringZ[slot*w.nc:(slot+1)*w.nc])
	}
	if nd.err != nil {
		return nil, nd.err
	}
	d.finished = true
	return nd, nil
}

// Corrections returns the per-lane committed correction frames of the
// two sectors (valid any time; complete after Finish).
func (d *Decoder) Corrections() (x, z []bits.Vec) { return d.corrX, d.corrZ }

// FootprintBytes sums the decoder's resident buffers — the number that
// must stay flat as rounds stream past (the constant-memory acceptance
// criterion, asserted in the tests and reported by the benchmarks).
func (d *Decoder) FootprintBytes() int {
	vecs := func(vs []bits.Vec) int {
		n := 0
		for _, v := range vs {
			n += v.Words() * 8
		}
		return n
	}
	n := vecs(d.ringX) + vecs(d.ringZ) + vecs(d.carryX) + vecs(d.carryZ) +
		vecs(d.corrX) + vecs(d.corrZ) + vecs(d.synX) + vecs(d.synZ)
	n += cap(d.ordered) * 24
	for lane := 0; lane < d.lanes; lane++ {
		n += (cap(d.defbufX[lane]) + cap(d.defbufZ[lane])) * 8
	}
	return n
}

// BatchMemory runs `lanes` streaming shots of the noisy-extraction
// memory over this session's window: a spacetime.LayerSource emits
// difference layers round by round (the same draw order as the
// whole-volume batch), the sliding window commits as it goes, and one
// perfect closing round settles the tail. Returns the per-lane logical
// failure masks of the two sectors.
func (s *Session) BatchMemory(rounds int, p, q float64, lanes int, smp frame.Sampler) (failX, failZ bits.Vec) {
	return s.BatchMemoryFrom(spacetime.NewLayerSource(s.win.L, p, q, lanes, smp), rounds)
}

// BatchMemoryFrom is BatchMemory draining an arbitrary layer feed — the
// phenomenological LayerSource and the circuit-level CircuitLayerSource
// stream through the same window machinery. The feed must be fresh.
func (s *Session) BatchMemoryFrom(src spacetime.LayerFeed, rounds int) (failX, failZ bits.Vec) {
	w := s.win
	if src.Rounds() != 0 {
		panic("stream: layer feed already drained")
	}
	if src.L() != w.L {
		panic("stream: layer feed lattice size does not match the window")
	}
	lanes := src.Lanes()
	d := s.NewDecoder(lanes)
	layerX := bits.NewVecs(w.nc, lanes)
	layerZ := bits.NewVecs(w.nc, lanes)
	for t := 0; t < rounds; t++ {
		src.NextLayers(layerX, layerZ)
		d.Push(layerX, layerZ)
	}
	src.CloseLayers(layerX, layerZ)
	d.Finish(layerX, layerZ)
	if err := d.Err(); err != nil {
		// The Monte Carlo paths own their pool, so a mid-run closure is a
		// caller bug, not an operating condition.
		panic(err)
	}
	return s.failureMasks(src, d)
}

// failureMasks compares the winding parities of the accumulated error
// chains against the committed correction frames. The total correction
// cancels every defect, so the residual is always a closed cycle and
// the parities decide failure — the same homology test as the
// whole-volume pipeline.
func (s *Session) failureMasks(src spacetime.LayerFeed, d *Decoder) (failX, failZ bits.Vec) {
	lanes := d.lanes
	lat := s.win.lat
	pX1 := bits.NewVec(lanes)
	pX2 := bits.NewVec(lanes)
	pZ1 := bits.NewVec(lanes)
	pZ2 := bits.NewVec(lanes)
	src.Windings(pX1, pX2, pZ1, pZ2)
	failX = bits.NewVec(lanes)
	failZ = bits.NewVec(lanes)
	for lane := 0; lane < lanes; lane++ {
		c1, c2 := lat.WindingParity(d.corrX[lane])
		if pX1.Get(lane) != c1 || pX2.Get(lane) != c2 {
			failX.Set(lane, true)
		}
		c1, c2 = lat.WindingParityDual(d.corrZ[lane])
		if pZ1.Get(lane) != c1 || pZ2.Get(lane) != c2 {
			failZ.Set(lane, true)
		}
	}
	return failX, failZ
}

// Result summarizes a streaming memory Monte Carlo run.
type Result struct {
	L, T           int
	Window, Commit int
	P, Q           float64
	Samples        int
	FailX          int // bit-flip (plaquette-sector) logical failures
	FailZ          int // phase-flip (star-sector) logical failures
	Failures       int // shots failing in either sector
}

// FailRate returns the either-sector logical failure probability.
func (r Result) FailRate() float64 { return float64(r.Failures) / float64(r.Samples) }

// FailRateX returns the bit-flip sector failure probability.
func (r Result) FailRateX() float64 { return float64(r.FailX) / float64(r.Samples) }

// FailRateZ returns the phase-flip sector failure probability.
func (r Result) FailRateZ() float64 { return float64(r.FailZ) / float64(r.Samples) }

// DefaultWindow returns the default window and commit sizes for
// distance L: W = 2L buffered rounds (enough context that windowed
// accuracy matches whole-volume decoding) with a half-window commit.
func DefaultWindow(l int) (window, commit int) { return 2 * l, l }

// Memory runs the streaming noisy-syndrome memory experiment: `rounds`
// noisy extraction rounds at data rate p and measurement rate q,
// decoded through a sliding window of `window` layers committing
// `commit` rounds per slide (pass 0, 0 for the DefaultWindow sizes),
// fanned out over the CPUs in deterministic seed-per-chunk batches
// that all share one long-lived decode pool. The result is a pure
// function of (samples, seed) — never of GOMAXPROCS. Invalid window
// shapes or horizons return a descriptive error.
func Memory(l, rounds int, p, q float64, window, commit, samples int, seed uint64) (Result, error) {
	window, commit = defaultedWindow(l, window, commit)
	if rounds < 1 {
		return Result{}, fmt.Errorf("stream: memory experiment needs at least one noisy round (got rounds=%d)", rounds)
	}
	wh, wv := spacetime.Weights(p, q, l, rounds)
	s, err := NewSession(l, window, commit, wh, wv)
	if err != nil {
		return Result{}, err
	}
	defer s.Close()
	fx, fz, fa := frame.CountSectorFailures(samples, seed, func(lanes int, smp frame.Sampler) (bits.Vec, bits.Vec) {
		return s.BatchMemory(rounds, p, q, lanes, smp)
	})
	return Result{L: l, T: rounds, Window: window, Commit: commit, P: p, Q: q,
		Samples: samples, FailX: fx, FailZ: fz, Failures: fa}, nil
}

// CircuitMemory runs the circuit-level noisy-extraction memory through
// the sliding window: extract.Source runs the full extraction circuit
// round by round (faults at every location of the model P), the
// diagonal-edge window decodes and commits as it goes. Pass 0, 0 for
// the DefaultWindow sizes. Weights come from spacetime.WeightsCircuit
// with the window as the decode horizon.
func CircuitMemory(l, rounds int, P noise.Params, window, commit, samples int, seed uint64) (Result, error) {
	window, commit = defaultedWindow(l, window, commit)
	if rounds < 1 {
		return Result{}, fmt.Errorf("stream: memory experiment needs at least one noisy round (got rounds=%d)", rounds)
	}
	wh, wv, wd := spacetime.WeightsCircuit(P, l, window)
	s, err := NewCircuitSession(l, window, commit, wh, wv, wd)
	if err != nil {
		return Result{}, err
	}
	defer s.Close()
	fx, fz, fa := frame.CountSectorFailures(samples, seed, func(lanes int, smp frame.Sampler) (bits.Vec, bits.Vec) {
		return s.BatchMemoryFrom(spacetime.NewCircuitLayerSource(l, P, lanes, smp), rounds)
	})
	return Result{L: l, T: rounds, Window: window, Commit: commit, P: P.Gate2, Q: P.Meas,
		Samples: samples, FailX: fx, FailZ: fz, Failures: fa}, nil
}

// defaultedWindow fills in the DefaultWindow sizes for zero values.
func defaultedWindow(l, window, commit int) (int, int) {
	if window <= 0 {
		window, _ = DefaultWindow(l)
	}
	if commit <= 0 {
		commit = window / 2
		if commit < 1 {
			commit = 1
		}
	}
	return window, commit
}

// ThresholdPoint is one p = q grid point of a streaming sustained
// sweep.
type ThresholdPoint struct {
	P            float64
	Small, Large Result
}

// SustainedThreshold sweeps p = q with T = 4L rounds through W = 2L
// windows (several slides per shot — genuine sustained operation) for
// two code distances and estimates where the failure curves cross.
// Returns NaN when the grid shows no crossing, plus the points.
func SustainedThreshold(l1, l2 int, grid []float64, samples int, seed uint64) (float64, []ThresholdPoint) {
	pts := make([]ThresholdPoint, len(grid))
	small := make([]float64, len(grid))
	large := make([]float64, len(grid))
	run := func(l int, p float64, seed uint64) Result {
		w, c := DefaultWindow(l)
		r, err := Memory(l, 4*l, p, p, w, c, samples, seed)
		if err != nil {
			// The sweep derives its own parameters; they cannot be invalid.
			panic(err)
		}
		return r
	}
	for i, p := range grid {
		pts[i] = ThresholdPoint{
			P:     p,
			Small: run(l1, p, seed+uint64(2*i)),
			Large: run(l2, p, seed+uint64(2*i+1)),
		}
		small[i] = pts[i].Small.FailRate()
		large[i] = pts[i].Large.FailRate()
	}
	return spacetime.CrossingEstimate(grid, small, large), pts
}
