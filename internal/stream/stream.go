package stream

import (
	"fmt"

	"ftqc/internal/bits"
	"ftqc/internal/decoder"
	"ftqc/internal/frame"
	"ftqc/internal/noise"
	"ftqc/internal/spacetime"
	"ftqc/internal/surface"
)

// Session owns the long-lived machinery of one streaming configuration:
// the window structure and the decoder.Service pool shared by every
// Decoder (and every Monte Carlo chunk) created from it. A session
// built by NewSession/NewCircuitSession owns a private pool and Close
// releases it; NewSessionOn/NewCircuitSessionOn graft the session onto
// an external multi-graph pool (the decode-server path, where one
// worker fleet serves many concurrent sessions) and Close leaves that
// pool alone.
type Session struct {
	win         *Window
	pool        *decoder.Service
	sub         Submitter
	owned       bool
	fromScratch bool
}

// Submitter dispatches a staged reusable batch of shots to the decode
// workers — the seam a multi-tenant server uses to interpose cross-
// session batch coalescing. *decoder.Service satisfies it directly; any
// implementation must deliver results bit-identical to the service's
// own ResubmitOn (the streaming determinism contract does not bend for
// scheduling).
type Submitter interface {
	ResubmitOn(g *decoder.Graph, b *decoder.Batch, shots []decoder.Shot) error
}

// SetIncremental sets the slide mode every future NewDecoder of this
// session starts in (incremental by default; see Decoder.SetIncremental).
func (s *Session) SetIncremental(on bool) { s.fromScratch = !on }

// SetSubmitter reroutes every future decode submission of this
// session's decoders through sub (nil restores the direct pool path).
// Set it before creating decoders; it must not change while any decoder
// built from the session is live.
func (s *Session) SetSubmitter(sub Submitter) {
	if sub == nil {
		s.sub = s.pool
		return
	}
	s.sub = sub
}

// NewSession builds the window and starts a private decode pool (see
// NewWindow for the parameters; weights come from spacetime.Weights).
func NewSession(l, window, commit, wh, wv int) (*Session, error) {
	win, err := NewWindow(l, window, commit, wh, wv)
	if err != nil {
		return nil, err
	}
	return sessionOver(win, nil), nil
}

// NewCircuitSession is NewSession over a circuit-level (diagonal-edge)
// window; weights come from spacetime.WeightsCircuit.
func NewCircuitSession(l, window, commit, wh, wv, wd int) (*Session, error) {
	win, err := NewCircuitWindow(l, window, commit, wh, wv, wd)
	if err != nil {
		return nil, err
	}
	return sessionOver(win, nil), nil
}

// NewCodeSession is NewSession over any surface.Code — open-boundary
// windows ground their spatial boundaries on the virtual node.
func NewCodeSession(code surface.Code, window, commit, wh, wv int) (*Session, error) {
	win, err := NewCodeWindow(code, window, commit, wh, wv)
	if err != nil {
		return nil, err
	}
	return sessionOver(win, nil), nil
}

// NewCodeCircuitSession is NewCircuitSession over any surface.Code.
func NewCodeCircuitSession(code surface.Code, window, commit, wh, wv, wd int) (*Session, error) {
	win, err := NewCodeCircuitWindow(code, window, commit, wh, wv, wd)
	if err != nil {
		return nil, err
	}
	return sessionOver(win, nil), nil
}

// NewSessionOn is NewSession decoding on a shared external pool (built
// with decoder.NewPool). The session never closes the pool.
func NewSessionOn(pool *decoder.Service, l, window, commit, wh, wv int) (*Session, error) {
	win, err := NewWindow(l, window, commit, wh, wv)
	if err != nil {
		return nil, err
	}
	return sessionOver(win, pool), nil
}

// NewCircuitSessionOn is NewCircuitSession on a shared external pool.
func NewCircuitSessionOn(pool *decoder.Service, l, window, commit, wh, wv, wd int) (*Session, error) {
	win, err := NewCircuitWindow(l, window, commit, wh, wv, wd)
	if err != nil {
		return nil, err
	}
	return sessionOver(win, pool), nil
}

// NewCodeSessionOn is NewCodeSession on a shared external pool.
func NewCodeSessionOn(pool *decoder.Service, code surface.Code, window, commit, wh, wv int) (*Session, error) {
	win, err := NewCodeWindow(code, window, commit, wh, wv)
	if err != nil {
		return nil, err
	}
	return sessionOver(win, pool), nil
}

// NewCodeCircuitSessionOn is NewCodeCircuitSession on a shared external
// pool.
func NewCodeCircuitSessionOn(pool *decoder.Service, code surface.Code, window, commit, wh, wv, wd int) (*Session, error) {
	win, err := NewCodeCircuitWindow(code, window, commit, wh, wv, wd)
	if err != nil {
		return nil, err
	}
	return sessionOver(win, pool), nil
}

func sessionOver(win *Window, pool *decoder.Service) *Session {
	s := &Session{win: win, pool: pool}
	if pool == nil {
		s.pool = decoder.NewPool(0)
		s.owned = true
	}
	s.sub = s.pool
	return s
}

// Window returns the session's window structure.
func (s *Session) Window() *Window { return s.win }

// Pool returns the decode pool the session submits to.
func (s *Session) Pool() *decoder.Service { return s.pool }

// Close shuts the decode pool down if the session owns it; sessions on
// a shared pool leave it running for their siblings.
func (s *Session) Close() {
	if s.owned {
		s.pool.Close()
	}
}

// sectorState is one sector's half of a streaming Decoder: the layer
// ring, the per-lane carries and committed frames, the slide scratch,
// and the incremental-slide cluster cache (the retained forest of the
// previous slide, already translated into the next window's
// coordinates). Everything here is persistent so the steady state
// allocates nothing.
type sectorState struct {
	ring  []bits.Vec // W·nc check-major layer planes, ring over slots
	carry []bits.Vec // per-lane cut defects at the base layer (nc bits)
	corr  []bits.Vec // per-lane running committed corrections (nq bits)
	syn   []bits.Vec // per-lane window syndromes (W·nc bits)
	quiet []bool     // per ring slot: every check plane empty across all lanes

	// Erasure side information of the sector (erasure-aware decoders
	// only): the ring of lost-ancilla planes pushed by PushErased, its
	// per-lane pivot, and the per-slot all-quiet flags.
	lostRing  []bits.Vec // W·nc check-major lost-measurement planes
	lostLane  []bits.Vec // per-lane lost planes in window layer order
	lostQuiet []bool     // per ring slot: no ancilla lost in any lane

	shots   []decoder.Shot
	defbuf  [][]int
	erabuf  [][]int   // per-lane erased-edge lists (erasure/correlated decodes)
	corrbuf [][]int32 // per-lane reusable decode output buffers
	bat     *decoder.Batch

	// Persistent cluster forest, per lane, in CSR form (cluster k of
	// lane is cdef[lane][cdefOff[lane][k]:cdefOff[lane][k+1]], and
	// likewise for corrections and touched nodes): the clusters of the
	// previous slide that survive the commit (see harvest), shifted into
	// this window's ids. cdead marks clusters a guard conflict released
	// back into the live decode this slide — their defects re-decode and
	// their cached corrections must not replay.
	comps    []decoder.Components
	cdef     [][]int32
	cdefOff  [][]int32
	ccorr    [][]int32
	ccorrOff [][]int32
	cnode    [][]int32
	cnodeOff [][]int32
	cdead    [][]bool
	gbuf     [][]int32 // per-lane guard rebuild scratch (live clusters only)

	// Release wave scratch (guard conflicts).
	fshots []decoder.Shot
	flanes []int

	graph *decoder.Graph
	diag  [][2]int32
}

// cacheLen returns the number of cached clusters of one lane.
func (sec *sectorState) cacheLen(lane int) int {
	if len(sec.cnodeOff[lane]) == 0 {
		return 0
	}
	return len(sec.cnodeOff[lane]) - 1
}

// clusterOf returns the cached cluster owning window node v, or -1.
func (sec *sectorState) clusterOf(lane int, v int32) int {
	off := sec.cnodeOff[lane]
	for k := 0; k+1 < len(off); k++ {
		for _, n := range sec.cnode[lane][off[k]:off[k+1]] {
			if n == v {
				return k
			}
		}
	}
	return -1
}

// liveGuard flattens the touched nodes of the still-live cached
// clusters into the lane's guard scratch.
func (sec *sectorState) liveGuard(lane int) []int32 {
	g := sec.gbuf[lane][:0]
	off := sec.cnodeOff[lane]
	for k := 0; k+1 < len(off); k++ {
		if sec.cdead[lane][k] {
			continue
		}
		g = append(g, sec.cnode[lane][off[k]:off[k+1]]...)
	}
	sec.gbuf[lane] = g
	return g
}

// clearCache empties one lane's cluster cache.
func (sec *sectorState) clearCache(lane int) {
	sec.cdef[lane] = sec.cdef[lane][:0]
	sec.cdefOff[lane] = sec.cdefOff[lane][:0]
	sec.ccorr[lane] = sec.ccorr[lane][:0]
	sec.ccorrOff[lane] = sec.ccorrOff[lane][:0]
	sec.cnode[lane] = sec.cnode[lane][:0]
	sec.cnodeOff[lane] = sec.cnodeOff[lane][:0]
	sec.cdead[lane] = sec.cdead[lane][:0]
}

// Decoder consumes one batch of lanes' difference layers round by round
// and maintains, per lane, a sliding window of the most recent layers,
// the carry defects cut at the last commit, and the running committed
// Pauli frame. All buffers are rings sized by the window — the resident
// footprint is O(L²·W) bits per lane however many rounds stream past.
//
// Slides are incremental by default: clusters of the previous decode
// that live strictly between the commit boundary and the window's open
// edge are carried across the slide (defects stripped, corrections
// replayed, growth guarded off their region), so a slide only decodes
// what the freshly pushed layers and the carry actually changed — and a
// window whose new region is silent skips the decode entirely.
// SetIncremental(false) restores the plain from-scratch slide; both
// modes commit bit-identical frames.
type Decoder struct {
	s     *Session
	lanes int

	base     int // absolute index of the oldest buffered layer (= rounds committed)
	filled   int // buffered layers
	head     int // ring slot of the oldest buffered layer
	slides   int
	defects  uint64 // defects observed across both sectors (window decodes + Finish)
	finished bool
	err      error // terminal submission failure (shared pool closed underneath us)

	// Warm-start observability (summed over both sectors and all lanes):
	// how many defects the retained forest stripped from live decodes,
	// how many lane-decodes a guard conflict sent through a release
	// wave, and how many of those exhausted the wave budget and fell
	// back to a plain full decode.
	stripped  uint64
	released  uint64
	fallbacks uint64

	fromScratch bool // disable the incremental slide and the sparse skip
	retain      bool // window shape admits a non-empty retention band

	// Side-information decoding state (NewDecoderOpts): the selected
	// passes, the push-discipline latch, and — for erasure-aware
	// decoders — the shared ring of erased-data planes, its per-lane
	// pivot, the per-slot quiet flags, and the erased-edge mask scratch
	// (window edge ids; also covers every closing volume, h ≤ W).
	opts     spacetime.DecodeOptions
	pushMode int        // pushUnset, then pushPlain or pushErased — never mixed
	eraRing  []bits.Vec // W·nq qubit-major erased-data planes, both sectors
	eraLane  []bits.Vec // per-lane erasure planes in window layer order
	eraQuiet []bool     // per ring slot: no data qubit erased in any lane
	emask    bits.Vec   // erased-edge mask scratch

	sx, sz sectorState

	ordered []bits.Vec // ring view in logical layer order
}

// Push-discipline states: a decoder is fed either by Push or by
// PushErased for its whole life — mixing the two would silently drop
// the erasure planes of the plain rounds.
const (
	pushUnset = iota
	pushPlain
	pushErased
)

// NewDecoder returns a streaming decoder for `lanes` parallel shots,
// drawing on the session's decode pool.
func (s *Session) NewDecoder(lanes int) *Decoder {
	return s.NewDecoderOpts(lanes, spacetime.DecodeOptions{})
}

// NewDecoderOpts is NewDecoder with the side-information passes of
// spacetime.DecodeOptions enabled. Erasure-aware decoders are fed with
// PushErased; correlated decoders reprice the dual window from the
// primal correction every slide (which serializes the two sectors'
// decodes and disables the cross-slide cluster cache — the retained
// forest cannot stay valid when the dual graph's erased set changes
// under it). Both options need a circuit-level window (diagonal edges).
func (s *Session) NewDecoderOpts(lanes int, opts spacetime.DecodeOptions) *Decoder {
	w := s.win
	if (opts.ErasureAware || opts.Correlated) && w.WD == 0 {
		panic("stream: erasure-aware/correlated decoding needs a circuit-level window (NewCircuitSession)")
	}
	// Retention band of the persistent forest, in window node ids: a
	// cluster is carried across a slide only if its grown region lies
	// strictly above the commit boundary (so none of it commits this
	// slide) and low enough that after the shift every correction edge
	// commits on the next slide and nothing can reach the carry layer —
	// a one-slide lifetime with no cross-slide bookkeeping. Short or
	// deep-commit windows have an empty band and fall back to plain
	// from-scratch slides.
	//
	// Wide bands are pulled in by one layer at each end: a cluster flush
	// against the carry layer (below) or the re-decoded frontier (above)
	// draws guard contact from the very first growth sweep of any
	// neighbour, so retaining it converts retention into release traffic.
	// One layer of slack keeps warm-start conflicts to clusters a
	// neighbour actually grew toward; thin bands keep their full width.
	bandLo := w.Commit + 1
	bandHi := min(2*w.Commit-1, w.W-1)
	if bandHi-bandLo >= 4 {
		bandLo++
		bandHi--
	}
	loBand := int32(bandLo * w.nc)
	hiBand := int32(bandHi * w.nc)
	retain := hiBand > loBand
	// Extraction budgets, per lane: sized for the threshold-point dense
	// regime (warm-start retains unconditionally, so at operating
	// densities the band holds a sizeable fraction of the window's
	// defects), fixed so the resident footprint stays flat however many
	// rounds stream past (oversized clusters are simply not retained).
	bClusters, bNodes, bDefs, bCorrs := w.nc/2+2, 2*w.nc, w.nc, w.nc
	ordSize := w.W * w.nc
	if opts.ErasureAware && w.nq > w.nc {
		ordSize = w.W * w.nq
	}
	d := &Decoder{
		s:           s,
		lanes:       lanes,
		fromScratch: s.fromScratch || opts.Correlated,
		retain:      retain,
		opts:        opts,
		ordered:     make([]bits.Vec, ordSize),
	}
	if opts.ErasureAware || opts.Correlated {
		d.emask = bits.NewVec(w.diagOff + w.W*w.nq)
	}
	if opts.ErasureAware {
		d.eraRing = bits.NewVecs(w.W*w.nq, lanes)
		d.eraLane = bits.NewVecs(lanes, w.W*w.nq)
		d.eraQuiet = make([]bool, w.W)
	}
	initSector := func(sec *sectorState, g *decoder.Graph, diag [][2]int32) {
		sec.ring = bits.NewVecs(w.W*w.nc, lanes)
		sec.carry = bits.NewVecs(lanes, w.nc)
		sec.corr = bits.NewVecs(lanes, w.nq)
		sec.syn = bits.NewVecs(lanes, w.W*w.nc)
		sec.quiet = make([]bool, w.W)
		if opts.ErasureAware {
			sec.lostRing = bits.NewVecs(w.W*w.nc, lanes)
			sec.lostLane = bits.NewVecs(lanes, w.W*w.nc)
			sec.lostQuiet = make([]bool, w.W)
		}
		sec.shots = make([]decoder.Shot, lanes)
		sec.defbuf = make([][]int, lanes)
		sec.erabuf = make([][]int, lanes)
		sec.corrbuf = make([][]int32, lanes)
		sec.bat = decoder.NewBatch(lanes)
		sec.comps = make([]decoder.Components, lanes)
		sec.cdef = make([][]int32, lanes)
		sec.cdefOff = make([][]int32, lanes)
		sec.ccorr = make([][]int32, lanes)
		sec.ccorrOff = make([][]int32, lanes)
		sec.cnode = make([][]int32, lanes)
		sec.cnodeOff = make([][]int32, lanes)
		sec.cdead = make([][]bool, lanes)
		sec.gbuf = make([][]int32, lanes)
		if retain {
			for lane := 0; lane < lanes; lane++ {
				sec.comps[lane].Init(loBand, hiBand, bClusters, bNodes, bDefs, bCorrs)
				sec.cdef[lane] = make([]int32, 0, bDefs)
				sec.cdefOff[lane] = make([]int32, 0, bClusters+1)
				sec.ccorr[lane] = make([]int32, 0, bCorrs)
				sec.ccorrOff[lane] = make([]int32, 0, bClusters+1)
				sec.cnode[lane] = make([]int32, 0, bNodes)
				sec.cnodeOff[lane] = make([]int32, 0, bClusters+1)
				sec.cdead[lane] = make([]bool, 0, bClusters)
				sec.gbuf[lane] = make([]int32, 0, bNodes)
			}
		}
		sec.graph = g
		sec.diag = diag
	}
	initSector(&d.sx, w.graphX, w.diagX)
	initSector(&d.sz, w.graphZ, w.diagZ)
	return d
}

// SetIncremental toggles the incremental slide (persistent cluster
// forest + sparse quiet-window skip). It is on by default; turning it
// off restores the plain from-scratch slide, which commits bit-identical
// frames — the cross-implementation safety net the tests pin. Toggling
// mid-stream is legal: the cached forest is discarded.
func (d *Decoder) SetIncremental(on bool) {
	d.fromScratch = !on
	if !on {
		for _, sec := range [2]*sectorState{&d.sx, &d.sz} {
			for lane := 0; lane < d.lanes; lane++ {
				sec.clearCache(lane)
			}
		}
	}
}

// Rounds returns how many noisy rounds the decoder has ingested.
func (d *Decoder) Rounds() int { return d.base + d.filled }

// Committed returns how many rounds have been committed into the
// running frames (after a successful Finish, every ingested round).
func (d *Decoder) Committed() int { return d.base }

// Filled returns how many rounds are buffered but not yet committed.
func (d *Decoder) Filled() int { return d.filled }

// Slides returns how many window slides (open-window decodes) have run.
func (d *Decoder) Slides() int { return d.slides }

// DefectsObserved returns the total defect count fed to the decoder so
// far, summed over both sectors and all lanes — the observability
// signal behind adaptive window control (density = defects per
// detector per round per lane).
func (d *Decoder) DefectsObserved() uint64 { return d.defects }

// Lanes returns the decoder's lane count.
func (d *Decoder) Lanes() int { return d.lanes }

// Err reports a terminal pipeline failure: the shared decode pool was
// closed underneath a slide. Push and Finish become no-ops once it is
// set; the committed frames remain valid up to Committed() rounds.
func (d *Decoder) Err() error { return d.err }

// Push ingests one round's difference layers (check-major, one vector
// of lane bits per check, as emitted by spacetime.LayerSource). When
// the window is full the oldest Commit rounds are decoded and
// committed first.
func (d *Decoder) Push(layerX, layerZ []bits.Vec) {
	if d.err != nil {
		return
	}
	if d.finished {
		panic("stream: Push after Finish")
	}
	if d.pushMode == pushErased {
		panic("stream: Push on a decoder fed by PushErased — use one push discipline per stream")
	}
	d.pushMode = pushPlain
	d.pushRound(layerX, layerZ)
}

// pushRound slides if the window is full and ingests one round's
// difference layers, returning the ring slot they landed in (-1 when a
// slide hit a terminal pipeline error).
func (d *Decoder) pushRound(layerX, layerZ []bits.Vec) int {
	w := d.s.win
	if len(layerX) != w.nc || len(layerZ) != w.nc {
		panic("stream: layer plane count mismatch")
	}
	if d.filled == w.W {
		if d.slide(); d.err != nil {
			return -1
		}
	}
	slot := d.head + d.filled
	if slot >= w.W {
		slot -= w.W
	}
	quietX, quietZ := true, true
	for c := 0; c < w.nc; c++ {
		d.sx.ring[slot*w.nc+c].CopyFrom(layerX[c])
		quietX = quietX && layerX[c].Zero()
		d.sz.ring[slot*w.nc+c].CopyFrom(layerZ[c])
		quietZ = quietZ && layerZ[c].Zero()
	}
	d.sx.quiet[slot] = quietX
	d.sz.quiet[slot] = quietZ
	d.filled++
	return slot
}

// slide decodes the full window in both sectors over the open-window
// graphs, commits the correction below the commit boundary into the
// running frames, records the cut defects as the next window's carry,
// and advances the ring by Commit layers.
//
// In incremental mode each sector first strips the defects of the
// clusters cached by the previous slide, decodes only the remainder
// with the cached region guarded, replays the cached corrections at
// commit time, and harvests the new decode's interior clusters for the
// next slide. A guard conflict (the cached forest would have interacted
// with the new syndrome) falls back to a full decode for that lane — a
// second, batched wave — so the committed frames are bit-identical to
// the from-scratch slide in every case. A sector whose whole window is
// silent (no defects, no carry, no cache) skips its decode entirely.
func (d *Decoder) slide() {
	w := d.s.win
	eraX := d.windowErased(&d.sx, w.W)
	eraZ := d.windowErased(&d.sz, w.W)
	if eraX || eraZ {
		bits.TransposePlanes(d.eraLane, d.orderedLayers(d.eraRing, w.W, w.nq))
	}
	if d.opts.Correlated {
		// Correlated slides serialize: the dual window's erased set is a
		// function of the primal window correction, so the primal decode
		// must complete before the dual submission. The primal→dual order
		// is fixed, every list is built in canonical ascending order, and
		// lanes stay independent — the committed frames remain a pure
		// function of the stream for any worker count.
		if d.prepSector(&d.sx, nil, eraX); d.err != nil {
			return
		}
		d.decodeSector(&d.sx)
		if d.err != nil {
			return
		}
		if d.prepSector(&d.sz, &d.sx, eraZ); d.err != nil {
			return
		}
		d.decodeSector(&d.sz)
	} else {
		skipX := !d.fromScratch && d.sectorQuiet(&d.sx)
		skipZ := !d.fromScratch && d.sectorQuiet(&d.sz)
		if !skipX {
			if d.prepSector(&d.sx, nil, eraX); d.err != nil {
				return
			}
		}
		if !skipZ {
			if d.prepSector(&d.sz, nil, eraZ); d.err != nil {
				if !skipX {
					d.sx.bat.Wait()
				}
				return
			}
		}
		if !skipX {
			d.decodeSector(&d.sx)
		}
		if !skipZ && d.err == nil {
			d.decodeSector(&d.sz)
		}
	}
	if d.err != nil {
		return
	}
	d.head += w.Commit
	if d.head >= w.W {
		d.head -= w.W
	}
	d.filled -= w.Commit
	d.base += w.Commit
	d.slides++
}

// windowErased reports whether any of the first `layers` buffered
// rounds carries erasure side information for the sector — the cheap
// per-slot gate that keeps erasure-free slides on the plain path.
func (d *Decoder) windowErased(sec *sectorState, layers int) bool {
	if d.eraRing == nil {
		return false
	}
	w := d.s.win
	for t := 0; t < layers; t++ {
		slot := d.head + t
		if slot >= w.W {
			slot -= w.W
		}
		if !d.eraQuiet[slot] || !sec.lostQuiet[slot] {
			return true
		}
	}
	return false
}

// sectorQuiet reports whether a sector's slide can be skipped outright:
// every buffered layer plane is empty in every lane, no carry defect is
// pending, and no cluster cache is waiting to commit. Such a window's
// decode is empty for every lane, so the slide reduces to advancing the
// ring. (A non-empty cache implies a non-quiet layer — cached defects
// live in the ring — so the cache checks are pure belt-and-braces.)
func (d *Decoder) sectorQuiet(sec *sectorState) bool {
	for _, q := range sec.quiet {
		if !q {
			return false
		}
	}
	for lane := 0; lane < d.lanes; lane++ {
		if sec.carry[lane].Any() {
			return false
		}
		if len(sec.cdef[lane]) != 0 || len(sec.ccorr[lane]) != 0 || len(sec.cnode[lane]) != 0 {
			return false
		}
	}
	return true
}

// prepSector pivots one sector's window into per-lane syndromes, strips
// the cached clusters' defects, and submits the active remainder (under
// the cache guard) to the decode pool.
//
// Warm-start retention is unconditional: every lane seeds from the
// previous slide's retained forest (dense or sparse) and asks for a new
// extraction, so in the steady state growth sweeps touch only the
// defects the freshly pushed layers introduced. The one escape hatch is
// a deterministic density ceiling — a window carrying more defects than
// a quarter of its detector volume (far past any operating point) drops
// its cache and decodes plain, bounding the worst case. Retention
// policy never affects the committed frames — a shot without extraction
// is simply a plain decode.
//
// Side-information passes: with `era` set the sector's erasure planes
// are pivoted lane-major and every lane with erased edges in the window
// decodes plain from scratch with its canonical erased list (restoring
// any cached defects first — the located faults reprice the whole
// window, so no cross-slide cluster can be trusted). With primal
// non-nil (a correlated dual slide) the primal window correction's
// counterpart edges join the erased set.
func (d *Decoder) prepSector(sec *sectorState, primal *sectorState, era bool) {
	d.pivot(sec)
	w := d.s.win
	if era {
		bits.TransposePlanes(sec.lostLane, d.orderedLayers(sec.lostRing, w.W, w.nc))
	}
	ceiling := w.W * w.nc / 4
	for lane := 0; lane < d.lanes; lane++ {
		sv := sec.syn[lane]
		if era || primal != nil {
			laneEra := era && (d.eraLane[lane].Any() || sec.lostLane[lane].Any())
			erased := sec.erabuf[lane][:0]
			if laneEra || primal != nil {
				d.emask.Clear()
				if laneEra {
					spacetime.SetErasedMask(d.emask, d.eraLane[lane], sec.lostLane[lane], w.horiz, w.diagOff, w.WD)
				}
				if primal != nil {
					for _, e := range primal.corrbuf[lane] {
						spacetime.MarkCounterpartEdges(int(e), w.horiz, w.diagOff, d.emask)
					}
				}
				erased = d.emask.AppendSupport(erased)
			}
			sec.erabuf[lane] = erased
			if len(erased) > 0 {
				// The cached defects (if any) still sit in the pivoted
				// syndrome — nothing was stripped yet — so dropping the
				// cache restores the plain full decode exactly.
				sec.clearCache(lane)
				sec.defbuf[lane] = sv.AppendSupport(sec.defbuf[lane][:0])
				d.defects += uint64(len(sec.defbuf[lane]))
				sec.shots[lane] = decoder.Shot{
					Defects: sec.defbuf[lane],
					Erased:  erased,
					CorrBuf: sec.corrbuf[lane],
				}
				continue
			}
		}
		cached := sec.cdef[lane]
		for _, v := range cached {
			sv.Set(int(v), false)
		}
		sec.defbuf[lane] = sv.AppendSupport(sec.defbuf[lane][:0])
		d.defects += uint64(len(sec.defbuf[lane]) + len(cached))
		d.stripped += uint64(len(cached))
		if !d.fromScratch && d.retain && len(sec.defbuf[lane])+len(cached) <= ceiling {
			sec.shots[lane] = decoder.Shot{
				Defects: sec.defbuf[lane],
				CorrBuf: sec.corrbuf[lane],
				Comps:   &sec.comps[lane],
			}
			if len(sec.cnode[lane]) > 0 {
				sec.shots[lane].Guard = sec.cnode[lane]
			}
			continue
		}
		if len(cached) > 0 {
			// Density ceiling (or a mid-stream mode flip): restore the
			// cached defects and fall back to a plain full decode.
			for _, v := range cached {
				sv.Set(int(v), true)
			}
			sec.defbuf[lane] = sv.AppendSupport(sec.defbuf[lane][:0])
			sec.clearCache(lane)
		}
		sec.shots[lane] = decoder.Shot{
			Defects: sec.defbuf[lane],
			CorrBuf: sec.corrbuf[lane],
		}
	}
	if err := d.s.sub.ResubmitOn(sec.graph, sec.bat, sec.shots); err != nil {
		d.err = err
	}
}

// debugCheckIncremental, when set by a test, cross-checks every
// incremental slide lane against a from-scratch decode of the same
// window and reports the first divergent edge set.
var debugCheckIncremental func(d *Decoder, sec *sectorState, lane int, active []int32)

// maxReleaseWaves bounds the warm-start sub-window re-decode: a lane
// still conflicting after this many single-cluster releases restores
// its whole cache into one plain full decode. Two waves resolve all but
// adversarial syndromes — a release only recurs when the re-decoded
// region reaches yet another cached cluster.
const maxReleaseWaves = 2

// decodeSector waits for one sector's batch, resolves guard conflicts
// with the warm-start release waves, commits every lane's correction
// (decoded plus the cached clusters' replays), and harvests the
// clusters the next slide can reuse.
//
// A conflicted lane's growth reached one cached cluster; only that
// cluster is released — its defects rejoin the live decode, its nodes
// leave the guard, its cached corrections are dropped — and the lane
// re-decodes in a batched wave with every other conflicted lane (the
// sub-window re-decode: O(contacted cluster), not O(window)). A wave's
// re-decode can reach a further cached cluster, so waves repeat up to
// maxReleaseWaves before the lane falls back to a full plain decode.
// Every wave's decode is a pure function of the stream content, so the
// committed frames stay bit-identical to from-scratch for any worker
// count.
func (d *Decoder) decodeSector(sec *sectorState) {
	out := sec.bat.Wait()
	// Recapture the grown buffers: from here on corrbuf[lane] IS the
	// lane's correction. The commit loop below must not read `out` —
	// a fallback resubmission recycles the batch and its slots.
	for lane := 0; lane < d.lanes; lane++ {
		sec.corrbuf[lane] = out[lane]
	}
	if !d.fromScratch && d.retain {
		for wave := 0; ; wave++ {
			sec.fshots = sec.fshots[:0]
			sec.flanes = sec.flanes[:0]
			for lane := 0; lane < d.lanes; lane++ {
				if sec.shots[lane].Comps == nil || !sec.comps[lane].Conflict {
					continue
				}
				sv := sec.syn[lane]
				full := wave >= maxReleaseWaves
				var guard []int32
				if !full {
					k := sec.clusterOf(lane, sec.comps[lane].ConflictNode)
					if k < 0 {
						full = true
					} else {
						sec.cdead[lane][k] = true
						off := sec.cdefOff[lane]
						for _, v := range sec.cdef[lane][off[k]:off[k+1]] {
							sv.Set(int(v), true)
						}
						guard = sec.liveGuard(lane)
					}
				}
				if full {
					d.fallbacks++
					off := sec.cdefOff[lane]
					for k := range sec.cdead[lane] {
						if sec.cdead[lane][k] {
							continue
						}
						sec.cdead[lane][k] = true
						for _, v := range sec.cdef[lane][off[k]:off[k+1]] {
							sv.Set(int(v), true)
						}
					}
					guard = nil
				} else {
					d.released++
				}
				sec.defbuf[lane] = sv.AppendSupport(sec.defbuf[lane][:0])
				sec.fshots = append(sec.fshots, decoder.Shot{
					Defects: sec.defbuf[lane],
					Guard:   guard,
					Comps:   &sec.comps[lane],
					CorrBuf: sec.corrbuf[lane],
				})
				sec.flanes = append(sec.flanes, lane)
			}
			if len(sec.flanes) == 0 {
				break
			}
			if err := d.s.sub.ResubmitOn(sec.graph, sec.bat, sec.fshots); err != nil {
				d.err = err
				return
			}
			fout := sec.bat.Wait()
			for i, lane := range sec.flanes {
				sec.corrbuf[lane] = fout[i]
			}
		}
	}
	for lane := 0; lane < d.lanes; lane++ {
		if debugCheckIncremental != nil && !d.fromScratch {
			debugCheckIncremental(d, sec, lane, sec.corrbuf[lane])
		}
		carry := sec.carry[lane]
		carry.Clear()
		d.commitEdges(sec.corrbuf[lane], sec.corr[lane], carry, sec.diag)
		off := sec.ccorrOff[lane]
		for k := 0; k+1 < len(off); k++ {
			if !sec.cdead[lane][k] {
				d.commitEdges(sec.ccorr[lane][off[k]:off[k+1]], sec.corr[lane], carry, sec.diag)
			}
		}
		d.harvest(sec, lane)
	}
}

// harvest rebuilds one lane's cluster cache from the slide's extraction.
// The extraction already filtered to the retainable clusters (ungrounded,
// inside the retention band, within budget), so the whole of it survives,
// with node, edge and defect ids translated down by Commit layers. Their
// translated decode is exactly what the next from-scratch slide would
// recompute for them, because the window graph is translation-invariant
// away from its boundary layers and the guard guarantees independence.
func (d *Decoder) harvest(sec *sectorState, lane int) {
	sec.clearCache(lane)
	if d.fromScratch || !d.retain || sec.shots[lane].Comps == nil {
		return
	}
	c := &sec.comps[lane]
	n := c.N()
	if n == 0 {
		return
	}
	w := d.s.win
	nodeShift := int32(w.Commit * w.nc)
	sec.cdefOff[lane] = append(sec.cdefOff[lane], c.DefOff...)
	sec.ccorrOff[lane] = append(sec.ccorrOff[lane], c.CorrOff...)
	sec.cnodeOff[lane] = append(sec.cnodeOff[lane], c.NodeOff...)
	for _, v := range c.Def {
		sec.cdef[lane] = append(sec.cdef[lane], v-nodeShift)
	}
	for _, e := range c.Corr {
		sec.ccorr[lane] = append(sec.ccorr[lane], w.shiftEdge(e))
	}
	for _, v := range c.Node {
		sec.cnode[lane] = append(sec.cnode[lane], v-nodeShift)
	}
	sec.cdead[lane] = sec.cdead[lane][:n]
	for k := range sec.cdead[lane] {
		sec.cdead[lane][k] = false
	}
}

// orderedLayers appends views of the first `layers` buffered ring
// layers (oldest first) to the reusable ordered slice. stride is the
// ring's planes per layer (nc for syndrome and lost rings, nq for the
// erased-data ring).
func (d *Decoder) orderedLayers(ring []bits.Vec, layers, stride int) []bits.Vec {
	w := d.s.win
	ordered := d.ordered[:0]
	for t := 0; t < layers; t++ {
		slot := d.head + t
		if slot >= w.W {
			slot -= w.W
		}
		ordered = append(ordered, ring[slot*stride:(slot+1)*stride]...)
	}
	return ordered
}

// pivot transposes one sector's full buffered window (plus the carry at
// the base layer) into per-lane syndrome vectors.
func (d *Decoder) pivot(sec *sectorState) {
	w := d.s.win
	bits.TransposePlanes(sec.syn, d.orderedLayers(sec.ring, w.W, w.nc))
	// The carry defects live at the base (first) layer, whose bits are
	// word-aligned at the front of every lane vector.
	for lane := 0; lane < d.lanes; lane++ {
		cv := sec.carry[lane]
		sv := sec.syn[lane]
		for i := 0; i < cv.Words(); i++ {
			sv.XorWord(i, cv.Word(i))
		}
	}
}

// commitEdges folds one correction edge list into a lane's running
// frame: horizontal edges below the commit boundary flip their data
// qubit; a vertical edge crossing the boundary cuts its chain there,
// flipping the carry defect at the boundary layer. A diagonal edge
// spanning the boundary (lower endpoint at layer Commit−1) is a data
// error whose late observation is already committed: its data qubit
// flips now and the severed upper endpoint — the early reader's check
// at the carry layer (or, for a boundary-truncated diagonal, the lone
// reader's check, whose single defect sits at the carry layer) —
// becomes the carry defect, exactly like a cut vertical chain.
// Everything at or above the boundary (including every virtual
// boundary edge) is discarded — the next slide re-decodes it with more
// context. The caller clears the carry first; a slide may fold several
// lists (the live decode plus the cached clusters').
func (d *Decoder) commitEdges(corr []int32, frameVec, carry bits.Vec, diag [][2]int32) {
	w := d.s.win
	for _, id := range corr {
		e := int(id)
		switch {
		case e < w.horiz:
			if e/w.nq < w.Commit {
				frameVec.Flip(e % w.nq)
			}
		case e < w.diagOff:
			if t := (e - w.horiz) / w.nc; t == w.Commit-1 {
				carry.Flip((e - w.horiz) % w.nc)
			}
		default:
			de := e - w.diagOff
			switch t := de / w.nq; {
			case t+1 < w.Commit:
				frameVec.Flip(de % w.nq)
			case t == w.Commit-1:
				frameVec.Flip(de % w.nq)
				if early := diag[de%w.nq][1]; early >= 0 {
					carry.Flip(int(early))
				} else {
					carry.Flip(int(diag[de%w.nq][0]))
				}
			}
		}
	}
}

// Finish ingests the closing perfect-round difference layers and
// decodes the remaining buffer as an ordinary closed volume (height =
// buffered rounds), committing everything into the frames. When no
// slide has fired — W ≥ total rounds — this is exactly the whole-volume
// decode, bit for bit. The decoder cannot be pushed to afterwards.
func (d *Decoder) Finish(layerX, layerZ []bits.Vec) {
	w := d.s.win
	if d.err != nil {
		return
	}
	if d.finished {
		panic("stream: Finish called twice")
	}
	if d.filled == 0 {
		panic("stream: Finish before any round")
	}
	d.finished = true
	h := d.filled
	vol := spacetime.CachedCodeCircuitVolume(w.code, h, w.WH, w.WV, w.WD)
	// Side information of the closing volume: per-lane erasure planes in
	// volume layer order, plus — for correlated decoders — the primal
	// correction feeding the dual repricing. With W ≥ total rounds this
	// path IS the whole-volume decode of BatchCircuitErasedFrom, bit for
	// bit: same canonical erased lists, same primal→dual order.
	eraX := d.windowErased(&d.sx, h)
	eraZ := d.windowErased(&d.sz, h)
	var eraLane, lostXLane, lostZLane []bits.Vec
	if eraX || eraZ {
		eraLane = bits.NewVecs(d.lanes, h*w.nq)
		bits.TransposePlanes(eraLane, d.orderedLayers(d.eraRing, h, w.nq))
	}
	if eraX {
		lostXLane = bits.NewVecs(d.lanes, h*w.nc)
		bits.TransposePlanes(lostXLane, d.orderedLayers(d.sx.lostRing, h, w.nc))
	}
	if eraZ {
		lostZLane = bits.NewVecs(d.lanes, h*w.nc)
		bits.TransposePlanes(lostZLane, d.orderedLayers(d.sz.lostRing, h, w.nc))
	}
	syn := bits.NewVecs(d.lanes, (h+1)*w.nc)
	bits.TransposePlanes(syn, append(d.orderedLayers(d.sx.ring, h, w.nc), layerX...))
	var xEra, xLost []bits.Vec
	if eraX {
		xEra, xLost = eraLane, lostXLane
	}
	d.finishSector(syn, vol, vol.Graph(), &d.sx, h, xEra, xLost, nil)
	if d.err != nil {
		return
	}
	bits.TransposePlanes(syn, append(d.orderedLayers(d.sz.ring, h, w.nc), layerZ...))
	var zEra, zLost []bits.Vec
	if eraZ {
		zEra, zLost = eraLane, lostZLane
	}
	var primal *sectorState
	if d.opts.Correlated {
		primal = &d.sx
	}
	d.finishSector(syn, vol, vol.DualGraph(), &d.sz, h, zEra, zLost, primal)
	if d.err != nil {
		return
	}
	d.base += h
	d.filled = 0
}

// finishSector decodes every lane's closing volume through the decode
// pool — the same worker fan-out the slides use, with per-graph scratch
// reuse instead of a fresh decoder per Finish — and commits the whole
// correction. eraLane/lostLane (nil when the closing window carries no
// erasures) and primal (non-nil for the correlated dual pass) feed the
// per-lane erased lists in closing-volume edge ids.
func (d *Decoder) finishSector(syn []bits.Vec, vol *spacetime.Volume, g *decoder.Graph, sec *sectorState, h int, eraLane, lostLane []bits.Vec, primal *sectorState) {
	w := d.s.win
	vhoriz, vdiagOff := h*w.nq, h*(w.nq+w.nc)
	for lane := 0; lane < d.lanes; lane++ {
		cv := sec.carry[lane]
		sv := syn[lane]
		for i := 0; i < cv.Words(); i++ {
			sv.XorWord(i, cv.Word(i))
		}
		sec.defbuf[lane] = sv.AppendSupport(sec.defbuf[lane][:0])
		d.defects += uint64(len(sec.defbuf[lane]))
		var erased []int
		if eraLane != nil || primal != nil {
			d.emask.Clear()
			if eraLane != nil {
				spacetime.SetErasedMask(d.emask, eraLane[lane], lostLane[lane], vhoriz, vdiagOff, w.WD)
			}
			if primal != nil {
				for _, e := range primal.corrbuf[lane] {
					spacetime.MarkCounterpartEdges(int(e), vhoriz, vdiagOff, d.emask)
				}
			}
			sec.erabuf[lane] = d.emask.AppendSupport(sec.erabuf[lane][:0])
			erased = sec.erabuf[lane]
		}
		sec.shots[lane] = decoder.Shot{Defects: sec.defbuf[lane], Erased: erased, CorrBuf: sec.corrbuf[lane]}
	}
	if err := d.s.sub.ResubmitOn(g, sec.bat, sec.shots); err != nil {
		d.err = err
		return
	}
	out := sec.bat.Wait()
	for lane := 0; lane < d.lanes; lane++ {
		sec.corrbuf[lane] = out[lane]
		cl := sec.corr[lane]
		for _, e := range out[lane] {
			if q, ok := vol.ProjectEdge(int(e)); ok {
				cl.Flip(q)
			}
		}
	}
}

// Rewindow transplants the decoder's live state onto a session with a
// different window shape over the same lattice — the adaptive-window
// primitive: a server that sees the defect density move can widen the
// window for accuracy or shrink it for latency mid-stream without
// losing the committed frames, the carry, or the buffered rounds. The
// receiver is dead afterwards; continue on the returned decoder, whose
// Rounds/Committed counters carry on from the old one. Both sessions
// must share L and the same model class (diagonal or not). The
// buffered layers are re-pushed through the new window, so a shrink
// may commit (slide) during the transfer.
func (d *Decoder) Rewindow(ns *Session) (*Decoder, error) {
	if d.err != nil {
		return nil, d.err
	}
	if d.finished {
		return nil, fmt.Errorf("stream: cannot rewindow a finished decoder")
	}
	if d.pushMode == pushErased || d.opts != (spacetime.DecodeOptions{}) {
		return nil, fmt.Errorf("stream: cannot rewindow an erasure-fed or correlated decoder")
	}
	w, nw := d.s.win, ns.win
	if nw.code.CodeName() != w.code.CodeName() {
		return nil, fmt.Errorf("stream: rewindow across code families (%s -> %s)", w.code.CodeName(), nw.code.CodeName())
	}
	if nw.L != w.L {
		return nil, fmt.Errorf("stream: rewindow across lattice sizes (L=%d -> L=%d)", w.L, nw.L)
	}
	if (nw.WD > 0) != (w.WD > 0) {
		return nil, fmt.Errorf("stream: rewindow across decoding models (diagonal edges %v -> %v)", w.WD > 0, nw.WD > 0)
	}
	nd := ns.NewDecoder(d.lanes)
	nd.base = d.base
	nd.slides = d.slides
	nd.defects = d.defects
	nd.fromScratch = d.fromScratch
	for lane := 0; lane < d.lanes; lane++ {
		nd.sx.carry[lane].CopyFrom(d.sx.carry[lane])
		nd.sz.carry[lane].CopyFrom(d.sz.carry[lane])
		nd.sx.corr[lane].CopyFrom(d.sx.corr[lane])
		nd.sz.corr[lane].CopyFrom(d.sz.corr[lane])
	}
	// The cluster cache is NOT transplanted: its ids live in the old
	// window's coordinate system, and the cached corrections cover
	// layers the new decoder is about to re-push and re-decode in full.
	// Dropping it is the "cleanly rebuild" arm of the rewindow contract —
	// the replayed layers regrow the forest from scratch, and the
	// committed frames come out bit-identical to a fresh decoder fed the
	// same stream (pinned by the rewindow tests).
	for t := 0; t < d.filled; t++ {
		slot := d.head + t
		if slot >= w.W {
			slot -= w.W
		}
		nd.Push(d.sx.ring[slot*w.nc:(slot+1)*w.nc], d.sz.ring[slot*w.nc:(slot+1)*w.nc])
	}
	if nd.err != nil {
		return nil, nd.err
	}
	d.finished = true
	return nd, nil
}

// Corrections returns the per-lane committed correction frames of the
// two sectors (valid any time; complete after Finish).
func (d *Decoder) Corrections() (x, z []bits.Vec) { return d.sx.corr, d.sz.corr }

// FootprintBytes sums the decoder's resident buffers — the number that
// must stay flat as rounds stream past (the constant-memory acceptance
// criterion, asserted in the tests and reported by the benchmarks). The
// incremental caches are included: they are bounded by the window
// volume, never by the stream length.
func (d *Decoder) FootprintBytes() int {
	vecs := func(vs []bits.Vec) int {
		n := 0
		for _, v := range vs {
			n += v.Words() * 8
		}
		return n
	}
	n := cap(d.ordered) * 24
	n += vecs(d.eraRing) + vecs(d.eraLane) + d.emask.Words()*8 + len(d.eraQuiet)
	for _, sec := range [2]*sectorState{&d.sx, &d.sz} {
		n += vecs(sec.ring) + vecs(sec.carry) + vecs(sec.corr) + vecs(sec.syn)
		n += vecs(sec.lostRing) + vecs(sec.lostLane)
		n += len(sec.quiet) + len(sec.lostQuiet)
		for lane := 0; lane < d.lanes; lane++ {
			n += (cap(sec.defbuf[lane]) + cap(sec.erabuf[lane])) * 8
			n += (cap(sec.corrbuf[lane]) + cap(sec.cdef[lane]) +
				cap(sec.ccorr[lane]) + cap(sec.cnode[lane]) +
				cap(sec.cdefOff[lane]) + cap(sec.ccorrOff[lane]) +
				cap(sec.cnodeOff[lane]) + cap(sec.gbuf[lane])) * 4
			n += cap(sec.cdead[lane])
			c := &sec.comps[lane]
			n += cap(c.Node)*4 + cap(c.Def)*4 + cap(c.Corr)*4 +
				cap(c.NodeOff)*4 + cap(c.DefOff)*4 + cap(c.CorrOff)*4
		}
	}
	return n
}

// BatchMemory runs `lanes` streaming shots of the noisy-extraction
// memory over this session's window: a spacetime.LayerSource emits
// difference layers round by round (the same draw order as the
// whole-volume batch), the sliding window commits as it goes, and one
// perfect closing round settles the tail. Returns the per-lane logical
// failure masks of the two sectors.
func (s *Session) BatchMemory(rounds int, p, q float64, lanes int, smp frame.Sampler) (failX, failZ bits.Vec) {
	return s.BatchMemoryFrom(spacetime.NewLayerSource(s.win.L, p, q, lanes, smp), rounds)
}

// BatchMemoryFrom is BatchMemory draining an arbitrary layer feed — the
// phenomenological LayerSource and the circuit-level CircuitLayerSource
// stream through the same window machinery. The feed must be fresh.
func (s *Session) BatchMemoryFrom(src spacetime.LayerFeed, rounds int) (failX, failZ bits.Vec) {
	w := s.win
	s.checkFeed(src)
	lanes := src.Lanes()
	d := s.NewDecoder(lanes)
	layerX := bits.NewVecs(w.nc, lanes)
	layerZ := bits.NewVecs(w.nc, lanes)
	for t := 0; t < rounds; t++ {
		src.NextLayers(layerX, layerZ)
		d.Push(layerX, layerZ)
	}
	src.CloseLayers(layerX, layerZ)
	d.Finish(layerX, layerZ)
	if err := d.Err(); err != nil {
		// The Monte Carlo paths own their pool, so a mid-run closure is a
		// caller bug, not an operating condition.
		panic(err)
	}
	return s.failureMasks(src, d)
}

// checkFeed panics on a feed that cannot drive this session's window:
// already drained, wrong lattice size, or wrong code family.
func (s *Session) checkFeed(src spacetime.LayerFeed) {
	w := s.win
	if src.Rounds() != 0 {
		panic("stream: layer feed already drained")
	}
	if src.L() != w.L {
		panic("stream: layer feed lattice size does not match the window")
	}
	if cf, ok := src.(interface{ Code() surface.Code }); ok {
		if cf.Code().CodeName() != w.code.CodeName() {
			panic("stream: layer feed code family does not match the window")
		}
	} else if w.code.CodeName() != "toric" {
		panic("stream: this window needs a code-aware layer feed (surface.NewLayerSource / NewCircuitSource)")
	}
}

// failureMasks compares the logical parities of the accumulated error
// chains against the committed correction frames. The total correction
// cancels every defect, so the residual is always a closed (or
// boundary-to-boundary) cycle and the parities decide failure — the
// same homology test as the whole-volume pipeline.
func (s *Session) failureMasks(src spacetime.LayerFeed, d *Decoder) (failX, failZ bits.Vec) {
	lanes := d.lanes
	code := s.win.code
	pX1 := bits.NewVec(lanes)
	pX2 := bits.NewVec(lanes)
	pZ1 := bits.NewVec(lanes)
	pZ2 := bits.NewVec(lanes)
	src.Windings(pX1, pX2, pZ1, pZ2)
	failX = bits.NewVec(lanes)
	failZ = bits.NewVec(lanes)
	for lane := 0; lane < lanes; lane++ {
		c1, c2 := code.LogicalParity(false, d.sx.corr[lane])
		if pX1.Get(lane) != c1 || pX2.Get(lane) != c2 {
			failX.Set(lane, true)
		}
		c1, c2 = code.LogicalParity(true, d.sz.corr[lane])
		if pZ1.Get(lane) != c1 || pZ2.Get(lane) != c2 {
			failZ.Set(lane, true)
		}
	}
	return failX, failZ
}

// Result summarizes a streaming memory Monte Carlo run.
type Result struct {
	Code           string // code family ("toric", "planar", "rotated")
	L, T           int
	Window, Commit int
	P, Q           float64
	Pe             float64 // leak rate per gate (erasure runs; 0 otherwise)
	Samples        int
	FailX          int // bit-flip (plaquette-sector) logical failures
	FailZ          int // phase-flip (star-sector) logical failures
	Failures       int // shots failing in either sector
}

// FailRate returns the either-sector logical failure probability.
func (r Result) FailRate() float64 { return float64(r.Failures) / float64(r.Samples) }

// FailRateX returns the bit-flip sector failure probability.
func (r Result) FailRateX() float64 { return float64(r.FailX) / float64(r.Samples) }

// FailRateZ returns the phase-flip sector failure probability.
func (r Result) FailRateZ() float64 { return float64(r.FailZ) / float64(r.Samples) }

// DefaultWindow returns the default window and commit sizes for
// distance L: W = 2L buffered rounds (enough context that windowed
// accuracy matches whole-volume decoding) with a half-window commit.
func DefaultWindow(l int) (window, commit int) { return 2 * l, l }

// Memory runs the streaming noisy-syndrome memory experiment: `rounds`
// noisy extraction rounds at data rate p and measurement rate q,
// decoded through a sliding window of `window` layers committing
// `commit` rounds per slide (pass 0, 0 for the DefaultWindow sizes),
// fanned out over the CPUs in deterministic seed-per-chunk batches
// that all share one long-lived decode pool. The result is a pure
// function of (samples, seed) — never of GOMAXPROCS. Invalid window
// shapes or horizons return a descriptive error.
func Memory(l, rounds int, p, q float64, window, commit, samples int, seed uint64) (Result, error) {
	window, commit = defaultedWindow(l, window, commit)
	if rounds < 1 {
		return Result{}, fmt.Errorf("stream: memory experiment needs at least one noisy round (got rounds=%d)", rounds)
	}
	wh, wv := spacetime.Weights(p, q, l, rounds)
	s, err := NewSession(l, window, commit, wh, wv)
	if err != nil {
		return Result{}, err
	}
	defer s.Close()
	fx, fz, fa := frame.CountSectorFailures(samples, seed, func(lanes int, smp frame.Sampler) (bits.Vec, bits.Vec) {
		return s.BatchMemory(rounds, p, q, lanes, smp)
	})
	return Result{Code: "toric", L: l, T: rounds, Window: window, Commit: commit, P: p, Q: q,
		Samples: samples, FailX: fx, FailZ: fz, Failures: fa}, nil
}

// CodeMemory is Memory over any surface.Code: the code's own
// phenomenological layer source streams through a sliding window whose
// open-boundary graphs ground on the virtual node.
func CodeMemory(code surface.Code, rounds int, p, q float64, window, commit, samples int, seed uint64) (Result, error) {
	window, commit = defaultedWindow(code.Distance(), window, commit)
	if rounds < 1 {
		return Result{}, fmt.Errorf("stream: memory experiment needs at least one noisy round (got rounds=%d)", rounds)
	}
	wh, wv := spacetime.Weights(p, q, code.Distance(), rounds)
	s, err := NewCodeSession(code, window, commit, wh, wv)
	if err != nil {
		return Result{}, err
	}
	defer s.Close()
	fx, fz, fa := frame.CountSectorFailures(samples, seed, func(lanes int, smp frame.Sampler) (bits.Vec, bits.Vec) {
		return s.BatchMemoryFrom(surface.NewLayerSource(code, p, q, lanes, smp), rounds)
	})
	return Result{Code: code.CodeName(), L: code.Distance(), T: rounds, Window: window, Commit: commit,
		P: p, Q: q, Samples: samples, FailX: fx, FailZ: fz, Failures: fa}, nil
}

// CircuitMemory runs the circuit-level noisy-extraction memory through
// the sliding window: extract.Source runs the full extraction circuit
// round by round (faults at every location of the model P), the
// diagonal-edge window decodes and commits as it goes. Pass 0, 0 for
// the DefaultWindow sizes. Weights come from spacetime.WeightsCircuit
// with the window as the decode horizon.
func CircuitMemory(l, rounds int, P noise.Params, window, commit, samples int, seed uint64) (Result, error) {
	window, commit = defaultedWindow(l, window, commit)
	if rounds < 1 {
		return Result{}, fmt.Errorf("stream: memory experiment needs at least one noisy round (got rounds=%d)", rounds)
	}
	wh, wv, wd := spacetime.WeightsCircuit(P, l, window)
	s, err := NewCircuitSession(l, window, commit, wh, wv, wd)
	if err != nil {
		return Result{}, err
	}
	defer s.Close()
	fx, fz, fa := frame.CountSectorFailures(samples, seed, func(lanes int, smp frame.Sampler) (bits.Vec, bits.Vec) {
		return s.BatchMemoryFrom(spacetime.NewCircuitLayerSource(l, P, lanes, smp), rounds)
	})
	return Result{Code: "toric", L: l, T: rounds, Window: window, Commit: commit, P: P.Gate2, Q: P.Meas,
		Samples: samples, FailX: fx, FailZ: fz, Failures: fa}, nil
}

// CodeCircuitMemory is CircuitMemory over any surface.Code: the code's
// own extraction circuit (surface.CircuitSource) streams through a
// diagonal-edge sliding window, boundary-truncated diagonals grounded
// on the virtual node.
func CodeCircuitMemory(code surface.Code, rounds int, P noise.Params, window, commit, samples int, seed uint64) (Result, error) {
	window, commit = defaultedWindow(code.Distance(), window, commit)
	if rounds < 1 {
		return Result{}, fmt.Errorf("stream: memory experiment needs at least one noisy round (got rounds=%d)", rounds)
	}
	wh, wv, wd := spacetime.WeightsCircuit(P, code.Distance(), window)
	s, err := NewCodeCircuitSession(code, window, commit, wh, wv, wd)
	if err != nil {
		return Result{}, err
	}
	defer s.Close()
	fx, fz, fa := frame.CountSectorFailures(samples, seed, func(lanes int, smp frame.Sampler) (bits.Vec, bits.Vec) {
		return s.BatchMemoryFrom(surface.NewCircuitSource(code, P, lanes, smp), rounds)
	})
	return Result{Code: code.CodeName(), L: code.Distance(), T: rounds, Window: window, Commit: commit,
		P: P.Gate2, Q: P.Meas, Samples: samples, FailX: fx, FailZ: fz, Failures: fa}, nil
}

// defaultedWindow fills in the DefaultWindow sizes for zero values.
func defaultedWindow(l, window, commit int) (int, int) {
	if window <= 0 {
		window, _ = DefaultWindow(l)
	}
	if commit <= 0 {
		commit = window / 2
		if commit < 1 {
			commit = 1
		}
	}
	return window, commit
}

// ThresholdPoint is one p = q grid point of a streaming sustained
// sweep.
type ThresholdPoint struct {
	P            float64
	Small, Large Result
}

// SustainedThreshold sweeps p = q with T = 4L rounds through W = 2L
// windows (several slides per shot — genuine sustained operation) for
// two code distances and estimates where the failure curves cross.
// Returns NaN when the grid shows no crossing, plus the points.
func SustainedThreshold(l1, l2 int, grid []float64, samples int, seed uint64) (float64, []ThresholdPoint) {
	pts := make([]ThresholdPoint, len(grid))
	small := make([]float64, len(grid))
	large := make([]float64, len(grid))
	run := func(l int, p float64, seed uint64) Result {
		w, c := DefaultWindow(l)
		r, err := Memory(l, 4*l, p, p, w, c, samples, seed)
		if err != nil {
			// The sweep derives its own parameters; they cannot be invalid.
			panic(err)
		}
		return r
	}
	for i, p := range grid {
		pts[i] = ThresholdPoint{
			P:     p,
			Small: run(l1, p, seed+uint64(2*i)),
			Large: run(l2, p, seed+uint64(2*i+1)),
		}
		small[i] = pts[i].Small.FailRate()
		large[i] = pts[i].Large.FailRate()
	}
	return spacetime.CrossingEstimate(grid, small, large), pts
}
