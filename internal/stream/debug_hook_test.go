package stream

import (
	"fmt"
	"sort"
	"testing"

	"ftqc/internal/decoder"
)

// installIncrementalCheck wires the white-box cross-check: every
// incremental lane's (active ∪ cached) correction is diffed against a
// from-scratch decode of the identical window syndrome.
func installIncrementalCheck(t *testing.T) {
	t.Helper()
	ufs := map[*decoder.Graph]*decoder.UnionFind{}
	debugCheckIncremental = func(d *Decoder, sec *sectorState, lane int, active []int32) {
		w := d.s.win
		sv := sec.syn[lane]
		defs := sv.AppendSupport(nil)
		for _, v := range sec.cdef[lane] {
			// A release or fallback restored some cached defects into
			// syn; only add the ones still stripped (live clusters).
			if !sv.Get(int(v)) {
				defs = append(defs, int(v))
			}
		}
		sort.Ints(defs)
		// The replayed corrections of the still-live cached clusters.
		var cached []int32
		for k := 0; k+1 < len(sec.ccorrOff[lane]); k++ {
			if !sec.cdead[lane][k] {
				cached = append(cached, sec.ccorr[lane][sec.ccorrOff[lane][k]:sec.ccorrOff[lane][k+1]]...)
			}
		}
		uf := ufs[sec.graph]
		if uf == nil {
			uf = decoder.NewUnionFind(sec.graph)
			ufs[sec.graph] = uf
		}
		var full []int32
		uf.Decode(defs, func(e int) { full = append(full, int32(e)) })
		diff := map[int32]int{}
		for _, e := range active {
			diff[e]++
		}
		for _, e := range cached {
			diff[e]++
		}
		for _, e := range full {
			diff[e]--
		}
		var bad []int32
		for e, n := range diff {
			if n%2 != 0 {
				bad = append(bad, e)
			}
		}
		if len(bad) == 0 {
			return
		}
		sort.Slice(bad, func(i, j int) bool { return bad[i] < bad[j] })
		desc := func(e int32) string {
			switch {
			case int(e) < w.horiz:
				return fmt.Sprintf("horiz(e=%d,t=%d)", int(e)%w.nq, int(e)/w.nq)
			case int(e) < w.diagOff:
				v := int(e) - w.horiz
				return fmt.Sprintf("vert(c=%d,t=%d)", v%w.nc, v/w.nc)
			default:
				v := int(e) - w.diagOff
				return fmt.Sprintf("diag(e=%d,t=%d)", v%w.nq, v/w.nq)
			}
		}
		var out []string
		for _, e := range bad {
			out = append(out, desc(e))
		}
		t.Errorf("slide %d lane %d sector(graph=%p): conflict=%v cache(clusters=%d defs=%d guard=%d)\n  divergent edges: %v\n  active=%d cached=%d full=%d",
			d.slides+1, lane, sec.graph, sec.comps[lane].Conflict,
			sec.cacheLen(lane), len(sec.cdef[lane]), len(sec.cnode[lane]), out, len(active), len(cached), len(full))
	}
	t.Cleanup(func() { debugCheckIncremental = nil })
}
