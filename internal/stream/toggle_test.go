package stream

import (
	"math/rand/v2"
	"testing"

	"ftqc/internal/bits"
	"ftqc/internal/decoder"
	"ftqc/internal/frame"
	"ftqc/internal/noise"
	"ftqc/internal/spacetime"
)

// TestSetIncrementalMidStreamToggle pins live mode flips: a decoder
// whose incremental slide is switched on and off between pushes must
// commit frames bit-identical to an always-from-scratch decoder on the
// same layer feed, at every push and after Finish. Flipping off must
// drop the retained forest (its guards would otherwise strip defects
// the plain slide expects to see); flipping back on must rebuild it
// from the next slide without replaying stale state. The sweep covers
// quiet through dense rates, both source models, and the white-box
// forest validator stays armed throughout.
func TestSetIncrementalMidStreamToggle(t *testing.T) {
	installIncrementalCheck(t)
	rng := rand.New(rand.NewPCG(8801, 8802))
	toggled := 0
	for trial := 0; trial < 10; trial++ {
		l := 3 + rng.IntN(3)
		window := 4 + rng.IntN(5)
		commit := 1 + rng.IntN(window-1)
		lanes := 17 + rng.IntN(80)
		rounds := 3*window + rng.IntN(3*window)
		p := []float64{0.003, 0.02, 0.05}[trial%3]
		workers := 1 + rng.IntN(3)
		seed := rng.Uint64()
		circuit := trial%2 == 1

		var st, sf *Session
		var feed func() spacetime.LayerFeed
		pool := decoder.NewPool(workers)
		if circuit {
			P := noise.Uniform(p)
			wh, wv, wd := spacetime.WeightsCircuit(P, l, window)
			st = mustCircuitSession(t, l, window, commit, wh, wv, wd)
			var err error
			sf, err = NewCircuitSessionOn(pool, l, window, commit, wh, wv, wd)
			if err != nil {
				t.Fatal(err)
			}
			feed = func() spacetime.LayerFeed {
				return spacetime.NewCircuitLayerSource(l, P, lanes, frame.NewAggregateSampler(seed, 5))
			}
		} else {
			wh, wv := spacetime.Weights(p, p, l, rounds)
			var err error
			st, err = NewSession(l, window, commit, wh, wv)
			if err != nil {
				t.Fatal(err)
			}
			sf, err = NewSessionOn(pool, l, window, commit, wh, wv)
			if err != nil {
				t.Fatal(err)
			}
			feed = func() spacetime.LayerFeed {
				return spacetime.NewLayerSource(l, p, p, lanes, frame.NewAggregateSampler(seed, 5))
			}
		}
		sf.SetIncremental(false)
		srcT, srcF := feed(), feed()
		dt := st.NewDecoder(lanes)
		df := sf.NewDecoder(lanes)
		nc := st.win.nc
		ltx := bits.NewVecs(nc, lanes)
		ltz := bits.NewVecs(nc, lanes)
		lfx := bits.NewVecs(nc, lanes)
		lfz := bits.NewVecs(nc, lanes)
		compare := func(stage string, r int) {
			t.Helper()
			cxt, czt := dt.Corrections()
			cxf, czf := df.Corrections()
			for lane := 0; lane < lanes; lane++ {
				if !cxt[lane].Equal(cxf[lane]) || !czt[lane].Equal(czf[lane]) {
					t.Fatalf("trial %d %s round %d: lane %d frames diverge after toggles", trial, stage, r, lane)
				}
				if !dt.sx.carry[lane].Equal(df.sx.carry[lane]) || !dt.sz.carry[lane].Equal(df.sz.carry[lane]) {
					t.Fatalf("trial %d %s round %d: lane %d carries diverge after toggles", trial, stage, r, lane)
				}
			}
		}
		on := true
		for r := 0; r < rounds; r++ {
			if rng.IntN(3) == 0 {
				on = !on
				dt.SetIncremental(on)
				toggled++
			}
			srcT.NextLayers(ltx, ltz)
			srcF.NextLayers(lfx, lfz)
			dt.Push(ltx, ltz)
			df.Push(lfx, lfz)
			compare("push", r)
		}
		srcT.CloseLayers(ltx, ltz)
		srcF.CloseLayers(lfx, lfz)
		dt.Finish(ltx, ltz)
		df.Finish(lfx, lfz)
		if dt.Err() != nil || df.Err() != nil {
			t.Fatalf("trial %d: decoder error: %v / %v", trial, dt.Err(), df.Err())
		}
		compare("finish", rounds)
		st.Close()
		pool.Close()
	}
	if toggled == 0 {
		t.Fatal("no trial ever toggled mid-stream")
	}
}
