package stream

import (
	"math"
	"math/rand/v2"
	"runtime"
	"testing"

	"ftqc/internal/bits"
	"ftqc/internal/decoder"
	"ftqc/internal/frame"
	"ftqc/internal/noise"
	"ftqc/internal/spacetime"
	"ftqc/internal/toric"
)

// mustSession / mustCircuitSession / mustMemory fail the test on a
// construction error — for the many tests whose parameters are valid by
// construction.
func mustSession(t *testing.T, l, window, commit, wh, wv int) *Session {
	t.Helper()
	s, err := NewSession(l, window, commit, wh, wv)
	if err != nil {
		t.Fatalf("NewSession(%d,%d,%d,%d,%d): %v", l, window, commit, wh, wv, err)
	}
	return s
}

func mustCircuitSession(t *testing.T, l, window, commit, wh, wv, wd int) *Session {
	t.Helper()
	s, err := NewCircuitSession(l, window, commit, wh, wv, wd)
	if err != nil {
		t.Fatalf("NewCircuitSession(%d,%d,%d,%d,%d,%d): %v", l, window, commit, wh, wv, wd, err)
	}
	return s
}

func mustMemory(t *testing.T, l, rounds int, p, q float64, window, commit, samples int, seed uint64) Result {
	t.Helper()
	r, err := Memory(l, rounds, p, q, window, commit, samples, seed)
	if err != nil {
		t.Fatalf("Memory: %v", err)
	}
	return r
}

func TestWindowShape(t *testing.T) {
	w, err := NewWindow(4, 6, 3, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	nc, nq := 16, 32
	if w.nodes != 6*nc+1 || w.Graph().Nodes() != w.nodes || w.DualGraph().Nodes() != w.nodes {
		t.Fatalf("node count %d", w.nodes)
	}
	if got, want := w.Graph().Edges(), 6*nq+6*nc; got != want {
		t.Fatalf("edge count %d, want %d", got, want)
	}
	if !w.Graph().IsBoundary(w.nodes - 1) {
		t.Fatal("last node must be the open boundary")
	}
	for e := 0; e < w.Graph().Edges(); e++ {
		a, b := w.Graph().Ends(e)
		if e < w.horiz {
			if w.Graph().Weight(e) != 2 || a/nc != b/nc || a/nc != e/nq {
				t.Fatalf("horizontal edge %d malformed: ends %d,%d weight %d", e, a, b, w.Graph().Weight(e))
			}
			continue
		}
		if w.Graph().Weight(e) != 5 {
			t.Fatalf("vertical edge %d weight %d", e, w.Graph().Weight(e))
		}
		tl := (e - w.horiz) / nc
		if tl == w.W-1 {
			if b != w.nodes-1 {
				t.Fatalf("virtual edge %d must reach the boundary, got ends %d,%d", e, a, b)
			}
		} else if a%nc != b%nc || b/nc-a/nc != 1 {
			t.Fatalf("vertical edge %d joins %d and %d", e, a, b)
		}
	}
}

// TestWindowGEVolumeBitIdentical is the satellite equivalence suite:
// when the window holds the whole stream (W ≥ T), the streaming decoder
// never slides and its failure masks must equal the whole-volume batch
// decode bit for bit — same sampler, same draw order, same union-find.
func TestWindowGEVolumeBitIdentical(t *testing.T) {
	const lanes = 192
	for _, cfg := range []struct {
		l, rounds, window, commit int
		p, q                      float64
	}{
		{3, 2, 2, 1, 0.05, 0.05},
		{4, 4, 4, 2, 0.03, 0.03},
		{4, 4, 7, 3, 0.03, 0.06}, // asymmetric weights, oversized window
		{5, 3, 5, 1, 0.08, 0.02},
		{4, 1, 2, 1, 0.06, 0.04},
	} {
		v := spacetime.CachedVolume(cfg.l, cfg.rounds, cfg.p, cfg.q)
		wh, wv := spacetime.Weights(cfg.p, cfg.q, cfg.l, cfg.rounds)
		fx1, fz1 := v.BatchMemory(cfg.p, cfg.q, toric.DecoderUnionFind, lanes, frame.NewAggregateSampler(901, 7))
		s := mustSession(t, cfg.l, cfg.window, cfg.commit, wh, wv)
		fx2, fz2 := s.BatchMemory(cfg.rounds, cfg.p, cfg.q, lanes, frame.NewAggregateSampler(901, 7))
		s.Close()
		if !fx1.Equal(fx2) || !fz1.Equal(fz2) {
			t.Fatalf("L=%d T=%d W=%d: windowed decode differs from whole-volume (X %d vs %d fails, Z %d vs %d)",
				cfg.l, cfg.rounds, cfg.window, fx1.Weight(), fx2.Weight(), fz1.Weight(), fz2.Weight())
		}
	}
}

// TestWindowedMatchesVolumeRates is the acceptance physics: a sliding
// window of W = 2L rounds (commit L) over a longer stream reproduces
// the whole-volume logical failure rate within statistical error.
func TestWindowedMatchesVolumeRates(t *testing.T) {
	const samples = 6000
	for _, cfg := range []struct {
		l, rounds int
		p         float64
	}{
		{4, 16, 0.02},
		{4, 12, 0.03},
		{5, 15, 0.02},
	} {
		w, c := DefaultWindow(cfg.l)
		st := mustMemory(t, cfg.l, cfg.rounds, cfg.p, cfg.p, w, c, samples, 903)
		vol := spacetime.Memory(cfg.l, cfg.rounds, cfg.p, cfg.p, toric.DecoderUnionFind, samples, 904)
		fs, fv := st.FailRate(), vol.FailRate()
		sigma := math.Sqrt(fs*(1-fs)/samples + fv*(1-fv)/samples)
		if diff := math.Abs(fs - fv); diff > 4*sigma+0.015 {
			t.Fatalf("L=%d T=%d p=q=%v: windowed %.4f vs volume %.4f (diff %.4f > %.4f)",
				cfg.l, cfg.rounds, cfg.p, fs, fv, diff, 4*sigma+0.015)
		}
	}
}

// TestCommitBoundaryQuickcheck randomizes the commit boundary, window
// size, rates and seeds, checking on every draw that (a) repeat runs
// are bit-identical, (b) the result is GOMAXPROCS-invariant, and
// (c) the committed correction cancels the accumulated error's
// syndrome exactly in both sectors — the streaming soundness property.
func TestCommitBoundaryQuickcheck(t *testing.T) {
	rng := rand.New(rand.NewPCG(905, 906))
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	for trial := 0; trial < 12; trial++ {
		l := 3 + rng.IntN(3)
		rounds := 1 + rng.IntN(14)
		window := 2 + rng.IntN(8)
		commit := 1 + rng.IntN(window-1)
		p := rng.Float64() * 0.06
		q := rng.Float64() * 0.06
		lanes := 64 + rng.IntN(130)
		seed := rng.Uint64()
		wh, wv := spacetime.Weights(p, q, l, rounds)

		run := func() (bits.Vec, bits.Vec) {
			s := mustSession(t, l, window, commit, wh, wv)
			defer s.Close()
			return s.BatchMemory(rounds, p, q, lanes, frame.NewAggregateSampler(seed, 3))
		}
		fx1, fz1 := run()
		fx2, fz2 := run()
		if !fx1.Equal(fx2) || !fz1.Equal(fz2) {
			t.Fatalf("trial %d (L=%d T=%d W=%d C=%d): repeat run differs", trial, l, rounds, window, commit)
		}
		runtime.GOMAXPROCS(1)
		fx3, fz3 := run()
		runtime.GOMAXPROCS(old)
		if !fx1.Equal(fx3) || !fz1.Equal(fz3) {
			t.Fatalf("trial %d (L=%d T=%d W=%d C=%d): GOMAXPROCS changes the result", trial, l, rounds, window, commit)
		}

		// Soundness: drive a decoder by hand so the accumulated error is
		// inspectable, then check the residual is syndrome-free per lane.
		s := mustSession(t, l, window, commit, wh, wv)
		src := spacetime.NewLayerSource(l, p, q, lanes, frame.NewAggregateSampler(seed, 4))
		d := s.NewDecoder(lanes)
		lat := toric.Cached(l)
		layerX := bits.NewVecs(lat.NumChecks(), lanes)
		layerZ := bits.NewVecs(lat.NumChecks(), lanes)
		for r := 0; r < rounds; r++ {
			src.NextLayers(layerX, layerZ)
			d.Push(layerX, layerZ)
		}
		src.CloseLayers(layerX, layerZ)
		d.Finish(layerX, layerZ)
		cumX, cumZ := src.ErrorPlanes()
		corrX, corrZ := d.Corrections()
		errv := bits.NewVec(lat.Qubits())
		for lane := 0; lane < lanes; lane += 1 + rng.IntN(7) {
			errv.Clear()
			for e := 0; e < lat.Qubits(); e++ {
				if cumX[e].Get(lane) {
					errv.Flip(e)
				}
			}
			errv.Xor(corrX[lane])
			if len(lat.Syndrome(errv)) != 0 {
				t.Fatalf("trial %d lane %d: X residual carries syndrome", trial, lane)
			}
			errv.Clear()
			for e := 0; e < lat.Qubits(); e++ {
				if cumZ[e].Get(lane) {
					errv.Flip(e)
				}
			}
			errv.Xor(corrZ[lane])
			if len(lat.StarSyndrome(errv)) != 0 {
				t.Fatalf("trial %d lane %d: Z residual carries syndrome", trial, lane)
			}
		}
		s.Close()
	}
}

// TestMemoryDeterministicAndGOMAXPROCSInvariant: the streaming Monte
// Carlo is a pure function of (samples, seed).
func TestMemoryDeterministicAndGOMAXPROCSInvariant(t *testing.T) {
	run := func() Result { return mustMemory(t, 4, 12, 0.03, 0.03, 8, 4, 900, 907) }
	a := run()
	if b := run(); a != b {
		t.Fatalf("same seed, different results: %+v vs %+v", a, b)
	}
	old := runtime.GOMAXPROCS(1)
	serial := run()
	runtime.GOMAXPROCS(8)
	parallel := run()
	runtime.GOMAXPROCS(old)
	if serial != parallel {
		t.Fatalf("result depends on GOMAXPROCS: 1 → %+v, 8 → %+v", serial, parallel)
	}
}

// TestThousandRoundStreamSmoke is the CI long-run smoke (race-enabled):
// 1,000 rounds of sustained L=4 streaming must complete, slide
// regularly, and keep the footprint flat.
func TestThousandRoundStreamSmoke(t *testing.T) {
	const (
		l      = 4
		lanes  = 64
		rounds = 1000
		p      = 0.02
	)
	w, c := DefaultWindow(l)
	wh, wv := spacetime.Weights(p, p, l, w)
	s := mustSession(t, l, w, c, wh, wv)
	defer s.Close()
	src := spacetime.NewLayerSource(l, p, p, lanes, frame.NewAggregateSampler(908, 1))
	d := s.NewDecoder(lanes)
	lat := toric.Cached(l)
	layerX := bits.NewVecs(lat.NumChecks(), lanes)
	layerZ := bits.NewVecs(lat.NumChecks(), lanes)
	warm := 0
	for r := 0; r < rounds; r++ {
		src.NextLayers(layerX, layerZ)
		d.Push(layerX, layerZ)
		if r == 99 {
			warm = d.FootprintBytes()
		}
	}
	src.CloseLayers(layerX, layerZ)
	d.Finish(layerX, layerZ)
	if d.Slides() < (rounds-w)/c {
		t.Fatalf("only %d slides over %d rounds", d.Slides(), rounds)
	}
	if final := d.FootprintBytes(); final > warm+warm/10 {
		t.Fatalf("footprint grew: %d bytes at 100 rounds, %d at 1000", warm, final)
	}
}

// TestConstantMemorySustained is the sustained-operation acceptance
// criterion: a 10,000-round L=8 streaming run completes with a resident
// decoder footprint that stays flat in the round count.
func TestConstantMemorySustained(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-round sustained run (the 1,000-round smoke covers short mode)")
	}
	const (
		l      = 8
		lanes  = 64
		rounds = 10000
		p      = 0.01
	)
	w, c := DefaultWindow(l)
	wh, wv := spacetime.Weights(p, p, l, w)
	s := mustSession(t, l, w, c, wh, wv)
	defer s.Close()
	src := spacetime.NewLayerSource(l, p, p, lanes, frame.NewAggregateSampler(909, 1))
	d := s.NewDecoder(lanes)
	lat := toric.Cached(l)
	layerX := bits.NewVecs(lat.NumChecks(), lanes)
	layerZ := bits.NewVecs(lat.NumChecks(), lanes)
	warm := 0
	for r := 0; r < rounds; r++ {
		src.NextLayers(layerX, layerZ)
		d.Push(layerX, layerZ)
		if r == 999 {
			warm = d.FootprintBytes()
		}
	}
	src.CloseLayers(layerX, layerZ)
	d.Finish(layerX, layerZ)
	final := d.FootprintBytes()
	if d.Rounds() != rounds {
		t.Fatalf("ingested %d rounds", d.Rounds())
	}
	if minSlides := (rounds - w) / c; d.Slides() < minSlides {
		t.Fatalf("only %d slides over %d rounds", d.Slides(), rounds)
	}
	// The footprint after 10k rounds must match the 1k-round warm state
	// up to defect-buffer jitter (a record-defect lane can grow its
	// support slice by a few entries, never with the round count).
	if final > warm+warm/10 {
		t.Fatalf("footprint grew with rounds: %d bytes at 1k rounds, %d at 10k", warm, final)
	}
	t.Logf("L=%d sustained run: %d rounds, %d slides, %d resident bytes", l, rounds, d.Slides(), final)
}

// TestSustainedThresholdStreaming: the streaming sustained sweep shows
// the few-percent crossing like the whole-volume experiment.
func TestSustainedThresholdStreaming(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo sweep")
	}
	cross, pts := SustainedThreshold(3, 5, []float64{0.01, 0.02, 0.03, 0.04, 0.05}, 3000, 911)
	if math.IsNaN(cross) {
		for _, pt := range pts {
			t.Logf("p=q=%.3f: L=3 %.4f  L=5 %.4f", pt.P, pt.Small.FailRate(), pt.Large.FailRate())
		}
		t.Fatal("no streaming sustained crossing on the grid")
	}
	if cross < 0.005 || cross > 0.06 {
		t.Fatalf("implausible streaming sustained threshold %.4f", cross)
	}
}

// TestWindowValidation: bad window parameters are descriptive
// construction errors (the satellite bugfix for mid-decode panics), and
// the errors name the offending values.
func TestWindowValidation(t *testing.T) {
	for _, tc := range []struct {
		name                 string
		l, w, commit, wh, wv int
	}{
		{"tiny lattice", 1, 4, 2, 1, 1},
		{"one-layer window", 4, 1, 1, 1, 1},
		{"zero window", 4, 0, 0, 1, 1},
		{"zero commit", 4, 4, 0, 1, 1},
		{"commit == window", 4, 4, 4, 1, 1},
		{"commit > window", 4, 4, 9, 1, 1},
		{"negative commit", 4, 4, -2, 1, 1},
		{"zero horizontal weight", 4, 4, 2, 0, 1},
		{"negative vertical weight", 4, 4, 2, 1, -3},
	} {
		if _, err := NewWindow(tc.l, tc.w, tc.commit, tc.wh, tc.wv); err == nil {
			t.Errorf("%s: NewWindow(%d,%d,%d,%d,%d) accepted", tc.name, tc.l, tc.w, tc.commit, tc.wh, tc.wv)
		}
		if _, err := NewSession(tc.l, tc.w, tc.commit, tc.wh, tc.wv); err == nil {
			t.Errorf("%s: NewSession accepted", tc.name)
		}
	}
	if _, err := NewCircuitWindow(4, 4, 2, 1, 1, 0); err == nil {
		t.Error("circuit window with wd=0 accepted")
	}
	if _, err := Memory(4, 0, 0.01, 0.01, 4, 2, 100, 1); err == nil {
		t.Error("Memory with zero rounds accepted")
	}
	if _, err := CircuitMemory(4, 5, noise.Uniform(0.004), 4, 4, 100, 1); err == nil {
		t.Error("CircuitMemory with commit == window accepted")
	}
	// An oversized window over a short stream stays valid — it decodes
	// whole-volume at Finish.
	if _, err := Memory(3, 2, 0.02, 0.02, 9, 3, 100, 2); err != nil {
		t.Errorf("oversized window rejected: %v", err)
	}
}

// TestSharedPoolSessions: sessions grafted onto one external
// decoder.NewPool produce bit-identical results to sessions owning
// private pools — multi-graph scheduling does not leak into decode
// output — and closing a shared-pool session leaves the pool alive.
func TestSharedPoolSessions(t *testing.T) {
	pool := decoder.NewPool(3)
	defer pool.Close()
	type cfg struct {
		l, rounds, window, commit int
		p                         float64
	}
	cfgs := []cfg{{3, 9, 4, 2, 0.03}, {4, 11, 6, 3, 0.02}, {5, 8, 5, 1, 0.04}}
	for i, c := range cfgs {
		wh, wv := spacetime.Weights(c.p, c.p, c.l, c.window)
		own := mustSession(t, c.l, c.window, c.commit, wh, wv)
		fx1, fz1 := own.BatchMemory(c.rounds, c.p, c.p, 96, frame.NewAggregateSampler(913, uint64(i)))
		own.Close()
		shared, err := NewSessionOn(pool, c.l, c.window, c.commit, wh, wv)
		if err != nil {
			t.Fatal(err)
		}
		fx2, fz2 := shared.BatchMemory(c.rounds, c.p, c.p, 96, frame.NewAggregateSampler(913, uint64(i)))
		shared.Close() // must not close the shared pool
		if !fx1.Equal(fx2) || !fz1.Equal(fz2) {
			t.Fatalf("cfg %d: shared-pool session differs from private-pool session", i)
		}
	}
	// The pool must still be live after the sessions closed.
	if _, err := pool.DecodeOn(toric.Cached(3).Graph(), nil); err != nil {
		t.Fatalf("shared pool died with its sessions: %v", err)
	}
}

// TestDecoderErrAfterPoolClose: a decoder whose shared pool is closed
// underneath it reports Err instead of panicking, and keeps the frames
// committed so far.
func TestDecoderErrAfterPoolClose(t *testing.T) {
	pool := decoder.NewPool(2)
	const l, window, commit, lanes = 3, 3, 1, 32
	s, err := NewSessionOn(pool, l, window, commit, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	src := spacetime.NewLayerSource(l, 0.05, 0.05, lanes, frame.NewAggregateSampler(915, 1))
	d := s.NewDecoder(lanes)
	lat := toric.Cached(l)
	layerX := bits.NewVecs(lat.NumChecks(), lanes)
	layerZ := bits.NewVecs(lat.NumChecks(), lanes)
	for r := 0; r < 2*window; r++ {
		src.NextLayers(layerX, layerZ)
		d.Push(layerX, layerZ)
	}
	committed := d.Committed()
	if committed == 0 {
		t.Fatal("no slides before the pool closed — test misconfigured")
	}
	pool.Close()
	for r := 0; r < 2*window; r++ {
		src.NextLayers(layerX, layerZ)
		d.Push(layerX, layerZ) // must not panic
	}
	if d.Err() == nil {
		t.Fatal("decoder did not surface the closed pool")
	}
	if d.Committed() != committed {
		t.Fatalf("committed count moved after the pool closed: %d -> %d", committed, d.Committed())
	}
	src.CloseLayers(layerX, layerZ)
	d.Finish(layerX, layerZ) // no-op under Err, must not panic
}

// TestRewindowSoundness: transplanting a live decoder onto different
// window shapes mid-stream (grow and shrink, the adaptive-window
// primitive) keeps the pipeline sound — the final committed correction
// cancels the accumulated error's syndrome — and deterministic.
func TestRewindowSoundness(t *testing.T) {
	rng := rand.New(rand.NewPCG(917, 918))
	for trial := 0; trial < 6; trial++ {
		l := 3 + rng.IntN(3)
		lanes := 48 + rng.IntN(80)
		p := 0.01 + rng.Float64()*0.04
		w1 := 2 + rng.IntN(5)
		w2 := 2 + rng.IntN(7)
		c1 := 1 + rng.IntN(w1-1)
		c2 := 1 + rng.IntN(w2-1)
		pre := 1 + rng.IntN(3*w1)
		post := 1 + rng.IntN(3*w2)
		seed := rng.Uint64()
		wh, wv := spacetime.Weights(p, p, l, w1+w2)

		run := func() (bits.Vec, bits.Vec, []bits.Vec, []bits.Vec, []bits.Vec) {
			s1 := mustSession(t, l, w1, c1, wh, wv)
			defer s1.Close()
			s2 := mustSession(t, l, w2, c2, wh, wv)
			defer s2.Close()
			src := spacetime.NewLayerSource(l, p, p, lanes, frame.NewAggregateSampler(seed, 2))
			lat := toric.Cached(l)
			layerX := bits.NewVecs(lat.NumChecks(), lanes)
			layerZ := bits.NewVecs(lat.NumChecks(), lanes)
			d := s1.NewDecoder(lanes)
			for r := 0; r < pre; r++ {
				src.NextLayers(layerX, layerZ)
				d.Push(layerX, layerZ)
			}
			rounds := d.Rounds()
			nd, err := d.Rewindow(s2)
			if err != nil {
				t.Fatalf("trial %d: rewindow: %v", trial, err)
			}
			if nd.Rounds() != rounds {
				t.Fatalf("trial %d: rewindow lost rounds: %d -> %d", trial, rounds, nd.Rounds())
			}
			for r := 0; r < post; r++ {
				src.NextLayers(layerX, layerZ)
				nd.Push(layerX, layerZ)
			}
			src.CloseLayers(layerX, layerZ)
			nd.Finish(layerX, layerZ)
			if nd.Committed() != pre+post {
				t.Fatalf("trial %d: committed %d of %d rounds", trial, nd.Committed(), pre+post)
			}
			cx, cz := src.ErrorPlanes()
			corrX, corrZ := nd.Corrections()
			return bits.Vec{}, bits.Vec{}, corrX, corrZ, append(append([]bits.Vec{}, cx...), cz...)
		}
		_, _, corrX, corrZ, planes := run()
		cumX, cumZ := planes[:len(planes)/2], planes[len(planes)/2:]
		lat := toric.Cached(l)
		errv := bits.NewVec(lat.Qubits())
		for lane := 0; lane < lanes; lane += 1 + rng.IntN(5) {
			laneError(cumX, lane, errv)
			errv.Xor(corrX[lane])
			if len(lat.Syndrome(errv)) != 0 {
				t.Fatalf("trial %d lane %d: X residual carries syndrome after rewindow", trial, lane)
			}
			laneError(cumZ, lane, errv)
			errv.Xor(corrZ[lane])
			if len(lat.StarSyndrome(errv)) != 0 {
				t.Fatalf("trial %d lane %d: Z residual carries syndrome after rewindow", trial, lane)
			}
		}
		// Determinism across repeats.
		_, _, corrX2, corrZ2, _ := run()
		for lane := 0; lane < lanes; lane++ {
			if !corrX[lane].Equal(corrX2[lane]) || !corrZ[lane].Equal(corrZ2[lane]) {
				t.Fatalf("trial %d: rewindowed stream not deterministic", trial)
			}
		}
	}
}
