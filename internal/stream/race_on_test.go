//go:build race

package stream

// raceEnabled reports whether the race detector instruments this build;
// its allocations would fail the zero-alloc pins.
const raceEnabled = true
