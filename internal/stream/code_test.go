package stream

// Streaming decode for the open-boundary families: the planar and
// rotated codes flow through the same sliding-window machinery as the
// torus, with their spatial boundaries grounded on the window's
// virtual node and boundary-truncated diagonals carrying their lone
// defect into the commit layer.

import (
	"strings"
	"testing"

	"ftqc/internal/bits"
	"ftqc/internal/frame"
	"ftqc/internal/noise"
	"ftqc/internal/spacetime"
	"ftqc/internal/surface"
	"ftqc/internal/toric"
)

func mustCodeSession(t *testing.T, code surface.Code, window, commit, wh, wv int) *Session {
	t.Helper()
	s, err := NewCodeSession(code, window, commit, wh, wv)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustCodeCircuitSession(t *testing.T, code surface.Code, window, commit, wh, wv, wd int) *Session {
	t.Helper()
	s, err := NewCodeCircuitSession(code, window, commit, wh, wv, wd)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// codeSyndrome computes the defect set of an error chain over the 2D
// sector graph, boundary node excluded.
func codeSyndrome(code surface.Code, dual bool, errv bits.Vec) []int {
	g := code.SectorGraph(dual)
	syn := make([]bool, code.Checks())
	for q := 0; q < code.Qubits(); q++ {
		if !errv.Get(q) {
			continue
		}
		a, b := g.Ends(q)
		if a < code.Checks() {
			syn[a] = !syn[a]
		}
		if b < code.Checks() {
			syn[b] = !syn[b]
		}
	}
	var defects []int
	for c, on := range syn {
		if on {
			defects = append(defects, c)
		}
	}
	return defects
}

func TestCodeWindowValidation(t *testing.T) {
	planar := surface.Planar(3)
	if _, err := NewCodeWindow(nil, 4, 2, 1, 1); err == nil {
		t.Error("nil code accepted")
	}
	if _, err := NewCodeWindow(planar, 1, 1, 1, 1); err == nil {
		t.Error("one-layer window accepted")
	}
	if _, err := NewCodeWindow(planar, 4, 4, 1, 1); err == nil {
		t.Error("commit == window accepted")
	}
	if _, err := NewCodeWindow(planar, 4, 2, 0, 1); err == nil {
		t.Error("zero horizontal weight accepted")
	}
	if _, err := NewCodeCircuitWindow(planar, 4, 2, 1, 1, 0); err == nil {
		t.Error("circuit window without diagonal weight accepted")
	}
	w, err := NewCodeCircuitWindow(planar, 4, 2, 3, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if w.Code() != planar || w.Lattice() != nil {
		t.Error("open-code window should expose the code and a nil lattice")
	}
	if tor, err := NewCodeWindow(toric.Cached(3), 4, 2, 1, 1); err != nil || tor.Lattice() == nil {
		t.Error("toric code window should still expose the lattice")
	}
}

// TestCodeStreamingSoundness pushes noisy rounds of both open families
// through sliding windows (both models, slides forced) and asserts the
// committed corrections cancel the accumulated error's syndrome lane
// by lane — the streaming residual invariant, now with grounded
// boundary chains and truncated-diagonal commits in play.
func TestCodeStreamingSoundness(t *testing.T) {
	const lanes, rounds = 96, 17
	for _, code := range []surface.Code{surface.Planar(3), surface.Rotated(5)} {
		for _, circuit := range []bool{false, true} {
			var s *Session
			var src spacetime.LayerFeed
			smp := frame.NewAggregateSampler(97, uint64(code.Qubits()))
			if circuit {
				wh, wv, wd := spacetime.WeightsCircuit(noise.Uniform(0.004), code.Distance(), 6)
				s = mustCodeCircuitSession(t, code, 6, 2, wh, wv, wd)
				src = surface.NewCircuitSource(code, noise.Uniform(0.004), lanes, smp)
			} else {
				wh, wv := spacetime.Weights(0.02, 0.02, code.Distance(), 6)
				s = mustCodeSession(t, code, 6, 2, wh, wv)
				src = surface.NewLayerSource(code, 0.02, 0.02, lanes, smp)
			}
			nc := code.Checks()
			layerX := bits.NewVecs(nc, lanes)
			layerZ := bits.NewVecs(nc, lanes)
			d := s.NewDecoder(lanes)
			for r := 0; r < rounds; r++ {
				src.NextLayers(layerX, layerZ)
				d.Push(layerX, layerZ)
			}
			src.CloseLayers(layerX, layerZ)
			d.Finish(layerX, layerZ)
			if err := d.Err(); err != nil {
				t.Fatal(err)
			}
			if d.Committed() != rounds {
				t.Fatalf("%s circuit=%v: committed %d of %d rounds", code.CodeName(), circuit, d.Committed(), rounds)
			}
			wf, ok := src.(interface{ ErrorPlanes() (x, z []bits.Vec) })
			if !ok {
				t.Fatal("source does not expose error planes")
			}
			cumX, cumZ := wf.ErrorPlanes()
			corrX, corrZ := d.Corrections()
			errv := bits.NewVec(code.Qubits())
			for lane := 0; lane < lanes; lane++ {
				laneError(cumX, lane, errv)
				errv.Xor(corrX[lane])
				if res := codeSyndrome(code, false, errv); len(res) != 0 {
					t.Fatalf("%s circuit=%v lane %d: X residual carries syndrome %v", code.CodeName(), circuit, lane, res)
				}
				laneError(cumZ, lane, errv)
				errv.Xor(corrZ[lane])
				if res := codeSyndrome(code, true, errv); len(res) != 0 {
					t.Fatalf("%s circuit=%v lane %d: Z residual carries syndrome %v", code.CodeName(), circuit, lane, res)
				}
			}
			s.Close()
		}
	}
}

func TestCodeMemoryEntryPoints(t *testing.T) {
	// Zero noise: every family streams to zero failures.
	for _, code := range []surface.Code{surface.Planar(3), surface.Rotated(3)} {
		r, err := CodeMemory(code, 8, 0, 0, 0, 0, 512, 5)
		if err != nil {
			t.Fatal(err)
		}
		if r.Failures != 0 {
			t.Errorf("%s: %d failures at p=0", code.CodeName(), r.Failures)
		}
		if r.Code != code.CodeName() {
			t.Errorf("result code family %q, want %q", r.Code, code.CodeName())
		}
		rc, err := CodeCircuitMemory(code, 8, noise.Params{}, 0, 0, 512, 5)
		if err != nil {
			t.Fatal(err)
		}
		if rc.Failures != 0 || rc.Code != code.CodeName() {
			t.Errorf("%s circuit: %+v", code.CodeName(), rc)
		}
	}
	// Determinism, and the toric entry points still stamp their family.
	a, err := CodeCircuitMemory(surface.Planar(3), 10, noise.Uniform(0.004), 0, 0, 2048, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CodeCircuitMemory(surface.Planar(3), 10, noise.Uniform(0.004), 0, 0, 2048, 11)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("planar streaming memory not deterministic: %+v vs %+v", a, b)
	}
	tr, err := CircuitMemory(3, 10, noise.Uniform(0.004), 0, 0, 256, 11)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Code != "toric" {
		t.Errorf("toric entry point stamps family %q", tr.Code)
	}
}

// TestRewindowErrorPaths covers every rejection of the adaptive-window
// primitive: invalid target shapes (wrong family, wrong distance,
// wrong model class), rewindow after Finish, and rewindow after the
// decoder entered its terminal error state.
func TestRewindowErrorPaths(t *testing.T) {
	planar := surface.Planar(3)
	wh, wv := spacetime.Weights(0.01, 0.01, 3, 4)
	newDecoder := func(t *testing.T) (*Session, *Decoder) {
		s := mustCodeSession(t, planar, 4, 2, wh, wv)
		return s, s.NewDecoder(8)
	}
	expect := func(t *testing.T, what, frag string, target *Session) {
		t.Helper()
		s, d := newDecoder(t)
		defer s.Close()
		if target != nil {
			defer target.Close()
		} else {
			target = s
		}
		_, err := d.Rewindow(target)
		if err == nil || !strings.Contains(err.Error(), frag) {
			t.Fatalf("%s: err = %v, want %q", what, err, frag)
		}
	}
	expect(t, "cross-family", "across code families",
		mustCodeSession(t, toric.Cached(3), 4, 2, wh, wv))
	expect(t, "cross-distance", "across lattice sizes",
		mustCodeSession(t, surface.Planar(5), 4, 2, wh, wv))
	expect(t, "cross-model", "across decoding models",
		mustCodeCircuitSession(t, planar, 4, 2, wh, wv, 3))

	// After Finish: the decoder is dead for rewindowing.
	s, d := newDecoder(t)
	defer s.Close()
	layerX := bits.NewVecs(planar.Checks(), 8)
	layerZ := bits.NewVecs(planar.Checks(), 8)
	d.Push(layerX, layerZ)
	d.Finish(layerX, layerZ)
	if _, err := d.Rewindow(s); err == nil || !strings.Contains(err.Error(), "finished") {
		t.Fatalf("rewindow after finish: err = %v", err)
	}

	// After Err: the terminal failure propagates out of Rewindow.
	s2, d2 := newDecoder(t)
	s2.Close()
	for c := range layerX {
		layerX[c].SetAll()
		layerZ[c].SetAll()
	}
	for r := 0; r < 8 && d2.Err() == nil; r++ {
		d2.Push(layerX, layerZ)
	}
	if d2.Err() == nil {
		t.Fatal("pushes into a closed session did not surface an error")
	}
	target := mustCodeSession(t, planar, 5, 2, wh, wv)
	defer target.Close()
	if _, err := d2.Rewindow(target); err == nil {
		t.Fatal("rewindow of an erred decoder succeeded")
	}
}
