package stream

import (
	"testing"

	"ftqc/internal/decoder"
	"ftqc/internal/frame"
	"ftqc/internal/noise"
	"ftqc/internal/spacetime"
)

// TestIncrementalWhiteBoxCircuit runs the circuit-level stream with the
// white-box validator installed: on every incremental slide, each
// lane's (active ∪ cached) correction is diffed edge-by-edge against a
// from-scratch union-find decode of the identical window syndrome. This
// catches retention bugs that happen to cancel in the committed frames
// (the black-box lockstep test) but leave the in-window forest wrong.
func TestIncrementalWhiteBoxCircuit(t *testing.T) {
	installIncrementalCheck(t)
	l, rounds := 4, 16
	window, commit := 8, 4
	// 0.005 is the sustained operating point; 0.025 sits past threshold,
	// where warm-start seeding carries dense forests and the guard
	// fallback and release waves fire — the regime the sub-window
	// re-decode must keep bit-exact.
	for _, eps := range []float64{0.005, 0.025} {
		P := noise.Uniform(eps)
		wh, wv, wd := spacetime.WeightsCircuit(P, l, window)
		for stream := uint64(0); stream < 8; stream++ {
			si := mustCircuitSession(t, l, window, commit, wh, wv, wd)
			pool := decoder.NewPool(1)
			sf, err := NewCircuitSessionOn(pool, l, window, commit, wh, wv, wd)
			if err != nil {
				t.Fatal(err)
			}
			driveBoth(t, "whitebox", si, sf, func() spacetime.LayerFeed {
				return spacetime.NewCircuitLayerSource(l, P, 64, frame.NewAggregateSampler(959, stream))
			}, rounds, 64)
			si.Close()
			pool.Close()
		}
	}
}
