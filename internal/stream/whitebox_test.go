package stream

import (
	"testing"

	"ftqc/internal/decoder"
	"ftqc/internal/frame"
	"ftqc/internal/noise"
	"ftqc/internal/spacetime"
)

// TestIncrementalWhiteBoxCircuit runs the circuit-level stream with the
// white-box validator installed: on every incremental slide, each
// lane's (active ∪ cached) correction is diffed edge-by-edge against a
// from-scratch union-find decode of the identical window syndrome. This
// catches retention bugs that happen to cancel in the committed frames
// (the black-box lockstep test) but leave the in-window forest wrong.
func TestIncrementalWhiteBoxCircuit(t *testing.T) {
	installIncrementalCheck(t)
	l, rounds := 4, 16
	P := noise.Uniform(0.005)
	window, commit := 8, 4
	wh, wv, wd := spacetime.WeightsCircuit(P, l, window)
	for stream := uint64(0); stream < 8; stream++ {
		si := mustCircuitSession(t, l, window, commit, wh, wv, wd)
		pool := decoder.NewPool(1)
		sf, err := NewCircuitSessionOn(pool, l, window, commit, wh, wv, wd)
		if err != nil {
			t.Fatal(err)
		}
		driveBoth(t, "whitebox", si, sf, func() spacetime.LayerFeed {
			return spacetime.NewCircuitLayerSource(l, P, 64, frame.NewAggregateSampler(959, stream))
		}, rounds, 64)
		si.Close()
		pool.Close()
	}
}
