package stream

import (
	"fmt"

	"ftqc/internal/decoder"
	"ftqc/internal/surface"
	"ftqc/internal/toric"
)

// Window is the immutable decode structure of one sliding-window
// configuration: the open-window graphs of both sectors over W
// difference layers of a surface.Code, with a virtual future-boundary
// node and a commit boundary at layer C.
//
// Node (c, t) of a window has index t·nc + c for buffered layers
// t = 0…W−1 (0 is the oldest); the single boundary node is W·nc. Edge
// ids: horizontal edge (e, t) = t·nq + e (a data error at buffered
// round t), then vertical edge (c, t) = W·nq + t·nc + c joining layers
// t and t+1 — where t = W−1 joins the newest layer to the boundary
// node instead (the stand-in for the first vertical edge outside the
// window). Horizontal edges weigh WH, vertical and virtual edges WV,
// exactly like the whole-volume graphs. Circuit-level windows
// (NewCircuitWindow) append the diagonal class: edge
// (e, t) = W·(nq+nc) + t·nq + e of weight WD joining data qubit e's late
// reader at layer t to its early reader at layer t+1, with the t = W−1
// diagonals grounding on the boundary node like the virtual verticals.
//
// Open-boundary codes reuse the same single virtual node for their
// spatial boundary: a 2D sector edge ending on the code's boundary
// grounds there at every layer, and a boundary-truncated diagonal (a
// single-reader data qubit's hook, lone defect at the reader one round
// late) joins that defect to the boundary.
type Window struct {
	L, W, Commit int
	WH, WV, WD   int // WD = 0: phenomenological window, no diagonals

	code         surface.Code
	lat          *toric.Lattice // non-nil only for the torus
	nq, nc       int
	nodes        int // W·nc + 1, boundary last
	horiz        int // W·nq horizontal edges (ids below this project to data qubits)
	diagOff      int // first diagonal edge id, W·(nq+nc)
	diagX, diagZ [][2]int32
	graphX       *decoder.Graph
	graphZ       *decoder.Graph
}

// NewWindow builds the window structure for an L×L toric lattice,
// window height W ≥ 2 layers, commit region 1 ≤ commit ≤ W−1, and the
// given integer edge weights (see spacetime.Weights). Invalid
// parameters return a descriptive error at construction instead of
// surfacing as a panic deep inside a later decode — a window that
// constructs cleanly streams cleanly. A window taller than the stream
// it eventually decodes is valid: it simply never slides and Finish
// runs the whole-volume decode.
func NewWindow(l, w, commit, wh, wv int) (*Window, error) {
	if l < 2 {
		return nil, fmt.Errorf("stream: lattice distance must be at least 2 (got L=%d)", l)
	}
	return newWindow(toric.Cached(l), w, commit, wh, wv, 0)
}

// NewCircuitWindow is NewWindow plus the circuit model's diagonal edge
// class of weight wd ≥ 1 (see spacetime.WeightsCircuit for the weight
// derivation and the code's ExtractionSchedule for the diagonal
// orientation).
func NewCircuitWindow(l, w, commit, wh, wv, wd int) (*Window, error) {
	if l < 2 {
		return nil, fmt.Errorf("stream: lattice distance must be at least 2 (got L=%d)", l)
	}
	if wd < 1 {
		return nil, fmt.Errorf("stream: circuit window needs a positive diagonal weight (got wd=%d)", wd)
	}
	return newWindow(toric.Cached(l), w, commit, wh, wv, wd)
}

// NewCodeWindow is NewWindow over any surface.Code (planar and rotated
// windows ground their spatial boundaries on the virtual node).
func NewCodeWindow(code surface.Code, w, commit, wh, wv int) (*Window, error) {
	if code == nil {
		return nil, fmt.Errorf("stream: window needs a code")
	}
	return newWindow(code, w, commit, wh, wv, 0)
}

// NewCodeCircuitWindow is NewCircuitWindow over any surface.Code.
func NewCodeCircuitWindow(code surface.Code, w, commit, wh, wv, wd int) (*Window, error) {
	if code == nil {
		return nil, fmt.Errorf("stream: window needs a code")
	}
	if wd < 1 {
		return nil, fmt.Errorf("stream: circuit window needs a positive diagonal weight (got wd=%d)", wd)
	}
	return newWindow(code, w, commit, wh, wv, wd)
}

func newWindow(code surface.Code, w, commit, wh, wv, wd int) (*Window, error) {
	if w < 2 {
		return nil, fmt.Errorf("stream: window must hold at least two layers (got window=%d)", w)
	}
	if commit < 1 || commit >= w {
		return nil, fmt.Errorf("stream: commit region must satisfy 1 <= commit < window (got commit=%d, window=%d); the commit lag window-commit must stay in [1, window-1]", commit, w)
	}
	if wh < 1 || wv < 1 {
		return nil, fmt.Errorf("stream: edge weights must be positive (got wh=%d, wv=%d)", wh, wv)
	}
	nc := code.Checks()
	win := &Window{
		L: code.Distance(), W: w, Commit: commit, WH: wh, WV: wv, WD: wd,
		code:    code,
		nq:      code.Qubits(),
		nc:      nc,
		nodes:   w*nc + 1,
		horiz:   w * code.Qubits(),
		diagOff: w * (code.Qubits() + nc),
	}
	if lat, ok := code.(*toric.Lattice); ok {
		win.lat = lat
	}
	if wd > 0 {
		sch := code.ExtractionSchedule()
		win.diagX, win.diagZ = sch.DiagX, sch.DiagZ
	}
	win.graphX = win.buildGraph(code.SectorGraph(false), win.diagX)
	win.graphZ = win.buildGraph(code.SectorGraph(true), win.diagZ)
	return win, nil
}

// buildGraph extrudes a 2D sector graph into the open-window graph. For
// open codes the base graph's spatial boundary node (id nc) maps onto
// the window's single virtual node at every layer.
func (w *Window) buildGraph(base *decoder.Graph, diag [][2]int32) *decoder.Graph {
	boundary := int32(w.nodes - 1)
	n := w.horiz + w.W*w.nc
	if w.WD > 0 {
		n += w.W * w.nq
	}
	ends := make([][2]int32, n)
	weights := make([]int32, len(ends))
	for t := 0; t < w.W; t++ {
		off := t * w.nq
		layer := int32(t * w.nc)
		for e := 0; e < w.nq; e++ {
			a, b := base.Ends(e)
			ea, eb := layer+int32(a), layer+int32(b)
			if int(a) == w.nc {
				ea = boundary
			}
			if int(b) == w.nc {
				eb = boundary
			}
			ends[off+e] = [2]int32{ea, eb}
			weights[off+e] = int32(w.WH)
		}
	}
	for t := 0; t < w.W; t++ {
		off := w.horiz + t*w.nc
		for c := 0; c < w.nc; c++ {
			up := boundary
			if t+1 < w.W {
				up = int32((t+1)*w.nc + c)
			}
			ends[off+c] = [2]int32{int32(t*w.nc + c), up}
			weights[off+c] = int32(w.WV)
		}
	}
	if w.WD > 0 {
		for t := 0; t < w.W; t++ {
			off := w.diagOff + t*w.nq
			layer := int32(t * w.nc)
			for e := 0; e < w.nq; e++ {
				if early := diag[e][1]; early < 0 {
					// Boundary-truncated diagonal: the lone defect sits at
					// (diag[e][0], t+1) and pairs with the boundary. At the
					// top layer that defect falls outside the window; the
					// edge stands in at layer t like the virtual verticals
					// (it can never commit — t = W−1 ≥ Commit always).
					lo := layer + diag[e][0]
					if t+1 < w.W {
						lo = int32((t+1)*w.nc) + diag[e][0]
					}
					ends[off+e] = [2]int32{lo, boundary}
				} else {
					up := boundary
					if t+1 < w.W {
						up = int32((t+1)*w.nc) + early
					}
					ends[off+e] = [2]int32{layer + diag[e][0], up}
				}
				weights[off+e] = int32(w.WD)
			}
		}
	}
	return decoder.NewBoundaryGraph(w.nodes, ends, weights, []int{int(boundary)})
}

// shiftEdge translates an edge id down by Commit layers — the id the
// same physical edge carries after one slide. Each edge class is
// layer-major, so the shift is a per-class constant: Commit·nq for
// horizontal and diagonal edges, Commit·nc for vertical ones. Only
// edges whose layer is at least Commit (Commit+1 for verticals' lower
// endpoint is implied by the incremental retention band) have a
// translated image; the caller guarantees that.
func (w *Window) shiftEdge(e int32) int32 {
	switch {
	case int(e) < w.horiz:
		return e - int32(w.Commit*w.nq)
	case int(e) < w.diagOff:
		return e - int32(w.Commit*w.nc)
	default:
		return e - int32(w.Commit*w.nq)
	}
}

// Graph returns the primal (plaquette-sector) open-window graph.
func (w *Window) Graph() *decoder.Graph { return w.graphX }

// DualGraph returns the dual (star-sector) open-window graph.
func (w *Window) DualGraph() *decoder.Graph { return w.graphZ }

// Code returns the underlying surface code.
func (w *Window) Code() surface.Code { return w.code }

// Lattice returns the underlying 2D toric lattice, or nil when the
// window decodes an open-boundary code (use Code instead).
func (w *Window) Lattice() *toric.Lattice { return w.lat }
