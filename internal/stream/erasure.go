package stream

// Streaming circuit-level erasure and correlated decoding: the sliding
// window's half of internal/spacetime/circuiterasure.go. An erasure-
// harvesting source (extract.NewSourceErased /
// surface.NewCircuitSourceErased) reports every leak as a located
// fault; PushErased carries those planes alongside the difference
// layers, and every slide decodes the lanes they touch from scratch
// with the erased edges seeded into the union-find peeling pass.
// Correlated decoders serialize each slide — primal window first, dual
// repriced from the primal correction — so the committed frames stay a
// pure function of the stream for any worker count, and a window taller
// than the stream reproduces the whole-volume decode bit for bit.

import (
	"fmt"

	"ftqc/internal/bits"
	"ftqc/internal/extract"
	"ftqc/internal/frame"
	"ftqc/internal/noise"
	"ftqc/internal/spacetime"
	"ftqc/internal/surface"
)

// PushErased is Push for an erasure-harvesting feed: one round's
// difference layers plus its erasure side information — eraH qubit-major
// (nq planes: lanes whose data qubit is a located fault this round),
// lostX/lostZ check-major (nc planes per sector: lanes whose ancilla
// measurement read as a coin). A decoder built without ErasureAware
// accepts the planes and ignores them — that is the erasure-blind
// control arm at matched marginals. Mixing Push and PushErased on one
// decoder panics.
func (d *Decoder) PushErased(layerX, layerZ, eraH, lostX, lostZ []bits.Vec) {
	w := d.s.win
	if d.err != nil {
		return
	}
	if d.finished {
		panic("stream: PushErased after Finish")
	}
	if d.pushMode == pushPlain {
		panic("stream: PushErased on a decoder fed by Push — use one push discipline per stream")
	}
	d.pushMode = pushErased
	if len(eraH) != w.nq || len(lostX) != w.nc || len(lostZ) != w.nc {
		panic("stream: erasure plane count mismatch")
	}
	slot := d.pushRound(layerX, layerZ)
	if slot < 0 || d.eraRing == nil {
		return
	}
	eq := true
	for e := 0; e < w.nq; e++ {
		d.eraRing[slot*w.nq+e].CopyFrom(eraH[e])
		eq = eq && eraH[e].Zero()
	}
	d.eraQuiet[slot] = eq
	lqX, lqZ := true, true
	for c := 0; c < w.nc; c++ {
		d.sx.lostRing[slot*w.nc+c].CopyFrom(lostX[c])
		lqX = lqX && lostX[c].Zero()
		d.sz.lostRing[slot*w.nc+c].CopyFrom(lostZ[c])
		lqZ = lqZ && lostZ[c].Zero()
	}
	d.sx.lostQuiet[slot] = lqX
	d.sz.lostQuiet[slot] = lqZ
}

// BatchCircuitMemoryFrom drains an erasure-harvesting circuit feed
// through the sliding window with the selected decode options — the
// streaming counterpart of Volume.BatchCircuitErasedFrom. The feed must
// be fresh and match the window's lattice and code family.
func (s *Session) BatchCircuitMemoryFrom(src spacetime.ErasedLayerFeed, rounds int, opts spacetime.DecodeOptions) (failX, failZ bits.Vec) {
	w := s.win
	s.checkFeed(src)
	lanes := src.Lanes()
	d := s.NewDecoderOpts(lanes, opts)
	layerX := bits.NewVecs(w.nc, lanes)
	layerZ := bits.NewVecs(w.nc, lanes)
	eraH := bits.NewVecs(w.nq, lanes)
	lostX := bits.NewVecs(w.nc, lanes)
	lostZ := bits.NewVecs(w.nc, lanes)
	for t := 0; t < rounds; t++ {
		src.NextLayersErased(layerX, layerZ, eraH, lostX, lostZ)
		d.PushErased(layerX, layerZ, eraH, lostX, lostZ)
	}
	src.CloseLayers(layerX, layerZ)
	d.Finish(layerX, layerZ)
	if err := d.Err(); err != nil {
		// The Monte Carlo paths own their pool, so a mid-run closure is a
		// caller bug, not an operating condition.
		panic(err)
	}
	return s.failureMasks(src, d)
}

// CircuitMemoryOpts is the streaming circuit-level memory Monte Carlo
// with leakage and the selected decode options: `rounds` full
// extraction circuits per shot under P (including its Leak and Bias
// channels) slide through the window, erased lanes decode with their
// located faults, and correlated runs reprice the dual window each
// slide. Result.Pe reports the leak rate. A malformed model or horizon
// is a constructor error — leakage is never silently ignored.
func CircuitMemoryOpts(l, rounds int, P noise.Params, window, commit, samples int, seed uint64, opts spacetime.DecodeOptions) (Result, error) {
	if err := P.Validate(); err != nil {
		return Result{}, err
	}
	window, commit = defaultedWindow(l, window, commit)
	if rounds < 1 {
		return Result{}, fmt.Errorf("stream: memory experiment needs at least one noisy round (got rounds=%d)", rounds)
	}
	wh, wv, wd := spacetime.WeightsCircuit(P, l, window)
	s, err := NewCircuitSession(l, window, commit, wh, wv, wd)
	if err != nil {
		return Result{}, err
	}
	defer s.Close()
	fx, fz, fa := frame.CountSectorFailures(samples, seed, func(lanes int, smp frame.Sampler) (bits.Vec, bits.Vec) {
		return s.BatchCircuitMemoryFrom(extract.NewSourceErased(l, P, lanes, smp), rounds, opts)
	})
	return Result{Code: "toric", L: l, T: rounds, Window: window, Commit: commit, P: P.Gate2, Q: P.Meas,
		Pe: P.Leak, Samples: samples, FailX: fx, FailZ: fz, Failures: fa}, nil
}

// CodeCircuitMemoryOpts is CircuitMemoryOpts for any surface.Code —
// including schedule overrides (surface.WithSchedule), which is how the
// CNOT-schedule ablation streams both schedules through one pipeline.
func CodeCircuitMemoryOpts(code surface.Code, rounds int, P noise.Params, window, commit, samples int, seed uint64, opts spacetime.DecodeOptions) (Result, error) {
	if err := P.Validate(); err != nil {
		return Result{}, err
	}
	window, commit = defaultedWindow(code.Distance(), window, commit)
	if rounds < 1 {
		return Result{}, fmt.Errorf("stream: memory experiment needs at least one noisy round (got rounds=%d)", rounds)
	}
	wh, wv, wd := spacetime.WeightsCircuit(P, code.Distance(), window)
	s, err := NewCodeCircuitSession(code, window, commit, wh, wv, wd)
	if err != nil {
		return Result{}, err
	}
	defer s.Close()
	fx, fz, fa := frame.CountSectorFailures(samples, seed, func(lanes int, smp frame.Sampler) (bits.Vec, bits.Vec) {
		return s.BatchCircuitMemoryFrom(surface.NewCircuitSourceErased(code, P, lanes, smp), rounds, opts)
	})
	return Result{Code: code.CodeName(), L: code.Distance(), T: rounds, Window: window, Commit: commit,
		P: P.Gate2, Q: P.Meas, Pe: P.Leak, Samples: samples, FailX: fx, FailZ: fz, Failures: fa}, nil
}
