// Package stream decodes an endless noisy-syndrome stream through a
// sliding window — the architecture a real fault-tolerant memory needs.
// The whole-volume pipeline (package spacetime) materializes all T
// rounds before decoding, so memory and latency grow linearly with T;
// a streaming memory must instead decode as rounds arrive, in constant
// space, forever. Gottesman (arXiv:2210.15844) calls real-time decoding
// under a continuous syndrome stream the central systems challenge of
// FTQC; this package is that subsystem.
//
// # Sliding window with a commit region
//
// The decoder buffers the most recent W difference-syndrome layers per
// lane. When the buffer is full and a new round arrives, the window is
// decoded over an open-window graph: the W layers' detectors with the
// usual horizontal (data-error) and vertical (measurement-error)
// weighted edges, plus one virtual boundary node joined to the newest
// layer by vertical-weight edges — a defect near the open edge may be a
// measurement error whose partner round has not happened yet, and the
// boundary absorbs exactly that possibility (decoder.NewBoundaryGraph).
//
// The correction is then split at the commit boundary C < W:
//
//   - every correction edge touching a layer below C is committed —
//     space-like edges XOR into the lane's running Pauli frame,
//     time-like edges are measurement-error assignments and vanish;
//   - a committed time-like edge crossing the boundary (layer C−1 to C)
//     cuts its chain there, leaving an artificial "carry" defect at
//     layer C that re-enters the next window;
//   - everything above C is discarded and re-decoded on the next slide,
//     when one more round of context has arrived.
//
// Because every edge incident to a sub-C detector is committed, the
// committed chains cancel the sub-C defects exactly; the window then
// slides forward by C rounds. Per-lane state is the layer ring, the
// carry, and the frame: O(L²·W) bits regardless of how many rounds
// stream past — the constant-memory property the sustained experiments
// rely on. At stream end one perfect round closes the remaining buffer,
// which decodes as an ordinary closed volume; with W ≥ T no slide ever
// fires and the stream decode is bit-identical to the whole-volume
// decode (tested).
//
// # Incremental slide
//
// Successive windows share W − C layers, so a naive slide re-decodes
// mostly old syndrome. Three escapes recover that cost, none of which
// may change a committed bit. A per-lane defect count maintained at
// Push lets a silent window skip its decode outright (the sparse fast
// path — a quiet stream costs ring bookkeeping only). A lane that
// stays sparse retains its decoded cluster forest across the slide:
// the guarded decode (decoder.DecodeGuarded) extracts every cluster
// confined to the retention band, the next decode strips those defects
// and re-seeds the clusters as erasures, and a guard set over their
// footprint aborts to a full from-scratch re-decode of the lane the
// moment any new cluster touches a retained one. The fallback makes
// the committed frames bit-identical to a from-scratch decoder fed the
// same layers for ANY deterministic retention policy (the lockstep and
// white-box suites pin this); the shipped policy caches a lane only
// below a density threshold and backs off exponentially after a
// conflict, so the machinery is free at threshold-point densities and
// dominant in the quiet regime. SetIncremental(false) disables both
// paths. Rewindow drops the cache — its cluster ids live in the old
// window's coordinate system — and the replayed layers rebuild it.
// Warm Push (slides included) runs at zero heap allocations.
//
// # Decode service
//
// Window decodes are fanned out through decoder.Service — a long-lived
// worker pool bound to the window graph (batched shot submissions in,
// corrections out, bit-identical for any worker count). One service per
// sector is shared by every chunk of a Monte Carlo run, so the pool
// persists across thousands of submissions, the shape a control-system
// consumer would call at scale.
//
// Accuracy: a window of W ≥ 2L rounds with a C = W/2 commit region
// reproduces whole-volume logical failure rates within statistical
// error (tested); shorter windows trade fidelity for latency.
package stream
