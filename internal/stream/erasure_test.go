package stream

import (
	"runtime"
	"testing"

	"ftqc/internal/bits"
	"ftqc/internal/extract"
	"ftqc/internal/frame"
	"ftqc/internal/noise"
	"ftqc/internal/spacetime"
)

// TestErasedWindowGEVolumeBitIdentical: when the window holds the whole
// stream, draining an erasure-harvesting source through the streaming
// decoder must reproduce Volume.BatchCircuitErasedFrom bit for bit —
// for every option set, including the serialized correlated pass. Same
// draws, same canonical erased lists, same primal→dual order.
func TestErasedWindowGEVolumeBitIdentical(t *testing.T) {
	const lanes = 192
	for _, cfg := range []struct {
		l, rounds int
		eps, leak float64
		opts      spacetime.DecodeOptions
	}{
		{4, 4, 0.006, 0.01, spacetime.DecodeOptions{ErasureAware: true}},
		{4, 4, 0.006, 0.01, spacetime.DecodeOptions{}},
		{4, 4, 0.006, 0.008, spacetime.DecodeOptions{ErasureAware: true, Correlated: true}},
		{4, 4, 0.008, 0, spacetime.DecodeOptions{Correlated: true}},
		{3, 2, 0.01, 0.02, spacetime.DecodeOptions{ErasureAware: true}},
		{5, 3, 0.004, 0.006, spacetime.DecodeOptions{ErasureAware: true, Correlated: true}},
	} {
		P := noise.Uniform(cfg.eps)
		P.Leak = cfg.leak
		wh, wv, wd := spacetime.WeightsCircuit(P, cfg.l, cfg.rounds)
		v := spacetime.CachedCircuitVolume(cfg.l, cfg.rounds, wh, wv, wd)
		fx1, fz1 := v.BatchCircuitErasedFrom(
			extract.NewSourceErased(cfg.l, P, lanes, frame.NewAggregateSampler(971, 7)), cfg.opts)
		s := mustCircuitSession(t, cfg.l, cfg.rounds, 1, wh, wv, wd)
		fx2, fz2 := s.BatchCircuitMemoryFrom(
			extract.NewSourceErased(cfg.l, P, lanes, frame.NewAggregateSampler(971, 7)), cfg.rounds, cfg.opts)
		s.Close()
		if !fx1.Equal(fx2) || !fz1.Equal(fz2) {
			t.Fatalf("L=%d T=%d leak=%v opts=%+v: streaming erased decode differs from whole-volume (X %d vs %d fails, Z %d vs %d)",
				cfg.l, cfg.rounds, cfg.leak, cfg.opts, fx1.Weight(), fx2.Weight(), fz1.Weight(), fz2.Weight())
		}
	}
}

// TestErasedSlidingIncrementalMatchesFromScratch: on a genuinely
// sliding erasure-fed stream the incremental slide (which must drop its
// cluster cache for every lane the erasures touch) commits the same
// frames as the plain from-scratch slide.
func TestErasedSlidingIncrementalMatchesFromScratch(t *testing.T) {
	const l, rounds, window, commit, lanes = 4, 12, 5, 2, 192
	P := noise.Uniform(0.005)
	P.Leak = 0.008
	wh, wv, wd := spacetime.WeightsCircuit(P, l, window)
	run := func(incremental bool) (bits.Vec, bits.Vec) {
		s := mustCircuitSession(t, l, window, commit, wh, wv, wd)
		defer s.Close()
		s.SetIncremental(incremental)
		return s.BatchCircuitMemoryFrom(
			extract.NewSourceErased(l, P, lanes, frame.NewAggregateSampler(973, 5)), rounds,
			spacetime.DecodeOptions{ErasureAware: true})
	}
	fx1, fz1 := run(true)
	fx2, fz2 := run(false)
	if !fx1.Equal(fx2) || !fz1.Equal(fz2) {
		t.Fatalf("incremental erased slide differs from from-scratch (X %d vs %d fails, Z %d vs %d)",
			fx1.Weight(), fx2.Weight(), fz1.Weight(), fz2.Weight())
	}
}

// TestErasedLeakFreeMatchesPlainStream: with Leak = 0 the erasure-
// harvesting source consumes the sampler stream identically to the
// plain one, and the erased push path must not perturb the decode —
// blind or aware.
func TestErasedLeakFreeMatchesPlainStream(t *testing.T) {
	const l, rounds, window, commit, lanes = 4, 10, 5, 2, 192
	P := noise.Uniform(0.007)
	wh, wv, wd := spacetime.WeightsCircuit(P, l, window)
	s := mustCircuitSession(t, l, window, commit, wh, wv, wd)
	defer s.Close()
	fx1, fz1 := s.BatchMemoryFrom(extract.NewSource(l, P, lanes, frame.NewAggregateSampler(977, 3)), rounds)
	for _, opts := range []spacetime.DecodeOptions{{}, {ErasureAware: true}} {
		fx2, fz2 := s.BatchCircuitMemoryFrom(
			extract.NewSourceErased(l, P, lanes, frame.NewAggregateSampler(977, 3)), rounds, opts)
		if !fx1.Equal(fx2) || !fz1.Equal(fz2) {
			t.Fatalf("opts=%+v: leak-free erased stream differs from plain stream", opts)
		}
	}
}

// TestPushDisciplineMixingPanics: a decoder is fed by Push or
// PushErased, never both.
func TestPushDisciplineMixingPanics(t *testing.T) {
	const l, window, commit, lanes = 4, 4, 2, 64
	P := noise.Uniform(0.005)
	wh, wv, wd := spacetime.WeightsCircuit(P, l, window)
	s := mustCircuitSession(t, l, window, commit, wh, wv, wd)
	defer s.Close()
	w := s.win
	layerX := bits.NewVecs(w.nc, lanes)
	layerZ := bits.NewVecs(w.nc, lanes)
	eraH := bits.NewVecs(w.nq, lanes)
	lostX := bits.NewVecs(w.nc, lanes)
	lostZ := bits.NewVecs(w.nc, lanes)

	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	d := s.NewDecoder(lanes)
	d.Push(layerX, layerZ)
	mustPanic("PushErased after Push", func() { d.PushErased(layerX, layerZ, eraH, lostX, lostZ) })

	d2 := s.NewDecoderOpts(lanes, spacetime.DecodeOptions{ErasureAware: true})
	d2.PushErased(layerX, layerZ, eraH, lostX, lostZ)
	mustPanic("Push after PushErased", func() { d2.Push(layerX, layerZ) })
	mustPanic("erasure plane count mismatch", func() { d2.PushErased(layerX, layerZ, eraH[:1], lostX, lostZ) })
}

// TestErasedRewindowRefused: the adaptive-window transplant does not
// carry erasure rings or correlated state; asking for it is an error,
// not a silent drop of the side information.
func TestErasedRewindowRefused(t *testing.T) {
	const l, lanes = 4, 64
	P := noise.Uniform(0.005)
	P.Leak = 0.01
	wh, wv, wd := spacetime.WeightsCircuit(P, l, 4)
	s := mustCircuitSession(t, l, 4, 2, wh, wv, wd)
	defer s.Close()
	s2 := mustCircuitSession(t, l, 6, 2, wh, wv, wd)
	defer s2.Close()
	w := s.win
	layerX := bits.NewVecs(w.nc, lanes)
	layerZ := bits.NewVecs(w.nc, lanes)
	eraH := bits.NewVecs(w.nq, lanes)
	lostX := bits.NewVecs(w.nc, lanes)
	lostZ := bits.NewVecs(w.nc, lanes)

	d := s.NewDecoder(lanes)
	d.PushErased(layerX, layerZ, eraH, lostX, lostZ)
	if _, err := d.Rewindow(s2); err == nil {
		t.Fatal("Rewindow accepted an erasure-fed decoder")
	}
	dc := s.NewDecoderOpts(lanes, spacetime.DecodeOptions{Correlated: true})
	if _, err := dc.Rewindow(s2); err == nil {
		t.Fatal("Rewindow accepted a correlated decoder")
	}
}

// TestCircuitMemoryOptsDeterministicAndServiceInvariant: the correlated
// + erasure-aware streaming Monte Carlo over a genuinely sliding stream
// is a pure function of (samples, seed) regardless of the service
// worker count — the serialized primal→dual slide keeps the committed
// frames worker-invariant.
func TestCircuitMemoryOptsDeterministicAndServiceInvariant(t *testing.T) {
	P := noise.Uniform(0.006)
	P.Leak = 0.006
	opts := spacetime.DecodeOptions{ErasureAware: true, Correlated: true}
	run := func() Result {
		r, err := CircuitMemoryOpts(4, 10, P, 5, 2, 400, 979, opts)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a := run()
	if b := run(); a != b {
		t.Fatalf("same seed, different results: %+v vs %+v", a, b)
	}
	old := runtime.GOMAXPROCS(1)
	serial := run()
	runtime.GOMAXPROCS(8)
	parallel := run()
	runtime.GOMAXPROCS(old)
	if serial != parallel {
		t.Fatalf("result depends on service worker count: 1 → %+v, 8 → %+v", serial, parallel)
	}
}

// TestCircuitMemoryOptsValidation: malformed models and horizons are
// constructor errors through the streaming entry points too.
func TestCircuitMemoryOptsValidation(t *testing.T) {
	bad := noise.Uniform(0.005)
	bad.Leak = -0.1
	if _, err := CircuitMemoryOpts(4, 4, bad, 0, 0, 64, 1, spacetime.DecodeOptions{}); err == nil {
		t.Fatal("CircuitMemoryOpts accepted Leak=-0.1")
	}
	if _, err := CircuitMemoryOpts(4, 0, noise.Uniform(0.005), 0, 0, 64, 1, spacetime.DecodeOptions{}); err == nil {
		t.Fatal("CircuitMemoryOpts accepted rounds=0")
	}
}
