package stream

import (
	"math/rand/v2"
	"testing"

	"ftqc/internal/bits"
	"ftqc/internal/decoder"
	"ftqc/internal/frame"
	"ftqc/internal/noise"
	"ftqc/internal/spacetime"
	"ftqc/internal/toric"
)

// driveBoth streams the same layer feed through an incremental and a
// from-scratch decoder in lockstep, comparing committed frames and
// carries after every push and after Finish. Returns the incremental
// decoder's slide count so callers can assert the stream actually slid.
func driveBoth(t *testing.T, tag string, si, sf *Session, feed func() spacetime.LayerFeed, rounds, lanes int) int {
	t.Helper()
	si.SetIncremental(true)
	sf.SetIncremental(false)
	srcI, srcF := feed(), feed()
	di := si.NewDecoder(lanes)
	df := sf.NewDecoder(lanes)
	nc := si.win.nc
	lx1 := bits.NewVecs(nc, lanes)
	lz1 := bits.NewVecs(nc, lanes)
	lx2 := bits.NewVecs(nc, lanes)
	lz2 := bits.NewVecs(nc, lanes)
	compare := func(stage string) {
		t.Helper()
		cxi, czi := di.Corrections()
		cxf, czf := df.Corrections()
		for lane := 0; lane < lanes; lane++ {
			if !cxi[lane].Equal(cxf[lane]) || !czi[lane].Equal(czf[lane]) {
				t.Fatalf("%s: %s: lane %d committed frames diverge (slides=%d)", tag, stage, lane, di.Slides())
			}
			if !di.sx.carry[lane].Equal(df.sx.carry[lane]) || !di.sz.carry[lane].Equal(df.sz.carry[lane]) {
				t.Fatalf("%s: %s: lane %d carries diverge (slides=%d)", tag, stage, lane, di.Slides())
			}
		}
		if di.DefectsObserved() != df.DefectsObserved() {
			t.Fatalf("%s: %s: defect counters diverge (%d vs %d)", tag, stage, di.DefectsObserved(), df.DefectsObserved())
		}
	}
	for r := 0; r < rounds; r++ {
		srcI.NextLayers(lx1, lz1)
		srcF.NextLayers(lx2, lz2)
		di.Push(lx1, lz1)
		df.Push(lx2, lz2)
		compare("push")
	}
	srcI.CloseLayers(lx1, lz1)
	srcF.CloseLayers(lx2, lz2)
	di.Finish(lx1, lz1)
	df.Finish(lx2, lz2)
	if di.Err() != nil || df.Err() != nil {
		t.Fatalf("%s: decoder error: %v / %v", tag, di.Err(), df.Err())
	}
	compare("finish")
	return di.Slides()
}

// TestIncrementalMatchesFromScratch is the cross-implementation pin of
// the incremental slide: persistent cluster forests, the sparse
// quiet-window skip, and the guard-conflict fallback must commit
// frames bit-identical to the plain from-scratch slide on the same
// layer feed — phenomenological and circuit-level, across window
// shapes, error rates (quiet regions through threshold), lane counts
// and worker counts.
func TestIncrementalMatchesFromScratch(t *testing.T) {
	rng := rand.New(rand.NewPCG(4501, 4502))
	slid := 0
	for trial := 0; trial < 14; trial++ {
		l := 3 + rng.IntN(3)
		rounds := 2 + rng.IntN(14)
		window := 2 + rng.IntN(8)
		commit := 1 + rng.IntN(window-1)
		lanes := 33 + rng.IntN(96)
		seed := rng.Uint64()
		// Sweep quiet regions (sparse path), moderate rates (forest
		// retention), near-threshold (conflict fallback) and the dense
		// regime past threshold, where warm-start retention carries a
		// sizeable fraction of the window and release waves fire.
		p := []float64{0.0002, 0.004, 0.012, 0.025, 0.05}[trial%5]
		workers := 1 + rng.IntN(4)
		circuit := trial%2 == 1
		if circuit {
			P := noise.Uniform(p)
			wh, wv, wd := spacetime.WeightsCircuit(P, l, window)
			si := mustCircuitSession(t, l, window, commit, wh, wv, wd)
			pool := decoder.NewPool(workers)
			sf, err := NewCircuitSessionOn(pool, l, window, commit, wh, wv, wd)
			if err != nil {
				t.Fatal(err)
			}
			slid += driveBoth(t, "circuit", si, sf, func() spacetime.LayerFeed {
				return spacetime.NewCircuitLayerSource(l, P, lanes, frame.NewAggregateSampler(seed, 5))
			}, rounds, lanes)
			si.Close()
			pool.Close()
		} else {
			wh, wv := spacetime.Weights(p, p, l, rounds)
			si, err := NewSession(l, window, commit, wh, wv)
			if err != nil {
				t.Fatal(err)
			}
			pool := decoder.NewPool(workers)
			sf, err := NewSessionOn(pool, l, window, commit, wh, wv)
			if err != nil {
				t.Fatal(err)
			}
			slid += driveBoth(t, "phenomenological", si, sf, func() spacetime.LayerFeed {
				return spacetime.NewLayerSource(l, p, p, lanes, frame.NewAggregateSampler(seed, 5))
			}, rounds, lanes)
			si.Close()
			pool.Close()
		}
	}
	if slid == 0 {
		t.Fatal("no trial ever slid its window — the incremental path was not exercised")
	}
}

// TestRewindowDropsForestCleanly pins the Rewindow × incremental
// contract: transplanting a live incremental decoder onto a new window
// shape drops the cluster cache (its ids live in the old coordinate
// system) and the replayed layers rebuild the forest from scratch — the
// committed frames must stay bit-identical to a from-scratch decoder
// performing the identical rewindow on the identical stream, at every
// push and after Finish.
func TestRewindowDropsForestCleanly(t *testing.T) {
	installIncrementalCheck(t)
	rng := rand.New(rand.NewPCG(4701, 4702))
	for trial := 0; trial < 8; trial++ {
		l := 3 + rng.IntN(3)
		lanes := 33 + rng.IntN(64)
		// 0.05 is past threshold: the pre-rewindow decoder carries a
		// dense retained forest, not the sparse-regime remnants the
		// original sweep stopped at.
		p := []float64{0.001, 0.01, 0.03, 0.05}[trial%4]
		w1 := 4 + rng.IntN(4)
		c1 := 1 + rng.IntN(w1-1)
		w2 := 4 + rng.IntN(6)
		c2 := 1 + rng.IntN(w2-1)
		pre := w1 + 1 + rng.IntN(2*w1) // past the first slide: a live cache exists
		post := w2 + rng.IntN(2*w2)
		seed := rng.Uint64()
		wh, wv := spacetime.Weights(p, p, l, w1+w2)

		liveCaches := 0
		arm := func(incremental bool) (x, z []bits.Vec) {
			s1, err := NewSession(l, w1, c1, wh, wv)
			if err != nil {
				t.Fatal(err)
			}
			defer s1.Close()
			s2, err := NewSession(l, w2, c2, wh, wv)
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			s1.SetIncremental(incremental)
			s2.SetIncremental(incremental)
			src := spacetime.NewLayerSource(l, p, p, lanes, frame.NewAggregateSampler(seed, 3))
			nc := s1.win.nc
			lx := bits.NewVecs(nc, lanes)
			lz := bits.NewVecs(nc, lanes)
			d := s1.NewDecoder(lanes)
			for r := 0; r < pre; r++ {
				src.NextLayers(lx, lz)
				d.Push(lx, lz)
			}
			if incremental {
				for lane := 0; lane < lanes; lane++ {
					liveCaches += d.sx.cacheLen(lane) + d.sz.cacheLen(lane)
				}
			}
			nd, err := d.Rewindow(s2)
			if err != nil {
				t.Fatalf("trial %d: rewindow: %v", trial, err)
			}
			for r := 0; r < post; r++ {
				src.NextLayers(lx, lz)
				nd.Push(lx, lz)
			}
			src.CloseLayers(lx, lz)
			nd.Finish(lx, lz)
			if nd.Err() != nil {
				t.Fatalf("trial %d: %v", trial, nd.Err())
			}
			if nd.Committed() != pre+post {
				t.Fatalf("trial %d: committed %d of %d rounds", trial, nd.Committed(), pre+post)
			}
			return nd.Corrections()
		}
		xi, zi := arm(true)
		xf, zf := arm(false)
		for lane := 0; lane < lanes; lane++ {
			if !xi[lane].Equal(xf[lane]) || !zi[lane].Equal(zf[lane]) {
				t.Fatalf("trial %d lane %d: rewindowed incremental diverges from from-scratch", trial, lane)
			}
		}
		// The dense trials must actually move a live forest: a retaining
		// window past threshold that rewindows with an empty cache means
		// the scenario under test never happened.
		if p >= 0.05 && liveCaches == 0 {
			d := s1Retains(t, l, w1, c1, wh, wv)
			if d {
				t.Fatalf("trial %d: dense rewindow never carried a live retained forest", trial)
			}
		}
	}
}

// s1Retains reports whether the (w1, c1) window shape admits a
// retention band at all — shapes that don't legitimately rewindow with
// an empty cache.
func s1Retains(t *testing.T, l, w, c, wh, wv int) bool {
	t.Helper()
	s, err := NewSession(l, w, c, wh, wv)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	d := s.NewDecoder(1)
	return d.retain
}

// TestIncrementalQuietStream pins the sparse fast path's behavior on a
// silent stream: with no defects anywhere the slide must skip its
// decodes outright (no defects observed, frames empty), yet counters
// must advance exactly as if every window had been decoded.
func TestIncrementalQuietStream(t *testing.T) {
	l := 4
	s, err := NewSession(l, 6, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	lanes := 64
	lat := toric.Cached(l)
	zeroX := bits.NewVecs(lat.NumChecks(), lanes)
	zeroZ := bits.NewVecs(lat.NumChecks(), lanes)
	d := s.NewDecoder(lanes)
	for r := 0; r < 40; r++ {
		d.Push(zeroX, zeroZ)
	}
	d.Finish(zeroX, zeroZ)
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
	if d.DefectsObserved() != 0 {
		t.Fatalf("quiet stream observed %d defects", d.DefectsObserved())
	}
	if d.Committed() != 40 {
		t.Fatalf("quiet stream committed %d of 40 rounds", d.Committed())
	}
	if got := d.Slides(); got != (40-6)/3+1 {
		t.Fatalf("quiet stream slid %d times", got)
	}
	corrX, corrZ := d.Corrections()
	for lane := 0; lane < lanes; lane++ {
		if corrX[lane].Any() || corrZ[lane].Any() {
			t.Fatalf("quiet stream committed a correction in lane %d", lane)
		}
	}
}
