package pauli

import (
	"math/rand/v2"
	"testing"
)

func randomPauli(rng *rand.Rand, n int) Pauli {
	p := NewIdentity(n)
	for i := 0; i < n; i++ {
		p.SetAt(i, Single(rng.IntN(4)))
	}
	p.Phase = uint8(rng.IntN(4))
	return p
}

func TestParseRoundTrip(t *testing.T) {
	for _, s := range []string{"IXZY", "XXXX", "-ZZ", "iX", "-iYIZ", "I"} {
		p := MustFromString(s)
		want := s
		if want[0] != '-' && want[0] != 'i' && want[0] != '+' {
			// canonical form has no '+' prefix
		}
		if got := p.String(); got != want {
			t.Errorf("round trip %q: got %q", s, got)
		}
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := FromString("XQ"); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestSingleQubitAlgebra(t *testing.T) {
	// X·Z = -Z·X, X² = Z² = Y² = I, X·Z = -iY.
	x := MustFromString("X")
	z := MustFromString("Z")
	y := MustFromString("Y")
	xz := x.Mul(z)
	zx := z.Mul(x)
	if xz.EqualUpToPhase(zx) && (xz.Phase-zx.Phase)%4 != 2 {
		t.Fatalf("XZ and ZX should differ by -1: phases %d %d", xz.Phase, zx.Phase)
	}
	if !x.Mul(x).IsIdentity() || x.Mul(x).Phase != 0 {
		t.Fatal("X^2 != I")
	}
	if !y.Mul(y).IsIdentity() || y.Mul(y).Phase != 0 {
		t.Fatalf("Y^2 != I (phase %d)", y.Mul(y).Phase)
	}
	// X·Z = -i·Y: phase of XZ must be phase of Y minus 1 mod 4.
	if !xz.EqualUpToPhase(y) {
		t.Fatal("XZ not proportional to Y")
	}
	if (xz.Phase+1)%4 != y.Phase {
		t.Fatalf("XZ = i^%d·(unsigned Y), want i^%d = -i", xz.Phase, (y.Phase+3)%4)
	}
}

func TestCommutesMatchesDefinition(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.IntN(10)
		p, q := randomPauli(rng, n), randomPauli(rng, n)
		pq, qp := p.Mul(q), q.Mul(p)
		if !pq.EqualUpToPhase(qp) {
			t.Fatal("products differ beyond phase")
		}
		sameSign := pq.Phase == qp.Phase
		if p.Commutes(q) != sameSign {
			t.Fatalf("Commutes=%v but phases %d vs %d for %v, %v",
				p.Commutes(q), pq.Phase, qp.Phase, p, q)
		}
	}
}

func TestMulAssociative(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.IntN(8)
		a, b, c := randomPauli(rng, n), randomPauli(rng, n), randomPauli(rng, n)
		lhs := a.Mul(b).Mul(c)
		rhs := a.Mul(b.Mul(c))
		if !lhs.Equal(rhs) {
			t.Fatalf("associativity failed: (ab)c=%v a(bc)=%v", lhs, rhs)
		}
	}
}

func TestSelfInverseUpToPhase(t *testing.T) {
	rng := rand.New(rand.NewPCG(15, 16))
	for trial := 0; trial < 200; trial++ {
		p := randomPauli(rng, 1+rng.IntN(8))
		p.Phase = 0
		sq := p.Mul(p)
		if !sq.IsIdentity() {
			t.Fatal("p^2 not identity")
		}
		// i^phase X^x Z^z squared is ±1; sign is (-1)^(x·z) (one -1 per Y).
		if sq.Phase%2 != 0 {
			t.Fatalf("p^2 has imaginary phase %d", sq.Phase)
		}
	}
}

func TestWeight(t *testing.T) {
	p := MustFromString("IXZYI")
	if p.Weight() != 3 {
		t.Fatalf("weight: got %d want 3", p.Weight())
	}
	if p.N() != 5 {
		t.Fatalf("N: got %d want 5", p.N())
	}
	if p.At(3) != Y || p.At(0) != I || p.At(1) != X || p.At(2) != Z {
		t.Fatal("At() wrong")
	}
}

func TestTensor(t *testing.T) {
	a := MustFromString("XZ")
	b := MustFromString("-Y")
	ab := a.Tensor(b)
	if got := ab.String(); got != "-XZY" {
		t.Fatalf("tensor: got %q want -XZY", got)
	}
}

func TestSingleQubitConstructor(t *testing.T) {
	p := SingleQubit(4, 2, Y)
	if got := p.String(); got != "IIYI" {
		t.Fatalf("got %q", got)
	}
	q := SingleQubit(3, 0, X)
	if got := q.String(); got != "XII" {
		t.Fatalf("got %q", got)
	}
}

func TestSteaneGeneratorsCommute(t *testing.T) {
	// The six stabilizer generators from Preskill Eq. (18) must pairwise
	// commute.
	gens := []Pauli{
		MustFromString("IIIZZZZ"),
		MustFromString("IZZIIZZ"),
		MustFromString("ZIZIZIZ"),
		MustFromString("IIIXXXX"),
		MustFromString("IXXIIXX"),
		MustFromString("XIXIXIX"),
	}
	for i := range gens {
		for j := range gens {
			if !gens[i].Commutes(gens[j]) {
				t.Fatalf("generators %d and %d anticommute", i, j)
			}
		}
	}
}
