// Package pauli implements the n-qubit Pauli group in the symplectic
// (X-bits, Z-bits, phase) representation used throughout stabilizer
// coding theory: a Pauli operator is i^phase · X^x · Z^z with x, z ∈
// GF(2)^n. This is the algebra underlying the 7-qubit code of Preskill §2,
// the stabilizer formalism of §3.6 and the error operators of §4.2.
package pauli

import (
	"fmt"
	"strings"

	"ftqc/internal/bits"
)

// Single identifies a one-qubit Pauli operator.
type Single uint8

// One-qubit Pauli operators. Y is defined as i·X·Z so that X, Y, Z are all
// Hermitian; the paper's Eq. (5) uses Y = X·Z which differs by a phase
// that cancels everywhere phases matter here.
const (
	I Single = iota
	X
	Z
	Y
)

// String returns "I", "X", "Y" or "Z".
func (s Single) String() string {
	switch s {
	case I:
		return "I"
	case X:
		return "X"
	case Z:
		return "Z"
	case Y:
		return "Y"
	}
	return "?"
}

// Pauli is an n-qubit Pauli operator i^Phase · X^xbits · Z^zbits.
// Phase is defined modulo 4. The zero value is not usable; construct with
// NewIdentity, FromString or the algebra methods.
type Pauli struct {
	XBits bits.Vec
	ZBits bits.Vec
	Phase uint8 // power of i, mod 4
}

// NewIdentity returns the identity operator on n qubits.
func NewIdentity(n int) Pauli {
	return Pauli{XBits: bits.NewVec(n), ZBits: bits.NewVec(n)}
}

// FromString parses strings like "XIZZY" or "+XIZ", "-IZ", "iX", "-iZZ".
func FromString(s string) (Pauli, error) {
	phase := uint8(0)
	body := s
	switch {
	case strings.HasPrefix(s, "+i") || strings.HasPrefix(s, "i"):
		phase = 1
		body = strings.TrimPrefix(strings.TrimPrefix(s, "+"), "i")
	case strings.HasPrefix(s, "-i"):
		phase = 3
		body = strings.TrimPrefix(s, "-i")
	case strings.HasPrefix(s, "-"):
		phase = 2
		body = strings.TrimPrefix(s, "-")
	case strings.HasPrefix(s, "+"):
		body = strings.TrimPrefix(s, "+")
	}
	p := NewIdentity(len(body))
	p.Phase = phase
	for i, c := range body {
		switch c {
		case 'I':
		case 'X':
			p.XBits.Set(i, true)
		case 'Z':
			p.ZBits.Set(i, true)
		case 'Y':
			p.XBits.Set(i, true)
			p.ZBits.Set(i, true)
			p.Phase = (p.Phase + 1) % 4 // Y = i·X·Z
		default:
			return Pauli{}, fmt.Errorf("pauli: invalid character %q in %q", c, s)
		}
	}
	return p, nil
}

// MustFromString parses like FromString and panics on malformed input.
func MustFromString(s string) Pauli {
	p, err := FromString(s)
	if err != nil {
		panic(err)
	}
	return p
}

// N returns the number of qubits the operator acts on.
func (p Pauli) N() int { return p.XBits.Len() }

// At returns the one-qubit operator acting on qubit i, ignoring phase.
func (p Pauli) At(i int) Single {
	x, z := p.XBits.Get(i), p.ZBits.Get(i)
	switch {
	case x && z:
		return Y
	case x:
		return X
	case z:
		return Z
	}
	return I
}

// SetAt sets the one-qubit operator on qubit i (phase is not adjusted;
// use this to build unsigned error patterns).
func (p *Pauli) SetAt(i int, s Single) {
	p.XBits.Set(i, s == X || s == Y)
	p.ZBits.Set(i, s == Z || s == Y)
}

// Clone returns an independent copy.
func (p Pauli) Clone() Pauli {
	return Pauli{XBits: p.XBits.Clone(), ZBits: p.ZBits.Clone(), Phase: p.Phase}
}

// Weight returns the number of qubits on which p acts nontrivially.
func (p Pauli) Weight() int {
	w := 0
	for i := 0; i < p.N(); i++ {
		if p.XBits.Get(i) || p.ZBits.Get(i) {
			w++
		}
	}
	return w
}

// IsIdentity reports whether p is the identity up to phase.
func (p Pauli) IsIdentity() bool { return p.XBits.Zero() && p.ZBits.Zero() }

// Commutes reports whether p and q commute. Two Paulis either commute or
// anticommute; they anticommute iff the symplectic form x_p·z_q + x_q·z_p
// is 1.
func (p Pauli) Commutes(q Pauli) bool {
	if p.N() != q.N() {
		panic("pauli: qubit count mismatch")
	}
	return p.XBits.Dot(q.ZBits) == q.XBits.Dot(p.ZBits)
}

// Mul returns the product p·q with the correct phase.
//
// Writing p = i^a X^x1 Z^z1, q = i^b X^x2 Z^z2, moving Z^z1 past X^x2
// contributes (-1)^(z1·x2), so
// p·q = i^(a+b+2·z1·x2) X^(x1+x2) Z^(z1+z2).
func (p Pauli) Mul(q Pauli) Pauli {
	if p.N() != q.N() {
		panic("pauli: qubit count mismatch")
	}
	r := Pauli{
		XBits: p.XBits.Clone(),
		ZBits: p.ZBits.Clone(),
		Phase: (p.Phase + q.Phase) % 4,
	}
	if p.ZBits.Dot(q.XBits) {
		r.Phase = (r.Phase + 2) % 4
	}
	r.XBits.Xor(q.XBits)
	r.ZBits.Xor(q.ZBits)
	return r
}

// Equal reports exact equality including phase.
func (p Pauli) Equal(q Pauli) bool {
	return p.Phase == q.Phase && p.XBits.Equal(q.XBits) && p.ZBits.Equal(q.ZBits)
}

// EqualUpToPhase reports equality of the unsigned operator.
func (p Pauli) EqualUpToPhase(q Pauli) bool {
	return p.XBits.Equal(q.XBits) && p.ZBits.Equal(q.ZBits)
}

// String renders the operator with a phase prefix, e.g. "-XIZ" or "iYY".
func (p Pauli) String() string {
	// Present the letters first, computing the residual phase after
	// extracting one factor of i per Y.
	phase := p.Phase
	var sb strings.Builder
	for i := 0; i < p.N(); i++ {
		s := p.At(i)
		if s == Y {
			phase = (phase + 3) % 4 // remove the i contributed by Y = iXZ
		}
		sb.WriteString(s.String())
	}
	prefix := [4]string{"", "i", "-", "-i"}[phase]
	return prefix + sb.String()
}

// Key returns a comparable map key identifying the unsigned operator.
func (p Pauli) Key() string { return p.XBits.Key() + "|" + p.ZBits.Key() }

// Tensor returns p ⊗ q acting on p.N()+q.N() qubits.
func (p Pauli) Tensor(q Pauli) Pauli {
	n := p.N() + q.N()
	r := NewIdentity(n)
	r.Phase = (p.Phase + q.Phase) % 4
	for i := 0; i < p.N(); i++ {
		r.XBits.Set(i, p.XBits.Get(i))
		r.ZBits.Set(i, p.ZBits.Get(i))
	}
	for i := 0; i < q.N(); i++ {
		r.XBits.Set(p.N()+i, q.XBits.Get(i))
		r.ZBits.Set(p.N()+i, q.ZBits.Get(i))
	}
	return r
}

// Embed maps p, defined on len(qubits) qubits, onto an n-qubit register
// where qubit i of p acts on wire qubits[i].
func (p Pauli) Embed(n int, qubits []int) Pauli {
	if len(qubits) != p.N() {
		panic("pauli: embed wire count mismatch")
	}
	out := NewIdentity(n)
	out.Phase = p.Phase
	for i, q := range qubits {
		out.XBits.Set(q, p.XBits.Get(i))
		out.ZBits.Set(q, p.ZBits.Get(i))
	}
	return out
}

// SingleQubit returns the n-qubit operator that applies s on qubit q and
// identity elsewhere.
func SingleQubit(n, q int, s Single) Pauli {
	p := NewIdentity(n)
	p.SetAt(q, s)
	if s == Y {
		p.Phase = 1
	}
	return p
}
