package group

import "testing"

func TestCycleNotation(t *testing.T) {
	p := Cycle(5, []int{1, 2, 5})
	if p.String() != "(1 2 5)" {
		t.Fatalf("got %q", p.String())
	}
	q := Cycle(5, []int{1, 4}, []int{3, 5})
	if q.String() != "(1 4)(3 5)" {
		t.Fatalf("got %q", q.String())
	}
	if !Identity(5).IsIdentity() || Identity(5).String() != "e" {
		t.Fatal("identity broken")
	}
}

func TestMulConvention(t *testing.T) {
	// Mul(a,b) applies b first: (12)·(23) maps 3→(23)→2→(12)→1.
	a := Cycle(3, []int{1, 2})
	b := Cycle(3, []int{2, 3})
	ab := a.Mul(b)
	if ab[2] != 0 {
		t.Fatalf("composition convention wrong: 3 ↦ %d", ab[2]+1)
	}
}

func TestInverse(t *testing.T) {
	p := Cycle(5, []int{1, 3, 4, 2})
	if !p.Mul(p.Inv()).IsIdentity() || !p.Inv().Mul(p).IsIdentity() {
		t.Fatal("inverse broken")
	}
}

func TestGroupAxiomsViaClosure(t *testing.T) {
	g := A(5)
	// Closure and inverse presence for a sample of products.
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			p := g.Elements[i*3%60].Mul(g.Elements[j*7%60])
			if !g.Contains(p) {
				t.Fatal("closure violated")
			}
		}
	}
	for _, e := range g.Elements[:20] {
		if !g.Contains(e.Inv()) {
			t.Fatal("inverse not in group")
		}
	}
}

func TestGroupOrders(t *testing.T) {
	for _, tt := range []struct {
		g    *Group
		want int
	}{
		{S(3), 6}, {S(4), 24}, {S(5), 120},
		{A(3), 3}, {A(4), 12}, {A(5), 60},
	} {
		if got := tt.g.Order(); got != tt.want {
			t.Fatalf("%s order %d, want %d", tt.g.Name, got, tt.want)
		}
	}
}

func TestA5AllEven(t *testing.T) {
	for _, e := range A(5).Elements {
		if e.Parity() != 1 {
			t.Fatalf("odd permutation %v in A5", e)
		}
	}
}

func TestSolvability(t *testing.T) {
	// §7.4: A₅ is the smallest nonsolvable group; everything below is
	// solvable.
	if !S(3).IsSolvable() || !S(4).IsSolvable() || !A(4).IsSolvable() {
		t.Fatal("S3, S4, A4 must be solvable")
	}
	if A(5).IsSolvable() {
		t.Fatal("A5 must not be solvable")
	}
	if S(5).IsSolvable() {
		t.Fatal("S5 must not be solvable")
	}
}

func TestA5Perfect(t *testing.T) {
	if !A(5).IsPerfect() {
		t.Fatal("A5 must equal its commutator subgroup")
	}
	if S(5).IsPerfect() {
		t.Fatal("S5 is not perfect (derived subgroup is A5)")
	}
	if got := S(5).DerivedSubgroup().Order(); got != 60 {
		t.Fatalf("[S5,S5] order %d, want 60", got)
	}
}

func TestConjugacyClassOfFiveCycle(t *testing.T) {
	// In A5 the 5-cycles split into two classes of 12.
	g := A(5)
	c := g.ConjugacyClass(Cycle(5, []int{1, 2, 3, 4, 5}))
	if len(c) != 12 {
		t.Fatalf("5-cycle class size %d, want 12", len(c))
	}
	// Three-cycles form a single class of 20.
	c3 := g.ConjugacyClass(Cycle(5, []int{1, 2, 5}))
	if len(c3) != 20 {
		t.Fatalf("3-cycle class size %d, want 20", len(c3))
	}
}

func TestConjExchangesComputationalFluxes(t *testing.T) {
	// Eq. 45 and the Fig. 21 NOT conjugator: v⁻¹(125)v = (234) with
	// v = (14)(35).
	u0 := Cycle(5, []int{1, 2, 5})
	u1 := Cycle(5, []int{2, 3, 4})
	v := Cycle(5, []int{1, 4}, []int{3, 5})
	if !u0.Conj(v).Equal(u1) {
		t.Fatalf("v⁻¹u0v = %v, want %v", u0.Conj(v), u1)
	}
	if !u1.Conj(v).Equal(u0) {
		t.Fatal("v must also map u1 back to u0 (involution)")
	}
}

func TestOrderOfElements(t *testing.T) {
	if Cycle(5, []int{1, 2, 3, 4, 5}).Order() != 5 {
		t.Fatal("5-cycle order")
	}
	if Cycle(5, []int{1, 4}, []int{3, 5}).Order() != 2 {
		t.Fatal("double transposition order")
	}
}

func TestCommutatorIdentity(t *testing.T) {
	// [a,b] = e iff a and b commute.
	a := Cycle(5, []int{1, 2, 3})
	b := Cycle(5, []int{4, 5, 1})
	if Commutator(a, a).IsIdentity() != true {
		t.Fatal("[a,a] must be e")
	}
	if Commutator(a, b).IsIdentity() {
		t.Fatal("overlapping cycles should not commute")
	}
}
