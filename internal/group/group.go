// Package group implements finite permutation groups: composition,
// conjugation, generated closures, conjugacy classes, commutator
// subgroups and solvability. It provides the algebraic substrate for the
// nonabelian Aharonov-Bohm computer of Preskill §7.3–§7.4, where magnetic
// fluxes are labeled by elements of a finite group (A₅ in the universal
// construction) and logic is performed by conjugation.
package group

import (
	"fmt"
	"sort"
	"strings"
)

// Perm is a permutation of {0, …, n−1}: p[i] is the image of i.
type Perm []int

// Identity returns the identity permutation on n points.
func Identity(n int) Perm {
	p := make(Perm, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// Cycle builds a permutation on n points from disjoint cycles written
// with 1-based labels, e.g. Cycle(5, []int{1,2,5}) = (125).
func Cycle(n int, cycles ...[]int) Perm {
	p := Identity(n)
	for _, c := range cycles {
		for i, from := range c {
			to := c[(i+1)%len(c)]
			p[from-1] = to - 1
		}
	}
	return p
}

// Mul returns the composition a∘b (apply b first, then a).
func (a Perm) Mul(b Perm) Perm {
	if len(a) != len(b) {
		panic("group: size mismatch")
	}
	out := make(Perm, len(a))
	for i := range out {
		out[i] = a[b[i]]
	}
	return out
}

// Inv returns the inverse permutation.
func (a Perm) Inv() Perm {
	out := make(Perm, len(a))
	for i, v := range a {
		out[v] = i
	}
	return out
}

// Conj returns g⁻¹·a·g — the flux metamorphosis of Preskill Eq. (40).
func (a Perm) Conj(g Perm) Perm { return g.Inv().Mul(a).Mul(g) }

// Commutator returns [a, b] = a⁻¹ b⁻¹ a b.
func Commutator(a, b Perm) Perm { return a.Inv().Mul(b.Inv()).Mul(a).Mul(b) }

// Equal reports whether two permutations are identical.
func (a Perm) Equal(b Perm) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// IsIdentity reports whether a is the identity.
func (a Perm) IsIdentity() bool {
	for i, v := range a {
		if v != i {
			return false
		}
	}
	return true
}

// Key returns a comparable map key.
func (a Perm) Key() string {
	var sb strings.Builder
	for _, v := range a {
		fmt.Fprintf(&sb, "%d,", v)
	}
	return sb.String()
}

// Parity returns +1 for even permutations, −1 for odd.
func (a Perm) Parity() int {
	seen := make([]bool, len(a))
	sign := 1
	for i := range a {
		if seen[i] {
			continue
		}
		length := 0
		for j := i; !seen[j]; j = a[j] {
			seen[j] = true
			length++
		}
		if length%2 == 0 {
			sign = -sign
		}
	}
	return sign
}

// Order returns the multiplicative order of a.
func (a Perm) Order() int {
	p := a
	for k := 1; ; k++ {
		if p.IsIdentity() {
			return k
		}
		p = p.Mul(a)
	}
}

// String renders the permutation in cycle notation with 1-based labels.
func (a Perm) String() string {
	seen := make([]bool, len(a))
	var parts []string
	for i := range a {
		if seen[i] || a[i] == i {
			seen[i] = true
			continue
		}
		var cyc []string
		for j := i; !seen[j]; j = a[j] {
			seen[j] = true
			cyc = append(cyc, fmt.Sprint(j+1))
		}
		parts = append(parts, "("+strings.Join(cyc, " ")+")")
	}
	if len(parts) == 0 {
		return "e"
	}
	return strings.Join(parts, "")
}

// Group is a finite permutation group with a full element table.
type Group struct {
	Name     string
	Degree   int
	Elements []Perm
	index    map[string]int
}

// Generate computes the closure of the generators by breadth-first
// multiplication.
func Generate(name string, degree int, gens ...Perm) *Group {
	g := &Group{Name: name, Degree: degree, index: make(map[string]int)}
	id := Identity(degree)
	g.add(id)
	frontier := []Perm{id}
	for len(frontier) > 0 {
		var next []Perm
		for _, e := range frontier {
			for _, gen := range gens {
				p := e.Mul(gen)
				if g.add(p) {
					next = append(next, p)
				}
			}
		}
		frontier = next
	}
	// Canonical order for reproducibility.
	sort.Slice(g.Elements, func(i, j int) bool {
		return g.Elements[i].Key() < g.Elements[j].Key()
	})
	for i, e := range g.Elements {
		g.index[e.Key()] = i
	}
	return g
}

func (g *Group) add(p Perm) bool {
	k := p.Key()
	if _, ok := g.index[k]; ok {
		return false
	}
	g.index[k] = len(g.Elements)
	g.Elements = append(g.Elements, p)
	return true
}

// Order returns |G|.
func (g *Group) Order() int { return len(g.Elements) }

// Contains reports membership.
func (g *Group) Contains(p Perm) bool {
	_, ok := g.index[p.Key()]
	return ok
}

// ConjugacyClass returns the class of p in g.
func (g *Group) ConjugacyClass(p Perm) []Perm {
	seen := map[string]bool{}
	var out []Perm
	for _, e := range g.Elements {
		c := p.Conj(e)
		if !seen[c.Key()] {
			seen[c.Key()] = true
			out = append(out, c)
		}
	}
	return out
}

// DerivedSubgroup returns the commutator subgroup [G, G].
func (g *Group) DerivedSubgroup() *Group {
	var gens []Perm
	seen := map[string]bool{}
	for _, a := range g.Elements {
		for _, b := range g.Elements {
			c := Commutator(a, b)
			if !seen[c.Key()] {
				seen[c.Key()] = true
				gens = append(gens, c)
			}
		}
	}
	return Generate(g.Name+"'", g.Degree, gens...)
}

// IsPerfect reports whether G equals its own commutator subgroup.
func (g *Group) IsPerfect() bool {
	return g.DerivedSubgroup().Order() == g.Order()
}

// IsSolvable reports whether the derived series terminates at the
// trivial group. Preskill §7.4 conjectures nonsolvability is what makes
// conjugation-based classical computation universal; A₅ is the smallest
// nonsolvable group.
func (g *Group) IsSolvable() bool {
	cur := g
	for {
		next := cur.DerivedSubgroup()
		if next.Order() == 1 {
			return true
		}
		if next.Order() == cur.Order() {
			return false
		}
		cur = next
	}
}

// S returns the symmetric group on n points.
func S(n int) *Group {
	if n < 2 {
		return Generate(fmt.Sprintf("S%d", n), n)
	}
	transp := Cycle(n, []int{1, 2})
	var cyc []int
	for i := 1; i <= n; i++ {
		cyc = append(cyc, i)
	}
	return Generate(fmt.Sprintf("S%d", n), n, transp, Cycle(n, cyc))
}

// A returns the alternating group on n points.
func A(n int) *Group {
	if n < 3 {
		return Generate(fmt.Sprintf("A%d", n), n)
	}
	var gens []Perm
	for i := 3; i <= n; i++ {
		gens = append(gens, Cycle(n, []int{1, 2, i}))
	}
	return Generate(fmt.Sprintf("A%d", n), n, gens...)
}
