// Package threshold estimates the accuracy threshold of Preskill §5 from
// circuit-level Monte Carlo: it sweeps the physical error rate, measures
// the logical failure probability of the basic fault-tolerant rectangle,
// fits the quadratic coefficient A of p_fail = A·ε², and reports the
// pseudothreshold 1/A that seeds the concatenation flow equations.
package threshold

import (
	"fmt"
	"math"
	"sync"

	"ftqc/internal/ft"
	"ftqc/internal/noise"
)

// Point is one measured point of a failure-rate curve.
type Point struct {
	Eps     float64 // physical error rate
	Fail    float64 // logical failure probability
	StdErr  float64 // binomial standard error of Fail
	Samples int
}

// Model maps a scalar error rate to a full noise parameterization,
// selecting which locations are noisy (§6: gate-only, storage-only, or
// uniform).
type Model func(eps float64) noise.Params

// Curve measures the exRec failure probability across the given error
// rates. Points run concurrently (each ε already batches its samples
// 64-per-word internally); per-point seeds keep the result independent of
// scheduling.
func Curve(method ft.ECMethod, model Model, epsList []float64, cfg ft.Config, samples int, seed uint64) []Point {
	return sweep(epsList, func(i int, eps float64) Point {
		r := ft.ExRecCNOT(method, model(eps), cfg, samples, seed+uint64(i)*1000)
		return pointOf(eps, r.FailRate(), r.Samples)
	})
}

// MemoryCurve measures the single-block recovery failure probability (the
// 1-Rec calibration of the flow equation).
func MemoryCurve(method ft.ECMethod, model Model, epsList []float64, cfg ft.Config, samples int, seed uint64) []Point {
	return sweep(epsList, func(i int, eps float64) Point {
		r := ft.ECFailureRate(method, model(eps), cfg, samples, seed+uint64(i)*1000)
		return pointOf(eps, r.FailRate(), r.Samples)
	})
}

func pointOf(eps, p float64, samples int) Point {
	return Point{
		Eps:     eps,
		Fail:    p,
		StdErr:  math.Sqrt(p * (1 - p) / float64(samples)),
		Samples: samples,
	}
}

// sweep runs one measurement per ε concurrently and collects the points
// in input order.
func sweep(epsList []float64, measure func(i int, eps float64) Point) []Point {
	pts := make([]Point, len(epsList))
	var wg sync.WaitGroup
	for i, eps := range epsList {
		wg.Add(1)
		go func(i int, eps float64) {
			defer wg.Done()
			pts[i] = measure(i, eps)
		}(i, eps)
	}
	wg.Wait()
	return pts
}

// FitA fits p = A·ε² through the measured points by weighted least
// squares through the origin in the variable ε². Points with zero
// observed failures still contribute through their weight.
func FitA(pts []Point) float64 {
	var num, den float64
	for _, p := range pts {
		w := 1.0
		if p.StdErr > 0 {
			w = 1 / (p.StdErr * p.StdErr)
		} else if p.Samples > 0 {
			// Zero failures: weight by the Poisson bound 1/N.
			w = float64(p.Samples) * float64(p.Samples)
		}
		x := p.Eps * p.Eps
		num += w * x * p.Fail
		den += w * x * x
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// Pseudothreshold returns the error rate at which encoding stops helping:
// A·ε² = ε ⟹ ε_pt = 1/A. This is the circuit-level analogue of the 1/21
// block threshold of Eq. (33).
func Pseudothreshold(a float64) float64 {
	if a <= 0 {
		return math.Inf(1)
	}
	return 1 / a
}

// Estimate bundles a fitted threshold analysis.
type Estimate struct {
	Method ft.ECMethod
	Points []Point
	A      float64
	Thresh float64
}

// Run sweeps, fits and packages a threshold estimate.
func Run(method ft.ECMethod, model Model, epsList []float64, cfg ft.Config, samples int, seed uint64) Estimate {
	pts := Curve(method, model, epsList, cfg, samples, seed)
	a := FitA(pts)
	return Estimate{Method: method, Points: pts, A: a, Thresh: Pseudothreshold(a)}
}

// String renders the estimate as the table the paper's Eqs. (34)–(35)
// summarize.
func (e Estimate) String() string {
	s := fmt.Sprintf("method=%s  A=%.3g  pseudothreshold=%.3g\n", e.Method, e.A, e.Thresh)
	for _, p := range e.Points {
		s += fmt.Sprintf("  eps=%.2e  p_fail=%.3e ± %.1e  (n=%d)\n", p.Eps, p.Fail, p.StdErr, p.Samples)
	}
	return s
}
