package threshold

import (
	"math"
	"testing"

	"ftqc/internal/ft"
	"ftqc/internal/noise"
)

func TestFitAExactQuadratic(t *testing.T) {
	// Synthetic points lying exactly on p = 300 ε².
	var pts []Point
	for _, e := range []float64{1e-4, 2e-4, 4e-4, 1e-3} {
		pts = append(pts, Point{Eps: e, Fail: 300 * e * e, StdErr: 1e-9, Samples: 1000000})
	}
	a := FitA(pts)
	if math.Abs(a-300)/300 > 1e-6 {
		t.Fatalf("fit A = %v, want 300", a)
	}
	if pt := Pseudothreshold(a); math.Abs(pt-1.0/300)/pt > 1e-6 {
		t.Fatalf("pseudothreshold %v", pt)
	}
}

func TestFitAIgnoresZeroDivision(t *testing.T) {
	if FitA(nil) != 0 {
		t.Fatal("empty fit should be 0")
	}
	if !math.IsInf(Pseudothreshold(0), 1) {
		t.Fatal("zero A means no measurable threshold")
	}
}

func TestCurveMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo")
	}
	cfg := ft.DefaultConfig()
	pts := Curve(ft.MethodSteane, noise.Uniform, []float64{3e-4, 3e-3}, cfg, 30000, 17)
	if len(pts) != 2 {
		t.Fatal("want two points")
	}
	if pts[1].Fail <= pts[0].Fail {
		t.Fatalf("failure must grow with ε: %v vs %v", pts[0].Fail, pts[1].Fail)
	}
}

func TestRunProducesFiniteEstimate(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo")
	}
	est := Run(ft.MethodSteane, noise.GateOnly, []float64{1e-3}, ft.DefaultConfig(), 20000, 23)
	if est.A <= 0 || math.IsInf(est.Thresh, 0) {
		t.Fatalf("estimate not usable: %+v", est)
	}
	// The gate-only pseudothreshold should land within an order of
	// magnitude of the paper's 6e-4 (Eq. 34).
	if est.Thresh < 2e-5 || est.Thresh > 2e-2 {
		t.Fatalf("gate-only pseudothreshold %.2e implausibly far from 6e-4", est.Thresh)
	}
	if est.String() == "" {
		t.Fatal("empty report")
	}
}

func TestMemoryCurveRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo")
	}
	pts := MemoryCurve(ft.MethodSteane, noise.Uniform, []float64{1e-3}, ft.DefaultConfig(), 5000, 29)
	if len(pts) != 1 || pts[0].Samples != 5000 {
		t.Fatalf("bad points %+v", pts)
	}
}
