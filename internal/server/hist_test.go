package server

import (
	"testing"
	"time"
)

// TestHistEmpty: a never-observed histogram snapshots to all zeros
// without dividing by its zero count.
func TestHistEmpty(t *testing.T) {
	var h Hist
	s := h.Snapshot()
	if s.Count != 0 || s.Mean != 0 || s.P50 != 0 || s.P90 != 0 || s.P99 != 0 || s.Max != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
	if len(s.Buckets) != 0 {
		t.Fatalf("empty snapshot has %d buckets", len(s.Buckets))
	}
}

// TestHistSingleSample: every quantile of a one-sample histogram is
// that sample.
func TestHistSingleSample(t *testing.T) {
	var h Hist
	h.Observe(3 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 1 {
		t.Fatalf("count %d", s.Count)
	}
	if s.Mean != 3*time.Millisecond || s.Max != 3*time.Millisecond {
		t.Fatalf("mean %v max %v, want 3ms", s.Mean, s.Max)
	}
	if s.P50 != s.Max || s.P90 != s.Max || s.P99 != s.Max {
		t.Fatalf("quantiles %v %v %v, want all %v", s.P50, s.P90, s.P99, s.Max)
	}
	if len(s.Buckets) != 1 || s.Buckets[0].Count != 1 {
		t.Fatalf("buckets %+v", s.Buckets)
	}
}

// TestHistAllZero: non-positive durations land in the exact-zero
// bucket and quantile to zero.
func TestHistAllZero(t *testing.T) {
	var h Hist
	for i := 0; i < 10; i++ {
		h.Observe(0)
	}
	h.Observe(-time.Second)
	s := h.Snapshot()
	if s.Count != 11 || s.Max != 0 || s.P99 != 0 {
		t.Fatalf("all-zero snapshot: %+v", s)
	}
	if len(s.Buckets) != 1 || s.Buckets[0].UpTo != 0 || s.Buckets[0].Count != 11 {
		t.Fatalf("buckets %+v", s.Buckets)
	}
}

// TestHistOverflowBucket pins the overflow-bucket quantile: an
// observation beyond the largest power-of-two bound (2^43 ns ≈ 2.4h)
// is clamped into the final bucket, and quantiles landing there must
// report the observed max — the bucket's nominal upper bound would
// understate a 3h stall by over half an hour. The reported bucket's
// UpTo must tell the same truth.
func TestHistOverflowBucket(t *testing.T) {
	var h Hist
	const stall = 3 * time.Hour
	h.Observe(stall)
	s := h.Snapshot()
	if s.Max != stall {
		t.Fatalf("max %v, want %v", s.Max, stall)
	}
	if s.P50 != stall || s.P99 != stall {
		t.Fatalf("overflow-bucket quantiles %v / %v, want %v (not the 2^43ns bucket bound)", s.P50, s.P99, stall)
	}
	if len(s.Buckets) != 1 || s.Buckets[0].UpTo != stall {
		t.Fatalf("overflow bucket reports UpTo %v, want %v", s.Buckets[0].UpTo, stall)
	}
}
