// Package server is the real-time multi-tenant decode service: one
// long-lived process-wide worker fleet (decoder.NewPool) multiplexing
// any number of concurrent logical-qubit sessions, each a streaming
// window pipeline (stream.Session) with its own detector graph —
// phenomenological or circuit-level. It is the deployment shape the
// paper's program requires: classical decoding that keeps pace with
// syndrome extraction for many logical qubits at once, with bounded
// memory and explicit flow control.
//
// # Scheduling contract
//
// All sessions share one unbound decoder.Service pool. Window graphs
// are interned per shape (L, W, commit, weights), so two sessions with
// the same configuration share graph structure and per-graph decode
// scratch. Every window decode is submitted as an independent batch;
// the pool's determinism contract (see internal/decoder) guarantees
// each batch's output is a pure function of (graph, shots), so a
// session's committed frames never depend on the worker count, on
// GOMAXPROCS, or on how its batches interleave with other sessions' —
// the server-level extension of the repo-wide determinism discipline,
// asserted by the equivalence tests against standalone stream runs.
//
// # Backpressure contract
//
// Each session owns a bounded ingest queue of Config.QueueDepth rounds
// with preallocated layer buffers (steady-state ingest allocates
// nothing). Config.Overflow picks the policy when a producer outruns
// the decode: OverflowBlock stalls Submit until a slot frees — the
// lossless default, matching difference-syndrome semantics where a
// dropped round would corrupt every later layer — while OverflowReject
// fails fast with ErrBacklog and counts the overflow, for producers
// that prefer to shed load themselves. Closing is graceful at both
// scopes: Session.CloseWith finishes the stream with a closing round
// and delivers full frames, Session.Close flushes the queue and
// delivers the committed prefix, and Server.Shutdown drains every
// session before releasing the workers, so committed frames are never
// lost to a shutdown.
//
// # Observability and adaptive windows
//
// Each session tracks rounds ingested/committed, slide and overflow
// counters, observed defect density, and a commit-latency histogram
// (enqueue to commit, power-of-two buckets); Server.Snapshot returns
// the per-session stats without disturbing the pipelines. Sessions
// opened with an AdaptConfig use the density signal online: sustained
// density above GrowAt widens the window (more context, better
// accuracy), density below ShrinkAt narrows it (less buffering, lower
// commit latency), moving the live decoder between interned window
// shapes with stream.Decoder.Rewindow without losing committed frames.
package server
