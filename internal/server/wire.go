package server

import (
	"encoding/binary"
	"fmt"
	"io"

	"ftqc/internal/bits"
)

// Wire framing for the ingestion demo: a client streams syndrome
// layers in over any io.ReadWriter (socket, pipe, ...) and gets the
// committed Pauli frames back. One connection carries one session.
//
// Every message is a type byte followed by fixed-size little-endian
// payload known from the open handshake:
//
//	'O'  open    7 × uint32: L, lanes, window, commit, wh, wv, wd
//	'R'  round   2·nc vectors of lane bits (X planes then Z planes),
//	             each vector ⌈lanes/64⌉ words
//	'F'  finish  same payload as 'R' (the perfect closing round)
//	'P'  frames  4 × uint32 (lanes, nq, rounds, committed) + 1 byte
//	             finished flag + 2·lanes vectors of nq bits (X then Z)
const (
	msgOpen   = 'O'
	msgRound  = 'R'
	msgFinish = 'F'
	msgFrames = 'P'
)

// Conn is the client side of the wire protocol.
type Conn struct {
	rw  io.ReadWriter
	buf []byte
}

// Dial wraps a transport in a protocol client.
func Dial(rw io.ReadWriter) *Conn { return &Conn{rw: rw} }

// Open sends the session handshake. Adaptive windows are a server-side
// policy and are not carried on the wire.
func (c *Conn) Open(cfg SessionConfig) error {
	buf := make([]byte, 1+7*4)
	buf[0] = msgOpen
	for i, v := range []int{cfg.L, cfg.Lanes, cfg.Window, cfg.Commit, cfg.WH, cfg.WV, cfg.WD} {
		binary.LittleEndian.PutUint32(buf[1+4*i:], uint32(v))
	}
	_, err := c.rw.Write(buf)
	return err
}

// Round streams one round's difference layers.
func (c *Conn) Round(layerX, layerZ []bits.Vec) error {
	return c.writeLayers(msgRound, layerX, layerZ)
}

// Finish sends the closing round and reads back the committed frames.
func (c *Conn) Finish(closingX, closingZ []bits.Vec) (SessionResult, error) {
	if err := c.writeLayers(msgFinish, closingX, closingZ); err != nil {
		return SessionResult{}, err
	}
	return readFrames(c.rw)
}

func (c *Conn) writeLayers(kind byte, layerX, layerZ []bits.Vec) error {
	n := 1
	for _, v := range layerX {
		n += v.Words() * 8
	}
	for _, v := range layerZ {
		n += v.Words() * 8
	}
	if cap(c.buf) < n {
		c.buf = make([]byte, n)
	}
	buf := c.buf[:1]
	buf[0] = kind
	buf = appendVecs(buf, layerX)
	buf = appendVecs(buf, layerZ)
	_, err := c.rw.Write(buf)
	return err
}

func appendVecs(buf []byte, vs []bits.Vec) []byte {
	for _, v := range vs {
		for i := 0; i < v.Words(); i++ {
			buf = binary.LittleEndian.AppendUint64(buf, v.Word(i))
		}
	}
	return buf
}

func readVecs(r io.Reader, buf []byte, vs []bits.Vec) error {
	for _, v := range vs {
		n := v.Words() * 8
		if _, err := io.ReadFull(r, buf[:n]); err != nil {
			return err
		}
		for i := 0; i < v.Words(); i++ {
			v.SetWord(i, binary.LittleEndian.Uint64(buf[8*i:]))
		}
	}
	return nil
}

// readFrames parses the 'P' message.
func readFrames(r io.Reader) (SessionResult, error) {
	var hdr [1 + 4*4 + 1]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return SessionResult{}, err
	}
	if hdr[0] != msgFrames {
		return SessionResult{}, fmt.Errorf("server: expected frames message, got %q", hdr[0])
	}
	lanes := int(binary.LittleEndian.Uint32(hdr[1:]))
	nq := int(binary.LittleEndian.Uint32(hdr[5:]))
	res := SessionResult{
		Rounds:    int(binary.LittleEndian.Uint32(hdr[9:])),
		Committed: int(binary.LittleEndian.Uint32(hdr[13:])),
		Finished:  hdr[17] != 0,
		FramesX:   bits.NewVecs(lanes, nq),
		FramesZ:   bits.NewVecs(lanes, nq),
	}
	buf := make([]byte, ((nq+63)/64)*8)
	if err := readVecs(r, buf, res.FramesX); err != nil {
		return SessionResult{}, err
	}
	if err := readVecs(r, buf, res.FramesZ); err != nil {
		return SessionResult{}, err
	}
	return res, nil
}

// ServeConn runs one wire session over a transport: it reads the open
// handshake, streams rounds into a server session, and on finish
// writes the committed frames back. It returns when the stream ends
// (normally after the frames are written, or with the transport error).
func (srv *Server) ServeConn(rw io.ReadWriter) error {
	var hdr [1 + 7*4]byte
	if _, err := io.ReadFull(rw, hdr[:]); err != nil {
		return err
	}
	if hdr[0] != msgOpen {
		return fmt.Errorf("server: expected open message, got %q", hdr[0])
	}
	f := func(i int) int { return int(binary.LittleEndian.Uint32(hdr[1+4*i:])) }
	cfg := SessionConfig{L: f(0), Lanes: f(1), Window: f(2), Commit: f(3), WH: f(4), WV: f(5), WD: f(6)}
	s, err := srv.Open(cfg)
	if err != nil {
		return err
	}
	nc := s.nc
	layerX := bits.NewVecs(nc, cfg.Lanes)
	layerZ := bits.NewVecs(nc, cfg.Lanes)
	buf := make([]byte, ((cfg.Lanes+63)/64)*8)
	for {
		var kind [1]byte
		if _, err := io.ReadFull(rw, kind[:]); err != nil {
			s.Close()
			s.Wait()
			return err
		}
		switch kind[0] {
		case msgRound, msgFinish:
			if err := readVecs(rw, buf, layerX); err != nil {
				s.Close()
				s.Wait()
				return err
			}
			if err := readVecs(rw, buf, layerZ); err != nil {
				s.Close()
				s.Wait()
				return err
			}
		default:
			s.Close()
			s.Wait()
			return fmt.Errorf("server: unexpected message %q mid-stream", kind[0])
		}
		if kind[0] == msgRound {
			if err := s.Submit(layerX, layerZ); err != nil {
				s.Close()
				s.Wait()
				return err
			}
			continue
		}
		if err := s.CloseWith(layerX, layerZ); err != nil {
			return err
		}
		res, err := s.Wait()
		if err != nil {
			return err
		}
		return writeFrames(rw, res)
	}
}

// writeFrames encodes the 'P' message.
func writeFrames(w io.Writer, res SessionResult) error {
	lanes := len(res.FramesX)
	nq := 0
	if lanes > 0 {
		nq = res.FramesX[0].Len()
	}
	n := 1 + 4*4 + 1
	for _, v := range res.FramesX {
		n += v.Words() * 8
	}
	for _, v := range res.FramesZ {
		n += v.Words() * 8
	}
	buf := make([]byte, 0, n)
	buf = append(buf, msgFrames)
	for _, v := range []int{lanes, nq, res.Rounds, res.Committed} {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	fin := byte(0)
	if res.Finished {
		fin = 1
	}
	buf = append(buf, fin)
	buf = appendVecs(buf, res.FramesX)
	buf = appendVecs(buf, res.FramesZ)
	_, err := w.Write(buf)
	return err
}
