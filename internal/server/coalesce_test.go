package server

import (
	"sync"
	"testing"

	"ftqc/internal/noise"
)

// TestCoalescedMatchesDirect is the coalescer's determinism criterion:
// a fleet of concurrent circuit-level sessions on a coalescing server
// drains to frames bit-identical to the uncoalesced server and to
// standalone streams, across worker counts — merging submissions must
// be invisible in every committed bit.
func TestCoalescedMatchesDirect(t *testing.T) {
	const l, lanes, rounds = 4, 8, 24
	sessions := 16
	if testing.Short() {
		sessions = 6
	}
	P := noise.Uniform(0.004)
	cfg := CircuitLevel(l, lanes, P)
	for _, workers := range []int{1, 3} {
		type res struct {
			r   SessionResult
			err error
		}
		run := func(coalesce bool) []res {
			srv := New(Config{Workers: workers, Coalesce: coalesce})
			defer srv.Shutdown()
			out := make([]res, sessions)
			var wg sync.WaitGroup
			for i := 0; i < sessions; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					out[i].r, out[i].err = driveSession(srv, cfg, P, 0, 0, rounds, 900+uint64(i))
				}(i)
			}
			wg.Wait()
			if coalesce {
				st := srv.CoalesceStats()
				if st.Batches == 0 || st.Flushes == 0 || st.Batches < st.Flushes {
					t.Errorf("workers=%d: implausible coalesce stats %+v", workers, st)
				}
			}
			return out
		}
		direct := run(false)
		merged := run(true)
		for i := range direct {
			if direct[i].err != nil || merged[i].err != nil {
				t.Fatalf("workers=%d session %d: errs %v / %v", workers, i, direct[i].err, merged[i].err)
			}
			a, b := direct[i].r, merged[i].r
			if a.Committed != b.Committed || !a.Finished || !b.Finished {
				t.Fatalf("workers=%d session %d: coverage direct=%+v merged=%+v", workers, i, a, b)
			}
			if !framesEqual(a.FramesX, a.FramesZ, b.FramesX, b.FramesZ) {
				t.Fatalf("workers=%d session %d: coalesced frames diverge from direct", workers, i)
			}
		}
		// The direct server must not report coalescer activity.
		if st := (&Server{}).CoalesceStats(); st.Flushes != 0 {
			t.Fatalf("coalescer off should snapshot zero, got %+v", st)
		}
	}
}
