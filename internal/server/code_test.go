package server

// Multi-tenant decoding for the open-boundary families: sessions
// parameterized by a surface.Code share windows per (family, shape)
// and must match a standalone stream run bit for bit.

import (
	"testing"

	"ftqc/internal/bits"
	"ftqc/internal/frame"
	"ftqc/internal/noise"
	"ftqc/internal/spacetime"
	"ftqc/internal/stream"
	"ftqc/internal/surface"
)

// newCodeFeed builds the code-aware layer feed matching a code session
// config, deterministic per (cfg, seed).
func newCodeFeed(cfg SessionConfig, P noise.Params, p, q float64, seed uint64) spacetime.LayerFeed {
	smp := frame.NewAggregateSampler(seed, 9)
	if cfg.WD > 0 {
		return surface.NewCircuitSource(cfg.Code, P, cfg.Lanes, smp)
	}
	return surface.NewLayerSource(cfg.Code, p, q, cfg.Lanes, smp)
}

func driveCodeSession(t *testing.T, srv *Server, cfg SessionConfig, P noise.Params, p, q float64, rounds int, seed uint64) (SessionResult, SessionStats) {
	t.Helper()
	s, err := srv.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := newCodeFeed(cfg, P, p, q, seed)
	nc := cfg.Code.Checks()
	layerX := bits.NewVecs(nc, cfg.Lanes)
	layerZ := bits.NewVecs(nc, cfg.Lanes)
	for r := 0; r < rounds; r++ {
		src.NextLayers(layerX, layerZ)
		if err := s.Submit(layerX, layerZ); err != nil {
			t.Fatal(err)
		}
	}
	src.CloseLayers(layerX, layerZ)
	if err := s.CloseWith(layerX, layerZ); err != nil {
		t.Fatal(err)
	}
	res, err := s.Wait()
	if err != nil {
		t.Fatal(err)
	}
	return res, s.Stats()
}

func TestServerCodeSessions(t *testing.T) {
	const lanes, rounds = 48, 11
	srv := New(Config{Workers: 2})
	defer srv.Shutdown()
	P := noise.Uniform(0.004)
	configs := []SessionConfig{
		PhenomenologicalCode(surface.Rotated(3), lanes, 0.02, 0.01),
		CircuitLevelCode(surface.Planar(3), lanes, P),
		CircuitLevelCode(surface.Planar(3), lanes, P), // shares the window of the previous session
	}
	for i, cfg := range configs {
		res, stats := driveCodeSession(t, srv, cfg, P, 0.02, 0.01, rounds, 31+uint64(i%2)*7)
		if stats.Code != cfg.Code.CodeName() {
			t.Fatalf("session %d: stats report family %q, want %q", i, stats.Code, cfg.Code.CodeName())
		}
		if res.Committed != rounds {
			t.Fatalf("session %d: committed %d of %d rounds", i, res.Committed, rounds)
		}

		// Standalone equivalence on the same draw order.
		var ss *stream.Session
		var err error
		if cfg.WD > 0 {
			ss, err = stream.NewCodeCircuitSession(cfg.Code, cfg.Window, cfg.Commit, cfg.WH, cfg.WV, cfg.WD)
		} else {
			ss, err = stream.NewCodeSession(cfg.Code, cfg.Window, cfg.Commit, cfg.WH, cfg.WV)
		}
		if err != nil {
			t.Fatal(err)
		}
		src := newCodeFeed(cfg, P, 0.02, 0.01, 31+uint64(i%2)*7)
		d := ss.NewDecoder(cfg.Lanes)
		nc := cfg.Code.Checks()
		layerX := bits.NewVecs(nc, cfg.Lanes)
		layerZ := bits.NewVecs(nc, cfg.Lanes)
		for r := 0; r < rounds; r++ {
			src.NextLayers(layerX, layerZ)
			d.Push(layerX, layerZ)
		}
		src.CloseLayers(layerX, layerZ)
		d.Finish(layerX, layerZ)
		if err := d.Err(); err != nil {
			t.Fatal(err)
		}
		cx, cz := d.Corrections()
		if !framesEqual(res.FramesX, res.FramesZ, cx, cz) {
			t.Fatalf("session %d (%s): server frames diverge from standalone stream", i, cfg.Code.CodeName())
		}
		ss.Close()
	}
}

// TestSnapshotIdle pins Snapshot's behaviour on servers with nothing
// to report: a fresh server and a drained one both return an empty,
// non-nil-safe listing, and an open session appears with its family.
func TestSnapshotIdle(t *testing.T) {
	srv := New(Config{})
	defer srv.Shutdown()
	if snap := srv.Snapshot(); len(snap) != 0 {
		t.Fatalf("fresh server snapshot lists %d sessions", len(snap))
	}
	cfg := PhenomenologicalCode(surface.Planar(3), 8, 0.01, 0.01)
	s, err := srv.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := srv.Snapshot()
	if len(snap) != 1 || snap[0].Code != "planar" || snap[0].Rounds != 0 {
		t.Fatalf("idle open session snapshot = %+v", snap)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	if snap := srv.Snapshot(); len(snap) != 0 {
		t.Fatalf("drained server snapshot lists %d sessions", len(snap))
	}
}
