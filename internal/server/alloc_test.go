package server

import (
	"testing"

	"ftqc/internal/decoder"
)

// TestCoalescedRoundTripAllocsBounded pins the coalescer's steady-state
// allocation budget: a warmed ResubmitOn round trip (stage, lead, flush,
// wait, recycle the correction buffers) may allocate only the per-flush
// completion ticket — one struct and one channel. Staging buffers are
// recycled across flushes and the underlying SubmitGroupOn path is
// zero-alloc (pinned in internal/decoder), so anything past that small
// constant is a regression on the server's hot path.
func TestCoalescedRoundTripAllocsBounded(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the allocation pin runs in the non-race CI lane")
	}
	const n = 16
	ends := make([][2]int32, n)
	for i := 0; i < n; i++ {
		ends[i] = [2]int32{int32(i), int32((i + 1) % n)}
	}
	g := decoder.NewGraph(n, ends)
	pool := decoder.NewPool(1)
	defer pool.Close()
	c := NewCoalescer(pool)
	b := decoder.NewBatch(4)
	shots := []decoder.Shot{
		{Defects: []int{1, 2}},
		{Defects: []int{5, 9}},
		{Defects: []int{0, 3}},
		{Defects: []int{}},
	}
	roundTrip := func() {
		if err := c.ResubmitOn(g, b, shots); err != nil {
			t.Fatal(err)
		}
		out := b.Wait()
		for j := range out {
			shots[j].CorrBuf = out[j][:0]
		}
	}
	for i := 0; i < 6; i++ {
		roundTrip()
	}
	if avg := testing.AllocsPerRun(20, roundTrip); avg > 3 {
		t.Fatalf("warm coalesced round trip allocates %.1f allocs/run, want <= 3 (flush ticket only)", avg)
	}
	st := c.Stats()
	if st.Flushes == 0 || st.Batches < st.Flushes {
		t.Fatalf("implausible coalesce stats after round trips: %+v", st)
	}
}
