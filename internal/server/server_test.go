package server

import (
	"errors"
	"math/rand/v2"
	"net"
	"sync"
	"testing"
	"time"

	"ftqc/internal/bits"
	"ftqc/internal/frame"
	"ftqc/internal/noise"
	"ftqc/internal/spacetime"
	"ftqc/internal/stream"
	"ftqc/internal/toric"
)

// newFeed builds the layer feed a test session consumes — circuit-level
// when the config carries diagonal edges, phenomenological otherwise.
// The same (cfg, seed) always yields the same draw order, which is what
// the equivalence tests lean on.
func newFeed(cfg SessionConfig, P noise.Params, p, q float64, seed uint64) spacetime.LayerFeed {
	smp := frame.NewAggregateSampler(seed, 5)
	if cfg.WD > 0 {
		return spacetime.NewCircuitLayerSource(cfg.L, P, cfg.Lanes, smp)
	}
	return spacetime.NewLayerSource(cfg.L, p, q, cfg.Lanes, smp)
}

// standaloneFrames drives a private stream.Session over the same draw
// order a server session sees: rounds pushes, then Finish when finish
// is true. Returns the decoder's frames and committed-round count.
func standaloneFrames(t *testing.T, cfg SessionConfig, P noise.Params, p, q float64, rounds int, seed uint64, finish bool) (x, z []bits.Vec, committed int) {
	t.Helper()
	var ss *stream.Session
	var err error
	if cfg.WD > 0 {
		ss, err = stream.NewCircuitSession(cfg.L, cfg.Window, cfg.Commit, cfg.WH, cfg.WV, cfg.WD)
	} else {
		ss, err = stream.NewSession(cfg.L, cfg.Window, cfg.Commit, cfg.WH, cfg.WV)
	}
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	src := newFeed(cfg, P, p, q, seed)
	d := ss.NewDecoder(cfg.Lanes)
	nc := cfg.L * cfg.L
	layerX := bits.NewVecs(nc, cfg.Lanes)
	layerZ := bits.NewVecs(nc, cfg.Lanes)
	for r := 0; r < rounds; r++ {
		src.NextLayers(layerX, layerZ)
		d.Push(layerX, layerZ)
	}
	if finish {
		src.CloseLayers(layerX, layerZ)
		d.Finish(layerX, layerZ)
	}
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	cx, cz := d.Corrections()
	return cx, cz, d.Committed()
}

// driveSession streams a seeded feed into one server session and waits
// for the frames.
func driveSession(srv *Server, cfg SessionConfig, P noise.Params, p, q float64, rounds int, seed uint64) (SessionResult, error) {
	s, err := srv.Open(cfg)
	if err != nil {
		return SessionResult{}, err
	}
	src := newFeed(cfg, P, p, q, seed)
	nc := cfg.L * cfg.L
	layerX := bits.NewVecs(nc, cfg.Lanes)
	layerZ := bits.NewVecs(nc, cfg.Lanes)
	for r := 0; r < rounds; r++ {
		src.NextLayers(layerX, layerZ)
		if err := s.Submit(layerX, layerZ); err != nil {
			return SessionResult{}, err
		}
	}
	src.CloseLayers(layerX, layerZ)
	if err := s.CloseWith(layerX, layerZ); err != nil {
		return SessionResult{}, err
	}
	return s.Wait()
}

func framesEqual(aX, aZ, bX, bZ []bits.Vec) bool {
	if len(aX) != len(bX) || len(aZ) != len(bZ) {
		return false
	}
	for lane := range aX {
		if !aX[lane].Equal(bX[lane]) || !aZ[lane].Equal(bZ[lane]) {
			return false
		}
	}
	return true
}

// TestServerMatchesStandaloneStream is the acceptance criterion: a
// 64-session L=8 circuit-level run on the server drains to completion
// with per-session committed frames bit-identical to standalone
// stream.Session runs, independent of the shared pool's worker count
// (8 sessions and small pools in -short mode).
func TestServerMatchesStandaloneStream(t *testing.T) {
	sessions := 64
	workerCounts := []int{0, 1}
	if testing.Short() {
		sessions = 8
		workerCounts = []int{3, 1}
	}
	const l, lanes, rounds = 8, 64, 40
	P := noise.Uniform(0.003)
	cfg := CircuitLevel(l, lanes, P)

	// Standalone references, one per session seed.
	refX := make([][]bits.Vec, sessions)
	refZ := make([][]bits.Vec, sessions)
	for i := 0; i < sessions; i++ {
		refX[i], refZ[i], _ = standaloneFrames(t, cfg, P, 0, 0, rounds, 7000+uint64(i), true)
	}

	for pass, workers := range workerCounts {
		n := sessions
		if pass > 0 {
			// The second pool size re-checks a subset — worker-count
			// invariance, not another full sweep.
			n = sessions / 4
		}
		srv := New(Config{Workers: workers})
		var wg sync.WaitGroup
		results := make([]SessionResult, n)
		errs := make([]error, n)
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				results[i], errs[i] = driveSession(srv, cfg, P, 0, 0, rounds, 7000+uint64(i))
			}(i)
		}
		wg.Wait()
		for i := 0; i < n; i++ {
			if errs[i] != nil {
				t.Fatalf("workers=%d session %d: %v", workers, i, errs[i])
			}
			res := results[i]
			if !res.Finished || res.Rounds != rounds || res.Committed != rounds {
				t.Fatalf("workers=%d session %d: incomplete drain %+v", workers, i, res)
			}
			if !framesEqual(res.FramesX, res.FramesZ, refX[i], refZ[i]) {
				t.Fatalf("workers=%d session %d: server frames differ from standalone stream", workers, i)
			}
		}
		srv.Shutdown()
	}
}

// TestServerBackpressureReject: with OverflowReject a full ingest queue
// fails fast with ErrBacklog and counts the overflow, and the session
// recovers once the decode catches up. The gate hook holds the worker
// so the queue state is deterministic.
func TestServerBackpressureReject(t *testing.T) {
	const depth = 3
	srv := New(Config{Workers: 1, QueueDepth: depth, Overflow: OverflowReject})
	defer srv.Shutdown()
	gate := make(chan struct{})
	cfg := Phenomenological(3, 16, 0.02, 0.02)
	cfg.gate = gate
	s, err := srv.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nc := cfg.L * cfg.L
	layerX := bits.NewVecs(nc, cfg.Lanes)
	layerZ := bits.NewVecs(nc, cfg.Lanes)
	accepted := 0
	for accepted < depth+4 {
		err := s.Submit(layerX, layerZ)
		if errors.Is(err, ErrBacklog) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		accepted++
	}
	// The queue holds depth rounds; the worker may hold one more.
	if accepted < depth || accepted > depth+1 {
		t.Fatalf("accepted %d rounds into a depth-%d queue before backlog", accepted, depth)
	}
	if s.Stats().Overflows == 0 {
		t.Fatal("overflow not counted")
	}
	close(gate) // release the worker
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := s.Submit(layerX, layerZ)
		if err == nil {
			break
		}
		if !errors.Is(err, ErrBacklog) {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("session did not recover after the worker drained")
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestServerBackpressureBlock: with OverflowBlock a submitter stalls on
// a full queue instead of failing, and proceeds when the worker drains.
func TestServerBackpressureBlock(t *testing.T) {
	const depth = 2
	srv := New(Config{Workers: 1, QueueDepth: depth, Overflow: OverflowBlock})
	defer srv.Shutdown()
	gate := make(chan struct{})
	cfg := Phenomenological(3, 16, 0.02, 0.02)
	cfg.gate = gate
	s, err := srv.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nc := cfg.L * cfg.L
	layerX := bits.NewVecs(nc, cfg.Lanes)
	layerZ := bits.NewVecs(nc, cfg.Lanes)
	done := make(chan struct{})
	const total = depth + 6
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			if err := s.Submit(layerX, layerZ); err != nil {
				t.Errorf("blocking submit %d: %v", i, err)
				return
			}
		}
	}()
	select {
	case <-done:
		t.Fatal("submitter never blocked on a gated full queue")
	case <-time.After(50 * time.Millisecond):
	}
	close(gate)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("submitter still blocked after the worker drained")
	}
	if got := s.Stats().Overflows; got != 0 {
		t.Fatalf("block policy counted %d overflows", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestServerDrainDeliversCommitted: Shutdown without a closing round
// flushes every queued round and Wait returns exactly the frames a
// standalone decoder has committed after the same pushes.
func TestServerDrainDeliversCommitted(t *testing.T) {
	const l, lanes, rounds, seed = 4, 32, 24, 7300
	cfg := Phenomenological(l, lanes, 0.03, 0.03)
	refX, refZ, refCommitted := standaloneFrames(t, cfg, noise.Params{}, 0.03, 0.03, rounds, seed, false)
	if refCommitted == 0 {
		t.Fatal("reference committed nothing — test misconfigured")
	}

	srv := New(Config{Workers: 2})
	s, err := srv.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := newFeed(cfg, noise.Params{}, 0.03, 0.03, seed)
	nc := l * l
	layerX := bits.NewVecs(nc, lanes)
	layerZ := bits.NewVecs(nc, lanes)
	for r := 0; r < rounds; r++ {
		src.NextLayers(layerX, layerZ)
		if err := s.Submit(layerX, layerZ); err != nil {
			t.Fatal(err)
		}
	}
	srv.Shutdown()
	res, err := s.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Finished {
		t.Fatal("drained session reported a finished stream")
	}
	if res.Rounds != rounds || res.Committed != refCommitted {
		t.Fatalf("drain delivered %d/%d rounds committed, want %d/%d", res.Committed, res.Rounds, refCommitted, rounds)
	}
	if !framesEqual(res.FramesX, res.FramesZ, refX, refZ) {
		t.Fatal("drained frames differ from the standalone committed prefix")
	}

	// After shutdown the server accepts nothing new.
	if _, err := srv.Open(cfg); !errors.Is(err, ErrDraining) {
		t.Fatalf("Open after Shutdown: %v", err)
	}
	if err := s.Submit(layerX, layerZ); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Submit after Shutdown: %v", err)
	}
	if err := s.Close(); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("double Close: %v", err)
	}
}

// TestServerChurn is the race-mode smoke: concurrent session
// open/submit/close against one server, with Snapshot readers in
// flight, must stay panic- and race-free.
func TestServerChurn(t *testing.T) {
	srv := New(Config{Workers: 3, QueueDepth: 4})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() { // snapshot reader
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
				srv.Snapshot()
				time.Sleep(time.Millisecond)
			}
		}
	}()
	for c := 0; c < 10; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(7500, uint64(c)))
			for it := 0; it < 3; it++ {
				l := 3 + rng.IntN(2)
				cfg := Phenomenological(l, 16+rng.IntN(32), 0.02, 0.02)
				cfg.Window, cfg.Commit = 3+rng.IntN(4), 1+rng.IntN(2)
				s, err := srv.Open(cfg)
				if err != nil {
					t.Errorf("churn %d.%d: %v", c, it, err)
					return
				}
				src := newFeed(cfg, noise.Params{}, 0.02, 0.02, rng.Uint64())
				nc := l * l
				layerX := bits.NewVecs(nc, cfg.Lanes)
				layerZ := bits.NewVecs(nc, cfg.Lanes)
				rounds := 1 + rng.IntN(20)
				for r := 0; r < rounds; r++ {
					src.NextLayers(layerX, layerZ)
					if err := s.Submit(layerX, layerZ); err != nil {
						t.Errorf("churn %d.%d submit: %v", c, it, err)
						return
					}
				}
				if rng.IntN(2) == 0 {
					src.CloseLayers(layerX, layerZ)
					if err := s.CloseWith(layerX, layerZ); err != nil {
						t.Errorf("churn %d.%d close: %v", c, it, err)
						return
					}
				} else if err := s.Close(); err != nil {
					t.Errorf("churn %d.%d drain: %v", c, it, err)
					return
				}
				if res, err := s.Wait(); err != nil {
					t.Errorf("churn %d.%d wait: %v", c, it, err)
					return
				} else if res.Rounds != rounds {
					t.Errorf("churn %d.%d: %d rounds ingested, want %d", c, it, res.Rounds, rounds)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	<-readerDone
	srv.Shutdown()
}

// TestServerAdaptiveWindow: the density controller widens the window
// under heavy noise, narrows it under light noise, respects the
// bounds, and the rewindowed pipeline stays sound (the committed
// correction cancels the accumulated error's syndrome).
func TestServerAdaptiveWindow(t *testing.T) {
	srv := New(Config{Workers: 2})
	defer srv.Shutdown()
	run := func(p float64, window int, adapt AdaptConfig) (SessionStats, SessionResult, *spacetime.LayerSource) {
		t.Helper()
		const l, lanes, rounds = 4, 64, 80
		cfg := Phenomenological(l, lanes, p, p)
		cfg.Window, cfg.Commit = window, window/2
		cfg.Adapt = &adapt
		s, err := srv.Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		src := spacetime.NewLayerSource(l, p, p, lanes, frame.NewAggregateSampler(7700, uint64(window)))
		nc := l * l
		layerX := bits.NewVecs(nc, lanes)
		layerZ := bits.NewVecs(nc, lanes)
		for r := 0; r < rounds; r++ {
			src.NextLayers(layerX, layerZ)
			if err := s.Submit(layerX, layerZ); err != nil {
				t.Fatal(err)
			}
		}
		src.CloseLayers(layerX, layerZ)
		if err := s.CloseWith(layerX, layerZ); err != nil {
			t.Fatal(err)
		}
		res, err := s.Wait()
		if err != nil {
			t.Fatal(err)
		}
		return s.Stats(), res, src
	}

	// Heavy noise from a narrow window: must grow.
	grow, res, src := run(0.08, 4, AdaptConfig{MinWindow: 4, MaxWindow: 12, GrowAt: 0.02, ShrinkAt: 0.001, Cooldown: 1})
	if grow.WindowMoves == 0 || grow.Window <= 4 {
		t.Fatalf("heavy noise did not widen the window: %+v", grow)
	}
	if grow.Window > 12 {
		t.Fatalf("window exceeded MaxWindow: %d", grow.Window)
	}
	// Soundness across rewindows.
	lat := toric.Cached(4)
	cumX, cumZ := src.ErrorPlanes()
	errv := bits.NewVec(lat.Qubits())
	for lane := 0; lane < 64; lane += 7 {
		errv.Clear()
		for e := 0; e < lat.Qubits(); e++ {
			if cumX[e].Get(lane) {
				errv.Flip(e)
			}
		}
		errv.Xor(res.FramesX[lane])
		if len(lat.Syndrome(errv)) != 0 {
			t.Fatalf("lane %d: X residual carries syndrome after adaptive growth", lane)
		}
		errv.Clear()
		for e := 0; e < lat.Qubits(); e++ {
			if cumZ[e].Get(lane) {
				errv.Flip(e)
			}
		}
		errv.Xor(res.FramesZ[lane])
		if len(lat.StarSyndrome(errv)) != 0 {
			t.Fatalf("lane %d: Z residual carries syndrome after adaptive growth", lane)
		}
	}

	// Light noise from a wide window: must shrink.
	shrink, _, _ := run(0.001, 12, AdaptConfig{MinWindow: 4, MaxWindow: 16, GrowAt: 0.5, ShrinkAt: 0.05, Cooldown: 1})
	if shrink.WindowMoves == 0 || shrink.Window >= 12 {
		t.Fatalf("light noise did not narrow the window: %+v", shrink)
	}
	if shrink.Window < 4 {
		t.Fatalf("window fell below MinWindow: %d", shrink.Window)
	}
}

// TestServerValidation: misconfigured sessions fail at Open with
// descriptive errors, not mid-decode panics.
func TestServerValidation(t *testing.T) {
	srv := New(Config{Workers: 1})
	defer srv.Shutdown()
	good := Phenomenological(3, 8, 0.02, 0.02)
	bad := []SessionConfig{
		{L: good.L, Lanes: 0, Window: good.Window, Commit: good.Commit, WH: good.WH, WV: good.WV},
		{L: 1, Lanes: 8, Window: 4, Commit: 2, WH: 1, WV: 1},
		{L: 3, Lanes: 8, Window: 4, Commit: 4, WH: 1, WV: 1},
		{L: 3, Lanes: 8, Window: 4, Commit: 2, WH: 0, WV: 1},
		func() SessionConfig {
			c := good
			c.Adapt = &AdaptConfig{MinWindow: 1, MaxWindow: 8}
			return c
		}(),
		func() SessionConfig {
			c := good
			c.Adapt = &AdaptConfig{MinWindow: 8, MaxWindow: 4}
			return c
		}(),
	}
	for i, cfg := range bad {
		if _, err := srv.Open(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	s, err := srv.Open(good)
	if err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	wrong := bits.NewVecs(good.L*good.L+1, good.Lanes)
	if err := s.Submit(wrong, wrong); err == nil {
		t.Error("mismatched plane count accepted")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestServeConnWire: the framed ingestion path end to end over an
// in-memory transport — syndrome layers in, committed frames out,
// bit-identical to the standalone stream.
func TestServeConnWire(t *testing.T) {
	const l, lanes, rounds, seed = 4, 48, 20, 7900
	cfg := Phenomenological(l, lanes, 0.025, 0.025)
	refX, refZ, _ := standaloneFrames(t, cfg, noise.Params{}, 0.025, 0.025, rounds, seed, true)

	srv := New(Config{Workers: 2})
	defer srv.Shutdown()
	client, serverSide := net.Pipe()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ServeConn(serverSide) }()

	conn := Dial(client)
	if err := conn.Open(cfg); err != nil {
		t.Fatal(err)
	}
	src := newFeed(cfg, noise.Params{}, 0.025, 0.025, seed)
	nc := l * l
	layerX := bits.NewVecs(nc, lanes)
	layerZ := bits.NewVecs(nc, lanes)
	for r := 0; r < rounds; r++ {
		src.NextLayers(layerX, layerZ)
		if err := conn.Round(layerX, layerZ); err != nil {
			t.Fatal(err)
		}
	}
	src.CloseLayers(layerX, layerZ)
	res, err := conn.Finish(layerX, layerZ)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("ServeConn: %v", err)
	}
	if !res.Finished || res.Rounds != rounds || res.Committed != rounds {
		t.Fatalf("wire result incomplete: %+v", res)
	}
	if !framesEqual(res.FramesX, res.FramesZ, refX, refZ) {
		t.Fatal("wire frames differ from standalone stream")
	}
}

// TestHist: the latency histogram counts, bounds its quantiles by the
// observed max, and orders them.
func TestHist(t *testing.T) {
	var h Hist
	for i := 0; i < 90; i++ {
		h.Observe(time.Microsecond)
	}
	for i := 0; i < 9; i++ {
		h.Observe(time.Millisecond)
	}
	h.Observe(time.Second)
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count %d", s.Count)
	}
	if s.Max != time.Second {
		t.Fatalf("max %v", s.Max)
	}
	if s.P50 > s.P90 || s.P90 > s.P99 || s.P99 > s.Max {
		t.Fatalf("quantiles out of order: %v %v %v %v", s.P50, s.P90, s.P99, s.Max)
	}
	if s.P50 < time.Microsecond || s.P50 > 2*time.Microsecond {
		t.Fatalf("p50 %v, want ~1µs", s.P50)
	}
	if s.P90 < time.Millisecond || s.P90 > 2*time.Millisecond {
		t.Fatalf("p90 %v, want ~1ms", s.P90)
	}
	// The 99th of 100 sorted samples is the 1s outlier; the quantile is
	// capped at the observed max rather than the bucket bound.
	if s.P99 != time.Second {
		t.Fatalf("p99 %v, want 1s", s.P99)
	}
	if len(s.Buckets) != 3 {
		t.Fatalf("%d non-empty buckets, want 3", len(s.Buckets))
	}
}
