//go:build race

package server

// raceEnabled reports whether the race detector instruments this build;
// its allocations would fail the allocation-bound pins.
const raceEnabled = true
