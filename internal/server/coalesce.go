package server

import (
	"runtime"
	"sync"

	"ftqc/internal/decoder"
	"ftqc/internal/stream"
)

// Coalescer merges same-graph decode submissions from concurrent
// sessions into single pool submissions (decoder.Service.SubmitGroupOn).
// It implements stream.Submitter, so a server wires it between the
// interned stream.Sessions and the shared worker pool.
//
// The merge is flat-combining, per graph: the first session to submit
// against an idle graph becomes the leader and flushes immediately;
// sessions arriving while a flush is in flight stage their batches and
// wait, and the leader keeps flushing staged groups until none remain.
// Under light load every submission flushes alone (no added latency, no
// timers); under load the pool's bounded task queue stalls the leader
// and groups grow to match — the batching is demand-driven.
//
// Grouping never changes results: each shot's correction depends only
// on (graph, shot) and lands in its own batch's slot, so the committed
// frames of every session are bit-identical to the uncoalesced path,
// for any worker count, interleaving, or group shape. Only throughput
// moves.
type Coalescer struct {
	pool *decoder.Service

	mu     sync.Mutex
	groups map[*decoder.Graph]*coalGroup

	flushes  uint64 // group submissions sent to the pool
	batches  uint64 // session batches carried by those flushes
	shots    uint64 // shots carried by those flushes
	maxGroup int    // largest group observed
}

// coalGroup is the per-graph staging area: the batches accumulated for
// the next flush and the ticket their submitters wait on.
type coalGroup struct {
	subs    []decoder.GroupSub
	spare   []decoder.GroupSub // retired staging buffer, recycled on next stage
	ticket  *flushTicket
	leading bool // a leader is flushing; stagers wait instead of flushing
}

// flushTicket is the completion signal for one flush: done closes once
// the group's spans are enqueued (or the submission failed), and err is
// valid after that.
type flushTicket struct {
	done chan struct{}
	err  error
}

// NewCoalescer wraps a decode pool with cross-session batch coalescing.
func NewCoalescer(pool *decoder.Service) *Coalescer {
	return &Coalescer{pool: pool, groups: make(map[*decoder.Graph]*coalGroup)}
}

// ResubmitOn stages one session's batch for graph g and returns once it
// has been handed to the pool — as its own submission when the graph is
// idle, or merged into a group when other sessions are submitting
// concurrently. The returned error is exactly what the pool's own
// submission returned for the flush carrying this batch, so the
// caller's error handling is unchanged from the direct path.
func (c *Coalescer) ResubmitOn(g *decoder.Graph, b *decoder.Batch, shots []decoder.Shot) error {
	c.mu.Lock()
	grp := c.groups[g]
	if grp == nil {
		grp = &coalGroup{ticket: &flushTicket{done: make(chan struct{})}}
		c.groups[g] = grp
	}
	if grp.subs == nil && grp.spare != nil {
		grp.subs, grp.spare = grp.spare, nil
	}
	grp.subs = append(grp.subs, decoder.GroupSub{B: b, Shots: shots})
	if grp.leading {
		// A leader is mid-flush; it will pick this batch up on its next
		// pass. Wait for the flush that carries it.
		t := grp.ticket
		c.mu.Unlock()
		<-t.done
		return t.err
	}
	grp.leading = true
	c.mu.Unlock()
	// One scheduler yield before the first take: sessions that are
	// runnable right now get to stage their batches into this flush
	// instead of the next, which is what lifts occupancy above 1 when
	// the processor count (not the pool's task queue) is the bottleneck.
	// Cost when nothing else is runnable: one run-queue round trip.
	runtime.Gosched()
	c.mu.Lock()
	var first error
	for i := 0; ; i++ {
		subs, t := grp.subs, grp.ticket
		grp.subs = nil
		grp.ticket = &flushTicket{done: make(chan struct{})}
		c.flushes++
		c.batches += uint64(len(subs))
		for j := range subs {
			c.shots += uint64(len(subs[j].Shots))
		}
		if len(subs) > c.maxGroup {
			c.maxGroup = len(subs)
		}
		c.mu.Unlock()
		t.err = c.pool.SubmitGroupOn(g, subs)
		close(t.done)
		if i == 0 {
			first = t.err
		}
		c.mu.Lock()
		// The flushed staging buffer is spent (SubmitGroupOn handed each
		// batch its own shots); recycle it so steady-state staging stops
		// allocating.
		if grp.spare == nil {
			grp.spare = subs[:0]
		}
		if len(grp.subs) == 0 {
			grp.leading = false
			c.mu.Unlock()
			return first
		}
	}
}

// CoalesceStats is the coalescer's observability snapshot.
type CoalesceStats struct {
	Flushes   uint64  // pool submissions
	Batches   uint64  // session batches they carried
	Shots     uint64  // shots they carried
	MaxGroup  int     // largest single group
	Occupancy float64 // mean batches per flush (1.0 = no merging)
	ShotsPer  float64 // mean shots per pool submission
}

// Stats snapshots the merge counters.
func (c *Coalescer) Stats() CoalesceStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CoalesceStats{Flushes: c.flushes, Batches: c.batches, Shots: c.shots, MaxGroup: c.maxGroup}
	if st.Flushes > 0 {
		st.Occupancy = float64(st.Batches) / float64(st.Flushes)
		st.ShotsPer = float64(st.Shots) / float64(st.Flushes)
	}
	return st
}

var _ stream.Submitter = (*Coalescer)(nil)
