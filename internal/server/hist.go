package server

import (
	mbits "math/bits"
	"sync/atomic"
	"time"
)

// histBuckets spans 1ns to ~2.3h in power-of-two buckets — bucket i
// counts observations in [2^(i-1), 2^i) ns (bucket 0 is exactly zero).
const histBuckets = 44

// Hist is a lock-free latency histogram with power-of-two buckets,
// cheap enough to sit on every commit in the hot path. Observe and
// Snapshot may race freely; a snapshot is a consistent-enough view for
// monitoring (counts are monotone).
type Hist struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
}

// Observe records one latency.
func (h *Hist) Observe(d time.Duration) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	b := mbits.Len64(ns)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// HistSnapshot is a point-in-time summary of a commit-latency
// histogram. Quantiles are bucket upper bounds (within 2× of exact).
type HistSnapshot struct {
	Count              uint64
	Mean               time.Duration
	P50, P90, P99, Max time.Duration
	Buckets            []HistBucket // non-empty buckets, ascending
}

// HistBucket is one non-empty power-of-two bucket: Count observations
// at most UpTo.
type HistBucket struct {
	UpTo  time.Duration
	Count uint64
}

// Snapshot summarizes the histogram.
func (h *Hist) Snapshot() HistSnapshot {
	var counts [histBuckets]uint64
	total := uint64(0)
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s := HistSnapshot{Count: total, Max: time.Duration(h.max.Load())}
	if total == 0 {
		return s
	}
	s.Mean = time.Duration(h.sum.Load() / total)
	quantile := func(q float64) time.Duration {
		target := uint64(q * float64(total))
		if target >= total {
			target = total - 1
		}
		cum := uint64(0)
		for i, c := range counts {
			cum += c
			if cum > target {
				// The final bucket is the overflow bucket: it holds every
				// observation from 2^42 ns up, so its power-of-two "upper
				// bound" can understate the quantile by hours. The observed
				// maximum is the only honest bound there — and the clamp
				// below keeps regular buckets from overstating past it.
				if i == histBuckets-1 {
					return s.Max
				}
				up := bucketUpper(i)
				if up > s.Max {
					up = s.Max
				}
				return up
			}
		}
		return s.Max
	}
	s.P50, s.P90, s.P99 = quantile(0.50), quantile(0.90), quantile(0.99)
	for i, c := range counts {
		if c > 0 {
			up := bucketUpper(i)
			if i == histBuckets-1 || up > s.Max {
				up = s.Max
			}
			s.Buckets = append(s.Buckets, HistBucket{UpTo: up, Count: c})
		}
	}
	return s
}

// bucketUpper returns the exclusive upper bound of bucket i in ns.
func bucketUpper(i int) time.Duration {
	if i == 0 {
		return 0
	}
	return time.Duration(uint64(1) << uint(i))
}
