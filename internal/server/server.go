package server

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ftqc/internal/bits"
	"ftqc/internal/decoder"
	"ftqc/internal/noise"
	"ftqc/internal/spacetime"
	"ftqc/internal/stream"
	"ftqc/internal/surface"
	"ftqc/internal/toric"
)

var (
	// ErrDraining rejects new sessions and new rounds once Shutdown has
	// begun.
	ErrDraining = errors.New("server: draining, not accepting new work")
	// ErrSessionClosed rejects submissions to a closed session.
	ErrSessionClosed = errors.New("server: session closed")
	// ErrBacklog is the OverflowReject fast-fail: the session's ingest
	// queue is full.
	ErrBacklog = errors.New("server: session ingest queue full")
)

// OverflowPolicy picks what Submit does when a session's bounded ingest
// queue is full.
type OverflowPolicy int

const (
	// OverflowBlock stalls Submit until the decode frees a slot — the
	// lossless default (difference syndromes cannot tolerate a dropped
	// round).
	OverflowBlock OverflowPolicy = iota
	// OverflowReject returns ErrBacklog immediately and counts the
	// overflow; the producer decides how to shed load.
	OverflowReject
)

// Config shapes a decode server.
type Config struct {
	// Workers is the shared decode pool size (<= 0: GOMAXPROCS).
	Workers int
	// QueueDepth bounds each session's ingest queue in rounds
	// (<= 0: 16).
	QueueDepth int
	// Overflow is the per-session policy when the queue is full.
	Overflow OverflowPolicy
	// Coalesce merges same-graph decode submissions from concurrent
	// sessions into single pool submissions (see Coalescer). Committed
	// frames are bit-identical either way; coalescing trades a little
	// submit-path synchronization for fewer, larger worker dispatches —
	// a win for fleets of many small sessions on one window shape.
	Coalesce bool
}

// AdaptConfig turns on adaptive windows for a session: the server
// grows/shrinks W (and the half-window commit) online from the
// observed defect density, trading commit latency against decode
// context.
type AdaptConfig struct {
	// MinWindow/MaxWindow bound W (MinWindow >= 2).
	MinWindow, MaxWindow int
	// GrowAt/ShrinkAt are defect-density thresholds (defects per
	// detector per round per lane): density above GrowAt widens the
	// window, below ShrinkAt narrows it. GrowAt >= ShrinkAt.
	GrowAt, ShrinkAt float64
	// Cooldown is the minimum number of slides between window moves
	// (<= 0: 2).
	Cooldown int
}

// SessionConfig shapes one logical-qubit session. Zero Window/Commit
// take the stream.DefaultWindow sizes; WD > 0 selects the
// circuit-level (diagonal-edge) window. The Phenomenological and
// CircuitLevel helpers fill in default windows and weights.
type SessionConfig struct {
	// Code selects the code family. Nil picks the L×L toric code; an
	// explicit code overrides L with its own distance.
	Code  surface.Code
	L     int
	Lanes int

	Window, Commit int
	WH, WV, WD     int

	// Adapt, when non-nil, turns on adaptive windows.
	Adapt *AdaptConfig

	// gate, when non-nil, stalls the session worker before each queued
	// round until the channel yields — a deterministic backpressure
	// hook for the tests.
	gate chan struct{}
}

// Phenomenological returns the standard session config for an L×L code
// under phenomenological noise (data rate p, measurement rate q):
// default window, weights from spacetime.Weights.
func Phenomenological(l, lanes int, p, q float64) SessionConfig {
	w, c := stream.DefaultWindow(l)
	wh, wv := spacetime.Weights(p, q, l, w)
	return SessionConfig{L: l, Lanes: lanes, Window: w, Commit: c, WH: wh, WV: wv}
}

// CircuitLevel returns the standard session config for an L×L code
// under the circuit-level model P: default window, weights from
// spacetime.WeightsCircuit with the window as horizon.
func CircuitLevel(l, lanes int, P noise.Params) SessionConfig {
	w, c := stream.DefaultWindow(l)
	wh, wv, wd := spacetime.WeightsCircuit(P, l, w)
	return SessionConfig{L: l, Lanes: lanes, Window: w, Commit: c, WH: wh, WV: wv, WD: wd}
}

// PhenomenologicalCode is Phenomenological for any surface.Code.
func PhenomenologicalCode(code surface.Code, lanes int, p, q float64) SessionConfig {
	w, c := stream.DefaultWindow(code.Distance())
	wh, wv := spacetime.Weights(p, q, code.Distance(), w)
	return SessionConfig{Code: code, L: code.Distance(), Lanes: lanes, Window: w, Commit: c, WH: wh, WV: wv}
}

// CircuitLevelCode is CircuitLevel for any surface.Code.
func CircuitLevelCode(code surface.Code, lanes int, P noise.Params) SessionConfig {
	w, c := stream.DefaultWindow(code.Distance())
	wh, wv, wd := spacetime.WeightsCircuit(P, code.Distance(), w)
	return SessionConfig{Code: code, L: code.Distance(), Lanes: lanes, Window: w, Commit: c, WH: wh, WV: wv, WD: wd}
}

// winKey interns shared stream.Sessions per code family and window
// shape.
type winKey struct {
	family              string
	l, w, c, wh, wv, wd int
}

// Server is the multi-tenant decode server: a shared decoder pool, a
// cache of window structures, and the set of open sessions. See the
// package documentation for the scheduling and backpressure contract.
type Server struct {
	cfg  Config
	pool *decoder.Service
	coal *Coalescer // non-nil iff Config.Coalesce

	mu       sync.Mutex
	wins     map[winKey]*stream.Session
	sessions map[uint64]*Session
	nextID   uint64
	draining bool
	wg       sync.WaitGroup
}

// New starts a decode server.
func New(cfg Config) *Server {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	srv := &Server{
		cfg:      cfg,
		pool:     decoder.NewPool(cfg.Workers),
		wins:     make(map[winKey]*stream.Session),
		sessions: make(map[uint64]*Session),
	}
	if cfg.Coalesce {
		srv.coal = NewCoalescer(srv.pool)
	}
	return srv
}

// Pool returns the shared decode pool (for introspection).
func (srv *Server) Pool() *decoder.Service { return srv.pool }

// CoalesceStats snapshots the cross-session batch coalescer. The zero
// snapshot means coalescing is off (Config.Coalesce unset).
func (srv *Server) CoalesceStats() CoalesceStats {
	if srv.coal == nil {
		return CoalesceStats{}
	}
	return srv.coal.Stats()
}

// sharedSession returns the interned stream.Session for a window
// shape, building it on first use. All validation of the window
// parameters happens here, via the stream constructors.
func (srv *Server) sharedSession(code surface.Code, w, c, wh, wv, wd int) (*stream.Session, error) {
	key := winKey{code.CodeName(), code.Distance(), w, c, wh, wv, wd}
	srv.mu.Lock()
	ss, ok := srv.wins[key]
	srv.mu.Unlock()
	if ok {
		return ss, nil
	}
	var err error
	if wd > 0 {
		ss, err = stream.NewCodeCircuitSessionOn(srv.pool, code, w, c, wh, wv, wd)
	} else {
		ss, err = stream.NewCodeSessionOn(srv.pool, code, w, c, wh, wv)
	}
	if err != nil {
		return nil, err
	}
	if srv.coal != nil {
		ss.SetSubmitter(srv.coal)
	}
	srv.mu.Lock()
	defer srv.mu.Unlock()
	if have, ok := srv.wins[key]; ok {
		return have, nil
	}
	srv.wins[key] = ss
	return ss, nil
}

// Open starts a session. The returned Session is ready to Submit to;
// every session runs its own ingest worker against the shared pool.
func (srv *Server) Open(cfg SessionConfig) (*Session, error) {
	if cfg.Lanes < 1 {
		return nil, fmt.Errorf("server: session needs at least one lane (got %d)", cfg.Lanes)
	}
	if cfg.Code == nil {
		if cfg.L < 2 {
			return nil, fmt.Errorf("server: session needs a code or a lattice size of at least 2 (got L=%d)", cfg.L)
		}
		cfg.Code = toric.Cached(cfg.L)
	} else {
		cfg.L = cfg.Code.Distance()
	}
	if cfg.Window <= 0 || cfg.Commit <= 0 {
		cfg.Window, cfg.Commit = stream.DefaultWindow(cfg.L)
	}
	if a := cfg.Adapt; a != nil {
		ac := *a
		if ac.Cooldown <= 0 {
			ac.Cooldown = 2
		}
		if ac.MinWindow < 2 {
			return nil, fmt.Errorf("server: adaptive MinWindow must be at least 2 (got %d)", ac.MinWindow)
		}
		if ac.MaxWindow < ac.MinWindow {
			return nil, fmt.Errorf("server: adaptive MaxWindow %d below MinWindow %d", ac.MaxWindow, ac.MinWindow)
		}
		if cfg.Window < ac.MinWindow || cfg.Window > ac.MaxWindow {
			return nil, fmt.Errorf("server: initial window %d outside adaptive bounds [%d, %d]", cfg.Window, ac.MinWindow, ac.MaxWindow)
		}
		if ac.GrowAt < ac.ShrinkAt {
			return nil, fmt.Errorf("server: adaptive GrowAt %.4g below ShrinkAt %.4g", ac.GrowAt, ac.ShrinkAt)
		}
		cfg.Adapt = &ac
	}
	ss, err := srv.sharedSession(cfg.Code, cfg.Window, cfg.Commit, cfg.WH, cfg.WV, cfg.WD)
	if err != nil {
		return nil, err
	}

	srv.mu.Lock()
	if srv.draining {
		srv.mu.Unlock()
		return nil, ErrDraining
	}
	srv.nextID++
	s := newSession(srv, srv.nextID, cfg, ss)
	srv.sessions[s.id] = s
	srv.wg.Add(1)
	srv.mu.Unlock()
	go s.run()
	return s, nil
}

// remove drops a completed session from the registry.
func (srv *Server) remove(id uint64) {
	srv.mu.Lock()
	delete(srv.sessions, id)
	srv.mu.Unlock()
}

// Snapshot returns the stats of every open session, in id order — the
// observability API behind `ftqc sessions`.
func (srv *Server) Snapshot() []SessionStats {
	srv.mu.Lock()
	open := make([]*Session, 0, len(srv.sessions))
	for _, s := range srv.sessions {
		open = append(open, s)
	}
	srv.mu.Unlock()
	sort.Slice(open, func(i, j int) bool { return open[i].id < open[j].id })
	stats := make([]SessionStats, len(open))
	for i, s := range open {
		stats[i] = s.Stats()
	}
	return stats
}

// Shutdown drains the server: new sessions and new rounds are
// rejected, every open session flushes its queue and delivers its
// committed frames, then the worker pool is released. Idempotent.
func (srv *Server) Shutdown() {
	srv.mu.Lock()
	already := srv.draining
	srv.draining = true
	open := make([]*Session, 0, len(srv.sessions))
	for _, s := range srv.sessions {
		open = append(open, s)
	}
	srv.mu.Unlock()
	for _, s := range open {
		s.Close() // ErrSessionClosed from an already-closing session is fine
	}
	srv.wg.Wait()
	if !already {
		srv.pool.Close()
	}
}

// roundMsg is one queued ingest round (or the finish marker carrying
// the closing layers). Buffers are preallocated and recycled through
// the session's free list.
type roundMsg struct {
	x, z   []bits.Vec
	enq    time.Time
	finish bool
}

// SessionResult is what Wait delivers: the per-lane committed Pauli
// frames of both sectors and how much of the stream they cover.
// Finished sessions (CloseWith) cover every ingested round; drained
// sessions (Close/Shutdown) cover the committed prefix.
type SessionResult struct {
	FramesX, FramesZ []bits.Vec
	Rounds           int
	Committed        int
	Finished         bool
}

// SessionStats is one session's observability snapshot.
type SessionStats struct {
	ID                       uint64
	Code                     string
	L, Window, Commit, Lanes int
	Circuit                  bool
	Rounds                   uint64 // rounds ingested
	Committed                uint64 // rounds committed into frames
	Slides                   uint64
	Defects                  uint64 // defects ingested (both sectors, all lanes)
	DefectDensity            float64
	Overflows                uint64
	WindowMoves              uint64
	Latency                  HistSnapshot
	Closed                   bool
}

// Session is one live logical-qubit stream on the server.
type Session struct {
	id  uint64
	srv *Server
	cfg SessionConfig

	nc, lanes int

	lifeMu sync.RWMutex // guards closed vs in-flight sends on in
	closed bool
	in     chan roundMsg
	free   chan roundMsg
	done   chan struct{}

	// Worker-owned pipeline state.
	dec         *stream.Decoder
	ss          *stream.Session
	times       []time.Time // enqueue times by absolute round index (ring)
	finished    bool
	lastSlides  int
	lastRounds  uint64 // ingest-side, matches lastDefects
	lastDefects uint64

	// Stats mirrors: written by Submit/worker, read by Snapshot.
	ingested    atomic.Uint64
	committedCt atomic.Uint64
	slides      atomic.Uint64
	defects     atomic.Uint64
	overflows   atomic.Uint64
	windowMoves atomic.Uint64
	curWindow   atomic.Int64
	curCommit   atomic.Int64
	closedFlag  atomic.Bool
	hist        Hist

	res SessionResult
	err error
}

func newSession(srv *Server, id uint64, cfg SessionConfig, ss *stream.Session) *Session {
	depth := srv.cfg.QueueDepth
	s := &Session{
		id:    id,
		srv:   srv,
		cfg:   cfg,
		nc:    ss.Window().Code().Checks(),
		lanes: cfg.Lanes,
		in:    make(chan roundMsg, depth),
		free:  make(chan roundMsg, depth+2),
		done:  make(chan struct{}),
		ss:    ss,
	}
	s.dec = ss.NewDecoder(cfg.Lanes)
	maxW := cfg.Window
	if cfg.Adapt != nil && cfg.Adapt.MaxWindow > maxW {
		maxW = cfg.Adapt.MaxWindow
	}
	s.times = make([]time.Time, maxW+depth+4)
	for i := 0; i < depth+2; i++ {
		s.free <- roundMsg{x: bits.NewVecs(s.nc, cfg.Lanes), z: bits.NewVecs(s.nc, cfg.Lanes)}
	}
	s.curWindow.Store(int64(cfg.Window))
	s.curCommit.Store(int64(cfg.Commit))
	return s
}

// ID returns the server-assigned session id.
func (s *Session) ID() uint64 { return s.id }

// Config returns the (normalized) session configuration.
func (s *Session) Config() SessionConfig { return s.cfg }

// Submit ingests one round's difference layers (check-major planes of
// lane bits, exactly as stream.Decoder.Push takes them). It copies the
// planes into a recycled queue buffer, so the caller may reuse its
// slices immediately. Flow control follows the server's overflow
// policy; after Close/CloseWith it returns ErrSessionClosed.
func (s *Session) Submit(layerX, layerZ []bits.Vec) error {
	if len(layerX) != s.nc || len(layerZ) != s.nc {
		return fmt.Errorf("server: round has %d/%d planes, want %d (L=%d)", len(layerX), len(layerZ), s.nc, s.cfg.L)
	}
	if layerX[0].Len() != s.lanes || layerZ[0].Len() != s.lanes {
		return fmt.Errorf("server: round has %d lanes, session has %d", layerX[0].Len(), s.lanes)
	}
	s.lifeMu.RLock()
	defer s.lifeMu.RUnlock()
	if s.closed {
		return ErrSessionClosed
	}
	var msg roundMsg
	if s.srv.cfg.Overflow == OverflowReject {
		select {
		case msg = <-s.free:
		default:
			s.overflows.Add(1)
			return ErrBacklog
		}
	} else {
		msg = <-s.free
	}
	def := 0
	for c := 0; c < s.nc; c++ {
		msg.x[c].CopyFrom(layerX[c])
		msg.z[c].CopyFrom(layerZ[c])
		def += msg.x[c].Weight() + msg.z[c].Weight()
	}
	msg.enq = time.Now()
	msg.finish = false
	if s.srv.cfg.Overflow == OverflowReject {
		select {
		case s.in <- msg:
		default:
			s.free <- msg
			s.overflows.Add(1)
			return ErrBacklog
		}
	} else {
		s.in <- msg
	}
	s.ingested.Add(1)
	s.defects.Add(uint64(def))
	return nil
}

// CloseWith finishes the stream gracefully: the closing (perfect
// round) layers settle the buffered tail exactly like
// stream.Decoder.Finish, and Wait then delivers frames covering every
// ingested round.
func (s *Session) CloseWith(closingX, closingZ []bits.Vec) error {
	if len(closingX) != s.nc || len(closingZ) != s.nc {
		return fmt.Errorf("server: closing round has %d/%d planes, want %d", len(closingX), len(closingZ), s.nc)
	}
	s.lifeMu.Lock()
	if s.closed {
		s.lifeMu.Unlock()
		return ErrSessionClosed
	}
	s.closed = true
	s.closedFlag.Store(true)
	s.lifeMu.Unlock()
	// We are the only sender now; the finish marker is the last message.
	msg := roundMsg{x: bits.NewVecs(s.nc, s.lanes), z: bits.NewVecs(s.nc, s.lanes), enq: time.Now(), finish: true}
	for c := 0; c < s.nc; c++ {
		msg.x[c].CopyFrom(closingX[c])
		msg.z[c].CopyFrom(closingZ[c])
	}
	s.in <- msg
	close(s.in)
	return nil
}

// Close stops the session without a closing round: queued rounds still
// decode, and Wait delivers the committed prefix — the drain path,
// also used by Server.Shutdown.
func (s *Session) Close() error {
	s.lifeMu.Lock()
	if s.closed {
		s.lifeMu.Unlock()
		return ErrSessionClosed
	}
	s.closed = true
	s.closedFlag.Store(true)
	s.lifeMu.Unlock()
	close(s.in)
	return nil
}

// Wait blocks until the session's worker has drained and returns the
// result. The frames are live views of the decoder's committed state;
// they are safe to read (and mutate) once Wait returns.
func (s *Session) Wait() (SessionResult, error) {
	<-s.done
	return s.res, s.err
}

// Stats assembles the session's observability snapshot.
func (s *Session) Stats() SessionStats {
	st := SessionStats{
		ID:          s.id,
		Code:        s.cfg.Code.CodeName(),
		L:           s.cfg.L,
		Window:      int(s.curWindow.Load()),
		Commit:      int(s.curCommit.Load()),
		Lanes:       s.lanes,
		Circuit:     s.cfg.WD > 0,
		Rounds:      s.ingested.Load(),
		Committed:   s.committedCt.Load(),
		Slides:      s.slides.Load(),
		Defects:     s.defects.Load(),
		Overflows:   s.overflows.Load(),
		WindowMoves: s.windowMoves.Load(),
		Latency:     s.hist.Snapshot(),
		Closed:      s.closedFlag.Load(),
	}
	if st.Rounds > 0 {
		st.DefectDensity = float64(st.Defects) / (float64(st.Rounds) * float64(2*s.nc) * float64(s.lanes))
	}
	return st
}

// run is the session worker: it drains the ingest queue through the
// streaming decoder, records commit latencies, adapts the window, and
// publishes the result.
func (s *Session) run() {
	defer s.srv.wg.Done()
	defer close(s.done)
	defer s.srv.remove(s.id)
	for msg := range s.in {
		if s.cfg.gate != nil {
			<-s.cfg.gate
		}
		if msg.finish {
			s.finish(msg)
			continue
		}
		s.ingest(msg)
		s.free <- msg
	}
	if !s.finished {
		s.capture(false)
	}
}

// ingest pushes one round and accounts for everything it committed.
func (s *Session) ingest(msg roundMsg) {
	if s.err != nil {
		return
	}
	d := s.dec
	s.times[d.Rounds()%len(s.times)] = msg.enq
	before := d.Committed()
	preSlides := d.Slides()
	d.Push(msg.x, msg.z)
	if err := d.Err(); err != nil {
		s.err = err
		return
	}
	if d.Slides() != preSlides {
		s.maybeAdapt()
		d = s.dec // maybeAdapt may have rewindowed
	}
	s.observeCommits(before, d.Committed())
	s.slides.Store(uint64(d.Slides()))
}

// finish settles the stream with the closing layers.
func (s *Session) finish(msg roundMsg) {
	s.finished = true
	if s.err != nil {
		s.capture(false)
		return
	}
	d := s.dec
	before := d.Committed()
	if d.Rounds() > 0 {
		d.Finish(msg.x, msg.z)
	}
	if err := d.Err(); err != nil {
		s.err = err
		s.capture(false)
		return
	}
	s.observeCommits(before, d.Committed())
	s.capture(true)
}

// observeCommits records commit latencies for rounds [from, to).
func (s *Session) observeCommits(from, to int) {
	if to <= from {
		return
	}
	now := time.Now()
	for r := from; r < to; r++ {
		s.hist.Observe(now.Sub(s.times[r%len(s.times)]))
	}
	s.committedCt.Store(uint64(to))
}

// capture publishes the session result before done closes.
func (s *Session) capture(finished bool) {
	d := s.dec
	s.res = SessionResult{Rounds: d.Rounds(), Committed: d.Committed(), Finished: finished}
	s.res.FramesX, s.res.FramesZ = d.Corrections()
}

// maybeAdapt applies the adaptive-window policy at a slide boundary:
// it measures the defect density since the last decision and moves the
// live decoder to a wider or narrower interned window when the density
// crosses a threshold.
func (s *Session) maybeAdapt() {
	a := s.cfg.Adapt
	if a == nil {
		return
	}
	d := s.dec
	if d.Slides()-s.lastSlides < a.Cooldown {
		return
	}
	// Numerator and denominator both come from the ingest-side counters
	// (defects are counted at Submit): mixing submit-side defects with
	// decode-side rounds would read a spurious near-zero density while
	// the worker drains rounds the producer queued earlier.
	rounds := s.ingested.Load() - s.lastRounds
	if rounds == 0 {
		return
	}
	defects := s.defects.Load()
	density := float64(defects-s.lastDefects) / (float64(rounds) * float64(2*s.nc) * float64(s.lanes))
	s.lastSlides, s.lastRounds, s.lastDefects = d.Slides(), s.ingested.Load(), defects
	w := int(s.curWindow.Load())
	target := w
	switch {
	case density > a.GrowAt && w < a.MaxWindow:
		target = w + (w+1)/2
		if target > a.MaxWindow {
			target = a.MaxWindow
		}
	case density < a.ShrinkAt && w > a.MinWindow:
		target = (2*w + 2) / 3
		if target < a.MinWindow {
			target = a.MinWindow
		}
	}
	if target == w {
		return
	}
	commit := target / 2
	if commit < 1 {
		commit = 1
	}
	ns, err := s.srv.sharedSession(s.cfg.Code, target, commit, s.cfg.WH, s.cfg.WV, s.cfg.WD)
	if err != nil {
		return // keep the current window on any failure
	}
	nd, err := d.Rewindow(ns)
	if err != nil {
		return
	}
	s.dec, s.ss = nd, ns
	s.windowMoves.Add(1)
	s.curWindow.Store(int64(target))
	s.curCommit.Store(int64(commit))
}
