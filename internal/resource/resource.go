// Package resource reproduces the machine-sizing estimates of Preskill
// §6: the resources needed to factor a 130-digit (432-bit) number with
// Shor's algorithm on a fault-tolerant machine, for both the concatenated
// 7-qubit architecture (~10⁶ qubits at ε ~ 10⁻⁶) and Steane's block-55
// alternative (~4·10⁵ qubits at ε ~ 10⁻⁵).
package resource

import (
	"fmt"
	"math"

	"ftqc/internal/concat"
)

// FactoringWorkload are the §6 algorithm-level requirements for factoring
// an n-bit number with Shor's algorithm (ref. 47: 5n qubits, 38n³ Toffoli
// gates).
type FactoringWorkload struct {
	Bits          int
	LogicalQubits int
	ToffoliGates  float64
	// Target failure budgets from §6.
	TargetGateError    float64 // per logical Toffoli, ~1e-9
	TargetStorageError float64 // per qubit per gate time, ~1e-12
}

// Factoring returns the workload for an n-bit factoring instance.
func Factoring(bits int) FactoringWorkload {
	n := float64(bits)
	return FactoringWorkload{
		Bits:               bits,
		LogicalQubits:      5 * bits,
		ToffoliGates:       38 * n * n * n,
		TargetGateError:    1e-9,
		TargetStorageError: 1e-12,
	}
}

// Machine is a sized fault-tolerant computer.
type Machine struct {
	Name           string
	PhysicalError  float64
	Levels         int     // concatenation levels (0 for a flat code)
	BlockSize      int     // physical qubits per logical qubit
	DataQubits     int     // block size × logical qubits
	TotalQubits    int     // including ancilla factor
	AncillaFactor  float64 // machine qubits per data qubit
	AchievedErrorL float64 // logical error per gate after coding
}

// SizeConcatenated sizes the paper's concatenated-Steane machine: choose
// the concatenation level so the flow equation (calibrated with
// coefficient A) meets the Toffoli error budget at physical rate eps.
func SizeConcatenated(w FactoringWorkload, eps float64, flow concat.Flow, ancillaFactor float64) (Machine, error) {
	l := flow.LevelsNeeded(eps, w.TargetGateError)
	if l < 0 {
		return Machine{}, fmt.Errorf("resource: ε=%.2g is above the threshold %.2g", eps, flow.Threshold())
	}
	block := concat.BlockSize(l)
	data := block * w.LogicalQubits
	return Machine{
		Name:           "concatenated Steane (§6)",
		PhysicalError:  eps,
		Levels:         l,
		BlockSize:      block,
		DataQubits:     data,
		TotalQubits:    int(math.Ceil(float64(data) * ancillaFactor)),
		AncillaFactor:  ancillaFactor,
		AchievedErrorL: flow.AtLevel(eps, l),
	}, nil
}

// SizeSteane55 sizes the paper's alternative machine (ref. 48): a block
// code of size 55 correcting 5 errors, ~4·10⁵ qubits at gate error 1e-5.
// The achieved logical error follows the ε^(t+1) scaling of a distance-11
// code with a conservative combinatorial prefactor.
func SizeSteane55(w FactoringWorkload, eps float64) Machine {
	const block = 55
	const t = 5
	// Prefactor ~ C(block·locationsPerQubit, t+1); use the paper-level
	// crude counting C(55,6) ≈ 2.9e7 scaled by a per-location constant.
	pref := binom(block, t+1)
	logical := pref * math.Pow(eps, t+1)
	data := block * w.LogicalQubits
	return Machine{
		Name:           "Steane block-55 (ref. 48)",
		PhysicalError:  eps,
		Levels:         0,
		BlockSize:      block,
		DataQubits:     data,
		TotalQubits:    int(math.Ceil(float64(data) * 3.4)),
		AncillaFactor:  3.4,
		AchievedErrorL: logical,
	}
}

func binom(n, k int) float64 {
	r := 1.0
	for i := 0; i < k; i++ {
		r *= float64(n-i) / float64(i+1)
	}
	return r
}

// MeetsBudget reports whether the machine satisfies the workload's gate
// error budget over the whole computation.
func (m Machine) MeetsBudget(w FactoringWorkload) bool {
	return m.AchievedErrorL <= w.TargetGateError
}

// ExpectedFailures is the expected number of logical errors over the full
// computation: Toffoli count × logical error rate.
func (m Machine) ExpectedFailures(w FactoringWorkload) float64 {
	return w.ToffoliGates * m.AchievedErrorL
}

// String renders the machine like the §6 summary sentences.
func (m Machine) String() string {
	return fmt.Sprintf("%s: ε=%.1e, L=%d, block=%d, data qubits=%d, total qubits=%.2g, logical error=%.1e",
		m.Name, m.PhysicalError, m.Levels, m.BlockSize, m.DataQubits, float64(m.TotalQubits), m.AchievedErrorL)
}
