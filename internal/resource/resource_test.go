package resource

import (
	"testing"

	"ftqc/internal/concat"
)

func TestFactoringWorkload432(t *testing.T) {
	// §6: a 432-bit number needs 5·432 = 2160 logical qubits and
	// 38·432³ ≈ 3·10⁹ Toffoli gates.
	w := Factoring(432)
	if w.LogicalQubits != 2160 {
		t.Fatalf("logical qubits %d, want 2160", w.LogicalQubits)
	}
	if w.ToffoliGates < 3.0e9 || w.ToffoliGates > 3.1e9 {
		t.Fatalf("Toffoli count %.3g, want ≈3.06e9", w.ToffoliGates)
	}
}

func TestConcatenatedMachineMatchesPaper(t *testing.T) {
	// §6's design point: ε ~ 1e-6 with 3 levels of concatenation, block
	// 343, total qubits of order 10⁶. The paper's own flow analysis (ref.
	// 23) used a much larger effective A than Eq. 33's 21; A ≈ 1e4 gives
	// 3 levels at 1e-6.
	w := Factoring(432)
	flow := concat.Flow{A: 1e4}
	m, err := SizeConcatenated(w, 1e-6, flow, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Levels != 2 && m.Levels != 3 {
		t.Fatalf("levels = %d, expected 2-3 at ε=1e-6", m.Levels)
	}
	if m.BlockSize > 343 {
		t.Fatalf("block size %d exceeds paper's 343", m.BlockSize)
	}
	if m.TotalQubits < 2e5 || m.TotalQubits > 5e6 {
		t.Fatalf("total qubits %d, want order 10⁶", m.TotalQubits)
	}
	if !m.MeetsBudget(w) {
		t.Fatal("machine must meet the 1e-9 Toffoli budget")
	}
}

func TestAboveThresholdRejected(t *testing.T) {
	w := Factoring(432)
	if _, err := SizeConcatenated(w, 0.2, concat.PaperFlow(), 3); err == nil {
		t.Fatal("sizing must fail above threshold")
	}
}

func TestSteane55Machine(t *testing.T) {
	// Ref. 48: block 55 correcting 5 errors, ~4·10⁵ qubits at ε = 1e-5.
	w := Factoring(432)
	m := SizeSteane55(w, 1e-5)
	if m.BlockSize != 55 {
		t.Fatalf("block %d", m.BlockSize)
	}
	if m.TotalQubits < 3e5 || m.TotalQubits > 5e5 {
		t.Fatalf("total qubits %d, want ≈4·10⁵", m.TotalQubits)
	}
	// At 1e-5 the distance-11 code must beat the 1e-9 budget comfortably.
	if !m.MeetsBudget(w) {
		t.Fatalf("block-55 machine misses budget: %.2e", m.AchievedErrorL)
	}
	// And the whole computation should have ≲ O(1) expected failures.
	if m.ExpectedFailures(w) > 1 {
		t.Fatalf("expected failures %.2g > 1", m.ExpectedFailures(w))
	}
}

func TestBinom(t *testing.T) {
	if binom(7, 2) != 21 {
		t.Fatalf("binom(7,2)=%v", binom(7, 2))
	}
	if binom(55, 6) < 2.8e7 || binom(55, 6) > 3e7 {
		t.Fatalf("binom(55,6)=%v", binom(55, 6))
	}
}
