package extract

import (
	"testing"

	"ftqc/internal/bits"
	"ftqc/internal/frame"
	"ftqc/internal/noise"
	"ftqc/internal/toric"
)

// TestScheduleReadsEveryEdgeTwice: every data edge is read by exactly
// its two adjacent checks in each sector, at distinct steps, and each
// step's check→edge map is injective (the schedule is conflict-free).
func TestScheduleReadsEveryEdgeTwice(t *testing.T) {
	for _, l := range []int{2, 3, 4, 5} {
		lat := toric.Cached(l)
		sch := Sched(l)
		for sector, orders := range [][][4]int{sch.Plaq, sch.Star} {
			reads := make([]int, lat.Qubits())
			for step := 0; step < 4; step++ {
				seen := make(map[int]bool)
				for c := 0; c < lat.NumChecks(); c++ {
					e := orders[c][step]
					if seen[e] {
						t.Fatalf("L=%d sector %d step %d: edge %d read twice in one step", l, sector, step, e)
					}
					seen[e] = true
					reads[e]++
				}
			}
			for e, n := range reads {
				if n != 2 {
					t.Fatalf("L=%d sector %d: edge %d read %d times", l, sector, e, n)
				}
			}
		}
		// The diagonal reader pairs must be the two adjacent checks of the
		// edge (the ends of the edge in the sector's decoding graph).
		for e := 0; e < lat.Qubits(); e++ {
			a, b := lat.Graph().Ends(e)
			pr := sch.DiagX[e]
			if (int(pr[0]) != a || int(pr[1]) != b) && (int(pr[0]) != b || int(pr[1]) != a) {
				t.Fatalf("L=%d edge %d: DiagX %v is not the graph ends (%d,%d)", l, e, pr, a, b)
			}
			a, b = lat.DualGraph().Ends(e)
			pr = sch.DiagZ[e]
			if (int(pr[0]) != a || int(pr[1]) != b) && (int(pr[0]) != b || int(pr[1]) != a) {
				t.Fatalf("L=%d edge %d: DiagZ %v is not the dual ends (%d,%d)", l, e, pr, a, b)
			}
		}
	}
}

// TestZeroNoiseExtractionIsSilent: with every fault channel off, the
// extraction circuit reproduces the noiseless syndrome bit for bit —
// all-zero difference layers, every round, closing layer included.
func TestZeroNoiseExtractionIsSilent(t *testing.T) {
	const lanes = 130
	for _, l := range []int{3, 4} {
		lat := toric.Cached(l)
		src := NewSource(l, noise.Params{}, lanes, frame.NewAggregateSampler(11, 1))
		layerX := bits.NewVecs(lat.NumChecks(), lanes)
		layerZ := bits.NewVecs(lat.NumChecks(), lanes)
		for r := 0; r < 4; r++ {
			src.NextLayers(layerX, layerZ)
			for c := 0; c < lat.NumChecks(); c++ {
				if layerX[c].Any() || layerZ[c].Any() {
					t.Fatalf("L=%d round %d: noiseless circuit emitted a defect at check %d", l, r, c)
				}
			}
		}
		src.CloseLayers(layerX, layerZ)
		for c := 0; c < lat.NumChecks(); c++ {
			if layerX[c].Any() || layerZ[c].Any() {
				t.Fatalf("L=%d closing layer: noiseless circuit emitted a defect at check %d", l, c)
			}
		}
	}
}

// TestInjectedErrorsReadCorrectSyndromes: with faults off, errors
// injected between rounds must appear in the next round's difference
// layers as exactly the ideal lattice syndrome (and only once — the
// difference of two identical observations cancels afterwards). This is
// the "circuit computes the true check operators" equivalence.
func TestInjectedErrorsReadCorrectSyndromes(t *testing.T) {
	const lanes = 64
	l := 4
	lat := toric.Cached(l)
	nc := lat.NumChecks()
	src := NewSource(l, noise.Params{}, lanes, frame.NewAggregateSampler(12, 2))
	layerX := bits.NewVecs(nc, lanes)
	layerZ := bits.NewVecs(nc, lanes)
	src.NextLayers(layerX, layerZ) // settle round 0 (all zero)

	// Different error pattern per lane: lane i gets X on edge i and Z on
	// edge (i+7) mod nq.
	nq := lat.Qubits()
	xerr := make([]bits.Vec, lanes)
	zerr := make([]bits.Vec, lanes)
	for lane := 0; lane < lanes; lane++ {
		xe := lane % nq
		ze := (lane + 7) % nq
		src.Sim().InjectX(xe, lane)
		src.Sim().InjectZ(ze, lane)
		xerr[lane] = bits.NewVec(nq)
		xerr[lane].Flip(xe)
		zerr[lane] = bits.NewVec(nq)
		zerr[lane].Flip(ze)
	}
	src.NextLayers(layerX, layerZ)
	for lane := 0; lane < lanes; lane++ {
		wantX := lat.Syndrome(xerr[lane])
		wantZ := lat.StarSyndrome(zerr[lane])
		gotX, gotZ := laneDefects(layerX, layerZ, lane)
		if !equalInts(gotX, wantX) || !equalInts(gotZ, wantZ) {
			t.Fatalf("lane %d: syndrome X %v (want %v) Z %v (want %v)", lane, gotX, wantX, gotZ, wantZ)
		}
	}
	// The next round re-observes the same syndromes: differences vanish.
	src.NextLayers(layerX, layerZ)
	for c := 0; c < nc; c++ {
		if layerX[c].Any() || layerZ[c].Any() {
			t.Fatalf("check %d: stable error produced a second difference defect", c)
		}
	}
	// The perfect closing layer agrees with the (unchanged) observation.
	src.CloseLayers(layerX, layerZ)
	for c := 0; c < nc; c++ {
		if layerX[c].Any() || layerZ[c].Any() {
			t.Fatalf("check %d: closing layer disagrees with the noiseless observation", c)
		}
	}
}

// laneDefects reads one lane's defect lists out of check-major layers.
func laneDefects(layerX, layerZ []bits.Vec, lane int) (dx, dz []int) {
	for c := range layerX {
		if layerX[c].Get(lane) {
			dx = append(dx, c)
		}
		if layerZ[c].Get(lane) {
			dz = append(dz, c)
		}
	}
	return dx, dz
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestLocationsPerRound pins the ArmTrigger coordinate system: the
// per-lane location counter advances by exactly LocationsPerRound each
// round, independent of the noise parameters.
func TestLocationsPerRound(t *testing.T) {
	for _, l := range []int{2, 3, 4} {
		for _, P := range []noise.Params{{}, noise.Uniform(0.01)} {
			src := NewSource(l, P, 8, frame.NewAggregateSampler(13, 3))
			src.Sim().ArmTrigger(0, -1) // enable per-lane location counting
			nc := toric.Cached(l).NumChecks()
			layerX := bits.NewVecs(nc, 8)
			layerZ := bits.NewVecs(nc, 8)
			src.NextLayers(layerX, layerZ)
			if got := src.Sim().LaneLocationCount(0); got != LocationsPerRound(l) {
				t.Fatalf("L=%d P=%+v: %d locations per round, want %d", l, P, got, LocationsPerRound(l))
			}
			src.NextLayers(layerX, layerZ)
			if got := src.Sim().LaneLocationCount(0); got != 2*LocationsPerRound(l) {
				t.Fatalf("L=%d: %d locations after two rounds", l, got)
			}
		}
	}
}

// TestMeasurementFaultIsVerticalPair: a single measurement flip produces
// the classic vertical defect pair — the same check lit in two
// consecutive difference layers — and nothing else. (The richer fault
// classes are exhausted by the single-fault enumeration in
// fault_test.go.)
func TestMeasurementFaultIsVerticalPair(t *testing.T) {
	const l = 4
	lat := toric.Cached(l)
	nc := lat.NumChecks()
	src := NewSource(l, noise.Params{}, 1, frame.NewAggregateSampler(14, 4))
	sim := src.Sim()
	// Trigger an X flip on the plaquette-0 ancilla right at its
	// measurement location in round 1. Location: round offset + storage
	// (2L²) + prep (L²) + CNOTs (4L²) + 0.
	loc := LocationsPerRound(l) + 2*l*l + 5*l*l
	sim.ArmTrigger(0, loc)
	sim.TriggerFault = func(b *frame.BatchSim, lane int, qubits []int) {
		b.InjectX(qubits[0], lane)
	}
	layerX := bits.NewVecs(nc, 1)
	layerZ := bits.NewVecs(nc, 1)
	rounds := 3
	var layers [][]int
	for r := 0; r < rounds; r++ {
		src.NextLayers(layerX, layerZ)
		dx, dz := laneDefects(layerX, layerZ, 0)
		if len(dz) != 0 {
			t.Fatalf("round %d: measurement fault leaked into the star sector: %v", r, dz)
		}
		layers = append(layers, dx)
	}
	src.CloseLayers(layerX, layerZ)
	dx, _ := laneDefects(layerX, layerZ, 0)
	layers = append(layers, dx)
	want := [][]int{{}, {0}, {0}, {}}
	for r := range layers {
		got := layers[r]
		if len(got) != len(want[r]) || (len(got) == 1 && got[0] != want[r][0]) {
			t.Fatalf("vertical pair mismatch: layers %v, want %v", layers, want)
		}
	}
}
