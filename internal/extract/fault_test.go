package extract_test

// Exhaustive single-fault enumeration — the "every fault is decodable"
// property. One batch run per fault component arms every lane's trigger
// at a different circuit location of one full extraction round (via
// BatchSim.ArmTrigger), so all 14L² locations are covered in six runs:
// the 15 nontrivial Paulis of a two-qubit location decompose into an
// X-part ∈ {X⊗I, I⊗X, X⊗X} and a Z-part ∈ {Z⊗I, I⊗Z, Z⊗Z}, and the two
// sectors decode independently, so the six components cover them all.
//
// For every location and component the test asserts the full chain:
// each sector's defect set has even parity (nothing falls outside the
// volume — no orphan defects, so the diagonal-edge graph can match it),
// and decoding it (union-find and exact, over the diagonal-edge circuit
// volume) yields a correction whose residual against the injected error
// is syndrome-free and homologically trivial — no single circuit fault
// produces a logical error. It also asserts the diagonal defect class
// actually occurs: some mid-round fault must light a {(c₁,t), (c₂,t+1)}
// pair along a schedule diagonal.

import (
	"testing"

	"ftqc/internal/bits"
	"ftqc/internal/extract"
	"ftqc/internal/frame"
	"ftqc/internal/noise"
	"ftqc/internal/spacetime"
	"ftqc/internal/toric"
)

type faultComponent struct {
	name           string
	x0, z0, x1, z1 bool // components on the location's first and second qubit
}

var faultComponents = []faultComponent{
	{"XI", true, false, false, false},
	{"IX", false, false, true, false},
	{"XX", true, false, true, false},
	{"ZI", false, true, false, false},
	{"IZ", false, false, false, true},
	{"ZZ", false, true, false, true},
}

func TestSingleFaultEnumerationDecodes(t *testing.T) {
	for _, l := range []int{4, 5} {
		testSingleFaultEnumeration(t, l)
	}
}

func testSingleFaultEnumeration(t *testing.T, l int) {
	const rounds = 3
	lat := toric.Cached(l)
	nc, nq := lat.NumChecks(), lat.Qubits()
	locs := extract.LocationsPerRound(l)
	wh, wv, wd := spacetime.WeightsCircuit(noise.Uniform(0.004), l, rounds)
	vol := spacetime.CachedCircuitVolume(l, rounds, wh, wv, wd)
	sch := extract.Sched(l)
	diagSeen := 0
	errv := bits.NewVec(nq)
	for _, fc := range faultComponents {
		// All noise channels off: the armed trigger is the only fault.
		src := extract.NewSource(l, noise.Params{}, locs, frame.NewAggregateSampler(21, 1))
		sim := src.Sim()
		for lane := 0; lane < locs; lane++ {
			sim.ArmTrigger(lane, locs+lane) // round 1's location `lane`
		}
		sim.TriggerFault = func(b *frame.BatchSim, lane int, qubits []int) {
			fc := fc
			if fc.x0 {
				b.InjectX(qubits[0], lane)
			}
			if fc.z0 {
				b.InjectZ(qubits[0], lane)
			}
			if len(qubits) > 1 {
				if fc.x1 {
					b.InjectX(qubits[1], lane)
				}
				if fc.z1 {
					b.InjectZ(qubits[1], lane)
				}
			}
		}
		layersX := bits.NewVecs((rounds+1)*nc, locs)
		layersZ := bits.NewVecs((rounds+1)*nc, locs)
		for r := 0; r < rounds; r++ {
			src.NextLayers(layersX[r*nc:(r+1)*nc], layersZ[r*nc:(r+1)*nc])
		}
		src.CloseLayers(layersX[rounds*nc:], layersZ[rounds*nc:])
		synX := bits.NewVecs(locs, (rounds+1)*nc)
		synZ := bits.NewVecs(locs, (rounds+1)*nc)
		bits.TransposePlanes(synX, layersX)
		bits.TransposePlanes(synZ, layersZ)
		cumX, cumZ := src.ErrorPlanes()
		for lane := 0; lane < locs; lane++ {
			dX := synX[lane].Support()
			dZ := synZ[lane].Support()
			if len(dX)%2 != 0 || len(dZ)%2 != 0 {
				t.Fatalf("L=%d %s location %d: odd defect parity (X %v, Z %v)", l, fc.name, lane, dX, dZ)
			}
			diagSeen += countDiagPairs(dX, nc, sch.DiagX) + countDiagPairs(dZ, nc, sch.DiagZ)
			for _, kind := range []toric.DecoderKind{toric.DecoderUnionFind, toric.DecoderExact} {
				corr := vol.Decode(dX, kind, false)
				laneResidual(cumX, lane, corr, errv)
				if len(lat.Syndrome(errv)) != 0 {
					t.Fatalf("L=%d %s location %d: X residual carries syndrome (decoder %d)", l, fc.name, lane, kind)
				}
				if lat.LogicalError(errv) {
					t.Fatalf("L=%d %s location %d: single fault became an X logical (decoder %d, defects %v)",
						l, fc.name, lane, kind, dX)
				}
				corr = vol.Decode(dZ, kind, true)
				laneResidual(cumZ, lane, corr, errv)
				if len(lat.StarSyndrome(errv)) != 0 {
					t.Fatalf("L=%d %s location %d: Z residual carries syndrome (decoder %d)", l, fc.name, lane, kind)
				}
				if lat.LogicalZError(errv) {
					t.Fatalf("L=%d %s location %d: single fault became a Z logical (decoder %d, defects %v)",
						l, fc.name, lane, kind, dZ)
				}
			}
		}
	}
	if diagSeen == 0 {
		t.Fatalf("L=%d: no single fault produced a diagonal defect pair — the edge class is untested", l)
	}
}

// laneResidual fills errv with lane's accumulated error XOR the decoded
// correction.
func laneResidual(planes []bits.Vec, lane int, corr, errv bits.Vec) {
	errv.Clear()
	for e := range planes {
		if planes[e].Get(lane) {
			errv.Flip(e)
		}
	}
	errv.Xor(corr)
}

// countDiagPairs reports whether a two-defect set is a diagonal pair of
// the schedule: consecutive layers, distinct checks, matching some data
// edge's {late, early} readers.
func countDiagPairs(defects []int, nc int, diag [][2]int32) int {
	if len(defects) != 2 {
		return 0
	}
	a, b := defects[0], defects[1]
	if b/nc-a/nc != 1 || a%nc == b%nc {
		return 0
	}
	for _, pr := range diag {
		if int(pr[0]) == a%nc && int(pr[1]) == b%nc {
			return 1
		}
	}
	return 0
}
