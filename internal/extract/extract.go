// Package extract implements circuit-level syndrome extraction for the
// toric code on the batch frame engine: one ancilla per plaquette and
// per star, prepared, coupled to its four data qubits by CNOTs in a
// fixed global schedule, and measured — with stochastic faults at every
// circuit location (preparation, CNOT, measurement, idle storage), the
// error model behind realistic threshold estimates (Steane
// quant-ph/9809054; Gottesman arXiv:2210.15844 §"noise models").
//
// The phenomenological model of internal/spacetime flips each data
// qubit and each measurement independently per round. The circuit model
// is strictly richer:
//
//   - A CNOT fault can damage the data qubit *between* the two adjacent
//     checks' reads of it, so one check sees the error this round and
//     the other only next round — a correlated "diagonal" space-time
//     defect pair that the decoding graph must carry as its own edge
//     class (see the Schedule's early/late reader tables).
//   - A fault on the ancilla mid-chain propagates through the remaining
//     CNOTs onto several data qubits at once ("hook" errors): Z hooks
//     from plaquette extraction land in the star sector, X hooks from
//     star extraction in the plaquette sector.
//   - Preparation and measurement faults reproduce the phenomenological
//     measurement-flip channel exactly (a vertical defect pair).
//
// A Source satisfies the same layer-source contract as
// spacetime.LayerSource (NextLayers / CloseLayers / Windings), so the
// whole-volume batch decode and the streaming sliding-window pipeline
// drain it unchanged; only the decoding graph differs (diagonal edges,
// circuit-derived weights — built by internal/spacetime from this
// package's Schedule).
package extract

import (
	"sync"

	"ftqc/internal/bits"
	"ftqc/internal/frame"
	"ftqc/internal/noise"
	"ftqc/internal/toric"
)

// Schedule is the fixed CNOT ordering of one extraction round on an L×L
// toric lattice. Each check couples to its four data edges over four
// global steps (every plaquette runs its k-th CNOT in step k, then every
// star — the step-major order is conflict-free because each step's
// check→edge map is injective). The ordering determines which of a data
// edge's two readers sees a mid-round error first, and therefore the
// orientation of the diagonal space-time edges:
//
//	plaquette (x,y): h(x,y), v(x,y), v(x+1,y), h(x,y+1)
//	star      (x,y): h(x,y), v(x,y), v(x,y−1), h(x−1,y)
//
// DiagX[e] and DiagZ[e] list the {late, early} reader checks of data
// edge e in the plaquette and star sectors: an error on e created after
// the early read is seen by the late reader this round and by the early
// reader next round — the diagonal edge (late, t)—(early, t+1).
type Schedule struct {
	L     int
	Plaq  [][4]int   // data-edge CNOT order per plaquette
	Star  [][4]int   // data-edge CNOT order per star
	DiagX [][2]int32 // per data edge: {late, early} plaquette readers
	DiagZ [][2]int32 // per data edge: {late, early} star readers
}

// schedCache memoizes schedules per lattice size (immutable after build).
var schedCache sync.Map // int → *Schedule

// planCache memoizes the compiled per-round fault plan per lattice size
// (immutable after build, shared by every Source of that size).
var planCache sync.Map // int → *frame.RoundPlan

// Sched returns the memoized extraction schedule for an L×L lattice.
// The orders and reader pairs come from the lattice's
// surface.Code-contract ExtractionSchedule — one source of truth for
// every pipeline — wrapped with the lattice size for the existing
// call sites.
func Sched(l int) *Schedule {
	if v, ok := schedCache.Load(l); ok {
		return v.(*Schedule)
	}
	cs := toric.Cached(l).ExtractionSchedule()
	s := &Schedule{L: l, Plaq: cs.Plaq, Star: cs.Star, DiagX: cs.DiagX, DiagZ: cs.DiagZ}
	v, _ := schedCache.LoadOrStore(l, s)
	return v.(*Schedule)
}

// Source runs the circuit-level extraction round by round for a batch of
// lanes and emits difference-syndrome layers — the same contract as the
// phenomenological spacetime.LayerSource, so either model can feed the
// whole-volume and streaming decoders. Qubit layout on the simulator:
// data edges 0…2L²−1 (lattice edge ids), plaquette ancilla 2L²+c, star
// ancilla 2L²+L²+c.
type Source struct {
	lat    *toric.Lattice
	sch    *Schedule
	sim    *frame.BatchSim
	lanes  int
	rounds int
	diff   *toric.SyndromeDiff // check-major observed-syndrome generations

	// plan is the round's fault-location program compiled once per
	// lattice size; NextLayers executes it fused (one geometric sampler
	// stream per block) when the simulator is eligible and falls back to
	// the generic gate loop otherwise — both paths are bit-identical.
	plan    *frame.RoundPlan
	measBuf []bits.Vec // reused curX‖curZ slot table for the fused round
	noFuse  bool       // test hook: force the generic gate loop
}

// NewSource returns a circuit-level source over the L×L lattice for
// `lanes` parallel shots under the per-location noise model P, drawing
// from smp. Plain sources do not harvest leakage: P.Leak > 0 panics
// (never a silent zeroing) — construct with NewSourceErased and drain
// with NextLayersErased instead.
func NewSource(l int, P noise.Params, lanes int, smp frame.Sampler) *Source {
	if P.Leak != 0 {
		panic("extract: P.Leak > 0 needs the erasure-harvesting source (NewSourceErased + NextLayersErased)")
	}
	return NewSourceErased(l, P, lanes, smp)
}

// NewSourceErased returns a circuit-level source that models leakage:
// every gate carries its P.Leak channel, a leaked data qubit is swapped
// for a fresh (randomized) one at the start of the next round, and
// NextLayersErased reports every leak as a located fault — the erasure
// planes the decoder seeds its peeling with.
func NewSourceErased(l int, P noise.Params, lanes int, smp frame.Sampler) *Source {
	lat := toric.Cached(l)
	nc := lat.NumChecks()
	return &Source{
		lat:   lat,
		sch:   Sched(l),
		sim:   frame.NewBatch(lat.Qubits()+2*nc, lanes, P, smp),
		lanes: lanes,
		diff:  toric.NewSyndromeDiff(nc, lanes),
		plan:  roundPlan(l),
	}
}

// roundPlan returns the memoized fused-round program for an L×L
// lattice: the exact location sequence of NextLayers (storage over all
// data edges, then per sector prep / four CNOT steps / measurement)
// with plaquette measurements in slots 0…nc−1 and star measurements in
// slots nc…2nc−1.
func roundPlan(l int) *frame.RoundPlan {
	if v, ok := planCache.Load(l); ok {
		return v.(*frame.RoundPlan)
	}
	lat := toric.Cached(l)
	sch := Sched(l)
	nq, nc := lat.Qubits(), lat.NumChecks()
	pl := frame.NewRoundPlan()
	qs := make([]int32, nq)
	for e := range qs {
		qs[e] = int32(e)
	}
	pl.Storage(qs)
	ancP := make([]int32, nc)
	ancS := make([]int32, nc)
	slotX := make([]int32, nc)
	slotZ := make([]int32, nc)
	for c := 0; c < nc; c++ {
		ancP[c] = int32(nq + c)
		ancS[c] = int32(nq + nc + c)
		slotX[c] = int32(c)
		slotZ[c] = int32(nc + c)
	}
	pl.PrepZ(ancP)
	step := make([]int32, nc)
	for k := 0; k < 4; k++ {
		for c := 0; c < nc; c++ {
			step[c] = int32(sch.Plaq[c][k])
		}
		pl.CNOTStep(step, ancP)
	}
	pl.MeasZ(ancP, slotX)
	pl.PrepX(ancS)
	for k := 0; k < 4; k++ {
		for c := 0; c < nc; c++ {
			step[c] = int32(sch.Star[c][k])
		}
		pl.CNOTStep(ancS, step)
	}
	pl.MeasX(ancS, slotZ)
	if pl.Locations() != LocationsPerRound(l) {
		panic("extract: round plan location count mismatch")
	}
	v, _ := planCache.LoadOrStore(l, pl)
	return v.(*frame.RoundPlan)
}

// L returns the lattice size the source extracts on.
func (s *Source) L() int { return s.lat.L }

// Lanes returns the batch width.
func (s *Source) Lanes() int { return s.lanes }

// Rounds returns how many noisy rounds have been emitted.
func (s *Source) Rounds() int { return s.rounds }

// Sim exposes the underlying batch simulator for fault-injection
// harnesses (ArmTrigger single-fault enumeration, InjectX/InjectZ).
func (s *Source) Sim() *frame.BatchSim { return s.sim }

// Schedule returns the source's (immutable) extraction schedule.
func (s *Source) Schedule() *Schedule { return s.sch }

func (s *Source) ancP(c int) int { return s.lat.Qubits() + c }
func (s *Source) ancS(c int) int { return s.lat.Qubits() + s.lat.NumChecks() + c }

// NextLayers runs one full extraction round — idle storage on the data
// qubits, then the plaquette sector (PrepZ, four CNOT steps with data as
// control, MeasZ), then the star sector (PrepX, four CNOT steps with the
// ancilla as control, MeasX) — and writes the round's difference-
// syndrome layers into layerX and layerZ (check-major, NumChecks
// vectors each). Every gate carries its noise.Params fault channel, so
// any experiment built on a source is a pure function of the sampler
// stream.
func (s *Source) NextLayers(layerX, layerZ []bits.Vec) {
	if s.sim.P.Leak > 0 {
		panic("extract: NextLayers with P.Leak > 0 — drain an erasure source with NextLayersErased")
	}
	if s.plan == nil || s.noFuse || !s.fusedRound() {
		s.genericRound()
	}
	s.diff.Emit(layerX, layerZ)
	s.rounds++
}

// genericRound executes one extraction round through the per-gate batch
// API (the non-fused path; bit-identical to the fused plan on the same
// sampler state — see frame.RunRound).
func (s *Source) genericRound() {
	nq, nc := s.lat.Qubits(), s.lat.NumChecks()
	// The idle window (ancilla prep/measure time): one storage step per
	// data qubit per round, before any read — a same-round ("horizontal")
	// error for both sectors. Called unconditionally so the location
	// numbering the fault-injection harnesses script against does not
	// depend on whether P.Storage is zero.
	for e := 0; e < nq; e++ {
		s.sim.Storage(e)
	}
	// Plaquette (Z-check) sector: data X errors propagate control→target
	// into the ancilla; MeasZ reads the accumulated X frame. A Z fault on
	// the ancilla mid-chain hooks back onto the remaining data controls.
	curX := s.diff.CurX()
	for c := 0; c < nc; c++ {
		s.sim.PrepZ(s.ancP(c))
	}
	for step := 0; step < 4; step++ {
		for c := 0; c < nc; c++ {
			s.sim.CNOT(s.sch.Plaq[c][step], s.ancP(c))
		}
	}
	for c := 0; c < nc; c++ {
		s.sim.MeasZInto(s.ancP(c), curX[c])
	}
	// Star (X-check) sector: data Z errors propagate target→control into
	// the ancilla; MeasX reads the accumulated Z frame. An X fault on the
	// ancilla mid-chain hooks forward onto the remaining data targets.
	curZ := s.diff.CurZ()
	for c := 0; c < nc; c++ {
		s.sim.PrepX(s.ancS(c))
	}
	for step := 0; step < 4; step++ {
		for c := 0; c < nc; c++ {
			s.sim.CNOT(s.ancS(c), s.sch.Star[c][step])
		}
	}
	for c := 0; c < nc; c++ {
		s.sim.MeasXInto(s.ancS(c), curZ[c])
	}
}

// NextLayersErased is NextLayers for a leakage-modeling source: it runs
// the same extraction round (generic path — the fused plan declines
// leakage) and additionally harvests every leak as a located fault.
//
// Draw order per round, fixed so whole-volume and streaming drains of
// two equally-seeded sources stay bit-identical: (1) per data edge in
// index order, the still-leaked lanes are recorded into eraH[e] and the
// qubit is replaced by a fresh randomized one (ReplaceLeaked — two Coin
// draws on non-empty masks only); (2) the generic round body; (3) no
// further draws — round-end bookkeeping only reads planes.
//
// On return, eraH[e] marks the lanes whose data edge e is erased this
// layer (leaked at the start of the round — the replacement Pauli's
// syndrome lands here — or leaked mid-round, where the two readers may
// disagree), lostX[c]/lostZ[c] mark the lanes whose plaquette/star
// ancilla was leaked at its measurement (the outcome was a coin — a
// located vertical fault). The caller mirrors eraH onto the diagonal
// edge class when the decoding graph carries one.
func (s *Source) NextLayersErased(layerX, layerZ, eraH, lostX, lostZ []bits.Vec) {
	nq, nc := s.lat.Qubits(), s.lat.NumChecks()
	lk := s.sim.PlanesLeak(nq + 2*nc)
	for e := 0; e < nq; e++ {
		eraH[e].CopyFrom(lk[e])
		s.sim.ReplaceLeaked(e, eraH[e])
	}
	s.genericRound()
	for e := 0; e < nq; e++ {
		eraH[e].Or(lk[e])
	}
	for c := 0; c < nc; c++ {
		lostX[c].CopyFrom(lk[s.ancP(c)])
		lostZ[c].CopyFrom(lk[s.ancS(c)])
	}
	s.diff.Emit(layerX, layerZ)
	s.rounds++
}

// fusedRound executes one extraction round through the compiled plan.
// It reports false (without consuming any randomness) when the
// simulator declines the fused path — a lockstep sampler, an armed
// trigger harness or a narrowed active mask — so NextLayers replays the
// identical location sequence through the generic gate loop.
func (s *Source) fusedRound() bool {
	s.measBuf = append(append(s.measBuf[:0], s.diff.CurX()...), s.diff.CurZ()...)
	return s.sim.RunRound(s.plan, s.measBuf)
}

// CloseLayers writes the closing perfect round's difference layers: the
// true syndromes of the accumulated data-qubit errors, computed directly
// from the simulator's frame planes — no circuit, no faults.
func (s *Source) CloseLayers(layerX, layerZ []bits.Vec) {
	nq := s.lat.Qubits()
	s.lat.PlaquetteSyndromePlanes(s.sim.PlanesX(nq), s.diff.CurX())
	s.lat.StarSyndromePlanes(s.sim.PlanesZ(nq), s.diff.CurZ())
	s.diff.Emit(layerX, layerZ)
}

// Windings fills the winding parities of the accumulated data-error
// chains: the primal pair for the X sector, the dual pair for the Z
// sector (residual ancilla frames are irrelevant — ancillas are
// re-prepared every round).
func (s *Source) Windings(pX1, pX2, pZ1, pZ2 bits.Vec) {
	nq := s.lat.Qubits()
	s.lat.WindingPlanes(s.sim.PlanesX(nq), pX1, pX2)
	s.lat.WindingPlanesDual(s.sim.PlanesZ(nq), pZ1, pZ2)
}

// ErrorPlanes returns the live accumulated data-error planes of the two
// sectors (edge-major, one vector per qubit edge). Read-only views for
// validation harnesses — callers must not modify them.
func (s *Source) ErrorPlanes() (x, z []bits.Vec) {
	nq := s.lat.Qubits()
	return s.sim.PlanesX(nq), s.sim.PlanesZ(nq)
}

// LocationsPerRound returns the number of fault locations one extraction
// round executes (the ArmTrigger coordinate system of the single-fault
// enumeration): 2L² storage + 2 sectors × (prep + 4 CNOTs + meas) per
// check.
func LocationsPerRound(l int) int { return 2*l*l + 12*l*l }
