package extract

import (
	"testing"

	"ftqc/internal/bits"
	"ftqc/internal/frame"
	"ftqc/internal/noise"
)

// TestFusedRoundBitIdentical pins the fused-plan executor to the
// generic gate loop: two sources over identical aggregate-sampler
// streams — one forced through the unfused path — must emit identical
// difference layers every round, finish with identical error planes,
// windings, fault counts and location counts. Covered shapes include a
// non-word-multiple lane count (tail-word handling) and distinct
// per-location probabilities (carry reset between blocks).
func TestFusedRoundBitIdentical(t *testing.T) {
	cases := []struct {
		name  string
		l     int
		lanes int
		P     noise.Params
	}{
		{"uniform/L=4", 4, 64, noise.Uniform(0.01)},
		{"uniform/L=6/lanes=100", 6, 100, noise.Uniform(0.003)},
		{"distinct-p/L=5/lanes=37", 5, 37,
			noise.Params{Gate1: 0.002, Gate2: 0.01, Prep: 0.02, Meas: 0.005, Storage: 0.03}},
		{"hot/L=4", 4, 64, noise.Uniform(0.2)},
		{"certain-prep/L=4", 4, 64,
			noise.Params{Gate2: 0.01, Prep: 1, Meas: 0.01, Storage: 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const seed, rounds = 11, 12
			fused := NewSource(tc.l, tc.P, tc.lanes, frame.NewAggregateSampler(seed, 1))
			plain := NewSource(tc.l, tc.P, tc.lanes, frame.NewAggregateSampler(seed, 1))
			plain.noFuse = true
			nc := fused.lat.NumChecks()
			fX := bits.NewVecs(nc, tc.lanes)
			fZ := bits.NewVecs(nc, tc.lanes)
			pX := bits.NewVecs(nc, tc.lanes)
			pZ := bits.NewVecs(nc, tc.lanes)
			check := func(r int) {
				t.Helper()
				for c := 0; c < nc; c++ {
					if !fX[c].Equal(pX[c]) || !fZ[c].Equal(pZ[c]) {
						t.Fatalf("round %d: layer mismatch at check %d", r, c)
					}
				}
			}
			for r := 0; r < rounds; r++ {
				fused.NextLayers(fX, fZ)
				plain.NextLayers(pX, pZ)
				check(r)
			}
			fused.CloseLayers(fX, fZ)
			plain.CloseLayers(pX, pZ)
			check(rounds)
			ex, ez := fused.ErrorPlanes()
			px, pz := plain.ErrorPlanes()
			for q := range ex {
				if !ex[q].Equal(px[q]) || !ez[q].Equal(pz[q]) {
					t.Fatalf("error plane mismatch at qubit %d", q)
				}
			}
			w1 := bits.NewVecs(4, tc.lanes)
			w2 := bits.NewVecs(4, tc.lanes)
			fused.Windings(w1[0], w1[1], w1[2], w1[3])
			plain.Windings(w2[0], w2[1], w2[2], w2[3])
			for i := range w1 {
				if !w1[i].Equal(w2[i]) {
					t.Fatalf("winding plane %d mismatch", i)
				}
			}
			if fused.sim.FaultCount != plain.sim.FaultCount {
				t.Fatalf("FaultCount: fused=%d plain=%d", fused.sim.FaultCount, plain.sim.FaultCount)
			}
			if fused.sim.LocationCount != plain.sim.LocationCount {
				t.Fatalf("LocationCount: fused=%d plain=%d", fused.sim.LocationCount, plain.sim.LocationCount)
			}
			if fused.sim.FaultCount == 0 {
				t.Fatal("degenerate case: no faults injected")
			}
		})
	}
}

// TestFusedRoundFallbacks pins the eligibility gate: a lockstep sampler
// and an armed trigger harness must decline the fused path (identical
// behavior to PR 8 is covered by the existing extraction suites; here
// we only assert the gate itself so those suites keep exercising the
// generic loop).
func TestFusedRoundFallbacks(t *testing.T) {
	const l, lanes = 4, 8
	P := noise.Uniform(0.01)
	s := NewSource(l, P, lanes, frame.NewLockstepSampler(3, lanes))
	if s.fusedRound() {
		t.Fatal("fused path accepted a lockstep sampler")
	}
	s2 := NewSource(l, P, lanes, frame.NewAggregateSampler(3, 0))
	s2.Sim().ArmTrigger(0, 5)
	if s2.fusedRound() {
		t.Fatal("fused path accepted an armed trigger harness")
	}
	nc := s2.lat.NumChecks()
	lX := bits.NewVecs(nc, lanes)
	lZ := bits.NewVecs(nc, lanes)
	s2.NextLayers(lX, lZ) // must route through the generic loop and count locations
	if got := s2.Sim().LocationCount; got != LocationsPerRound(l) {
		t.Fatalf("generic fallback LocationCount = %d, want %d", got, LocationsPerRound(l))
	}
}
