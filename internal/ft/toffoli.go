package ft

import (
	"math/rand/v2"

	"ftqc/internal/statevec"
)

// This file implements the logical-level semantics of Shor's
// fault-tolerant Toffoli construction (Preskill §4.1, Figs. 12–13) on the
// dense simulator. The construction is verified unencoded: every gate in
// the encoded version is transversal (or a cat-state-controlled bitwise
// gate), so the unencoded circuit run here is gate-for-gate the logical
// action of the encoded gadget.
//
// Stage 1 prepares |A⟩ = ½ Σ_{a,b} |a, b, ab⟩ (Eq. 23) by measuring the
// observable (−1)^{ab+c} on the uniform superposition (Eqs. 24–25) and
// applying NOT₃ on the −1 outcome. Stage 2 (Eq. 27) consumes the ancilla:
// three XORs, a Hadamard, three measurements and conditional Pauli/CNOT/CZ
// repairs leave the ancilla trio carrying |x, y, z ⊕ xy⟩.

// PrepareToffoliAncilla prepares |A⟩ on qubits (a0,a1,a2), implementing
// the Fig. 12 measurement with control qubit ctl (the unencoded stand-in
// for the verified 7-bit cat state). It returns the measurement outcome
// (true means |B⟩ was observed and NOT₃ applied, Eq. 25).
func PrepareToffoliAncilla(s *statevec.State, a0, a1, a2, ctl int, rng *rand.Rand) bool {
	s.H(a0)
	s.H(a1)
	s.H(a2)
	// Fig. 12: H on the control, controlled-Z_AB = (−1)^{x(ab+c)} =
	// CCZ(ctl,a0,a1)·CZ(ctl,a2), H again, then measure.
	s.H(ctl)
	s.CCZ(ctl, a0, a1)
	s.CZ(ctl, a2)
	s.H(ctl)
	out := s.MeasureZ(ctl, rng)
	if out {
		s.X(a2)
	}
	return out
}

// ToffoliOutcomes records the classical bits produced by the gadget.
type ToffoliOutcomes struct {
	Prep       bool // ancilla preparation measurement
	MX, MY, MW bool // the three data-block measurements of Fig. 13
}

// ToffoliViaGadget applies Shor's measurement-based Toffoli to data
// qubits (x, y, z), consuming the ancilla trio (a0,a1,a2) and the cat
// stand-in ctl. The data qubits are destroyed by measurement and the
// ancilla qubits become the new data (§4.1), so the logical output lives
// on (a0, a1, a2) afterwards.
func ToffoliViaGadget(s *statevec.State, x, y, z, a0, a1, a2, ctl int, rng *rand.Rand) ToffoliOutcomes {
	var out ToffoliOutcomes
	out.Prep = PrepareToffoliAncilla(s, a0, a1, a2, ctl, rng)
	// Eq. 27: XOR ancilla into data, XOR z into the product bit, rotate z.
	s.CNOT(a0, x)
	s.CNOT(a1, y)
	s.CNOT(z, a2)
	s.H(z)
	out.MX = s.MeasureZ(x, rng)
	out.MY = s.MeasureZ(y, rng)
	out.MW = s.MeasureZ(z, rng)
	// Conditional repairs (Fig. 13). With u = MX, v = MY, the post-
	// measurement ancilla holds |x⊕u, y⊕v, (x⊕u)(y⊕v)⊕z⟩ with a phase
	// (−1)^{wz} when w = MW = 1. The product bit needs C += v·A ⊕ u·B ⊕ uv
	// in the original coordinates.
	if out.MX {
		s.X(a0)
		s.CNOT(a1, a2) // adds u·B (a1 not yet flipped)
	}
	if out.MY {
		s.X(a1)
		s.CNOT(a0, a2) // adds v·(A⊕u) = v·A ⊕ uv
	}
	if out.MW {
		// (−1)^z with z = C′ ⊕ A′B′ in the repaired coordinates.
		s.Z(a2)
		s.CZ(a0, a1)
	}
	return out
}

// ToffoliGadgetFidelity runs the gadget on a product input state
// parameterized by three rotation angles and returns its fidelity against
// a directly applied Toffoli. A correct gadget yields 1 up to floating
// point for every input and every random measurement record (E16).
func ToffoliGadgetFidelity(rng *rand.Rand, thetas [3]float64) float64 {
	// Wires: data 0,1,2; ancilla 3,4,5; control 6.
	s := statevec.NewZero(7)
	in := statevec.NewZero(3)
	for q := 0; q < 3; q++ {
		s.RotX(q, thetas[q])
		s.RotZ(q, thetas[q]*0.7)
		in.RotX(q, thetas[q])
		in.RotZ(q, thetas[q]*0.7)
	}
	want := in // 3-qubit reference
	want.Toffoli(0, 1, 2)
	rec := ToffoliViaGadget(s, 0, 1, 2, 3, 4, 5, 6, rng)
	// The measured wires are in definite computational states, so the
	// output on wires 3–5 can be read off directly at the measured
	// pattern.
	junk := 0
	if rec.MX {
		junk |= 1 << 0
	}
	if rec.MY {
		junk |= 1 << 1
	}
	if rec.MW {
		junk |= 1 << 2
	}
	if rec.Prep {
		junk |= 1 << 6
	}
	var num complex128
	var norm float64
	for t := 0; t < 8; t++ {
		idx := junk | (t&1)<<3 | (t>>1&1)<<4 | (t>>2&1)<<5
		amp := s.Amplitude(idx)
		w := want.Amplitude(t)
		num += complex(real(w), -imag(w)) * amp
		norm += real(amp)*real(amp) + imag(amp)*imag(amp)
	}
	if norm == 0 {
		return 0
	}
	return (real(num)*real(num) + imag(num)*imag(num)) / norm
}
