package ft

// Batched gadget drivers: every function here is the bit-parallel twin of
// a scalar gadget in ec.go/ancilla.go/steane.go, replaying exactly the
// same operation sequence on a frame.BatchSim. Data-dependent control
// flow (verification retries, syndrome repetition) becomes masked
// execution: the lanes that take a branch are pushed as the active mask
// and the branch's ops replayed for them alone. Under a lockstep sampler
// the batch drivers are therefore bit-identical, lane by lane, to the
// scalar gadgets — the equivalence suite in batch_test.go enforces this.

import (
	"ftqc/internal/bits"
	"ftqc/internal/frame"
)

// steaneCols[i] is qubit i's column of the Eq. (15) parity check: the
// 3-bit syndrome that names qubit i as the flipped bit. The Hamming code
// is perfect, so the 7 columns enumerate all nonzero syndromes and the
// classical decoder's coset leader for any nonzero syndrome is exactly
// one qubit.
var steaneCols = func() [BlockSize]uint8 {
	var cols [BlockSize]uint8
	for j := 0; j < 3; j++ {
		row := bits.MustFromString(parityH15[j])
		for i := 0; i < BlockSize; i++ {
			if row.Get(i) {
				cols[i] |= 1 << uint(j)
			}
		}
	}
	return cols
}()

// chargeIdleBatch is the batched chargeIdle.
func chargeIdleBatch(b *frame.BatchSim, data []int, cfg Config) {
	if !cfg.ChargeIdle {
		return
	}
	for _, q := range data {
		b.Storage(q)
	}
}

// prepZeroDirectBatch drives the Fig. 3 encoder (|0⟩ input) on all active
// lanes.
func prepZeroDirectBatch(b *frame.BatchSim, block []int) {
	mustBlock(block)
	for _, q := range block {
		b.PrepZ(q)
	}
	for j := 0; j < 3; j++ {
		b.H(block[j])
	}
	for j := 0; j < 3; j++ {
		row := bits.MustFromString(parityH15[j])
		for k := 3; k < 7; k++ {
			if row.Get(k) {
				b.CNOT(block[j], block[k])
			}
		}
	}
}

// hammingSyndromePlanes converts 7 measurement planes into the 3 Hamming
// syndrome planes (H · flips, one XOR chain per parity row).
func hammingSyndromePlanes(b *frame.BatchSim, flips *[BlockSize]bits.Vec) [3]bits.Vec {
	var syn [3]bits.Vec
	for j, sup := range stabilizerSupports() {
		s := bits.NewVec(b.Lanes())
		for _, i := range sup {
			s.Xor(flips[i])
		}
		syn[j] = s
	}
	return syn
}

// synAny ors the three syndrome planes: the lanes with a nontrivial
// syndrome.
func synAny(syn [3]bits.Vec) bits.Vec {
	nz := syn[0].Clone()
	nz.Or(syn[1])
	nz.Or(syn[2])
	return nz
}

// measureLogicalZBatch performs the destructive logical measurement on
// every active lane: measure the block, Hamming-correct classically,
// return the codeword-parity plane. The classical correction of a nonzero
// syndrome flips exactly one bit (perfect code), so the corrected parity
// is the raw parity XOR the nonzero-syndrome mask.
func measureLogicalZBatch(b *frame.BatchSim, block []int) bits.Vec {
	mustBlock(block)
	var flips [BlockSize]bits.Vec
	for i, q := range block {
		flips[i] = b.MeasZ(q)
	}
	syn := hammingSyndromePlanes(b, &flips)
	out := bits.NewVec(b.Lanes())
	for i := range flips {
		out.Xor(flips[i])
	}
	out.Xor(synAny(syn))
	return out
}

// LogicalCNOTBatch applies the transversal XOR between two blocks.
func LogicalCNOTBatch(b *frame.BatchSim, src, dst []int) {
	mustBlock(src)
	mustBlock(dst)
	for i := range src {
		b.CNOT(src[i], dst[i])
	}
}

// verifyZeroRoundBatch performs one §3.3 verification round; the returned
// plane marks the lanes whose round votes "faulty" (logical |1̄⟩ readout).
func verifyZeroRoundBatch(b *frame.BatchSim, anc, chk []int) bits.Vec {
	prepZeroDirectBatch(b, chk)
	LogicalCNOTBatch(b, anc, chk)
	return measureLogicalZBatch(b, chk)
}

// PrepVerifiedZeroBatch prepares a verified |0̄⟩ on anc on every active
// lane (the batched PrepVerifiedZero): two verification rounds per
// attempt; lanes voting faulty twice get the transversal flip repair (or,
// under DiscardSteaneAncilla, rebuild from scratch while attempts
// remain).
func PrepVerifiedZeroBatch(b *frame.BatchSim, anc, chk []int, cfg Config) {
	pending := b.Active()
	for attempts := 1; ; attempts++ {
		b.PushActive(pending)
		prepZeroDirectBatch(b, anc)
		r1 := verifyZeroRoundBatch(b, anc, chk)
		r2 := verifyZeroRoundBatch(b, anc, chk)
		b.PopActive()
		both := r1
		both.And(r2)
		both.And(pending)
		if cfg.DiscardSteaneAncilla && attempts < cfg.MaxPrepAttempts {
			pending = both
			if pending.Zero() {
				return
			}
			continue
		}
		if both.Any() {
			// Flip-to-fix: transversal X with gate noise on the
			// double-|1̄⟩ lanes only.
			b.PushActive(both)
			for _, q := range anc {
				b.PauliGate(q)
				b.FrameX(q)
			}
			b.PopActive()
		}
		return
	}
}

// PrepVerifiedCatBatch prepares the verified 4-qubit cat state of Fig. 8
// on every active lane, retrying failed lanes up to cfg.MaxPrepAttempts.
func PrepVerifiedCatBatch(b *frame.BatchSim, cat []int, ver int, cfg Config) {
	if len(cat) != 4 {
		panic("ft: cat state needs 4 wires")
	}
	pending := b.Active()
	for attempts := 1; ; attempts++ {
		b.PushActive(pending)
		for _, q := range cat {
			b.PrepZ(q)
		}
		b.H(cat[0])
		b.CNOT(cat[0], cat[1])
		b.CNOT(cat[1], cat[2])
		b.CNOT(cat[2], cat[3])
		b.PrepZ(ver)
		b.CNOT(cat[0], ver)
		b.CNOT(cat[3], ver)
		fail := b.MeasZ(ver)
		b.PopActive()
		pending.And(fail)
		if pending.Zero() || attempts >= cfg.MaxPrepAttempts {
			return
		}
	}
}

// measureBitSyndromeSteaneBatch extracts the bit-flip syndrome planes on
// every active lane (batched measureBitSyndromeSteane).
func measureBitSyndromeSteaneBatch(b *frame.BatchSim, data, anc, chk []int, cfg Config) [3]bits.Vec {
	PrepVerifiedZeroBatch(b, anc, chk, cfg)
	chargeIdleBatch(b, data, cfg)
	for _, q := range anc {
		b.H(q)
	}
	for i := range data {
		b.CNOT(data[i], anc[i])
	}
	var flips [BlockSize]bits.Vec
	for i, q := range anc {
		flips[i] = b.MeasZ(q)
	}
	return hammingSyndromePlanes(b, &flips)
}

// measurePhaseSyndromeSteaneBatch extracts the phase-flip syndrome planes.
func measurePhaseSyndromeSteaneBatch(b *frame.BatchSim, data, anc, chk []int, cfg Config) [3]bits.Vec {
	PrepVerifiedZeroBatch(b, anc, chk, cfg)
	chargeIdleBatch(b, data, cfg)
	for i := range data {
		b.CNOT(anc[i], data[i])
	}
	var flips [BlockSize]bits.Vec
	for i, q := range anc {
		flips[i] = b.MeasX(q)
	}
	return hammingSyndromePlanes(b, &flips)
}

// resolveSyndromeBatch applies the §3.4 verification policy per lane,
// remeasuring (via the masked measure callback) only the lanes the scalar
// policy would remeasure, and returns the syndrome planes to act on.
func resolveSyndromeBatch(b *frame.BatchSim, measure func() [3]bits.Vec, cfg Config) [3]bits.Vec {
	s1 := measure()
	switch cfg.Policy {
	case PolicyOnce:
		return s1
	case PolicyRepeatNontrivial:
		nz := synAny(s1)
		if nz.Zero() {
			return s1
		}
		b.PushActive(nz)
		s2 := measure()
		b.PopActive()
		// Keep a lane's syndrome only where the two readings agree;
		// disagreeing lanes do nothing this round.
		diff := bits.NewVec(b.Lanes())
		for j := 0; j < 3; j++ {
			d := s1[j].Clone()
			d.Xor(s2[j])
			diff.Or(d)
		}
		agree := nz
		agree.AndNot(diff)
		for j := 0; j < 3; j++ {
			s1[j].And(agree)
		}
		return s1
	case PolicyUntilAgree:
		var res [3]bits.Vec
		for j := range res {
			res[j] = bits.NewVec(b.Lanes())
		}
		prev := s1
		pending := synAny(prev) // zero-syndrome lanes exit with 0
		for round := 0; round < 4 && pending.Any(); round++ {
			b.PushActive(pending)
			next := measure()
			b.PopActive()
			diff := bits.NewVec(b.Lanes())
			for j := 0; j < 3; j++ {
				d := prev[j].Clone()
				d.Xor(next[j])
				diff.Or(d)
			}
			agree := pending.Clone()
			agree.AndNot(diff)
			for j := 0; j < 3; j++ {
				keep := prev[j].Clone()
				keep.And(agree)
				res[j].Or(keep)
			}
			pending.AndNot(agree)
			// Lanes whose fresh reading is trivial exit next round with
			// "do nothing" (their prev is zero) — drop them now.
			nzNext := synAny(next)
			pending.And(nzNext)
			prev = next
		}
		return res // lanes still pending after 4 rounds: do nothing
	}
	panic("ft: unknown syndrome policy")
}

// correctionMasks converts syndrome planes into per-qubit correction
// masks: qubit i is corrected on the lanes whose syndrome equals column i
// of the parity check (the batched form of DecodeError on a perfect
// code).
func correctionMask(b *frame.BatchSim, syn [3]bits.Vec, col uint8, scratch bits.Vec) bits.Vec {
	started := false
	for j := 0; j < 3; j++ {
		if col&(1<<uint(j)) != 0 {
			if !started {
				scratch.CopyFrom(syn[j])
				started = true
			} else {
				scratch.And(syn[j])
			}
		}
	}
	// Every column is nonzero, so scratch is initialized; now strike the
	// lanes where a zero-column bit is set.
	for j := 0; j < 3; j++ {
		if col&(1<<uint(j)) == 0 {
			scratch.AndNot(syn[j])
		}
	}
	return scratch
}

// applyBitCorrectionBatch applies the frame-tracked X recovery per lane.
func applyBitCorrectionBatch(b *frame.BatchSim, data []int, syn [3]bits.Vec) {
	scratch := bits.NewVec(b.Lanes())
	for i, q := range data {
		b.XorFrameX(q, correctionMask(b, syn, steaneCols[i], scratch))
	}
}

// applyPhaseCorrectionBatch applies the frame-tracked Z recovery per lane.
func applyPhaseCorrectionBatch(b *frame.BatchSim, data []int, syn [3]bits.Vec) {
	scratch := bits.NewVec(b.Lanes())
	for i, q := range data {
		b.XorFrameZ(q, correctionMask(b, syn, steaneCols[i], scratch))
	}
}

// SteaneECBatch performs one complete Fig. 9 recovery on every active
// lane using Steane-method ancillas (batched SteaneEC).
func SteaneECBatch(b *frame.BatchSim, data, anc, chk []int, cfg Config) {
	bitSyn := resolveSyndromeBatch(b, func() [3]bits.Vec {
		return measureBitSyndromeSteaneBatch(b, data, anc, chk, cfg)
	}, cfg)
	applyBitCorrectionBatch(b, data, bitSyn)
	phaseSyn := resolveSyndromeBatch(b, func() [3]bits.Vec {
		return measurePhaseSyndromeSteaneBatch(b, data, anc, chk, cfg)
	}, cfg)
	applyPhaseCorrectionBatch(b, data, phaseSyn)
}

// measureZStabilizerShorBatch measures one Z-type generator with a
// verified Shor-state ancilla on every active lane; the returned plane is
// the syndrome bit (parity of the four cat measurements).
func measureZStabilizerShorBatch(b *frame.BatchSim, data, support, cat []int, ver int, cfg Config) bits.Vec {
	PrepVerifiedCatBatch(b, cat, ver, cfg)
	chargeIdleBatch(b, data, cfg)
	for _, q := range cat {
		b.H(q)
	}
	for i, pos := range support {
		b.CNOT(data[pos], cat[i])
	}
	bit := bits.NewVec(b.Lanes())
	for _, q := range cat {
		bit.Xor(b.MeasZ(q))
	}
	return bit
}

// measureXStabilizerShorBatch measures one X-type generator.
func measureXStabilizerShorBatch(b *frame.BatchSim, data, support, cat []int, ver int, cfg Config) bits.Vec {
	PrepVerifiedCatBatch(b, cat, ver, cfg)
	chargeIdleBatch(b, data, cfg)
	for i, pos := range support {
		b.CNOT(cat[i], data[pos])
	}
	bit := bits.NewVec(b.Lanes())
	for _, q := range cat {
		bit.Xor(b.MeasX(q))
	}
	return bit
}

func measureBitSyndromeShorBatch(b *frame.BatchSim, data, cat []int, ver int, cfg Config) [3]bits.Vec {
	var syn [3]bits.Vec
	for j, sup := range stabilizerSupports() {
		syn[j] = measureZStabilizerShorBatch(b, data, sup, cat, ver, cfg)
	}
	return syn
}

func measurePhaseSyndromeShorBatch(b *frame.BatchSim, data, cat []int, ver int, cfg Config) [3]bits.Vec {
	var syn [3]bits.Vec
	for j, sup := range stabilizerSupports() {
		syn[j] = measureXStabilizerShorBatch(b, data, sup, cat, ver, cfg)
	}
	return syn
}

// ShorECBatch performs one complete Shor-method recovery on every active
// lane.
func ShorECBatch(b *frame.BatchSim, data, cat []int, ver int, cfg Config) {
	bitSyn := resolveSyndromeBatch(b, func() [3]bits.Vec {
		return measureBitSyndromeShorBatch(b, data, cat, ver, cfg)
	}, cfg)
	applyBitCorrectionBatch(b, data, bitSyn)
	phaseSyn := resolveSyndromeBatch(b, func() [3]bits.Vec {
		return measurePhaseSyndromeShorBatch(b, data, cat, ver, cfg)
	}, cfg)
	applyPhaseCorrectionBatch(b, data, phaseSyn)
}

// NaiveECBatch is the batched non-fault-tolerant Fig. 2 recovery.
func NaiveECBatch(b *frame.BatchSim, data []int, anc int, cfg Config) {
	var bitSyn [3]bits.Vec
	for j, sup := range stabilizerSupports() {
		b.PrepZ(anc)
		for _, pos := range sup {
			b.CNOT(data[pos], anc)
		}
		bitSyn[j] = b.MeasZ(anc)
	}
	applyBitCorrectionBatch(b, data, bitSyn)
	var phaseSyn [3]bits.Vec
	for j, sup := range stabilizerSupports() {
		b.PrepZ(anc)
		b.H(anc)
		for _, pos := range sup {
			b.CNOT(anc, data[pos])
		}
		phaseSyn[j] = b.MeasX(anc)
	}
	applyPhaseCorrectionBatch(b, data, phaseSyn)
}

// RunECBatch performs one recovery with the chosen method on every active
// lane (batched RunEC, same wire layout).
func RunECBatch(b *frame.BatchSim, method ECMethod, cfg Config) {
	data, anc, chk, cat, ver := oneBlockLayout()
	switch method {
	case MethodSteane:
		SteaneECBatch(b, data, anc, chk, cfg)
	case MethodShor:
		ShorECBatch(b, data, cat, ver, cfg)
	case MethodNaive:
		NaiveECBatch(b, data, ver, cfg)
	}
}

// IdealDecodeBatch referees the residual frame on a block for every lane:
// the returned planes mark lanes with a logical X and logical Z error.
// It is the batched IdealDecode: sector-wise Hamming decode (one flipped
// qubit per nonzero syndrome) followed by the residual-parity test.
func IdealDecodeBatch(b *frame.BatchSim, block []int) (xerr, zerr bits.Vec) {
	mustBlock(block)
	var px, pz [BlockSize]bits.Vec
	for i, q := range block {
		px[i] = b.PlaneX(q)
		pz[i] = b.PlaneZ(q)
	}
	decodeParity := func(p *[BlockSize]bits.Vec) bits.Vec {
		syn := hammingSyndromePlanes(b, p)
		out := bits.NewVec(b.Lanes())
		for i := range p {
			out.Xor(p[i])
		}
		out.Xor(synAny(syn))
		return out
	}
	return decodeParity(&px), decodeParity(&pz)
}
