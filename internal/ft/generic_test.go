package ft

import (
	"math/rand/v2"
	"testing"

	"ftqc/internal/code"
	"ftqc/internal/frame"
	"ftqc/internal/noise"
	"ftqc/internal/pauli"
)

// layout for five-qubit-code experiments: data 0..4, cat 5..9, ver 10.
func fiveLayout() (data, cat []int, ver int) {
	return []int{0, 1, 2, 3, 4}, []int{5, 6, 7, 8}, 10
}

func newFiveEC(cfg Config) *GenericEC {
	return NewGenericEC(code.FiveQubit(), 1, cfg)
}

func TestGenericECCorrectsAllSingleErrorsFiveQubit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ChargeIdle = false
	g := newFiveEC(cfg)
	data, cat, ver := fiveLayout()
	for q := 0; q < 5; q++ {
		for _, kind := range []pauli.Single{pauli.X, pauli.Z, pauli.Y} {
			s := frame.New(11, noise.Params{}, rand.New(rand.NewPCG(301, uint64(q))))
			if kind == pauli.X || kind == pauli.Y {
				s.InjectX(data[q])
			}
			if kind == pauli.Z || kind == pauli.Y {
				s.InjectZ(data[q])
			}
			g.Recover(s, data, cat, ver)
			if g.IdealDecodeGeneric(s, data) {
				t.Fatalf("[[5,1,3]] generic EC failed on %v@%d", kind, q)
			}
			// The correction must be exact up to stabilizer.
			x, z := s.FrameOn(data)
			res := pauli.NewIdentity(5)
			res.XBits.Xor(x)
			res.ZBits.Xor(z)
			if !g.Code.Syndrome(res).Zero() {
				t.Fatalf("residue detectable after recovery: %v", res)
			}
		}
	}
}

func TestGenericECCorrectsSteaneToo(t *testing.T) {
	// The same gadget drives Steane's code through its generic stabilizer
	// presentation (weight-4 generators, 4-bit cats).
	cfg := DefaultConfig()
	cfg.ChargeIdle = false
	g := NewGenericEC(Code().Code, 1, cfg)
	data := []int{0, 1, 2, 3, 4, 5, 6}
	cat := []int{7, 8, 9, 10}
	ver := 11
	for q := 0; q < 7; q++ {
		s := frame.New(12, noise.Params{}, rand.New(rand.NewPCG(302, uint64(q))))
		s.InjectX(data[q])
		s.InjectZ(data[q])
		g.Recover(s, data, cat, ver)
		if g.IdealDecodeGeneric(s, data) {
			t.Fatalf("generic EC on Steane failed for Y@%d", q)
		}
	}
}

// TestGenericECFaultTolerantFiveQubit is the §4.2 claim made concrete:
// universal fault-tolerant machinery works for ANY stabilizer code. Every
// single fault at every location of the [[5,1,3]] recovery, followed by a
// clean recovery, must leave no logical error.
func TestGenericECFaultTolerantFiveQubit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ChargeIdle = false
	g := newFiveEC(cfg)
	data, cat, ver := fiveLayout()
	total := func() int {
		s := frame.New(11, noise.Params{}, rand.New(rand.NewPCG(303, 304)))
		g.Recover(s, data, cat, ver)
		return s.LocationCount
	}()
	if total < 40 {
		t.Fatalf("suspiciously few locations: %d", total)
	}
	for loc := 0; loc < total; loc++ {
		for fault := 1; fault < 16; fault++ {
			s := frame.New(11, noise.Params{}, rand.New(rand.NewPCG(305, uint64(loc))))
			s.Trigger = loc
			applied := false
			s.TriggerFault = func(s *frame.Sim, qubits []int) {
				f := fault
				for _, q := range qubits {
					if f&1 != 0 {
						s.InjectX(q)
					}
					if f&2 != 0 {
						s.InjectZ(q)
					}
					f >>= 2
				}
				applied = f == 0
			}
			g.Recover(s, data, cat, ver)
			if !applied {
				continue
			}
			s.Trigger = -1
			g.Recover(s, data, cat, ver)
			if g.IdealDecodeGeneric(s, data) {
				t.Fatalf("[[5,1,3]]: single fault %d at location %d/%d caused a logical error",
					fault, loc, total)
			}
		}
	}
}

func TestGenericECScalesQuadratically(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo scaling test")
	}
	cfg := DefaultConfig()
	g := newFiveEC(cfg)
	data, cat, ver := fiveLayout()
	fail := func(eps float64, samples int, seed uint64) float64 {
		rng := rand.New(rand.NewPCG(seed, 306))
		bad := 0
		for i := 0; i < samples; i++ {
			s := frame.New(11, noise.Uniform(eps), rng)
			g.Recover(s, data, cat, ver)
			s.P = noise.Params{}
			g.Recover(s, data, cat, ver)
			if g.IdealDecodeGeneric(s, data) {
				bad++
			}
		}
		return float64(bad) / float64(samples)
	}
	lo := fail(2e-4, 40000, 1)
	hi := fail(8e-4, 40000, 2)
	if lo == 0 {
		lo = 1.0 / 40000
	}
	if hi/lo < 5 {
		t.Fatalf("five-qubit EC failure not quadratic: p(8e-4)=%.2e p(2e-4)=%.2e", hi, lo)
	}
}

func TestCatWires(t *testing.T) {
	g := newFiveEC(DefaultConfig())
	if g.CatWires() != 5 {
		t.Fatalf("five-qubit generators have weight 4, want 5 wires, got %d", g.CatWires())
	}
}
