package ft

// The scalar-vs-batch equivalence suite (the headline test of the batch
// engine): every gadget driver and experiment, run from paired PCG
// streams — scalar shot i on rand.New(rand.NewPCG(seed, i)), batch lane i
// on the same stream via the lockstep sampler — must produce identical
// failure outcomes shot for shot, across methods, syndrome policies and
// noise settings.

import (
	"math"
	"math/rand/v2"
	"testing"

	"ftqc/internal/frame"
	"ftqc/internal/noise"
)

// equivConfigs is the policy grid the suite sweeps.
func equivConfigs() []Config {
	base := DefaultConfig()
	once := base
	once.Policy = PolicyOnce
	until := base
	until.Policy = PolicyUntilAgree
	discard := base
	discard.DiscardSteaneAncilla = true
	noIdle := base
	noIdle.ChargeIdle = false
	return []Config{base, once, until, discard, noIdle}
}

// equivNoise is the noise grid: loud enough that retries, repeats and
// corrections all actually fire within a few dozen lanes.
func equivNoise() []noise.Params {
	leaky := noise.Uniform(1e-2)
	leaky.Leak = 1e-2
	return []noise.Params{
		noise.Uniform(3e-3),
		noise.Uniform(3e-2),
		noise.StorageOnly(2e-2),
		leaky,
	}
}

func TestBatchMemoryEquivalence(t *testing.T) {
	const lanes = 96
	const rounds = 2
	data, _, _, _, _ := oneBlockLayout()
	storageP := noise.StorageOnly(5e-3)
	for mi, method := range []ECMethod{MethodSteane, MethodShor, MethodNaive} {
		for ci, cfg := range equivConfigs() {
			for ni, gadgetP := range equivNoise() {
				seed := uint64(100*mi + 10*ci + ni)

				b := frame.NewBatch(oneBlockWires, lanes, storageP, frame.NewLockstepSampler(seed, lanes))
				for r := 0; r < rounds; r++ {
					b.P = storageP
					for _, q := range data {
						b.Storage(q)
					}
					b.P = gadgetP
					RunECBatch(b, method, cfg)
				}
				bx, bz := IdealDecodeBatch(b, data)

				for lane := 0; lane < lanes; lane++ {
					s := frame.New(oneBlockWires, storageP, rand.New(rand.NewPCG(seed, uint64(lane))))
					for r := 0; r < rounds; r++ {
						s.P = storageP
						for _, q := range data {
							s.Storage(q)
						}
						s.P = gadgetP
						RunEC(s, method, cfg)
					}
					x, z := IdealDecode(s, data)
					if bx.Get(lane) != x || bz.Get(lane) != z {
						t.Fatalf("%v cfg=%d noise=%d lane %d: batch (x=%v z=%v) scalar (x=%v z=%v)",
							method, ci, ni, lane, bx.Get(lane), bz.Get(lane), x, z)
					}
				}
			}
		}
	}
}

func TestBatchECFailureEquivalence(t *testing.T) {
	const lanes = 96
	data, _, _, _, _ := oneBlockLayout()
	for mi, method := range []ECMethod{MethodSteane, MethodShor, MethodNaive} {
		for ni, p := range equivNoise() {
			seed := uint64(500 + 10*mi + ni)
			b := frame.NewBatch(oneBlockWires, lanes, p, frame.NewLockstepSampler(seed, lanes))
			RunECBatch(b, method, DefaultConfig())
			bx, bz := IdealDecodeBatch(b, data)
			for lane := 0; lane < lanes; lane++ {
				s := frame.New(oneBlockWires, p, rand.New(rand.NewPCG(seed, uint64(lane))))
				RunEC(s, method, DefaultConfig())
				x, z := IdealDecode(s, data)
				if bx.Get(lane) != x || bz.Get(lane) != z {
					t.Fatalf("%v noise=%d lane %d: batch (x=%v z=%v) scalar (x=%v z=%v)",
						method, ni, lane, bx.Get(lane), bz.Get(lane), x, z)
				}
			}
		}
	}
}

func TestBatchExRecEquivalence(t *testing.T) {
	const lanes = 96
	const wires = 14 + 19
	dataA := []int{0, 1, 2, 3, 4, 5, 6}
	dataB := []int{7, 8, 9, 10, 11, 12, 13}
	anc := []int{14, 15, 16, 17, 18, 19, 20}
	chk := []int{21, 22, 23, 24, 25, 26, 27}
	cat := []int{28, 29, 30, 31}
	ver := 32
	cfg := DefaultConfig()
	for mi, method := range []ECMethod{MethodSteane, MethodShor} {
		p := noise.Uniform(1e-2)
		seed := uint64(900 + mi)

		b := frame.NewBatch(wires, lanes, p, frame.NewLockstepSampler(seed, lanes))
		LogicalCNOTBatch(b, dataA, dataB)
		for _, blk := range [][]int{dataA, dataB} {
			if method == MethodSteane {
				SteaneECBatch(b, blk, anc, chk, cfg)
			} else {
				ShorECBatch(b, blk, cat, ver, cfg)
			}
		}
		bxa, bza := IdealDecodeBatch(b, dataA)
		bxb, bzb := IdealDecodeBatch(b, dataB)

		for lane := 0; lane < lanes; lane++ {
			s := frame.New(wires, p, rand.New(rand.NewPCG(seed, uint64(lane))))
			LogicalCNOT(s, dataA, dataB)
			for _, blk := range [][]int{dataA, dataB} {
				if method == MethodSteane {
					SteaneEC(s, blk, anc, chk, cfg)
				} else {
					ShorEC(s, blk, cat, ver, cfg)
				}
			}
			xa, za := IdealDecode(s, dataA)
			xb, zb := IdealDecode(s, dataB)
			if bxa.Get(lane) != xa || bza.Get(lane) != za || bxb.Get(lane) != xb || bzb.Get(lane) != zb {
				t.Fatalf("%v lane %d: exRec outcome mismatch", method, lane)
			}
		}
	}
}

// TestBatchSteaneECSingleFaultExhaustive ports the deterministic
// single-fault machinery to the batch engine: every location of the
// Steane EC gadget is triggered on its own lane (all 15 Pauli fault
// patterns), and each location's outcome must (a) agree with the scalar
// Trigger run for that location and (b) never be a logical error after a
// clean follow-up recovery.
func TestBatchSteaneECSingleFaultExhaustive(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ChargeIdle = false
	data, _, _, _, _ := oneBlockLayout()
	total := countLocations(func(s *frame.Sim) { RunEC(s, MethodSteane, cfg) })
	if total < 50 {
		t.Fatalf("suspiciously few locations: %d", total)
	}
	for fault := 1; fault < 16; fault++ {
		// Batch: lane L takes the fault at location L.
		b := frame.NewBatch(oneBlockWires, total, quiet(), frame.NewAggregateSampler(41, uint64(fault)))
		applied := make([]bool, total)
		for lane := 0; lane < total; lane++ {
			b.ArmTrigger(lane, lane)
		}
		b.TriggerFault = func(b *frame.BatchSim, lane int, qubits []int) {
			f := fault
			for _, q := range qubits {
				if f&1 != 0 {
					b.InjectX(q, lane)
				}
				if f&2 != 0 {
					b.InjectZ(q, lane)
				}
				f >>= 2
			}
			applied[lane] = f == 0
		}
		RunECBatch(b, MethodSteane, cfg)
		b.DisarmTriggers()
		RunECBatch(b, MethodSteane, cfg)
		bx, bz := IdealDecodeBatch(b, data)

		for loc := 0; loc < total; loc++ {
			s := frame.New(oneBlockWires, quiet(), rand.New(rand.NewPCG(41, uint64(loc))))
			s.Trigger = loc
			sApplied := false
			s.TriggerFault = func(s *frame.Sim, qubits []int) {
				f := fault
				for _, q := range qubits {
					if f&1 != 0 {
						s.InjectX(q)
					}
					if f&2 != 0 {
						s.InjectZ(q)
					}
					f >>= 2
				}
				sApplied = f == 0
			}
			RunEC(s, MethodSteane, cfg)
			s.Trigger = -1
			RunEC(s, MethodSteane, cfg)
			x, z := IdealDecode(s, data)
			if applied[loc] != sApplied {
				t.Fatalf("fault %d location %d: arity disagreement (batch %v scalar %v)",
					fault, loc, applied[loc], sApplied)
			}
			if bx.Get(loc) != x || bz.Get(loc) != z {
				t.Fatalf("fault %d location %d: batch (x=%v z=%v) scalar (x=%v z=%v)",
					fault, loc, bx.Get(loc), bz.Get(loc), x, z)
			}
			if applied[loc] && (x || z) {
				t.Fatalf("fault %d at location %d/%d caused a logical error", fault, loc, total)
			}
		}
	}
}

// TestBatchAggregateStatisticallyConsistent guards the production
// sampler: the aggregate-sampled experiment rate must agree with a scalar
// Monte Carlo of the same size within a generous binomial tolerance.
func TestBatchAggregateStatisticallyConsistent(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo")
	}
	const samples = 6000
	p := noise.Uniform(8e-3)
	cfg := DefaultConfig()
	batch := ECFailureRate(MethodSteane, p, cfg, samples, 11)
	scalar := parallelMC(samples, 11, func(rng *rand.Rand) (bool, bool) {
		s := frame.New(oneBlockWires, p, rng)
		data, _, _, _, _ := oneBlockLayout()
		RunEC(s, MethodSteane, cfg)
		return IdealDecode(s, data)
	})
	pb := batch.FailRate()
	ps := float64(scalar.Failures) / float64(scalar.Samples)
	// Two independent binomial estimates: allow 5 combined standard errors.
	se := math.Sqrt((pb*(1-pb) + ps*(1-ps)) / samples)
	if math.Abs(pb-ps) > 5*se+1e-9 {
		t.Fatalf("aggregate %v vs scalar %v (se %v)", pb, ps, se)
	}
}
