package ft

import (
	"math/rand/v2"
	"testing"

	"ftqc/internal/circuit"
	"ftqc/internal/frame"
	"ftqc/internal/noise"
	"ftqc/internal/pauli"
	"ftqc/internal/statevec"
	"ftqc/internal/tableau"
)

func quiet() noise.Params { return noise.Params{} }

func TestCodeIsValidSteane(t *testing.T) {
	c := Code()
	if c.N != 7 || c.K != 1 {
		t.Fatalf("got [[%d,%d]]", c.N, c.K)
	}
	if d := c.MinDistance(3); d != 3 {
		t.Fatalf("distance %d", d)
	}
}

func TestPrepZeroCircuitOnTableau(t *testing.T) {
	// The Fig. 3 encoder with |0⟩ input must produce the +1 eigenstate of
	// every stabilizer generator and of logical Ẑ.
	cc := circuit.New(7)
	PrepZeroCircuit(cc, []int{0, 1, 2, 3, 4, 5, 6})
	tb := tableau.New(7, rand.New(rand.NewPCG(7, 8)))
	tableau.Apply(tb, cc)
	for i, g := range Code().Generators {
		out, det := tb.Clone().MeasurePauli(g)
		if !det || out {
			t.Fatalf("generator %d (%v) not +1 after encoding", i, g)
		}
	}
	out, det := tb.MeasurePauli(Code().LogicalZ[0])
	if !det || out {
		t.Fatal("logical Z not +1: encoder did not make |0̄⟩")
	}
}

func TestEncodeCircuitEncodesOne(t *testing.T) {
	// Feed |1⟩ into the encoder: the result must be |1̄⟩.
	cc := circuit.New(7)
	EncodeCircuit(cc, []int{0, 1, 2, 3, 4, 5, 6})
	tb := tableau.New(7, rand.New(rand.NewPCG(9, 10)))
	tb.X(4) // the unknown input sits on wire 4
	tableau.Apply(tb, cc)
	for i, g := range Code().Generators {
		out, det := tb.Clone().MeasurePauli(g)
		if !det || out {
			t.Fatalf("generator %d not +1 after encoding |1⟩", i)
		}
	}
	out, det := tb.MeasurePauli(Code().LogicalZ[0])
	if !det || !out {
		t.Fatal("encoder did not produce |1̄⟩ from |1⟩")
	}
}

func TestEncodeCircuitPreservesSuperposition(t *testing.T) {
	// Feed |+⟩: the encoder must output |+̄⟩ (X̂ = +1).
	cc := circuit.New(7)
	EncodeCircuit(cc, []int{0, 1, 2, 3, 4, 5, 6})
	tb := tableau.New(7, rand.New(rand.NewPCG(11, 12)))
	tb.H(4)
	tableau.Apply(tb, cc)
	out, det := tb.MeasurePauli(Code().LogicalX[0])
	if !det || out {
		t.Fatal("encoder did not map |+⟩ to |+̄⟩")
	}
}

func TestNoiselessECCorrectsAllSingleErrors(t *testing.T) {
	data, _, _, _, _ := oneBlockLayout()
	for _, method := range []ECMethod{MethodSteane, MethodShor, MethodNaive} {
		for q := 0; q < 7; q++ {
			for _, kind := range []string{"X", "Z", "Y"} {
				s := frame.New(oneBlockWires, quiet(), rand.New(rand.NewPCG(21, uint64(q))))
				if kind == "X" || kind == "Y" {
					s.InjectX(data[q])
				}
				if kind == "Z" || kind == "Y" {
					s.InjectZ(data[q])
				}
				RunEC(s, method, DefaultConfig())
				if x, z := IdealDecode(s, data); x || z {
					t.Fatalf("%v: %s@%d not corrected", method, kind, q)
				}
				// The frame must be literally clean (correction exact).
				fx, fz := s.FrameOn(data)
				if !hamming().Syndrome(fx).Zero() || !hamming().Syndrome(fz).Zero() {
					t.Fatalf("%v: %s@%d left a detectable residue", method, kind, q)
				}
			}
		}
	}
}

// countLocations runs a gadget noiselessly and reports how many fault
// locations it visits.
func countLocations(run func(s *frame.Sim)) int {
	s := frame.New(64, quiet(), rand.New(rand.NewPCG(31, 32)))
	run(s)
	return s.LocationCount
}

// TestSteaneECFaultTolerant is the exhaustive single-fault test of the
// §3 design: for EVERY fault location in the recovery gadget and EVERY
// nontrivial Pauli at that location, one fault followed by a clean
// recovery must never produce a logical error. This is precisely the
// property "recovery fails only if two independent errors occur".
func TestSteaneECFaultTolerant(t *testing.T) {
	exhaustiveSingleFault(t, MethodSteane)
}

// TestShorECFaultTolerant is the same property for the Shor-method
// gadget of Figs. 7–8.
func TestShorECFaultTolerant(t *testing.T) {
	exhaustiveSingleFault(t, MethodShor)
}

func exhaustiveSingleFault(t *testing.T, method ECMethod) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.ChargeIdle = false
	data, _, _, _, _ := oneBlockLayout()
	total := countLocations(func(s *frame.Sim) { RunEC(s, method, cfg) })
	if total < 50 {
		t.Fatalf("suspiciously few locations: %d", total)
	}
	for loc := 0; loc < total; loc++ {
		// All nontrivial Pauli faults on the location's support (up to 15
		// for a two-qubit gate).
		for fault := 1; fault < 16; fault++ {
			s := frame.New(oneBlockWires, quiet(), rand.New(rand.NewPCG(41, uint64(loc))))
			s.Trigger = loc
			applied := false
			s.TriggerFault = func(s *frame.Sim, qubits []int) {
				f := fault
				for _, q := range qubits {
					if f&1 != 0 {
						s.InjectX(q)
					}
					if f&2 != 0 {
						s.InjectZ(q)
					}
					f >>= 2
				}
				applied = f == 0 // fault fit the location's arity
			}
			RunEC(s, method, cfg)
			if !applied {
				continue // 2-qubit fault pattern on a 1-qubit location
			}
			// Clean recovery afterwards, then referee.
			s.Trigger = -1
			RunEC(s, method, cfg)
			if x, z := IdealDecode(s, data); x || z {
				t.Fatalf("%v: single fault %d at location %d/%d caused a logical error (x=%v z=%v)",
					method, fault, loc, total, x, z)
			}
		}
	}
}

// TestNaiveECNotFaultTolerant demonstrates the Fig. 2 failure mode: there
// exists a single fault location whose error defeats the naive gadget.
func TestNaiveECNotFaultTolerant(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ChargeIdle = false
	data, _, _, _, _ := oneBlockLayout()
	total := countLocations(func(s *frame.Sim) { NaiveEC(s, data, 25, cfg) })
	for loc := 0; loc < total; loc++ {
		for fault := 1; fault < 16; fault++ {
			s := frame.New(oneBlockWires, quiet(), rand.New(rand.NewPCG(43, uint64(loc))))
			s.Trigger = loc
			s.TriggerFault = func(s *frame.Sim, qubits []int) {
				f := fault
				for _, q := range qubits {
					if f&1 != 0 {
						s.InjectX(q)
					}
					if f&2 != 0 {
						s.InjectZ(q)
					}
					f >>= 2
				}
			}
			NaiveEC(s, data, 25, cfg)
			s.Trigger = -1
			NaiveEC(s, data, 25, cfg)
			if x, z := IdealDecode(s, data); x || z {
				return // found the expected catastrophic location
			}
		}
	}
	t.Fatal("naive EC unexpectedly survived every single fault — Fig. 2 should not be fault tolerant")
}

func TestCatVerificationCatchesPairs(t *testing.T) {
	// A double bit-flip on cat bits {0,3}-separated parts must be caught:
	// inject X on cat qubit 1 right after the first chain CNOT; the paper
	// argues the first and fourth bits then disagree.
	cfg := DefaultConfig()
	s := frame.New(oneBlockWires, quiet(), rand.New(rand.NewPCG(51, 52)))
	cat := []int{21, 22, 23, 24}
	// Arm a fault: X on qubit cat[1] fired at the CNOT(cat0→cat1)
	// location (location 5: 4 preps + H = locations 0..4).
	s.Trigger = 5
	s.TriggerFault = func(s *frame.Sim, _ []int) { s.InjectX(cat[1]) }
	attempts := PrepVerifiedCat(s, cat, 25, cfg)
	if attempts < 2 {
		t.Fatalf("verification accepted a cat state with a propagating flip (attempts=%d)", attempts)
	}
	// After the accepted attempt the cat must carry no double flip:
	fx, _ := s.FrameOn(cat)
	if fx.Weight() >= 2 {
		t.Fatalf("accepted cat state carries %d bit flips", fx.Weight())
	}
}

func TestMeasureLogicalZRobustToSingleFlip(t *testing.T) {
	data, _, _, _, _ := oneBlockLayout()
	for q := 0; q < 7; q++ {
		s := frame.New(oneBlockWires, quiet(), rand.New(rand.NewPCG(61, uint64(q))))
		s.InjectX(data[q])
		if MeasureLogicalZ(s, data) {
			t.Fatalf("single flip on qubit %d corrupted the logical readout", q)
		}
	}
	// Two flips defeat it (Eq. 12's classical shadow).
	s := frame.New(oneBlockWires, quiet(), rand.New(rand.NewPCG(62, 63)))
	s.InjectX(data[0])
	s.InjectX(data[1])
	if !MeasureLogicalZ(s, data) {
		t.Fatal("double flip should flip the logical readout")
	}
}

func TestLogicalCNOTPropagatesLogicalState(t *testing.T) {
	// |1̄⟩ ⊗ |0̄⟩ → |1̄⟩ ⊗ |1̄⟩ under transversal XOR, verified on the exact
	// tableau: build both blocks, apply bitwise CNOTs, check Ẑ on block B.
	tb := tableau.New(14, rand.New(rand.NewPCG(71, 72)))
	ca := circuit.New(14)
	blockA := []int{0, 1, 2, 3, 4, 5, 6}
	blockB := []int{7, 8, 9, 10, 11, 12, 13}
	PrepZeroCircuit(ca, blockA)
	PrepZeroCircuit(ca, blockB)
	tableau.Apply(tb, ca)
	// Flip block A to |1̄⟩.
	tb.ApplyPauli(Code().LogicalX[0].Embed(14, blockA))
	for i := range blockA {
		tb.CNOT(blockA[i], blockB[i])
	}
	out, det := tb.MeasurePauli(Code().LogicalZ[0].Embed(14, blockB))
	if !det || !out {
		t.Fatal("transversal XOR did not copy the logical bit")
	}
	outA, detA := tb.MeasurePauli(Code().LogicalZ[0].Embed(14, blockA))
	if !detA || !outA {
		t.Fatal("transversal XOR disturbed the source block")
	}
}

func TestLogicalHOnTableau(t *testing.T) {
	// Bitwise H maps |0̄⟩ to |+̄⟩ (Eq. 11).
	tb := tableau.New(7, rand.New(rand.NewPCG(73, 74)))
	cc := circuit.New(7)
	PrepZeroCircuit(cc, []int{0, 1, 2, 3, 4, 5, 6})
	tableau.Apply(tb, cc)
	for q := 0; q < 7; q++ {
		tb.H(q)
	}
	out, det := tb.MeasurePauli(Code().LogicalX[0])
	if !det || out {
		t.Fatal("bitwise H did not produce |+̄⟩")
	}
}

func TestLogicalSOnTableau(t *testing.T) {
	// P̄ = bitwise P⁻¹ (§4.1): on |+̄⟩ it must produce the +1 eigenstate of
	// Ŷ = i X̂ Ẑ, i.e. S̄|+̄⟩ = |+̄i⟩.
	tb := tableau.New(7, rand.New(rand.NewPCG(75, 76)))
	cc := circuit.New(7)
	PrepZeroCircuit(cc, []int{0, 1, 2, 3, 4, 5, 6})
	tableau.Apply(tb, cc)
	for q := 0; q < 7; q++ {
		tb.H(q)
	}
	for q := 0; q < 7; q++ {
		tb.Sdg(q) // bitwise P⁻¹ implements logical P
	}
	logicalY := Code().LogicalX[0].Mul(Code().LogicalZ[0])
	logicalY.Phase = (logicalY.Phase + 1) % 4 // Y = iXZ
	out, det := tb.MeasurePauli(logicalY)
	if !det || out {
		t.Fatal("bitwise P⁻¹ did not implement the logical phase gate")
	}
}

func TestTransversalCNOTSingleFaultStaysCorrectable(t *testing.T) {
	// Fig. 11's fault-tolerance: any single fault in the transversal XOR,
	// followed by clean recovery on both blocks, leaves no logical error.
	cfg := DefaultConfig()
	cfg.ChargeIdle = false
	dataA := []int{0, 1, 2, 3, 4, 5, 6}
	dataB := []int{7, 8, 9, 10, 11, 12, 13}
	anc := []int{14, 15, 16, 17, 18, 19, 20}
	chk := []int{21, 22, 23, 24, 25, 26, 27}
	for loc := 0; loc < 7; loc++ {
		for fault := 1; fault < 16; fault++ {
			s := frame.New(33, quiet(), rand.New(rand.NewPCG(81, uint64(loc))))
			s.Trigger = loc
			s.TriggerFault = func(s *frame.Sim, qubits []int) {
				f := fault
				for _, q := range qubits {
					if f&1 != 0 {
						s.InjectX(q)
					}
					if f&2 != 0 {
						s.InjectZ(q)
					}
					f >>= 2
				}
			}
			LogicalCNOT(s, dataA, dataB)
			s.Trigger = -1
			SteaneEC(s, dataA, anc, chk, cfg)
			SteaneEC(s, dataB, anc, chk, cfg)
			xa, za := IdealDecode(s, dataA)
			xb, zb := IdealDecode(s, dataB)
			if xa || za || xb || zb {
				t.Fatalf("single fault %d in transversal XOR gate %d caused a logical error", fault, loc)
			}
		}
	}
}

func TestToffoliGadgetExact(t *testing.T) {
	rng := rand.New(rand.NewPCG(91, 92))
	for trial := 0; trial < 25; trial++ {
		thetas := [3]float64{rng.Float64() * 3, rng.Float64() * 3, rng.Float64() * 3}
		if f := ToffoliGadgetFidelity(rng, thetas); f < 1-1e-9 {
			t.Fatalf("trial %d: gadget fidelity %.12f for thetas %v", trial, f, thetas)
		}
	}
}

func TestToffoliGadgetBasisStates(t *testing.T) {
	// All 8 classical inputs through the measurement-based gadget.
	rng := rand.New(rand.NewPCG(93, 94))
	for in := 0; in < 8; in++ {
		s := statevecWithBasis(in)
		rec := ToffoliViaGadget(s, 0, 1, 2, 3, 4, 5, 6, rng)
		_ = rec
		want := in
		if in&3 == 3 {
			want ^= 4
		}
		// Read the ancilla trio.
		x := s.MeasureZ(3, rng)
		y := s.MeasureZ(4, rng)
		z := s.MeasureZ(5, rng)
		got := b2iTest(x) | b2iTest(y)<<1 | b2iTest(z)<<2
		if got != want {
			t.Fatalf("input %03b: got %03b want %03b", in, got, want)
		}
	}
}

func TestLeakDetectFindsLeakedQubit(t *testing.T) {
	s := frame.New(3, noise.Params{Leak: 1}, rand.New(rand.NewPCG(95, 96)))
	s.H(0) // leaks immediately under Leak=1
	s.P = noise.Params{}
	if !LeakDetect(s, 0, 2) {
		t.Fatal("leak detection missed a leaked qubit")
	}
	if LeakDetect(s, 1, 2) {
		t.Fatal("leak detection false-positive on a healthy qubit")
	}
}

func TestIdealDecodeClassifiesLogicalErrors(t *testing.T) {
	data, _, _, _, _ := oneBlockLayout()
	s := frame.New(oneBlockWires, quiet(), nil)
	// Apply a full logical X (X on the support of the all-ones codeword).
	lx := Code().LogicalX[0]
	for i := 0; i < 7; i++ {
		if lx.XBits.Get(i) {
			s.InjectX(data[i])
		}
	}
	x, z := IdealDecode(s, data)
	if !x || z {
		t.Fatalf("logical X misclassified: x=%v z=%v", x, z)
	}
}

func statevecWithBasis(in int) *statevec.State {
	s := statevec.NewZero(7)
	for q := 0; q < 3; q++ {
		if in>>uint(q)&1 == 1 {
			s.X(q)
		}
	}
	return s
}

func b2iTest(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestExRecScalesQuadratically(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo scaling test")
	}
	cfg := DefaultConfig()
	lo := ExRecCNOT(MethodSteane, noise.Uniform(2e-4), cfg, 60000, 7)
	hi := ExRecCNOT(MethodSteane, noise.Uniform(8e-4), cfg, 60000, 8)
	rlo, rhi := lo.FailRate(), hi.FailRate()
	if rlo == 0 {
		rlo = 1.0 / float64(lo.Samples)
	}
	ratio := rhi / rlo
	// 4x the error rate should give ≈16x the failure rate; allow slack.
	if ratio < 6 {
		t.Fatalf("failure scaling looks linear: p(8e-4)=%.2e p(2e-4)=%.2e ratio=%.1f", rhi, rlo, ratio)
	}
	// And the absolute rate must be far below first order (~100·ε).
	if rhi > 50*8e-4 {
		t.Fatalf("failure rate %.2e too close to O(ε)", rhi)
	}
}

func TestPauliUnused(t *testing.T) {
	// keep the pauli import honest: logical operators embed correctly.
	p := pauli.MustFromString("XXXXXXX").Embed(14, []int{7, 8, 9, 10, 11, 12, 13})
	if p.N() != 14 || p.Weight() != 7 {
		t.Fatal("embed broken")
	}
}
