// Package ft implements the fault-tolerant gadgets of Preskill §2–§4 and
// §6 for Steane's 7-qubit code: the encoding circuit (Fig. 3), destructive
// and nondestructive logical measurement (Fig. 4), non-fault-tolerant and
// fault-tolerant syndrome extraction (Figs. 2, 6), Shor cat-state ancillas
// with verification (Figs. 7–8), Steane ancillas with verification and the
// complete recovery circuit (Fig. 9), transversal logical gates (Fig. 11),
// Shor's Toffoli construction (Figs. 12–13) and leakage detection
// (Fig. 15). Gadgets run on the Pauli-frame simulator for Monte Carlo, and
// on the stabilizer tableau for exact logical verification.
package ft

import (
	"sync"

	"ftqc/internal/bits"
	"ftqc/internal/circuit"
	"ftqc/internal/classical"
	"ftqc/internal/code"
	"ftqc/internal/frame"
)

// BlockSize is the number of physical qubits per Steane block.
const BlockSize = 7

// parityH15 is the Hamming parity check in the systematic form of
// Preskill Eq. (15): bits 0–2 carry the data, bits 3–6 the parity checks.
// The encoding circuit of Fig. 3 is written against this form.
var parityH15 = [3]string{
	"1001011",
	"0101101",
	"0011110",
}

var (
	steaneOnce sync.Once
	steaneCode *code.CSS
	steaneDec  *code.CSSDecoder
	hamming15  *classical.Code
)

// Code returns the [[7,1,3]] Steane code in the Eq. (15) qubit labeling
// used by all circuits in this package.
func Code() *code.CSS {
	steaneOnce.Do(func() {
		h := bits.MatrixFromStrings(parityH15[0], parityH15[1], parityH15[2])
		steaneCode = code.MustNewCSS("Steane15[[7,1,3]]", h, h)
		steaneDec = code.NewCSSDecoder(steaneCode)
		hamming15 = classical.MustNew("Hamming15", h)
	})
	return steaneCode
}

// Decoder returns the sector-wise CSS decoder for Code().
func Decoder() *code.CSSDecoder {
	Code()
	return steaneDec
}

// hamming returns the classical Hamming code in Eq. (15) form.
func hamming() *classical.Code {
	Code()
	return hamming15
}

// EncodeCircuit appends the Fig. 3 encoder to c on the 7 wires of block.
// The unknown input state must sit on block[4]; the remaining six wires
// must be |0⟩. After the circuit the block carries a|0̄⟩+b|1̄⟩.
func EncodeCircuit(c *circuit.Circuit, block []int) {
	mustBlock(block)
	// Two XORs prepare a|0000000⟩ + b|0000111⟩ (0000111 is the weight-3
	// Hamming codeword on bits 4,5,6 in the Eq. (15) labeling).
	c.CNOT(block[4], block[5])
	c.CNOT(block[4], block[6])
	// Superpose the three data bits and switch on the parity bits.
	for j := 0; j < 3; j++ {
		c.H(block[j])
	}
	for j := 0; j < 3; j++ {
		row := bits.MustFromString(parityH15[j])
		for k := 3; k < 7; k++ {
			if row.Get(k) {
				c.CNOT(block[j], block[k])
			}
		}
	}
}

// PrepZeroCircuit appends a |0̄⟩ preparation: fresh |0⟩s followed by the
// Fig. 3 encoder with a |0⟩ input (the two leading XORs act trivially and
// are elided, as in §3.3).
func PrepZeroCircuit(c *circuit.Circuit, block []int) {
	mustBlock(block)
	for _, q := range block {
		c.PrepZ(q)
	}
	for j := 0; j < 3; j++ {
		c.H(block[j])
	}
	for j := 0; j < 3; j++ {
		row := bits.MustFromString(parityH15[j])
		for k := 3; k < 7; k++ {
			if row.Get(k) {
				c.CNOT(block[j], block[k])
			}
		}
	}
}

func mustBlock(block []int) {
	if len(block) != BlockSize {
		panic("ft: block must have exactly 7 wires")
	}
}

// --- transversal logical gates (Fig. 11, §4.1) ---

// LogicalCNOT applies the transversal XOR between two blocks: bitwise
// CNOTs, fault-tolerant because each qubit touches a single gate.
func LogicalCNOT(s *frame.Sim, src, dst []int) {
	mustBlock(src)
	mustBlock(dst)
	for i := range src {
		s.CNOT(src[i], dst[i])
	}
}

// LogicalH applies the logical Hadamard bitwise (Eq. 11).
func LogicalH(s *frame.Sim, block []int) {
	mustBlock(block)
	for _, q := range block {
		s.H(q)
	}
}

// LogicalX applies the logical NOT bitwise. (Three selected NOTs would
// also do — footnote f — but the bitwise form keeps the gadget uniform.)
func LogicalX(s *frame.Sim, block []int) {
	mustBlock(block)
	for _, q := range block {
		s.PauliGate(q)
		s.FrameX(q)
	}
}

// LogicalZ applies the logical phase flip bitwise.
func LogicalZ(s *frame.Sim, block []int) {
	mustBlock(block)
	for _, q := range block {
		s.PauliGate(q)
		s.FrameZ(q)
	}
}

// LogicalS applies the logical phase gate: P is implemented bitwise as
// P⁻¹ because odd codewords have weight ≡ 3 (mod 4) (§4.1).
func LogicalS(s *frame.Sim, block []int) {
	mustBlock(block)
	for _, q := range block {
		s.Sdg(q)
	}
}

// --- logical measurement (Fig. 4) ---

// MeasureLogicalZ performs the destructive logical measurement: measure
// every qubit, classically Hamming-correct the outcome, return the parity.
// The return value is the *flip* relative to the noiseless logical value,
// so 'true' means the measurement misreported the encoded bit.
func MeasureLogicalZ(s *frame.Sim, block []int) bool {
	mustBlock(block)
	flips := bits.NewVec(BlockSize)
	for i, q := range block {
		if s.MeasZ(q) {
			flips.Set(i, true)
		}
	}
	return logicalFlipFromBits(flips)
}

// logicalFlipFromBits classically corrects a 7-bit flip pattern and
// reports whether the residual flips the codeword parity (a logical flip).
func logicalFlipFromBits(flips bits.Vec) bool {
	h := hamming()
	corrected := h.Correct(flips)
	// corrected is now a Hamming codeword; odd parity = logical flip.
	return corrected.Weight()%2 == 1
}

// IdealDecode applies a noiseless decoder to the residual frame on a
// block and reports whether the block carries a logical X and/or logical
// Z error. This is the end-of-experiment referee used by the Monte Carlo
// harnesses; it does not disturb the simulation.
func IdealDecode(s *frame.Sim, block []int) (xerr, zerr bool) {
	mustBlock(block)
	x, z := s.FrameOn(block)
	h := hamming()
	// Sector-wise CSS decode, then classify the residual.
	ex, _ := h.DecodeError(h.Syndrome(x))
	ez, _ := h.DecodeError(h.Syndrome(z))
	rx := x.Clone()
	rx.Xor(ex)
	rz := z.Clone()
	rz.Xor(ez)
	// Residuals are in the Hamming code; odd weight = logical operator.
	return rx.Weight()%2 == 1, rz.Weight()%2 == 1
}
