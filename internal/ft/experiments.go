package ft

import (
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"

	"ftqc/internal/bits"
	"ftqc/internal/frame"
	"ftqc/internal/noise"
)

// ECMethod selects the recovery gadget under test.
type ECMethod int

// Recovery methods.
const (
	MethodSteane ECMethod = iota // Fig. 9, 14 ancilla qubits per recovery
	MethodShor                   // Figs. 7–8, 24 ancilla qubits per recovery
	MethodNaive                  // Fig. 2, not fault tolerant (baseline)
)

// String names the method.
func (m ECMethod) String() string {
	return [...]string{"steane", "shor", "naive"}[m]
}

// wire layout for one-block experiments:
// data 0..6, steane ancilla 7..13, check 14..20, cat 21..24, ver 25.
const (
	oneBlockWires = 26
)

func oneBlockLayout() (data, anc, chk, cat []int, ver int) {
	data = []int{0, 1, 2, 3, 4, 5, 6}
	anc = []int{7, 8, 9, 10, 11, 12, 13}
	chk = []int{14, 15, 16, 17, 18, 19, 20}
	cat = []int{21, 22, 23, 24}
	ver = 25
	return
}

// RunEC performs one recovery with the chosen method on the given sim.
func RunEC(s *frame.Sim, method ECMethod, cfg Config) {
	data, anc, chk, cat, ver := oneBlockLayout()
	switch method {
	case MethodSteane:
		SteaneEC(s, data, anc, chk, cfg)
	case MethodShor:
		ShorEC(s, data, cat, ver, cfg)
	case MethodNaive:
		NaiveEC(s, data, ver, cfg)
	}
}

// MemoryResult aggregates a logical-memory Monte Carlo run.
type MemoryResult struct {
	Samples   int
	XFailures int
	ZFailures int
	Failures  int // either
}

// FailRate returns the probability that the stored qubit was damaged.
func (r MemoryResult) FailRate() float64 { return float64(r.Failures) / float64(r.Samples) }

// XRate returns the logical bit-flip rate.
func (r MemoryResult) XRate() float64 { return float64(r.XFailures) / float64(r.Samples) }

// ZRate returns the logical phase-flip rate.
func (r MemoryResult) ZRate() float64 { return float64(r.ZFailures) / float64(r.Samples) }

// MemoryExperiment measures the fidelity of an encoded qubit held for
// `rounds` cycles of [storage noise + recovery], the scenario behind
// Preskill Eq. (14). storageP governs the idle noise on the data between
// recoveries; gadgetP governs the noise inside the recovery circuitry
// (set it to zero for the paper's "flawless recovery" idealization).
// Samples run on the batched frame engine, 64+ shots per machine word.
func MemoryExperiment(method ECMethod, storageP, gadgetP noise.Params, cfg Config, rounds, samples int, seed uint64) MemoryResult {
	return parallelBatchMC(oneBlockWires, storageP, samples, seed, func(b *frame.BatchSim) (bits.Vec, bits.Vec) {
		data, _, _, _, _ := oneBlockLayout()
		for r := 0; r < rounds; r++ {
			b.P = storageP
			for _, q := range data {
				b.Storage(q)
			}
			b.P = gadgetP
			RunECBatch(b, method, cfg)
		}
		return IdealDecodeBatch(b, data)
	})
}

// UnencodedMemory is the baseline: a bare qubit exposed to the same
// storage noise with no recovery; any accumulated error is a failure
// (fidelity 1−ε per step, Eq. 14's left-hand side).
func UnencodedMemory(storageP noise.Params, rounds, samples int, seed uint64) MemoryResult {
	return parallelBatchMC(1, storageP, samples, seed, func(b *frame.BatchSim) (bits.Vec, bits.Vec) {
		for r := 0; r < rounds; r++ {
			b.Storage(0)
		}
		return b.PlaneX(0), b.PlaneZ(0)
	})
}

// ExRecResult reports an extended-rectangle Monte Carlo.
type ExRecResult struct {
	Samples  int
	Failures int
}

// FailRate is the logical failure probability of the rectangle.
func (r ExRecResult) FailRate() float64 { return float64(r.Failures) / float64(r.Samples) }

// ExRecCNOT measures the failure probability of the basic unit of
// fault-tolerant computation from §5: a transversal XOR between two clean
// encoded blocks followed by a full recovery of each block. The logical
// error probability scales as A·ε² below threshold; the fitted A is the
// coefficient of the concatenation flow equation (Eq. 33's circuit-level
// analogue).
func ExRecCNOT(method ECMethod, p noise.Params, cfg Config, samples int, seed uint64) ExRecResult {
	// wires: block A 0..6, block B 7..13, shared ancilla workspace after.
	const wires = 14 + 19
	dataA := []int{0, 1, 2, 3, 4, 5, 6}
	dataB := []int{7, 8, 9, 10, 11, 12, 13}
	anc := []int{14, 15, 16, 17, 18, 19, 20}
	chk := []int{21, 22, 23, 24, 25, 26, 27}
	cat := []int{28, 29, 30, 31}
	ver := 32
	res := parallelBatchMC(wires, p, samples, seed, func(b *frame.BatchSim) (bits.Vec, bits.Vec) {
		LogicalCNOTBatch(b, dataA, dataB)
		ecOn := func(data []int) {
			switch method {
			case MethodSteane:
				SteaneECBatch(b, data, anc, chk, cfg)
			case MethodShor:
				ShorECBatch(b, data, cat, ver, cfg)
			case MethodNaive:
				NaiveECBatch(b, data, ver, cfg)
			}
		}
		ecOn(dataA)
		ecOn(dataB)
		xa, za := IdealDecodeBatch(b, dataA)
		xb, zb := IdealDecodeBatch(b, dataB)
		xa.Or(za) // per-lane: block A damaged
		xb.Or(zb) // per-lane: block B damaged
		return xa, xb
	})
	return ExRecResult{Samples: res.Samples, Failures: res.Failures}
}

// ECFailureRate measures the failure probability of a single recovery
// applied to a clean block — the "1-Rec" used to calibrate the level-1
// flow equation.
func ECFailureRate(method ECMethod, p noise.Params, cfg Config, samples int, seed uint64) ExRecResult {
	res := parallelBatchMC(oneBlockWires, p, samples, seed, func(b *frame.BatchSim) (bits.Vec, bits.Vec) {
		data, _, _, _, _ := oneBlockLayout()
		RunECBatch(b, method, cfg)
		return IdealDecodeBatch(b, data)
	})
	return ExRecResult{Samples: res.Samples, Failures: res.Failures}
}

// parallelBatchMC fans samples out as fixed-width lane batches over the
// available CPUs via frame.ForEachChunk (deterministic stream per chunk:
// results depend only on samples and seed). trial runs one batch and
// returns the per-lane X/Z failure planes.
func parallelBatchMC(wires int, p noise.Params, samples int, seed uint64,
	trial func(b *frame.BatchSim) (xfail, zfail bits.Vec)) MemoryResult {
	var xs, zs, anys atomic.Int64
	frame.ForEachChunk(samples, seed, func(lanes int, smp frame.Sampler) {
		b := frame.NewBatch(wires, lanes, p, smp)
		x, z := trial(b)
		xs.Add(int64(x.Weight()))
		zs.Add(int64(z.Weight()))
		x.Or(z)
		anys.Add(int64(x.Weight()))
	})
	return MemoryResult{
		Samples:   samples,
		XFailures: int(xs.Load()),
		ZFailures: int(zs.Load()),
		Failures:  int(anys.Load()),
	}
}

// parallelMC fans samples out over the available CPUs, one PCG stream per
// worker, and merges the failure counts (share memory by communicating:
// each worker owns its counters and reports over a channel).
func parallelMC(samples int, seed uint64, trial func(rng *rand.Rand) (xfail, zfail bool)) MemoryResult {
	workers := runtime.GOMAXPROCS(0)
	if workers > samples {
		workers = 1
	}
	type counts struct{ x, z, any, n int }
	out := make(chan counts, workers)
	var wg sync.WaitGroup
	per := samples / workers
	extra := samples % workers
	for w := 0; w < workers; w++ {
		n := per
		if w < extra {
			n++
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, uint64(w)^0x9e3779b97f4a7c15))
			var c counts
			c.n = n
			for i := 0; i < n; i++ {
				x, z := trial(rng)
				if x {
					c.x++
				}
				if z {
					c.z++
				}
				if x || z {
					c.any++
				}
			}
			out <- c
		}(w, n)
	}
	wg.Wait()
	close(out)
	var r MemoryResult
	for c := range out {
		r.Samples += c.n
		r.XFailures += c.x
		r.ZFailures += c.z
		r.Failures += c.any
	}
	return r
}
