package ft

import (
	"ftqc/internal/bits"
	"ftqc/internal/frame"
)

// chargeIdle applies one storage step to each data qubit, modelling the
// time the data block waits while ancilla work happens (§6 storage errors
// under the maximal-parallelism assumption).
func chargeIdle(s *frame.Sim, data []int, cfg Config) {
	if !cfg.ChargeIdle {
		return
	}
	for _, q := range data {
		s.Storage(q)
	}
}

// --- Steane-method syndrome extraction (§3.2, Fig. 9, Fig. 10) ---

// measureBitSyndromeSteane extracts the 3-bit bit-flip syndrome: a
// verified |0̄⟩ ancilla is rotated to the Steane state H⊗7|0̄⟩ (the equal
// superposition of all Hamming codewords, Eq. 17), the data is XORed into
// it transversally, and the ancilla is measured; the Hamming parity check
// of the outcome is the syndrome. Only the syndrome is extractable — the
// measured string is otherwise a random codeword.
func measureBitSyndromeSteane(s *frame.Sim, data, anc, chk []int, cfg Config) bits.Vec {
	PrepVerifiedZero(s, anc, chk, cfg)
	chargeIdle(s, data, cfg)
	for _, q := range anc {
		s.H(q)
	}
	for i := range data {
		s.CNOT(data[i], anc[i])
	}
	flips := bits.NewVec(BlockSize)
	for i, q := range anc {
		if s.MeasZ(q) {
			flips.Set(i, true)
		}
	}
	return hamming().Syndrome(flips)
}

// measurePhaseSyndromeSteane extracts the phase-flip syndrome: a verified
// |0̄⟩ ancilla is used as the *source* of the transversal XOR (the Fig. 5 /
// Fig. 7(c) trick that avoids rotating the data), and is then measured in
// the X basis. Phase errors on the data propagate onto the ancilla and
// show up in the Hamming parity check of the X-basis outcome.
func measurePhaseSyndromeSteane(s *frame.Sim, data, anc, chk []int, cfg Config) bits.Vec {
	PrepVerifiedZero(s, anc, chk, cfg)
	chargeIdle(s, data, cfg)
	for i := range data {
		s.CNOT(anc[i], data[i])
	}
	flips := bits.NewVec(BlockSize)
	for i, q := range anc {
		if s.MeasX(q) {
			flips.Set(i, true)
		}
	}
	return hamming().Syndrome(flips)
}

// resolveSyndrome applies the §3.4 verification policy, remeasuring via
// the measure callback as needed, and returns the syndrome to act on
// (possibly trivial, meaning "do nothing").
func resolveSyndrome(measure func() bits.Vec, cfg Config) bits.Vec {
	s1 := measure()
	switch cfg.Policy {
	case PolicyOnce:
		return s1
	case PolicyRepeatNontrivial:
		if s1.Zero() {
			return s1
		}
		s2 := measure()
		if s2.Equal(s1) {
			return s1
		}
		return bits.NewVec(s1.Len()) // disagree: do nothing this round
	case PolicyUntilAgree:
		prev := s1
		for round := 0; round < 4; round++ {
			if prev.Zero() {
				return prev
			}
			next := measure()
			if next.Equal(prev) {
				return next
			}
			prev = next
		}
		return bits.NewVec(s1.Len())
	}
	panic("ft: unknown syndrome policy")
}

// applyBitCorrection converts a Hamming syndrome into an X recovery on
// the named data qubit (recovery tracked in the Pauli frame).
func applyBitCorrection(s *frame.Sim, data []int, syndrome bits.Vec) {
	if syndrome.Zero() {
		return
	}
	e, _ := hamming().DecodeError(syndrome)
	for i := range data {
		if e.Get(i) {
			s.FrameX(data[i])
		}
	}
}

func applyPhaseCorrection(s *frame.Sim, data []int, syndrome bits.Vec) {
	if syndrome.Zero() {
		return
	}
	e, _ := hamming().DecodeError(syndrome)
	for i := range data {
		if e.Get(i) {
			s.FrameZ(data[i])
		}
	}
}

// SteaneEC performs one complete fault-tolerant recovery of Fig. 9 on the
// data block using Steane-method ancillas: bit-flip syndrome then
// phase-flip syndrome, each governed by the repetition policy, followed by
// frame-tracked recovery operations. anc and chk are 7-wire scratch
// regions (reused across phases).
func SteaneEC(s *frame.Sim, data, anc, chk []int, cfg Config) {
	bitSyn := resolveSyndrome(func() bits.Vec {
		return measureBitSyndromeSteane(s, data, anc, chk, cfg)
	}, cfg)
	applyBitCorrection(s, data, bitSyn)
	phaseSyn := resolveSyndrome(func() bits.Vec {
		return measurePhaseSyndromeSteane(s, data, anc, chk, cfg)
	}, cfg)
	applyPhaseCorrection(s, data, phaseSyn)
}

// --- Shor-method syndrome extraction (§3.2, Figs. 7–8) ---

// measureZStabilizerShor measures one Z-type stabilizer generator (a bit
// -flip syndrome bit) with a verified Shor-state ancilla: the cat state is
// rotated to the Shor state, each supported data qubit is XORed into its
// own ancilla bit, and the syndrome bit is the parity of the four
// measurement outcomes (Fig. 7a).
func measureZStabilizerShor(s *frame.Sim, data []int, support []int, cat []int, ver int, cfg Config) bool {
	PrepVerifiedCat(s, cat, ver, cfg)
	chargeIdle(s, data, cfg)
	for _, q := range cat {
		s.H(q) // cat → Shor state (Fig. 7a's Hadamard)
	}
	bit := false
	for i, pos := range support {
		s.CNOT(data[pos], cat[i])
	}
	for _, q := range cat {
		if s.MeasZ(q) {
			bit = !bit
		}
	}
	return bit
}

// measureXStabilizerShor measures one X-type stabilizer generator (a
// phase-flip syndrome bit): the verified cat state is used as the control
// of XORs into the data and read out in the X basis (Fig. 7c).
func measureXStabilizerShor(s *frame.Sim, data []int, support []int, cat []int, ver int, cfg Config) bool {
	PrepVerifiedCat(s, cat, ver, cfg)
	chargeIdle(s, data, cfg)
	bit := false
	for i, pos := range support {
		s.CNOT(cat[i], data[pos])
	}
	for _, q := range cat {
		if s.MeasX(q) {
			bit = !bit
		}
	}
	return bit
}

// stabilizerSupports returns the qubit positions of the weight-4
// generators (rows of the Eq. 15 parity check).
func stabilizerSupports() [3][]int {
	var out [3][]int
	for j := 0; j < 3; j++ {
		out[j] = bits.MustFromString(parityH15[j]).Support()
	}
	return out
}

// measureBitSyndromeShor assembles the 3-bit bit-flip syndrome from three
// Shor-state measurements.
func measureBitSyndromeShor(s *frame.Sim, data, cat []int, ver int, cfg Config) bits.Vec {
	syn := bits.NewVec(3)
	for j, sup := range stabilizerSupports() {
		if measureZStabilizerShor(s, data, sup, cat, ver, cfg) {
			syn.Set(j, true)
		}
	}
	return syn
}

func measurePhaseSyndromeShor(s *frame.Sim, data, cat []int, ver int, cfg Config) bits.Vec {
	syn := bits.NewVec(3)
	for j, sup := range stabilizerSupports() {
		if measureXStabilizerShor(s, data, sup, cat, ver, cfg) {
			syn.Set(j, true)
		}
	}
	return syn
}

// ShorEC performs one complete recovery using Shor's method: 6 syndrome
// bits, each from its own verified cat-state ancilla (24 ancilla qubits'
// worth of work, reusing 5 wires), with the §3.4 repetition policy.
func ShorEC(s *frame.Sim, data, cat []int, ver int, cfg Config) {
	bitSyn := resolveSyndrome(func() bits.Vec {
		return measureBitSyndromeShor(s, data, cat, ver, cfg)
	}, cfg)
	applyBitCorrection(s, data, bitSyn)
	phaseSyn := resolveSyndrome(func() bits.Vec {
		return measurePhaseSyndromeShor(s, data, cat, ver, cfg)
	}, cfg)
	applyPhaseCorrection(s, data, phaseSyn)
}

// --- non-fault-tolerant baselines (Figs. 2 and 6) ---

// NaiveBitSyndrome computes the bit-flip syndrome with the bad circuit of
// Fig. 2/Fig. 6(top): one bare ancilla qubit is the target of all four
// XORs of each parity check, so a single ancilla phase error can feed
// back into several data qubits.
func NaiveBitSyndrome(s *frame.Sim, data []int, anc int, cfg Config) bits.Vec {
	syn := bits.NewVec(3)
	for j, sup := range stabilizerSupports() {
		s.PrepZ(anc)
		for _, pos := range sup {
			s.CNOT(data[pos], anc)
		}
		if s.MeasZ(anc) {
			syn.Set(j, true)
		}
	}
	return syn
}

// NaivePhaseSyndrome is the rotated-basis version: a single ancilla in
// |+⟩ acts as the control of all four XORs, so one ancilla bit-flip
// error spreads to several data qubits.
func NaivePhaseSyndrome(s *frame.Sim, data []int, anc int, cfg Config) bits.Vec {
	syn := bits.NewVec(3)
	for j, sup := range stabilizerSupports() {
		s.PrepZ(anc)
		s.H(anc)
		for _, pos := range sup {
			s.CNOT(anc, data[pos])
		}
		if s.MeasX(anc) {
			syn.Set(j, true)
		}
	}
	return syn
}

// NaiveEC is the non-fault-tolerant recovery built from the Fig. 2
// circuits, used as the baseline in the E03 experiment.
func NaiveEC(s *frame.Sim, data []int, anc int, cfg Config) {
	applyBitCorrection(s, data, NaiveBitSyndrome(s, data, anc, cfg))
	applyPhaseCorrection(s, data, NaivePhaseSyndrome(s, data, anc, cfg))
}
