package ft

import (
	"ftqc/internal/bits"
	"ftqc/internal/frame"
)

// Config controls the fault-tolerance policies of the recovery gadgets.
type Config struct {
	// Policy selects how syndrome repetition is handled (§3.4).
	Policy SyndromePolicy
	// MaxPrepAttempts bounds cat-state verification retries (Fig. 8).
	MaxPrepAttempts int
	// DiscardSteaneAncilla, when true, rejects and rebuilds a Steane
	// ancilla that verifies as |1̄⟩ instead of applying the paper's
	// flip-to-fix repair (§3.3 ablation).
	DiscardSteaneAncilla bool
	// ChargeIdle, when true, applies one storage-noise step to the data
	// block for every gadget phase during which it waits on ancilla work.
	ChargeIdle bool
}

// SyndromePolicy is the §3.4 syndrome-verification rule.
type SyndromePolicy int

// Syndrome policies.
const (
	// PolicyOnce trusts a single syndrome measurement (not fault
	// tolerant; kept for the E06 ablation).
	PolicyOnce SyndromePolicy = iota
	// PolicyRepeatNontrivial accepts a trivial syndrome immediately,
	// remeasures a nontrivial one, corrects only when the two readings
	// agree, and otherwise does nothing — the paper's default.
	PolicyRepeatNontrivial
	// PolicyUntilAgree keeps measuring until two consecutive syndromes
	// agree (capped), the paper's alternative.
	PolicyUntilAgree
)

// DefaultConfig returns the paper's default policies.
func DefaultConfig() Config {
	return Config{
		Policy:          PolicyRepeatNontrivial,
		MaxPrepAttempts: 10,
		ChargeIdle:      true,
	}
}

// prepZeroDirect drives the Fig. 3 encoder (|0⟩ input) directly on the
// frame simulator.
func prepZeroDirect(s *frame.Sim, block []int) {
	mustBlock(block)
	for _, q := range block {
		s.PrepZ(q)
	}
	for j := 0; j < 3; j++ {
		s.H(block[j])
	}
	for j := 0; j < 3; j++ {
		row := bits.MustFromString(parityH15[j])
		for k := 3; k < 7; k++ {
			if row.Get(k) {
				s.CNOT(block[j], block[k])
			}
		}
	}
}

// verifyZeroRound performs one §3.3 verification round: a fresh unverified
// |0̄⟩ is prepared on chk, the candidate block is XORed into it, and chk is
// destructively measured; the return value is the logical readout
// (true = |1̄⟩, i.e. the round votes "faulty").
func verifyZeroRound(s *frame.Sim, anc, chk []int) bool {
	prepZeroDirect(s, chk)
	LogicalCNOT(s, anc, chk)
	return MeasureLogicalZ(s, chk)
}

// PrepVerifiedZero prepares a verified |0̄⟩ on anc, using chk as scratch
// for the verification blocks. It implements §3.3: two verification
// rounds; double-|1̄⟩ applies the transversal flip repair (converting a
// double bit-flip into a single equivalent flip); a split vote is ignored
// (the checked block is faulty with probability O(ε²) only). It returns
// the number of preparation attempts used.
func PrepVerifiedZero(s *frame.Sim, anc, chk []int, cfg Config) int {
	attempts := 0
	for {
		attempts++
		prepZeroDirect(s, anc)
		r1 := verifyZeroRound(s, anc, chk)
		r2 := verifyZeroRound(s, anc, chk)
		switch {
		case r1 && r2:
			if cfg.DiscardSteaneAncilla && attempts < cfg.MaxPrepAttempts {
				continue // rebuild from scratch
			}
			// Flip-to-fix: transversal X with gate noise.
			for _, q := range anc {
				s.PauliGate(q)
				s.FrameX(q)
			}
			return attempts
		default:
			// 00 → clean; 01/10 → measured block suspected, keep ours.
			return attempts
		}
	}
}

// PrepVerifiedCat prepares the verified 4-qubit cat state of Fig. 8 on
// cat (4 wires), using ver as the verification qubit. It retries on
// verification failure, up to cfg.MaxPrepAttempts. The returned count is
// the number of attempts (for acceptance-rate statistics).
func PrepVerifiedCat(s *frame.Sim, cat []int, ver int, cfg Config) int {
	if len(cat) != 4 {
		panic("ft: cat state needs 4 wires")
	}
	attempts := 0
	for {
		attempts++
		for _, q := range cat {
			s.PrepZ(q)
		}
		s.H(cat[0])
		s.CNOT(cat[0], cat[1])
		s.CNOT(cat[1], cat[2])
		s.CNOT(cat[2], cat[3])
		// Verification: the first and fourth bit must agree (§3.3).
		s.PrepZ(ver)
		s.CNOT(cat[0], ver)
		s.CNOT(cat[3], ver)
		if !s.MeasZ(ver) {
			return attempts
		}
		if attempts >= cfg.MaxPrepAttempts {
			return attempts
		}
	}
}
