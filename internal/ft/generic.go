package ft

import (
	"ftqc/internal/bits"
	"ftqc/internal/code"
	"ftqc/internal/frame"
	"ftqc/internal/pauli"
)

// This file implements the §3.6 generalization of Shor's fault-tolerant
// syndrome measurement to an arbitrary stabilizer code: each generator
// M = ∏ᵢ Pᵢ is measured with a verified cat state whose width equals the
// generator's weight; each cat bit controls a single controlled-Pᵢ into
// the data ("Each ancilla bit is the target of only a single XOR, so that
// multiple phase errors do not feed back into the data"), and the cat is
// read out in the X basis, the outcome parity being the eigenvalue.
// Together with Gottesman's §4.2 universality results this is what makes
// fault-tolerant computation possible "with any stabilizer code".

// GenericEC performs fault-tolerant recovery for an arbitrary stabilizer
// code using generalized Shor ancillas.
type GenericEC struct {
	Code *code.Code
	Dec  *code.Decoder
	Cfg  Config
}

// NewGenericEC builds the gadget; decoderWeight bounds the lookup-decoder
// enumeration ((d−1)/2 for a distance-d code).
func NewGenericEC(c *code.Code, decoderWeight int, cfg Config) *GenericEC {
	return &GenericEC{Code: c, Dec: code.NewDecoder(c, decoderWeight), Cfg: cfg}
}

// CatWires returns how many ancilla wires the gadget needs: the widest
// generator plus one verification qubit.
func (g *GenericEC) CatWires() int {
	w := 0
	for _, gen := range g.Code.Generators {
		if gw := gen.Weight(); gw > w {
			w = gw
		}
	}
	return w + 1
}

// prepVerifiedCatN prepares and verifies a width-w cat state on cat[:w]
// (Fig. 8 generalized): chain preparation, then a parity check of the
// first and last bits, retrying on failure. Any single fault that leaves
// a multi-flip suffix on the chain makes those two bits disagree.
func (g *GenericEC) prepVerifiedCatN(s *frame.Sim, cat []int, ver int, w int) {
	attempts := 0
	for {
		attempts++
		for _, q := range cat[:w] {
			s.PrepZ(q)
		}
		s.H(cat[0])
		for i := 0; i+1 < w; i++ {
			s.CNOT(cat[i], cat[i+1])
		}
		if w < 3 {
			return // a Bell pair cannot hide a propagating multi-flip
		}
		s.PrepZ(ver)
		s.CNOT(cat[0], ver)
		s.CNOT(cat[w-1], ver)
		if !s.MeasZ(ver) || attempts >= g.Cfg.MaxPrepAttempts {
			return
		}
	}
}

// MeasureGenerator measures one stabilizer generator fault-tolerantly and
// returns its syndrome bit (true = eigenvalue flipped).
func (g *GenericEC) MeasureGenerator(s *frame.Sim, data []int, gen pauli.Pauli, cat []int, ver int) bool {
	support := make([]int, 0, gen.Weight())
	letters := make([]pauli.Single, 0, gen.Weight())
	for i := 0; i < gen.N(); i++ {
		if l := gen.At(i); l != pauli.I {
			support = append(support, i)
			letters = append(letters, l)
		}
	}
	w := len(support)
	g.prepVerifiedCatN(s, cat, ver, w)
	if g.Cfg.ChargeIdle {
		chargeIdle(s, data, g.Cfg)
	}
	// Controlled-Pᵢ from cat bit j onto the data qubit: CX directly, CZ
	// directly, CY via the Eq. (20)-style basis rotation S·CX·S† on the
	// target.
	for j, pos := range support {
		d := data[pos]
		switch letters[j] {
		case pauli.X:
			s.CNOT(cat[j], d)
		case pauli.Z:
			s.CZ(cat[j], d)
		case pauli.Y:
			s.Sdg(d)
			s.CNOT(cat[j], d)
			s.S(d)
		}
	}
	bit := false
	for j := 0; j < w; j++ {
		if s.MeasX(cat[j]) {
			bit = !bit
		}
	}
	return bit
}

// Syndrome measures every generator once.
func (g *GenericEC) Syndrome(s *frame.Sim, data, cat []int, ver int) bits.Vec {
	syn := bits.NewVec(len(g.Code.Generators))
	for i, gen := range g.Code.Generators {
		if g.MeasureGenerator(s, data, gen, cat, ver) {
			syn.Set(i, true)
		}
	}
	return syn
}

// Recover performs one full fault-tolerant recovery: syndrome extraction
// under the §3.4 repetition policy, then a frame-tracked correction from
// the lookup decoder.
func (g *GenericEC) Recover(s *frame.Sim, data, cat []int, ver int) {
	syn := resolveSyndrome(func() bits.Vec {
		return g.Syndrome(s, data, cat, ver)
	}, g.Cfg)
	if syn.Zero() {
		return
	}
	corr, ok := g.Dec.Correction(syn)
	if !ok {
		return // unrecognized syndrome: do nothing, try again next round
	}
	for i := 0; i < corr.N(); i++ {
		if corr.XBits.Get(i) {
			s.FrameX(data[i])
		}
		if corr.ZBits.Get(i) {
			s.FrameZ(data[i])
		}
	}
}

// IdealDecodeGeneric referees the residual frame on the block against the
// code's lookup decoder, reporting any logical error.
func (g *GenericEC) IdealDecodeGeneric(s *frame.Sim, data []int) bool {
	x, z := s.FrameOn(data)
	err := pauli.NewIdentity(g.Code.N)
	for i := 0; i < g.Code.N; i++ {
		err.XBits.Set(i, x.Get(i))
		err.ZBits.Set(i, z.Get(i))
	}
	_, ok := g.Dec.DecodeError(err)
	return !ok
}
