package ft

import (
	"math/rand/v2"

	"ftqc/internal/frame"
	"ftqc/internal/noise"
)

// LeakDetect runs the Fig. 15 leakage-detection circuit on data qubit d
// with ancilla anc: the ancilla ends in |1⟩ when the data qubit is still
// in the computational space and in |0⟩ when it has leaked (the XOR acts
// trivially on a leaked qubit). It returns whether leakage was detected;
// noise in the circuit can misreport either way.
func LeakDetect(s *frame.Sim, d, anc int) bool {
	s.PrepZ(anc)
	// Two XORs with a deliberate flip of the data in between: a healthy
	// data qubit toggles the ancilla an odd number of times (d ⊕ (d⊕1) =
	// 1), a leaked one never toggles it. The deliberate flips cancel on
	// the data qubit; only their gate noise remains.
	s.CNOT(d, anc)
	s.PauliGate(d)
	s.CNOT(d, anc)
	s.PauliGate(d)
	// Noiseless reading: 1 if healthy, 0 if leaked. MeasZ reports the
	// flip relative to the healthy reference, so a leaked qubit (whose
	// XORs acted trivially) reads as flipped.
	flip := s.MeasZ(anc)
	return s.Leaked(d) != flip
}

// LeakageCycleResult reports the E14 experiment.
type LeakageCycleResult struct {
	Samples      int
	Failures     int
	LeaksHandled int
}

// FailRate is the per-sample logical failure probability.
func (r LeakageCycleResult) FailRate() float64 {
	return float64(r.Failures) / float64(r.Samples)
}

// LeakageExperiment stores an encoded qubit for `rounds` cycles under a
// noise model that includes leakage. When detect is true, every cycle
// interrogates each data qubit with the Fig. 15 circuit and replaces
// leaked qubits with fresh |0⟩s before recovery (§6: "we replace it with
// a fresh qubit in a standard state"); when false, leaked qubits simply
// stop participating, and errors accumulate.
func LeakageExperiment(p noise.Params, cfg Config, rounds, samples int, detect bool, seed uint64) LeakageCycleResult {
	var res LeakageCycleResult
	mc := parallelMC(samples, seed, func(rng *rand.Rand) (bool, bool) {
		s := frame.New(oneBlockWires, p, rng)
		data, anc, chk, _, ver := oneBlockLayout()
		handled := 0
		for r := 0; r < rounds; r++ {
			if detect {
				for _, d := range data {
					if LeakDetect(s, d, ver) {
						s.ReplaceLeaked(d)
						handled++
					}
				}
			}
			SteaneEC(s, data, anc, chk, cfg)
		}
		// A block still containing leaked qubits at readout has lost its
		// information: count it as failed outright.
		for _, d := range data {
			if s.Leaked(d) {
				return true, true
			}
		}
		return IdealDecode(s, data)
	})
	res.Samples = mc.Samples
	res.Failures = mc.Failures
	return res
}
