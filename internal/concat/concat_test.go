package concat

import (
	"math"
	"testing"
)

func TestPaperThreshold(t *testing.T) {
	// Eq. (33): with A = 21 the threshold is 1/21 ≈ 0.0476.
	f := PaperFlow()
	if got := f.Threshold(); math.Abs(got-1.0/21) > 1e-15 {
		t.Fatalf("threshold %v", got)
	}
}

func TestFlowConvergesBelowThreshold(t *testing.T) {
	f := PaperFlow()
	p := f.Threshold() * 0.9
	for l := 0; l < 10; l++ {
		next := f.Next(p)
		if next >= p {
			t.Fatalf("flow not contracting at level %d: %v -> %v", l, p, next)
		}
		p = next
	}
	if p > 1e-20 {
		t.Fatalf("flow converged too slowly: %v", p)
	}
}

func TestFlowDivergesAboveThreshold(t *testing.T) {
	f := PaperFlow()
	p := f.Threshold() * 1.1
	for l := 0; l < 20; l++ {
		p = f.Next(p)
	}
	if p < 1 {
		t.Fatalf("flow should diverge above threshold, got %v", p)
	}
}

func TestAtLevelMatchesIteration(t *testing.T) {
	f := Flow{A: 50}
	p0 := 0.001
	iter := f.Levels(p0, 4)
	for l := 0; l <= 4; l++ {
		closed := f.AtLevel(p0, l)
		if iter[l] == 0 {
			continue
		}
		if rel := math.Abs(closed-iter[l]) / iter[l]; rel > 1e-9 {
			t.Fatalf("level %d: closed form %v vs iteration %v", l, closed, iter[l])
		}
	}
}

func TestLevelsNeeded(t *testing.T) {
	f := PaperFlow()
	// The §6 design point: ε = 1e-6 must need ~3 levels for 1e-9... the
	// flow is much stronger than that: level 1 gives 21e-12 < 1e-9.
	if l := f.LevelsNeeded(1e-6, 1e-9); l != 1 {
		t.Fatalf("LevelsNeeded(1e-6, 1e-9) = %d, want 1 under pure Eq. 33 flow", l)
	}
	if l := f.LevelsNeeded(0.1, 1e-9); l != -1 {
		t.Fatal("above threshold must be impossible")
	}
	if l := f.LevelsNeeded(1e-12, 1e-9); l != 0 {
		t.Fatalf("already-good rate needs 0 levels, got %d", l)
	}
}

func TestBlockSize(t *testing.T) {
	for l, want := range []int{1, 7, 49, 343} {
		if got := BlockSize(l); got != want {
			t.Fatalf("BlockSize(%d)=%d want %d", l, got, want)
		}
	}
}

func TestBlockSizeForComputationScaling(t *testing.T) {
	// Eq. (37): block size grows polylogarithmically in T with exponent
	// log₂7 ≈ 2.807.
	eps, eps0 := 1e-5, 1e-3
	// Choose lengths so that log(ε₀T) doubles: ε₀T = 1e6 → 1e12. Then the
	// block size must grow by 2^{log₂7} = 7 exactly.
	b1 := BlockSizeForComputation(eps, eps0, 1e9)
	b2 := BlockSizeForComputation(eps, eps0, 1e15)
	if b2 <= b1 {
		t.Fatal("block size must grow with computation length")
	}
	ratio := b2 / b1
	if ratio < 6.9 || ratio > 7.1 {
		t.Fatalf("scaling ratio %v, want 7", ratio)
	}
	if math.IsInf(BlockSizeForComputation(1e-2, 1e-3, 1e9), 0) != true {
		t.Fatal("above-threshold block size must be infinite")
	}
}

func TestEq30Optimization(t *testing.T) {
	// For smaller ε the optimal t grows like ε^{-1/b} and the achievable
	// block error drops dramatically (Eq. 31).
	b := 4.0
	t1 := OptimalT(b, 1e-4)
	t2 := OptimalT(b, 1e-6)
	if t2 <= t1 {
		t.Fatalf("optimal t should grow as ε falls: %d vs %d", t1, t2)
	}
	m1 := MinBlockError(b, 1e-4)
	m2 := MinBlockError(b, 1e-6)
	if m2 >= m1 {
		t.Fatal("min block error should fall with ε")
	}
	// The numerically optimized probability should be within a couple of
	// orders of magnitude of the asymptotic formula.
	p := BlockErrorProbability(OptimalT(b, 1e-6), b, 1e-6)
	if p <= 0 || math.Log10(p)-math.Log10(m2) > 6 {
		t.Fatalf("numeric optimum %v too far from asymptotic %v", p, m2)
	}
}

func TestEq32Accuracy(t *testing.T) {
	// ε ~ (log T)^{-b}: longer computations need better gates, weakly.
	b := 4.0
	e1 := AccuracyForComputation(1e9, b)
	e2 := AccuracyForComputation(1e12, b)
	if e2 >= e1 {
		t.Fatal("longer computation must demand higher accuracy")
	}
	if e1/e2 > 10 {
		t.Fatal("dependence should be polylogarithmic (weak)")
	}
}

func TestShorFamilyBlockSize(t *testing.T) {
	if ShorFamilyBlockSize(1) != 9 || ShorFamilyBlockSize(2) != 25 || ShorFamilyBlockSize(5) != 121 {
		t.Fatal("block sizes of the (2t+1)² family wrong")
	}
}
