// Package concat implements the concatenated-coding analysis of Preskill
// §5: the flow equation p_{L+1} = A·p_L² (Eq. 33) with its threshold 1/A,
// the double-exponential error suppression ε(L) (Eq. 36), the block-size
// scaling for a computation of T gates (Eq. 37), and the non-concatenated
// block-error optimization for Shor's code family (Eqs. 30–32).
package concat

import (
	"math"
)

// Flow is the level-to-level recursion of Eq. (33). The paper's
// combinatorial estimate is A = C(7,2) = 21; the circuit-level Monte Carlo
// calibrates A much more pessimistically.
type Flow struct {
	A float64 // coefficient of p_{L+1} = A p_L²
}

// PaperFlow returns the paper's counting estimate A = 21.
func PaperFlow() Flow { return Flow{A: 21} }

// Threshold is the fixed point p* = 1/A below which concatenation
// converges.
func (f Flow) Threshold() float64 { return 1 / f.A }

// Next applies one level of the recursion.
func (f Flow) Next(p float64) float64 { return f.A * p * p }

// AtLevel returns p_L in closed form: p_L = (1/A)·(A·p₀)^(2^L), the
// double-exponential suppression of Eq. (36).
func (f Flow) AtLevel(p0 float64, level int) float64 {
	x := f.A * p0
	// (A p0)^(2^L) via repeated squaring to avoid overflow of 2^L.
	for i := 0; i < level; i++ {
		x *= x
		if x == 0 || math.IsInf(x, 0) {
			break
		}
	}
	return x / f.A
}

// Levels iterates the recursion explicitly, returning p_0 … p_L.
func (f Flow) Levels(p0 float64, maxLevel int) []float64 {
	out := make([]float64, maxLevel+1)
	out[0] = p0
	for i := 1; i <= maxLevel; i++ {
		out[i] = f.Next(out[i-1])
	}
	return out
}

// LevelsNeeded returns the smallest concatenation level at which the
// logical error rate drops to target, or -1 if p0 is at/above threshold.
func (f Flow) LevelsNeeded(p0, target float64) int {
	if p0 >= f.Threshold() {
		return -1
	}
	p := p0
	for l := 0; l <= 64; l++ {
		if p <= target {
			return l
		}
		p = f.Next(p)
	}
	return -1
}

// BlockSize returns the physical block size 7^L of the concatenated
// 7-qubit code.
func BlockSize(level int) int {
	n := 1
	for i := 0; i < level; i++ {
		n *= 7
	}
	return n
}

// BlockSizeForComputation evaluates Eq. (37): the block size needed to
// complete T gates without error,
//
//	blocksize ~ [ log(ε₀·T) / log(ε₀/ε) ]^{log₂7}.
func BlockSizeForComputation(eps, eps0 float64, gates float64) float64 {
	if eps >= eps0 {
		return math.Inf(1)
	}
	num := math.Log(eps0 * gates)
	den := math.Log(eps0 / eps)
	if num <= 0 {
		return 1
	}
	return math.Pow(num/den, math.Log2(7))
}

// --- Eqs. (30)–(32): Shor's non-concatenated code family ---

// BlockErrorProbability is Eq. (30): with syndrome-measurement complexity
// growing as t^b, the probability that t+1 errors accumulate during
// recovery behaves as (t^b·ε)^(t+1).
func BlockErrorProbability(t int, b, eps float64) float64 {
	return math.Pow(math.Pow(float64(t), b)*eps, float64(t)+1)
}

// OptimalT minimizes Eq. (30) over the number of correctable errors t; the
// asymptotic optimum is t ~ e^{-1}·ε^{-1/b}.
func OptimalT(b, eps float64) int {
	asym := math.Exp(-1) * math.Pow(eps, -1/b)
	best, bestP := 1, BlockErrorProbability(1, b, eps)
	lo := int(asym/4) + 1
	hi := int(asym*4) + 4
	for t := lo; t <= hi; t++ {
		if p := BlockErrorProbability(t, b, eps); p < bestP {
			best, bestP = t, p
		}
	}
	return best
}

// MinBlockError is Eq. (31): the minimum achievable block-error
// probability exp(−e⁻¹·b·ε^(−1/b)).
func MinBlockError(b, eps float64) float64 {
	return math.Exp(-math.Exp(-1) * b * math.Pow(eps, -1/b))
}

// AccuracyForComputation inverts Eq. (32): the gate accuracy needed to
// run T error-correction cycles without failure, ε ~ (log T)^(−b).
func AccuracyForComputation(gates float64, b float64) float64 {
	return math.Pow(math.Log(gates), -b)
}

// ShorFamilyBlockSize returns the block size of the family used in the
// paper's §5 discussion, growing like t² (the [[(2t+1)²,1,2t+1]] codes).
func ShorFamilyBlockSize(t int) int { return (2*t + 1) * (2*t + 1) }
